//! Arithmetic in 64-bit prime fields: modular ops, deterministic
//! Miller–Rabin primality, NTT-friendly prime search, and roots of unity.
//!
//! Every RNS component of a BFV ciphertext lives in `Z_p` for a prime
//! `p ≡ 1 (mod 2N)` so the negacyclic NTT exists. This module finds those
//! primes and the 2N-th roots of unity the NTT tables need.

/// `(a + b) mod m` for `a, b < m < 2^63`.
///
/// Branchless (`min` select): the reduction decision depends on the data,
/// so a conditional here mispredicts ~half the time inside NTT butterflies;
/// the select form costs a fixed three ops instead.
#[inline]
pub fn add_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(a < m && b < m && m < (1 << 63));
    let s = a + b; // no overflow: s < 2m < 2^64
    s.min(s.wrapping_sub(m))
}

/// `(a - b) mod m` for `a, b < m < 2^63` (branchless, see [`add_mod`]).
#[inline]
pub fn sub_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(a < m && b < m && m < (1 << 63));
    let d = a.wrapping_sub(b);
    // a ≥ b: d < m and d + m ≥ m, so min picks d. a < b: d wraps near 2^64
    // and d + m wraps to the correct d + m − 2^64 = a − b + m < m.
    d.min(d.wrapping_add(m))
}

/// `(a * b) mod m` via 128-bit widening.
#[inline]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `a^e mod m` by square-and-multiply.
pub fn pow_mod(mut a: u64, mut e: u64, m: u64) -> u64 {
    a %= m;
    let mut acc = 1u64 % m;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul_mod(acc, a, m);
        }
        a = mul_mod(a, a, m);
        e >>= 1;
    }
    acc
}

/// Modular inverse of `a` modulo prime `p` (Fermat).
///
/// # Panics
///
/// Panics if `a ≡ 0 (mod p)`.
pub fn inv_mod(a: u64, p: u64) -> u64 {
    assert!(!a.is_multiple_of(p), "zero has no inverse");
    pow_mod(a, p - 2, p)
}

/// Barrett reduction context for a fixed modulus `p < 2^62`: replaces the
/// 128-bit hardware division of [`mul_mod`] with two rounds of 64-bit
/// multiplies. Unlike [`mul_mod_shoup`] neither operand needs to be fixed,
/// so this is the right primitive for pointwise products of two variable
/// evaluation-form vectors (the double-CRT tensor).
#[derive(Debug, Clone, Copy)]
pub struct Barrett {
    p: u64,
    /// `floor(2^128 / p)`, split into low/high 64-bit words.
    m_lo: u64,
    m_hi: u64,
}

impl Barrett {
    /// Builds a reducer for `p` (requires `1 < p < 2^62`, not a power of
    /// two — every modulus here is an odd prime).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or a power of two (for which the
    /// quotient estimate below would overflow; use shifts instead).
    pub fn new(p: u64) -> Self {
        assert!(
            p > 1 && p < (1 << 62) && !p.is_power_of_two(),
            "Barrett modulus out of range"
        );
        // floor(2^128 / p) == floor((2^128 - 1) / p) since p ∤ 2^128 for
        // any p that is not a power of two.
        let mu = u128::MAX / p as u128;
        Barrett {
            p,
            m_lo: mu as u64,
            m_hi: (mu >> 64) as u64,
        }
    }

    /// The modulus.
    pub fn modulus(self) -> u64 {
        self.p
    }

    /// Reduces any `z < 2^128` modulo `p`, provided the true remainder path
    /// stays in a machine word (always, for `p < 2^62`).
    #[inline]
    pub fn reduce(self, z: u128) -> u64 {
        let z0 = z as u64;
        let z1 = (z >> 64) as u64;
        // q ≈ floor(z·mu / 2^128); dropping sub-word carries underestimates
        // the true quotient by at most 3, corrected below.
        let mid = z1 as u128 * self.m_lo as u128
            + z0 as u128 * self.m_hi as u128
            + ((z0 as u128 * self.m_lo as u128) >> 64);
        let q = (z1 as u128 * self.m_hi as u128 + (mid >> 64)) as u64;
        // True remainder is in [0, 4p); fold branchlessly (4p < 2^64).
        let r = z0.wrapping_sub(q.wrapping_mul(self.p));
        let r = r.min(r.wrapping_sub(2 * self.p));
        r.min(r.wrapping_sub(self.p))
    }

    /// Reduces a single word modulo `p`.
    #[inline]
    pub fn reduce_u64(self, x: u64) -> u64 {
        self.reduce(x as u128)
    }

    /// `(a * b) mod p` for `a, b < 2^62`.
    #[inline]
    pub fn mul_mod(self, a: u64, b: u64) -> u64 {
        self.reduce(a as u128 * b as u128)
    }
}

/// Shoup precomputation: `floor(w * 2^64 / p)` for fast `mul_mod_shoup`.
#[inline]
pub fn shoup_precompute(w: u64, p: u64) -> u64 {
    (((w as u128) << 64) / p as u128) as u64
}

/// `(a * w) mod p` using a Shoup-precomputed `w_shoup` (`p < 2^63`); much
/// faster than `mul_mod` for fixed multiplicands (NTT twiddles, keys,
/// converter tables). Branchless final reduction, see [`add_mod`].
#[inline]
pub fn mul_mod_shoup(a: u64, w: u64, w_shoup: u64, p: u64) -> u64 {
    let q = ((a as u128 * w_shoup as u128) >> 64) as u64;
    let r = a.wrapping_mul(w).wrapping_sub(q.wrapping_mul(p));
    // r < 2p < 2^64 exactly as in sub_mod's wrap-free case.
    r.min(r.wrapping_sub(p))
}

/// Deterministic Miller–Rabin for `u64` (fixed witness set, correct for all
/// 64-bit inputs).
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n.is_multiple_of(p) {
            return n == p;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d & 1 == 0 {
        d >>= 1;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Returns `count` distinct primes `p ≡ 1 (mod modulus)` just below
/// `2^bits`, descending, skipping any in `exclude`.
///
/// # Panics
///
/// Panics if `bits > 62`, `modulus` is not a power of two, or not enough
/// primes exist in range (never happens for the sizes used here).
pub fn ntt_primes(bits: u32, modulus: u64, count: usize, exclude: &[u64]) -> Vec<u64> {
    assert!(modulus.is_power_of_two());
    primes_in_progression(bits, modulus, count, exclude)
}

/// Returns `count` distinct primes `p ≡ 1 (mod stride)` just below
/// `2^bits`, descending, skipping any in `exclude` — the general form of
/// [`ntt_primes`] for non-power-of-two strides. BGV uses it with
/// `stride = 2N·t` so every chain prime is simultaneously NTT-friendly
/// (`≡ 1 mod 2N`) and modulus-switch-friendly (`≡ 1 mod t`, which keeps
/// dropping a prime plaintext-invariant).
///
/// # Panics
///
/// Panics if `bits` is out of `[20, 62]`, `stride` is odd (candidates
/// must be odd), or not enough primes exist in range.
pub fn primes_in_progression(bits: u32, stride: u64, count: usize, exclude: &[u64]) -> Vec<u64> {
    assert!((20..=62).contains(&bits), "prime size out of range");
    assert!(
        stride >= 2 && stride.is_multiple_of(2),
        "stride must be even"
    );
    let mut out = Vec::with_capacity(count);
    // Largest candidate ≡ 1 mod `stride` below 2^bits.
    let mut cand = ((1u64 << bits) - 1) / stride * stride + 1;
    while out.len() < count {
        assert!(cand > (1u64 << (bits - 1)), "ran out of candidate primes");
        if is_prime(cand) && !exclude.contains(&cand) && !out.contains(&cand) {
            out.push(cand);
        }
        cand -= stride;
    }
    out
}

/// Finds a generator of the multiplicative group of `Z_p` (p prime).
pub fn primitive_root(p: u64) -> u64 {
    let phi = p - 1;
    let factors = factorize(phi);
    'g: for g in 2..p {
        for &f in &factors {
            if pow_mod(g, phi / f, p) == 1 {
                continue 'g;
            }
        }
        return g;
    }
    unreachable!("no primitive root found for prime {p}")
}

/// Returns a primitive `order`-th root of unity modulo prime `p`.
///
/// # Panics
///
/// Panics if `order` does not divide `p - 1`.
pub fn root_of_unity(order: u64, p: u64) -> u64 {
    assert!(
        (p - 1).is_multiple_of(order),
        "order {order} must divide p-1 ({p})"
    );
    let g = primitive_root(p);
    let root = pow_mod(g, (p - 1) / order, p);
    debug_assert_eq!(pow_mod(root, order, p), 1);
    debug_assert_ne!(pow_mod(root, order / 2, p), 1);
    root
}

/// Trial-division factorization (distinct prime factors only). The inputs
/// here are `p - 1` values that are smooth by construction, so this is fast.
fn factorize(mut n: u64) -> Vec<u64> {
    let mut factors = Vec::new();
    let mut d = 2u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            factors.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_mod_ops() {
        let p = 65537;
        assert_eq!(add_mod(65536, 1, p), 0);
        assert_eq!(sub_mod(0, 1, p), 65536);
        assert_eq!(mul_mod(65536, 65536, p), 1); // (-1)^2 = 1
        assert_eq!(pow_mod(3, 65536, p), 1); // Fermat
        assert_eq!(mul_mod(inv_mod(12345, p), 12345, p), 1);
    }

    #[test]
    fn overflow_safe_add() {
        let p = (1u64 << 62) - 57; // not prime necessarily; add_mod only needs m
        let a = p - 1;
        assert_eq!(add_mod(a, a, p), p - 2);
    }

    #[test]
    fn barrett_matches_plain() {
        for p in [
            3u64,
            65537,
            ntt_primes(50, 1 << 13, 1, &[])[0],
            ntt_primes(60, 64, 1, &[])[0],
        ] {
            let bar = Barrett::new(p);
            for a in [0u64, 1, 2, p - 1, p / 2, 0xdead_beef % p] {
                for b in [0u64, 1, p - 1, p / 3, 0x1234_5678 % p] {
                    assert_eq!(bar.mul_mod(a, b), mul_mod(a, b, p), "p={p} a={a} b={b}");
                }
            }
            // reduce handles full-width inputs, not just products of residues
            assert_eq!(bar.reduce(u128::MAX), (u128::MAX % p as u128) as u64);
            assert_eq!(bar.reduce_u64(u64::MAX), u64::MAX % p);
        }
    }

    #[test]
    fn shoup_matches_plain() {
        let p = ntt_primes(50, 1 << 13, 1, &[])[0];
        let w = 0x1234_5678 % p;
        let ws = shoup_precompute(w, p);
        for a in [0u64, 1, 2, p - 1, p / 2, 0xdeadbeef % p] {
            assert_eq!(mul_mod_shoup(a, w, ws, p), mul_mod(a, w, p));
        }
    }

    #[test]
    fn primality_known_values() {
        assert!(is_prime(2));
        assert!(is_prime(65537));
        assert!(is_prime((1 << 61) - 1)); // Mersenne prime M61
        assert!(!is_prime(1));
        assert!(!is_prime(65536));
        assert!(!is_prime(3215031751)); // strong pseudoprime to bases 2,3,5,7
    }

    #[test]
    fn ntt_prime_search() {
        let n = 8192u64;
        let ps = ntt_primes(50, 2 * n, 4, &[]);
        assert_eq!(ps.len(), 4);
        for &p in &ps {
            assert!(is_prime(p));
            assert_eq!(p % (2 * n), 1);
            assert!(p < (1 << 50));
        }
        // excluded primes are skipped
        let more = ntt_primes(50, 2 * n, 2, &ps);
        assert!(more.iter().all(|p| !ps.contains(p)));
    }

    #[test]
    fn roots_of_unity() {
        let p = 65537u64;
        let root = root_of_unity(16384, p); // 2N for N = 8192
        assert_eq!(pow_mod(root, 16384, p), 1);
        assert_ne!(pow_mod(root, 8192, p), 1);
        // psi^N = -1 for negacyclic
        assert_eq!(pow_mod(root, 8192, p), p - 1);
    }

    #[test]
    fn primitive_root_of_fermat_prime() {
        // 3 is the canonical primitive root of 65537.
        assert_eq!(primitive_root(65537), 3);
    }
}
