//! RNS-decomposition key switching, shared by every RLWE scheme in the
//! workspace.
//!
//! A key-switch key from `s'` to `s` has one part per RNS prime:
//! `ksk_i = (b_i, a_i)` with `b_i = -(a_i·s + ε_i) + γ_i·s'`, where `γ_i` is
//! the CRT unit (`1 mod q_i`, `0 mod q_j`) and `ε_i` is the key-generation
//! error — raw `e_i` for BFV, `t·e_i` for BGV (whose noise lives on the
//! multiples-of-`t` lattice). Key switching a polynomial `d` under `s'`
//! computes `Σ_i lift([d]_{q_i}) ⊙ ksk_i`, whose parts sum to `≈ d·s'`
//! under `s` with only small added noise (each digit is `< q_i`).
//!
//! All key polynomials are stored in **evaluation (double-CRT) form**, so
//! the inner products of key switching are pointwise; every key residue
//! additionally carries a Shoup precomputation (keys are the fixed
//! multiplicand of the digit product, the textbook Shoup setting).

use crate::poly::{PolyForm, RingContext, RnsPoly};
use crate::pool::ScratchPool;
use crate::zq::{add_mod, mul_mod_shoup, shoup_precompute};
use rand::Rng;

/// Shoup companion table of one evaluation-form key polynomial, indexed
/// `[prime][coeff]`.
pub type ShoupTable = Vec<Vec<u64>>;

/// A key-switch key from some `s'` back to `s` (one part per RNS prime),
/// with Shoup companions for the digit inner products.
#[derive(Debug, Clone)]
pub struct KeySwitchKey {
    /// `(b_i, a_i)` in evaluation form.
    pub parts: Vec<(RnsPoly, RnsPoly)>,
    /// Shoup precomputations of `parts`: `shoup[i] = (b_shoup, a_shoup)`.
    pub shoup: Vec<(ShoupTable, ShoupTable)>,
}

/// Shoup precomputations for every residue of an evaluation-form key
/// polynomial.
pub fn shoup_tables(ring: &RingContext, poly: &RnsPoly) -> ShoupTable {
    ring.primes()
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            poly.residues[i]
                .iter()
                .map(|&w| shoup_precompute(w, p))
                .collect()
        })
        .collect()
}

/// Builds a key-switch key whose source key is `target` (e.g. `s²` or
/// `σ_g(s)`, in evaluation form) under destination secret `s`.
///
/// `error_scale`, when present, gives per-prime residues a scalar to fold
/// into each sampled error (`ε_i = scale·e_i`) — BGV passes `t mod q_j`
/// here so key-switch noise stays a multiple of the plaintext modulus;
/// BFV passes `None`. The sampling order (per prime: uniform `a_i`, then
/// error `e_i`) is part of the determinism contract — changing it changes
/// every derived key for a given seed.
pub fn key_switch_key<R: Rng + ?Sized>(
    ring: &RingContext,
    s: &RnsPoly,
    target: &RnsPoly,
    error_scale: Option<&[u64]>,
    rng: &mut R,
) -> KeySwitchKey {
    let k = ring.num_primes();
    let mut parts = Vec::with_capacity(k);
    for i in 0..k {
        let a_i = ring.sample_uniform(rng);
        let mut e_i = ring.to_eval(&ring.sample_error(rng));
        if let Some(scale) = error_scale {
            e_i = ring.mul_scalar_residues(&e_i, scale);
        }
        let mut b_i = ring.neg(&ring.add(&ring.mul(&a_i, s), &e_i));
        // Add γ_i · target: in RNS, γ_i is the unit vector at component
        // i, so only component i of `target` contributes — and because
        // reduction commutes with the NTT, the same componentwise add
        // is valid in evaluation form.
        let p = ring.primes()[i];
        for c in 0..ring.degree() {
            b_i.residues[i][c] = add_mod(b_i.residues[i][c], target.residues[i][c], p);
        }
        parts.push((b_i, a_i));
    }
    let shoup = parts
        .iter()
        .map(|(b_i, a_i)| (shoup_tables(ring, b_i), shoup_tables(ring, a_i)))
        .collect();
    KeySwitchKey { parts, shoup }
}

/// Key-switches `d` (any form) through `ksk`, accumulating the result into
/// `acc_b`/`acc_a` (evaluation form): digit-decomposes `d` per RNS prime,
/// lifts each digit to all primes, and folds the pointwise key inner
/// products into the accumulators. Scratch rows come from `pool`.
pub fn key_switch_into(
    ring: &RingContext,
    pool: &ScratchPool,
    d: &RnsPoly,
    ksk: &KeySwitchKey,
    acc_b: &mut RnsPoly,
    acc_a: &mut RnsPoly,
) {
    let k = ring.num_primes();
    let n = ring.degree();
    // Coefficient-domain view of d: borrowed if already there, else a
    // pooled copy through k inverse transforms.
    let mut d_store: Option<Vec<Vec<u64>>> = None;
    let d_coeff: &[Vec<u64>] = if d.form() == PolyForm::Coeff {
        &d.residues
    } else {
        let mut m = pool.take_matrix(k, n);
        for ((i, row), src) in m.iter_mut().enumerate().zip(&d.residues) {
            row.copy_from_slice(src);
            ring.ntt(i).inverse(row);
        }
        &*d_store.insert(m)
    };
    let mut digit = pool.take_row(n);
    for (i, src) in d_coeff.iter().enumerate().take(k) {
        let (b_i, a_i) = &ksk.parts[i];
        let (b_shoup, a_shoup) = &ksk.shoup[i];
        for j in 0..k {
            let p = ring.primes()[j];
            if i == j {
                digit.copy_from_slice(src);
            } else {
                let bar = ring.barretts()[j];
                for (dst, &x) in digit.iter_mut().zip(src) {
                    *dst = bar.reduce_u64(x);
                }
            }
            ring.ntt(j).forward(&mut digit);
            let (bb, aa) = (&b_i.residues[j], &a_i.residues[j]);
            let (bs, asg) = (&b_shoup[j], &a_shoup[j]);
            let accb = &mut acc_b.residues[j];
            let acca = &mut acc_a.residues[j];
            for c in 0..n {
                accb[c] = add_mod(accb[c], mul_mod_shoup(digit[c], bb[c], bs[c], p), p);
                acca[c] = add_mod(acca[c], mul_mod_shoup(digit[c], aa[c], asg[c], p), p);
            }
        }
    }
    pool.put_row(digit);
    if let Some(m) = d_store {
        pool.put_matrix(m);
    }
}
