//! RNS-decomposition key switching, shared by every RLWE scheme in the
//! workspace.
//!
//! A key-switch key from `s'` to `s` has one part per RNS prime:
//! `ksk_i = (b_i, a_i)` with `b_i = -(a_i·s + ε_i) + γ_i·s'`, where `γ_i` is
//! the CRT unit (`1 mod q_i`, `0 mod q_j`) and `ε_i` is the key-generation
//! error — raw `e_i` for BFV, `t·e_i` for BGV (whose noise lives on the
//! multiples-of-`t` lattice). Key switching a polynomial `d` under `s'`
//! computes `Σ_i lift([d]_{q_i}) ⊙ ksk_i`, whose parts sum to `≈ d·s'`
//! under `s` with only small added noise (each digit is `< q_i`).
//!
//! All key polynomials are stored in **evaluation (double-CRT) form**, so
//! the inner products of key switching are pointwise; every key residue
//! additionally carries a Shoup precomputation (keys are the fixed
//! multiplicand of the digit product, the textbook Shoup setting).

use crate::poly::{PolyForm, RingContext, RnsPoly};
use crate::pool::ScratchPool;
use crate::zq::{add_mod, mul_mod_shoup, shoup_precompute};
use rand::Rng;

/// Shoup companion table of one evaluation-form key polynomial, indexed
/// `[prime][coeff]`.
pub type ShoupTable = Vec<Vec<u64>>;

/// A key-switch key from some `s'` back to `s` (one part per RNS prime),
/// with Shoup companions for the digit inner products.
#[derive(Debug, Clone)]
pub struct KeySwitchKey {
    /// `(b_i, a_i)` in evaluation form.
    pub parts: Vec<(RnsPoly, RnsPoly)>,
    /// Shoup precomputations of `parts`: `shoup[i] = (b_shoup, a_shoup)`.
    pub shoup: Vec<(ShoupTable, ShoupTable)>,
}

/// Shoup precomputations for every residue of an evaluation-form key
/// polynomial.
pub fn shoup_tables(ring: &RingContext, poly: &RnsPoly) -> ShoupTable {
    ring.primes()
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            poly.residues[i]
                .iter()
                .map(|&w| shoup_precompute(w, p))
                .collect()
        })
        .collect()
}

/// Builds a key-switch key whose source key is `target` (e.g. `s²` or
/// `σ_g(s)`, in evaluation form) under destination secret `s`.
///
/// `error_scale`, when present, gives per-prime residues a scalar to fold
/// into each sampled error (`ε_i = scale·e_i`) — BGV passes `t mod q_j`
/// here so key-switch noise stays a multiple of the plaintext modulus;
/// BFV passes `None`. The sampling order (per prime: uniform `a_i`, then
/// error `e_i`) is part of the determinism contract — changing it changes
/// every derived key for a given seed.
pub fn key_switch_key<R: Rng + ?Sized>(
    ring: &RingContext,
    s: &RnsPoly,
    target: &RnsPoly,
    error_scale: Option<&[u64]>,
    rng: &mut R,
) -> KeySwitchKey {
    let k = ring.num_primes();
    let mut parts = Vec::with_capacity(k);
    for i in 0..k {
        let a_i = ring.sample_uniform(rng);
        let mut e_i = ring.to_eval(&ring.sample_error(rng));
        if let Some(scale) = error_scale {
            e_i = ring.mul_scalar_residues(&e_i, scale);
        }
        let mut b_i = ring.neg(&ring.add(&ring.mul(&a_i, s), &e_i));
        // Add γ_i · target: in RNS, γ_i is the unit vector at component
        // i, so only component i of `target` contributes — and because
        // reduction commutes with the NTT, the same componentwise add
        // is valid in evaluation form.
        let p = ring.primes()[i];
        for c in 0..ring.degree() {
            b_i.residues[i][c] = add_mod(b_i.residues[i][c], target.residues[i][c], p);
        }
        parts.push((b_i, a_i));
    }
    let shoup = parts
        .iter()
        .map(|(b_i, a_i)| (shoup_tables(ring, b_i), shoup_tables(ring, a_i)))
        .collect();
    KeySwitchKey { parts, shoup }
}

/// Lifts digit `i` of a coefficient-domain source row into prime `j`'s
/// residue field: the identity when `i == j`, a Barrett reduction
/// otherwise. The shared decompose kernel of [`key_switch_into`] and
/// [`hoist_decompose`].
#[inline]
fn lift_digit_row(ring: &RingContext, src: &[u64], i: usize, j: usize, out: &mut [u64]) {
    if i == j {
        out.copy_from_slice(src);
    } else {
        let bar = ring.barretts()[j];
        for (dst, &x) in out.iter_mut().zip(src) {
            *dst = bar.reduce_u64(x);
        }
    }
}

/// Folds one NTT'd digit row into the two accumulators at prime `j`: the
/// pointwise Shoup inner product against key part `i`. The shared
/// accumulate kernel of [`key_switch_into`] and [`key_switch_hoisted_into`].
#[inline]
fn accumulate_digit_row(
    digit: &[u64],
    ksk: &KeySwitchKey,
    i: usize,
    j: usize,
    p: u64,
    acc_b: &mut [u64],
    acc_a: &mut [u64],
) {
    let (b_i, a_i) = &ksk.parts[i];
    let (b_shoup, a_shoup) = &ksk.shoup[i];
    let (bb, aa) = (&b_i.residues[j], &a_i.residues[j]);
    let (bs, asg) = (&b_shoup[j], &a_shoup[j]);
    for c in 0..digit.len() {
        acc_b[c] = add_mod(acc_b[c], mul_mod_shoup(digit[c], bb[c], bs[c], p), p);
        acc_a[c] = add_mod(acc_a[c], mul_mod_shoup(digit[c], aa[c], asg[c], p), p);
    }
}

/// Borrows the coefficient-domain view of `d`: the residues themselves if
/// already there, else a pooled copy through `k` inverse transforms stored
/// in `store` (return it to the pool when done).
fn coeff_view<'a>(
    ring: &RingContext,
    pool: &ScratchPool,
    d: &'a RnsPoly,
    store: &'a mut Option<Vec<Vec<u64>>>,
) -> &'a [Vec<u64>] {
    if d.form() == PolyForm::Coeff {
        &d.residues
    } else {
        let mut m = pool.take_matrix(ring.num_primes(), ring.degree());
        for ((i, row), src) in m.iter_mut().enumerate().zip(&d.residues) {
            row.copy_from_slice(src);
            ring.ntt(i).inverse(row);
        }
        &*store.insert(m)
    }
}

/// Key-switches `d` (any form) through `ksk`, accumulating the result into
/// `acc_b`/`acc_a` (evaluation form): digit-decomposes `d` per RNS prime,
/// lifts each digit to all primes, and folds the pointwise key inner
/// products into the accumulators. Scratch rows come from `pool`.
///
/// This is the streaming one-shot form — each digit row is lifted,
/// transformed, and consumed in place through a single scratch row. When
/// several key switches share the same `d` (rotations of one ciphertext),
/// [`hoist_decompose`] + [`key_switch_hoisted_into`] pay the transforms
/// once instead.
pub fn key_switch_into(
    ring: &RingContext,
    pool: &ScratchPool,
    d: &RnsPoly,
    ksk: &KeySwitchKey,
    acc_b: &mut RnsPoly,
    acc_a: &mut RnsPoly,
) {
    let k = ring.num_primes();
    let n = ring.degree();
    let mut d_store: Option<Vec<Vec<u64>>> = None;
    let d_coeff = coeff_view(ring, pool, d, &mut d_store);
    let mut digit = pool.take_row(n);
    for (i, src) in d_coeff.iter().enumerate().take(k) {
        for j in 0..k {
            let p = ring.primes()[j];
            lift_digit_row(ring, src, i, j, &mut digit);
            ring.ntt(j).forward(&mut digit);
            accumulate_digit_row(
                &digit,
                ksk,
                i,
                j,
                p,
                &mut acc_b.residues[j],
                &mut acc_a.residues[j],
            );
        }
    }
    pool.put_row(digit);
    if let Some(m) = d_store {
        pool.put_matrix(m);
    }
}

/// The reusable decompose phase of a key switch: every RNS digit of one
/// polynomial, lifted to all `k` primes and forward-NTT'd — the `k`
/// inverse plus `k²` forward transforms that dominate key switching, paid
/// once and shared by every subsequent accumulate ("hoisting").
///
/// `σ_g` is a ring automorphism, so applying it to the already-lifted
/// digits `D_i` preserves the decomposition identity
/// (`Σ_i σ_g(D_i)·γ_i = σ_g(Σ_i D_i·γ_i) = σ_g(d) mod Q`) and the digit
/// norms (`‖σ_g(D_i)‖ = ‖D_i‖`, so the key-switch noise bound is
/// unchanged) — and in evaluation form `σ_g` on each digit row is just the
/// cached index permutation. That is what lets `r` rotations of the same
/// ciphertext share one decomposition: each accumulate permutes the stored
/// rows instead of re-deriving digits from the rotated polynomial. The
/// permuted digits are *a* valid decomposition of `σ_g(d)`, not the
/// canonical one (`σ_g` does not commute with the coefficient-wise lift),
/// so hoisted ciphertext bits differ from the sequential rotation's while
/// decrypting identically.
#[derive(Debug)]
pub struct HoistedDecomposition {
    /// `digits[i][j]` = `NTT_j(lift([d]_{q_i}))` — digit `i` at prime `j`.
    digits: Vec<Vec<Vec<u64>>>,
}

impl HoistedDecomposition {
    /// The number of digits (= RNS primes) in the decomposition.
    pub fn num_digits(&self) -> usize {
        self.digits.len()
    }

    /// Returns the digit matrices to a scratch pool.
    pub fn recycle(self, pool: &ScratchPool) {
        for m in self.digits {
            pool.put_matrix(m);
        }
    }
}

/// Runs the decompose phase of a key switch on `d` (any form), producing a
/// [`HoistedDecomposition`] whose matrices come from `pool` (recycle with
/// [`HoistedDecomposition::recycle`]).
pub fn hoist_decompose(
    ring: &RingContext,
    pool: &ScratchPool,
    d: &RnsPoly,
) -> HoistedDecomposition {
    let k = ring.num_primes();
    let n = ring.degree();
    let mut d_store: Option<Vec<Vec<u64>>> = None;
    let d_coeff = coeff_view(ring, pool, d, &mut d_store);
    let mut digits = Vec::with_capacity(k);
    for (i, src) in d_coeff.iter().enumerate().take(k) {
        let mut m = pool.take_matrix(k, n);
        for (j, row) in m.iter_mut().enumerate() {
            lift_digit_row(ring, src, i, j, row);
            ring.ntt(j).forward(row);
        }
        digits.push(m);
    }
    if let Some(m) = d_store {
        pool.put_matrix(m);
    }
    HoistedDecomposition { digits }
}

/// The accumulate phase of a hoisted key switch: folds a prepared
/// decomposition through `ksk` into `acc_b`/`acc_a` (evaluation form,
/// pre-zeroed by the caller), optionally applying the evaluation-domain
/// automorphism permutation `perm` to every digit row first (the hoisted
/// rotation path; `None` reproduces [`key_switch_into`] bit for bit).
/// Per call this costs only `k²` row permutations and `2k²` pointwise
/// Shoup multiply-adds — no NTTs.
pub fn key_switch_hoisted_into(
    ring: &RingContext,
    pool: &ScratchPool,
    hd: &HoistedDecomposition,
    perm: Option<&[u32]>,
    ksk: &KeySwitchKey,
    acc_b: &mut RnsPoly,
    acc_a: &mut RnsPoly,
) {
    let k = ring.num_primes();
    let n = ring.degree();
    assert_eq!(hd.num_digits(), k, "decomposition from a different ring");
    let mut scratch = pool.take_row(n);
    for (i, digit) in hd.digits.iter().enumerate() {
        for (j, row) in digit.iter().enumerate() {
            let p = ring.primes()[j];
            let row: &[u64] = match perm {
                Some(perm) => {
                    for (dst, &src) in scratch.iter_mut().zip(perm) {
                        *dst = row[src as usize];
                    }
                    &scratch
                }
                None => row,
            };
            accumulate_digit_row(
                row,
                ksk,
                i,
                j,
                p,
                &mut acc_b.residues[j],
                &mut acc_a.residues[j],
            );
        }
    }
    pool.put_row(scratch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx(n: usize, k: usize) -> RingContext {
        let primes = crate::zq::ntt_primes(45, 2 * n as u64, k, &[]);
        RingContext::new(n, primes)
    }

    /// The hoisted accumulate over canonical digits (`perm = None`) is the
    /// same computation as the streaming one-shot key switch, reassociated
    /// — the results must match bit for bit.
    #[test]
    fn hoisted_accumulate_matches_one_shot_key_switch() {
        let ring = ctx(64, 3);
        let pool = ScratchPool::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let s = ring.to_eval(&ring.sample_error(&mut rng));
        let s_prime = ring.to_eval(&ring.sample_error(&mut rng));
        let ksk = key_switch_key(&ring, &s, &s_prime, None, &mut rng);
        for form in [PolyForm::Eval, PolyForm::Coeff] {
            let d = match form {
                PolyForm::Eval => ring.sample_uniform(&mut rng),
                PolyForm::Coeff => ring.to_coeff(&ring.sample_uniform(&mut rng)),
            };
            let (mut b1, mut a1) = (ring.zero_eval(), ring.zero_eval());
            key_switch_into(&ring, &pool, &d, &ksk, &mut b1, &mut a1);
            let hd = hoist_decompose(&ring, &pool, &d);
            let (mut b2, mut a2) = (ring.zero_eval(), ring.zero_eval());
            key_switch_hoisted_into(&ring, &pool, &hd, None, &ksk, &mut b2, &mut a2);
            hd.recycle(&pool);
            assert_eq!(b1, b2, "acc_b diverged ({form:?} input)");
            assert_eq!(a1, a2, "acc_a diverged ({form:?} input)");
        }
    }

    /// The identity permutation through the perm path is also bit-identical
    /// (pins the permutation plumbing itself, independent of Galois data).
    #[test]
    fn identity_permutation_is_transparent() {
        let ring = ctx(32, 2);
        let pool = ScratchPool::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let s = ring.to_eval(&ring.sample_error(&mut rng));
        let s_prime = ring.to_eval(&ring.sample_error(&mut rng));
        let ksk = key_switch_key(&ring, &s, &s_prime, None, &mut rng);
        let d = ring.sample_uniform(&mut rng);
        let hd = hoist_decompose(&ring, &pool, &d);
        let (mut b1, mut a1) = (ring.zero_eval(), ring.zero_eval());
        key_switch_hoisted_into(&ring, &pool, &hd, None, &ksk, &mut b1, &mut a1);
        let id: Vec<u32> = (0..ring.degree() as u32).collect();
        let (mut b2, mut a2) = (ring.zero_eval(), ring.zero_eval());
        key_switch_hoisted_into(&ring, &pool, &hd, Some(&id), &ksk, &mut b2, &mut a2);
        hd.recycle(&pool);
        assert_eq!(b1, b2);
        assert_eq!(a1, a2);
    }
}
