//! Residue number system (RNS) contexts: CRT decomposition, exact Garner
//! reconstruction, and exact centered base conversion between RNS bases.
//!
//! BFV ciphertext coefficients live modulo `Q = q_0 · q_1 · ... · q_{k-1}`.
//! Cheap operations stay componentwise. The multiply hot path never leaves
//! machine words: [`RnsBaseConverter`] moves centered values between bases
//! through Garner's mixed-radix digits (u64-only), and big-integer
//! reconstruction via [`RnsContext::reconstruct`] is reserved for decryption
//! and noise metering, where exact magnitudes are genuinely needed.

use crate::bigint::BigUint;
use crate::zq::{add_mod, inv_mod, mul_mod, mul_mod_shoup, shoup_precompute, sub_mod};

/// Precomputed CRT data for a fixed list of distinct primes.
///
/// # Examples
///
/// ```
/// use rlwe_ring::rns::RnsContext;
/// use rlwe_ring::bigint::BigUint;
///
/// let ctx = RnsContext::new(vec![97, 101, 103]);
/// let x = BigUint::from_u64(123_456);
/// let residues = ctx.decompose(&x);
/// assert_eq!(ctx.reconstruct(&residues), x);
/// ```
#[derive(Debug, Clone)]
pub struct RnsContext {
    primes: Vec<u64>,
    modulus: BigUint,
    /// `pp[j][i] = (p_0 * ... * p_{j-1}) mod p_i` for `j <= i` (Garner).
    partial_mod: Vec<Vec<u64>>,
    /// Shoup companions of `partial_mod` (fixed multiplicands on the digit
    /// hot path).
    partial_mod_shoup: Vec<Vec<u64>>,
    /// `garner_inv[i] = ((p_0 * ... * p_{i-1}) mod p_i)^{-1} mod p_i`.
    garner_inv: Vec<u64>,
    garner_inv_shoup: Vec<u64>,
}

impl RnsContext {
    /// Builds a context for `primes` (must be distinct primes).
    ///
    /// # Panics
    ///
    /// Panics if `primes` is empty or contains duplicates.
    pub fn new(primes: Vec<u64>) -> Self {
        assert!(!primes.is_empty(), "need at least one prime");
        for (i, &p) in primes.iter().enumerate() {
            assert!(p > 1);
            assert!(!primes[..i].contains(&p), "duplicate prime {p}");
        }
        let k = primes.len();
        let mut modulus = BigUint::one();
        for &p in &primes {
            modulus = modulus.mul_u64(p);
        }
        // partial_mod[j][i]: product of first j primes mod p_i.
        let mut partial_mod = vec![vec![0u64; k]; k];
        for i in 0..k {
            let mut acc = 1u64 % primes[i];
            for j in 0..k {
                partial_mod[j][i] = acc;
                acc = mul_mod(acc, primes[j] % primes[i], primes[i]);
            }
        }
        let partial_mod_shoup = partial_mod
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(i, &w)| shoup_precompute(w, primes[i]))
                    .collect()
            })
            .collect();
        let garner_inv: Vec<u64> = (0..k)
            .map(|i| inv_mod(partial_mod[i][i], primes[i]))
            .collect();
        let garner_inv_shoup = garner_inv
            .iter()
            .zip(&primes)
            .map(|(&w, &p)| shoup_precompute(w, p))
            .collect();
        RnsContext {
            primes,
            modulus,
            partial_mod,
            partial_mod_shoup,
            garner_inv,
            garner_inv_shoup,
        }
    }

    /// The prime list.
    pub fn primes(&self) -> &[u64] {
        &self.primes
    }

    /// Number of primes.
    pub fn len(&self) -> usize {
        self.primes.len()
    }

    /// True if the context has no primes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.primes.is_empty()
    }

    /// The full modulus `Q`.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Reduces `x` modulo each prime.
    pub fn decompose(&self, x: &BigUint) -> Vec<u64> {
        self.primes.iter().map(|&p| x.rem_u64(p)).collect()
    }

    /// Computes the Garner mixed-radix digits `d_i` of the value with the
    /// given residues: `x = d_0 + d_1·p_0 + d_2·p_0·p_1 + ...` with
    /// `0 ≤ d_i < p_i`. This is the u64-only workhorse behind both exact
    /// reconstruction and [`RnsBaseConverter`].
    ///
    /// # Panics
    ///
    /// Panics if `residues` or `digits` differ in length from the prime
    /// count.
    pub fn mixed_radix_digits_into(&self, residues: &[u64], digits: &mut [u64]) {
        let k = self.primes.len();
        assert_eq!(residues.len(), k);
        assert_eq!(digits.len(), k);
        for i in 0..k {
            let p = self.primes[i];
            let mut acc = 0u64;
            for (j, &dj) in digits.iter().enumerate().take(i) {
                // d_j < p_j may exceed p; mul_mod_shoup is valid for any
                // u64 left operand.
                acc = add_mod(
                    acc,
                    mul_mod_shoup(dj, self.partial_mod[j][i], self.partial_mod_shoup[j][i], p),
                    p,
                );
            }
            let diff = sub_mod(residues[i] % p, acc, p);
            digits[i] = mul_mod_shoup(diff, self.garner_inv[i], self.garner_inv_shoup[i], p);
        }
    }

    /// Garner mixed-radix digits for a whole residue matrix
    /// (`residues[prime][coeff]`, each entry `< p_i`), vectorized over
    /// coefficients: the sequential Garner recurrence runs as per-prime
    /// vector passes with fixed (Shoup) multiplicands, which is what the
    /// multiply hot path needs.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape does not match the prime count.
    pub fn mixed_radix_digit_matrix(&self, residues: &[Vec<u64>]) -> Vec<Vec<u64>> {
        let k = self.primes.len();
        assert_eq!(residues.len(), k);
        let n = residues[0].len();
        let mut digits = vec![vec![0u64; n]; k];
        let mut acc = vec![0u64; n];
        self.mixed_radix_digit_matrix_into(residues, &mut digits, &mut acc);
        digits
    }

    /// [`RnsContext::mixed_radix_digit_matrix`] into caller-provided
    /// buffers — `digits` is the `k × n` output and `acc` an `n`-length
    /// scratch row — so the multiply hot path allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if any buffer shape does not match.
    pub fn mixed_radix_digit_matrix_into(
        &self,
        residues: &[Vec<u64>],
        digits: &mut [Vec<u64>],
        acc: &mut [u64],
    ) {
        let k = self.primes.len();
        assert_eq!(residues.len(), k);
        assert_eq!(digits.len(), k);
        let n = residues[0].len();
        assert_eq!(acc.len(), n);
        for (i, res_i) in residues.iter().enumerate() {
            let p = self.primes[i];
            // acc = Σ_{j<i} d_j · P_{j,i} (mod p_i)
            acc.iter_mut().for_each(|a| *a = 0);
            let (prev, rest) = digits.split_at_mut(i);
            for (j, dj) in prev.iter().enumerate() {
                let w = self.partial_mod[j][i];
                let ws = self.partial_mod_shoup[j][i];
                for (a, &d) in acc.iter_mut().zip(dj) {
                    *a = add_mod(*a, mul_mod_shoup(d, w, ws, p), p);
                }
            }
            let gi = self.garner_inv[i];
            let gis = self.garner_inv_shoup[i];
            for ((d, &r), &a) in rest[0].iter_mut().zip(res_i).zip(acc.iter()) {
                *d = mul_mod_shoup(sub_mod(r, a, p), gi, gis, p);
            }
        }
    }

    /// Exact CRT reconstruction into `[0, Q)` via Garner's mixed-radix
    /// algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `residues.len()` differs from the prime count.
    pub fn reconstruct(&self, residues: &[u64]) -> BigUint {
        let k = self.primes.len();
        let mut digits = vec![0u64; k];
        self.mixed_radix_digits_into(residues, &mut digits);
        // Horner evaluation: x = d_0 + p_0 (d_1 + p_1 (d_2 + ...)).
        let mut x = BigUint::from_u64(digits[k - 1]);
        for i in (0..k - 1).rev() {
            x = x.mul_u64(self.primes[i]);
            x.add_assign_u64(digits[i]);
        }
        x
    }
}

/// Exact centered base conversion between RNS bases, u64-only.
///
/// Given residues of `x ∈ [0, A)` over a source base `A = ∏ p_i`, computes
/// the residues of the **centered** representative `x̂ ∈ (-A/2, A/2]`
/// (`x̂ = x` if `x ≤ ⌊A/2⌋`, else `x - A`) modulo each target prime. Unlike
/// the floating-point "fast base conversion" of BEHZ, the mixed-radix route
/// is exact — no `α·A` overflow term — while still touching nothing wider
/// than a machine word. This is the primitive the BFV multiply uses to
/// extend operands into the auxiliary tensoring base and to shrink the
/// rescaled product back (see the scheme evaluators).
#[derive(Debug, Clone)]
pub struct RnsBaseConverter {
    src: RnsContext,
    targets: Vec<u64>,
    /// `partials[b][j] = (p_0 ... p_{j-1}) mod targets[b]`.
    partials: Vec<Vec<u64>>,
    partials_shoup: Vec<Vec<u64>>,
    /// `A mod targets[b]` — the centering correction.
    src_mod: Vec<u64>,
    /// Mixed-radix digits of `⌊A/2⌋`, for the centered-sign comparison.
    half_digits: Vec<u64>,
}

impl RnsBaseConverter {
    /// Builds a converter from the base of `src` onto `targets` (primes
    /// coprime to the source base).
    pub fn new(src: &RnsContext, targets: &[u64]) -> Self {
        let k = src.len();
        let mut partials = Vec::with_capacity(targets.len());
        let mut partials_shoup = Vec::with_capacity(targets.len());
        for &b in targets {
            let mut row = Vec::with_capacity(k);
            let mut acc = 1u64 % b;
            for &p in src.primes() {
                row.push(acc);
                acc = mul_mod(acc, p % b, b);
            }
            partials_shoup.push(row.iter().map(|&w| shoup_precompute(w, b)).collect());
            partials.push(row);
        }
        let src_mod = targets.iter().map(|&b| src.modulus().rem_u64(b)).collect();
        let half = src.modulus().shr_bits(1);
        let half_residues = src.decompose(&half);
        let mut half_digits = vec![0u64; k];
        src.mixed_radix_digits_into(&half_residues, &mut half_digits);
        RnsBaseConverter {
            src: src.clone(),
            targets: targets.to_vec(),
            partials,
            partials_shoup,
            src_mod,
            half_digits,
        }
    }

    /// The target primes.
    pub fn targets(&self) -> &[u64] {
        &self.targets
    }

    /// Converts a residue matrix (`src_residues[prime][coeff]`, coefficient
    /// domain, entries `< p_i`) into target residues of the centered
    /// values, allocating the output. Runs as vector passes: Garner digits
    /// via [`RnsContext::mixed_radix_digit_matrix`], a per-coefficient sign
    /// mask, then Shoup dot products per target prime with a branchless
    /// centering correction.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape does not match the source base.
    pub fn convert_centered(&self, src_residues: &[Vec<u64>]) -> Vec<Vec<u64>> {
        let pool = crate::pool::ScratchPool::new();
        let n = src_residues[0].len();
        let mut out = vec![vec![0u64; n]; self.targets.len()];
        self.convert_centered_into(src_residues, &pool, &mut out);
        out
    }

    /// [`RnsBaseConverter::convert_centered`] into a caller-provided
    /// `targets × n` output matrix, drawing all internal scratch (Garner
    /// digits, accumulator, sign mask) from `pool` — the allocation-free
    /// variant the evaluator's multiply uses. Output rows are fully
    /// overwritten.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shapes do not match the bases.
    pub fn convert_centered_into(
        &self,
        src_residues: &[Vec<u64>],
        pool: &crate::pool::ScratchPool,
        out: &mut [Vec<u64>],
    ) {
        let k = self.src.len();
        assert_eq!(src_residues.len(), k);
        assert_eq!(out.len(), self.targets.len());
        let n = src_residues[0].len();
        let mut digits = pool.take_matrix(k, n);
        let mut acc = pool.take_row(n);
        self.src
            .mixed_radix_digit_matrix_into(src_residues, &mut digits, &mut acc);
        // neg[c] = all-ones mask when the value's centered representative
        // is negative (mixed-radix lexicographic compare against ⌊A/2⌋);
        // the Garner accumulator row is dead, so it doubles as the mask.
        let mut neg = acc;
        for (c, m) in neg.iter_mut().enumerate() {
            let mut is_neg = false;
            for i in (0..k).rev() {
                let d = digits[i][c];
                let h = self.half_digits[i];
                if d != h {
                    is_neg = d > h;
                    break;
                }
            }
            *m = (is_neg as u64).wrapping_neg();
        }
        for (t, &b) in self.targets.iter().enumerate() {
            let row = &mut out[t];
            assert_eq!(row.len(), n);
            row.iter_mut().for_each(|o| *o = 0);
            for (j, dj) in digits.iter().enumerate() {
                let w = self.partials[t][j];
                let ws = self.partials_shoup[t][j];
                for (o, &d) in row.iter_mut().zip(dj) {
                    *o = add_mod(*o, mul_mod_shoup(d, w, ws, b), b);
                }
            }
            let a_mod = self.src_mod[t];
            for (o, &mask) in row.iter_mut().zip(neg.iter()) {
                *o = sub_mod(*o, a_mod & mask, b);
            }
        }
        pool.put_row(neg);
        pool.put_matrix(digits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_small_primes() {
        let ctx = RnsContext::new(vec![3, 5, 7]);
        for v in 0..105u64 {
            let x = BigUint::from_u64(v);
            assert_eq!(ctx.reconstruct(&ctx.decompose(&x)), x, "v = {v}");
        }
    }

    #[test]
    fn roundtrip_large_primes() {
        let primes = crate::zq::ntt_primes(50, 1 << 13, 5, &[]);
        let ctx = RnsContext::new(primes);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..50 {
            // random value < Q via random residues
            let residues: Vec<u64> = ctx.primes().iter().map(|&p| rng.gen_range(0..p)).collect();
            let x = ctx.reconstruct(&residues);
            assert!(x.cmp_big(ctx.modulus()) == std::cmp::Ordering::Less);
            assert_eq!(ctx.decompose(&x), residues);
        }
    }

    #[test]
    fn modulus_is_product() {
        let ctx = RnsContext::new(vec![97, 101]);
        assert_eq!(ctx.modulus().to_u64(), Some(97 * 101));
    }

    #[test]
    fn single_prime_context() {
        let ctx = RnsContext::new(vec![65537]);
        let x = BigUint::from_u64(1234);
        assert_eq!(ctx.reconstruct(&ctx.decompose(&x)), x);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicates() {
        RnsContext::new(vec![97, 97]);
    }

    #[test]
    fn mixed_radix_digits_recompose() {
        let ctx = RnsContext::new(vec![97, 101, 103]);
        for v in [0u64, 1, 96, 97, 12345, 97 * 101 * 103 - 1] {
            let residues = ctx.decompose(&BigUint::from_u64(v));
            let mut digits = vec![0u64; 3];
            ctx.mixed_radix_digits_into(&residues, &mut digits);
            let recomposed = digits[0] + digits[1] * 97 + digits[2] * 97 * 101;
            assert_eq!(recomposed, v);
        }
    }

    /// Every value in the source base converts to the residues of its
    /// centered representative — exhaustive over a tiny base.
    #[test]
    fn base_conversion_is_exact_and_centered() {
        let src = RnsContext::new(vec![11, 13]); // A = 143
        let targets = [17u64, 19, 23];
        let conv = RnsBaseConverter::new(&src, &targets);
        let a = 11u64 * 13;
        for v in 0..a {
            let residues: Vec<Vec<u64>> = src.primes().iter().map(|&p| vec![v % p]).collect();
            let out = conv.convert_centered(&residues);
            let centered: i64 = if v <= a / 2 {
                v as i64
            } else {
                v as i64 - a as i64
            };
            for (t, &b) in targets.iter().enumerate() {
                assert_eq!(
                    out[t][0],
                    centered.rem_euclid(b as i64) as u64,
                    "v = {v}, target {b}"
                );
            }
        }
    }

    /// Large-base conversion agrees with exact BigUint arithmetic.
    #[test]
    fn base_conversion_matches_bigint() {
        let src_primes = crate::zq::ntt_primes(45, 64, 3, &[]);
        let tgt_primes = crate::zq::ntt_primes(44, 64, 4, &src_primes);
        let src = RnsContext::new(src_primes);
        let conv = RnsBaseConverter::new(&src, &tgt_primes);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let n = 8;
        let residues: Vec<Vec<u64>> = src
            .primes()
            .iter()
            .map(|&p| (0..n).map(|_| rng.gen_range(0..p)).collect())
            .collect();
        let out = conv.convert_centered(&residues);
        let half = src.modulus().shr_bits(1);
        for c in 0..n {
            let col: Vec<u64> = residues.iter().map(|r| r[c]).collect();
            let x = src.reconstruct(&col);
            for (t, &b) in tgt_primes.iter().enumerate() {
                let expect = if x.cmp_big(&half) == std::cmp::Ordering::Greater {
                    // centered negative: (x - A) mod b
                    let diff = src.modulus().sub(&x); // A - x > 0
                    (b - diff.rem_u64(b)) % b
                } else {
                    x.rem_u64(b)
                };
                assert_eq!(out[t][c], expect, "coeff {c}, target {b}");
            }
        }
    }
}
