//! Reusable scratch buffers for the evaluator hot path.
//!
//! Every temporary the evaluator needs is one of two shapes: a single
//! residue **row** (`N` u64 values — one RNS component, a key-switch digit,
//! an auxiliary-base lane) or a residue **matrix** (a `rows × N` stack — an
//! `RnsPoly`'s residues or an auxiliary-base extension). The pool keeps
//! free lists of both so that, after a warm-up call per operation, the hot
//! ops (`add`/`sub`/plaintext ops/rotation/relinearization — and the
//! multiply's temporaries) touch the allocator **zero** times: buffers are
//! taken, used, and returned, and dead ciphertexts are recycled back in by
//! the runner.
//!
//! # Ownership rules
//!
//! * [`ScratchPool::take_row`] / [`ScratchPool::take_matrix`] hand out a
//!   buffer with the requested shape but **unspecified contents** — the
//!   caller must overwrite before reading (use the `_zeroed` variants for
//!   accumulators).
//! * Every taken buffer should be returned with [`ScratchPool::put_row`] /
//!   [`ScratchPool::put_matrix`] once dead. Dropping one instead is safe
//!   (merely a missed reuse), so early returns and panics cannot corrupt
//!   the pool.
//! * Buffers with the wrong row length are rejected on `put` (debug
//!   assert) rather than poisoning later takes.
//!
//! The pool uses interior mutability (`RefCell`/`Cell`) so the evaluator
//! can stay `&self` on every operation; as a consequence an `Evaluator` is
//! deliberately **not** `Sync` — create one evaluator per worker thread
//! and share the (immutable) `BfvContext` between them.
//!
//! [`ScratchPool::stats`] exposes how many buffers were freshly allocated
//! versus reused; the allocation-regression tests pin `fresh` to stay
//! constant across steady-state operations.

use std::cell::{Cell, RefCell};

/// Allocation counters for a [`ScratchPool`] (monotonically increasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers created because the free list was empty (pool misses).
    /// Constant `fresh` across a window of operations proves the window
    /// allocated nothing.
    pub fresh: u64,
    /// Buffers served from the free lists (pool hits).
    pub reused: u64,
}

/// Free lists of row (`N`-element) and matrix (`rows × N`) scratch buffers,
/// plus the outer part-vector shells of dead ciphertexts.
#[derive(Debug, Default)]
pub struct ScratchPool {
    rows: RefCell<Vec<Vec<u64>>>,
    matrices: RefCell<Vec<Vec<Vec<u64>>>>,
    parts: RefCell<Vec<Vec<crate::poly::RnsPoly>>>,
    fresh: Cell<u64>,
    reused: Cell<u64>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Allocation counters so far.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            fresh: self.fresh.get(),
            reused: self.reused.get(),
        }
    }

    /// A row of `len` u64s with unspecified contents.
    pub fn take_row(&self, len: usize) -> Vec<u64> {
        match self.rows.borrow_mut().pop() {
            Some(mut row) => {
                self.reused.set(self.reused.get() + 1);
                debug_assert_eq!(row.len(), len, "pool rows have one length per context");
                row.resize(len, 0);
                row
            }
            None => {
                self.fresh.set(self.fresh.get() + 1);
                vec![0u64; len]
            }
        }
    }

    /// A zero-filled row of `len` u64s.
    pub fn take_row_zeroed(&self, len: usize) -> Vec<u64> {
        let mut row = self.take_row(len);
        row.iter_mut().for_each(|x| *x = 0);
        row
    }

    /// Returns a row to the pool.
    pub fn put_row(&self, row: Vec<u64>) {
        self.rows.borrow_mut().push(row);
    }

    /// A `rows × len` matrix with unspecified contents. The outer shell is
    /// reused too, so a steady-state take performs no allocation at all.
    pub fn take_matrix(&self, rows: usize, len: usize) -> Vec<Vec<u64>> {
        let mut m = match self.matrices.borrow_mut().pop() {
            Some(m) => {
                self.reused.set(self.reused.get() + 1);
                m
            }
            None => {
                self.fresh.set(self.fresh.get() + 1);
                Vec::with_capacity(rows)
            }
        };
        while m.len() > rows {
            self.put_row(m.pop().expect("len checked"));
        }
        for row in &mut m {
            debug_assert_eq!(row.len(), len, "pool rows have one length per context");
            row.resize(len, 0);
        }
        while m.len() < rows {
            m.push(self.take_row(len));
        }
        m
    }

    /// A zero-filled `rows × len` matrix.
    pub fn take_matrix_zeroed(&self, rows: usize, len: usize) -> Vec<Vec<u64>> {
        let mut m = self.take_matrix(rows, len);
        for row in &mut m {
            row.iter_mut().for_each(|x| *x = 0);
        }
        m
    }

    /// Returns a matrix (e.g. a dead `RnsPoly`'s residues) to the pool.
    pub fn put_matrix(&self, m: Vec<Vec<u64>>) {
        self.matrices.borrow_mut().push(m);
    }

    /// An empty part-vector shell (a `Ciphertext`'s outer `Vec`) with
    /// capacity for the usual two or three parts.
    pub fn take_parts(&self) -> Vec<crate::poly::RnsPoly> {
        match self.parts.borrow_mut().pop() {
            Some(mut v) => {
                self.reused.set(self.reused.get() + 1);
                debug_assert!(v.is_empty(), "recycled part shells are drained first");
                v.clear();
                v
            }
            None => {
                self.fresh.set(self.fresh.get() + 1);
                Vec::with_capacity(3)
            }
        }
    }

    /// Returns a drained part-vector shell to the pool. Any parts still
    /// inside are dropped (missed reuse, never corruption) — drain them
    /// with [`ScratchPool::put_matrix`] first.
    pub fn put_parts(&self, mut v: Vec<crate::poly::RnsPoly>) {
        v.clear();
        self.parts.borrow_mut().push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_reused_not_reallocated() {
        let pool = ScratchPool::new();
        let r = pool.take_row(8);
        assert_eq!(
            pool.stats(),
            PoolStats {
                fresh: 1,
                reused: 0
            }
        );
        pool.put_row(r);
        let r = pool.take_row_zeroed(8);
        assert_eq!(
            pool.stats(),
            PoolStats {
                fresh: 1,
                reused: 1
            }
        );
        assert!(r.iter().all(|&x| x == 0));
        pool.put_row(r);
    }

    #[test]
    fn matrices_reshape_without_fresh_rows() {
        let pool = ScratchPool::new();
        let m = pool.take_matrix_zeroed(3, 4);
        assert_eq!(m.len(), 3);
        let fresh_after_warmup = pool.stats().fresh;
        pool.put_matrix(m);
        // Same shape back out: no new allocations.
        let m = pool.take_matrix(3, 4);
        assert_eq!(pool.stats().fresh, fresh_after_warmup);
        pool.put_matrix(m);
        // Shrinking releases rows back to the row list.
        let m = pool.take_matrix(1, 4);
        assert_eq!(pool.stats().fresh, fresh_after_warmup);
        pool.put_matrix(m);
        // Growing again reclaims those rows.
        let m = pool.take_matrix(3, 4);
        assert_eq!(pool.stats().fresh, fresh_after_warmup);
        pool.put_matrix(m);
    }

    #[test]
    fn part_shells_are_reused_and_counted() {
        let pool = ScratchPool::new();
        let v = pool.take_parts();
        assert_eq!(
            pool.stats(),
            PoolStats {
                fresh: 1,
                reused: 0
            }
        );
        pool.put_parts(v);
        let v = pool.take_parts();
        assert_eq!(
            pool.stats(),
            PoolStats {
                fresh: 1,
                reused: 1
            }
        );
        assert!(v.is_empty());
    }

    #[test]
    fn zeroed_matrix_is_zero_after_reuse() {
        let pool = ScratchPool::new();
        let mut m = pool.take_matrix(2, 4);
        for row in &mut m {
            row.iter_mut().for_each(|x| *x = 7);
        }
        pool.put_matrix(m);
        let m = pool.take_matrix_zeroed(2, 4);
        assert!(m.iter().all(|r| r.iter().all(|&x| x == 0)));
    }
}
