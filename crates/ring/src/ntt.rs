//! Negacyclic number-theoretic transform over `Z_p[x]/(x^N + 1)`.
//!
//! The forward transform maps coefficients to evaluations at the odd powers
//! of a primitive 2N-th root of unity ψ, in the **natural order**
//! `out[j] = m(ψ^(2j+1))`. Pinning the evaluation order (instead of the usual
//! bit-reversed convention) is what lets the batch encoder map SIMD slots to
//! Galois-orbit positions directly; see [`crate::encoding`].
//!
//! Implementation: twist by ψ^i, bit-reversal permutation, then iterative
//! decimation-in-time butterflies with Shoup-precomputed twiddles.

use crate::zq::{add_mod, inv_mod, mul_mod, mul_mod_shoup, pow_mod, shoup_precompute, sub_mod};

/// Precomputed tables for a fixed `(p, N)` pair.
///
/// # Examples
///
/// ```
/// use rlwe_ring::{ntt::NttTables, zq};
///
/// let p = zq::ntt_primes(50, 16, 1, &[])[0];
/// let tables = NttTables::new(p, 8);
/// let mut a: Vec<u64> = (0..8).collect();
/// let orig = a.clone();
/// tables.forward(&mut a);
/// tables.inverse(&mut a);
/// assert_eq!(a, orig);
/// ```
#[derive(Debug, Clone)]
pub struct NttTables {
    p: u64,
    n: usize,
    psi: Vec<u64>,
    psi_shoup: Vec<u64>,
    psi_inv: Vec<u64>,
    psi_inv_shoup: Vec<u64>,
    tw: Vec<u64>,
    tw_shoup: Vec<u64>,
    tw_inv: Vec<u64>,
    tw_inv_shoup: Vec<u64>,
    n_inv: u64,
    n_inv_shoup: u64,
    bitrev: Vec<u32>,
}

impl NttTables {
    /// Builds tables for ring degree `n` (a power of two ≥ 2) modulo prime
    /// `p ≡ 1 (mod 2n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or `2n ∤ p - 1`.
    pub fn new(p: u64, n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 2, "n must be a power of two");
        assert!((p - 1).is_multiple_of(2 * n as u64), "p must be 1 mod 2n");
        let psi_root = crate::zq::root_of_unity(2 * n as u64, p);
        Self::with_root(p, n, psi_root)
    }

    /// Builds tables with an explicit primitive 2n-th root ψ (used by the
    /// batch encoder so the slot map and the transform agree on ψ).
    pub fn with_root(p: u64, n: usize, psi_root: u64) -> Self {
        assert_eq!(pow_mod(psi_root, 2 * n as u64, p), 1);
        assert_eq!(
            pow_mod(psi_root, n as u64, p),
            p - 1,
            "psi must be primitive"
        );
        let omega = mul_mod(psi_root, psi_root, p);
        let omega_inv = inv_mod(omega, p);
        let psi_inv_root = inv_mod(psi_root, p);

        let pows = |base: u64| -> Vec<u64> {
            let mut v = Vec::with_capacity(n);
            let mut cur = 1u64;
            for _ in 0..n {
                v.push(cur);
                cur = mul_mod(cur, base, p);
            }
            v
        };
        let psi = pows(psi_root);
        let psi_inv = pows(psi_inv_root);

        // Stage twiddles: for each len = 2,4,..,n the factors omega^(n/len * k).
        let mut tw = Vec::with_capacity(n - 1);
        let mut tw_inv = Vec::with_capacity(n - 1);
        let mut len = 2;
        while len <= n {
            let step = (n / len) as u64;
            for k in 0..len / 2 {
                tw.push(pow_mod(omega, step * k as u64, p));
                tw_inv.push(pow_mod(omega_inv, step * k as u64, p));
            }
            len <<= 1;
        }

        let shoup_all = |v: &[u64]| v.iter().map(|&w| shoup_precompute(w, p)).collect();
        let n_inv = inv_mod(n as u64, p);

        let log_n = n.trailing_zeros();
        let bitrev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - log_n))
            .collect();

        NttTables {
            p,
            n,
            psi_shoup: shoup_all(&psi),
            psi_inv_shoup: shoup_all(&psi_inv),
            tw_shoup: shoup_all(&tw),
            tw_inv_shoup: shoup_all(&tw_inv),
            psi,
            psi_inv,
            tw,
            tw_inv,
            n_inv,
            n_inv_shoup: shoup_precompute(n_inv, p),
            bitrev,
        }
    }

    /// The prime modulus.
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// The ring degree.
    pub fn degree(&self) -> usize {
        self.n
    }

    /// The primitive 2n-th root ψ used by this table (ψ^1).
    pub fn psi(&self) -> u64 {
        self.psi[1]
    }

    fn permute(&self, a: &mut [u64]) {
        for i in 0..self.n {
            let j = self.bitrev[i] as usize;
            if i < j {
                a.swap(i, j);
            }
        }
    }

    fn butterflies(&self, a: &mut [u64], tw: &[u64], tw_shoup: &[u64]) {
        let p = self.p;
        let n = self.n;
        let mut len = 2;
        let mut tw_off = 0;
        while len <= n {
            let half = len / 2;
            let stage_tw = &tw[tw_off..tw_off + half];
            let stage_tw_shoup = &tw_shoup[tw_off..tw_off + half];
            // chunk/split structure instead of index arithmetic so the
            // bounds checks vanish from the innermost loop.
            for chunk in a.chunks_exact_mut(len) {
                let (lo, hi) = chunk.split_at_mut(half);
                for (((x, y), &w), &ws) in lo
                    .iter_mut()
                    .zip(hi.iter_mut())
                    .zip(stage_tw)
                    .zip(stage_tw_shoup)
                {
                    let t = mul_mod_shoup(*y, w, ws, p);
                    let u = *x;
                    *x = add_mod(u, t, p);
                    *y = sub_mod(u, t, p);
                }
            }
            tw_off += half;
            len <<= 1;
        }
    }

    /// Forward negacyclic NTT, in place: coefficients → evaluations
    /// `out[j] = m(ψ^(2j+1))` in natural `j` order.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        let p = self.p;
        for (i, x) in a.iter_mut().enumerate() {
            *x = mul_mod_shoup(*x, self.psi[i], self.psi_shoup[i], p);
        }
        self.permute(a);
        self.butterflies(a, &self.tw, &self.tw_shoup);
    }

    /// Inverse negacyclic NTT, in place: evaluations → coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        let p = self.p;
        self.permute(a);
        self.butterflies(a, &self.tw_inv, &self.tw_inv_shoup);
        for (i, x) in a.iter_mut().enumerate() {
            let v = mul_mod_shoup(*x, self.n_inv, self.n_inv_shoup, p);
            *x = mul_mod_shoup(v, self.psi_inv[i], self.psi_inv_shoup[i], p);
        }
    }

    /// Negacyclic convolution `a * b mod (x^n + 1, p)` out of place.
    pub fn multiply(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.forward(&mut fa);
        self.forward(&mut fb);
        fa = pointwise_mul(&fa, &fb, self.p);
        self.inverse(&mut fa);
        fa
    }
}

/// Pointwise (dyadic) product of two evaluation-form residue vectors mod
/// `p` — the whole multiply for operands already resident in the transform
/// domain, as double-CRT ciphertexts are. Barrett-reduced: the one-off
/// reducer setup amortizes over the vector, replacing a 128-bit division
/// per slot with a few word multiplies. Allocates; hot paths use the
/// `_into`/`_assign` variants with a precomputed reducer instead.
pub fn pointwise_mul(a: &[u64], b: &[u64], p: u64) -> Vec<u64> {
    debug_assert_eq!(a.len(), b.len());
    let bar = crate::zq::Barrett::new(p);
    let mut out = vec![0u64; a.len()];
    pointwise_mul_into(a, b, bar, &mut out);
    out
}

/// `out[i] = a[i] * b[i] mod p` into an existing buffer (no allocation).
pub fn pointwise_mul_into(a: &[u64], b: &[u64], bar: crate::zq::Barrett, out: &mut [u64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = bar.mul_mod(x, y);
    }
}

/// `a[i] *= b[i] mod p` in place (no allocation).
pub fn pointwise_mul_assign(a: &mut [u64], b: &[u64], bar: crate::zq::Barrett) {
    debug_assert_eq!(a.len(), b.len());
    for (x, &y) in a.iter_mut().zip(b) {
        *x = bar.mul_mod(*x, y);
    }
}

/// `acc[i] += a[i] * b[i] mod p` in place (no allocation) — the
/// fused-multiply-accumulate the tensor's cross term needs.
pub fn pointwise_mul_add_into(acc: &mut [u64], a: &[u64], b: &[u64], bar: crate::zq::Barrett) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), acc.len());
    let p = bar.modulus();
    for ((o, &x), &y) in acc.iter_mut().zip(a).zip(b) {
        *o = add_mod(*o, bar.mul_mod(x, y), p);
    }
}

/// Schoolbook negacyclic multiplication, O(n²) — reference for tests.
pub fn negacyclic_mul_schoolbook(a: &[u64], b: &[u64], p: u64) -> Vec<u64> {
    let n = a.len();
    assert_eq!(b.len(), n);
    let mut out = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let prod = mul_mod(ai, bj, p);
            let k = i + j;
            if k < n {
                out[k] = add_mod(out[k], prod, p);
            } else {
                out[k - n] = sub_mod(out[k - n], prod, p);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zq;
    use rand::{Rng, SeedableRng};

    fn table(n: usize) -> NttTables {
        let p = zq::ntt_primes(50, 2 * n as u64, 1, &[])[0];
        NttTables::new(p, n)
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [4usize, 8, 64, 256, 1024] {
            let t = table(n);
            let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64);
            let orig: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t.modulus())).collect();
            let mut a = orig.clone();
            t.forward(&mut a);
            t.inverse(&mut a);
            assert_eq!(a, orig, "n = {n}");
        }
    }

    #[test]
    fn evaluation_order_is_natural_odd_powers() {
        let n = 8;
        let t = table(n);
        let p = t.modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let coeffs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..p)).collect();
        let mut a = coeffs.clone();
        t.forward(&mut a);
        let psi = t.psi();
        for (j, &aj) in a.iter().enumerate() {
            let point = zq::pow_mod(psi, (2 * j + 1) as u64, p);
            // Horner evaluation
            let mut acc = 0u64;
            for &c in coeffs.iter().rev() {
                acc = add_mod(mul_mod(acc, point, p), c, p);
            }
            assert_eq!(aj, acc, "slot {j}");
        }
    }

    #[test]
    fn multiply_matches_schoolbook() {
        for n in [4usize, 16, 64] {
            let t = table(n);
            let p = t.modulus();
            let mut rng = rand::rngs::StdRng::seed_from_u64(42 + n as u64);
            let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..p)).collect();
            let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..p)).collect();
            assert_eq!(t.multiply(&a, &b), negacyclic_mul_schoolbook(&a, &b, p));
        }
    }

    #[test]
    fn x_to_the_n_is_minus_one() {
        // x^(n-1) * x = x^n = -1 in the negacyclic ring.
        let n = 16;
        let t = table(n);
        let p = t.modulus();
        let mut a = vec![0u64; n];
        a[n - 1] = 1;
        let mut b = vec![0u64; n];
        b[1] = 1;
        let c = t.multiply(&a, &b);
        let mut expect = vec![0u64; n];
        expect[0] = p - 1;
        assert_eq!(c, expect);
    }

    #[test]
    fn works_over_plaintext_modulus_65537() {
        // Batching uses the same transform over Z_t.
        let n = 32;
        let t = NttTables::new(65537, n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let orig: Vec<u64> = (0..n).map(|_| rng.gen_range(0..65537)).collect();
        let mut a = orig.clone();
        t.forward(&mut a);
        t.inverse(&mut a);
        assert_eq!(a, orig);
    }
}
