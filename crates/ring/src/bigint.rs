//! Arbitrary-precision unsigned (and lightly signed) integers on `u64` limbs.
//!
//! The BFV multiply and decrypt paths need exact integer arithmetic on values
//! up to roughly `N * Q^2` (about 500–600 bits for the benchmark parameter
//! sets), which is far beyond `u128`. This module provides the minimal exact
//! big-integer kit those paths need: add/sub/cmp/mul, Knuth Algorithm D
//! division, single-limb helpers, and bit inspection. It is deliberately not
//! a general-purpose bignum crate — only what the cryptosystem uses, heavily
//! tested (including property tests against `u128` ground truth).

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer, little-endian `u64` limbs.
///
/// Invariant: no trailing zero limbs (the canonical representation of zero is
/// an empty limb vector). All constructors and arithmetic maintain this.
///
/// # Examples
///
/// ```
/// use rlwe_ring::bigint::BigUint;
///
/// let a = BigUint::from_u128(1 << 100);
/// let b = BigUint::from_u64(3);
/// let (q, r) = a.div_rem(&b);
/// assert_eq!(q.mul(&b).add(&r), a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut b = BigUint { limbs: vec![v] };
        b.normalize();
        b
    }

    /// Constructs from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let mut b = BigUint {
            limbs: vec![v as u64, (v >> 64) as u64],
        };
        b.normalize();
        b
    }

    /// Constructs from little-endian limbs (trailing zeros allowed).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut b = BigUint { limbs };
        b.normalize();
        b
    }

    /// Borrows the little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (`0` for zero).
    pub fn bits(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u32 - 1) * 64 + (64 - top.leading_zeros()),
        }
    }

    /// Converts to `u128`, returning `None` on overflow.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[0] as u128) | ((self.limbs[1] as u128) << 64)),
            _ => None,
        }
    }

    /// Converts to `u64`, returning `None` on overflow.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Sum of `self` and `other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let b = if i < short.len() { short[i] } else { 0 };
            let (s1, c1) = long[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// Adds a `u64` in place.
    pub fn add_assign_u64(&mut self, v: u64) {
        let mut carry = v;
        for limb in self.limbs.iter_mut() {
            let (s, c) = limb.overflowing_add(carry);
            *limb = s;
            carry = c as u64;
            if carry == 0 {
                return;
            }
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// Difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(
            self.cmp_big(other) != Ordering::Less,
            "BigUint::sub underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = if i < other.limbs.len() {
                other.limbs[i]
            } else {
                0
            };
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        BigUint::from_limbs(out)
    }

    /// Three-way comparison (named to avoid clashing with `Ord::cmp`).
    pub fn cmp_big(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Product of `self` and `other` (schoolbook; operands here are ≤ ~10 limbs).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Product with a single limb.
    pub fn mul_u64(&self, v: u64) -> BigUint {
        if v == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &a in &self.limbs {
            let cur = (a as u128) * (v as u128) + carry;
            out.push(cur as u64);
            carry = cur >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    /// Left shift by `sh` bits.
    pub fn shl_bits(&self, sh: u32) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_sh = (sh / 64) as usize;
        let bit_sh = sh % 64;
        let mut out = vec![0u64; self.limbs.len() + limb_sh + 1];
        for (i, &a) in self.limbs.iter().enumerate() {
            if bit_sh == 0 {
                out[i + limb_sh] |= a;
            } else {
                out[i + limb_sh] |= a << bit_sh;
                out[i + limb_sh + 1] |= a >> (64 - bit_sh);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Right shift by `sh` bits.
    pub fn shr_bits(&self, sh: u32) -> BigUint {
        let limb_sh = (sh / 64) as usize;
        if limb_sh >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_sh = sh % 64;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_sh);
        for i in limb_sh..self.limbs.len() {
            let mut v = self.limbs[i] >> bit_sh;
            if bit_sh != 0 && i + 1 < self.limbs.len() {
                v |= self.limbs[i + 1] << (64 - bit_sh);
            }
            out.push(v);
        }
        BigUint::from_limbs(out)
    }

    /// Remainder modulo a single limb.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn rem_u64(&self, m: u64) -> u64 {
        assert!(m != 0, "division by zero");
        let mut rem = 0u128;
        for &limb in self.limbs.iter().rev() {
            rem = ((rem << 64) | limb as u128) % (m as u128);
        }
        rem as u64
    }

    /// Quotient and remainder by a single limb.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn div_rem_u64(&self, m: u64) -> (BigUint, u64) {
        assert!(m != 0, "division by zero");
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / m as u128) as u64;
            rem = cur % m as u128;
        }
        (BigUint::from_limbs(q), rem as u64)
    }

    /// Quotient and remainder (Knuth Algorithm D for multi-limb divisors).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, BigUint::from_u64(r));
        }
        if self.cmp_big(divisor) == Ordering::Less {
            return (BigUint::zero(), self.clone());
        }

        // Normalize: shift so divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros();
        let mut u = self.shl_bits(shift).limbs;
        let v = divisor.shl_bits(shift).limbs;
        let n = v.len();
        let m = u.len() - n;
        u.push(0); // u has m + n + 1 limbs

        let v_top = v[n - 1];
        let v_next = v[n - 2];
        let mut q = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            // Estimate q̂ from the top two limbs of the current remainder.
            let num = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = num / v_top as u128;
            let mut rhat = num % v_top as u128;
            while qhat >> 64 != 0 || qhat * v_next as u128 > ((rhat << 64) | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v_top as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }

            // Multiply-subtract: u[j..j+n+1] -= qhat * v
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * v[i] as u128 + carry;
                carry = p >> 64;
                let sub = (u[j + i] as i128) - (p as u64 as i128) + borrow;
                u[j + i] = sub as u64;
                borrow = sub >> 64; // arithmetic shift: 0 or -1
            }
            let sub = (u[j + n] as i128) - (carry as i128) + borrow;
            u[j + n] = sub as u64;
            borrow = sub >> 64;

            let mut qj = qhat as u64;
            if borrow != 0 {
                // q̂ was one too large: add divisor back.
                qj -= 1;
                let mut carry2 = 0u128;
                for i in 0..n {
                    let s = u[j + i] as u128 + v[i] as u128 + carry2;
                    u[j + i] = s as u64;
                    carry2 = s >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry2 as u64);
            }
            q[j] = qj;
        }

        let rem = BigUint::from_limbs(u[..n].to_vec()).shr_bits(shift);
        (BigUint::from_limbs(q), rem)
    }

    /// `round(self * num / den)` with round-half-up, exact.
    pub fn mul_div_round(&self, num: u64, den: &BigUint) -> BigUint {
        let scaled = self.mul_u64(num);
        let half = den.shr_bits(1);
        let (q, r) = scaled.div_rem(den);
        // round half up: if 2r >= den, bump. den may be odd: compare r > half,
        // or r == half and den even.
        match r.cmp_big(&half) {
            Ordering::Greater => q.add(&BigUint::one()),
            Ordering::Equal if den.limbs[0] & 1 == 0 => q.add(&BigUint::one()),
            _ => q,
        }
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0x0");
        }
        write!(f, "0x")?;
        for (i, limb) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                write!(f, "{limb:x}")?;
            } else {
                write!(f, "{limb:016x}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_u128(v)
    }
}

/// A signed big integer: sign + magnitude, used for centered-representative
/// arithmetic in the BFV multiply and decrypt paths.
///
/// # Examples
///
/// ```
/// use rlwe_ring::bigint::{BigInt, BigUint};
///
/// let a = BigInt::from_i64(-5);
/// let b = BigInt::from_i64(3);
/// assert_eq!(a.add(&b), BigInt::from_i64(-2));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BigInt {
    /// True magnitude.
    pub mag: BigUint,
    /// Sign: `true` means negative. Zero is always non-negative.
    pub neg: bool,
}

impl BigInt {
    /// The value zero.
    pub fn zero() -> Self {
        BigInt {
            mag: BigUint::zero(),
            neg: false,
        }
    }

    /// Constructs from an `i64`.
    pub fn from_i64(v: i64) -> Self {
        BigInt {
            mag: BigUint::from_u64(v.unsigned_abs()),
            neg: v < 0,
        }
    }

    /// Constructs a non-negative value from a `BigUint`.
    pub fn from_biguint(mag: BigUint) -> Self {
        BigInt { mag, neg: false }
    }

    /// Returns `true` if zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    fn canonical(mut self) -> Self {
        if self.mag.is_zero() {
            self.neg = false;
        }
        self
    }

    /// Negation.
    pub fn negate(&self) -> BigInt {
        BigInt {
            mag: self.mag.clone(),
            neg: !self.neg,
        }
        .canonical()
    }

    /// Sum.
    pub fn add(&self, other: &BigInt) -> BigInt {
        if self.neg == other.neg {
            BigInt {
                mag: self.mag.add(&other.mag),
                neg: self.neg,
            }
            .canonical()
        } else {
            match self.mag.cmp_big(&other.mag) {
                Ordering::Less => BigInt {
                    mag: other.mag.sub(&self.mag),
                    neg: other.neg,
                }
                .canonical(),
                _ => BigInt {
                    mag: self.mag.sub(&other.mag),
                    neg: self.neg,
                }
                .canonical(),
            }
        }
    }

    /// Difference.
    pub fn sub(&self, other: &BigInt) -> BigInt {
        self.add(&other.negate())
    }

    /// Product.
    pub fn mul(&self, other: &BigInt) -> BigInt {
        BigInt {
            mag: self.mag.mul(&other.mag),
            neg: self.neg != other.neg,
        }
        .canonical()
    }

    /// `round(self * num / den)` with round-half-away-from-zero, exact.
    pub fn mul_div_round(&self, num: u64, den: &BigUint) -> BigInt {
        BigInt {
            mag: self.mag.mul_div_round(num, den),
            neg: self.neg,
        }
        .canonical()
    }

    /// Reduces into `[0, m)` for a single-limb modulus.
    pub fn rem_euclid_u64(&self, m: u64) -> u64 {
        let r = self.mag.rem_u64(m);
        if self.neg && r != 0 {
            m - r
        } else {
            r
        }
    }

    /// Reduces into `[0, m)` for a big modulus.
    pub fn rem_euclid_big(&self, m: &BigUint) -> BigUint {
        let (_, r) = self.mag.div_rem(m);
        if self.neg && !r.is_zero() {
            m.sub(&r)
        } else {
            r
        }
    }
}

/// Interprets `x ∈ [0, q)` as a centered representative in `(-q/2, q/2]`.
pub fn center(x: &BigUint, q: &BigUint) -> BigInt {
    let half = q.shr_bits(1);
    if x.cmp_big(&half) == Ordering::Greater {
        BigInt {
            mag: q.sub(x),
            neg: true,
        }
        .canonical()
    } else {
        BigInt::from_biguint(x.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_canonical() {
        assert!(BigUint::zero().is_zero());
        assert_eq!(BigUint::from_u64(0), BigUint::zero());
        assert_eq!(BigUint::from_limbs(vec![0, 0, 0]), BigUint::zero());
        assert_eq!(BigUint::zero().bits(), 0);
    }

    #[test]
    fn add_sub_roundtrip_small() {
        let a = BigUint::from_u128(u128::MAX);
        let b = BigUint::from_u64(u64::MAX);
        let s = a.add(&b);
        assert_eq!(s.sub(&b), a);
        assert_eq!(s.sub(&a), b);
    }

    #[test]
    fn mul_matches_u128() {
        let a = BigUint::from_u64(0xdead_beef_1234_5678);
        let b = BigUint::from_u64(0xfeed_face_8765_4321);
        let p = a.mul(&b);
        let expect = 0xdead_beef_1234_5678u128 * 0xfeed_face_8765_4321u128;
        assert_eq!(p.to_u128(), Some(expect));
    }

    #[test]
    fn div_rem_u64_small() {
        let a = BigUint::from_u128(12345678901234567890123456789);
        let (q, r) = a.div_rem_u64(97);
        assert_eq!(q.mul_u64(97).add(&BigUint::from_u64(r)), a);
        assert!(r < 97);
    }

    #[test]
    fn div_rem_big_simple() {
        let a = BigUint::from_u128(u128::MAX).mul(&BigUint::from_u128(u128::MAX));
        let b = BigUint::from_u128(u128::MAX - 12345);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r.cmp_big(&b) == Ordering::Less);
    }

    #[test]
    fn div_rem_needs_correction_step() {
        // Constructed so the q̂ estimate is too large and the add-back path runs.
        let b = BigUint::from_limbs(vec![0, 1, 0x8000_0000_0000_0000]);
        let a = b
            .mul(&BigUint::from_limbs(vec![u64::MAX, u64::MAX]))
            .add(&b.sub(&BigUint::one()));
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r.cmp_big(&b) == Ordering::Less);
    }

    #[test]
    fn shifts_invert() {
        let a = BigUint::from_u128(0x1234_5678_9abc_def0_1111_2222_3333_4444);
        for sh in [0u32, 1, 63, 64, 65, 127, 130] {
            assert_eq!(a.shl_bits(sh).shr_bits(sh), a, "shift {sh}");
        }
    }

    #[test]
    fn rem_u64_agrees_with_div_rem_u64() {
        let a = BigUint::from_limbs(vec![0x1111, 0x2222, 0x3333, 0x4444]);
        for m in [3u64, 97, 65537, (1 << 61) - 1] {
            assert_eq!(a.rem_u64(m), a.div_rem_u64(m).1);
        }
    }

    #[test]
    fn mul_div_round_exact_cases() {
        // round(10 * 3 / 4) = round(7.5) = 8 (half-up)
        let a = BigUint::from_u64(10);
        assert_eq!(a.mul_div_round(3, &BigUint::from_u64(4)).to_u64(), Some(8));
        // round(10 * 3 / 7) = round(4.28) = 4
        assert_eq!(a.mul_div_round(3, &BigUint::from_u64(7)).to_u64(), Some(4));
        // round(11 * 3 / 6) = round(5.5) = 6
        let b = BigUint::from_u64(11);
        assert_eq!(b.mul_div_round(3, &BigUint::from_u64(6)).to_u64(), Some(6));
    }

    #[test]
    fn bigint_signs() {
        let a = BigInt::from_i64(-7);
        let b = BigInt::from_i64(7);
        assert_eq!(a.add(&b), BigInt::zero());
        assert_eq!(a.mul(&b), BigInt::from_i64(-49));
        assert_eq!(a.mul(&a), BigInt::from_i64(49));
        assert_eq!(a.sub(&b), BigInt::from_i64(-14));
        assert_eq!(a.rem_euclid_u64(5), 3);
        assert_eq!(b.rem_euclid_u64(5), 2);
    }

    #[test]
    fn center_works() {
        let q = BigUint::from_u64(17);
        assert_eq!(center(&BigUint::from_u64(3), &q), BigInt::from_i64(3));
        assert_eq!(center(&BigUint::from_u64(16), &q), BigInt::from_i64(-1));
        assert_eq!(center(&BigUint::from_u64(8), &q), BigInt::from_i64(8));
        assert_eq!(center(&BigUint::from_u64(9), &q), BigInt::from_i64(-8));
    }

    #[test]
    fn display_hex() {
        let a = BigUint::from_u128((1u128 << 64) + 0xabc);
        assert_eq!(format!("{a}"), "0x10000000000000abc");
        assert_eq!(format!("{}", BigUint::zero()), "0x0");
    }
}
