//! # rlwe-ring — shared ring arithmetic under the scheme backends
//!
//! The scheme-neutral layer every HE backend in this workspace builds on:
//! power-of-two negacyclic rings `Z_Q[x]/(x^N + 1)` in RNS (double-CRT)
//! representation, with exact big-integer fallbacks for the places RNS
//! alone cannot express. Both the BFV and BGV crates are thin scheme
//! layers (encoding, encryption, noise, evaluator) over this crate.
//!
//! * [`zq`] — scalar arithmetic mod word-size primes: Barrett and Shoup
//!   multiplication, primality testing, NTT-friendly prime generation.
//! * [`ntt`] — negacyclic number-theoretic transforms per prime.
//! * [`rns`] — CRT contexts and exact centered base conversion between
//!   RNS bases.
//! * [`bigint`] — minimal arbitrary-precision integers backing CRT
//!   reconstruction and centered lifts.
//! * [`poly`] — [`poly::RingContext`] / [`poly::RnsPoly`]: polynomials in
//!   coefficient or evaluation form, arithmetic, sampling, and the
//!   RNS-decomposition step of key switching.
//! * [`pool`] — a scratch-buffer pool for allocation-free evaluator hot
//!   paths.
//! * [`params`] — the shared [`params::RlweParams`] parameter sets,
//!   validation, and the compiler-facing [`params::ParamPolicy`]
//!   vocabulary (per-scheme noise-aware *selection* lives in the scheme
//!   crates).
//! * [`batch`] — the SEAL-compatible 2 × (N/2) slot geometry and the
//!   Galois elements for row rotation / column swap.
//! * [`keyswitch`] — RNS-decomposition key switching: key generation
//!   (with an optional error scale for BGV's `t·e` noise lattice) and the
//!   digit-decomposition inner product.
//!
//! Like the scheme crates, this is research-grade code for reproducing a
//! paper: do not use it to protect real data.

pub mod batch;
pub mod bigint;
pub mod keyswitch;
pub mod ntt;
pub mod params;
pub mod poly;
pub mod pool;
pub mod rns;
pub mod zq;
