//! Scheme-neutral RLWE parameter sets and the shared parameter-policy
//! vocabulary.
//!
//! Every scheme backend (BFV, BGV) runs over the same ring shape — a
//! power-of-two degree `N`, a batching-friendly plaintext modulus `t`, and
//! an RNS chain of NTT-friendly ciphertext primes — so the parameter
//! *struct*, its structural validation, and the compiler-facing
//! [`ParamPolicy`] live here. What differs per scheme is *noise*: each
//! scheme crate provides its own `NoiseModel`, `ParamSelector` candidate
//! table, and a `resolve_policy` function that plugs its selector into
//! [`ParamPolicy::resolve_with`].

use crate::zq;
use std::error::Error;
use std::fmt;

/// Errors from parameter validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// `N` is not a power of two in the supported range.
    BadDegree(usize),
    /// The plaintext modulus is not a batching-compatible prime.
    BadPlainModulus(u64),
    /// A ciphertext modulus prime is invalid for this `N`.
    BadPrime(u64),
    /// The same prime appears twice in the ciphertext chain (CRT needs
    /// pairwise-coprime moduli; a duplicate used to panic inside the RNS
    /// setup).
    DuplicatePrime(u64),
    /// The plaintext modulus is not coprime to the ciphertext modulus (it
    /// appears in the chain), which breaks plaintext encoding in every
    /// scheme (BFV's `Δ = ⌊Q/t⌋` scaling and BGV's mod-`t` digit alike).
    PlainNotCoprime(u64),
    /// Fewer than two RNS primes (RNS-decomposition key switching needs ≥ 2).
    TooFewPrimes(usize),
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::BadDegree(n) => {
                write!(
                    f,
                    "polynomial degree {n} must be a power of two in [16, 32768]"
                )
            }
            ParamError::BadPlainModulus(t) => write!(
                f,
                "plaintext modulus {t} must be a prime congruent to 1 mod 2N for batching"
            ),
            ParamError::BadPrime(p) => {
                write!(f, "ciphertext modulus prime {p} must be prime and 1 mod 2N")
            }
            ParamError::DuplicatePrime(p) => {
                write!(f, "ciphertext modulus prime {p} appears more than once")
            }
            ParamError::PlainNotCoprime(t) => write!(
                f,
                "plaintext modulus {t} must be coprime to the ciphertext modulus chain"
            ),
            ParamError::TooFewPrimes(k) => {
                write!(f, "need at least 2 RNS primes for key switching, got {k}")
            }
        }
    }
}

impl Error for ParamError {}

/// An RLWE parameter set: ring degree, plaintext modulus, and the RNS
/// ciphertext modulus chain. Shared by every scheme backend — `BfvParams`
/// and `BgvParams` are aliases of this type, so a parameter set selected
/// for one scheme can be handed to the other.
///
/// # Examples
///
/// ```
/// use rlwe_ring::params::RlweParams;
///
/// let params = RlweParams::test_small();
/// assert!(params.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RlweParams {
    /// Ring degree `N` (a power of two). Ciphertexts hold `N` slots arranged
    /// as a 2 × N/2 matrix.
    pub poly_degree: usize,
    /// Plaintext modulus `t` (prime, `t ≡ 1 mod 2N`).
    pub plain_modulus: u64,
    /// RNS ciphertext primes `q_i` (each `≡ 1 mod 2N`).
    pub moduli: Vec<u64>,
}

impl RlweParams {
    /// Generates a parameter set with `count` fresh primes of `bits` bits.
    ///
    /// # Errors
    ///
    /// Returns an error if the resulting set fails [`RlweParams::validate`].
    pub fn generate(
        poly_degree: usize,
        plain_modulus: u64,
        bits: u32,
        count: usize,
    ) -> Result<Self, ParamError> {
        if !poly_degree.is_power_of_two() || !(16..=32768).contains(&poly_degree) {
            return Err(ParamError::BadDegree(poly_degree));
        }
        let moduli = zq::ntt_primes(bits, 2 * poly_degree as u64, count, &[plain_modulus]);
        let params = RlweParams {
            poly_degree,
            plain_modulus,
            moduli,
        };
        params.validate()?;
        Ok(params)
    }

    /// Small parameters for unit tests: `N = 1024`, `t = 65537`, 3 × 45-bit
    /// primes. **Toy security** — fast, not safe.
    pub fn test_small() -> Self {
        RlweParams::generate(1024, 65537, 45, 3).expect("static parameters are valid")
    }

    /// Mid-size parameters used by the synthesis-to-backend integration
    /// tests: `N = 4096`, `t = 65537`, 3 × 46-bit primes (`Q ≈ 138` bits).
    /// At `N = 4096` the homomorphic-encryption standard allows ~109 bits for
    /// 128-bit security, so this set trades security margin for speed; use
    /// [`RlweParams::secure_128`] for benchmark-grade settings.
    pub fn fast_4096() -> Self {
        RlweParams::generate(4096, 65537, 46, 3).expect("static parameters are valid")
    }

    /// Benchmark parameters mirroring the paper's SEAL settings: `N = 8192`,
    /// `t = 65537`, 4 × 50-bit primes (`Q = 200` bits ≤ the 218-bit bound for
    /// 128-bit security at `N = 8192` from the HE security standard).
    pub fn secure_128() -> Self {
        RlweParams::generate(8192, 65537, 50, 4).expect("static parameters are valid")
    }

    /// The fixed parameter set the paper evaluates every kernel under
    /// (alias of [`RlweParams::secure_128`]) — the baseline the per-scheme
    /// automatic selectors replace.
    pub fn paper() -> Self {
        RlweParams::secure_128()
    }

    /// Checks all structural requirements.
    ///
    /// # Errors
    ///
    /// Returns the first violated requirement.
    pub fn validate(&self) -> Result<(), ParamError> {
        let n = self.poly_degree;
        if !n.is_power_of_two() || !(16..=32768).contains(&n) {
            return Err(ParamError::BadDegree(n));
        }
        let two_n = 2 * n as u64;
        let t = self.plain_modulus;
        if !zq::is_prime(t) || !(t - 1).is_multiple_of(two_n) {
            return Err(ParamError::BadPlainModulus(t));
        }
        if self.moduli.len() < 2 {
            return Err(ParamError::TooFewPrimes(self.moduli.len()));
        }
        for (i, &q) in self.moduli.iter().enumerate() {
            if !zq::is_prime(q) || (q - 1) % two_n != 0 {
                return Err(ParamError::BadPrime(q));
            }
            if q == t {
                return Err(ParamError::PlainNotCoprime(t));
            }
            if self.moduli[..i].contains(&q) {
                return Err(ParamError::DuplicatePrime(q));
            }
        }
        Ok(())
    }

    /// Number of SIMD slots (`N`; arranged as two rows of `N/2`).
    pub fn slot_count(&self) -> usize {
        self.poly_degree
    }

    /// Slots per batching row (`N / 2`) — the unit `rotate_rows` acts on.
    pub fn row_size(&self) -> usize {
        self.poly_degree / 2
    }
}

/// Default safety margin for automatic parameter selection: the selected
/// set must leave at least this many bits of predicted noise budget at
/// decryption.
pub const DEFAULT_MARGIN_BITS: f64 = 10.0;

/// How the compiler obtains RLWE parameters for a program. The policy is
/// scheme-neutral data; resolving it runs the *selected scheme's* noise
/// analysis (see each scheme crate's `resolve_policy`).
#[derive(Debug, Clone, PartialEq)]
pub enum ParamPolicy {
    /// Select the smallest satisfying set from the scheme's candidate table
    /// via its static noise analysis.
    Auto {
        /// Required predicted budget (bits) left at decryption.
        margin_bits: f64,
    },
    /// Use a caller-supplied parameter set unconditionally.
    Fixed(RlweParams),
}

impl Default for ParamPolicy {
    fn default() -> Self {
        ParamPolicy::auto()
    }
}

impl ParamPolicy {
    /// Automatic selection with the default margin.
    pub fn auto() -> Self {
        ParamPolicy::Auto {
            margin_bits: DEFAULT_MARGIN_BITS,
        }
    }

    /// Resolves the policy: a `Fixed` set is validated structurally and for
    /// capacity; an `Auto` policy defers to `select`, the scheme-specific
    /// noise-aware selector (called with the requested margin).
    ///
    /// # Errors
    ///
    /// [`SelectError`] if the selector finds no candidate, or if a `Fixed`
    /// set fails validation / has too few slots.
    pub fn resolve_with(
        &self,
        min_slots: usize,
        t: u64,
        select: impl FnOnce(f64) -> Result<RlweParams, SelectError>,
    ) -> Result<RlweParams, SelectError> {
        match self {
            ParamPolicy::Auto { margin_bits } => select(*margin_bits),
            ParamPolicy::Fixed(params) => {
                params
                    .validate()
                    .map_err(|e| SelectError::BadFixedParams(e.to_string()))?;
                if params.row_size() < min_slots || params.plain_modulus != t {
                    return Err(SelectError::BadFixedParams(format!(
                        "fixed set (N = {}, t = {}) cannot hold {min_slots} slots of a \
                         t = {t} program",
                        params.poly_degree, params.plain_modulus
                    )));
                }
                Ok(params.clone())
            }
        }
    }
}

/// Why automatic parameter selection failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectError {
    /// No candidate in the table satisfies the noise bound with the
    /// requested margin (the program is too deep, or needs too many slots).
    NoCandidate {
        /// The requested margin.
        margin_bits: f64,
        /// Slots the program needs per batching row.
        min_slots: usize,
        /// Best predicted remaining budget over all size-compatible
        /// candidates, with the `N` that achieved it.
        best: Option<(usize, f64)>,
    },
    /// The plaintext modulus is incompatible with every candidate degree
    /// (`t` must be prime and `≡ 1 mod 2N`).
    UnsupportedPlainModulus(u64),
    /// A `Fixed` policy carried an unusable parameter set.
    BadFixedParams(String),
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectError::NoCandidate {
                margin_bits,
                min_slots,
                best,
            } => {
                write!(
                    f,
                    "no candidate parameter set leaves {margin_bits} bits of noise budget \
                     with {min_slots} slots"
                )?;
                if let Some((n, remaining)) = best {
                    write!(f, " (best: N = {n} with {remaining:.1} bits remaining)")?;
                }
                Ok(())
            }
            SelectError::UnsupportedPlainModulus(t) => {
                write!(
                    f,
                    "plaintext modulus {t} is incompatible with every candidate degree"
                )
            }
            SelectError::BadFixedParams(why) => write!(f, "fixed parameter set unusable: {why}"),
        }
    }
}

impl Error for SelectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for p in [RlweParams::test_small(), RlweParams::fast_4096()] {
            assert!(p.validate().is_ok());
            assert_eq!(p.plain_modulus, 65537);
        }
    }

    #[test]
    fn secure_preset_modulus_size() {
        let p = RlweParams::secure_128();
        assert!(p.validate().is_ok());
        let total_bits: u32 = p.moduli.iter().map(|&q| 64 - q.leading_zeros()).sum();
        assert!(
            total_bits <= 218,
            "Q must stay under the 128-bit security bound"
        );
    }

    #[test]
    fn rejects_bad_degree() {
        let mut p = RlweParams::test_small();
        p.poly_degree = 1000;
        assert_eq!(p.validate(), Err(ParamError::BadDegree(1000)));
    }

    #[test]
    fn rejects_bad_plain_modulus() {
        let mut p = RlweParams::test_small();
        p.plain_modulus = 65536; // not prime
        assert!(matches!(p.validate(), Err(ParamError::BadPlainModulus(_))));
        p.plain_modulus = 97; // prime but 2N does not divide 96
        assert!(matches!(p.validate(), Err(ParamError::BadPlainModulus(_))));
    }

    #[test]
    fn rejects_single_prime() {
        let mut p = RlweParams::test_small();
        p.moduli.truncate(1);
        assert_eq!(p.validate(), Err(ParamError::TooFewPrimes(1)));
    }

    #[test]
    fn rejects_non_ntt_friendly_prime() {
        let mut p = RlweParams::test_small();
        // Prime, but 2N = 2048 does not divide p − 1.
        p.moduli[1] = 65539;
        assert_eq!(p.validate(), Err(ParamError::BadPrime(65539)));
        // Not prime at all.
        p.moduli[1] = (1 << 45) - 1;
        assert!(matches!(p.validate(), Err(ParamError::BadPrime(_))));
    }

    #[test]
    fn rejects_duplicate_primes() {
        let mut p = RlweParams::test_small();
        p.moduli[1] = p.moduli[0];
        let dup = p.moduli[0];
        assert_eq!(p.validate(), Err(ParamError::DuplicatePrime(dup)));
    }

    /// `t` sharing a prime with the chain is its own error (it used to be
    /// misreported as a bad ciphertext prime).
    #[test]
    fn rejects_plain_modulus_in_chain() {
        let mut p = RlweParams::test_small();
        // 65537 ≡ 1 mod 2048, so it is chain-eligible at N = 1024 — the
        // coprimality check is what must reject it.
        p.moduli[2] = p.plain_modulus;
        assert_eq!(p.validate(), Err(ParamError::PlainNotCoprime(65537)));
    }

    #[test]
    fn paper_params_alias_secure_128() {
        assert_eq!(RlweParams::paper(), RlweParams::secure_128());
    }

    #[test]
    fn fixed_policy_capacity_checks() {
        let ok = ParamPolicy::Fixed(RlweParams::test_small())
            .resolve_with(8, 65537, |_| unreachable!("fixed policy never selects"))
            .unwrap();
        assert_eq!(ok, RlweParams::test_small());
        // A fixed set that cannot hold the slots is rejected.
        let err = ParamPolicy::Fixed(RlweParams::test_small()).resolve_with(
            4096,
            65537,
            |_| unreachable!(),
        );
        assert!(matches!(err, Err(SelectError::BadFixedParams(_))));
        // Auto defers to the scheme selector with its margin.
        let auto = ParamPolicy::auto()
            .resolve_with(8, 65537, |margin| {
                assert_eq!(margin.to_bits(), DEFAULT_MARGIN_BITS.to_bits());
                Ok(RlweParams::fast_4096())
            })
            .unwrap();
        assert_eq!(auto, RlweParams::fast_4096());
    }
}
