//! RNS polynomials in `Z_Q[x]/(x^N + 1)` and their ring context, with a
//! **double-CRT** (RNS × NTT) resident representation.
//!
//! An [`RnsPoly`] stores one residue vector per RNS prime and a
//! [`PolyForm`] tag saying whether those vectors hold power-basis
//! coefficients or per-prime NTT evaluations. The evaluator keeps
//! ciphertexts and keys in [`PolyForm::Eval`] so that add/sub/negate,
//! polynomial products, and Galois automorphisms (a pure index permutation
//! in the evaluation domain) never pay a number-theoretic transform;
//! [`PolyForm::Coeff`] appears only where an operation genuinely needs
//! coefficients — RNS digit decomposition for key switching, base
//! conversion inside the multiply, and the final lift at decryption.
//! Conversions are exact NTT round-trips, so the represented ring element
//! is identical in either form.
//!
//! Exact lifting to centered big integers (decryption and noise metering)
//! goes through [`RingContext::lift_centered`].

use crate::bigint::{center, BigInt, BigUint};
use crate::ntt::NttTables;
use crate::rns::RnsContext;
use crate::zq::{add_mod, sub_mod, Barrett};
use rand::Rng;

/// The representation of an [`RnsPoly`]'s residue vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolyForm {
    /// Power-basis coefficients modulo each prime.
    Coeff,
    /// Double-CRT: per-prime negacyclic NTT evaluations (see
    /// [`crate::ntt::NttTables::forward`]).
    Eval,
}

/// Shared precomputation for a ring `Z_Q[x]/(x^N + 1)` with RNS modulus
/// `Q = ∏ q_i`: per-prime NTT tables plus CRT data.
#[derive(Debug)]
pub struct RingContext {
    n: usize,
    rns: RnsContext,
    ntt: Vec<NttTables>,
    barrett: Vec<Barrett>,
}

impl RingContext {
    /// Builds a context for degree `n` and the given primes (each must be
    /// ≡ 1 mod 2n).
    ///
    /// # Panics
    ///
    /// Panics if any prime is not NTT-friendly for degree `n`.
    pub fn new(n: usize, primes: Vec<u64>) -> Self {
        let ntt = primes.iter().map(|&p| NttTables::new(p, n)).collect();
        let barrett = primes.iter().map(|&p| Barrett::new(p)).collect();
        RingContext {
            n,
            rns: RnsContext::new(primes),
            ntt,
            barrett,
        }
    }

    /// Ring degree `N`.
    pub fn degree(&self) -> usize {
        self.n
    }

    /// The RNS primes.
    pub fn primes(&self) -> &[u64] {
        self.rns.primes()
    }

    /// Number of RNS components.
    pub fn num_primes(&self) -> usize {
        self.rns.len()
    }

    /// The CRT context.
    pub fn rns(&self) -> &RnsContext {
        &self.rns
    }

    /// The full coefficient modulus `Q`.
    pub fn modulus(&self) -> &BigUint {
        self.rns.modulus()
    }

    /// NTT tables for RNS component `i`.
    pub fn ntt(&self, i: usize) -> &NttTables {
        &self.ntt[i]
    }

    /// Precomputed Barrett reducers, one per RNS prime — shared by every
    /// hot-path caller so no per-call reducer setup is needed.
    pub fn barretts(&self) -> &[Barrett] {
        &self.barrett
    }

    /// The all-zero polynomial in coefficient form.
    pub fn zero(&self) -> RnsPoly {
        self.zero_as(PolyForm::Coeff)
    }

    /// The all-zero polynomial in evaluation form (zero transforms to
    /// zero, so the tag is free to choose).
    pub fn zero_eval(&self) -> RnsPoly {
        self.zero_as(PolyForm::Eval)
    }

    fn zero_as(&self, form: PolyForm) -> RnsPoly {
        RnsPoly {
            residues: vec![vec![0u64; self.n]; self.rns.len()],
            form,
        }
    }

    /// Converts `a` to evaluation form in place (no-op if already there).
    pub fn make_eval(&self, a: &mut RnsPoly) {
        if a.form == PolyForm::Coeff {
            for (t, r) in self.ntt.iter().zip(a.residues.iter_mut()) {
                t.forward(r);
            }
            a.form = PolyForm::Eval;
        }
    }

    /// Converts `a` to coefficient form in place (no-op if already there).
    pub fn make_coeff(&self, a: &mut RnsPoly) {
        if a.form == PolyForm::Eval {
            for (t, r) in self.ntt.iter().zip(a.residues.iter_mut()) {
                t.inverse(r);
            }
            a.form = PolyForm::Coeff;
        }
    }

    /// Returns `a` in evaluation form (clones; no-op transform if already
    /// there).
    pub fn to_eval(&self, a: &RnsPoly) -> RnsPoly {
        let mut out = a.clone();
        self.make_eval(&mut out);
        out
    }

    /// Returns `a` in coefficient form (clones; no-op transform if already
    /// there).
    pub fn to_coeff(&self, a: &RnsPoly) -> RnsPoly {
        let mut out = a.clone();
        self.make_coeff(&mut out);
        out
    }

    /// Builds a polynomial from small unsigned coefficients (reduced modulo
    /// each prime), in coefficient form.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != N`.
    pub fn from_u64_coeffs(&self, coeffs: &[u64]) -> RnsPoly {
        assert_eq!(coeffs.len(), self.n);
        let residues = self
            .rns
            .primes()
            .iter()
            .map(|&p| {
                coeffs
                    .iter()
                    .map(|&c| if c < p { c } else { c % p })
                    .collect()
            })
            .collect();
        RnsPoly {
            residues,
            form: PolyForm::Coeff,
        }
    }

    /// Builds a polynomial from signed coefficients (centered lift), in
    /// coefficient form.
    pub fn from_i64_coeffs(&self, coeffs: &[i64]) -> RnsPoly {
        assert_eq!(coeffs.len(), self.n);
        let residues = self
            .rns
            .primes()
            .iter()
            .map(|&p| {
                coeffs
                    .iter()
                    .map(|&c| {
                        let r = c % p as i64;
                        if r < 0 {
                            (r + p as i64) as u64
                        } else {
                            r as u64
                        }
                    })
                    .collect()
            })
            .collect();
        RnsPoly {
            residues,
            form: PolyForm::Coeff,
        }
    }

    /// Builds a polynomial from exact centered big-integer coefficients, in
    /// coefficient form.
    pub fn from_centered(&self, coeffs: &[BigInt]) -> RnsPoly {
        assert_eq!(coeffs.len(), self.n);
        let residues = self
            .rns
            .primes()
            .iter()
            .map(|&p| coeffs.iter().map(|c| c.rem_euclid_u64(p)).collect())
            .collect();
        RnsPoly {
            residues,
            form: PolyForm::Coeff,
        }
    }

    /// Lifts every coefficient to its exact centered representative in
    /// `(-Q/2, Q/2]`, converting out of evaluation form first if needed.
    pub fn lift_centered(&self, poly: &RnsPoly) -> Vec<BigInt> {
        if poly.form == PolyForm::Eval {
            return self.lift_centered(&self.to_coeff(poly));
        }
        let q = self.rns.modulus();
        (0..self.n)
            .map(|c| {
                let residues: Vec<u64> = (0..self.rns.len()).map(|i| poly.residues[i][c]).collect();
                center(&self.rns.reconstruct(&residues), q)
            })
            .collect()
    }

    /// Uniformly random polynomial in `R_Q`, tagged evaluation form
    /// (uniform per RNS component is uniform mod `Q` by CRT, and the NTT is
    /// a bijection, so uniformity holds in either representation; the
    /// evaluation tag keeps public keys and key-switch masks NTT-resident
    /// for free).
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> RnsPoly {
        let residues = self
            .rns
            .primes()
            .iter()
            .map(|&p| (0..self.n).map(|_| rng.gen_range(0..p)).collect())
            .collect();
        RnsPoly {
            residues,
            form: PolyForm::Eval,
        }
    }

    /// Random ternary polynomial with coefficients in `{-1, 0, 1}`, in
    /// coefficient form.
    pub fn sample_ternary<R: Rng + ?Sized>(&self, rng: &mut R) -> RnsPoly {
        let coeffs: Vec<i64> = (0..self.n).map(|_| rng.gen_range(-1..=1)).collect();
        self.from_i64_coeffs(&coeffs)
    }

    /// Random error polynomial from a centered binomial distribution with
    /// parameter η = 10 (σ ≈ 2.24); stands in for SEAL's σ = 3.2 discrete
    /// Gaussian, which only shifts noise-budget constants. Coefficient form.
    pub fn sample_error<R: Rng + ?Sized>(&self, rng: &mut R) -> RnsPoly {
        let coeffs: Vec<i64> = (0..self.n)
            .map(|_| {
                let a = (rng.gen::<u16>() & 0x3ff).count_ones() as i64;
                let b = (rng.gen::<u16>() & 0x3ff).count_ones() as i64;
                a - b
            })
            .collect();
        self.from_i64_coeffs(&coeffs)
    }

    /// Componentwise sum. Mixed-form operands are normalized to evaluation
    /// form; same-form operands stay in their form.
    pub fn add(&self, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        self.zip(a, b, add_mod)
    }

    /// Componentwise difference (same form rules as [`RingContext::add`]).
    pub fn sub(&self, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        self.zip(a, b, sub_mod)
    }

    /// `a += b`, allocation-free when the forms already match (the
    /// evaluator's steady state). Mixed forms normalize to evaluation form,
    /// which pays `b`'s transform into a temporary.
    pub fn add_assign(&self, a: &mut RnsPoly, b: &RnsPoly) {
        self.zip_assign(a, b, add_mod)
    }

    /// `a -= b` (same form rules as [`RingContext::add_assign`]).
    pub fn sub_assign(&self, a: &mut RnsPoly, b: &RnsPoly) {
        self.zip_assign(a, b, sub_mod)
    }

    // Generic over `F` (not an `fn` pointer) so the modular op inlines into
    // the inner loop and autovectorizes.
    fn zip_assign<F: Fn(u64, u64, u64) -> u64 + Copy>(&self, a: &mut RnsPoly, b: &RnsPoly, f: F) {
        if a.form != b.form {
            self.make_eval(a);
            let be = self.to_eval(b);
            return self.zip_assign(a, &be, f);
        }
        for (&p, (ar, br)) in self
            .rns
            .primes()
            .iter()
            .zip(a.residues.iter_mut().zip(&b.residues))
        {
            for (x, &y) in ar.iter_mut().zip(br) {
                *x = f(*x, y, p);
            }
        }
    }

    /// Negation (form-preserving).
    pub fn neg(&self, a: &RnsPoly) -> RnsPoly {
        let mut out = a.clone();
        self.neg_assign(&mut out);
        out
    }

    /// `a = -a` (form-preserving, allocation-free).
    pub fn neg_assign(&self, a: &mut RnsPoly) {
        for (&p, r) in self.rns.primes().iter().zip(a.residues.iter_mut()) {
            for x in r.iter_mut() {
                *x = if *x == 0 { 0 } else { p - *x };
            }
        }
    }

    fn zip<F: Fn(u64, u64, u64) -> u64 + Copy>(&self, a: &RnsPoly, b: &RnsPoly, f: F) -> RnsPoly {
        if a.form != b.form {
            return self.zip(&self.to_eval(a), &self.to_eval(b), f);
        }
        let residues = self
            .rns
            .primes()
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                a.residues[i]
                    .iter()
                    .zip(&b.residues[i])
                    .map(|(&x, &y)| f(x, y, p))
                    .collect()
            })
            .collect();
        RnsPoly {
            residues,
            form: a.form,
        }
    }

    /// Negacyclic product. In the double-CRT representation this is a pure
    /// pointwise product; coefficient-form operands are transformed first.
    /// The result is in evaluation form.
    pub fn mul(&self, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        let (ae, be);
        let a = if a.form == PolyForm::Eval {
            a
        } else {
            ae = self.to_eval(a);
            &ae
        };
        let b = if b.form == PolyForm::Eval {
            b
        } else {
            be = self.to_eval(b);
            &be
        };
        let residues = self
            .barrett
            .iter()
            .enumerate()
            .map(|(i, &bar)| {
                let mut out = vec![0u64; self.n];
                crate::ntt::pointwise_mul_into(&a.residues[i], &b.residues[i], bar, &mut out);
                out
            })
            .collect();
        RnsPoly {
            residues,
            form: PolyForm::Eval,
        }
    }

    /// `a *= b` pointwise in the transform domain, allocation-free when
    /// both operands are already evaluation-resident. `a` is transformed in
    /// place if needed; a coefficient-form `b` pays its transform into a
    /// temporary (cold path).
    pub fn mul_assign(&self, a: &mut RnsPoly, b: &RnsPoly) {
        self.make_eval(a);
        if b.form != PolyForm::Eval {
            let be = self.to_eval(b);
            return self.mul_assign(a, &be);
        }
        for (i, &bar) in self.barrett.iter().enumerate() {
            crate::ntt::pointwise_mul_assign(&mut a.residues[i], &b.residues[i], bar);
        }
    }

    /// Multiplies every coefficient by the integer whose per-prime residues
    /// are `scalar_residues` (e.g. `Δ mod q_i`). Form-preserving: scalar
    /// multiplication commutes with the NTT.
    pub fn mul_scalar_residues(&self, a: &RnsPoly, scalar_residues: &[u64]) -> RnsPoly {
        assert_eq!(scalar_residues.len(), self.rns.len());
        let residues = self
            .rns
            .primes()
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let w = scalar_residues[i];
                let w_shoup = crate::zq::shoup_precompute(w, p);
                a.residues[i]
                    .iter()
                    .map(|&x| crate::zq::mul_mod_shoup(x, w, w_shoup, p))
                    .collect()
            })
            .collect();
        RnsPoly {
            residues,
            form: a.form,
        }
    }

    /// The index permutation implementing the Galois automorphism
    /// `x → x^g` in the evaluation domain: with the natural-order NTT
    /// (`out[j] = m(ψ^(2j+1))`), `σ_g(m)(ψ^(2j+1)) = m(ψ^((2j+1)g mod 2N))`,
    /// so slot `j` of the output simply reads slot `((2j+1)g mod 2N − 1)/2`
    /// of the input — no modular arithmetic at apply time.
    ///
    /// # Panics
    ///
    /// Panics if `g` is even or out of range `[1, 2N)`.
    pub fn galois_eval_permutation(&self, g: u64) -> Vec<u32> {
        let two_n = 2 * self.n as u64;
        assert!(g % 2 == 1 && g < two_n, "invalid Galois element {g}");
        (0..self.n as u64)
            .map(|j| ((((2 * j + 1) * g) % two_n - 1) / 2) as u32)
            .collect()
    }

    /// Applies a precomputed evaluation-domain permutation (from
    /// [`RingContext::galois_eval_permutation`]) to an evaluation-form
    /// polynomial.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not in evaluation form or the permutation length
    /// differs from `N`.
    pub fn apply_eval_permutation(&self, a: &RnsPoly, perm: &[u32]) -> RnsPoly {
        assert_eq!(a.form, PolyForm::Eval, "permutation needs evaluation form");
        assert_eq!(perm.len(), self.n);
        let residues = a
            .residues
            .iter()
            .map(|r| perm.iter().map(|&j| r[j as usize]).collect())
            .collect();
        RnsPoly {
            residues,
            form: PolyForm::Eval,
        }
    }

    /// Applies a precomputed evaluation-domain permutation in place, using
    /// one caller-provided `N`-length scratch row (no allocation). The
    /// scratch contents on return are unspecified.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not in evaluation form or the permutation length
    /// differs from `N`.
    pub fn apply_eval_permutation_assign(
        &self,
        a: &mut RnsPoly,
        perm: &[u32],
        scratch: &mut Vec<u64>,
    ) {
        assert_eq!(a.form, PolyForm::Eval, "permutation needs evaluation form");
        assert_eq!(perm.len(), self.n);
        scratch.resize(self.n, 0);
        for r in a.residues.iter_mut() {
            for (dst, &j) in scratch.iter_mut().zip(perm) {
                *dst = r[j as usize];
            }
            std::mem::swap(r, scratch);
        }
    }

    /// Applies the Galois automorphism `x → x^g` (g odd, `1 ≤ g < 2N`),
    /// form-preserving. In evaluation form this is the index permutation of
    /// [`RingContext::galois_eval_permutation`]; in coefficient form it is
    /// the sign-wrapping monomial map.
    ///
    /// # Panics
    ///
    /// Panics if `g` is even or out of range.
    pub fn automorphism(&self, a: &RnsPoly, g: u64) -> RnsPoly {
        if a.form == PolyForm::Eval {
            return self.apply_eval_permutation(a, &self.galois_eval_permutation(g));
        }
        let n = self.n as u64;
        assert!(g % 2 == 1 && g < 2 * n, "invalid Galois element {g}");
        let mut out = self.zero();
        for (i, &p) in self.rns.primes().iter().enumerate() {
            for c in 0..self.n {
                let target = (c as u64 * g) % (2 * n);
                let v = a.residues[i][c];
                if target < n {
                    out.residues[i][target as usize] =
                        add_mod(out.residues[i][target as usize], v, p);
                } else {
                    out.residues[i][(target - n) as usize] =
                        sub_mod(out.residues[i][(target - n) as usize], v, p);
                }
            }
        }
        out
    }

    /// Extracts RNS component `i` as a polynomial with small coefficients
    /// (`< q_i`) reduced modulo **every** prime — the RNS-decomposition step
    /// of key switching. Requires coefficient form (digits are defined on
    /// coefficients).
    ///
    /// # Panics
    ///
    /// Panics if `a` is in evaluation form.
    pub fn decompose_component(&self, a: &RnsPoly, i: usize) -> RnsPoly {
        assert_eq!(a.form, PolyForm::Coeff, "decomposition needs coefficients");
        let src = &a.residues[i];
        let residues = self
            .rns
            .primes()
            .iter()
            .map(|&p| src.iter().map(|&x| x % p).collect())
            .collect();
        RnsPoly {
            residues,
            form: PolyForm::Coeff,
        }
    }
}

/// A polynomial in `Z_Q[x]/(x^N + 1)`, stored as one residue vector per RNS
/// prime, in either coefficient or evaluation (double-CRT) form. Equality
/// compares representation as well as value: the same ring element in two
/// different forms is *not* `==` (convert first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsPoly {
    /// `residues[prime_index][coeff_index]` (or `[eval_index]` in
    /// evaluation form). Public so scheme backends can implement their hot
    /// paths directly on the residue matrices; treat as read/write raw
    /// storage and keep `form` consistent.
    pub residues: Vec<Vec<u64>>,
    /// Which representation `residues` holds. Backends flipping this field
    /// by hand must actually transform the residues to match.
    pub form: PolyForm,
}

impl RnsPoly {
    /// Residues for RNS component `i`.
    pub fn component(&self, i: usize) -> &[u64] {
        &self.residues[i]
    }

    /// Which representation the residues are in.
    pub fn form(&self) -> PolyForm {
        self.form
    }

    /// True if every residue is zero (the zero polynomial in either form).
    pub fn is_zero(&self) -> bool {
        self.residues.iter().all(|r| r.iter().all(|&x| x == 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx(n: usize, k: usize) -> RingContext {
        let primes = crate::zq::ntt_primes(45, 2 * n as u64, k, &[]);
        RingContext::new(n, primes)
    }

    #[test]
    fn add_sub_roundtrip() {
        let ctx = ctx(64, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = ctx.sample_uniform(&mut rng);
        let b = ctx.sample_uniform(&mut rng);
        let s = ctx.add(&a, &b);
        assert_eq!(ctx.sub(&s, &b), a);
        assert_eq!(ctx.sub(&s, &a), b);
        assert_eq!(ctx.add(&a, &ctx.neg(&a)), ctx.zero_eval());
    }

    #[test]
    fn mul_commutes_and_distributes() {
        let ctx = ctx(32, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = ctx.sample_uniform(&mut rng);
        let b = ctx.sample_uniform(&mut rng);
        let c = ctx.sample_uniform(&mut rng);
        assert_eq!(ctx.mul(&a, &b), ctx.mul(&b, &a));
        let lhs = ctx.mul(&a, &ctx.add(&b, &c));
        let rhs = ctx.add(&ctx.mul(&a, &b), &ctx.mul(&a, &c));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn form_conversion_roundtrips() {
        let ctx = ctx(32, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let a = ctx.sample_uniform(&mut rng);
        assert_eq!(a.form(), PolyForm::Eval);
        let c = ctx.to_coeff(&a);
        assert_eq!(c.form(), PolyForm::Coeff);
        assert_eq!(ctx.to_eval(&c), a);
        // to_eval/to_coeff are no-ops on already-converted polys
        assert_eq!(ctx.to_eval(&a), a);
        assert_eq!(ctx.to_coeff(&c), c);
    }

    #[test]
    fn eval_mul_matches_coeff_mul() {
        // Pointwise product in eval form computes the same ring product as
        // the coefficient-form NTT multiply.
        let ctx = ctx(16, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let a = ctx.to_coeff(&ctx.sample_uniform(&mut rng));
        let b = ctx.to_coeff(&ctx.sample_uniform(&mut rng));
        let via_coeff = ctx.mul(&a, &b);
        let via_eval = ctx.mul(&ctx.to_eval(&a), &ctx.to_eval(&b));
        assert_eq!(via_coeff, via_eval);
        // and it matches schoolbook on each prime
        for (i, &p) in ctx.primes().iter().enumerate() {
            let expect = crate::ntt::negacyclic_mul_schoolbook(a.component(i), b.component(i), p);
            assert_eq!(ctx.to_coeff(&via_eval).component(i), &expect[..]);
        }
    }

    #[test]
    fn centered_lift_roundtrip() {
        let ctx = ctx(16, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = ctx.sample_uniform(&mut rng);
        // lift converts out of eval form internally
        let lifted = ctx.lift_centered(&a);
        assert_eq!(ctx.from_centered(&lifted), ctx.to_coeff(&a));
        // centered magnitudes are at most Q/2
        let half = ctx.modulus().shr_bits(1);
        for c in &lifted {
            assert!(c.mag.cmp_big(&half) != std::cmp::Ordering::Greater);
        }
    }

    #[test]
    fn signed_coeffs_center_correctly() {
        let ctx = ctx(4, 2);
        let p = ctx.from_i64_coeffs(&[-1, 2, -3, 0]);
        let lifted = ctx.lift_centered(&p);
        assert_eq!(lifted[0], BigInt::from_i64(-1));
        assert_eq!(lifted[1], BigInt::from_i64(2));
        assert_eq!(lifted[2], BigInt::from_i64(-3));
        assert_eq!(lifted[3], BigInt::from_i64(0));
    }

    #[test]
    fn automorphism_identity_and_composition() {
        let ctx = ctx(16, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let a = ctx.sample_uniform(&mut rng);
        assert_eq!(ctx.automorphism(&a, 1), a);
        // sigma_g1 . sigma_g2 = sigma_{g1 g2 mod 2N}
        let g1 = 3u64;
        let g2 = 5u64;
        let lhs = ctx.automorphism(&ctx.automorphism(&a, g1), g2);
        let rhs = ctx.automorphism(&a, (g1 * g2) % 32);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn eval_automorphism_matches_coeff_automorphism() {
        let ctx = ctx(32, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let a_eval = ctx.sample_uniform(&mut rng);
        let a_coeff = ctx.to_coeff(&a_eval);
        for g in [3u64, 5, 9, 63] {
            let via_eval = ctx.to_coeff(&ctx.automorphism(&a_eval, g));
            let via_coeff = ctx.automorphism(&a_coeff, g);
            assert_eq!(via_eval, via_coeff, "g = {g}");
        }
    }

    #[test]
    fn automorphism_matches_poly_eval() {
        // sigma_g(x^k) = x^{gk mod 2N} with sign wrap; check on a monomial.
        let ctx = ctx(8, 2);
        let mut coeffs = vec![0u64; 8];
        coeffs[3] = 1; // x^3
        let a = ctx.from_u64_coeffs(&coeffs);
        let b = ctx.automorphism(&a, 5); // x^15 = x^15-8 * (x^8=-1) => -x^7
        let lifted = ctx.lift_centered(&b);
        assert_eq!(lifted[7], BigInt::from_i64(-1));
        for coeff in lifted.iter().take(7) {
            assert!(coeff.is_zero());
        }
    }

    #[test]
    fn decompose_component_small_coeffs() {
        let ctx = ctx(8, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a = ctx.to_coeff(&ctx.sample_uniform(&mut rng));
        for i in 0..3 {
            let d = ctx.decompose_component(&a, i);
            // Its own component is unchanged.
            assert_eq!(d.component(i), a.component(i));
        }
    }

    #[test]
    fn error_and_ternary_are_small() {
        let ctx = ctx(256, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for poly in [ctx.sample_ternary(&mut rng), ctx.sample_error(&mut rng)] {
            for c in ctx.lift_centered(&poly) {
                assert!(c.mag.to_u64().unwrap() <= 10);
            }
        }
    }
}
