//! BGV parameter sets, the shared evaluation context, and noise-aware
//! automatic parameter selection ([`ParamSelector`]).
//!
//! The parameter *struct* and its structural validation are scheme-neutral
//! and live in [`rlwe_ring::params`] ([`BgvParams`] is an alias of
//! [`rlwe_ring::params::RlweParams`]); this module adds what is
//! BGV-specific: the [`BgvContext`] precomputation (the `t mod q_i`
//! residues that scale every error term onto the multiples-of-`t` lattice,
//! and the modulus-chain truncation behind
//! [`crate::evaluator::Evaluator::mod_switch_to_next`]) and the
//! [`ParamSelector`] candidate table driven by the BGV [`NoiseModel`].
//!
//! # Modulus-switch-friendly chains
//!
//! BGV's level management drops the last chain prime `q_k`; the plaintext
//! digit survives unchanged only when `q_k ≡ 1 (mod t)`. The selector's
//! candidate table therefore generates its primes in the arithmetic
//! progression `1 mod 2N·t` ([`generate_mod_switch_friendly`]) — every
//! prime is simultaneously NTT-friendly and switch-friendly. Chains built
//! for BFV (plain `1 mod 2N` primes) still run on this backend for every
//! operation *except* `mod_switch_to_next`, which is what the cross-scheme
//! differential tests rely on.

use crate::noise::{NoiseModel, NoiseReport};
use crate::ntt::NttTables;
use crate::poly::RingContext;
use crate::zq;
use quill::program::Program;

pub use rlwe_ring::params::{ParamError, ParamPolicy, SelectError, DEFAULT_MARGIN_BITS};

/// A BGV parameter set. Alias of the scheme-neutral
/// [`rlwe_ring::params::RlweParams`] — a set selected for BFV can be handed
/// to the BGV backend unchanged (and vice versa), which is what the
/// cross-scheme differential tests rely on.
pub type BgvParams = rlwe_ring::params::RlweParams;

/// Generates a parameter set whose `count` fresh `bits`-bit primes are all
/// `≡ 1 (mod 2N·t)`, so every prefix of the chain supports
/// plaintext-invariant modulus switching.
///
/// # Errors
///
/// Returns an error if the resulting set fails
/// [`rlwe_ring::params::RlweParams::validate`].
pub fn generate_mod_switch_friendly(
    poly_degree: usize,
    plain_modulus: u64,
    bits: u32,
    count: usize,
) -> Result<BgvParams, ParamError> {
    if !poly_degree.is_power_of_two() || !(16..=32768).contains(&poly_degree) {
        return Err(ParamError::BadDegree(poly_degree));
    }
    let stride = 2 * poly_degree as u64 * plain_modulus;
    let moduli = zq::primes_in_progression(bits, stride, count, &[plain_modulus]);
    let params = BgvParams {
        poly_degree,
        plain_modulus,
        moduli,
    };
    params.validate()?;
    Ok(params)
}

/// Small switch-friendly parameters for unit tests: `N = 1024`,
/// `t = 65537`, 3 × 45-bit primes `≡ 1 mod 2N·t`. **Toy security.**
pub fn test_small() -> BgvParams {
    generate_mod_switch_friendly(1024, 65537, 45, 3).expect("static parameters are valid")
}

/// Resolves a [`ParamPolicy`] for a lowered program under the **BGV** noise
/// model: a `Fixed` set is validated structurally and for capacity; an
/// `Auto` policy runs the [`ParamSelector`] over its candidate table.
///
/// # Errors
///
/// See [`SelectError`].
pub fn resolve_policy(
    policy: &ParamPolicy,
    prog: &Program,
    min_slots: usize,
    t: u64,
) -> Result<BgvParams, SelectError> {
    policy.resolve_with(min_slots, t, |margin_bits| {
        ParamSelector::new(t)
            .with_margin_bits(margin_bits)
            .select(prog, min_slots)
            .map(|s| s.params)
    })
}

/// One row of the candidate table: `count` fresh primes of `bits` bits at
/// degree `poly_degree`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Candidate {
    poly_degree: usize,
    prime_bits: u32,
    count: usize,
}

/// Noise-aware automatic parameter selection for BGV.
///
/// Same contract as the BFV selector (walk a candidate table in ascending
/// cost order, return the first set whose worst-case predicted budget
/// clears the margin), but driven by the BGV [`NoiseModel`] — whose
/// multiply rule *doubles* the noise bit count instead of adding a fixed
/// chunk — over switch-friendly chains. Deep multiplication chains
/// therefore escalate through the table much faster than under BFV, which
/// is the scheme trade-off the cost model and selector make visible.
#[derive(Debug, Clone)]
pub struct ParamSelector {
    plain_modulus: u64,
    margin_bits: f64,
}

/// A successful selection: the parameters plus the analysis that
/// certified them.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// The smallest satisfying parameter set.
    pub params: BgvParams,
    /// The noise analysis of the program under `params`.
    pub report: NoiseReport,
    /// How many size-compatible candidates were rejected first.
    pub candidates_tried: usize,
}

impl ParamSelector {
    /// The candidate table, ascending by degree then total modulus bits.
    /// Compared with BFV's table the chains run longer at each degree:
    /// BGV noise bits double per multiplication, so depth is bought with
    /// modulus, not margin.
    const CANDIDATES: &'static [Candidate] = &[
        Candidate {
            poly_degree: 1024,
            prime_bits: 45,
            count: 2,
        },
        Candidate {
            poly_degree: 1024,
            prime_bits: 45,
            count: 3,
        },
        Candidate {
            poly_degree: 2048,
            prime_bits: 46,
            count: 3,
        },
        Candidate {
            poly_degree: 4096,
            prime_bits: 46,
            count: 4,
        },
        Candidate {
            poly_degree: 4096,
            prime_bits: 46,
            count: 5,
        },
        Candidate {
            poly_degree: 8192,
            prime_bits: 50,
            count: 5,
        },
        Candidate {
            poly_degree: 8192,
            prime_bits: 53,
            count: 6,
        },
        Candidate {
            poly_degree: 8192,
            prime_bits: 54,
            count: 7,
        },
        Candidate {
            poly_degree: 16384,
            prime_bits: 55,
            count: 9,
        },
        Candidate {
            poly_degree: 16384,
            prime_bits: 55,
            count: 12,
        },
    ];

    /// A selector for plaintext modulus `t` with the default margin.
    pub fn new(plain_modulus: u64) -> Self {
        ParamSelector {
            plain_modulus,
            margin_bits: DEFAULT_MARGIN_BITS,
        }
    }

    /// Overrides the safety margin.
    pub fn with_margin_bits(mut self, margin_bits: f64) -> Self {
        self.margin_bits = margin_bits;
        self
    }

    /// Selects the smallest satisfying parameter set for a lowered program
    /// that needs `min_slots` slots per batching row.
    ///
    /// # Errors
    ///
    /// See [`SelectError`].
    pub fn select(&self, prog: &Program, min_slots: usize) -> Result<Selection, SelectError> {
        let t = self.plain_modulus;
        let mut best: Option<(usize, f64)> = None;
        let mut tried = 0usize;
        let mut any_compatible = false;
        for cand in Self::CANDIDATES {
            let two_n = 2 * cand.poly_degree as u64;
            if cand.poly_degree / 2 < min_slots
                || !zq::is_prime(t)
                || !(t - 1).is_multiple_of(two_n)
            {
                continue;
            }
            any_compatible = true;
            let params =
                generate_mod_switch_friendly(cand.poly_degree, t, cand.prime_bits, cand.count)
                    .expect("table candidates are valid");
            let report = NoiseModel::for_params(&params).analyze(prog);
            if report.predicted_budget_bits >= self.margin_bits {
                return Ok(Selection {
                    params,
                    report,
                    candidates_tried: tried,
                });
            }
            tried += 1;
            if best.is_none_or(|(_, b)| report.predicted_budget_bits > b) {
                best = Some((cand.poly_degree, report.predicted_budget_bits));
            }
        }
        if !any_compatible && best.is_none() {
            let t_fits_somewhere = Self::CANDIDATES
                .iter()
                .any(|c| zq::is_prime(t) && (t - 1).is_multiple_of(2 * c.poly_degree as u64));
            if !t_fits_somewhere {
                return Err(SelectError::UnsupportedPlainModulus(t));
            }
        }
        Err(SelectError::NoCandidate {
            margin_bits: self.margin_bits,
            min_slots,
            best,
        })
    }
}

/// Shared precomputation for one parameter set: the ciphertext ring, the
/// `t mod q_i` residues (the error scale every BGV sample carries), and
/// the batching NTT. Create once, share by reference everywhere.
///
/// Unlike [`bfv`-style contexts](rlwe_ring) there is no auxiliary
/// multiplication base: the BGV tensor runs directly over `Q` because the
/// plaintext sits in the least-significant digit — no rescale, so no need
/// for exact rational rounding machinery.
#[derive(Debug)]
pub struct BgvContext {
    params: BgvParams,
    ring: RingContext,
    /// `t mod q_i` for each ciphertext prime — the scalar that lifts every
    /// error sample onto the `t·e` lattice.
    t_mod_q: Vec<u64>,
    /// NTT over `Z_t` used by the batch encoder.
    plain_ntt: NttTables,
}

impl BgvContext {
    /// Builds a context.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameters are invalid.
    pub fn new(params: BgvParams) -> Result<Self, ParamError> {
        params.validate()?;
        let n = params.poly_degree;
        let ring = RingContext::new(n, params.moduli.clone());
        let t_mod_q = params
            .moduli
            .iter()
            .map(|&q| params.plain_modulus % q)
            .collect();
        let plain_ntt = NttTables::new(params.plain_modulus, n);
        Ok(BgvContext {
            params,
            ring,
            t_mod_q,
            plain_ntt,
        })
    }

    /// The parameter set.
    pub fn params(&self) -> &BgvParams {
        &self.params
    }

    /// The ciphertext ring `R_Q`.
    pub fn ring(&self) -> &RingContext {
        &self.ring
    }

    /// `t mod q_i` for each ciphertext prime.
    pub fn t_mod_q(&self) -> &[u64] {
        &self.t_mod_q
    }

    /// NTT over the plaintext modulus (batching transform).
    pub fn plain_ntt(&self) -> &NttTables {
        &self.plain_ntt
    }

    /// The context one level down the chain: the same parameters with the
    /// last RNS prime dropped. Ciphertexts produced by
    /// [`crate::evaluator::Evaluator::mod_switch_to_next`] and secrets
    /// truncated by [`crate::keys::SecretKey::mod_switched`] live under
    /// this context.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError::TooFewPrimes`] if the chain is already at its
    /// two-prime floor (RNS key switching needs at least two primes).
    pub fn reduced(&self) -> Result<BgvContext, ParamError> {
        if self.params.moduli.len() <= 2 {
            return Err(ParamError::TooFewPrimes(self.params.moduli.len() - 1));
        }
        let mut params = self.params.clone();
        params.moduli.pop();
        BgvContext::new(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_friendly_primes_are_one_mod_two_n_t() {
        let p = test_small();
        let stride = 2 * p.poly_degree as u64 * p.plain_modulus;
        for &q in &p.moduli {
            assert_eq!(q % stride, 1, "prime {q} not ≡ 1 mod 2N·t");
        }
        assert!(p.validate().is_ok());
    }

    #[test]
    fn candidate_table_rows_generate() {
        // Every table row must produce a valid switch-friendly chain for
        // the workhorse t = 65537 (the selector unwraps this).
        for cand in ParamSelector::CANDIDATES {
            let p =
                generate_mod_switch_friendly(cand.poly_degree, 65537, cand.prime_bits, cand.count)
                    .expect("table row generates");
            assert_eq!(p.moduli.len(), cand.count);
        }
    }

    #[test]
    fn selector_scales_params_with_program_depth() {
        use quill::program::{Instr, Program, ValRef};
        let sel = ParamSelector::new(65537);
        let rot_add = Program::new(
            "pairsum",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
            ],
            ValRef::Instr(1),
        );
        let shallow = sel.select(&rot_add, 8).expect("shallow program selects");
        assert!(shallow.report.predicted_budget_bits >= DEFAULT_MARGIN_BITS);

        let mut instrs = Vec::new();
        let mut cur = ValRef::Input(0);
        for _ in 0..2 {
            instrs.push(Instr::MulCtCt(cur, cur));
            instrs.push(Instr::Relin(ValRef::Instr(instrs.len() - 1)));
            cur = ValRef::Instr(instrs.len() - 1);
        }
        let deep = Program::new("pow4", 1, 0, instrs, cur);
        let selected = sel.select(&deep, 8).expect("depth-2 program selects");
        let q_bits =
            |p: &BgvParams| -> u32 { p.moduli.iter().map(|&q| 64 - q.leading_zeros()).sum() };
        assert!(q_bits(&selected.params) > q_bits(&shallow.params));
    }

    /// BGV noise bits double per multiply, so the same program must select
    /// at least as much modulus under BGV as under BFV.
    #[test]
    fn bgv_selects_no_smaller_than_bfv_on_deep_programs() {
        use quill::program::{Instr, Program, ValRef};
        let mut instrs = Vec::new();
        let mut cur = ValRef::Input(0);
        for _ in 0..2 {
            instrs.push(Instr::MulCtCt(cur, cur));
            instrs.push(Instr::Relin(ValRef::Instr(instrs.len() - 1)));
            cur = ValRef::Instr(instrs.len() - 1);
        }
        let deep = Program::new("pow4", 1, 0, instrs, cur);
        let bgv = ParamSelector::new(65537).select(&deep, 8).unwrap();
        let bfv = bfv::params::ParamSelector::new(65537)
            .select(&deep, 8)
            .unwrap();
        let q_bits =
            |p: &BgvParams| -> u32 { p.moduli.iter().map(|&q| 64 - q.leading_zeros()).sum() };
        assert!(q_bits(&bgv.params) >= q_bits(&bfv.params));
    }

    #[test]
    fn selector_reports_exhaustion_with_best_attempt() {
        use quill::program::{Instr, Program, ValRef};
        let mut instrs = Vec::new();
        let mut cur = ValRef::Input(0);
        for _ in 0..20 {
            instrs.push(Instr::MulCtCt(cur, cur));
            instrs.push(Instr::Relin(ValRef::Instr(instrs.len() - 1)));
            cur = ValRef::Instr(instrs.len() - 1);
        }
        let deep = Program::new("pow-2-20", 1, 0, instrs, cur);
        match ParamSelector::new(65537).select(&deep, 8) {
            Err(SelectError::NoCandidate {
                best: Some((n, remaining)),
                ..
            }) => {
                // Unlike BFV, the least-bad attempt is a *small* degree:
                // the mul rule doubles noise bits, so the log2 N term
                // compounds 2^20-fold and dwarfs what extra modulus buys.
                assert!(n >= 1024);
                assert!(remaining < DEFAULT_MARGIN_BITS);
            }
            other => panic!("expected NoCandidate with best attempt, got {other:?}"),
        }
    }

    #[test]
    fn policy_resolution_accepts_bfv_style_fixed_sets() {
        use quill::program::{Instr, Program, ValRef};
        let prog = Program::new(
            "rot",
            1,
            0,
            vec![Instr::RotCt(ValRef::Input(0), 1)],
            ValRef::Instr(0),
        );
        // A plain-NTT-prime set (BFV's test preset) is structurally valid
        // for BGV too — the alias types make this a round trip.
        let fixed = resolve_policy(
            &ParamPolicy::Fixed(BgvParams::test_small()),
            &prog,
            8,
            65537,
        )
        .unwrap();
        assert_eq!(fixed, BgvParams::test_small());
        let auto = resolve_policy(&ParamPolicy::auto(), &prog, 8, 65537).unwrap();
        assert!(auto.validate().is_ok());
    }

    #[test]
    fn reduced_context_drops_exactly_the_last_prime() {
        let ctx = BgvContext::new(test_small()).unwrap();
        let next = ctx.reduced().unwrap();
        assert_eq!(
            next.params().moduli,
            ctx.params().moduli[..ctx.params().moduli.len() - 1]
        );
        // The two-prime floor is enforced.
        assert!(matches!(next.reduced(), Err(ParamError::TooFewPrimes(_))));
    }
}
