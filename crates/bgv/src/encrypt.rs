//! BGV ciphertexts, encryption, decryption, and the noise budget.
//!
//! BGV keeps the message in the **least-significant digit** of the phase:
//! a ciphertext `(c0, c1)` satisfies `c0 + c1·s = m + t·E (mod Q)` for a
//! small noise polynomial `E`. Decryption lifts the phase to centered
//! integers (exact while `‖m + t·E‖∞ < Q/2`) and reduces mod `t`; no
//! rounding, no `Δ` scaling. The noise budget is correspondingly direct:
//! `log2(Q / (2·‖w‖))` bits where `w` is the centered phase.

use crate::bigint::BigInt;
use crate::encoding::Plaintext;
use crate::keys::{PublicKey, SecretKey};
use crate::params::BgvContext;
use crate::poly::RnsPoly;
use rand::Rng;

/// A BGV ciphertext: a vector of ring elements (size 2 fresh, size 3 after
/// an unrelinearized multiply) decrypting via `(Σ_j c_j · s^j) mod t`.
///
/// Parts are kept in evaluation (double-CRT) form on the hot path, exactly
/// like the BFV backend's; the form converters exist for
/// storage/serialization-style uses and for testing that the
/// representation is semantically transparent.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    pub(crate) parts: Vec<RnsPoly>,
}

impl Ciphertext {
    /// Number of polynomial parts (2 or 3 in this implementation).
    pub fn size(&self) -> usize {
        self.parts.len()
    }

    /// Number of RNS primes each part currently carries (drops as the
    /// ciphertext modulus-switches down the chain).
    pub fn level_primes(&self) -> usize {
        self.parts[0].residues.len()
    }

    /// This ciphertext with every part in coefficient form.
    pub fn to_coeff_form(&self, ctx: &BgvContext) -> Ciphertext {
        Ciphertext {
            parts: self.parts.iter().map(|p| ctx.ring().to_coeff(p)).collect(),
        }
    }

    /// This ciphertext with every part in evaluation (double-CRT) form.
    pub fn to_eval_form(&self, ctx: &BgvContext) -> Ciphertext {
        Ciphertext {
            parts: self.parts.iter().map(|p| ctx.ring().to_eval(p)).collect(),
        }
    }
}

/// Public-key encryptor.
#[derive(Debug)]
pub struct Encryptor<'a> {
    ctx: &'a BgvContext,
    pk: PublicKey,
}

impl<'a> Encryptor<'a> {
    /// Creates an encryptor from a public key.
    pub fn new(ctx: &'a BgvContext, pk: PublicKey) -> Self {
        Encryptor { ctx, pk }
    }

    /// Encrypts a plaintext: `(b·u + t·e_1 + m, a·u + t·e_2)`, produced in
    /// evaluation form (the public key is already NTT-resident, so the two
    /// products are pointwise). The phase comes out as
    /// `m + t·(e_1 + e_2·s − e·u)` — message in the bottom digit.
    pub fn encrypt<R: Rng + ?Sized>(&self, pt: &Plaintext, rng: &mut R) -> Ciphertext {
        let ring = self.ctx.ring();
        let t_q = self.ctx.t_mod_q();
        let m = ring.to_eval(&ring.from_u64_coeffs(&pt.coeffs));
        let u = ring.to_eval(&ring.sample_ternary(rng));
        let te1 = ring.mul_scalar_residues(&ring.to_eval(&ring.sample_error(rng)), t_q);
        let te2 = ring.mul_scalar_residues(&ring.to_eval(&ring.sample_error(rng)), t_q);
        let c0 = ring.add(&ring.add(&ring.mul(&self.pk.b, &u), &te1), &m);
        let c1 = ring.add(&ring.mul(&self.pk.a, &u), &te2);
        Ciphertext {
            parts: vec![c0, c1],
        }
    }
}

/// Secret-key decryptor and noise meter.
#[derive(Debug)]
pub struct Decryptor<'a> {
    ctx: &'a BgvContext,
    sk: SecretKey,
}

impl<'a> Decryptor<'a> {
    /// Creates a decryptor from the secret key.
    ///
    /// For a modulus-switched ciphertext, build the decryptor over the
    /// [`crate::params::BgvContext::reduced`] context with a
    /// [`SecretKey::mod_switched`] key.
    pub fn new(ctx: &'a BgvContext, sk: SecretKey) -> Self {
        Decryptor { ctx, sk }
    }

    /// The raw phase `Σ_j c_j s^j mod Q`, lifted to centered integers.
    fn phase(&self, ct: &Ciphertext) -> Vec<BigInt> {
        let ring = self.ctx.ring();
        let mut acc = ct.parts[0].clone();
        let mut s_pow = self.sk.s.clone();
        for part in &ct.parts[1..] {
            acc = ring.add(&acc, &ring.mul(part, &s_pow));
            s_pow = ring.mul(&s_pow, &self.sk.s);
        }
        ring.lift_centered(&acc)
    }

    /// Decrypts: the centered phase reduced mod `t` per coefficient.
    pub fn decrypt(&self, ct: &Ciphertext) -> Plaintext {
        let t = self.ctx.params().plain_modulus;
        let coeffs = self.phase(ct).iter().map(|w| w.rem_euclid_u64(t)).collect();
        Plaintext { coeffs }
    }

    /// Noise budget in bits: `log2(Q / (2·‖w‖∞))` for the centered phase
    /// `w = m + t·E`. Decryption is reliable while positive — the same
    /// contract as the BFV backend's invariant-noise budget, so the two
    /// meters are directly comparable in the differential harness.
    ///
    /// A non-positive budget means decryption is no longer reliable.
    pub fn invariant_noise_budget(&self, ct: &Ciphertext) -> i64 {
        let q_bits = self.ctx.ring().modulus().bits() as i64;
        let mut max_bits: i64 = 0;
        for w in self.phase(ct) {
            max_bits = max_bits.max(w.mag.bits() as i64);
        }
        q_bits - max_bits - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::BatchEncoder;
    use crate::keys::KeyGenerator;
    use crate::params;
    use rand::SeedableRng;

    fn setup() -> (BgvContext, rand::rngs::StdRng) {
        (
            BgvContext::new(params::test_small()).unwrap(),
            rand::rngs::StdRng::seed_from_u64(0xB64),
        )
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (ctx, mut rng) = setup();
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let enc = Encryptor::new(&ctx, kg.public_key(&mut rng));
        let dec = Decryptor::new(&ctx, kg.secret_key().clone());
        let encoder = BatchEncoder::new(&ctx);

        let t = ctx.params().plain_modulus;
        let v: Vec<u64> = (0..encoder.slot_count() as u64)
            .map(|i| (i * 31 + 5) % t)
            .collect();
        let ct = enc.encrypt(&encoder.encode(&v), &mut rng);
        assert_eq!(encoder.decode(&dec.decrypt(&ct)), v);
    }

    #[test]
    fn fresh_budget_is_large() {
        let (ctx, mut rng) = setup();
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let enc = Encryptor::new(&ctx, kg.public_key(&mut rng));
        let dec = Decryptor::new(&ctx, kg.secret_key().clone());
        let encoder = BatchEncoder::new(&ctx);
        let ct = enc.encrypt(&encoder.encode(&[1, 2, 3]), &mut rng);
        let budget = dec.invariant_noise_budget(&ct);
        assert!(budget > 60, "fresh budget {budget} too small");
    }

    #[test]
    fn different_randomness_different_ciphertexts() {
        let (ctx, mut rng) = setup();
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let enc = Encryptor::new(&ctx, kg.public_key(&mut rng));
        let encoder = BatchEncoder::new(&ctx);
        let pt = encoder.encode(&[42]);
        let c1 = enc.encrypt(&pt, &mut rng);
        let c2 = enc.encrypt(&pt, &mut rng);
        assert_ne!(c1.parts[0], c2.parts[0]);
    }

    #[test]
    fn decrypts_random_full_slots() {
        use rand::Rng;
        let (ctx, mut rng) = setup();
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let enc = Encryptor::new(&ctx, kg.public_key(&mut rng));
        let dec = Decryptor::new(&ctx, kg.secret_key().clone());
        let encoder = BatchEncoder::new(&ctx);
        let t = ctx.params().plain_modulus;
        for trial in 0..3 {
            let v: Vec<u64> = (0..encoder.slot_count())
                .map(|_| rng.gen_range(0..t))
                .collect();
            let ct = enc.encrypt(&encoder.encode(&v), &mut rng);
            assert_eq!(encoder.decode(&dec.decrypt(&ct)), v, "trial {trial}");
        }
    }

    /// BGV also runs over BFV-style chains (plain NTT primes) — the
    /// encryption/decryption path never needs switch-friendly primes.
    #[test]
    fn roundtrip_under_bfv_test_params() {
        let ctx = BgvContext::new(crate::params::BgvParams::test_small()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let enc = Encryptor::new(&ctx, kg.public_key(&mut rng));
        let dec = Decryptor::new(&ctx, kg.secret_key().clone());
        let encoder = BatchEncoder::new(&ctx);
        let v = vec![9u64, 8, 7, 6];
        let ct = enc.encrypt(&encoder.encode(&v), &mut rng);
        assert_eq!(encoder.decode(&dec.decrypt(&ct))[..4], v[..]);
    }
}
