//! BGV key material: secret/public keys, relinearization keys, and Galois
//! keys, all using the shared RNS-decomposition key switching.
//!
//! The construction is [`rlwe_ring::keyswitch`]'s with one twist: every
//! error term is **scaled by `t`** before it enters a key. BGV decryption
//! reads the plaintext out of the least-significant digit of the phase
//! (`w = m + t·noise mod Q`), so key material whose noise were not a
//! multiple of `t` would corrupt the message digit rather than merely
//! consuming budget. The public key is `b = -(a·s + t·e)`, and key-switch
//! keys carry `b_i = -(a_i·s + t·e_i) + γ_i·s'`.

use crate::params::BgvContext;
use crate::poly::RnsPoly;
use rand::Rng;
use std::collections::HashMap;

pub use rlwe_ring::keyswitch::KeySwitchKey;

/// The secret key: a ternary polynomial `s` (stored in evaluation form).
#[derive(Debug, Clone)]
pub struct SecretKey {
    pub(crate) s: RnsPoly,
}

impl SecretKey {
    /// This secret under the next context down the modulus chain: the RNS
    /// rows beyond `next`'s chain are dropped. Valid because evaluation
    /// form is per-prime independent — the surviving rows are exactly the
    /// NTT images of the same ternary `s` under the surviving primes.
    ///
    /// # Panics
    ///
    /// Panics if `next`'s chain is not a prefix-truncation of this key's.
    pub fn mod_switched(&self, next: &BgvContext) -> SecretKey {
        let keep = next.ring().num_primes();
        assert!(
            keep <= self.s.residues.len(),
            "target context has a longer chain than the key"
        );
        let mut s = self.s.clone();
        s.residues.truncate(keep);
        SecretKey { s }
    }
}

/// The public key: an RLWE sample `(b, a)` with `b = -(a·s + t·e)`, in
/// evaluation form.
#[derive(Debug, Clone)]
pub struct PublicKey {
    pub(crate) b: RnsPoly,
    pub(crate) a: RnsPoly,
}

/// Truncates a key-switch key to the first `keep` chain primes: drops the
/// digit rows for vanished primes and each surviving row's residues beyond
/// the new chain. Valid for the same reason [`SecretKey::mod_switched`] is
/// — evaluation form is per-prime independent, and the CRT unit `γ_i` of
/// the full chain restricted to the surviving primes is still the CRT unit
/// of the truncated chain.
fn truncate_ksk(ksk: &KeySwitchKey, keep: usize) -> KeySwitchKey {
    assert!(keep <= ksk.parts.len(), "cannot extend a key-switch key");
    let trunc = |p: &RnsPoly| {
        let mut p = p.clone();
        p.residues.truncate(keep);
        p
    };
    KeySwitchKey {
        parts: ksk.parts[..keep]
            .iter()
            .map(|(b, a)| (trunc(b), trunc(a)))
            .collect(),
        shoup: ksk.shoup[..keep]
            .iter()
            .map(|(bs, as_)| (bs[..keep].to_vec(), as_[..keep].to_vec()))
            .collect(),
    }
}

/// Relinearization key: key-switch key for `s' = s²`.
#[derive(Debug, Clone)]
pub struct RelinKey(pub(crate) KeySwitchKey);

impl RelinKey {
    /// This key under the next context down the modulus chain (see
    /// [`SecretKey::mod_switched`]).
    pub fn mod_switched(&self, next: &BgvContext) -> RelinKey {
        RelinKey(truncate_ksk(&self.0, next.ring().num_primes()))
    }
}

/// One Galois element's material: the key-switch key for `s' = σ_g(s)`
/// together with the cached evaluation-domain permutation of `σ_g`.
#[derive(Debug, Clone)]
pub(crate) struct GaloisKeyEntry {
    pub(crate) key: KeySwitchKey,
    pub(crate) perm: Vec<u32>,
}

/// Galois keys: one [`GaloisKeyEntry`] per Galois element.
#[derive(Debug, Clone, Default)]
pub struct GaloisKeys {
    pub(crate) keys: HashMap<u64, GaloisKeyEntry>,
}

impl GaloisKeys {
    /// The Galois elements covered by this key set.
    pub fn elements(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.keys.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Whether a key for Galois element `g` is present.
    pub fn contains(&self, g: u64) -> bool {
        self.keys.contains_key(&g)
    }

    /// These keys under the next context down the modulus chain (see
    /// [`SecretKey::mod_switched`]). The cached permutations are
    /// modulus-independent and carry over unchanged.
    pub fn mod_switched(&self, next: &BgvContext) -> GaloisKeys {
        let keep = next.ring().num_primes();
        GaloisKeys {
            keys: self
                .keys
                .iter()
                .map(|(&g, e)| {
                    (
                        g,
                        GaloisKeyEntry {
                            key: truncate_ksk(&e.key, keep),
                            perm: e.perm.clone(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Generates all key material for one secret.
///
/// # Examples
///
/// ```
/// use bgv::params::{self, BgvContext};
/// use bgv::keys::KeyGenerator;
/// use rand::SeedableRng;
///
/// let ctx = BgvContext::new(params::test_small())?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let keygen = KeyGenerator::new(&ctx, &mut rng);
/// let pk = keygen.public_key(&mut rng);
/// let rk = keygen.relin_key(&mut rng);
/// # let _ = (pk, rk);
/// # Ok::<(), bgv::params::ParamError>(())
/// ```
#[derive(Debug)]
pub struct KeyGenerator<'a> {
    ctx: &'a BgvContext,
    sk: SecretKey,
}

impl<'a> KeyGenerator<'a> {
    /// Samples a fresh ternary secret.
    pub fn new<R: Rng + ?Sized>(ctx: &'a BgvContext, rng: &mut R) -> Self {
        let ring = ctx.ring();
        let s = ring.to_eval(&ring.sample_ternary(rng));
        KeyGenerator {
            ctx,
            sk: SecretKey { s },
        }
    }

    /// The secret key.
    pub fn secret_key(&self) -> &SecretKey {
        &self.sk
    }

    /// Generates a public key (`b = -(a·s + t·e)`).
    pub fn public_key<R: Rng + ?Sized>(&self, rng: &mut R) -> PublicKey {
        let ring = self.ctx.ring();
        let a = ring.sample_uniform(rng);
        let e = ring.to_eval(&ring.sample_error(rng));
        let te = ring.mul_scalar_residues(&e, self.ctx.t_mod_q());
        let b = ring.neg(&ring.add(&ring.mul(&a, &self.sk.s), &te));
        PublicKey { b, a }
    }

    /// Builds a key-switch key whose source key is `target` (e.g. `s²` or
    /// `σ_g(s)`, in evaluation form), with `t`-scaled errors.
    fn key_switch_key<R: Rng + ?Sized>(&self, target: &RnsPoly, rng: &mut R) -> KeySwitchKey {
        rlwe_ring::keyswitch::key_switch_key(
            self.ctx.ring(),
            &self.sk.s,
            target,
            Some(self.ctx.t_mod_q()),
            rng,
        )
    }

    /// Generates the relinearization key (`s' = s²`).
    pub fn relin_key<R: Rng + ?Sized>(&self, rng: &mut R) -> RelinKey {
        let ring = self.ctx.ring();
        let s2 = ring.mul(&self.sk.s, &self.sk.s);
        RelinKey(self.key_switch_key(&s2, rng))
    }

    /// Generates Galois keys for the given Galois elements, caching each
    /// element's evaluation-domain permutation alongside its key.
    ///
    /// # Panics
    ///
    /// Panics if an element is even or out of range (see
    /// [`crate::poly::RingContext::automorphism`]).
    pub fn galois_keys<R: Rng + ?Sized>(&self, elements: &[u64], rng: &mut R) -> GaloisKeys {
        let ring = self.ctx.ring();
        let mut keys = HashMap::new();
        for &g in elements {
            if g == 1 || keys.contains_key(&g) {
                continue;
            }
            let s_g = ring.automorphism(&self.sk.s, g);
            keys.insert(
                g,
                GaloisKeyEntry {
                    key: self.key_switch_key(&s_g, rng),
                    perm: ring.galois_eval_permutation(g),
                },
            );
        }
        GaloisKeys { keys }
    }

    /// Generates Galois keys sufficient for `rotate_rows` by each of
    /// `steps` and, if `include_column_swap`, for `rotate_columns`.
    pub fn galois_keys_for_rotations<R: Rng + ?Sized>(
        &self,
        steps: &[i64],
        include_column_swap: bool,
        rng: &mut R,
    ) -> GaloisKeys {
        let n = self.ctx.params().poly_degree;
        let mut elements: Vec<u64> = steps
            .iter()
            .map(|&s| crate::encoding::galois_element_for_rotation(n, s))
            .collect();
        if include_column_swap {
            elements.push(crate::encoding::galois_element_for_column_swap(n));
        }
        self.galois_keys(&elements, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params;
    use rand::SeedableRng;

    #[test]
    fn keygen_produces_distinct_parts() {
        let ctx = BgvContext::new(params::test_small()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let rk = kg.relin_key(&mut rng);
        assert_eq!(rk.0.parts.len(), ctx.ring().num_primes());
        assert_eq!(rk.0.shoup.len(), ctx.ring().num_primes());
        assert_ne!(rk.0.parts[0].1, rk.0.parts[1].1);
    }

    #[test]
    fn galois_keys_skip_identity_and_dedup() {
        let ctx = BgvContext::new(params::test_small()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let gk = kg.galois_keys(&[1, 3, 3, 9], &mut rng);
        assert_eq!(gk.elements(), vec![3, 9]);
        assert!(gk.contains(3));
        assert!(!gk.contains(1));
        for g in gk.elements() {
            assert_eq!(gk.keys[&g].perm.len(), ctx.params().poly_degree);
        }
    }

    #[test]
    fn truncated_secret_matches_reduced_ring() {
        let ctx = BgvContext::new(params::test_small()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let next = ctx.reduced().unwrap();
        let sk2 = kg.secret_key().mod_switched(&next);
        assert_eq!(sk2.s.residues.len(), next.ring().num_primes());
        // The surviving rows are untouched.
        for (row, orig) in sk2.s.residues.iter().zip(&kg.secret_key().s.residues) {
            assert_eq!(row, orig);
        }
    }
}
