//! Homomorphic evaluation for BGV: the same SIMD instruction surface the
//! BFV backend exposes, plus BGV's native level management
//! ([`Evaluator::mod_switch_to_next`]).
//!
//! # The double-CRT invariant
//!
//! Identical to the BFV backend's: ciphertexts and keys stay in evaluation
//! (double-CRT) form between operations, plaintext operands are lifted
//! once ([`crate::encoding::EvalPlaintext`]), rotations permute evaluation
//! slots through cached index maps, and key switching is the shared
//! [`rlwe_ring::keyswitch`] digit decomposition.
//!
//! # Multiplication
//!
//! This is where BGV pays for its simplicity elsewhere: because the
//! message sits in the least-significant digit (`w = m + t·E`), the
//! product of two phases is directly `m₁m₂ + t·E'` — **no rescale**. The
//! tensor is three pointwise products over `Q` in the transform domain
//! (`e0 = c0·d0`, `e1 = c0·d1 + c1·d0`, `e2 = c1·d1`) and nothing else: no
//! auxiliary base, no base conversions, no NTT round trip. The flip side
//! is noise: `‖E'‖ ≈ N·‖w₁‖·‖w₂‖`, so noise *bits* roughly double per
//! multiplication where BFV's grow additively — managed by switching down
//! the modulus chain ([`Evaluator::mod_switch_to_next`]) after each level,
//! and priced into the BGV [`crate::noise::NoiseModel`] and parameter
//! selector.
//!
//! # Modulus switching
//!
//! `mod_switch_to_next` divides the ciphertext by the last chain prime
//! `q_k` with `t`-lattice rounding: `c' = (c + t·δ)/q_k` where
//! `δ = [−c·t⁻¹]_{q_k}` centered. The division is exact in RNS (the
//! numerator is `≡ 0 mod q_k` by construction), costs `O(k·N)` u128
//! multiply-adds, and divides the noise by `q_k` while adding only a
//! `t·(N+1)/2` rounding term. The plaintext digit is invariant exactly
//! when `q_k ≡ 1 (mod t)` — guaranteed by switch-friendly chains
//! ([`crate::params::generate_mod_switch_friendly`]), asserted at run
//! time for foreign chains. This is an *evaluator-level* operation, not a
//! quill IR instruction: the synthesizer's cost/noise models see its
//! effect through the scheme's noise semantics, not as a schedulable op.

use crate::encoding::{
    galois_element_for_column_swap, galois_element_for_rotation, EvalPlaintext, Plaintext,
};
use crate::encrypt::Ciphertext;
use crate::keys::{GaloisKeys, KeySwitchKey, RelinKey};
use crate::keyswitch::HoistedDecomposition;
use crate::ntt::{pointwise_mul_add_into, pointwise_mul_into};
use crate::params::BgvContext;
use crate::poly::{PolyForm, RingContext, RnsPoly};
use crate::pool::{PoolStats, ScratchPool};
use crate::zq;

/// Evaluator over one context, with a private [`ScratchPool`] backing the
/// allocation-free hot path. Mirrors the BFV evaluator's surface: every
/// operation has a pure flavor and an in-place `_assign` flavor, and dead
/// ciphertexts can be recycled into the pool.
///
/// The pool uses interior mutability, so an `Evaluator` is not `Sync`;
/// create one per worker thread over a shared context.
///
/// # Examples
///
/// ```
/// use bgv::{params::{self, BgvContext}, encoding::BatchEncoder,
///           keys::KeyGenerator, encrypt::{Encryptor, Decryptor}, evaluator::Evaluator};
/// use rand::SeedableRng;
///
/// let ctx = BgvContext::new(params::test_small())?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let kg = KeyGenerator::new(&ctx, &mut rng);
/// let enc = Encryptor::new(&ctx, kg.public_key(&mut rng));
/// let dec = Decryptor::new(&ctx, kg.secret_key().clone());
/// let coder = BatchEncoder::new(&ctx);
/// let ev = Evaluator::new(&ctx);
///
/// let mut a = enc.encrypt(&coder.encode(&[3, 4]), &mut rng);
/// let b = enc.encrypt(&coder.encode(&[10, 20]), &mut rng);
/// ev.add_assign(&mut a, &b);
/// assert_eq!(&coder.decode(&dec.decrypt(&a))[..2], &[13, 24]);
/// # Ok::<(), bgv::params::ParamError>(())
/// ```
#[derive(Debug)]
pub struct Evaluator<'a> {
    ctx: &'a BgvContext,
    pool: ScratchPool,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator with an empty scratch pool.
    pub fn new(ctx: &'a BgvContext) -> Self {
        Evaluator {
            ctx,
            pool: ScratchPool::new(),
        }
    }

    /// Allocation counters of the scratch pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Returns a dead ciphertext's buffers to the scratch pool.
    pub fn recycle(&self, ct: Ciphertext) {
        let mut parts = ct.parts;
        for part in parts.drain(..) {
            self.pool.put_matrix(part.residues);
        }
        self.pool.put_parts(parts);
    }

    /// A pooled all-zero polynomial in evaluation form.
    fn take_poly_zeroed(&self) -> RnsPoly {
        let ring = self.ctx.ring();
        RnsPoly {
            residues: self
                .pool
                .take_matrix_zeroed(ring.num_primes(), ring.degree()),
            form: PolyForm::Eval,
        }
    }

    fn put_poly(&self, p: RnsPoly) {
        self.pool.put_matrix(p.residues);
    }

    /// Slot-wise sum of two ciphertexts. Mismatched sizes zero-pad the
    /// shorter operand.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let mut out = a.clone();
        self.add_assign(&mut out, b);
        out
    }

    /// `a += b` slot-wise, in place.
    pub fn add_assign(&self, a: &mut Ciphertext, b: &Ciphertext) {
        self.zip_assign(a, b, RingContext::add_assign)
    }

    /// Slot-wise difference of two ciphertexts.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let mut out = a.clone();
        self.sub_assign(&mut out, b);
        out
    }

    /// `a -= b` slot-wise, in place.
    pub fn sub_assign(&self, a: &mut Ciphertext, b: &Ciphertext) {
        self.zip_assign(a, b, RingContext::sub_assign)
    }

    fn zip_assign(
        &self,
        a: &mut Ciphertext,
        b: &Ciphertext,
        f: fn(&RingContext, &mut RnsPoly, &RnsPoly),
    ) {
        let ring = self.ctx.ring();
        while a.parts.len() < b.parts.len() {
            a.parts.push(self.take_poly_zeroed());
        }
        for (x, y) in a.parts.iter_mut().zip(&b.parts) {
            f(ring, x, y);
        }
    }

    /// Slot-wise negation.
    pub fn negate(&self, a: &Ciphertext) -> Ciphertext {
        let mut out = a.clone();
        self.negate_assign(&mut out);
        out
    }

    /// `a = -a` slot-wise, in place.
    pub fn negate_assign(&self, a: &mut Ciphertext) {
        let ring = self.ctx.ring();
        for p in a.parts.iter_mut() {
            ring.neg_assign(p);
        }
    }

    /// Lifts a plaintext into cached evaluation form for reuse across many
    /// operations.
    pub fn preencode(&self, pt: &Plaintext) -> EvalPlaintext {
        EvalPlaintext::new(self.ctx, pt)
    }

    /// Adds an encoded plaintext to a ciphertext (`c0 += m` — the message
    /// digit adds directly, no scaling).
    pub fn add_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let mut out = a.clone();
        self.add_plain_assign(&mut out, &self.preencode(pt));
        out
    }

    /// `c0 += m` with a cached plaintext.
    pub fn add_plain_assign(&self, a: &mut Ciphertext, pt: &EvalPlaintext) {
        self.ctx.ring().add_assign(&mut a.parts[0], &pt.m);
    }

    /// Subtracts an encoded plaintext from a ciphertext.
    pub fn sub_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let mut out = a.clone();
        self.sub_plain_assign(&mut out, &self.preencode(pt));
        out
    }

    /// `c0 -= m` with a cached plaintext.
    pub fn sub_plain_assign(&self, a: &mut Ciphertext, pt: &EvalPlaintext) {
        self.ctx.ring().sub_assign(&mut a.parts[0], &pt.m);
    }

    /// Multiplies a ciphertext by an encoded plaintext (slot-wise).
    pub fn mul_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let mut out = a.clone();
        self.mul_plain_assign(&mut out, &self.preencode(pt));
        out
    }

    /// `a *= m` slot-wise with a cached plaintext: pointwise products on
    /// every part.
    pub fn mul_plain_assign(&self, a: &mut Ciphertext, pt: &EvalPlaintext) {
        let ring = self.ctx.ring();
        for p in a.parts.iter_mut() {
            ring.mul_assign(p, &pt.m);
        }
    }

    /// Ciphertext–ciphertext multiply, producing a size-3 ciphertext.
    /// Relinearize with [`Evaluator::relinearize`] before further rotations
    /// or multiplies.
    ///
    /// Three pointwise tensor products over `Q` — see the module docs for
    /// why BGV needs no rescale (and what it costs in noise).
    ///
    /// # Panics
    ///
    /// Panics if either input is not size 2.
    pub fn multiply(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        assert_eq!(
            a.size(),
            2,
            "multiply requires size-2 inputs (relinearize first)"
        );
        assert_eq!(
            b.size(),
            2,
            "multiply requires size-2 inputs (relinearize first)"
        );
        let ring = self.ctx.ring();
        let k = ring.num_primes();
        let n = ring.degree();
        let pool = &self.pool;

        let (mut s0, mut s1, mut s2, mut s3) = (None, None, None, None);
        let c0 = eval_ref(ring, &a.parts[0], &mut s0);
        let c1 = eval_ref(ring, &a.parts[1], &mut s1);
        let d0 = eval_ref(ring, &b.parts[0], &mut s2);
        let d1 = eval_ref(ring, &b.parts[1], &mut s3);

        //   e0 = c0·d0, e1 = c0·d1 + c1·d0, e2 = c1·d1 — pointwise over Q.
        let tensor = |x: &RnsPoly, y: &RnsPoly| -> Vec<Vec<u64>> {
            let mut out = pool.take_matrix(k, n);
            for (i, &bar) in ring.barretts().iter().enumerate() {
                pointwise_mul_into(&x.residues[i], &y.residues[i], bar, &mut out[i]);
            }
            out
        };
        let e0 = tensor(c0, d0);
        let mut e1 = tensor(c0, d1);
        for (i, &bar) in ring.barretts().iter().enumerate() {
            pointwise_mul_add_into(&mut e1[i], &c1.residues[i], &d0.residues[i], bar);
        }
        let e2 = tensor(c1, d1);

        let mut parts = pool.take_parts();
        for residues in [e0, e1, e2] {
            parts.push(RnsPoly {
                residues,
                form: PolyForm::Eval,
            });
        }
        Ciphertext { parts }
    }

    fn key_switch_into(
        &self,
        d: &RnsPoly,
        ksk: &KeySwitchKey,
        acc_b: &mut RnsPoly,
        acc_a: &mut RnsPoly,
    ) {
        rlwe_ring::keyswitch::key_switch_into(self.ctx.ring(), &self.pool, d, ksk, acc_b, acc_a);
    }

    /// Relinearizes a size-3 ciphertext back to size 2.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is not size 3.
    pub fn relinearize(&self, a: &Ciphertext, rk: &RelinKey) -> Ciphertext {
        let mut out = a.clone();
        self.relinearize_assign(&mut out, rk);
        out
    }

    /// In-place relinearization: drops `c2`, folds its key switch into
    /// `c0`/`c1`, and recycles the dead part.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is not size 3.
    pub fn relinearize_assign(&self, a: &mut Ciphertext, rk: &RelinKey) {
        assert_eq!(a.size(), 3, "relinearize expects a size-3 ciphertext");
        let ring = self.ctx.ring();
        let mut acc_b = self.take_poly_zeroed();
        let mut acc_a = self.take_poly_zeroed();
        let c2 = a.parts.pop().expect("size checked");
        self.key_switch_into(&c2, &rk.0, &mut acc_b, &mut acc_a);
        self.put_poly(c2);
        ring.add_assign(&mut a.parts[0], &acc_b);
        ring.add_assign(&mut a.parts[1], &acc_a);
        self.put_poly(acc_b);
        self.put_poly(acc_a);
    }

    /// Multiply then relinearize — the shape Porcupine's codegen emits for
    /// every ct×ct product.
    pub fn multiply_relin(&self, a: &Ciphertext, b: &Ciphertext, rk: &RelinKey) -> Ciphertext {
        let mut prod = self.multiply(a, b);
        self.relinearize_assign(&mut prod, rk);
        prod
    }

    /// Applies the Galois automorphism `x → x^g` homomorphically.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is not size 2 or no key for `g` is present.
    pub fn apply_galois(&self, a: &Ciphertext, g: u64, gk: &GaloisKeys) -> Ciphertext {
        let mut out = a.clone();
        self.apply_galois_assign(&mut out, g, gk);
        out
    }

    /// In-place Galois automorphism: permutes both parts, key-switches
    /// `c1`, recycles the dead part.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is not size 2 or no key for `g` is present.
    pub fn apply_galois_assign(&self, a: &mut Ciphertext, g: u64, gk: &GaloisKeys) {
        assert_eq!(
            a.size(),
            2,
            "apply_galois expects size-2 (relinearize first)"
        );
        if g == 1 {
            return;
        }
        let ring = self.ctx.ring();
        let entry = gk
            .keys
            .get(&g)
            .unwrap_or_else(|| panic!("missing Galois key for element {g}"));
        let mut scratch = self.pool.take_row(ring.degree());
        for part in a.parts.iter_mut() {
            ring.make_eval(part);
            ring.apply_eval_permutation_assign(part, &entry.perm, &mut scratch);
        }
        self.pool.put_row(scratch);
        let mut acc_b = self.take_poly_zeroed();
        let mut acc_a = self.take_poly_zeroed();
        self.key_switch_into(&a.parts[1], &entry.key, &mut acc_b, &mut acc_a);
        ring.add_assign(&mut a.parts[0], &acc_b);
        self.put_poly(acc_b);
        let old_c1 = std::mem::replace(&mut a.parts[1], acc_a);
        self.put_poly(old_c1);
    }

    /// Rotates both batching rows left by `steps` (negative = right) —
    /// SEAL's `rotate_rows`. Slot semantics are identical to the BFV
    /// backend's (the geometry is shared).
    ///
    /// # Panics
    ///
    /// Panics if the required Galois key is missing.
    pub fn rotate_rows(&self, a: &Ciphertext, steps: i64, gk: &GaloisKeys) -> Ciphertext {
        let mut out = a.clone();
        self.rotate_rows_assign(&mut out, steps, gk);
        out
    }

    /// In-place [`Evaluator::rotate_rows`].
    ///
    /// # Panics
    ///
    /// Panics if the required Galois key is missing.
    pub fn rotate_rows_assign(&self, a: &mut Ciphertext, steps: i64, gk: &GaloisKeys) {
        let n = self.ctx.params().poly_degree;
        self.apply_galois_assign(a, galois_element_for_rotation(n, steps), gk)
    }

    /// Swaps the two batching rows — SEAL's `rotate_columns`.
    ///
    /// # Panics
    ///
    /// Panics if the required Galois key is missing.
    pub fn rotate_columns(&self, a: &Ciphertext, gk: &GaloisKeys) -> Ciphertext {
        let mut out = a.clone();
        self.rotate_columns_assign(&mut out, gk);
        out
    }

    /// In-place [`Evaluator::rotate_columns`].
    ///
    /// # Panics
    ///
    /// Panics if the required Galois key is missing.
    pub fn rotate_columns_assign(&self, a: &mut Ciphertext, gk: &GaloisKeys) {
        let n = self.ctx.params().poly_degree;
        self.apply_galois_assign(a, galois_element_for_column_swap(n), gk)
    }

    /// The decompose phase of a hoisted rotation: digit-decomposes `c1`
    /// once (`k` inverse + `k²` forward NTTs — the dominant cost of a
    /// rotation's key switch) so that any number of
    /// [`Evaluator::rotate_rows_hoisted`] calls on the same ciphertext can
    /// skip it. Return the decomposition with
    /// [`Evaluator::recycle_hoisted`] when the fan is done.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is not size 2.
    pub fn hoist(&self, a: &Ciphertext) -> HoistedDecomposition {
        assert_eq!(a.size(), 2, "hoist expects size-2 (relinearize first)");
        rlwe_ring::keyswitch::hoist_decompose(self.ctx.ring(), &self.pool, &a.parts[1])
    }

    /// Rotates rows by `steps` through a decomposition prepared by
    /// [`Evaluator::hoist`] on the *same* ciphertext: the stored digit rows
    /// are permuted by `σ_g` (a valid decomposition of `σ_g(c1)`, since the
    /// automorphism preserves the CRT identity and digit norms) and folded
    /// through the Galois key — per rotation only `k²` row permutations and
    /// `2k²` pointwise Shoup multiply-adds, no NTTs. Decrypts identically
    /// to [`Evaluator::rotate_rows`] with the same noise bound; the raw
    /// ciphertext bits differ (the permuted digits are not the canonical
    /// decomposition of the rotated polynomial). BGV's key-switch noise
    /// stays on the multiples-of-`t` lattice — the key's `t·e` error term
    /// is untouched by hoisting.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is not size 2 or the Galois key is missing.
    pub fn rotate_rows_hoisted(
        &self,
        a: &Ciphertext,
        hd: &HoistedDecomposition,
        steps: i64,
        gk: &GaloisKeys,
    ) -> Ciphertext {
        assert_eq!(a.size(), 2, "hoisted rotation expects size-2");
        let ring = self.ctx.ring();
        let n = self.ctx.params().poly_degree;
        let g = galois_element_for_rotation(n, steps);
        if g == 1 {
            return a.clone();
        }
        let entry = gk
            .keys
            .get(&g)
            .unwrap_or_else(|| panic!("missing Galois key for element {g}"));
        // σ_g(c0), straight into a pooled evaluation-form poly.
        let mut c0_store = None;
        let c0 = eval_ref(ring, &a.parts[0], &mut c0_store);
        let mut b = RnsPoly {
            residues: self.pool.take_matrix(ring.num_primes(), ring.degree()),
            form: PolyForm::Eval,
        };
        for (dst_row, src_row) in b.residues.iter_mut().zip(&c0.residues) {
            for (dst, &src) in dst_row.iter_mut().zip(&entry.perm) {
                *dst = src_row[src as usize];
            }
        }
        if let Some(p) = c0_store {
            self.put_poly(p);
        }
        let mut acc_b = self.take_poly_zeroed();
        let mut acc_a = self.take_poly_zeroed();
        rlwe_ring::keyswitch::key_switch_hoisted_into(
            ring,
            &self.pool,
            hd,
            Some(&entry.perm),
            &entry.key,
            &mut acc_b,
            &mut acc_a,
        );
        ring.add_assign(&mut b, &acc_b);
        self.put_poly(acc_b);
        let mut parts = self.pool.take_parts();
        parts.push(b);
        parts.push(acc_a);
        Ciphertext { parts }
    }

    /// Returns a hoisted decomposition's buffers to the scratch pool.
    pub fn recycle_hoisted(&self, hd: HoistedDecomposition) {
        hd.recycle(&self.pool);
    }

    /// Switches a ciphertext one level down the modulus chain: the result
    /// lives under `next` (which must be this context's
    /// [`crate::params::BgvContext::reduced`] chain) with the noise divided
    /// by the dropped prime, at the cost of a `t·(N+1)/2` rounding term.
    /// Decrypt the result with a [`crate::keys::SecretKey::mod_switched`]
    /// key under `next`.
    ///
    /// See the module docs for the arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `next` is not this chain minus its last prime, or if the
    /// dropped prime is not `≡ 1 (mod t)` (the plaintext digit would be
    /// scaled by `q_k⁻¹ mod t`; use switch-friendly chains).
    pub fn mod_switch_to_next(&self, ct: &Ciphertext, next: &BgvContext) -> Ciphertext {
        let ring = self.ctx.ring();
        let k = ring.num_primes();
        assert_eq!(
            next.params().moduli[..],
            self.ctx.params().moduli[..k - 1],
            "next context must drop exactly the last chain prime"
        );
        let t = self.ctx.params().plain_modulus;
        let q_k = ring.primes()[k - 1];
        assert_eq!(
            q_k % t,
            1,
            "dropped prime {q_k} must be ≡ 1 mod t for a plaintext-invariant switch"
        );
        let n = ring.degree();
        let t_inv_qk = zq::inv_mod(t % q_k, q_k);
        let half_qk = q_k / 2;
        let parts = ct
            .parts
            .iter()
            .map(|p| {
                let coeff = ring.to_coeff(p);
                // δ = [−c·t⁻¹]_{q_k}, centered — the unique shift making
                // c + t·δ divisible by q_k while staying ≡ c (mod t).
                let last = &coeff.residues[k - 1];
                let delta: Vec<i128> = last
                    .iter()
                    .map(|&r| {
                        let d = zq::mul_mod((q_k - r) % q_k, t_inv_qk, q_k);
                        if d > half_qk {
                            d as i128 - q_k as i128
                        } else {
                            d as i128
                        }
                    })
                    .collect();
                let mut rows = Vec::with_capacity(k - 1);
                for i in 0..k - 1 {
                    let q_i = ring.primes()[i];
                    let qk_inv = zq::inv_mod(q_k % q_i, q_i);
                    let src = &coeff.residues[i];
                    let mut row = vec![0u64; n];
                    for c in 0..n {
                        // (c_i + t·δ)·q_k⁻¹ mod q_i — exact division.
                        let x = src[c] as i128 + t as i128 * delta[c];
                        let xm = x.rem_euclid(q_i as i128) as u64;
                        row[c] = zq::mul_mod(xm, qk_inv, q_i);
                    }
                    rows.push(row);
                }
                let mut out = RnsPoly {
                    residues: rows,
                    form: PolyForm::Coeff,
                };
                next.ring().make_eval(&mut out);
                out
            })
            .collect();
        Ciphertext { parts }
    }
}

/// Borrows `p` if already evaluation-resident, otherwise converts into
/// `store` (cold path) and borrows that.
fn eval_ref<'p>(ring: &RingContext, p: &'p RnsPoly, store: &'p mut Option<RnsPoly>) -> &'p RnsPoly {
    if p.form() == PolyForm::Eval {
        p
    } else {
        &*store.insert(ring.to_eval(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::BatchEncoder;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::keys::KeyGenerator;
    use crate::params;
    use rand::{Rng, SeedableRng};

    struct Session<'a> {
        encoder: BatchEncoder<'a>,
        enc: Encryptor<'a>,
        dec: Decryptor<'a>,
        ev: Evaluator<'a>,
        kg: KeyGenerator<'a>,
        rng: rand::rngs::StdRng,
    }

    fn session(ctx: &params::BgvContext) -> Session<'_> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xB611);
        let kg = KeyGenerator::new(ctx, &mut rng);
        let enc = Encryptor::new(ctx, kg.public_key(&mut rng));
        let dec = Decryptor::new(ctx, kg.secret_key().clone());
        Session {
            encoder: BatchEncoder::new(ctx),
            enc,
            dec,
            ev: Evaluator::new(ctx),
            kg,
            rng,
        }
    }

    fn random_slots(s: &mut Session<'_>, t: u64) -> Vec<u64> {
        (0..s.encoder.slot_count())
            .map(|_| s.rng.gen_range(0..t))
            .collect()
    }

    #[test]
    fn add_sub_negate_slotwise() {
        let ctx = params::BgvContext::new(params::test_small()).unwrap();
        let mut s = session(&ctx);
        let t = ctx.params().plain_modulus;
        let va = random_slots(&mut s, t);
        let vb = random_slots(&mut s, t);
        let ca = s.enc.encrypt(&s.encoder.encode(&va), &mut s.rng);
        let cb = s.enc.encrypt(&s.encoder.encode(&vb), &mut s.rng);

        let sum = s.encoder.decode(&s.dec.decrypt(&s.ev.add(&ca, &cb)));
        let diff = s.encoder.decode(&s.dec.decrypt(&s.ev.sub(&ca, &cb)));
        let neg = s.encoder.decode(&s.dec.decrypt(&s.ev.negate(&ca)));
        for i in 0..va.len() {
            assert_eq!(sum[i], (va[i] + vb[i]) % t);
            assert_eq!(diff[i], (va[i] + t - vb[i]) % t);
            assert_eq!(neg[i], (t - va[i]) % t);
        }
    }

    #[test]
    fn plain_ops_slotwise() {
        let ctx = params::BgvContext::new(params::test_small()).unwrap();
        let mut s = session(&ctx);
        let t = ctx.params().plain_modulus;
        let va = random_slots(&mut s, t);
        let vb = random_slots(&mut s, t);
        let ca = s.enc.encrypt(&s.encoder.encode(&va), &mut s.rng);
        let pb = s.encoder.encode(&vb);

        let sum = s.encoder.decode(&s.dec.decrypt(&s.ev.add_plain(&ca, &pb)));
        let diff = s.encoder.decode(&s.dec.decrypt(&s.ev.sub_plain(&ca, &pb)));
        let prod = s.encoder.decode(&s.dec.decrypt(&s.ev.mul_plain(&ca, &pb)));
        for i in 0..va.len() {
            assert_eq!(sum[i], (va[i] + vb[i]) % t);
            assert_eq!(diff[i], (va[i] + t - vb[i]) % t);
            assert_eq!(
                prod[i],
                ((va[i] as u128 * vb[i] as u128) % t as u128) as u64
            );
        }
    }

    #[test]
    fn multiply_relin_slotwise() {
        let ctx = params::BgvContext::new(params::test_small()).unwrap();
        let mut s = session(&ctx);
        let rk = s.kg.relin_key(&mut s.rng);
        let t = ctx.params().plain_modulus;
        let va = random_slots(&mut s, t);
        let vb = random_slots(&mut s, t);
        let ca = s.enc.encrypt(&s.encoder.encode(&va), &mut s.rng);
        let cb = s.enc.encrypt(&s.encoder.encode(&vb), &mut s.rng);

        let raw = s.ev.multiply(&ca, &cb);
        assert_eq!(raw.size(), 3);
        let prod = s.ev.relinearize(&raw, &rk);
        assert_eq!(prod.size(), 2);
        assert!(s.dec.invariant_noise_budget(&prod) > 0);
        let out = s.encoder.decode(&s.dec.decrypt(&prod));
        for i in 0..va.len() {
            assert_eq!(out[i], ((va[i] as u128 * vb[i] as u128) % t as u128) as u64);
        }
        // A size-3 ciphertext also decrypts directly (Σ c_j s^j).
        let out3 = s.encoder.decode(&s.dec.decrypt(&raw));
        assert_eq!(out3, out);
    }

    #[test]
    fn rotations_match_slot_semantics() {
        let ctx = params::BgvContext::new(params::test_small()).unwrap();
        let mut s = session(&ctx);
        let gk = s.kg.galois_keys_for_rotations(&[1, -2], true, &mut s.rng);
        let t = ctx.params().plain_modulus;
        let half = s.encoder.row_size();
        let v = random_slots(&mut s, t);
        let ct = s.enc.encrypt(&s.encoder.encode(&v), &mut s.rng);

        let left = s
            .encoder
            .decode(&s.dec.decrypt(&s.ev.rotate_rows(&ct, 1, &gk)));
        let right = s
            .encoder
            .decode(&s.dec.decrypt(&s.ev.rotate_rows(&ct, -2, &gk)));
        let swapped = s
            .encoder
            .decode(&s.dec.decrypt(&s.ev.rotate_columns(&ct, &gk)));
        for i in 0..half {
            assert_eq!(left[i], v[(i + 1) % half]);
            assert_eq!(left[half + i], v[half + (i + 1) % half]);
            assert_eq!(right[i], v[(i + half - 2) % half]);
            assert_eq!(right[half + i], v[half + (i + half - 2) % half]);
            assert_eq!(swapped[i], v[half + i]);
            assert_eq!(swapped[half + i], v[i]);
        }
    }

    #[test]
    fn mod_switch_preserves_plaintext_and_divides_noise() {
        let ctx = params::BgvContext::new(params::test_small()).unwrap();
        let next = ctx.reduced().unwrap();
        let mut s = session(&ctx);
        let rk = s.kg.relin_key(&mut s.rng);
        let t = ctx.params().plain_modulus;
        let va = random_slots(&mut s, t);
        let vb = random_slots(&mut s, t);
        let ca = s.enc.encrypt(&s.encoder.encode(&va), &mut s.rng);
        let cb = s.enc.encrypt(&s.encoder.encode(&vb), &mut s.rng);
        let prod = s.ev.multiply_relin(&ca, &cb, &rk);

        let switched = s.ev.mod_switch_to_next(&prod, &next);
        assert_eq!(switched.level_primes(), ctx.params().moduli.len() - 1);

        let dec2 = Decryptor::new(&next, s.kg.secret_key().mod_switched(&next));
        let enc2 = BatchEncoder::new(&next);
        let out = enc2.decode(&dec2.decrypt(&switched));
        for i in 0..va.len() {
            assert_eq!(
                out[i],
                ((va[i] as u128 * vb[i] as u128) % t as u128) as u64,
                "slot {i}"
            );
        }
        assert!(dec2.invariant_noise_budget(&switched) > 0);
    }

    /// The point of modulus switching: BGV noise bits double per multiply,
    /// and switching shrinks the bit count the doubling acts on. At this
    /// toy chain the unswitched depth-2 path actually *overflows* (the
    /// first relinearization leaves ~2^70 of absolute noise; squaring that
    /// busts Q ≈ 2^135) while the switched path still decrypts with budget
    /// to spare.
    #[test]
    fn switching_between_multiplies_beats_staying_at_full_modulus() {
        let ctx = params::BgvContext::new(params::test_small()).unwrap();
        let next = ctx.reduced().unwrap();
        let mut s = session(&ctx);
        let rk = s.kg.relin_key(&mut s.rng);
        let t = ctx.params().plain_modulus;
        let v = random_slots(&mut s, t);
        let ct = s.enc.encrypt(&s.encoder.encode(&v), &mut s.rng);

        // Depth 2 without switching.
        let sq = s.ev.multiply_relin(&ct, &ct, &rk);
        let quad_stay = s.ev.multiply_relin(&sq, &sq, &rk);
        let budget_stay = s.dec.invariant_noise_budget(&quad_stay);

        // Depth 2 with a switch after the first level.
        let sq_down = s.ev.mod_switch_to_next(&sq, &next);
        let rk_down = rk.mod_switched(&next);
        let ev2 = Evaluator::new(&next);
        let quad_switch = ev2.multiply_relin(&sq_down, &sq_down, &rk_down);
        let dec2 = Decryptor::new(&next, s.kg.secret_key().mod_switched(&next));
        let budget_switch = dec2.invariant_noise_budget(&quad_switch);

        let expect: Vec<u64> = v
            .iter()
            .map(|&x| {
                let sq = (x as u128 * x as u128) % t as u128;
                ((sq * sq) % t as u128) as u64
            })
            .collect();
        let enc2 = BatchEncoder::new(&next);
        assert_eq!(enc2.decode(&dec2.decrypt(&quad_switch)), expect);
        assert!(
            budget_switch > 0,
            "switched path must still decrypt ({budget_switch})"
        );
        assert!(
            budget_stay <= 0,
            "unswitched depth-2 should overflow this toy chain ({budget_stay})"
        );
    }

    #[test]
    fn mod_switch_rejects_unfriendly_chains() {
        // BFV-style primes (≡ 1 mod 2N only) fail the q_k ≡ 1 mod t gate.
        let params = crate::params::BgvParams::test_small();
        let t = params.plain_modulus;
        assert_ne!(params.moduli.last().unwrap() % t, 1);
        let ctx = params::BgvContext::new(params).unwrap();
        let next = ctx.reduced().unwrap();
        let mut s = session(&ctx);
        let v = vec![1u64, 2, 3];
        let ct = s.enc.encrypt(&s.encoder.encode(&v), &mut s.rng);
        let ev = Evaluator::new(&ctx);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ev.mod_switch_to_next(&ct, &next)
        }));
        assert!(result.is_err(), "unfriendly chain must be rejected");
    }

    #[test]
    fn steady_state_ops_do_not_allocate() {
        let ctx = params::BgvContext::new(params::test_small()).unwrap();
        let mut s = session(&ctx);
        let rk = s.kg.relin_key(&mut s.rng);
        let t = ctx.params().plain_modulus;
        let va = random_slots(&mut s, t);
        let ca = s.enc.encrypt(&s.encoder.encode(&va), &mut s.rng);
        let cb = s.enc.encrypt(&s.encoder.encode(&va), &mut s.rng);
        // Warm up the pool shapes.
        for _ in 0..2 {
            let prod = s.ev.multiply_relin(&ca, &cb, &rk);
            s.ev.recycle(prod);
        }
        let fresh_before = s.ev.pool_stats().fresh;
        for _ in 0..3 {
            let prod = s.ev.multiply_relin(&ca, &cb, &rk);
            s.ev.recycle(prod);
        }
        assert_eq!(
            s.ev.pool_stats().fresh,
            fresh_before,
            "steady-state multiply_relin allocated"
        );
    }
}
