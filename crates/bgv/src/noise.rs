//! A static, worst-case model of BGV noise growth.
//!
//! The model predicts, per operation, an upper bound on the **relative
//! phase magnitude** of a ciphertext — `ε = ‖w mod Q‖∞ / Q` where
//! `w = m + t·E` is the decryption phase `Σ c_j·s^j` with the centered
//! remainder taken. Decryption is correct while `ε < 1/2`; the measured
//! probe [`crate::encrypt::Decryptor::invariant_noise_budget`] reports
//! `⌊log2(1/(2ε))⌋` in bits — the same contract as the BFV model's, so the
//! two are directly comparable and the scheme-generic synthesizer can walk
//! either. Everything here works in the log domain: noise values are
//! `log2 ε` (more negative = quieter), and [`NoiseModel::budget`] converts
//! back to bits of budget.
//!
//! # Soundness contract
//!
//! Every transfer rule is a *worst-case* bound: for any program and any
//! inputs, the measured remaining budget after evaluation is at least the
//! predicted remaining budget. This is what lets the parameter selector
//! ([`crate::params::ParamSelector`]) certify a parameter set without
//! running the program.
//!
//! # Derivation sketch
//!
//! With `B` the error-sampler bound, `N` the ring degree, `t` the plaintext
//! modulus, and `k` ciphertext primes of at most `q_max` bits:
//!
//! * **fresh**: the phase is `m + t·(e₁ + e₂·s − e·u)`, so
//!   `‖w‖ ≤ t·((2N+1)·B + 1)`.
//! * **add/sub**: phases add — `ε ≤ ε₁ + ε₂`.
//! * **add/sub-plain**: adds `‖m‖ < t` coefficient-wise, `ε += t/Q`.
//! * **mul-plain**: a negacyclic convolution with a plaintext of entries
//!   `< t`: `ε ≤ N·t·ε`.
//! * **mul**: the product phase is *literally* `w₁·w₂` (no rescale), so
//!   `‖w'‖ ≤ N·‖w₁‖·‖w₂‖` and `ε' ≤ N·Q·ε₁·ε₂`. In bits:
//!   `ν' = ν₁ + ν₂ + log N + log Q` — noise **bits double** per multiply
//!   where BFV's grow additively. This single rule is why the BGV
//!   parameter selector escalates chains faster than BFV's, and why
//!   [`crate::evaluator::Evaluator::mod_switch_to_next`] exists.
//! * **key switch** (relinearization, rotation): identical machinery to
//!   BFV's with `t`-scaled key errors, adding `t·k·N·q_max·B / Q`.
//!
//! # Calibration
//!
//! The only empirical constant is the error bound [`NoiseModel::ERR_BOUND`]
//! (exactly the sampler's support); the budget keeps one guard bit for the
//! probe's integer rounding, as in the BFV model. The unit tests below pin
//! the model against the real evaluator for the fresh / multiply+relin /
//! rotate probes.

use crate::params::BgvParams;
use quill::analysis::NoiseSemantics;
use quill::program::Program;

pub use quill::analysis::NoiseReport;

/// Adds two magnitudes in the log2 domain: `log2(2^a + 2^b)`.
fn lse(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (1.0 + (lo - hi).exp2()).log2()
}

/// Worst-case BGV noise model for one parameter set.
///
/// Values produced and consumed by the transfer rules are `log2` of the
/// relative phase magnitude (see the module docs). Implements
/// [`quill::analysis::NoiseSemantics`], so
/// [`quill::analysis::noise_levels`] walks whole programs with it.
///
/// # Examples
///
/// ```
/// use bgv::noise::NoiseModel;
/// use bgv::params::BgvParams;
///
/// let model = NoiseModel::for_params(&BgvParams::test_small());
/// assert!(model.fresh_budget() > 60.0);
/// // One multiply roughly doubles the consumed bits rather than adding a
/// // fixed chunk — the defining BGV noise behavior.
/// use quill::analysis::NoiseSemantics;
/// let after = model.mul_ct_ct(model.fresh(), model.fresh());
/// assert!(model.budget(after) < model.fresh_budget() / 2.0 + 20.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    /// `log2 Q` (exact, summed over the chain).
    q_bits: f64,
    /// `log2 t`.
    t_bits: f64,
    /// `log2 N`.
    log_n: f64,
    /// `log2 k` (number of ciphertext primes).
    log_k: f64,
    /// `log2` of the largest chain prime.
    q_max_bits: f64,
}

impl NoiseModel {
    /// Worst-case magnitude of one coefficient of the error sampler
    /// (centered binomial with parameter η = 10 — shared with BFV).
    pub const ERR_BOUND: f64 = 10.0;

    /// Builds the model for a parameter set.
    pub fn for_params(params: &BgvParams) -> Self {
        let q_bits = params.moduli.iter().map(|&p| (p as f64).log2()).sum();
        NoiseModel {
            q_bits,
            t_bits: (params.plain_modulus as f64).log2(),
            log_n: (params.poly_degree as f64).log2(),
            log_k: (params.moduli.len() as f64).log2(),
            q_max_bits: (*params.moduli.iter().max().expect("nonempty chain") as f64).log2(),
        }
    }

    /// `log2` of the error-sampler bound.
    fn err_bits(&self) -> f64 {
        Self::ERR_BOUND.log2()
    }

    /// The additive relative noise of one RNS-decomposition key switch
    /// with `t`-scaled key errors: `t·k·N·q_max·B / Q`.
    fn key_switch_bits(&self) -> f64 {
        self.t_bits + self.log_k + self.log_n + self.q_max_bits + self.err_bits() - self.q_bits
    }

    /// Remaining noise budget, in bits, for a (log-domain) noise level.
    /// One guard bit on top of the exact `-log2(ε) - 1`, for the probe's
    /// integer rounding — the same convention as the BFV model.
    pub fn budget(&self, noise_bits: f64) -> f64 {
        -noise_bits - 2.0
    }

    /// Predicted budget of a fresh encryption.
    pub fn fresh_budget(&self) -> f64 {
        self.budget(self.fresh())
    }

    /// Analyzes a lowered program: walks it with the model and reports the
    /// worst-case output noise, the predicted remaining budget, and the
    /// consumed budget relative to a fresh encryption.
    pub fn analyze(&self, prog: &Program) -> NoiseReport {
        let output_noise_bits = quill::analysis::output_noise(prog, self);
        let predicted_budget_bits = self.budget(output_noise_bits);
        NoiseReport {
            output_noise_bits,
            predicted_budget_bits,
            fresh_budget_bits: self.fresh_budget(),
            consumed_bits: self.fresh_budget() - predicted_budget_bits,
        }
    }
}

impl NoiseSemantics for NoiseModel {
    fn fresh(&self) -> f64 {
        // t·((2N+1)·B + 1) / Q
        let inner = (2.0f64.powf(self.log_n + 1.0) + 1.0) * Self::ERR_BOUND + 1.0;
        self.t_bits + inner.log2() - self.q_bits
    }

    fn add_ct_ct(&self, a: f64, b: f64) -> f64 {
        lse(a, b)
    }

    fn mul_ct_ct(&self, a: f64, b: f64) -> f64 {
        // ‖w₁·w₂‖ ≤ N·‖w₁‖·‖w₂‖, i.e. ε' = N·Q·ε₁·ε₂: bits double.
        a + b + self.log_n + self.q_bits
    }

    fn add_ct_pt(&self, a: f64) -> f64 {
        // + m with ‖m‖ < t (coefficient-wise, no convolution, no Δ).
        lse(a, self.t_bits - self.q_bits)
    }

    fn mul_ct_pt(&self, a: f64) -> f64 {
        // Negacyclic convolution with plaintext coefficients < t.
        a + self.t_bits + self.log_n
    }

    fn rot_ct(&self, a: f64) -> f64 {
        // The automorphism permutes coefficients (noise-neutral); the key
        // switch afterwards is additive.
        lse(a, self.key_switch_bits())
    }

    fn relin_ct(&self, a: f64) -> f64 {
        lse(a, self.key_switch_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::BatchEncoder;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::evaluator::Evaluator;
    use crate::keys::KeyGenerator;
    use crate::params::{self, BgvContext};
    use rand::{Rng, SeedableRng};

    struct Session<'a> {
        encoder: BatchEncoder<'a>,
        enc: Encryptor<'a>,
        dec: Decryptor<'a>,
        ev: Evaluator<'a>,
        kg: KeyGenerator<'a>,
        rng: rand::rngs::StdRng,
    }

    fn session(ctx: &BgvContext) -> Session<'_> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xB402);
        let kg = KeyGenerator::new(ctx, &mut rng);
        let enc = Encryptor::new(ctx, kg.public_key(&mut rng));
        let dec = Decryptor::new(ctx, kg.secret_key().clone());
        Session {
            encoder: BatchEncoder::new(ctx),
            enc,
            dec,
            ev: Evaluator::new(ctx),
            kg,
            rng,
        }
    }

    fn random_ct(s: &mut Session<'_>, t: u64) -> crate::encrypt::Ciphertext {
        let v: Vec<u64> = (0..s.encoder.slot_count())
            .map(|_| s.rng.gen_range(0..t))
            .collect();
        s.enc.encrypt(&s.encoder.encode(&v), &mut s.rng)
    }

    /// Calibration: the model's per-op predictions are sound (never above
    /// the measured budget) yet within a sane distance of it.
    #[test]
    fn model_is_sound_and_tight_against_the_evaluator() {
        let params = params::test_small();
        let ctx = BgvContext::new(params.clone()).unwrap();
        let model = NoiseModel::for_params(&params);
        let t = params.plain_modulus;
        let mut s = session(&ctx);
        let rk = s.kg.relin_key(&mut s.rng);
        let gk = s.kg.galois_keys_for_rotations(&[1], false, &mut s.rng);

        let a = random_ct(&mut s, t);
        let b = random_ct(&mut s, t);

        let fresh_measured = s.dec.invariant_noise_budget(&a) as f64;
        let fresh_predicted = model.fresh_budget();
        assert!(
            fresh_predicted <= fresh_measured,
            "fresh: predicted {fresh_predicted:.1} > measured {fresh_measured}"
        );
        assert!(
            fresh_measured - fresh_predicted < 20.0,
            "fresh: model too loose ({fresh_predicted:.1} vs {fresh_measured})"
        );

        let prod = s.ev.multiply_relin(&a, &b, &rk);
        let mul_measured = s.dec.invariant_noise_budget(&prod) as f64;
        let mul_predicted =
            model.budget(model.relin_ct(model.mul_ct_ct(model.fresh(), model.fresh())));
        assert!(
            mul_predicted <= mul_measured,
            "mul: predicted {mul_predicted:.1} > measured {mul_measured}"
        );
        assert!(
            mul_measured - mul_predicted < 30.0,
            "mul: model too loose ({mul_predicted:.1} vs {mul_measured})"
        );

        let rotated = s.ev.rotate_rows(&a, 1, &gk);
        let rot_measured = s.dec.invariant_noise_budget(&rotated) as f64;
        let rot_predicted = model.budget(model.rot_ct(model.fresh()));
        assert!(
            rot_predicted <= rot_measured,
            "rot: predicted {rot_predicted:.1} > measured {rot_measured}"
        );
        assert!(
            rot_measured - rot_predicted < 20.0,
            "rot: model too loose ({rot_predicted:.1} vs {rot_measured})"
        );
    }

    /// Depth-2 squaring chains stay sound (the doubling rule compounds).
    #[test]
    fn model_is_sound_for_a_depth_two_chain() {
        let params = params::test_small();
        let ctx = BgvContext::new(params.clone()).unwrap();
        let model = NoiseModel::for_params(&params);
        let mut s = session(&ctx);
        let rk = s.kg.relin_key(&mut s.rng);
        let a = random_ct(&mut s, params.plain_modulus);
        let sq = s.ev.multiply_relin(&a, &a, &rk);
        let quad = s.ev.multiply_relin(&sq, &sq, &rk);
        let measured = s.dec.invariant_noise_budget(&quad) as f64;
        let n1 = model.relin_ct(model.mul_ct_ct(model.fresh(), model.fresh()));
        let n2 = model.relin_ct(model.mul_ct_ct(n1, n1));
        assert!(
            model.budget(n2) <= measured,
            "depth 2: predicted {:.1} > measured {measured}",
            model.budget(n2)
        );
    }

    /// The BGV multiply rule consumes more than BFV's at equal parameters
    /// once the inputs are already noisy — the quantitative reason the BGV
    /// selector escalates chains faster.
    #[test]
    fn multiply_noise_doubles_rather_than_adds() {
        let model = NoiseModel::for_params(&params::test_small());
        let fresh = model.fresh();
        let one = model.mul_ct_ct(fresh, fresh);
        let two = model.mul_ct_ct(one, one);
        let first_cost = one - fresh;
        let second_cost = two - one;
        assert!(
            second_cost > first_cost * 1.5,
            "noise growth should compound: {first_cost:.1} then {second_cost:.1}"
        );
    }

    #[test]
    fn larger_modulus_chains_predict_more_budget() {
        let small = NoiseModel::for_params(&params::test_small());
        let large = NoiseModel::for_params(
            &params::generate_mod_switch_friendly(4096, 65537, 46, 4).unwrap(),
        );
        assert!(large.fresh_budget() > small.fresh_budget());
    }

    #[test]
    fn analyze_reports_consumed_budget() {
        use quill::program::{Instr, Program, ValRef};
        let model = NoiseModel::for_params(&params::test_small());
        let prog = Program::new(
            "square",
            1,
            0,
            vec![
                Instr::MulCtCt(ValRef::Input(0), ValRef::Input(0)),
                Instr::Relin(ValRef::Instr(0)),
            ],
            ValRef::Instr(1),
        );
        let report = model.analyze(&prog);
        assert!(report.consumed_bits > 20.0);
        assert!(
            (report.fresh_budget_bits - report.predicted_budget_bits - report.consumed_bits).abs()
                < 1e-9
        );
    }
}
