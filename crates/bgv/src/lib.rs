//! # bgv — a from-scratch BGV homomorphic encryption substrate
//!
//! The second scheme instantiation behind Porcupine's scheme-generic
//! backend layer: an exact implementation of Brakerski–Gentry–Vaikuntanathan
//! (BGV) over the same shared ring arithmetic ([`rlwe_ring`]) as the `bfv`
//! crate, exposing the same instruction surface — so the synthesizer,
//! interpreter, and differential harness can swap schemes without touching
//! kernels.
//!
//! # BFV vs. BGV in one paragraph
//!
//! Both schemes batch `N` integers mod `t` into the slots of a 2 × (N/2)
//! matrix and evaluate the same SIMD ops. They differ in *where the
//! message sits in the decryption phase*. BFV scales it to the top:
//! `w = Δ·m + noise` with `Δ = ⌊Q/t⌋`, so multiplication needs an exact
//! `t/Q` rescale through an auxiliary RNS base. BGV keeps it at the
//! bottom: `w = m + t·E`, so multiplication is three pointwise products
//! and *no rescale* — but noise **bits double** per multiply instead of
//! growing additively, which BGV counters by **modulus switching** down a
//! prime chain ([`evaluator::Evaluator::mod_switch_to_next`]) after each
//! multiplicative level. Key material is the shared RNS-decomposition
//! construction with every key error scaled by `t` so it stays out of the
//! message digit ([`keys`]).
//!
//! Consequences for the compiler stack:
//!
//! * **Encoding is shared bit-for-bit** ([`encoding::BatchEncoder`] uses
//!   the same slot map and plaintext NTT as BFV's), which is what makes
//!   cross-scheme differential testing slot-exact.
//! * **Parameters** want *switch-friendly* chains — primes
//!   `≡ 1 (mod 2N·t)` so dropping one is plaintext-invariant
//!   ([`params::generate_mod_switch_friendly`]); BFV-style chains still
//!   work for everything except modulus switching.
//! * **Noise** follows a different static model ([`noise::NoiseModel`],
//!   multiplicative rather than additive growth), so the automatic
//!   parameter selector ([`params::ParamSelector`]) escalates faster on
//!   deep programs.
//! * **Cost** differs per op (no BEHZ machinery in multiply, so ct×ct is
//!   far cheaper; everything else comparable), which the scheme-aware
//!   latency model upstream prices in.
//!
//! **Security caveat**: research-grade, non-hardened samplers — same
//! caveat as the `bfv` crate; do not use to protect real data.
//!
//! ## Quick example
//!
//! ```
//! use bgv::params::{self, BgvContext};
//! use bgv::encoding::BatchEncoder;
//! use bgv::keys::KeyGenerator;
//! use bgv::encrypt::{Encryptor, Decryptor};
//! use bgv::evaluator::Evaluator;
//! use rand::SeedableRng;
//!
//! let ctx = BgvContext::new(params::test_small())?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let keygen = KeyGenerator::new(&ctx, &mut rng);
//! let encryptor = Encryptor::new(&ctx, keygen.public_key(&mut rng));
//! let decryptor = Decryptor::new(&ctx, keygen.secret_key().clone());
//! let encoder = BatchEncoder::new(&ctx);
//! let evaluator = Evaluator::new(&ctx);
//!
//! let x = encryptor.encrypt(&encoder.encode(&[1, 2, 3, 4]), &mut rng);
//! let w = encoder.encode(&[5, 6, 7, 8]);
//! let prod = evaluator.mul_plain(&x, &w);
//! let gk = keygen.galois_keys_for_rotations(&[1, 2], false, &mut rng);
//! let s1 = evaluator.add(&prod, &evaluator.rotate_rows(&prod, 2, &gk));
//! let s2 = evaluator.add(&s1, &evaluator.rotate_rows(&s1, 1, &gk));
//! let out = encoder.decode(&decryptor.decrypt(&s2));
//! assert_eq!(out[0], 5 + 12 + 21 + 32);
//! # Ok::<(), bgv::params::ParamError>(())
//! ```

pub mod encoding;
pub mod encrypt;
pub mod evaluator;
pub mod keys;
pub mod noise;
pub mod params;

// Shared ring-arithmetic layer, re-exported so `bgv::poly::...`-style
// paths mirror the `bfv` crate's.
pub use rlwe_ring::{bigint, keyswitch, ntt, poly, pool, rns, zq};

pub use encoding::{BatchEncoder, Plaintext};
pub use encrypt::{Ciphertext, Decryptor, Encryptor};
pub use evaluator::Evaluator;
pub use keys::{GaloisKeys, KeyGenerator, PublicKey, RelinKey, SecretKey};
pub use keyswitch::HoistedDecomposition;
pub use noise::{NoiseModel, NoiseReport};
pub use params::{
    BgvContext, BgvParams, ParamError, ParamPolicy, ParamSelector, SelectError, Selection,
};
