//! SIMD batch encoding for BGV: packs `N` integers mod `t` into one
//! plaintext polynomial so HE ops act slot-wise.
//!
//! The slot geometry (and the Galois elements acting on it) is
//! scheme-agnostic and lives in [`rlwe_ring::batch`]; it is byte-identical
//! to the BFV encoder's, which is what keeps a kernel's slot semantics
//! stable across schemes. The scheme-specific half is the ciphertext-ring
//! lift: BGV carries the plaintext in the **least-significant digit**
//! (`m + t·noise`), so [`EvalPlaintext`] caches only the raw lift `m` —
//! there is no `Δ` scaling anywhere in this backend.

use crate::params::BgvContext;
use crate::poly::RnsPoly;

pub use rlwe_ring::batch::{galois_element_for_column_swap, galois_element_for_rotation};

/// A plaintext polynomial (coefficients mod `t`, degree `< N`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plaintext {
    pub(crate) coeffs: Vec<u64>,
}

impl Plaintext {
    /// The raw coefficients (mod `t`).
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }
}

/// A plaintext pre-lifted into the ciphertext ring and NTT-transformed —
/// the encode-once half of the evaluator hot path. BGV needs only the raw
/// lift `m`: `add_plain` adds it to `c0` directly and `mul_plain`
/// multiplies by it pointwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalPlaintext {
    /// The plaintext lifted to `R_Q`, evaluation form.
    pub(crate) m: RnsPoly,
}

impl EvalPlaintext {
    /// Lifts and transforms `pt` once for the given context.
    pub fn new(ctx: &BgvContext, pt: &Plaintext) -> Self {
        let ring = ctx.ring();
        let m = ring.to_eval(&ring.from_u64_coeffs(&pt.coeffs));
        EvalPlaintext { m }
    }
}

/// Encoder/decoder between slot vectors and plaintext polynomials.
///
/// # Examples
///
/// ```
/// use bgv::params::{self, BgvContext};
/// use bgv::encoding::BatchEncoder;
///
/// let ctx = BgvContext::new(params::test_small())?;
/// let encoder = BatchEncoder::new(&ctx);
/// let mut v = vec![0u64; encoder.slot_count()];
/// v[0] = 7;
/// v[1] = 11;
/// let pt = encoder.encode(&v);
/// assert_eq!(encoder.decode(&pt), v);
/// # Ok::<(), bgv::params::ParamError>(())
/// ```
#[derive(Debug)]
pub struct BatchEncoder<'a> {
    ctx: &'a BgvContext,
    /// `slot_to_eval[slot] = j` where the slot's value is the evaluation at
    /// `ψ^(2j+1)` (the natural-order output index of the plaintext NTT).
    slot_to_eval: Vec<usize>,
}

impl<'a> BatchEncoder<'a> {
    /// Builds the slot map for a context.
    pub fn new(ctx: &'a BgvContext) -> Self {
        let slot_to_eval = rlwe_ring::batch::slot_to_eval_map(ctx.params().poly_degree);
        BatchEncoder { ctx, slot_to_eval }
    }

    /// Total number of slots (`N`).
    pub fn slot_count(&self) -> usize {
        self.ctx.params().poly_degree
    }

    /// Slots per row (`N/2`).
    pub fn row_size(&self) -> usize {
        self.ctx.params().poly_degree / 2
    }

    /// Encodes a slot vector (values mod `t`; shorter vectors are
    /// zero-padded).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() > N`.
    pub fn encode(&self, values: &[u64]) -> Plaintext {
        let n = self.slot_count();
        assert!(values.len() <= n, "too many values for {n} slots");
        let t = self.ctx.params().plain_modulus;
        let mut evals = vec![0u64; n];
        for (slot, &v) in values.iter().enumerate() {
            evals[self.slot_to_eval[slot]] = v % t;
        }
        self.ctx.plain_ntt().inverse(&mut evals);
        Plaintext { coeffs: evals }
    }

    /// Encodes a slot vector straight into evaluation form — the
    /// encode-once entry point for plaintexts reused across many ops.
    pub fn encode_eval(&self, values: &[u64]) -> EvalPlaintext {
        EvalPlaintext::new(self.ctx, &self.encode(values))
    }

    /// Encodes signed values (centered mod `t`).
    pub fn encode_signed(&self, values: &[i64]) -> Plaintext {
        let t = self.ctx.params().plain_modulus as i64;
        let unsigned: Vec<u64> = values.iter().map(|&v| (v.rem_euclid(t)) as u64).collect();
        self.encode(&unsigned)
    }

    /// Decodes a plaintext back to its `N` slot values.
    pub fn decode(&self, pt: &Plaintext) -> Vec<u64> {
        let mut evals = pt.coeffs.clone();
        self.ctx.plain_ntt().forward(&mut evals);
        let mut out = vec![0u64; self.slot_count()];
        for (slot, &j) in self.slot_to_eval.iter().enumerate() {
            out[slot] = evals[j];
        }
        out
    }

    /// Decodes to centered signed values in `(-t/2, t/2]`.
    pub fn decode_signed(&self, pt: &Plaintext) -> Vec<i64> {
        let t = self.ctx.params().plain_modulus;
        self.decode(pt)
            .into_iter()
            .map(|v| {
                if v > t / 2 {
                    v as i64 - t as i64
                } else {
                    v as i64
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params;

    fn small_ctx() -> BgvContext {
        BgvContext::new(params::test_small()).unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ctx = small_ctx();
        let enc = BatchEncoder::new(&ctx);
        let t = ctx.params().plain_modulus;
        let v: Vec<u64> = (0..enc.slot_count() as u64)
            .map(|i| (i * 7 + 3) % t)
            .collect();
        assert_eq!(enc.decode(&enc.encode(&v)), v);
    }

    #[test]
    fn signed_roundtrip() {
        let ctx = small_ctx();
        let enc = BatchEncoder::new(&ctx);
        let mut v = vec![0i64; enc.slot_count()];
        v[0] = -5;
        v[1] = 90;
        v[2] = -96;
        let pt = enc.encode_signed(&v);
        assert_eq!(enc.decode_signed(&pt)[..3], [-5, 90, -96]);
    }

    /// The BGV and BFV encoders must agree coefficient-for-coefficient:
    /// the slot map and the plaintext NTT are shared, so the same slot
    /// vector encodes to the same polynomial under both schemes. This is
    /// the foundation of the cross-scheme differential tests.
    #[test]
    fn encoding_matches_bfv_bit_for_bit() {
        let bgv_ctx = small_ctx();
        let bfv_ctx = bfv::params::BfvContext::new(bfv::params::BfvParams::test_small()).unwrap();
        let bgv_enc = BatchEncoder::new(&bgv_ctx);
        let bfv_enc = bfv::encoding::BatchEncoder::new(&bfv_ctx);
        let t = bgv_ctx.params().plain_modulus;
        let v: Vec<u64> = (0..bgv_enc.slot_count() as u64)
            .map(|i| (i * 31 + 17) % t)
            .collect();
        assert_eq!(bgv_enc.encode(&v).coeffs(), bfv_enc.encode(&v).coeffs());
    }
}
