//! Property-based tests for the BGV backend, mirroring the scheme-level
//! half of `crates/bfv/tests/properties.rs`: representation transparency
//! of the double-CRT form, homomorphic slot semantics of random circuits,
//! and (BGV-specific) plaintext invariance of modulus switching under
//! random ciphertexts. The number-theoretic proptests (bigints, NTT, CRT)
//! exercise the shared `rlwe-ring` crate and live with the BFV suite.

use bgv::encoding::BatchEncoder;
use bgv::encrypt::{Decryptor, Encryptor};
use bgv::evaluator::Evaluator;
use bgv::keys::KeyGenerator;
use bgv::params::{self, BgvContext};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

struct Session<'a> {
    keygen: KeyGenerator<'a>,
    encryptor: Encryptor<'a>,
    decryptor: Decryptor<'a>,
    encoder: BatchEncoder<'a>,
    evaluator: Evaluator<'a>,
}

fn session<'a>(ctx: &'a BgvContext, rng: &mut rand::rngs::StdRng) -> Session<'a> {
    let keygen = KeyGenerator::new(ctx, rng);
    let encryptor = Encryptor::new(ctx, keygen.public_key(rng));
    let decryptor = Decryptor::new(ctx, keygen.secret_key().clone());
    Session {
        encryptor,
        decryptor,
        encoder: BatchEncoder::new(ctx),
        evaluator: Evaluator::new(ctx),
        keygen,
    }
}

// The double-CRT representation is semantically transparent: running the
// same random op sequence with ciphertexts bounced to coefficient form
// after every operation produces bit-identical decryptions to the
// evaluation-form-resident pipeline, and the noise budget never depends on
// the representation either.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn representation_is_transparent_to_every_op(seed in any::<u64>()) {
        let ctx = BgvContext::new(params::test_small()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = session(&ctx, &mut rng);
        let Session { keygen, encryptor, decryptor, encoder, evaluator: ev } = &s;
        let rk = keygen.relin_key(&mut rng);
        let gk = keygen.galois_keys_for_rotations(&[2], true, &mut rng);

        let t = ctx.params().plain_modulus;
        let va: Vec<u64> = (0..encoder.slot_count()).map(|_| rng.gen_range(0..t)).collect();
        let vb: Vec<u64> = (0..encoder.slot_count()).map(|_| rng.gen_range(0..t)).collect();
        let pt = encoder.encode(&vb);
        let other = encryptor.encrypt(&pt, &mut rng);
        // eval-resident pipeline vs coefficient-bounced pipeline
        let mut ct_eval = encryptor.encrypt(&encoder.encode(&va), &mut rng);
        let mut ct_coeff = ct_eval.to_coeff_form(&ctx);

        type Op<'s> = Box<dyn Fn(&bgv::Ciphertext) -> bgv::Ciphertext + 's>;
        let ops: Vec<(&str, Op)> = vec![
            ("add", Box::new(|c: &bgv::Ciphertext| ev.add(c, &other))),
            ("add_plain", Box::new(|c: &bgv::Ciphertext| ev.add_plain(c, &pt))),
            ("rotate", Box::new(|c: &bgv::Ciphertext| ev.rotate_rows(c, 2, &gk))),
            ("mul_plain", Box::new(|c: &bgv::Ciphertext| ev.mul_plain(c, &pt))),
            ("columns", Box::new(|c: &bgv::Ciphertext| ev.rotate_columns(c, &gk))),
            ("negate", Box::new(|c: &bgv::Ciphertext| ev.negate(c))),
            ("sub", Box::new(|c: &bgv::Ciphertext| ev.sub(c, &other))),
            ("mul_relin", Box::new(|c: &bgv::Ciphertext| ev.multiply_relin(c, &other, &rk))),
            ("sub_plain", Box::new(|c: &bgv::Ciphertext| ev.sub_plain(c, &pt))),
        ];
        for (name, op) in &ops {
            ct_eval = op(&ct_eval);
            ct_coeff = op(&ct_coeff).to_coeff_form(&ctx);
            let dec_eval = decryptor.decrypt(&ct_eval);
            let dec_coeff = decryptor.decrypt(&ct_coeff);
            prop_assert_eq!(
                dec_eval.coeffs(),
                dec_coeff.coeffs(),
                "decryptions diverged after {}", name
            );
            prop_assert_eq!(
                decryptor.invariant_noise_budget(&ct_eval),
                decryptor.invariant_noise_budget(&ct_coeff),
                "noise budget representation-dependent after {}", name
            );
            // converting back and forth is the identity on the ring element
            prop_assert_eq!(
                decryptor.invariant_noise_budget(&ct_eval),
                decryptor.invariant_noise_budget(&ct_eval.to_coeff_form(&ctx).to_eval_form(&ctx)),
                "form round-trip changed the ciphertext after {}", name
            );
        }
    }

    // Modulus switching is plaintext-invariant for arbitrary reachable
    // ciphertexts, not just the fixtures the unit tests pin: encrypt
    // random slots, optionally square, switch, decrypt under the
    // truncated secret.
    #[test]
    fn mod_switch_is_plaintext_invariant(seed in any::<u64>(), deep in any::<bool>()) {
        let ctx = BgvContext::new(params::test_small()).unwrap();
        let next = ctx.reduced().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = session(&ctx, &mut rng);
        let rk = s.keygen.relin_key(&mut rng);
        let t = ctx.params().plain_modulus;
        let v: Vec<u64> = (0..s.encoder.slot_count()).map(|_| rng.gen_range(0..t)).collect();
        let ct = s.encryptor.encrypt(&s.encoder.encode(&v), &mut rng);
        let (ct, expect) = if deep {
            (
                s.evaluator.multiply_relin(&ct, &ct, &rk),
                v.iter().map(|&x| ((x as u128 * x as u128) % t as u128) as u64).collect(),
            )
        } else {
            (ct, v)
        };
        let switched = s.evaluator.mod_switch_to_next(&ct, &next);
        let dec2 = Decryptor::new(&next, s.keygen.secret_key().mod_switched(&next));
        let enc2 = BatchEncoder::new(&next);
        prop_assert!(dec2.invariant_noise_budget(&switched) > 0);
        prop_assert_eq!(enc2.decode(&dec2.decrypt(&switched)), expect);
    }
}

/// Hoisted rotations (one shared digit decomposition, permuted per Galois
/// element) decrypt slot-for-slot identically to sequential rotations,
/// with the same noise budget up to ±1 bit — mirrors the BFV suite's pin;
/// BGV's `t·e` key-switch error lattice is untouched by hoisting.
#[test]
fn hoisted_rotation_matches_sequential() {
    let ctx = BgvContext::new(params::test_small()).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xB0157);
    let s = session(&ctx, &mut rng);
    let Session {
        keygen,
        encryptor,
        decryptor,
        encoder,
        evaluator: ev,
    } = &s;
    let gk = keygen.galois_keys_for_rotations(&[1, 2, 3], false, &mut rng);
    let t = ctx.params().plain_modulus;
    let va: Vec<u64> = (0..encoder.slot_count())
        .map(|_| rng.gen_range(0..t))
        .collect();
    let ct = encryptor.encrypt(&encoder.encode(&va), &mut rng);
    let hd = ev.hoist(&ct);
    for steps in [0i64, 1, 2, 3] {
        let hoisted = ev.rotate_rows_hoisted(&ct, &hd, steps, &gk);
        let sequential = ev.rotate_rows(&ct, steps, &gk);
        assert_eq!(
            encoder.decode(&decryptor.decrypt(&hoisted)),
            encoder.decode(&decryptor.decrypt(&sequential)),
            "steps={steps}"
        );
        let nb_h = decryptor.invariant_noise_budget(&hoisted);
        let nb_s = decryptor.invariant_noise_budget(&sequential);
        assert!(
            (nb_h - nb_s).abs() <= 1,
            "noise budget diverged at steps={steps}: hoisted {nb_h}, sequential {nb_s}"
        );
    }
    ev.recycle_hoisted(hd);
}

/// Homomorphic slot semantics: random circuits of adds/mults/rotations over
/// encrypted data agree with plaintext evaluation — the same circuit walk
/// as the BFV suite's, so a slot-semantics divergence between the two
/// backends shows up as exactly one of these failing.
#[test]
fn random_homomorphic_circuits_agree_with_plaintext() {
    let ctx = BgvContext::new(params::test_small()).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED);
    let s = session(&ctx, &mut rng);
    let Session {
        keygen,
        encryptor,
        decryptor,
        encoder,
        evaluator: ev,
    } = &s;
    let rk = keygen.relin_key(&mut rng);
    let gk = keygen.galois_keys_for_rotations(&[1, 3], false, &mut rng);

    let t = ctx.params().plain_modulus;
    let half = encoder.row_size();
    for trial in 0..4 {
        let va: Vec<u64> = (0..encoder.slot_count())
            .map(|_| rng.gen_range(0..t))
            .collect();
        let vb: Vec<u64> = (0..encoder.slot_count())
            .map(|_| rng.gen_range(0..t))
            .collect();
        let mut ct = encryptor.encrypt(&encoder.encode(&va), &mut rng);
        let cb = encryptor.encrypt(&encoder.encode(&vb), &mut rng);
        let mut model = va.clone();

        for step in 0..5 {
            match (trial + step) % 4 {
                0 => {
                    ct = ev.add(&ct, &cb);
                    for i in 0..model.len() {
                        model[i] = (model[i] + vb[i]) % t;
                    }
                }
                1 => {
                    ct = ev.rotate_rows(&ct, 1, &gk);
                    let mut rotated = vec![0u64; model.len()];
                    for i in 0..half {
                        rotated[i] = model[(i + 1) % half];
                        rotated[half + i] = model[half + (i + 1) % half];
                    }
                    model = rotated;
                }
                2 => {
                    ct = ev.multiply_relin(&ct, &cb, &rk);
                    for i in 0..model.len() {
                        model[i] = ((model[i] as u128 * vb[i] as u128) % t as u128) as u64;
                    }
                }
                _ => {
                    ct = ev.sub(&ct, &cb);
                    for i in 0..model.len() {
                        model[i] = (model[i] + t - vb[i]) % t;
                    }
                }
            }
        }
        assert!(decryptor.invariant_noise_budget(&ct) > 0, "trial {trial}");
        assert_eq!(
            encoder.decode(&decryptor.decrypt(&ct)),
            model,
            "trial {trial}"
        );
    }
}
