//! # porcupine-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§7):
//!
//! | artifact | binary / bench |
//! |---|---|
//! | Figure 4 (speedups) | `fig4_speedup` |
//! | Table 2 (instructions & depth) | `table2_instructions` |
//! | Table 3 (synthesis time) | `table3_synthesis` |
//! | Figures 5/6 (case studies) | `case_studies` |
//! | §7.4 sketch ablation | `ablation_sketch` |
//! | §6.1 rotation-restriction ablation | `ablation_rotations` |
//! | HE op latency profile | `profile_latency`, `benches/he_ops.rs` |
//! | middle-end `-O0` vs `-O2` | `fig_opt` |
//! | Criterion kernel micro-benches | `benches/kernels.rs`, `benches/synthesis.rs` |
//!
//! Results are recorded in the repository's `EXPERIMENTS.md`.

/// Extracts a `--jobs N` flag from a binary's argument list, falling back
/// to `PORCUPINE_JOBS` / the machine's available parallelism, and returns
/// the remaining arguments with the flag and its value removed — so
/// positional arguments keep their indices wherever the flag appears.
/// Every synthesis binary accepts this flag; results are identical at any
/// value (the search's determinism contract) — only wall-clock changes.
///
/// A `--jobs` without a positive-integer value terminates the process with
/// an error: a benchmark silently falling back to a different thread count
/// would corrupt the very measurement it was asked to make.
pub fn parse_jobs(mut args: Vec<String>) -> (std::num::NonZeroUsize, Vec<String>) {
    let Some(i) = args.iter().position(|a| a == "--jobs") else {
        return (porcupine::cegis::default_parallelism(), args);
    };
    let Some(jobs) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
        eprintln!(
            "--jobs requires a positive integer, got {:?}",
            args.get(i + 1).map(String::as_str).unwrap_or("nothing")
        );
        std::process::exit(2);
    };
    args.drain(i..i + 2);
    (jobs, args)
}

/// Extracts a `--params auto|paper` flag from a binary's argument list
/// (mirroring [`parse_jobs`]): `auto` → noise-aware selection, `paper` →
/// the paper's fixed `N = 8192` set, absent → `None` (binaries keep their
/// historical fast presets). Invalid values terminate the process — a
/// benchmark silently measuring under different parameters than asked
/// would corrupt the comparison.
pub fn parse_params(mut args: Vec<String>) -> (Option<bfv::params::ParamPolicy>, Vec<String>) {
    use bfv::params::{BfvParams, ParamPolicy};
    let Some(i) = args.iter().position(|a| a == "--params") else {
        return (None, args);
    };
    let policy = match args.get(i + 1).map(String::as_str) {
        Some("auto") => ParamPolicy::auto(),
        Some("paper") => ParamPolicy::Fixed(BfvParams::paper()),
        other => {
            eprintln!("--params requires 'auto' or 'paper', got {other:?}");
            std::process::exit(2);
        }
    };
    args.drain(i..i + 2);
    (Some(policy), args)
}

/// [`params_covering_for`] on the BFV backend — the historical signature
/// the BFV-only binaries call.
pub fn params_covering(
    programs: &[(&quill::program::Program, usize)],
    t: u64,
    policy: &bfv::params::ParamPolicy,
) -> bfv::params::BfvParams {
    params_covering_for(quill::scheme::SchemeId::Bfv, programs, t, policy)
}

/// Resolves a parameter policy against *several* lowered programs at once
/// under one scheme's selector and noise model, returning the largest
/// individual selection — the single parameter set a whole-suite benchmark
/// (one context, one key set) can run every workload under while keeping
/// each program's noise margin.
///
/// # Panics
///
/// Panics if any program fails to resolve (a bench workload the candidate
/// table cannot hold is a configuration error, not a measurement).
pub fn params_covering_for(
    scheme: quill::scheme::SchemeId,
    programs: &[(&quill::program::Program, usize)],
    t: u64,
    policy: &bfv::params::ParamPolicy,
) -> bfv::params::BfvParams {
    let key = |p: &bfv::params::BfvParams| {
        (
            p.poly_degree,
            p.moduli
                .iter()
                .map(|&q| 64 - q.leading_zeros())
                .sum::<u32>(),
        )
    };
    let chosen = programs
        .iter()
        .map(|(prog, min_slots)| {
            porcupine::scheme::resolve_params(scheme, policy, prog, *min_slots, t).unwrap_or_else(
                |e| panic!("{} [{scheme}]: parameter selection failed: {e}", prog.name),
            )
        })
        .max_by_key(key)
        .expect("at least one program");
    // The (N, total-bits) maximum is a proxy; certify the documented
    // guarantee directly — every program keeps its margin under the
    // chosen set, whatever shape future candidate-table rows take.
    if let bfv::params::ParamPolicy::Auto { margin_bits } = policy {
        for (prog, _) in programs {
            let predicted =
                porcupine::scheme::analyze_noise(scheme, &chosen, prog).predicted_budget_bits;
            assert!(
                predicted >= *margin_bits,
                "{} [{scheme}]: covering set leaves only {predicted:.1} bits (margin {margin_bits})",
                prog.name
            );
        }
    }
    chosen
}

/// Median of a sample set (the profiling binaries' robust central
/// tendency).
///
/// # Panics
///
/// Panics if `samples` is empty or contains NaN.
pub fn median(mut samples: Vec<f64>) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    samples[samples.len() / 2]
}

/// Runs `f` `reps` times and returns the median wall-clock in microseconds
/// — the shared timing methodology of `profile_latency` and `he_ops` (what
/// the cost model is calibrated from).
pub fn time_us(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = std::time::Instant::now();
        f();
        samples.push(start.elapsed().as_secs_f64() * 1e6);
    }
    median(samples)
}

/// Formats a microsecond latency with a stable width for table output.
pub fn fmt_us(us: f64) -> String {
    if us >= 1_000_000.0 {
        format!("{:.2} s", us / 1_000_000.0)
    } else if us >= 1_000.0 {
        format!("{:.2} ms", us / 1_000.0)
    } else {
        format!("{us:.0} µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_jobs_strips_the_flag_wherever_it_appears() {
        let (jobs, rest) = parse_jobs(strings(&["bin", "--jobs", "4", "60", "gx"]));
        assert_eq!(jobs.get(), 4);
        assert_eq!(rest, strings(&["bin", "60", "gx"]));

        let (jobs, rest) = parse_jobs(strings(&["bin", "60", "--jobs", "2"]));
        assert_eq!(jobs.get(), 2);
        assert_eq!(rest, strings(&["bin", "60"]));

        // No flag: positionals pass through untouched.
        let (_, rest) = parse_jobs(strings(&["bin", "60"]));
        assert_eq!(rest, strings(&["bin", "60"]));
        // (A dangling or non-numeric `--jobs` exits the process with an
        // error rather than silently changing the thread count.)
    }

    #[test]
    fn formats_latencies() {
        assert_eq!(fmt_us(250.0), "250 µs");
        assert_eq!(fmt_us(2_500.0), "2.50 ms");
        assert_eq!(fmt_us(2_500_000.0), "2.50 s");
    }
}
