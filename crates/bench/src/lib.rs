//! # porcupine-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§7):
//!
//! | artifact | binary / bench |
//! |---|---|
//! | Figure 4 (speedups) | `fig4_speedup` |
//! | Table 2 (instructions & depth) | `table2_instructions` |
//! | Table 3 (synthesis time) | `table3_synthesis` |
//! | Figures 5/6 (case studies) | `case_studies` |
//! | §7.4 sketch ablation | `ablation_sketch` |
//! | §6.1 rotation-restriction ablation | `ablation_rotations` |
//! | HE op latency profile | `profile_latency`, `benches/he_ops.rs` |
//! | Criterion kernel micro-benches | `benches/kernels.rs`, `benches/synthesis.rs` |
//!
//! Results are recorded in the repository's `EXPERIMENTS.md`.

/// Formats a microsecond latency with a stable width for table output.
pub fn fmt_us(us: f64) -> String {
    if us >= 1_000_000.0 {
        format!("{:.2} s", us / 1_000_000.0)
    } else if us >= 1_000.0 {
        format!("{:.2} ms", us / 1_000.0)
    } else {
        format!("{us:.0} µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_latencies() {
        assert_eq!(fmt_us(250.0), "250 µs");
        assert_eq!(fmt_us(2_500.0), "2.50 ms");
        assert_eq!(fmt_us(2_500_000.0), "2.50 s");
    }
}
