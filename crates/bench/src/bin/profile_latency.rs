//! Profiles every Quill instruction on each scheme backend — the analogue
//! of the paper profiling SEAL to parametrize Quill's cost model (§4.2).
//!
//! ```text
//! cargo run -p porcupine-bench --release --bin profile_latency [reps]
//! ```
//!
//! Both backends are profiled in one run, through the same generic
//! [`porcupine::scheme::Scheme`] surface the runner lowers onto, under the
//! same `fast_4096` preset. Paste the printed constants into
//! `quill::cost::LatencyModel::profiled_default` (BFV) and
//! `quill::cost::LatencyModel::profiled_bgv` (BGV) when re-calibrating.
//!
//! The standalone relinearization row is derived (`mul+relin − mul`): the
//! trait's `relinearize_assign` mutates in place, so timing it directly
//! would charge a fresh size-3 clone to every rep.

use bfv::params::BfvParams;
use porcupine::scheme::{BfvScheme, BgvScheme, Scheme};
use porcupine_bench::{fmt_us, time_us};
use rand::SeedableRng;

fn profile<S: Scheme>(reps: usize) {
    let params = BfvParams::fast_4096();
    println!(
        "# {} instruction latencies: N={}, t={}, {} primes, median of {reps} reps",
        S::ID,
        params.poly_degree,
        params.plain_modulus,
        params.moduli.len()
    );
    let ctx = S::context(params).expect("valid parameters");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
    let keygen = S::keygen(&ctx, &mut rng);
    let encryptor = S::encryptor(&ctx, &keygen, &mut rng);
    let decryptor = S::decryptor(&ctx, &keygen);
    let encoder = S::encoder(&ctx);
    let ev = S::evaluator(&ctx);
    let rk = S::relin_key(&keygen, &mut rng);
    let gk = S::galois_keys(&keygen, &[1], false, &mut rng);

    let data: Vec<u64> = (0..S::slot_count(&encoder) as u64).collect();
    let pt = S::encode(&encoder, &data);
    let a = S::encrypt(&encryptor, &pt, &mut rng);
    let b = S::encrypt(&encryptor, &pt, &mut rng);

    // Profile the steady-state hot path the runner executes: cached
    // EvalPlaintexts, in-place variants, pool-recycled results (warm the
    // pool untimed first). `he_ops` measures the same paths against the
    // seed baseline.
    let ept = S::preencode(&ev, &pt);
    let mut acc = a.clone();
    let mut acc_rot = a.clone();
    let mut warm = S::multiply(&ev, &a, &b);
    S::relinearize_assign(&ev, &mut warm, &rk);
    S::recycle(&ev, warm);
    S::rotate_rows_assign(&ev, &mut acc_rot, 1, &gk);

    let add = time_us(reps, || {
        S::add_assign(&ev, std::hint::black_box(&mut acc), &b);
    });
    let sub = time_us(reps, || {
        S::sub_assign(&ev, std::hint::black_box(&mut acc), &b);
    });
    let add_pt = time_us(reps, || {
        S::add_plain_assign(&ev, std::hint::black_box(&mut acc), &ept);
    });
    let sub_pt = time_us(reps, || {
        S::sub_plain_assign(&ev, std::hint::black_box(&mut acc), &ept);
    });
    let mul_pt = time_us(reps, || {
        S::mul_plain_assign(&ev, std::hint::black_box(&mut acc), &ept);
    });
    let rot = time_us(reps, || {
        S::rotate_rows_assign(&ev, std::hint::black_box(&mut acc_rot), 1, &gk);
    });
    let mul = time_us(reps, || {
        S::recycle(&ev, std::hint::black_box(S::multiply(&ev, &a, &b)));
    });
    let mul_relin = time_us(reps, || {
        let mut p = S::multiply(&ev, &a, &b);
        S::relinearize_assign(&ev, std::hint::black_box(&mut p), &rk);
        S::recycle(&ev, p);
    });
    let relin = (mul_relin - mul).max(0.0);
    // The hoisting pair: the shared decomposition a rotation fan pays once
    // (hoist + recycle, matching the Runner's lifecycle) and the
    // per-Galois-element accumulate each member then pays.
    let hoist_setup = time_us(reps, || {
        if let Some(h) = S::hoist(&ev, &a) {
            S::recycle_hoisted(&ev, h);
        }
    });
    let hoisted = {
        let h = S::hoist(&ev, &a).expect("backend supports hoisting");
        let us = time_us(reps, || {
            S::recycle(
                &ev,
                std::hint::black_box(S::rotate_hoisted(&ev, &a, &h, 1, &gk)),
            );
        });
        S::recycle_hoisted(&ev, h);
        us
    };
    let pt_encode = time_us(reps, || {
        std::hint::black_box(S::preencode(&ev, &pt));
    });
    let enc_t = time_us(reps, || {
        std::hint::black_box(S::encrypt(&encryptor, &pt, &mut rng));
    });
    let dec_t = time_us(reps, || {
        std::hint::black_box(S::decrypt(&decryptor, &a));
    });

    println!("{:<28} {}", "add-ct-ct", fmt_us(add));
    println!("{:<28} {}", "sub-ct-ct", fmt_us(sub));
    println!("{:<28} {}", "add-ct-pt", fmt_us(add_pt));
    println!("{:<28} {}", "sub-ct-pt", fmt_us(sub_pt));
    println!("{:<28} {}", "mul-ct-pt", fmt_us(mul_pt));
    println!("{:<28} {}", "rot-ct (keyswitch)", fmt_us(rot));
    println!("{:<28} {}", "rot-hoist-setup", fmt_us(hoist_setup));
    println!("{:<28} {}", "rot-hoisted (per member)", fmt_us(hoisted));
    println!("{:<28} {}", "mul-ct-ct (raw tensor)", fmt_us(mul));
    println!("{:<28} {}", "relin-ct (derived)", fmt_us(relin));
    println!("{:<28} {}", "mul-ct-ct + relin", fmt_us(mul_relin));
    println!("{:<28} {}", "pt encode (once per pt)", fmt_us(pt_encode));
    println!("{:<28} {}", "encrypt", fmt_us(enc_t));
    println!("{:<28} {}", "decrypt", fmt_us(dec_t));
    println!();
    println!("// LatencyModel::profiled_{} candidates", S::ID);
    println!("LatencyModel {{");
    println!("    add_ct_ct: {add:.1},");
    println!("    sub_ct_ct: {sub:.1},");
    println!("    mul_ct_ct: {mul:.1},");
    println!("    add_ct_pt: {add_pt:.1},");
    println!("    sub_ct_pt: {sub_pt:.1},");
    println!("    mul_ct_pt: {mul_pt:.1},");
    println!("    rot_ct: {rot:.1},");
    println!("    relin_ct: {relin:.1},");
    println!("    rot_hoist_setup: {hoist_setup:.1},");
    println!("    rot_hoisted: {hoisted:.1},");
    println!("}}");
    println!();
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);
    profile::<BfvScheme>(reps);
    profile::<BgvScheme>(reps);
}
