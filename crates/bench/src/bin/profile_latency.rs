//! Profiles every Quill instruction on the BFV backend — the analogue of
//! the paper profiling SEAL to parametrize Quill's cost model (§4.2).
//!
//! ```text
//! cargo run -p porcupine-bench --release --bin profile_latency [reps]
//! ```
//!
//! Paste the printed constants into
//! `quill::cost::LatencyModel::profiled_default` when re-calibrating.

use bfv::encoding::BatchEncoder;
use bfv::encrypt::{Decryptor, Encryptor};
use bfv::evaluator::Evaluator;
use bfv::keys::KeyGenerator;
use bfv::params::{BfvContext, BfvParams};
use porcupine_bench::{fmt_us, time_us};
use rand::SeedableRng;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);
    let params = BfvParams::fast_4096();
    println!(
        "# HE instruction latencies: N={}, t={}, {} primes, median of {reps} reps",
        params.poly_degree,
        params.plain_modulus,
        params.moduli.len()
    );
    let ctx = BfvContext::new(params).expect("valid parameters");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let encryptor = Encryptor::new(&ctx, keygen.public_key(&mut rng));
    let decryptor = Decryptor::new(&ctx, keygen.secret_key().clone());
    let encoder = BatchEncoder::new(&ctx);
    let ev = Evaluator::new(&ctx);
    let rk = keygen.relin_key(&mut rng);
    let gk = keygen.galois_keys_for_rotations(&[1], false, &mut rng);

    let data: Vec<u64> = (0..encoder.slot_count() as u64).collect();
    let pt = encoder.encode(&data);
    let a = encryptor.encrypt(&pt, &mut rng);
    let b = encryptor.encrypt(&pt, &mut rng);

    // Profile the steady-state hot path the runner executes: cached
    // EvalPlaintexts, in-place variants, pool-recycled results (warm the
    // pool untimed first). `he_ops` measures the same paths against the
    // seed baseline.
    let ept = ev.preencode(&pt);
    let mut acc = a.clone();
    let mut acc_rot = a.clone();
    ev.recycle(ev.multiply_relin(&a, &b, &rk));
    ev.rotate_rows_assign(&mut acc_rot, 1, &gk);

    let add = time_us(reps, || {
        ev.add_assign(std::hint::black_box(&mut acc), &b);
    });
    let sub = time_us(reps, || {
        ev.sub_assign(std::hint::black_box(&mut acc), &b);
    });
    let add_pt = time_us(reps, || {
        ev.add_plain_assign(std::hint::black_box(&mut acc), &ept);
    });
    let sub_pt = time_us(reps, || {
        ev.sub_plain_assign(std::hint::black_box(&mut acc), &ept);
    });
    let mul_pt = time_us(reps, || {
        ev.mul_plain_assign(std::hint::black_box(&mut acc), &ept);
    });
    let rot = time_us(reps, || {
        ev.rotate_rows_assign(std::hint::black_box(&mut acc_rot), 1, &gk);
    });
    let mul = time_us(reps, || {
        ev.recycle(std::hint::black_box(ev.multiply(&a, &b)));
    });
    let prod3 = ev.multiply(&a, &b);
    let relin = time_us(reps, || {
        ev.recycle(std::hint::black_box(ev.relinearize(&prod3, &rk)));
    });
    let mul_relin = time_us(reps, || {
        ev.recycle(std::hint::black_box(ev.multiply_relin(&a, &b, &rk)));
    });
    let pt_encode = time_us(reps, || {
        std::hint::black_box(ev.preencode(&pt));
    });
    let enc_t = time_us(reps, || {
        std::hint::black_box(encryptor.encrypt(&pt, &mut rng));
    });
    let dec_t = time_us(reps, || {
        std::hint::black_box(decryptor.decrypt(&a));
    });

    println!("{:<28} {}", "add-ct-ct", fmt_us(add));
    println!("{:<28} {}", "sub-ct-ct", fmt_us(sub));
    println!("{:<28} {}", "add-ct-pt", fmt_us(add_pt));
    println!("{:<28} {}", "sub-ct-pt", fmt_us(sub_pt));
    println!("{:<28} {}", "mul-ct-pt", fmt_us(mul_pt));
    println!("{:<28} {}", "rot-ct (keyswitch)", fmt_us(rot));
    println!("{:<28} {}", "mul-ct-ct (raw tensor)", fmt_us(mul));
    println!("{:<28} {}", "relin-ct (keyswitch)", fmt_us(relin));
    println!("{:<28} {}", "mul-ct-ct + relin", fmt_us(mul_relin));
    println!("{:<28} {}", "pt encode (once per pt)", fmt_us(pt_encode));
    println!("{:<28} {}", "encrypt", fmt_us(enc_t));
    println!("{:<28} {}", "decrypt", fmt_us(dec_t));
    println!();
    println!("LatencyModel {{");
    println!("    add_ct_ct: {add:.1},");
    println!("    sub_ct_ct: {sub:.1},");
    println!("    mul_ct_ct: {mul:.1},");
    println!("    add_ct_pt: {add_pt:.1},");
    println!("    sub_ct_pt: {sub_pt:.1},");
    println!("    mul_ct_pt: {mul_pt:.1},");
    println!("    rot_ct: {rot:.1},");
    println!("    relin_ct: {relin:.1},");
    println!("}}");
}
