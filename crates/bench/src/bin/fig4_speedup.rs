//! Regenerates **Figure 4**: run-time speedup of Porcupine-synthesized
//! kernels over the hand-written depth-minimized baselines, measured on the
//! in-repo BFV backend, plus the §7.2 multi-step applications (Sobel,
//! Harris). Every run is checked against the plaintext reference before
//! being timed.
//!
//! ```text
//! cargo run -p porcupine-bench --release --bin fig4_speedup [runs] [synth_timeout_s] [--secure] [--jobs N]
//! ```
//!
//! Defaults: 10 timed runs per version over the `fast_4096` parameter set;
//! `--secure` switches to the paper-faithful `N = 8192`, 128-bit-secure set
//! (slower). The paper reports up to 51% speedup, 11% geometric mean.

use bfv::encoding::Plaintext;
use bfv::encrypt::{Ciphertext, Decryptor, Encryptor};
use bfv::keys::KeyGenerator;
use bfv::params::{BfvContext, BfvParams};
use porcupine::cegis::{synthesize, SynthesisOptions};
use porcupine::codegen::BfvRunner;
use porcupine::spec::KernelSpec;
use porcupine_kernels::{all_direct, composite, stencil};
use quill::program::Program;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

struct Workload {
    name: String,
    spec: KernelSpec,
    baseline: Program,
    synthesized: Program,
}

use porcupine_bench::median;

fn main() {
    let (jobs, args) = porcupine_bench::parse_jobs(std::env::args().collect());
    let (policy, args) = porcupine_bench::parse_params(args);
    let runs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let synth_timeout: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(120);
    let secure = args.iter().any(|a| a == "--secure");

    let options = SynthesisOptions {
        timeout: Duration::from_secs(synth_timeout),
        parallelism: jobs,
        ..SynthesisOptions::default()
    };

    // --- Synthesize all kernels and build the workload list. -------------
    let mut workloads: Vec<Workload> = Vec::new();
    let mut by_name: std::collections::HashMap<&str, Program> = Default::default();
    for k in all_direct() {
        let r = synthesize(&k.spec, &k.sketch, &options)
            .unwrap_or_else(|e| panic!("{} failed to synthesize: {e}", k.name));
        by_name.insert(k.name, r.program.clone());
        workloads.push(Workload {
            name: k.name.to_string(),
            spec: k.spec,
            baseline: k.baseline,
            synthesized: r.program,
        });
    }
    let img = stencil::default_image();
    let combine = composite::sobel_combine(img.slots());
    let det = composite::harris_det(img.slots());
    let trace = composite::harris_trace(img.slots());
    let combine_p = synthesize(&combine.spec, &combine.sketch, &options)
        .unwrap()
        .program;
    let det_p = synthesize(&det.spec, &det.sketch, &options)
        .unwrap()
        .program;
    let trace_p = synthesize(&trace.spec, &trace.sketch, &options)
        .unwrap()
        .program;
    workloads.push(Workload {
        name: "sobel (multi-step)".into(),
        spec: composite::sobel_spec(img),
        baseline: composite::sobel_baseline(img),
        synthesized: composite::sobel_from(&by_name["gx"], &by_name["gy"], &combine_p),
    });
    workloads.push(Workload {
        name: "harris (multi-step)".into(),
        spec: composite::harris_spec(img),
        baseline: composite::harris_baseline(img),
        synthesized: composite::harris_from(&composite::HarrisStages {
            gx: by_name["gx"].clone(),
            gy: by_name["gy"].clone(),
            blur: by_name["box-blur"].clone(),
            det: det_p,
            trace: trace_p,
        }),
    });

    // --- Resolve parameters and time every workload. ----------------------
    // `--params auto` picks the single set covering every lowered workload
    // (both versions, so the comparison shares one context); `--secure` /
    // the default keep the historical fixed presets.
    let params = match &policy {
        Some(policy) => {
            let lowered: Vec<(Program, usize)> = workloads
                .iter()
                .flat_map(|w| {
                    [
                        (
                            porcupine::opt::optimize(&w.baseline, options.opt_level).0,
                            w.spec.n,
                        ),
                        (
                            porcupine::opt::optimize(&w.synthesized, options.opt_level).0,
                            w.spec.n,
                        ),
                    ]
                })
                .collect();
            let refs: Vec<(&Program, usize)> = lowered.iter().map(|(p, n)| (p, *n)).collect();
            porcupine_bench::params_covering(&refs, 65537, policy)
        }
        None if secure => BfvParams::secure_128(),
        None => BfvParams::fast_4096(),
    };
    println!(
        "# Figure 4: kernel speedups (N={}, Q={} primes, {} runs/version, synthesis timeout {synth_timeout}s)",
        params.poly_degree,
        params.moduli.len(),
        runs
    );
    let ctx = BfvContext::new(params).expect("valid parameters");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xF16);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let encryptor = Encryptor::new(&ctx, keygen.public_key(&mut rng));
    let decryptor = Decryptor::new(&ctx, keygen.secret_key().clone());

    println!(
        "{:<24} {:>12} {:>12} {:>9}",
        "kernel", "baseline(ms)", "synth(ms)", "speedup%"
    );
    let mut ratios = Vec::new();
    for w in &workloads {
        // Both versions execute through the same middle-end level so the
        // baseline-vs-synthesized comparison isolates the search, not the
        // optimizer (the fig_opt binary measures -O0 vs -O2 instead).
        let (baseline, _) = porcupine::opt::optimize(&w.baseline, options.opt_level);
        let (synthesized, _) = porcupine::opt::optimize(&w.synthesized, options.opt_level);
        let programs = [&baseline, &synthesized];
        let runner = BfvRunner::for_programs(&ctx, &keygen, &programs, &mut rng);
        let t = w.spec.t;

        // Random model inputs (valid region), zero padding elsewhere.
        let ct_model: Vec<Vec<u64>> = (0..w.spec.num_ct_inputs)
            .map(|_| (0..w.spec.n).map(|_| rng.gen_range(0..256)).collect())
            .collect();
        let pt_model: Vec<Vec<u64>> = (0..w.spec.num_pt_inputs)
            .map(|_| (0..w.spec.n).map(|_| rng.gen_range(0..256)).collect())
            .collect();
        let expected = w.spec.eval_concrete(&ct_model, &pt_model);

        let encoder = runner.encoder();
        let cts: Vec<Ciphertext> = ct_model
            .iter()
            .map(|v| encryptor.encrypt(&encoder.encode(v), &mut rng))
            .collect();
        let pts: Vec<Plaintext> = pt_model.iter().map(|v| encoder.encode(v)).collect();
        let ct_refs: Vec<&Ciphertext> = cts.iter().collect();
        let pt_refs: Vec<&Plaintext> = pts.iter().collect();

        let mut times = [Vec::new(), Vec::new()];
        for (vi, prog) in programs.iter().enumerate() {
            // correctness check once per version
            let out = runner.run(prog, &ct_refs, &pt_refs);
            let budget = decryptor.invariant_noise_budget(&out);
            assert!(budget > 0, "{}: noise budget exhausted ({budget})", w.name);
            let decoded = encoder.decode(&decryptor.decrypt(&out));
            for i in 0..w.spec.n {
                if w.spec.output_mask[i] {
                    assert_eq!(
                        decoded[i],
                        expected[i] % t,
                        "{}: wrong result at slot {i}",
                        w.name
                    );
                }
            }
            for _ in 0..runs {
                let start = Instant::now();
                std::hint::black_box(runner.run(prog, &ct_refs, &pt_refs));
                times[vi].push(start.elapsed().as_secs_f64() * 1e3);
            }
        }
        let base = median(times[0].clone());
        let synth = median(times[1].clone());
        let speedup = (base - synth) / base * 100.0;
        ratios.push(base / synth);
        println!(
            "{:<24} {:>12.2} {:>12.2} {:>9.1}",
            w.name, base, synth, speedup
        );
    }
    let geomean = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
    println!(
        "\ngeometric-mean speedup: {:.1}% (paper: 11% geomean, up to 51%)",
        (geomean.exp() - 1.0) * 100.0
    );
}
