//! Regenerates the **§6.1 rotation-restriction ablation**: synthesis time
//! with the sliding-window / power-of-two rotation vocabularies vs the
//! unrestricted set (any amount in `1..n`).
//!
//! ```text
//! cargo run -p porcupine-bench --release --bin ablation_rotations [timeout_secs] [--jobs N]
//! ```

use porcupine::cegis::{synthesize, SynthesisOptions};
use porcupine::sketch::{RotationSet, Sketch};
use porcupine_bench::parse_jobs;
use porcupine_kernels::{reduction, stencil};
use std::time::Duration;

fn main() {
    let (jobs, args) = parse_jobs(std::env::args().collect());
    let timeout = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(120u64);
    let options = SynthesisOptions {
        timeout: Duration::from_secs(timeout),
        parallelism: jobs,
        ..SynthesisOptions::default()
    };
    println!("# §6.1 ablation: restricted vs unrestricted rotation sets (timeout {timeout}s)");
    println!(
        "{:<34} {:>6} {:>12} {:>12} {:>8}",
        "kernel / rotation set", "|rots|", "initial(s)", "total(s)", "optimal"
    );

    let img = stencil::default_image();
    let cases: Vec<(&str, porcupine_kernels::PaperKernel, RotationSet)> = vec![
        (
            "box-blur / window",
            stencil::box_blur(img),
            RotationSet::Window {
                stride: 5,
                radius: 1,
            },
        ),
        (
            "box-blur / unrestricted",
            stencil::box_blur(img),
            RotationSet::All { n: img.slots() },
        ),
        (
            "dot-product / powers-of-two",
            reduction::dot_product(8),
            RotationSet::PowersOfTwo { extent: 8 },
        ),
        (
            "dot-product / unrestricted",
            reduction::dot_product(8),
            RotationSet::All { n: 16 },
        ),
    ];
    for (name, kernel, rots) in cases {
        let sketch = Sketch::new(
            kernel.sketch.ops.clone(),
            rots,
            kernel.sketch.max_components,
        );
        match synthesize(&kernel.spec, &sketch, &options) {
            Ok(r) => println!(
                "{:<34} {:>6} {:>12.2} {:>12.2} {:>8}",
                name,
                sketch.rotation_amounts.len(),
                r.time_to_initial.as_secs_f64(),
                r.time_total.as_secs_f64(),
                r.proved_optimal,
            ),
            Err(e) => println!("{name:<34} {e}"),
        }
    }
}
