//! Regenerates the **Figure 5 / Figure 6** case studies: prints the
//! synthesized and baseline box blur and Gx kernels side by side, with the
//! optimization analysis of §7.3 (separable-filter discovery, multiply-by-2
//! as addition), plus the emitted SEAL-style C++ (Figure 3f).
//!
//! ```text
//! cargo run -p porcupine-bench --release --bin case_studies [--jobs N]
//! ```

use porcupine::cegis::{synthesize, SynthesisOptions};
use porcupine::codegen::emit_seal_cpp;
use porcupine_bench::parse_jobs;
use porcupine_kernels::stencil;
use quill::cost::{eager_cost, LatencyModel};

fn main() {
    let (jobs, _args) = parse_jobs(std::env::args().collect());
    let options = SynthesisOptions {
        parallelism: jobs,
        ..SynthesisOptions::default()
    };
    let model = LatencyModel::profiled_default();
    let img = stencil::default_image();

    for k in [stencil::box_blur(img), stencil::gx(img)] {
        let r = synthesize(&k.spec, &k.sketch, &options)
            .unwrap_or_else(|e| panic!("{} failed: {e}", k.name));
        println!("================= {} =================", k.name);
        println!(
            "baseline:    {:>2} instructions, logic depth {}, mult depth {}, cost {:.0}",
            k.baseline.len(),
            k.baseline.logic_depth(),
            k.baseline.mult_depth(),
            eager_cost(&k.baseline, &model),
        );
        println!(
            "synthesized: {:>2} instructions, logic depth {}, mult depth {}, cost {:.0}",
            r.program.len(),
            r.program.logic_depth(),
            r.program.mult_depth(),
            eager_cost(&r.program, &model),
        );
        println!("\n--- baseline (depth-minimized, Figure 5b/6b style) ---");
        print!("{}", k.baseline);
        println!("\n--- synthesized (Figure 5a/6a style) ---");
        print!("{}", r.program);
        println!("\n--- generated SEAL C++ (Figure 3f) ---");
        print!("{}", emit_seal_cpp(&r.program));
        println!();
    }
    println!(
        "§7.3 analysis: the synthesized kernels decompose the 2-D stencils into\n\
         two 1-D passes (separable filters), reusing partial sums — fewer\n\
         instructions at slightly higher logic depth, which the noise model\n\
         (multiplicative depth) shows is free."
    );
}
