//! Regenerates **Table 2**: instruction count and logic depth of baseline
//! vs synthesized kernels (plus the multiplicative depth the cost model
//! tracks).
//!
//! ```text
//! cargo run -p porcupine-bench --release --bin table2_instructions [timeout_secs] [--jobs N]
//! ```

use porcupine::cegis::{synthesize, SynthesisOptions};
use porcupine_bench::parse_jobs;
use porcupine_kernels::{all_direct, composite, stencil};
use quill::program::Program;
use std::time::Duration;

fn row(name: &str, baseline: &Program, synthesized: &Program) {
    println!(
        "{:<24} {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
        name,
        baseline.len(),
        baseline.logic_depth(),
        baseline.mult_depth(),
        synthesized.len(),
        synthesized.logic_depth(),
        synthesized.mult_depth(),
    );
}

fn main() {
    let (jobs, args) = parse_jobs(std::env::args().collect());
    let timeout = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(120u64);
    let options = SynthesisOptions {
        timeout: Duration::from_secs(timeout),
        parallelism: jobs,
        ..SynthesisOptions::default()
    };

    println!("# Table 2: baseline vs synthesized (instr / logic depth / mult depth)");
    println!(
        "{:<24} {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
        "kernel", "b.inst", "b.dep", "b.mdep", "s.inst", "s.dep", "s.mdep"
    );

    let img = stencil::default_image();
    let mut synthesized = std::collections::HashMap::new();
    for k in all_direct() {
        match synthesize(&k.spec, &k.sketch, &options) {
            Ok(r) => {
                row(k.name, &k.baseline, &r.program);
                synthesized.insert(k.name, r.program);
            }
            Err(e) => println!("{:<24} synthesis failed: {e}", k.name),
        }
    }

    // Multi-step applications (§7.2): Sobel and Harris composed from the
    // synthesized kernels above.
    let combine = composite::sobel_combine(img.slots());
    let det = composite::harris_det(img.slots());
    let trace = composite::harris_trace(img.slots());
    let combine_prog = synthesize(&combine.spec, &combine.sketch, &options)
        .expect("combine synthesizes")
        .program;
    let det_prog = synthesize(&det.spec, &det.sketch, &options)
        .expect("det synthesizes")
        .program;
    let trace_prog = synthesize(&trace.spec, &trace.sketch, &options)
        .expect("trace synthesizes")
        .program;

    if let (Some(gx), Some(gy), Some(blur)) = (
        synthesized.get("gx"),
        synthesized.get("gy"),
        synthesized.get("box-blur"),
    ) {
        let sobel = composite::sobel_from(gx, gy, &combine_prog);
        row(
            "sobel (multi-step)",
            &composite::sobel_baseline(img),
            &sobel,
        );
        let harris = composite::harris_from(&composite::HarrisStages {
            gx: gx.clone(),
            gy: gy.clone(),
            blur: blur.clone(),
            det: det_prog,
            trace: trace_prog,
        });
        row(
            "harris (multi-step)",
            &composite::harris_baseline(img),
            &harris,
        );
    }
}
