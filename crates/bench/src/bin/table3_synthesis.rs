//! Regenerates **Table 3**: synthesis time, example count, and
//! initial/final cost for each kernel — and measures the parallel-search
//! speedup plus the persistent synthesis cache's cold/warm behaviour by
//! synthesizing every kernel three times: jobs = 1 against a fresh cache
//! directory (the **cold** run), jobs = N with the cache disabled (the
//! parallel leg), and jobs = 1 again against the now-warm cache (the
//! **warm** run).
//!
//! ```text
//! cargo run -p porcupine-bench --release --bin table3_synthesis [timeout_secs] [kernel-name] [--jobs N]
//! ```
//!
//! `--jobs` defaults to `PORCUPINE_JOBS` or the machine's available
//! parallelism. Two summaries are written to the current directory — run
//! from the repo root to land them there:
//!
//! * `BENCH_synthesis.json` — per-kernel wall-clock at both thread counts
//!   plus the parallel speedup (unchanged from before).
//! * `BENCH_synth_scale.json` — per-kernel cold vs warm wall-clock, the
//!   phase-1 strategy the cold run used, and the warm-over-cold speedup.
//!   The warm run is **asserted** to be a cache hit that performs zero
//!   search invocations (via [`porcupine::search_invocations`]) and to
//!   return the byte-identical program, so the speedup column measures
//!   the cache, not a lucky fast search.
//!
//! For every kernel whose optimization completes at both thread counts,
//! the binary asserts the two runs returned bit-identical programs (the
//! determinism contract); kernels that hit the per-kernel timeout carry
//! best-so-far programs, which are legitimately timing-dependent and are
//! not compared.
//!
//! Paper columns for reference (median of 3 runs on their machine, with
//! Rosette/Boolector): the absolute times differ from ours by construction —
//! we search enumeratively instead of bit-blasting to SMT — but the
//! qualitative ordering (Roberts cross slowest; most kernels in seconds)
//! should reproduce.

use porcupine::cegis::{synthesize, CachePolicy, SynthesisOptions};
use porcupine::search_invocations;
use porcupine_bench::parse_jobs;
use porcupine_kernels::{all_direct, composite, stencil, PaperKernel};
use quill::cost::LatencyModel;
use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

struct Row {
    name: String,
    secs_seq: f64,
    secs_par: f64,
    speedup: f64,
}

struct CacheRow {
    name: String,
    strategy: String,
    cold_secs: f64,
    /// Disk-tier replay: read + parse + mandatory re-verification (what a
    /// fresh process pays).
    warm_disk_secs: f64,
    /// In-process replay: the memo tier answering a repeated query.
    warm_secs: f64,
    warm_speedup: f64,
}

fn main() {
    let (jobs, args) = parse_jobs(std::env::args().collect());
    let timeout = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(600u64);
    let filter = args.get(2).cloned();

    let mut kernels: Vec<PaperKernel> = all_direct();
    let n = stencil::default_image().slots();
    kernels.push(composite::sobel_combine(n));
    kernels.push(composite::harris_det(n));
    kernels.push(composite::harris_trace(n));

    // A fresh cache directory per bench invocation: the cold timings must
    // never be contaminated by entries a previous run left behind.
    let cache_dir =
        std::env::temp_dir().join(format!("porcupine-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    println!(
        "# Table 3: synthesis time and examples (timeout {timeout}s per kernel, jobs 1 vs {jobs})"
    );
    println!(
        "{:<24} {:>4} {:>9} {:>12} {:>12} {:>12} {:>8} {:>12} {:>8} {:>13} {:>12} {:>8} {:>7} {:>10}",
        "kernel",
        "L",
        "examples",
        "initial(s)",
        "seq(s)",
        "par(s)",
        "speedup",
        "warm(s)",
        "cache-x",
        "initial-cost",
        "final-cost",
        "optimal",
        "instrs",
        "strategy"
    );
    let mut rows: Vec<Row> = Vec::new();
    let mut cache_rows: Vec<CacheRow> = Vec::new();
    for k in kernels {
        if let Some(f) = &filter {
            if k.name != f {
                continue;
            }
        }
        let options = |parallelism: NonZeroUsize, cache: CachePolicy| SynthesisOptions {
            timeout: Duration::from_secs(timeout),
            optimize: true,
            latency: LatencyModel::profiled_default(),
            seed: 42,
            parallelism,
            cache,
            ..SynthesisOptions::default()
        };
        // Cold run: jobs = 1 against the fresh cache directory. The
        // options are built once and reused for the warm replays — the
        // default-options constructor reads environment variables, which
        // would otherwise dominate a microsecond-scale replay timing.
        let seq_options = options(NonZeroUsize::MIN, CachePolicy::At(cache_dir.clone()));
        let t0 = Instant::now();
        let seq = synthesize(&k.spec, &k.sketch, &seq_options);
        let secs_seq = t0.elapsed().as_secs_f64();
        // Parallel leg: cache disabled so the search actually runs.
        let t1 = Instant::now();
        let par = synthesize(&k.spec, &k.sketch, &options(jobs, CachePolicy::Disabled));
        let secs_par = t1.elapsed().as_secs_f64();
        match (seq, par) {
            (Ok(seq), Ok(par)) => {
                assert!(!seq.cache_hit, "{}: fresh cache dir must miss", k.name);
                // The determinism contract holds for completed searches; a
                // run that hit the deadline mid-optimization keeps its best
                // program so far, which is legitimately timing-dependent.
                if seq.proved_optimal && par.proved_optimal {
                    assert_eq!(
                        seq.program, par.program,
                        "{}: determinism contract violated (jobs 1 vs {jobs})",
                        k.name
                    );
                    assert_eq!(
                        seq.final_cost.to_bits(),
                        par.final_cost.to_bits(),
                        "{}",
                        k.name
                    );
                }
                // Warm run: the identical query against the now-populated
                // cache. Must hit, must not search, must return the same
                // bytes — otherwise the "speedup" would be meaningless.
                // Only proved-optimal answers are cached (timed-out
                // partials are timing-dependent), so a kernel that hit the
                // deadline gets no warm row.
                // Warm replays, both tiers. The memo is cleared first so
                // re-query #1 measures the disk tier (read + parse +
                // mandatory re-verification — what a fresh process pays);
                // re-queries #2..5 measure the in-process memo, and the
                // headline warm time is the minimum over all five (the
                // steady-state cost of asking the same question again).
                // Every replay is asserted to be a hit with zero search
                // invocations and the byte-identical program.
                let (secs_warm_disk, secs_warm, warm_speedup) = if seq.proved_optimal {
                    porcupine::clear_synthesis_memo();
                    let mut secs_warm = f64::MAX;
                    let mut secs_warm_disk = f64::NAN;
                    for i in 0..5 {
                        let invocations_before = search_invocations();
                        let t2 = Instant::now();
                        let warm =
                            synthesize(&k.spec, &k.sketch, &seq_options).expect("warm re-query");
                        let elapsed = t2.elapsed().as_secs_f64();
                        if i == 0 {
                            secs_warm_disk = elapsed;
                        }
                        secs_warm = secs_warm.min(elapsed);
                        assert!(warm.cache_hit, "{}: warm re-query must hit", k.name);
                        assert_eq!(
                            search_invocations() - invocations_before,
                            0,
                            "{}: a cache hit must skip the search entirely",
                            k.name
                        );
                        assert_eq!(
                            warm.program, seq.program,
                            "{}: warm program must be byte-identical to cold",
                            k.name
                        );
                    }
                    (secs_warm_disk, secs_warm, secs_seq / secs_warm.max(1e-9))
                } else {
                    (f64::NAN, f64::NAN, f64::NAN)
                };
                let speedup = secs_seq / secs_par.max(1e-9);
                println!(
                    "{:<24} {:>4} {:>9} {:>12.2} {:>12.2} {:>12.2} {:>7.2}x {:>12.4} {:>7.0}x {:>13.0} {:>12.0} {:>8} {:>7} {:>10}",
                    k.name,
                    seq.components,
                    seq.examples_used,
                    seq.time_to_initial.as_secs_f64(),
                    secs_seq,
                    secs_par,
                    speedup,
                    secs_warm,
                    warm_speedup,
                    seq.initial_cost,
                    seq.final_cost,
                    seq.proved_optimal,
                    seq.program.len(),
                    seq.strategy_used,
                );
                rows.push(Row {
                    name: k.name.to_string(),
                    secs_seq,
                    secs_par,
                    speedup,
                });
                if seq.proved_optimal {
                    cache_rows.push(CacheRow {
                        name: k.name.to_string(),
                        strategy: seq.strategy_used.to_string(),
                        cold_secs: secs_seq,
                        warm_disk_secs: secs_warm_disk,
                        warm_secs: secs_warm,
                        warm_speedup,
                    });
                }
            }
            (Err(e), _) | (_, Err(e)) => println!("{:<24} failed: {e}", k.name),
        }
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    if !rows.is_empty() {
        let best = rows
            .iter()
            .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
            .unwrap();
        let geomean = (rows.iter().map(|r| r.speedup.ln()).sum::<f64>() / rows.len() as f64).exp();
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let path = "BENCH_synthesis.json";
        std::fs::write(
            path,
            summary_json(jobs.get(), available, &rows, best, geomean),
        )
        .expect("write BENCH_synthesis.json");
        if available > 1 {
            println!(
                "\nwrote {path}: best speedup {:.2}x ({}) at {jobs} jobs, geomean {:.2}x",
                best.speedup, best.name, geomean,
            );
        } else {
            // On a single-core host the jobs=1 and jobs=N runs time-share
            // one CPU; a "speedup" headline would only report scheduler
            // noise. The JSON still records the raw numbers plus
            // available_parallelism so a reader can tell why.
            println!(
                "\nwrote {path} (single-core host: parallel-speedup headline suppressed; \
                 re-run on a multi-core machine to measure the search's scaling)"
            );
        }

        if !cache_rows.is_empty() {
            let scale_path = "BENCH_synth_scale.json";
            std::fs::write(scale_path, scale_json(available, &cache_rows))
                .expect("write scale json");
            let min_warm = cache_rows
                .iter()
                .min_by(|a, b| a.warm_speedup.total_cmp(&b.warm_speedup))
                .unwrap();
            let max_warm = cache_rows
                .iter()
                .map(|r| r.warm_speedup)
                .fold(f64::MIN, f64::max);
            println!(
                "wrote {scale_path}: warm-cache speedup {:.0}x..{:.0}x (min on {})",
                min_warm.warm_speedup, max_warm, min_warm.name,
            );
        }
    }
}

/// Hand-rolled JSON (the workspace is offline; no serde). Kernel names are
/// ASCII identifiers, so no string escaping is needed.
fn summary_json(jobs: usize, available: usize, rows: &[Row], best: &Row, geomean: f64) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"jobs\": {jobs},\n  \"available_parallelism\": {available},\n  \"single_core_host\": {},\n",
        available == 1
    ));
    s.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"seq_secs\": {:.4}, \"par_secs\": {:.4}, \"speedup\": {:.4}}}{}\n",
            r.name,
            r.secs_seq,
            r.secs_par,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"max_speedup\": {:.4},\n  \"max_speedup_kernel\": \"{}\",\n  \"geomean_speedup\": {:.4}\n}}\n",
        best.speedup, best.name, geomean
    ));
    s
}

/// Cold vs warm summary for `BENCH_synth_scale.json`. Every warm run in
/// `rows` already passed the cache-hit / zero-search-invocation /
/// byte-identity asserts, so `warm_verified_hit` is `true` by
/// construction — it is recorded so a reader of the JSON alone knows the
/// speedup is a no-search replay, not a faster search. `warm_disk_secs`
/// is the disk tier (what a fresh process pays: read + parse +
/// re-verification); `warm_secs` is the steady in-process replay.
fn scale_json(available: usize, rows: &[CacheRow]) -> String {
    let min = rows.iter().map(|r| r.warm_speedup).fold(f64::MAX, f64::min);
    let geomean = (rows.iter().map(|r| r.warm_speedup.ln()).sum::<f64>() / rows.len() as f64).exp();
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"available_parallelism\": {available},\n  \"warm_verified_hit\": true,\n"
    ));
    s.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"strategy\": \"{}\", \"cold_secs\": {:.4}, \"warm_disk_secs\": {:.6}, \"warm_secs\": {:.6}, \"warm_speedup\": {:.1}}}{}\n",
            r.name,
            r.strategy,
            r.cold_secs,
            r.warm_disk_secs,
            r.warm_secs,
            r.warm_speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"min_warm_speedup\": {min:.1},\n  \"geomean_warm_speedup\": {geomean:.1}\n}}\n"
    ));
    s
}
