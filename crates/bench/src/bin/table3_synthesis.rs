//! Regenerates **Table 3**: synthesis time, example count, and
//! initial/final cost for each kernel — and measures the parallel-search
//! speedup by synthesizing every kernel twice, at jobs = 1 and jobs = N.
//!
//! ```text
//! cargo run -p porcupine-bench --release --bin table3_synthesis [timeout_secs] [kernel-name] [--jobs N]
//! ```
//!
//! `--jobs` defaults to `PORCUPINE_JOBS` or the machine's available
//! parallelism. A `BENCH_synthesis.json` summary (per-kernel wall-clock at
//! both thread counts plus the speedup) is written to the current
//! directory — run from the repo root to land it there. For every kernel
//! whose optimization completes at both thread counts, the binary asserts
//! the two runs returned bit-identical programs (the determinism
//! contract); kernels that hit the per-kernel timeout carry best-so-far
//! programs, which are legitimately timing-dependent and are not compared.
//!
//! Paper columns for reference (median of 3 runs on their machine, with
//! Rosette/Boolector): the absolute times differ from ours by construction —
//! we search enumeratively instead of bit-blasting to SMT — but the
//! qualitative ordering (Roberts cross slowest; most kernels in seconds)
//! should reproduce.

use porcupine::cegis::{synthesize, SynthesisOptions};
use porcupine_bench::parse_jobs;
use porcupine_kernels::{all_direct, composite, stencil, PaperKernel};
use quill::cost::LatencyModel;
use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

struct Row {
    name: String,
    secs_seq: f64,
    secs_par: f64,
    speedup: f64,
}

fn main() {
    let (jobs, args) = parse_jobs(std::env::args().collect());
    let timeout = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(600u64);
    let filter = args.get(2).cloned();

    let mut kernels: Vec<PaperKernel> = all_direct();
    let n = stencil::default_image().slots();
    kernels.push(composite::sobel_combine(n));
    kernels.push(composite::harris_det(n));
    kernels.push(composite::harris_trace(n));

    println!(
        "# Table 3: synthesis time and examples (timeout {timeout}s per kernel, jobs 1 vs {jobs})"
    );
    println!(
        "{:<24} {:>4} {:>9} {:>12} {:>12} {:>12} {:>8} {:>13} {:>12} {:>8} {:>7}",
        "kernel",
        "L",
        "examples",
        "initial(s)",
        "seq(s)",
        "par(s)",
        "speedup",
        "initial-cost",
        "final-cost",
        "optimal",
        "instrs"
    );
    let mut rows: Vec<Row> = Vec::new();
    for k in kernels {
        if let Some(f) = &filter {
            if k.name != f {
                continue;
            }
        }
        let options = |parallelism: NonZeroUsize| SynthesisOptions {
            timeout: Duration::from_secs(timeout),
            optimize: true,
            latency: LatencyModel::profiled_default(),
            seed: 42,
            parallelism,
            ..SynthesisOptions::default()
        };
        let t0 = Instant::now();
        let seq = synthesize(&k.spec, &k.sketch, &options(NonZeroUsize::MIN));
        let secs_seq = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let par = synthesize(&k.spec, &k.sketch, &options(jobs));
        let secs_par = t1.elapsed().as_secs_f64();
        match (seq, par) {
            (Ok(seq), Ok(par)) => {
                // The determinism contract holds for completed searches; a
                // run that hit the deadline mid-optimization keeps its best
                // program so far, which is legitimately timing-dependent.
                if seq.proved_optimal && par.proved_optimal {
                    assert_eq!(
                        seq.program, par.program,
                        "{}: determinism contract violated (jobs 1 vs {jobs})",
                        k.name
                    );
                    assert_eq!(
                        seq.final_cost.to_bits(),
                        par.final_cost.to_bits(),
                        "{}",
                        k.name
                    );
                }
                let speedup = secs_seq / secs_par.max(1e-9);
                println!(
                    "{:<24} {:>4} {:>9} {:>12.2} {:>12.2} {:>12.2} {:>7.2}x {:>13.0} {:>12.0} {:>8} {:>7}",
                    k.name,
                    seq.components,
                    seq.examples_used,
                    seq.time_to_initial.as_secs_f64(),
                    secs_seq,
                    secs_par,
                    speedup,
                    seq.initial_cost,
                    seq.final_cost,
                    seq.proved_optimal,
                    seq.program.len(),
                );
                rows.push(Row {
                    name: k.name.to_string(),
                    secs_seq,
                    secs_par,
                    speedup,
                });
            }
            (Err(e), _) | (_, Err(e)) => println!("{:<24} failed: {e}", k.name),
        }
    }

    if !rows.is_empty() {
        let best = rows
            .iter()
            .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
            .unwrap();
        let geomean = (rows.iter().map(|r| r.speedup.ln()).sum::<f64>() / rows.len() as f64).exp();
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let path = "BENCH_synthesis.json";
        std::fs::write(
            path,
            summary_json(jobs.get(), available, &rows, best, geomean),
        )
        .expect("write BENCH_synthesis.json");
        if available > 1 {
            println!(
                "\nwrote {path}: best speedup {:.2}x ({}) at {jobs} jobs, geomean {:.2}x",
                best.speedup, best.name, geomean,
            );
        } else {
            // On a single-core host the jobs=1 and jobs=N runs time-share
            // one CPU; a "speedup" headline would only report scheduler
            // noise. The JSON still records the raw numbers plus
            // available_parallelism so a reader can tell why.
            println!(
                "\nwrote {path} (single-core host: parallel-speedup headline suppressed; \
                 re-run on a multi-core machine to measure the search's scaling)"
            );
        }
    }
}

/// Hand-rolled JSON (the workspace is offline; no serde). Kernel names are
/// ASCII identifiers, so no string escaping is needed.
fn summary_json(jobs: usize, available: usize, rows: &[Row], best: &Row, geomean: f64) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"jobs\": {jobs},\n  \"available_parallelism\": {available},\n  \"single_core_host\": {},\n",
        available == 1
    ));
    s.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"seq_secs\": {:.4}, \"par_secs\": {:.4}, \"speedup\": {:.4}}}{}\n",
            r.name,
            r.secs_seq,
            r.secs_par,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"max_speedup\": {:.4},\n  \"max_speedup_kernel\": \"{}\",\n  \"geomean_speedup\": {:.4}\n}}\n",
        best.speedup, best.name, geomean
    ));
    s
}
