//! Regenerates **Table 3**: synthesis time, example count, and
//! initial/final cost for each kernel.
//!
//! ```text
//! cargo run -p porcupine-bench --release --bin table3_synthesis [timeout_secs] [kernel-name]
//! ```
//!
//! Paper columns for reference (median of 3 runs on their machine, with
//! Rosette/Boolector): the absolute times differ from ours by construction —
//! we search enumeratively instead of bit-blasting to SMT — but the
//! qualitative ordering (Roberts cross slowest; most kernels in seconds)
//! should reproduce.

use porcupine::cegis::{synthesize, SynthesisOptions};
use porcupine_kernels::{all_direct, composite, stencil, PaperKernel};
use quill::cost::LatencyModel;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let timeout = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(600u64);
    let filter = args.get(2).cloned();

    let mut kernels: Vec<PaperKernel> = all_direct();
    let n = stencil::default_image().slots();
    kernels.push(composite::sobel_combine(n));
    kernels.push(composite::harris_det(n));
    kernels.push(composite::harris_trace(n));

    println!("# Table 3: synthesis time and examples (timeout {timeout}s per kernel)");
    println!(
        "{:<24} {:>4} {:>9} {:>12} {:>12} {:>13} {:>12} {:>8} {:>7}",
        "kernel",
        "L",
        "examples",
        "initial(s)",
        "total(s)",
        "initial-cost",
        "final-cost",
        "optimal",
        "instrs"
    );
    for k in kernels {
        if let Some(f) = &filter {
            if k.name != f {
                continue;
            }
        }
        let options = SynthesisOptions {
            timeout: Duration::from_secs(timeout),
            optimize: true,
            latency: LatencyModel::profiled_default(),
            seed: 42,
        };
        match synthesize(&k.spec, &k.sketch, &options) {
            Ok(r) => {
                println!(
                    "{:<24} {:>4} {:>9} {:>12.2} {:>12.2} {:>13.0} {:>12.0} {:>8} {:>7}",
                    k.name,
                    r.components,
                    r.examples_used,
                    r.time_to_initial.as_secs_f64(),
                    r.time_total.as_secs_f64(),
                    r.initial_cost,
                    r.final_cost,
                    r.proved_optimal,
                    r.program.len(),
                );
            }
            Err(e) => println!("{:<24} failed: {e}", k.name),
        }
    }
}
