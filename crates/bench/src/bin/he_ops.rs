//! Profiles the BFV evaluator's HE instruction set and records the speedup
//! of the RNS-native double-CRT hot path against the **seed** (BigInt-CRT)
//! baseline constants, writing a `BENCH_he_ops.json` summary at the repo
//! root (gitignored, like `BENCH_synthesis.json`).
//!
//! ```text
//! cargo run -p porcupine-bench --release --bin he_ops [-- [--smoke] [reps]]
//! ```
//!
//! Default mode profiles the `fast_4096` preset (the configuration the
//! cost-model constants are calibrated on) with a median-of-`reps` timer
//! and asserts the representation still decrypts exactly. Measurements
//! cover the steady-state hot path the runner executes: pre-encoded
//! `EvalPlaintext`s, in-place `_assign` variants, and pool-recycled
//! results. `--smoke` runs the identical code path on the small preset
//! with one rep — CI uses it to catch regressions that only break the
//! bench path — and skips the speedup reporting (timings at N = 1024 are
//! not comparable to the N = 4096 baseline constants).
//!
//! Either mode **exits nonzero** if any of `add_ct_ct`, `sub_ct_ct`,
//! `add_ct_pt`, or `sub_ct_pt` falls below 1.0× the seed baseline, or if a
//! hoisted 4-rotation fan (`rot_ct_hoisted_x4`) fails to beat four
//! sequential `rot_ct` calls — the regression gates CI runs via `--smoke`.

use bfv::encoding::BatchEncoder;
use bfv::encrypt::{Decryptor, Encryptor};
use bfv::evaluator::Evaluator;
use bfv::keys::KeyGenerator;
use bfv::params::{BfvContext, BfvParams};
use porcupine_bench::{fmt_us, time_us};
use rand::SeedableRng;

/// The seed repository's `LatencyModel::profiled_default` constants (µs),
/// measured on the pre-double-CRT backend: the fixed baseline every run of
/// this bench compares against, independent of later re-calibrations of
/// `quill::cost`. The seed folded relinearization into `mul_ct_ct`, so the
/// standalone `relinearize` and `mul_ct_ct_raw` ops (tracked since the
/// middle-end split them in the cost model) have no seed entry.
const SEED_BASELINE: [(&str, f64); 7] = [
    ("add_ct_ct", 43.9),
    ("sub_ct_ct", 37.5),
    ("add_ct_pt", 66.9),
    ("sub_ct_pt", 68.4),
    ("mul_ct_pt", 4_596.4),
    ("rot_ct", 14_095.5),
    ("mul_ct_ct", 44_550.8),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let reps: usize = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(if smoke { 1 } else { 9 });

    let params = if smoke {
        BfvParams::test_small()
    } else {
        BfvParams::fast_4096()
    };
    println!(
        "# he_ops: N={}, t={}, {} ciphertext primes, median of {reps} rep(s){}",
        params.poly_degree,
        params.plain_modulus,
        params.moduli.len(),
        if smoke { " [smoke]" } else { "" },
    );
    let ctx = BfvContext::new(params).expect("valid parameters");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let encryptor = Encryptor::new(&ctx, keygen.public_key(&mut rng));
    let decryptor = Decryptor::new(&ctx, keygen.secret_key().clone());
    let encoder = BatchEncoder::new(&ctx);
    let ev = Evaluator::new(&ctx);
    let rk = keygen.relin_key(&mut rng);
    let gk = keygen.galois_keys_for_rotations(&[1, 2, 3, 4], false, &mut rng);

    let t = ctx.params().plain_modulus;
    let half = encoder.row_size();
    let data: Vec<u64> = (0..encoder.slot_count() as u64).map(|i| i % t).collect();
    let pt = encoder.encode(&data);
    let a = encryptor.encrypt(&pt, &mut rng);
    let b = encryptor.encrypt(&pt, &mut rng);

    // Correctness gate before timing anything: the representation must
    // still produce exact slot values through multiply and rotate.
    let prod = ev.multiply_relin(&a, &b, &rk);
    let got = encoder.decode(&decryptor.decrypt(&prod));
    for (i, &g) in got.iter().enumerate().take(64) {
        assert_eq!(g, data[i] * data[i] % t, "multiply slot {i} wrong");
    }
    let rot = ev.rotate_rows(&a, 1, &gk);
    let got = encoder.decode(&decryptor.decrypt(&rot));
    for i in 0..64 {
        assert_eq!(got[i], data[(i + 1) % half], "rotate slot {i} wrong");
    }
    // Hoisted rotation must decrypt identically to the sequential path
    // before its timings mean anything.
    let hd = ev.hoist(&a);
    let got = encoder.decode(&decryptor.decrypt(&ev.rotate_rows_hoisted(&a, &hd, 1, &gk)));
    for i in 0..64 {
        assert_eq!(
            got[i],
            data[(i + 1) % half],
            "hoisted rotate slot {i} wrong"
        );
    }
    ev.recycle_hoisted(hd);
    // A size-3 ciphertext for the standalone relinearize measurement; gate
    // its correctness too (relin must not change any decrypted slot).
    let prod3 = ev.multiply(&a, &b);
    let got = encoder.decode(&decryptor.decrypt(&ev.relinearize(&prod3, &rk)));
    for (i, &g) in got.iter().enumerate().take(64) {
        assert_eq!(g, data[i] * data[i] % t, "relinearize slot {i} wrong");
    }

    // The steady-state hot path the runner executes: pre-encoded
    // `EvalPlaintext`s, in-place `_assign` variants on warm accumulators,
    // and results recycled into the scratch pool so no measurement pays a
    // cold allocation. Warm the pool with one untimed pass first.
    let ept = ev.preencode(&pt);
    let mut acc = a.clone();
    let mut acc_rot = a.clone();
    ev.recycle(ev.multiply_relin(&a, &b, &rk));
    ev.recycle(ev.multiply(&a, &b));
    ev.recycle(ev.relinearize(&prod3, &rk));
    ev.rotate_rows_assign(&mut acc_rot, 1, &gk);

    let measured: Vec<(&str, f64)> = vec![
        (
            "add_ct_ct",
            time_us(reps, || {
                ev.add_assign(std::hint::black_box(&mut acc), &b);
            }),
        ),
        (
            "sub_ct_ct",
            time_us(reps, || {
                ev.sub_assign(std::hint::black_box(&mut acc), &b);
            }),
        ),
        (
            "add_ct_pt",
            time_us(reps, || {
                ev.add_plain_assign(std::hint::black_box(&mut acc), &ept);
            }),
        ),
        (
            "sub_ct_pt",
            time_us(reps, || {
                ev.sub_plain_assign(std::hint::black_box(&mut acc), &ept);
            }),
        ),
        (
            "mul_ct_pt",
            time_us(reps, || {
                ev.mul_plain_assign(std::hint::black_box(&mut acc), &ept);
            }),
        ),
        (
            "rot_ct",
            time_us(reps, || {
                ev.rotate_rows_assign(std::hint::black_box(&mut acc_rot), 1, &gk);
            }),
        ),
        // The shared digit decomposition a rotation fan pays once…
        (
            "rot_hoist_setup",
            time_us(reps, || {
                ev.recycle_hoisted(std::hint::black_box(ev.hoist(&a)));
            }),
        ),
        // …and the per-Galois-element accumulate each member then pays.
        ("rot_hoisted", {
            let hd = ev.hoist(&a);
            let us = time_us(reps, || {
                ev.recycle(std::hint::black_box(
                    ev.rotate_rows_hoisted(&a, &hd, 1, &gk),
                ));
            });
            ev.recycle_hoisted(hd);
            us
        }),
        // A 4-rotation fan end to end (hoist + 4 accumulates), the shape
        // box-blur/gx/gy execute; gated below against 4 sequential rot_ct.
        (
            "rot_ct_hoisted_x4",
            time_us(reps, || {
                let hd = ev.hoist(&a);
                for steps in 1..=4 {
                    ev.recycle(std::hint::black_box(
                        ev.rotate_rows_hoisted(&a, &hd, steps, &gk),
                    ));
                }
                ev.recycle_hoisted(hd);
            }),
        ),
        (
            "mul_ct_ct",
            time_us(reps, || {
                ev.recycle(std::hint::black_box(ev.multiply_relin(&a, &b, &rk)));
            }),
        ),
        (
            "mul_ct_ct_raw",
            time_us(reps, || {
                ev.recycle(std::hint::black_box(ev.multiply(&a, &b)));
            }),
        ),
        (
            "relinearize",
            time_us(reps, || {
                ev.recycle(std::hint::black_box(ev.relinearize(&prod3, &rk)));
            }),
        ),
        // The once-per-plaintext encode cost the cached API amortizes —
        // what `add_ct_pt` used to pay on every single op.
        (
            "pt_encode",
            time_us(reps, || {
                std::hint::black_box(ev.preencode(&pt));
            }),
        ),
    ];

    let seed_us = |name: &str| -> Option<f64> {
        SEED_BASELINE
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, us)| us)
    };
    println!(
        "{:<14} {:>12} {:>12} {:>9}",
        "op", "measured", "seed", "speedup"
    );
    for (name, us) in &measured {
        match seed_us(name) {
            Some(baseline) => println!(
                "{name:<14} {:>12} {:>12} {:>8.2}x",
                fmt_us(*us),
                fmt_us(baseline),
                baseline / us.max(1e-9),
            ),
            None => println!("{name:<14} {:>12} {:>12} {:>9}", fmt_us(*us), "—", "—"),
        }
    }

    let path = "BENCH_he_ops.json";
    std::fs::write(path, summary_json(&ctx, reps, smoke, &measured, seed_us))
        .expect("write BENCH_he_ops.json");
    let speedup = |name: &str| {
        let us = measured.iter().find(|(n, _)| *n == name).unwrap().1;
        seed_us(name).expect("seeded op") / us.max(1e-9)
    };
    if smoke {
        println!("\nwrote {path} (smoke mode: speedups vs the N=4096 baseline are not meaningful)");
    } else {
        println!(
            "\nwrote {path}: mul_ct_ct {:.2}x, rot_ct {:.2}x vs seed profiled_default",
            speedup("mul_ct_ct"),
            speedup("rot_ct"),
        );
    }
    // Regression gates. The plaintext ops regressed to ~0.34x of the seed
    // when the double-CRT change made them re-encode per call, and the
    // ct-ct ops regressed behind a non-inlining `fn`-pointer loop; none of
    // the componentwise ops may fall below the seed baseline again.
    let mut failed = false;
    for op in ["add_ct_ct", "sub_ct_ct", "add_ct_pt", "sub_ct_pt"] {
        let s = speedup(op);
        if s < 1.0 {
            eprintln!("REGRESSION: {op} at {s:.2}x of the seed baseline (must be >= 1.0x)");
            failed = true;
        }
    }
    // Hoisting gate (both modes): a hoisted 4-fan must beat 4 sequential
    // rotations, else the grouped lowering the cost model credits is a
    // pessimization.
    let get = |name: &str| measured.iter().find(|(n, _)| *n == name).unwrap().1;
    let (fan, seq) = (get("rot_ct_hoisted_x4"), 4.0 * get("rot_ct"));
    if fan >= seq {
        eprintln!(
            "REGRESSION: rot_ct_hoisted_x4 at {} vs {} for 4 sequential rot_ct",
            fmt_us(fan),
            fmt_us(seq),
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

/// Hand-rolled JSON (the workspace is offline; no serde). Op names are
/// ASCII identifiers, so no string escaping is needed.
fn summary_json(
    ctx: &BfvContext,
    reps: usize,
    smoke: bool,
    measured: &[(&str, f64)],
    seed_us: impl Fn(&str) -> Option<f64>,
) -> String {
    let mut s = String::from("{\n");
    // This bench is pinned to BFV — the seed baseline it reports speedups
    // against was measured there, and the aux-base machinery it profiles is
    // BFV's — but the artifact says so explicitly (BGV instruction
    // latencies come from `profile_latency`, which covers both schemes).
    s.push_str("  \"scheme\": \"bfv\",\n");
    s.push_str(&format!(
        "  \"poly_degree\": {},\n  \"plain_modulus\": {},\n  \"ct_primes\": {},\n  \"aux_primes\": {},\n  \"reps\": {reps},\n  \"smoke\": {smoke},\n",
        ctx.params().poly_degree,
        ctx.params().plain_modulus,
        ctx.ring().num_primes(),
        ctx.aux_ring().num_primes(),
    ));
    s.push_str("  \"ops\": [\n");
    for (i, (name, us)) in measured.iter().enumerate() {
        let comma = if i + 1 == measured.len() { "" } else { "," };
        match seed_us(name) {
            Some(baseline) => s.push_str(&format!(
                "    {{\"name\": \"{name}\", \"us\": {us:.1}, \"seed_us\": {baseline:.1}, \"speedup\": {:.3}}}{comma}\n",
                baseline / us.max(1e-9),
            )),
            // Ops the seed never measured separately (relinearize and the
            // raw multiply) carry a null baseline.
            None => s.push_str(&format!(
                "    {{\"name\": \"{name}\", \"us\": {us:.1}, \"seed_us\": null, \"speedup\": null}}{comma}\n",
            )),
        }
    }
    s.push_str("  ],\n");
    let get = |name: &str| measured.iter().find(|(n, _)| *n == name).unwrap().1;
    s.push_str(&format!(
        "  \"mul_ct_ct_speedup\": {:.3},\n  \"rot_ct_speedup\": {:.3}\n}}\n",
        seed_us("mul_ct_ct").expect("seeded") / get("mul_ct_ct").max(1e-9),
        seed_us("rot_ct").expect("seeded") / get("rot_ct").max(1e-9),
    ));
    s
}
