//! Measures what the optimizing middle-end buys: per-kernel instruction
//! counts (total / relin / rotation), modeled latency, and measured
//! encrypted latency at `-O0` versus `-O2`, over every paper kernel
//! baseline and the Sobel/Harris multistep pipelines.
//!
//! ```text
//! cargo run -p porcupine-bench --release --bin fig_opt [-- [--smoke] [runs]]
//! ```
//!
//! Runs on the scheme selected by `PORCUPINE_SCHEME` (default BFV) — the
//! same knob the test suites honor — with the matching per-scheme latency
//! model **scaled to the resolved parameter set** (the profiled constants
//! are calibrated at N = 4096 with 3 primes; `LatencyModel::scaled_to`
//! extrapolates them, so `model_ratio` stays meaningful under `--params`),
//! and tags the recorded JSON with the scheme, the resolved N and prime
//! count, and the `PORCUPINE_EVAL_JOBS` worker count. Default mode times
//! `runs` (default 5) executions per version on the `fast_4096` preset.
//! Every workload is correctness-gated first: the `-O0` and `-O2`
//! lowerings must decrypt bit-identically. `--smoke` uses the small preset
//! with one run (CI-speed; measured times are then not meaningful, but
//! counts, modeled latency, and the bit-identical gate are). Writes a
//! `BENCH_fig_opt.json` summary at the repo root (gitignored, like the
//! other BENCH artifacts).

use bfv::params::{BfvParams, ParamPolicy};
use porcupine::codegen::Runner;
use porcupine::opt::{optimize_with, OptLevel};
use porcupine::scheme::{BfvScheme, BgvScheme, Scheme};
use porcupine_bench::{fmt_us, median};
use porcupine_kernels::{all_direct, composite, stencil};
use quill::cost::LatencyModel;
use quill::program::Program;
use quill::scheme::SchemeId;
use rand::{Rng, SeedableRng};
use std::time::Instant;

struct Version {
    prog: Program,
    modeled_us: f64,
    measured_us: f64,
}

struct Row {
    name: String,
    o0: Version,
    o2: Version,
}

fn main() {
    let (policy, args) = porcupine_bench::parse_params(std::env::args().skip(1).collect());
    let smoke = args.iter().any(|a| a == "--smoke");
    let runs: usize = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(if smoke { 1 } else { 5 });
    match porcupine::scheme::default_scheme() {
        SchemeId::Bfv => run::<BfvScheme>(policy, smoke, runs),
        SchemeId::Bgv => run::<BgvScheme>(policy, smoke, runs),
    }
}

fn run<S: Scheme>(policy: Option<ParamPolicy>, smoke: bool, runs: usize) {
    let img = stencil::default_image();
    let mut workloads: Vec<(String, Program, usize)> = all_direct()
        .into_iter()
        .map(|k| (k.name.to_string(), k.baseline, k.spec.n))
        .collect();
    workloads.push((
        "sobel (multi-step)".into(),
        composite::sobel_baseline(img),
        img.slots(),
    ));
    workloads.push((
        "harris (multi-step)".into(),
        composite::harris_baseline(img),
        img.slots(),
    ));

    let legality = S::ID.legality();
    // `--params auto|paper` overrides the fast preset: auto picks the one
    // set covering every workload's noise requirement under *this* scheme's
    // model (charged on the noisier -O0 lowerings).
    let covering = |policy: &ParamPolicy| {
        let lowered: Vec<(Program, usize)> = workloads
            .iter()
            .map(|(_, raw, n)| (optimize_with(raw, OptLevel::O0, &legality).0, *n))
            .collect();
        let refs: Vec<(&Program, usize)> = lowered.iter().map(|(p, n)| (p, *n)).collect();
        porcupine_bench::params_covering_for(S::ID, &refs, 65537, policy)
    };
    let params = match &policy {
        Some(policy) => covering(policy),
        // The historical fast presets hold every workload under BFV; BGV's
        // noise doubles per multiply and exhausts them on the depth-2
        // kernels, so any other scheme defaults to its own covering auto
        // selection instead of silently measuring garbage.
        None if S::ID == SchemeId::Bfv => {
            if smoke {
                BfvParams::test_small()
            } else {
                BfvParams::fast_4096()
            }
        }
        None => covering(&ParamPolicy::auto()),
    };
    println!(
        "# fig_opt: -O0 vs -O2, scheme={}, N={}, Q={} primes, {runs} timed run(s) per version{}{}",
        S::ID,
        params.poly_degree,
        params.moduli.len(),
        if smoke { " [smoke]" } else { "" },
        if policy.is_some() { " [--params]" } else { "" },
    );
    let (bench_n, bench_primes) = (params.poly_degree, params.moduli.len());
    let eval_jobs = porcupine::codegen::default_eval_jobs().get();
    let ctx = S::context(params).expect("valid parameters");
    let model = LatencyModel::profiled_for(S::ID).scaled_to(bench_n, bench_primes);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0F70);
    let keygen = S::keygen(&ctx, &mut rng);
    let encryptor = S::encryptor(&ctx, &keygen, &mut rng);
    let decryptor = S::decryptor(&ctx, &keygen);

    println!(
        "{:<24} {:>14} {:>14} {:>11} {:>11} {:>10} {:>10} {:>8}",
        "kernel",
        "O0 n/relin/rot",
        "O2 n/relin/rot",
        "O0 model",
        "O2 model",
        "O0 meas",
        "O2 meas",
        "speedup"
    );
    let mut rows: Vec<Row> = Vec::new();
    for (name, raw, n) in workloads {
        let (o0, _) = optimize_with(&raw, OptLevel::O0, &legality);
        let (o2, _) = optimize_with(&raw, OptLevel::O2, &legality);
        assert_eq!(
            optimize_with(&o2, OptLevel::O2, &legality).1.total_rewrites,
            0,
            "{name}: -O2 must be idempotent"
        );

        let runner = Runner::<'_, S>::for_programs(&ctx, &keygen, &[&o0, &o2], &mut rng);
        let encoder = runner.encoder();
        let ct_model: Vec<Vec<u64>> = (0..raw.num_ct_inputs)
            .map(|_| (0..n).map(|_| rng.gen_range(0..64)).collect())
            .collect();
        let pt_model: Vec<Vec<u64>> = (0..raw.num_pt_inputs)
            .map(|_| (0..n).map(|_| rng.gen_range(0..64)).collect())
            .collect();
        let cts: Vec<S::Ciphertext> = ct_model
            .iter()
            .map(|v| S::encrypt(&encryptor, &S::encode(encoder, v), &mut rng))
            .collect();
        // Plaintext inputs are encoded once per workload, outside the
        // timed loop — the encode-once usage the runner is built for (the
        // cost model prices HE ops, not encodes). The correctness-gate
        // runs double as warm-up for the splat cache and scratch pool.
        let epts: Vec<S::EvalPlaintext> = pt_model
            .iter()
            .map(|v| S::preencode(runner.evaluator(), &S::encode(encoder, v)))
            .collect();
        let ct_refs: Vec<&S::Ciphertext> = cts.iter().collect();
        let pt_refs: Vec<&S::EvalPlaintext> = epts.iter().collect();

        // Correctness gate: bit-identical decryption across levels.
        let decode = |p: &Program| {
            let out = runner.run_encoded(p, &ct_refs, &pt_refs);
            let budget = S::noise_budget(&decryptor, &out);
            assert!(budget > 0, "{name}: noise budget exhausted ({budget})");
            S::decode(encoder, &S::decrypt(&decryptor, &out))
        };
        assert_eq!(
            decode(&o0),
            decode(&o2),
            "{name}: -O0/-O2 decryptions differ"
        );

        let time = |p: &Program| {
            let mut samples = Vec::with_capacity(runs);
            for _ in 0..runs {
                let start = Instant::now();
                std::hint::black_box(runner.run_encoded(p, &ct_refs, &pt_refs));
                samples.push(start.elapsed().as_secs_f64() * 1e6);
            }
            median(samples)
        };
        let version = |p: &Program, measured_us: f64| Version {
            modeled_us: model.program_latency(p),
            measured_us,
            prog: p.clone(),
        };
        let row = Row {
            name: name.clone(),
            o0: version(&o0, time(&o0)),
            o2: version(&o2, time(&o2)),
        };
        println!(
            "{:<24} {:>8}/{}/{} {:>8}/{}/{} {:>11} {:>11} {:>10} {:>10} {:>7.2}x",
            row.name,
            row.o0.prog.len(),
            row.o0.prog.relin_count(),
            row.o0.prog.rot_count(),
            row.o2.prog.len(),
            row.o2.prog.relin_count(),
            row.o2.prog.rot_count(),
            fmt_us(row.o0.modeled_us),
            fmt_us(row.o2.modeled_us),
            fmt_us(row.o0.measured_us),
            fmt_us(row.o2.measured_us),
            row.o0.measured_us / row.o2.measured_us.max(1e-9),
        );
        rows.push(row);
    }

    let path = "BENCH_fig_opt.json";
    std::fs::write(
        path,
        summary_json(S::ID, smoke, runs, bench_n, bench_primes, eval_jobs, &rows),
    )
    .expect("write BENCH_fig_opt.json");
    if !smoke {
        // How honest the cost model is about what the backend executes:
        // with the allocation-free runner this should sit near 1.0 (the
        // pre-pool runner ran ~5x over model).
        let worst = rows
            .iter()
            .map(|r| r.o2.measured_us / r.o2.modeled_us.max(1e-9))
            .fold(0.0f64, f64::max);
        println!("worst -O2 measured/modeled ratio: {worst:.2}x");
    }
    println!("\nwrote {path}");
}

/// Hand-rolled JSON (the workspace is offline; no serde). Kernel names are
/// ASCII identifiers, so no string escaping is needed.
fn summary_json(
    scheme: SchemeId,
    smoke: bool,
    runs: usize,
    n: usize,
    primes: usize,
    eval_jobs: usize,
    rows: &[Row],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"scheme\": \"{scheme}\",\n  \"smoke\": {smoke},\n  \"runs\": {runs},\n  \"eval_jobs\": {eval_jobs},\n"
    ));
    s.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let v = |v: &Version| {
            format!(
                "{{\"instrs\": {}, \"relins\": {}, \"rots\": {}, \"modeled_us\": {:.1}, \"measured_us\": {:.1}, \"model_ratio\": {:.3}}}",
                v.prog.len(),
                v.prog.relin_count(),
                v.prog.rot_count(),
                v.modeled_us,
                v.measured_us,
                v.measured_us / v.modeled_us.max(1e-9),
            )
        };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {n}, \"primes\": {primes}, \"o0\": {}, \"o2\": {}, \"measured_speedup\": {:.4}}}{}\n",
            r.name,
            v(&r.o0),
            v(&r.o2),
            r.o0.measured_us / r.o2.measured_us.max(1e-9),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
