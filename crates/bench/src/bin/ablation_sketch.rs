//! Regenerates the **§7.4 sketch ablation**: local-rotate sketches (the
//! paper's contribution) vs explicit-rotation sketches (rotations as
//! free-standing components the solver must schedule).
//!
//! The paper reports box blur synthesizing in ~10 s (local) vs ~3 s
//! (explicit) but Gx at ~70 s (local) vs >30 min (explicit): explicit
//! rotations scale badly because the component count — and with it the
//! search depth — grows. Our enumerative engine shows the same shape at
//! smaller absolute times.
//!
//! ```text
//! cargo run -p porcupine-bench --release --bin ablation_sketch [timeout_secs] [--jobs N]
//! ```

use porcupine::cegis::{synthesize, SynthesisOptions};
use porcupine::sketch::Sketch;
use porcupine_bench::parse_jobs;
use porcupine_kernels::{stencil, PaperKernel};
use std::time::Duration;

fn run(name: &str, kernel: &PaperKernel, sketch: &Sketch, options: &SynthesisOptions) {
    match synthesize(&kernel.spec, sketch, options) {
        Ok(r) => println!(
            "{:<28} initial {:>8.2}s  total {:>8.2}s  instrs {:>2}  optimal {}",
            name,
            r.time_to_initial.as_secs_f64(),
            r.time_total.as_secs_f64(),
            r.program.len(),
            r.proved_optimal,
        ),
        Err(e) => println!("{name:<28} {e}"),
    }
}

fn main() {
    let (jobs, args) = parse_jobs(std::env::args().collect());
    let timeout = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(120u64);
    let options = SynthesisOptions {
        timeout: Duration::from_secs(timeout),
        parallelism: jobs,
        ..SynthesisOptions::default()
    };
    println!("# §7.4 ablation: local-rotate vs explicit-rotation sketches (timeout {timeout}s)");
    let img = stencil::default_image();
    for k in [stencil::box_blur(img), stencil::gx(img)] {
        run(
            &format!("{} (local rotate)", k.name),
            &k,
            &k.sketch,
            &options,
        );
        // Explicit mode needs extra components for the materialized
        // rotations: box blur 2→4, gx 3→7.
        let extra = match k.name {
            "box-blur" => 2,
            _ => 4,
        };
        let mut explicit = k.sketch.clone().with_explicit_rotations();
        explicit.max_components += extra;
        run(
            &format!("{} (explicit rotate)", k.name),
            &k,
            &explicit,
            &options,
        );
    }
}
