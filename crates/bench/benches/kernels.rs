//! Criterion benchmarks of baseline vs synthesized kernels on the BFV
//! backend — the per-kernel measurements behind Figure 4 (the
//! `fig4_speedup` binary prints the summary table; this bench gives
//! statistically grounded per-version numbers).

use bfv::encoding::Plaintext;
use bfv::encrypt::{Ciphertext, Encryptor};
use bfv::keys::KeyGenerator;
use bfv::params::{BfvContext, BfvParams};
use criterion::{criterion_group, criterion_main, Criterion};
use porcupine::cegis::{synthesize, SynthesisOptions};
use porcupine::codegen::BfvRunner;
use porcupine_kernels::all_direct;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn kernel_latency(c: &mut Criterion) {
    let ctx = BfvContext::new(BfvParams::fast_4096()).expect("valid parameters");
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let encryptor = Encryptor::new(&ctx, keygen.public_key(&mut rng));
    let options = SynthesisOptions {
        timeout: Duration::from_secs(60),
        ..SynthesisOptions::default()
    };

    // Keep the bench suite's wall-clock sane: the three headline kernels.
    for k in all_direct()
        .into_iter()
        .filter(|k| ["box-blur", "gx", "dot-product"].contains(&k.name))
    {
        let synth = synthesize(&k.spec, &k.sketch, &options)
            .unwrap_or_else(|e| panic!("{}: {e}", k.name))
            .optimized;
        // The backend executes lowered IR; the baseline goes through the
        // same middle-end level as the synthesized program.
        let (baseline, _) = porcupine::opt::optimize(&k.baseline, options.opt_level);
        let programs = [&baseline, &synth];
        let runner = BfvRunner::for_programs(&ctx, &keygen, &programs, &mut rng);
        let encoder = runner.encoder();

        let ct_model: Vec<Vec<u64>> = (0..k.spec.num_ct_inputs)
            .map(|_| (0..k.spec.n).map(|_| rng.gen_range(0..256)).collect())
            .collect();
        let pt_model: Vec<Vec<u64>> = (0..k.spec.num_pt_inputs)
            .map(|_| (0..k.spec.n).map(|_| rng.gen_range(0..256)).collect())
            .collect();
        let cts: Vec<Ciphertext> = ct_model
            .iter()
            .map(|v| encryptor.encrypt(&encoder.encode(v), &mut rng))
            .collect();
        let pts: Vec<Plaintext> = pt_model.iter().map(|v| encoder.encode(v)).collect();
        let ct_refs: Vec<&Ciphertext> = cts.iter().collect();
        let pt_refs: Vec<&Plaintext> = pts.iter().collect();

        let mut group = c.benchmark_group(k.name);
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(5));
        group.bench_function("baseline", |b| {
            b.iter(|| runner.run(&baseline, &ct_refs, &pt_refs))
        });
        group.bench_function("synthesized", |b| {
            b.iter(|| runner.run(&synth, &ct_refs, &pt_refs))
        });
        group.finish();
    }
}

criterion_group!(benches, kernel_latency);
criterion_main!(benches);
