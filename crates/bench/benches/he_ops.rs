//! Criterion micro-benchmarks of every BFV evaluator operation — the
//! measured backing for Quill's latency model (the paper's SEAL profiling,
//! §4.2).

use bfv::encoding::BatchEncoder;
use bfv::encrypt::Encryptor;
use bfv::evaluator::Evaluator;
use bfv::keys::KeyGenerator;
use bfv::params::{BfvContext, BfvParams};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use std::time::Duration;

fn he_ops(c: &mut Criterion) {
    let ctx = BfvContext::new(BfvParams::fast_4096()).expect("valid parameters");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let encryptor = Encryptor::new(&ctx, keygen.public_key(&mut rng));
    let encoder = BatchEncoder::new(&ctx);
    let ev = Evaluator::new(&ctx);
    let rk = keygen.relin_key(&mut rng);
    let gk = keygen.galois_keys_for_rotations(&[1], false, &mut rng);

    let data: Vec<u64> = (0..encoder.slot_count() as u64).collect();
    let pt = encoder.encode(&data);
    let a = encryptor.encrypt(&pt, &mut rng);
    let b = encryptor.encrypt(&pt, &mut rng);

    let mut group = c.benchmark_group("he_ops_n4096");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("add_ct_ct", |bch| bch.iter(|| ev.add(&a, &b)));
    group.bench_function("sub_ct_ct", |bch| bch.iter(|| ev.sub(&a, &b)));
    group.bench_function("add_ct_pt", |bch| bch.iter(|| ev.add_plain(&a, &pt)));
    group.bench_function("mul_ct_pt", |bch| bch.iter(|| ev.mul_plain(&a, &pt)));
    group.bench_function("rotate_rows", |bch| bch.iter(|| ev.rotate_rows(&a, 1, &gk)));
    group.bench_function("mul_ct_ct_relin", |bch| {
        bch.iter(|| ev.multiply_relin(&a, &b, &rk))
    });
    group.finish();
}

criterion_group!(benches, he_ops);
criterion_main!(benches);
