//! Criterion benchmarks of the synthesis engine itself (Table 3's
//! time-to-solution, for the fast kernels where statistical repetition is
//! affordable).

use criterion::{criterion_group, criterion_main, Criterion};
use porcupine::cegis::{synthesize, SynthesisOptions};
use porcupine_kernels::{pointwise, reduction, stencil};
use std::time::Duration;

fn synthesis_time(c: &mut Criterion) {
    let options = SynthesisOptions {
        timeout: Duration::from_secs(60),
        ..SynthesisOptions::default()
    };
    let img = stencil::default_image();
    let kernels = vec![
        stencil::box_blur(img),
        reduction::dot_product(8),
        reduction::hamming_distance(4),
        pointwise::linear_regression(8),
        pointwise::polynomial_regression(8),
    ];
    let mut group = c.benchmark_group("synthesis");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    for k in kernels {
        group.bench_function(k.name, |b| {
            b.iter(|| synthesize(&k.spec, &k.sketch, &options).expect("synthesizes"))
        });
    }
    group.finish();
}

criterion_group!(benches, synthesis_time);
criterion_main!(benches);
