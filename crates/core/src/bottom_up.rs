//! Bottom-up synthesis over an observational-equivalence term bank.
//!
//! The top-down DFS in [`crate::search`] re-derives every sub-program at
//! every prefix of every deepening level; its cost is roughly
//! `breadth ^ depth`, which is the ~10–12 instruction scaling wall of
//! §6.3. This module grows the same program space the other way around: a
//! **bank** of terms, level by level, where level `d` holds terms whose
//! DAG contains exactly `d` components (shared sub-terms counted once —
//! the reduction step `t + rot(t, s)` has size `|t| + 1`, not `2|t| + 1`).
//! Each candidate term is evaluated on the CEGIS examples exactly once and
//! the bank is deduplicated by that output vector (observational
//! equivalence), keeping the cheapest builder per value class, so the
//! per-level cost is polynomial in the bank size instead of exponential in
//! the depth.
//!
//! # Bank growth
//!
//! * Level 0 is the ciphertext inputs. Finalizing level `d` drains the
//!   pending candidates of size `d`, drops values already in the bank,
//!   and retains the canonically cheapest `MDEPTH_BUCKET_CAP` per
//!   multiplicative-depth bucket (bucketing keeps multiply-bearing terms
//!   alive next to floods of cheap additive terms).
//! * Every newly finalized term `x` is then *expanded*: combined, under
//!   every sketch op and operand rotation, with itself, with every input,
//!   and with the `CROSS_POOL` canonically cheapest bank terms older than
//!   `x`. Self-pairs and input-pairs are never capped — they are linear in
//!   the bank and are exactly what reductions and stencils are made of;
//!   only the quadratic cross-pairs go through the pool.
//! * A candidate whose size equals the bank ceiling can never be consumed
//!   further, so it is only checked against the masked target (the DFS's
//!   goal-directed last level) and otherwise discarded without ever
//!   materializing its full value vector.
//!
//! The caps make the strategy **incomplete**: a returned
//! [`BottomUpOutcome::Exhausted`] is *not* a proof that the sketch has no
//! program, which is why CEGIS falls back to the complete DFS before
//! reporting `SketchTooRestrictive`.
//!
//! # Determinism contract
//!
//! Expansion work is partitioned across workers one *unit* (one newly
//! finalized term) at a time, claimed from an atomic counter exactly like
//! the DFS's subtree queue; each unit's candidates are produced in a fixed
//! enumeration order and merged in unit order, and every later step
//! (dedup, retention sort, goal selection by `(cost, serialization)`) is
//! sequential and keyed on deterministic ranks. The same query therefore
//! returns the byte-identical program at any thread count, matching the
//! DFS driver's contract. Only a deadline expiry is timing-dependent.

use crate::search::{count_search_invocation, Comp, SearchContext};
use crate::sketch::{ArithOp, SketchMode, SketchOp};
use quill::program::Program;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Instant;

/// Retained terms per (level, multiplicative depth) bucket. Bucketing by
/// mdepth keeps expensive multiply-bearing chains (what reductions need)
/// from being evicted by floods of cheap additive terms.
const MDEPTH_BUCKET_CAP: usize = 1024;

/// Extra retention budget per (level, mdepth) for **strict chain terms**:
/// terms whose every node combines the previous chain node with *itself*
/// (`a + rot(a, s)`) or applies a unary op, seeded by input-only nodes —
/// the log-depth reduction trees and squared-difference chains
/// (`(x−y)·(x−y)` then rotate-add) that every deep paper kernel is built
/// from. Under the profiled latency model those rotation-heavy terms rank
/// *below* floods of cheap rotation-free combinations, so cost-ranked
/// retention alone evicts exactly the terms a deep reduction needs; strict
/// self-chains, by contrast, collapse under value dedup (rotation-free
/// steps are scalar multiples), so the dedicated bucket stays small while
/// keeping `sum-reduce`-shaped goals reachable at any depth the bank can
/// hold.
const CHAIN_BUCKET_CAP: usize = 4096;

/// Size of the cross-pair pool: the canonically cheapest bank terms that
/// participate in term × term combinations. Self-pairs and pairs with an
/// input are always generated and do not count against this.
const CROSS_POOL: usize = 128;

/// At most this many goal candidates are materialized when selecting the
/// canonical winner at a level (sorted by deterministic rank first, so the
/// truncation itself is deterministic).
const GOAL_CAP: usize = 4096;

/// Deadline-check cadence inside an expansion unit (candidates between
/// wall-clock reads).
const TICK_MASK: u64 = 0x3FF;

/// Why the bottom-up search stopped.
#[derive(Debug)]
pub(crate) enum BottomUpOutcome {
    /// A program matching the examples on the masked slots, at the
    /// smallest bank level that contains one; canonical minimum by
    /// `(cost, serialization)` among that level's goal terms.
    Found { program: Program, components: usize },
    /// The bank stopped growing (or the ceiling was reached) without a
    /// goal. **Not** a completeness proof — the bank is capped; the caller
    /// must fall back to the DFS for a real `Unsat`.
    Exhausted,
    /// The deadline expired mid-growth.
    Timeout,
}

/// One term node; operand ids are bank term ids (`0..num_inputs` are the
/// ciphertext inputs).
#[derive(Debug, Clone, PartialEq)]
enum Node {
    Input,
    Arith {
        op_idx: u32,
        lhs: (u32, i64),
        rhs: Option<(u32, i64)>,
    },
    Rot {
        src: u32,
        amount: i64,
    },
}

/// Deterministic structural tie-break for candidates of equal cost.
fn node_key(n: &Node) -> (u32, u32, i64, u32, i64) {
    match n {
        Node::Input => (u32::MAX, u32::MAX, 0, 0, 0),
        Node::Arith { op_idx, lhs, rhs } => (
            *op_idx,
            lhs.0,
            lhs.1,
            rhs.map(|r| r.0).unwrap_or(u32::MAX),
            rhs.map(|r| r.1).unwrap_or(0),
        ),
        Node::Rot { src, amount } => (u32::MAX - 1, *src, *amount, 0, 0),
    }
}

/// A candidate term (finalized or pending). `support` is the sorted set of
/// non-input bank ids in its DAG — for a finalized term it includes the
/// term itself, for a pending candidate only its operands' DAGs — so
/// `support.len() + 1` is a pending candidate's true component count.
#[derive(Debug, Clone)]
struct Cand {
    node: Node,
    support: Vec<u32>,
    mdepth: u32,
    /// Additive cost estimate (operand costs + op + operand rotations);
    /// over-counts shared sub-terms, used only for deterministic ranking.
    /// Exact DFS-consistent costs are computed at goal selection.
    cost: f64,
    /// Pure chain term: every node combines one (chain) term with itself
    /// or an input. See [`CHAIN_BUCKET_CAP`].
    chain: bool,
}

fn cand_rank(c: &Cand) -> (u64, (u32, u32, i64, u32, i64)) {
    (c.cost.to_bits(), node_key(&c.node))
}

/// What one expansion emits: a candidate, its value vector (absent for
/// ceiling-level goal checks), and whether it hit the masked target.
struct GenCand {
    cand: Cand,
    vec: Option<Vec<u64>>,
    goal: bool,
}

/// A finalized bank term.
struct BankTerm {
    node: Node,
    /// Sorted non-input DAG node ids, including the term's own id (ids are
    /// assigned in finalization order, so this is also a topological
    /// order).
    support: Vec<u32>,
    mdepth: u32,
    cost: f64,
    is_rot: bool,
    /// See [`Cand::chain`].
    chain: bool,
}

struct Bank<'s, 'a> {
    ctx: &'s SearchContext<'a>,
    /// Operand rotation amounts, 0 first (`[0]` in explicit mode).
    rots: Vec<i64>,
    terms: Vec<BankTerm>,
    /// `rotated[id][k]` = the term's value rotated by `rots[k]`
    /// (`rotated[id][0]` is the value itself).
    rotated: Vec<Vec<Vec<u64>>>,
    /// Value vectors already represented in the bank (inputs included).
    classes: HashSet<Vec<u64>>,
    /// Bank ids by exact component count (level 0 = inputs).
    levels: Vec<Vec<u32>>,
    /// Pending candidates by size, deduplicated by value vector (keeping
    /// the canonically cheapest builder per class).
    pending: Vec<HashMap<Vec<u64>, Cand>>,
    /// Target-matching candidates by size (only sizes ≥ `min_c`).
    goals: Vec<Vec<Cand>>,
    /// Cross-pair pool, sorted by id ascending.
    pool: Vec<u32>,
    min_c: usize,
    max_c: usize,
}

/// Shared wall-clock state for one expansion pass.
struct Ticker<'t> {
    deadline: Option<Instant>,
    timed_out: &'t AtomicBool,
}

impl Ticker<'_> {
    /// Returns `true` once the deadline has fired anywhere.
    fn check(&self, local: &mut u64) -> bool {
        *local += 1;
        if *local & TICK_MASK != 0 {
            return false;
        }
        if self.timed_out.load(Relaxed) {
            return true;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.timed_out.store(true, Relaxed);
                return true;
            }
        }
        false
    }
}

fn union_support(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl<'a> SearchContext<'a> {
    /// Runs the bottom-up term-bank search for a program of `min_c..=max_c`
    /// components. Returns the canonical goal program at the *smallest*
    /// level containing one (mirroring iterative deepening's minimality).
    pub(crate) fn run_bottom_up(
        &self,
        min_c: usize,
        max_c: usize,
        jobs: NonZeroUsize,
    ) -> BottomUpOutcome {
        assert!(max_c >= 1, "a program needs at least one component");
        count_search_invocation();
        let mut bank = Bank::new(self, min_c.max(1), max_c);
        if bank.expand_level(0, jobs).is_err() {
            return BottomUpOutcome::Timeout;
        }
        for d in 1..=max_c {
            let goals = std::mem::take(&mut bank.goals[d]);
            if !goals.is_empty() {
                let (program, components) = bank.select_goal(d, goals);
                return BottomUpOutcome::Found {
                    program,
                    components,
                };
            }
            bank.finalize_level(d);
            if d < max_c && bank.expand_level(d, jobs).is_err() {
                return BottomUpOutcome::Timeout;
            }
            // Nothing new, nothing pending, no goal queued anywhere: the
            // bank cannot grow further.
            let dead = bank.levels[d].is_empty()
                && bank.pending.iter().all(|m| m.is_empty())
                && bank.goals.iter().all(|g| g.is_empty());
            if dead {
                break;
            }
        }
        BottomUpOutcome::Exhausted
    }
}

impl<'s, 'a> Bank<'s, 'a> {
    fn new(ctx: &'s SearchContext<'a>, min_c: usize, max_c: usize) -> Self {
        let rots = if ctx.sketch.mode == SketchMode::ExplicitRotate {
            vec![0]
        } else {
            ctx.sketch.operand_rotations()
        };
        let mut bank = Bank {
            ctx,
            rots,
            terms: Vec::new(),
            rotated: Vec::new(),
            classes: HashSet::new(),
            levels: vec![Vec::new(); max_c + 1],
            pending: vec![HashMap::new(); max_c + 1],
            goals: vec![Vec::new(); max_c + 1],
            pool: Vec::new(),
            min_c,
            max_c,
        };
        for j in 0..ctx.num_inputs {
            let vec: Vec<u64> = ctx
                .examples
                .iter()
                .flat_map(|e| e.ct_inputs[j].iter().copied())
                .collect();
            let id = bank.terms.len() as u32;
            bank.classes.insert(vec.clone());
            bank.rotated.push(
                bank.rots
                    .iter()
                    .map(|&r| ctx.rotate_concat(&vec, r))
                    .collect(),
            );
            bank.terms.push(BankTerm {
                node: Node::Input,
                support: Vec::new(),
                mdepth: 0,
                cost: 0.0,
                is_rot: false,
                chain: true,
            });
            bank.levels[0].push(id);
        }
        bank
    }

    /// Expands every term of `level` against the bank (one unit per term),
    /// in parallel, and merges the candidates in unit order.
    fn expand_level(&mut self, level: usize, jobs: NonZeroUsize) -> Result<(), ()> {
        let ids: Vec<u32> = self.levels[level].clone();
        if ids.is_empty() {
            return Ok(());
        }
        let timed_out = AtomicBool::new(false);
        let ticker = Ticker {
            deadline: self.ctx.deadline,
            timed_out: &timed_out,
        };
        let workers = jobs.get().min(ids.len());
        let results: Vec<Vec<GenCand>> = if workers <= 1 {
            let mut local = 0u64;
            let mut out = Vec::with_capacity(ids.len());
            for &x in &ids {
                match self.expand_unit(x, &ticker, &mut local) {
                    Some(cands) => out.push(cands),
                    None => return Err(()),
                }
            }
            out
        } else {
            let next = AtomicUsize::new(0);
            let collected: Mutex<Vec<(usize, Vec<GenCand>)>> = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for _ in 0..workers {
                    let bank = &*self;
                    let ids = &ids;
                    let next = &next;
                    let collected = &collected;
                    let ticker = &ticker;
                    s.spawn(move || {
                        let mut local = 0u64;
                        loop {
                            let i = next.fetch_add(1, Relaxed);
                            if i >= ids.len() || ticker.timed_out.load(Relaxed) {
                                break;
                            }
                            match bank.expand_unit(ids[i], ticker, &mut local) {
                                Some(cands) => {
                                    collected
                                        .lock()
                                        .expect("bank worker poisoned")
                                        .push((i, cands));
                                }
                                None => break,
                            }
                        }
                    });
                }
            });
            if timed_out.load(Relaxed) {
                return Err(());
            }
            let mut collected = collected.into_inner().expect("bank worker poisoned");
            collected.sort_by_key(|(i, _)| *i);
            debug_assert_eq!(collected.len(), ids.len());
            collected.into_iter().map(|(_, c)| c).collect()
        };
        if timed_out.load(Relaxed) {
            return Err(());
        }
        for unit in results {
            for gc in unit {
                self.route(gc);
            }
        }
        Ok(())
    }

    /// All combinations rooted at `x`: unary sketch ops, `(x, x)`,
    /// `(x, p)`/`(p, x)` for every older partner `p` (inputs always; other
    /// terms only through the cross pool), and explicit rotations.
    /// Candidate order is a pure function of the bank, never of thread
    /// timing.
    fn expand_unit(&self, x: u32, ticker: &Ticker<'_>, local: &mut u64) -> Option<Vec<GenCand>> {
        let mut out = Vec::new();
        let explicit = self.ctx.sketch.mode == SketchMode::ExplicitRotate;
        let num_inputs = self.ctx.num_inputs as u32;
        for (op_idx, sop) in self.ctx.sketch.ops.iter().enumerate() {
            if sop.op.binary_ct() {
                self.expand_pair(op_idx, sop, x, x, &mut out, ticker, local)?;
                for p in 0..num_inputs.min(x) {
                    self.expand_pair(op_idx, sop, x, p, &mut out, ticker, local)?;
                    self.expand_pair(op_idx, sop, p, x, &mut out, ticker, local)?;
                }
                for &p in self.pool.iter().filter(|&&p| p < x) {
                    self.expand_pair(op_idx, sop, x, p, &mut out, ticker, local)?;
                    self.expand_pair(op_idx, sop, p, x, &mut out, ticker, local)?;
                }
            } else {
                let lhs_rots = if !explicit && sop.lhs_rot {
                    self.rots.len()
                } else {
                    1
                };
                for lr in 0..lhs_rots {
                    if ticker.check(local) {
                        return None;
                    }
                    self.emit(op_idx, sop, x, lr, None, &mut out);
                }
            }
        }
        if explicit && !self.terms[x as usize].is_rot {
            for &amount in &self.ctx.sketch.rotation_amounts {
                if ticker.check(local) {
                    return None;
                }
                self.emit_rot(x, amount, &mut out);
            }
        }
        Some(out)
    }

    /// Enumerates the rotation assignments of one ordered operand pair,
    /// with the DFS's commutative symmetry breaks mirrored onto bank ids.
    #[allow(clippy::too_many_arguments)]
    fn expand_pair(
        &self,
        op_idx: usize,
        sop: &SketchOp,
        a: u32,
        b: u32,
        out: &mut Vec<GenCand>,
        ticker: &Ticker<'_>,
        local: &mut u64,
    ) -> Option<()> {
        let explicit = self.ctx.sketch.mode == SketchMode::ExplicitRotate;
        let lhs_rots = if !explicit && sop.lhs_rot {
            self.rots.len()
        } else {
            1
        };
        let rhs_rots = if !explicit && sop.rhs_rot {
            self.rots.len()
        } else {
            1
        };
        let symmetric_holes = sop.lhs_rot == sop.rhs_rot;
        for lr in 0..lhs_rots {
            for rr in 0..rhs_rots {
                if ticker.check(local) {
                    return None;
                }
                if sop.op.commutative() {
                    if symmetric_holes && (b, rr) < (a, lr) {
                        continue;
                    }
                    if !symmetric_holes && self.rots[rr] == 0 && b < a {
                        continue;
                    }
                }
                if matches!(sop.op, ArithOp::SubCtCt) && a == b && lr == rr {
                    continue;
                }
                self.emit(op_idx, sop, a, lr, Some((b, rr)), out);
            }
        }
        Some(())
    }

    /// Builds (or goal-checks) one arithmetic candidate.
    fn emit(
        &self,
        op_idx: usize,
        sop: &SketchOp,
        a: u32,
        lr: usize,
        rhs: Option<(u32, usize)>,
        out: &mut Vec<GenCand>,
    ) {
        let a_term = &self.terms[a as usize];
        let lhs_v = &self.rotated[a as usize][lr];
        let (b_sup, b_md, b_cost, rhs_v, rr) = match rhs {
            Some((b, rr)) => {
                let bt = &self.terms[b as usize];
                let extra = if b != a { bt.cost } else { 0.0 };
                (
                    bt.support.as_slice(),
                    bt.mdepth,
                    extra,
                    Some(&self.rotated[b as usize][rr]),
                    rr,
                )
            }
            None => (&[] as &[u32], 0, 0.0, None, 0),
        };
        // Cheapest possible size: the larger operand DAG plus this node.
        let floor = a_term.support.len().max(b_sup.len()) + 1;
        if floor > self.max_c {
            return;
        }
        // Ceiling fast path: a candidate that can only be goal-sized is
        // checked on the masked slots before anything is allocated.
        let at_ceiling_for_sure = floor == self.max_c;
        if at_ceiling_for_sure
            && !self
                .ctx
                .masked_match(&sop.op, op_idx, lhs_v, rhs_v.map(|v| v.as_slice()))
        {
            return;
        }
        let support = union_support(&a_term.support, b_sup);
        let size = support.len() + 1;
        if size > self.max_c {
            return;
        }
        let is_mul = matches!(sop.op, ArithOp::MulCtCt | ArithOp::MulCtPt(_));
        let mdepth = a_term.mdepth.max(b_md) + is_mul as u32;
        let mut cost = a_term.cost + b_cost + self.ctx.op_latencies[op_idx];
        if self.rots[lr] != 0 {
            cost += self.ctx.rot_latency;
        }
        if rhs.is_some() && self.rots[rr] != 0 {
            cost += self.ctx.rot_latency;
        }
        let node = Node::Arith {
            op_idx: op_idx as u32,
            lhs: (a, self.rots[lr]),
            rhs: rhs.map(|(b, rr)| (b, self.rots[rr])),
        };
        // A chain step pairs the previous chain node with *itself* (or is
        // unary); terms built purely from inputs seed new chains. Mixing a
        // second distinct term in ends the chain — input-mixing chains are
        // as exponential as the general flood, strict self-chains collapse
        // under value dedup (their rotation-free steps are just scalar
        // multiples).
        let num_inputs = self.ctx.num_inputs as u32;
        let chain = match rhs {
            Some((b, _)) if b != a => a < num_inputs && b < num_inputs,
            _ => a < num_inputs || a_term.chain,
        };
        let cand = Cand {
            node,
            support,
            mdepth,
            cost,
            chain,
        };
        if size == self.max_c {
            // Only a goal can live here; the masked check already passed
            // for `at_ceiling_for_sure`, otherwise run it now.
            if at_ceiling_for_sure
                || self
                    .ctx
                    .masked_match(&sop.op, op_idx, lhs_v, rhs_v.map(|v| v.as_slice()))
            {
                out.push(GenCand {
                    cand,
                    vec: None,
                    goal: true,
                });
            }
            return;
        }
        let vec = self
            .ctx
            .apply_op(&sop.op, op_idx, lhs_v, rhs_v.map(|v| v.as_slice()));
        let goal = size >= self.min_c && self.ctx.matches_target(&vec);
        out.push(GenCand {
            cand,
            vec: Some(vec),
            goal,
        });
    }

    /// Builds one explicit-rotation candidate (ablation mode).
    fn emit_rot(&self, x: u32, amount: i64, out: &mut Vec<GenCand>) {
        let xt = &self.terms[x as usize];
        let size = xt.support.len() + 1;
        if size > self.max_c {
            return;
        }
        let vec = self.ctx.rotate_concat(&self.rotated[x as usize][0], amount);
        let cand = Cand {
            node: Node::Rot { src: x, amount },
            support: xt.support.clone(),
            mdepth: xt.mdepth,
            cost: xt.cost + self.ctx.rot_latency,
            chain: x < self.ctx.num_inputs as u32 || xt.chain,
        };
        let goal = size >= self.min_c && self.ctx.matches_target(&vec);
        if size == self.max_c {
            if goal {
                out.push(GenCand {
                    cand,
                    vec: None,
                    goal: true,
                });
            }
            return;
        }
        out.push(GenCand {
            cand,
            vec: Some(vec),
            goal,
        });
    }

    /// Files one generated candidate into the goal queue and/or the
    /// pending-value map of its size class.
    fn route(&mut self, gc: GenCand) {
        let size = gc.cand.support.len() + 1;
        if gc.goal {
            self.goals[size].push(gc.cand.clone());
        }
        if let Some(vec) = gc.vec {
            if size < self.max_c {
                match self.pending[size].entry(vec) {
                    Entry::Occupied(mut e) => {
                        if cand_rank(&gc.cand) < cand_rank(e.get()) {
                            e.insert(gc.cand);
                        }
                    }
                    Entry::Vacant(v) => {
                        v.insert(gc.cand);
                    }
                }
            }
        }
    }

    /// Drains the pending candidates of size `d` into the bank: drop
    /// values the bank already has, sort canonically, retain up to
    /// `MDEPTH_BUCKET_CAP` per multiplicative-depth bucket, assign ids.
    fn finalize_level(&mut self, d: usize) {
        let map = std::mem::take(&mut self.pending[d]);
        let mut cands: Vec<(Vec<u64>, Cand)> = map
            .into_iter()
            .filter(|(v, _)| !self.classes.contains(v))
            .collect();
        cands.sort_by_key(|x| cand_rank(&x.1));
        let mut taken: HashMap<u32, usize> = HashMap::new();
        let mut chain_taken: HashMap<u32, usize> = HashMap::new();
        for (vec, cand) in cands {
            // A candidate survives through its mdepth bucket or, for pure
            // chain terms, through the dedicated chain bucket — without the
            // exemption the rotation-heavy reduction chains rank below the
            // cheap cross-pair flood and die before the ceiling.
            let slot = taken.entry(cand.mdepth).or_insert(0);
            let general_room = *slot < MDEPTH_BUCKET_CAP;
            let chain_room = cand.chain && {
                let cslot = chain_taken.entry(cand.mdepth).or_insert(0);
                *cslot < CHAIN_BUCKET_CAP
            };
            if !general_room && !chain_room {
                continue;
            }
            if general_room {
                *slot += 1;
            }
            if chain_room {
                *chain_taken.get_mut(&cand.mdepth).expect("entry above") += 1;
            }
            let id = self.terms.len() as u32;
            let mut support = cand.support;
            support.push(id);
            self.rotated.push(
                self.rots
                    .iter()
                    .map(|&r| self.ctx.rotate_concat(&vec, r))
                    .collect(),
            );
            self.classes.insert(vec);
            self.terms.push(BankTerm {
                is_rot: matches!(cand.node, Node::Rot { .. }),
                node: cand.node,
                support,
                mdepth: cand.mdepth,
                cost: cand.cost,
                chain: cand.chain,
            });
            self.levels[d].push(id);
        }
        // Refresh the cross-pair pool: the CROSS_POOL canonically cheapest
        // non-input terms, re-sorted by id for in-order enumeration.
        let mut ranked: Vec<u32> = (self.ctx.num_inputs as u32..self.terms.len() as u32).collect();
        ranked.sort_by_key(|&i| (self.terms[i as usize].cost.to_bits(), i));
        ranked.truncate(CROSS_POOL);
        ranked.sort_unstable();
        self.pool = ranked;
    }

    /// Picks the canonical `(cost, serialization)` minimum among the goal
    /// candidates of level `d` and lowers it to a [`Program`].
    fn select_goal(&self, d: usize, mut goals: Vec<Cand>) -> (Program, usize) {
        goals.sort_by_key(cand_rank);
        goals.truncate(GOAL_CAP);
        let mut best: Option<(u64, String, Program)> = None;
        for g in &goals {
            let (prog, cost) = self.materialize_goal(g);
            let bits = cost.to_bits();
            if best.as_ref().is_some_and(|(bb, _, _)| *bb < bits) {
                continue; // cheaper program already in hand
            }
            let ser = prog.to_string();
            let better = best
                .as_ref()
                .is_none_or(|(bb, bs, _)| (bits, ser.as_str()) < (*bb, bs.as_str()));
            if better {
                best = Some((bits, ser, prog));
            }
        }
        let (_, _, prog) = best.expect("select_goal called with goals");
        (prog, d)
    }

    /// Lowers a goal candidate's DAG to a component list (support order is
    /// topological because ids are assigned in finalization order) and
    /// prices it exactly the way the DFS does: op latencies, one rotation
    /// charge per distinct `(value, rotation)` pair, times `1 + mdepth`.
    fn materialize_goal(&self, g: &Cand) -> (Program, f64) {
        let sup = &g.support;
        let num_inputs = self.ctx.num_inputs;
        let to_avail = |id: u32| -> usize {
            if (id as usize) < num_inputs {
                id as usize
            } else {
                num_inputs + sup.binary_search(&id).expect("operand in support")
            }
        };
        let node_to_comp = |node: &Node| -> Comp {
            match node {
                Node::Input => unreachable!("inputs are not components"),
                Node::Arith { op_idx, lhs, rhs } => Comp::Arith {
                    op_idx: *op_idx as usize,
                    lhs: (to_avail(lhs.0), lhs.1),
                    rhs: rhs.map(|(i, r)| (to_avail(i), r)),
                },
                Node::Rot { src, amount } => Comp::Rot {
                    val: to_avail(*src),
                    amount: *amount,
                },
            }
        };
        let mut comps: Vec<Comp> = sup
            .iter()
            .map(|&id| node_to_comp(&self.terms[id as usize].node))
            .collect();
        comps.push(node_to_comp(&g.node));
        let mut latency = 0.0;
        let mut rots_used: HashSet<(usize, i64)> = HashSet::new();
        for c in &comps {
            match c {
                Comp::Arith { op_idx, lhs, rhs } => {
                    latency += self.ctx.op_latencies[*op_idx];
                    if lhs.1 != 0 {
                        rots_used.insert(*lhs);
                    }
                    if let Some(r) = rhs {
                        if r.1 != 0 {
                            rots_used.insert(*r);
                        }
                    }
                }
                Comp::Rot { .. } => latency += self.ctx.rot_latency,
            }
        }
        latency += self.ctx.rot_latency * rots_used.len() as f64;
        let cost = latency * (1.0 + g.mdepth as f64);
        (self.ctx.materialize(&comps), cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::{RotationSet, Sketch, SketchOp};
    use crate::spec::{GenericReference, KernelSpec};
    use quill::cost::LatencyModel;
    use quill::interp;
    use quill::ring::Ring;
    use rand::SeedableRng;

    fn jobs(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    struct SumAll {
        n: usize,
    }

    impl GenericReference for SumAll {
        fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
            let total = ct[0].iter().fold(ct[0][0].from_i64(0), |acc, x| acc.add(x));
            vec![total; self.n]
        }
    }

    fn sum_spec(n: usize) -> KernelSpec {
        let mut mask = vec![false; n];
        mask[0] = true;
        KernelSpec::new("sum", n, 1, 0, mask, 65537, Box::new(SumAll { n }))
    }

    #[test]
    fn finds_tree_reduction_for_sum8() {
        let spec = sum_spec(8);
        let sketch = Sketch::new(
            vec![SketchOp::rotated(ArithOp::AddCtCt)],
            RotationSet::PowersOfTwo { extent: 8 },
            4,
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let examples = vec![spec.sample_example(&mut rng)];
        let model = LatencyModel::uniform();
        let searcher = SearchContext::new(&spec, &sketch, &examples, &model, None, None);
        match searcher.run_bottom_up(1, 4, jobs(1)) {
            BottomUpOutcome::Found {
                program,
                components,
            } => {
                assert_eq!(components, 3, "log2(8) adds, found at the minimal level");
                assert!(program.validate().is_ok());
                let out = interp::eval_concrete(&program, &examples[0].ct_inputs, &[], 65537);
                assert_eq!(out[0], examples[0].output[0]);
            }
            other => panic!("expected a solution, got {other:?}"),
        }
    }

    #[test]
    fn respects_the_component_floor() {
        // With min_c above the natural solution size, level-2 goals are
        // ignored and a (larger) program is returned at the floor or
        // above, mirroring Sketch::min_components semantics.
        let spec = sum_spec(4);
        let sketch = Sketch::new(
            vec![SketchOp::rotated(ArithOp::AddCtCt)],
            RotationSet::PowersOfTwo { extent: 4 },
            3,
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let examples = vec![spec.sample_example(&mut rng)];
        let model = LatencyModel::uniform();
        let searcher = SearchContext::new(&spec, &sketch, &examples, &model, None, None);
        match searcher.run_bottom_up(3, 3, jobs(1)) {
            BottomUpOutcome::Found { components, .. } => assert_eq!(components, 3),
            other => panic!("expected a floor-sized solution, got {other:?}"),
        }
    }

    #[test]
    fn exhausts_without_a_goal() {
        let spec = sum_spec(8);
        // One add is not enough to reduce 8 slots.
        let sketch = Sketch::new(
            vec![SketchOp::rotated(ArithOp::AddCtCt)],
            RotationSet::PowersOfTwo { extent: 8 },
            1,
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let examples = vec![spec.sample_example(&mut rng)];
        let model = LatencyModel::uniform();
        let searcher = SearchContext::new(&spec, &sketch, &examples, &model, None, None);
        assert!(matches!(
            searcher.run_bottom_up(1, 1, jobs(2)),
            BottomUpOutcome::Exhausted
        ));
    }

    /// The determinism contract: any thread count yields the
    /// byte-identical program.
    #[test]
    fn thread_count_does_not_change_the_result() {
        let spec = sum_spec(8);
        let sketch = Sketch::new(
            vec![
                SketchOp::rotated(ArithOp::AddCtCt),
                SketchOp::rotated(ArithOp::SubCtCt),
            ],
            RotationSet::PowersOfTwo { extent: 8 },
            4,
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let examples = vec![spec.sample_example(&mut rng), spec.sample_example(&mut rng)];
        let model = LatencyModel::profiled_default();
        let searcher = SearchContext::new(&spec, &sketch, &examples, &model, None, None);
        let baseline = match searcher.run_bottom_up(1, 4, jobs(1)) {
            BottomUpOutcome::Found { program, .. } => program.to_string(),
            other => panic!("expected a solution, got {other:?}"),
        };
        for j in [2, 4, 7] {
            match searcher.run_bottom_up(1, 4, jobs(j)) {
                BottomUpOutcome::Found { program, .. } => {
                    assert_eq!(program.to_string(), baseline, "jobs={j}");
                }
                other => panic!("expected a solution at jobs={j}, got {other:?}"),
            }
        }
    }

    /// Regression: a 16-element dot product over the kernels crate's
    /// 2×-padded layout needs the 5-node chain `mul, +rot8, +rot4, +rot2,
    /// +rot1` whose rotation-heavy middle terms rank *below* thousands of
    /// rotation-free cross-pair candidates — only the strict-chain
    /// retention bucket keeps them alive to the ceiling.
    #[test]
    fn deep_reduction_chain_survives_retention() {
        use quill::program::PtOperand;
        struct Dot {
            len: usize,
            slots: usize,
        }
        impl GenericReference for Dot {
            fn compute<R: Ring>(&self, ct: &[Vec<R>], pt: &[Vec<R>]) -> Vec<R> {
                let total = ct[0]
                    .iter()
                    .zip(&pt[0])
                    .take(self.len)
                    .map(|(a, b)| a.mul(b))
                    .fold(ct[0][0].from_i64(0), |acc, x| acc.add(&x));
                vec![total; self.slots]
            }
        }
        let len = 16;
        let slots = 2 * len; // the kernels crate's ReductionLayout tail
        let mut mask = vec![false; slots];
        mask[0] = true;
        let spec = KernelSpec::new(
            "dot",
            slots,
            1,
            1,
            mask,
            65537,
            Box::new(Dot { len, slots }),
        );
        let sketch = Sketch::new(
            vec![
                SketchOp::plain(ArithOp::MulCtPt(PtOperand::Input(0))),
                SketchOp::rhs_rotated(ArithOp::AddCtCt),
            ],
            RotationSet::PowersOfTwo { extent: len },
            5,
        )
        .with_min_components(5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let examples = vec![spec.sample_example(&mut rng), spec.sample_example(&mut rng)];
        let model = LatencyModel::profiled_default();
        let searcher = SearchContext::new(&spec, &sketch, &examples, &model, None, None);
        match searcher.run_bottom_up(5, 5, jobs(1)) {
            BottomUpOutcome::Found {
                program,
                components,
            } => {
                assert_eq!(components, 5);
                assert!(program.validate().is_ok());
                for e in &examples {
                    let out = interp::eval_concrete(&program, &e.ct_inputs, &e.pt_inputs, 65537);
                    assert_eq!(out[0], e.output[0]);
                }
            }
            other => panic!("expected a solution, got {other:?}"),
        }
    }

    /// Shared sub-terms are counted once: the 2-input squared-distance
    /// chain `(x−y)·(x−y)` has size 2, not 3, so it is found at level 2.
    #[test]
    fn dag_sizing_counts_shared_subterms_once() {
        struct SqDiff;
        impl GenericReference for SqDiff {
            fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
                ct[0]
                    .iter()
                    .zip(&ct[1])
                    .map(|(a, b)| {
                        let d = a.sub(b);
                        d.mul(&d)
                    })
                    .collect()
            }
        }
        let spec = KernelSpec::new("sqdiff", 4, 2, 0, vec![true; 4], 65537, Box::new(SqDiff));
        let sketch = Sketch::new(
            vec![
                SketchOp::plain(ArithOp::SubCtCt),
                SketchOp::plain(ArithOp::MulCtCt),
            ],
            RotationSet::Explicit(Vec::new()),
            4,
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let examples = vec![spec.sample_example(&mut rng)];
        let model = LatencyModel::uniform();
        let searcher = SearchContext::new(&spec, &sketch, &examples, &model, None, None);
        match searcher.run_bottom_up(1, 4, jobs(1)) {
            BottomUpOutcome::Found { components, .. } => {
                assert_eq!(components, 2, "sub shared by both mul operands");
            }
            other => panic!("expected a solution, got {other:?}"),
        }
    }
}
