//! The optimizing middle-end: semantics-preserving rewrites between
//! synthesis and codegen.
//!
//! The compiler is organized as **synthesize → optimize → lower**. The
//! CEGIS searcher emits Quill programs with *no* explicit relinearization
//! (relin placement is not part of the paper's search space); this module
//! turns them into backend-legal IR — every rotation/multiply operand and
//! the program output statically size 2 ([`quill::analysis`]) — and, at
//! higher `-O` levels, into *cheaper* IR. [`crate::codegen`] then lowers
//! instruction-for-instruction.
//!
//! # Passes
//!
//! | pass | rewrite |
//! |---|---|
//! | [`EagerRelin`] | insert `relin-ct` immediately after every `mul-ct-ct` (the paper's §5.3 lowering; what `-O0` executes) |
//! | [`Cse`] | global value-numbering CSE over syntactically identical instructions — subsumes the cross-stage rotation sharing multistep composition needs |
//! | [`RotFold`] | `rot(rot(x,a),b) → rot(x,a+b)`; a chain folding to offset 0 becomes a copy of `x` (identity rotations never reach the IR) |
//! | [`LazyRelin`] | re-place relinearizations minimally: a size-3 value is relinearized only where a rotation or multiply consumes it or where it escapes as the program output; additions, subtractions, and plaintext ops operate on size-3 ciphertexts directly |
//! | [`Dce`] | drop instructions unreachable from the output |
//!
//! Every pass preserves the interpreter semantics exactly (`relin-ct` is
//! the identity on slots) and BFV decryption bit-for-bit (relinearization
//! and rotation-chain folding change ciphertext *representation* and noise,
//! never the decrypted slots, given adequate noise budget).
//!
//! # Levels
//!
//! * `-O0` — [`EagerRelin`] only: byte-for-byte today's backend behavior
//!   (multiply, then relinearize, for every ct×ct product).
//! * `-O1` — `-O0` placement plus [`Cse`] and [`Dce`].
//! * `-O2` — [`Cse`] → [`RotFold`] → [`LazyRelin`] → [`Dce`], iterated to a
//!   fixpoint.
//!
//! The [`PassManager`] drives a pass list to a fixpoint (a full sweep with
//! zero rewrites) and records per-pass rewrite counts in an [`OptReport`];
//! re-optimizing an already-optimized program is a fixpoint with zero
//! rewrites, which CI checks.

use quill::analysis;
use quill::program::{Instr, Program, ValRef};
use quill::scheme::SchemeLegality;
use std::collections::HashMap;
use std::fmt;

/// Optimization level for the middle-end pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OptLevel {
    /// Eager relinearization only — reproduces the pre-middle-end compiler
    /// exactly.
    O0,
    /// Eager relinearization plus CSE and DCE.
    O1,
    /// The full pipeline: CSE, rotation folding, lazy relinearization, DCE,
    /// to a fixpoint.
    O2,
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptLevel::O0 => write!(f, "O0"),
            OptLevel::O1 => write!(f, "O1"),
            OptLevel::O2 => write!(f, "O2"),
        }
    }
}

impl std::str::FromStr for OptLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim_start_matches("-").trim_start_matches(['O', 'o']) {
            "0" => Ok(OptLevel::O0),
            "1" => Ok(OptLevel::O1),
            "2" => Ok(OptLevel::O2),
            _ => Err(format!("unknown opt level '{s}' (expected 0, 1, or 2)")),
        }
    }
}

/// The default optimization level: the `PORCUPINE_OPT` environment variable
/// (`0`/`1`/`2`, as the CI matrix sets it) when present and valid,
/// otherwise `-O2`.
pub fn default_opt_level() -> OptLevel {
    std::env::var("PORCUPINE_OPT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(OptLevel::O2)
}

/// One rewrite pass over a Quill program.
///
/// The contract: `run` returns a semantics-equivalent program (identical
/// interpreter outputs on every input, identical BFV decryptions) and a
/// rewrite count that is zero **iff** the returned program equals the
/// input — this is what makes the fixpoint driver and the idempotence
/// check sound.
pub trait Pass {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Rewrites `prog`, returning the new program and how many rewrites
    /// were applied (0 ⟺ unchanged).
    fn run(&self, prog: &Program) -> (Program, usize);
}

/// Returns `(program, count)` with the rewrite-count contract enforced: a
/// result equal to the input reports zero rewrites.
fn counted(input: &Program, result: Program, count: usize) -> (Program, usize) {
    if result == *input {
        (result, 0)
    } else {
        (result, count.max(1))
    }
}

/// Removes every `relin-ct`, aliasing its uses to the operand. Returns the
/// stripped program and the number of relins removed. Slot semantics are
/// unchanged (relin is the identity); the result is generally *not*
/// backend-legal until a relin-placement pass runs.
fn strip_relins(prog: &Program) -> (Program, usize) {
    let mut canon: Vec<ValRef> = Vec::with_capacity(prog.instrs.len());
    let mut instrs: Vec<Instr> = Vec::new();
    let mut removed = 0usize;
    for instr in &prog.instrs {
        let fix = |r: ValRef| match r {
            ValRef::Instr(j) => canon[j],
            other => other,
        };
        if let Instr::Relin(a) = instr {
            canon.push(fix(*a));
            removed += 1;
        } else {
            instrs.push(instr.map_ct_operands(fix));
            canon.push(ValRef::Instr(instrs.len() - 1));
        }
    }
    let output = match prog.output {
        ValRef::Instr(j) => canon[j],
        other => other,
    };
    (
        Program::new(
            prog.name.clone(),
            prog.num_ct_inputs,
            prog.num_pt_inputs,
            instrs,
            output,
        ),
        removed,
    )
}

/// Inserts a `relin-ct` immediately after every `mul-ct-ct` — the paper's
/// §5.3 codegen rule, now explicit in the IR. Existing relins are stripped
/// first, so the pass is idempotent and canonical.
pub struct EagerRelin;

impl Pass for EagerRelin {
    fn name(&self) -> &'static str {
        "eager-relin"
    }

    fn run(&self, prog: &Program) -> (Program, usize) {
        let (stripped, _) = strip_relins(prog);
        let mut instrs: Vec<Instr> = Vec::with_capacity(stripped.instrs.len());
        let mut map: Vec<ValRef> = Vec::with_capacity(stripped.instrs.len());
        let mut inserted = 0usize;
        for instr in &stripped.instrs {
            let fix = |r: ValRef| match r {
                ValRef::Instr(j) => map[j],
                other => other,
            };
            let is_mul = matches!(instr, Instr::MulCtCt(..));
            instrs.push(instr.map_ct_operands(fix));
            let mut val = ValRef::Instr(instrs.len() - 1);
            if is_mul {
                instrs.push(Instr::Relin(val));
                val = ValRef::Instr(instrs.len() - 1);
                inserted += 1;
            }
            map.push(val);
        }
        let output = match stripped.output {
            ValRef::Instr(j) => map[j],
            other => other,
        };
        let result = Program::new(
            stripped.name.clone(),
            stripped.num_ct_inputs,
            stripped.num_pt_inputs,
            instrs,
            output,
        );
        counted(prog, result, inserted)
    }
}

/// Global common-subexpression elimination: syntactically identical
/// instructions (after canonicalizing operands) share one definition. This
/// is what makes multistep pipeline stages share rotations — duplicate
/// `rot-ct` of the same input across two appended stages collapses to one.
pub struct Cse;

impl Pass for Cse {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, prog: &Program) -> (Program, usize) {
        let merged = prog.cse();
        let count = prog.len().saturating_sub(merged.len());
        counted(prog, merged, count)
    }
}

/// Rotation canonicalization: folds `rot(rot(x, a), b)` into
/// `rot(x, a + b)` (rotation composition is exact at every slot count) and
/// replaces chains whose net offset is zero with the unrotated value.
/// The inner rotation, if now unused, is removed by [`Dce`].
pub struct RotFold;

impl Pass for RotFold {
    fn name(&self) -> &'static str {
        "rot-fold"
    }

    fn run(&self, prog: &Program) -> (Program, usize) {
        let mut instrs: Vec<Instr> = Vec::with_capacity(prog.instrs.len());
        let mut map: Vec<ValRef> = Vec::with_capacity(prog.instrs.len());
        let mut folds = 0usize;
        for instr in &prog.instrs {
            let fix = |r: ValRef| match r {
                ValRef::Instr(j) => map[j],
                other => other,
            };
            if let Instr::RotCt(a, r) = instr {
                let a = fix(*a);
                // Look through an inner rotation already emitted.
                let (base, total) = match a {
                    ValRef::Instr(j) => match instrs[j] {
                        Instr::RotCt(inner, s) => (inner, r + s),
                        _ => (a, *r),
                    },
                    _ => (a, *r),
                };
                if (base, total) != (a, *r) {
                    folds += 1;
                }
                if total == 0 {
                    map.push(base);
                } else {
                    instrs.push(Instr::RotCt(base, total));
                    map.push(ValRef::Instr(instrs.len() - 1));
                }
            } else {
                instrs.push(instr.map_ct_operands(fix));
                map.push(ValRef::Instr(instrs.len() - 1));
            }
        }
        let output = match prog.output {
            ValRef::Instr(j) => map[j],
            other => other,
        };
        let result = Program::new(
            prog.name.clone(),
            prog.num_ct_inputs,
            prog.num_pt_inputs,
            instrs,
            output,
        );
        counted(prog, result, folds)
    }
}

/// Lazy relinearization: strips every existing `relin-ct` and re-places a
/// set that is never larger than the eager one. A size-3 value flows
/// freely through additions, subtractions, and plaintext ops and must be
/// size 2 only where a rotation or multiply consumes it, or where it
/// escapes as the program output.
///
/// Placement works per weakly-connected component of the *size-3 flow
/// graph* (multiply results are sources; add/sub/plaintext ops propagate;
/// rotation/multiply operands and the output are sinks). Each component is
/// cut at whichever end is cheaper:
///
/// * **sink cut** — relinearize each needy value right before its first
///   needy use, shared by all later consumers. An add-chain over several
///   multiply results thus pays a *single* relin at the end.
/// * **source cut** — relinearize each multiply right after it. A single
///   multiply result feeding *several* independently-consumed size-3
///   chains pays one relin at the source instead of one per chain.
///
/// Per component the chosen cut is `min(sources, sinks)` relins, and
/// sources ≡ the component's multiplies — so the pass never emits more
/// relins than [`EagerRelin`], which keeps `-O2` uniformly no worse than
/// `-O0` (the `o2_never_costs_more_than_o0` property in
/// `tests/opt_properties.rs`).
pub struct LazyRelin;

/// Union-find over instruction indices (the size-3 flow components).
fn uf_find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

impl LazyRelin {
    /// Decides, per size-3 flow component, whether to cut at the sources
    /// (multiplies) or the sinks (needy uses). Returns the set of
    /// instruction indices to relinearize *at the definition*.
    fn source_cut_defs(stripped: &Program) -> std::collections::HashSet<usize> {
        let n = stripped.instrs.len();
        // Sizes assuming relins will be placed wherever needed: rotation
        // results are size 2 (their operand gets relinearized), so only
        // add/sub/plaintext ops propagate size 3 out of a multiply.
        let mut size = vec![2u8; n];
        let mut parent: Vec<usize> = (0..n).collect();
        let sz = |r: ValRef, size: &[u8]| match r {
            ValRef::Input(_) => 2,
            ValRef::Instr(j) => size[j],
        };
        for (i, instr) in stripped.instrs.iter().enumerate() {
            size[i] = match instr {
                // A rotation's operand will be relinearized before the
                // rotation runs, so unlike the raw transfer rule its
                // result is size 2 in this forward-looking view.
                Instr::RotCt(..) => 2,
                _ => analysis::instr_result_size(instr, |r| sz(r, &size)),
            };
            // Flow edges exist only through propagation ops: a multiply's
            // size-3 operand is a *sink* (it will be relinearized before
            // the multiply), not part of this value's component.
            let propagates = matches!(
                instr,
                Instr::AddCtCt(..)
                    | Instr::SubCtCt(..)
                    | Instr::AddCtPt(..)
                    | Instr::SubCtPt(..)
                    | Instr::MulCtPt(..)
            );
            if size[i] == 3 && propagates {
                for op in instr.ct_operands() {
                    if let ValRef::Instr(j) = op {
                        if size[j] == 3 {
                            let (a, b) = (uf_find(&mut parent, i), uf_find(&mut parent, j));
                            parent[a] = b;
                        }
                    }
                }
            }
        }
        // Count sources (multiplies) and sinks (distinct needy size-3
        // values) per component.
        let mut sources: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut sinks: HashMap<usize, std::collections::HashSet<usize>> = HashMap::new();
        for (i, instr) in stripped.instrs.iter().enumerate() {
            if matches!(instr, Instr::MulCtCt(..)) {
                let root = uf_find(&mut parent, i);
                sources.entry(root).or_default().push(i);
            }
            let needy = |r: &ValRef| matches!(r, ValRef::Instr(j) if size[*j] == 3);
            match instr {
                Instr::RotCt(a, _) if needy(a) => {
                    if let ValRef::Instr(j) = a {
                        let root = uf_find(&mut parent, *j);
                        sinks.entry(root).or_default().insert(*j);
                    }
                }
                Instr::MulCtCt(a, b) => {
                    for op in [a, b] {
                        if needy(op) {
                            if let ValRef::Instr(j) = op {
                                let root = uf_find(&mut parent, *j);
                                sinks.entry(root).or_default().insert(*j);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        if let ValRef::Instr(j) = stripped.output {
            if size[j] == 3 {
                let root = uf_find(&mut parent, j);
                sinks.entry(root).or_default().insert(j);
            }
        }
        let mut defs = std::collections::HashSet::new();
        for (root, srcs) in &sources {
            let sink_count = sinks.get(root).map(|s| s.len()).unwrap_or(0);
            // No sinks: the component never needs a relin (dead size-3
            // values; DCE cleans them up). Otherwise cut at the cheaper
            // end, preferring the sink cut on ties (it defers noise from
            // the key switch and matches the add-chain pin).
            if sink_count > 0 && srcs.len() < sink_count {
                defs.extend(srcs.iter().copied());
            }
        }
        defs
    }
}

impl Pass for LazyRelin {
    fn name(&self) -> &'static str {
        "lazy-relin"
    }

    fn run(&self, prog: &Program) -> (Program, usize) {
        let (stripped, removed) = strip_relins(prog);
        let relin_at_def = LazyRelin::source_cut_defs(&stripped);
        let mut instrs: Vec<Instr> = Vec::with_capacity(stripped.instrs.len());
        // Size of every value of the program being built (indexed per
        // emitted instruction).
        let mut sizes: Vec<u8> = Vec::new();
        // Old value → its raw new form.
        let mut map: Vec<ValRef> = Vec::with_capacity(stripped.instrs.len());
        // Raw new form → its relinearized form, once forced.
        let mut relinned: HashMap<ValRef, ValRef> = HashMap::new();
        let mut inserted = 0usize;

        let size_of = |r: ValRef, sizes: &[u8]| match r {
            ValRef::Input(_) => 2,
            ValRef::Instr(j) => sizes[j],
        };
        // Resolves an operand that MUST be size 2, inserting a shared
        // relin right before the consumer if needed.
        let force2 = |raw: ValRef,
                      instrs: &mut Vec<Instr>,
                      sizes: &mut Vec<u8>,
                      relinned: &mut HashMap<ValRef, ValRef>,
                      inserted: &mut usize| {
            if size_of(raw, sizes) < 3 {
                return raw;
            }
            *relinned.entry(raw).or_insert_with(|| {
                instrs.push(Instr::Relin(raw));
                sizes.push(2);
                *inserted += 1;
                ValRef::Instr(instrs.len() - 1)
            })
        };

        for (idx, instr) in stripped.instrs.iter().enumerate() {
            // Tolerant uses prefer the relinearized form when a prior
            // consumer already paid for it (it is never worse).
            let best = |r: ValRef, relinned: &HashMap<ValRef, ValRef>| {
                let raw = match r {
                    ValRef::Instr(j) => map[j],
                    other => other,
                };
                relinned.get(&raw).copied().unwrap_or(raw)
            };
            let new_instr = match instr {
                Instr::RotCt(a, r) => {
                    let a = best(*a, &relinned);
                    let a = force2(a, &mut instrs, &mut sizes, &mut relinned, &mut inserted);
                    Instr::RotCt(a, *r)
                }
                Instr::MulCtCt(a, b) => {
                    let a = best(*a, &relinned);
                    let b = best(*b, &relinned);
                    let a = force2(a, &mut instrs, &mut sizes, &mut relinned, &mut inserted);
                    let b = force2(b, &mut instrs, &mut sizes, &mut relinned, &mut inserted);
                    Instr::MulCtCt(a, b)
                }
                other => other.map_ct_operands(|r| best(r, &relinned)),
            };
            let size = analysis::instr_result_size(&new_instr, |r| size_of(r, &sizes));
            instrs.push(new_instr);
            sizes.push(size);
            let mut val = ValRef::Instr(instrs.len() - 1);
            // Source-cut component: relinearize right after the multiply;
            // every later use reads the size-2 form.
            if relin_at_def.contains(&idx) {
                instrs.push(Instr::Relin(val));
                sizes.push(2);
                inserted += 1;
                val = ValRef::Instr(instrs.len() - 1);
            }
            map.push(val);
        }
        let output = {
            let raw = match stripped.output {
                ValRef::Instr(j) => map[j],
                other => other,
            };
            let raw = relinned.get(&raw).copied().unwrap_or(raw);
            force2(raw, &mut instrs, &mut sizes, &mut relinned, &mut inserted)
        };
        let result = Program::new(
            stripped.name.clone(),
            stripped.num_ct_inputs,
            stripped.num_pt_inputs,
            instrs,
            output,
        );
        debug_assert!(analysis::check_backend_legal(&result).is_ok());
        counted(prog, result, removed + inserted)
    }
}

/// Last-use analysis over a straight-line program: `last_uses(p)[i]` is the
/// index of the final instruction that reads instruction `i`'s result, or
/// `None` if the value is never read by a later instruction *or* escapes as
/// the program output (an escaping value must stay live to the end, so it
/// is reported as having no safe last use).
///
/// The runner uses this to execute backend-legal IR in place: at a value's
/// last use its buffers can be mutated or recycled instead of cloned.
pub fn last_uses(prog: &Program) -> Vec<Option<usize>> {
    let mut last: Vec<Option<usize>> = vec![None; prog.instrs.len()];
    for (j, instr) in prog.instrs.iter().enumerate() {
        for op in instr.ct_operands() {
            if let ValRef::Instr(i) = op {
                last[i] = Some(j);
            }
        }
    }
    if let ValRef::Instr(i) = prog.output {
        last[i] = None;
    }
    last
}

/// Dead-code elimination: drops instructions whose results cannot reach
/// the output.
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, prog: &Program) -> (Program, usize) {
        let clean = prog.eliminate_dead_code();
        let count = prog.len().saturating_sub(clean.len());
        counted(prog, clean, count)
    }
}

/// Rewrite counts of one optimization run, per pass (summed over fixpoint
/// sweeps) plus the sweep count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptReport {
    /// `(pass name, rewrites applied)` in pipeline order.
    pub passes: Vec<(&'static str, usize)>,
    /// Full sweeps of the pipeline (the last sweep applies zero rewrites
    /// unless the sweep cap was hit).
    pub sweeps: usize,
    /// Total rewrites across all passes and sweeps.
    pub total_rewrites: usize,
}

impl fmt::Display for OptReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rewrites in {} sweep(s):",
            self.total_rewrites, self.sweeps
        )?;
        for (name, n) in &self.passes {
            write!(f, " {name}={n}")?;
        }
        Ok(())
    }
}

/// Drives a pass list to a fixpoint: sweeps run in order until a full
/// sweep applies zero rewrites (or the sweep cap fires — a backstop; the
/// shipped pipelines converge in one or two sweeps).
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    max_sweeps: usize,
}

impl PassManager {
    /// A manager over the given passes (sweep cap 8).
    pub fn new(passes: Vec<Box<dyn Pass>>) -> Self {
        PassManager {
            passes,
            max_sweeps: 8,
        }
    }

    /// The pipeline for an [`OptLevel`] targeting the full instruction set.
    pub fn for_level(level: OptLevel) -> Self {
        PassManager::for_level_with(level, &SchemeLegality::full())
    }

    /// The pipeline for an [`OptLevel`], restricted to what the target
    /// scheme can execute: when the scheme lacks relinearization
    /// (`!legality.relin`), the relin-placement passes ([`EagerRelin`],
    /// [`LazyRelin`]) are omitted entirely — inserting a `relin-ct` the
    /// backend cannot run would trade a legal program for an illegal one.
    /// The remaining passes ([`Cse`], [`RotFold`], [`Dce`]) never introduce
    /// instructions absent from the input, so they are safe under any
    /// legality.
    pub fn for_level_with(level: OptLevel, legality: &SchemeLegality) -> Self {
        let relin = legality.relin;
        let mut passes: Vec<Box<dyn Pass>> = Vec::new();
        match level {
            OptLevel::O0 => {
                if relin {
                    passes.push(Box::new(EagerRelin));
                }
            }
            OptLevel::O1 => {
                if relin {
                    passes.push(Box::new(EagerRelin));
                }
                passes.push(Box::new(Cse));
                passes.push(Box::new(Dce));
            }
            OptLevel::O2 => {
                passes.push(Box::new(Cse));
                passes.push(Box::new(RotFold));
                if relin {
                    passes.push(Box::new(LazyRelin));
                }
                passes.push(Box::new(Dce));
            }
        }
        PassManager::new(passes)
    }

    /// Runs the pipeline to a fixpoint.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if a pass produces a structurally invalid
    /// program.
    pub fn run(&self, prog: &Program) -> (Program, OptReport) {
        let mut current = prog.clone();
        let mut totals: Vec<(&'static str, usize)> =
            self.passes.iter().map(|p| (p.name(), 0)).collect();
        let mut sweeps = 0usize;
        loop {
            sweeps += 1;
            let mut sweep_rewrites = 0usize;
            for (i, pass) in self.passes.iter().enumerate() {
                let (next, n) = pass.run(&current);
                debug_assert!(
                    next.validate().is_ok(),
                    "pass {} produced an invalid program: {:?}",
                    pass.name(),
                    next.validate()
                );
                totals[i].1 += n;
                sweep_rewrites += n;
                current = next;
            }
            if sweep_rewrites == 0 || sweeps >= self.max_sweeps {
                break;
            }
        }
        let total_rewrites = totals.iter().map(|(_, n)| n).sum();
        (
            current,
            OptReport {
                passes: totals,
                sweeps,
                total_rewrites,
            },
        )
    }
}

/// Optimizes and lowers `prog` at `level` for the full instruction set.
/// The result is backend-legal (every `-O` pipeline ends with
/// relinearizations placed), agrees with `prog` on every interpreter
/// input, and decrypts identically on any shipped scheme backend.
pub fn optimize(prog: &Program, level: OptLevel) -> (Program, OptReport) {
    optimize_with(prog, level, &SchemeLegality::full())
}

/// Optimizes and lowers `prog` at `level` for a scheme with the given
/// instruction-set legality (see [`PassManager::for_level_with`]).
///
/// When the scheme supports relinearization, the output is guaranteed
/// backend-legal (debug-asserted). Without relin support no placement pass
/// runs, so a program whose multiplies genuinely need relinearization
/// comes out *reported* illegal by
/// [`quill::analysis::check_backend_legal_with`] rather than silently
/// rewritten — the caller decides whether that is a hard error.
pub fn optimize_with(
    prog: &Program,
    level: OptLevel,
    legality: &SchemeLegality,
) -> (Program, OptReport) {
    let (out, report) = PassManager::for_level_with(level, legality).run(prog);
    if legality.relin {
        debug_assert!(
            analysis::check_backend_legal_with(&out, legality).is_ok(),
            "{level} pipeline left an illegal program: {:?}",
            analysis::check_backend_legal_with(&out, legality)
        );
    }
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quill::interp;
    use quill::program::PtOperand;

    const T: u64 = 65537;

    fn assert_same_semantics(a: &Program, b: &Program, n: usize) {
        let ct: Vec<Vec<u64>> = (0..a.num_ct_inputs)
            .map(|j| {
                (0..n)
                    .map(|i| (31 * j as u64 + 7 * i as u64 + 3) % T)
                    .collect()
            })
            .collect();
        let pt: Vec<Vec<u64>> = (0..a.num_pt_inputs)
            .map(|j| {
                (0..n)
                    .map(|i| (17 * j as u64 + 5 * i as u64 + 1) % T)
                    .collect()
            })
            .collect();
        assert_eq!(
            interp::eval_concrete(a, &ct, &pt, T),
            interp::eval_concrete(b, &ct, &pt, T),
            "{} vs {}",
            a.name,
            b.name
        );
    }

    /// mul → relin after every multiply, exactly the old codegen rule.
    #[test]
    fn eager_relin_matches_the_paper_lowering() {
        let raw = Program::new(
            "sq-sum",
            2,
            0,
            vec![
                Instr::MulCtCt(ValRef::Input(0), ValRef::Input(0)),
                Instr::MulCtCt(ValRef::Input(1), ValRef::Input(1)),
                Instr::AddCtCt(ValRef::Instr(0), ValRef::Instr(1)),
            ],
            ValRef::Instr(2),
        );
        let (o0, report) = optimize(&raw, OptLevel::O0);
        assert_eq!(o0.relin_count(), 2);
        assert_eq!(o0.len(), 5);
        // Each relin directly follows its multiply.
        assert_eq!(o0.instrs[1], Instr::Relin(ValRef::Instr(0)));
        assert_eq!(o0.instrs[3], Instr::Relin(ValRef::Instr(2)));
        assert!(report.total_rewrites > 0);
        assert_same_semantics(&raw, &o0, 4);
        assert!(quill::analysis::check_backend_legal(&o0).is_ok());
    }

    /// The "relin sunk past an add chain" pin: a² + b² pays one relin at
    /// the output instead of one per multiply.
    #[test]
    fn lazy_relin_sinks_past_an_add_chain() {
        let raw = Program::new(
            "sq-sum",
            2,
            0,
            vec![
                Instr::MulCtCt(ValRef::Input(0), ValRef::Input(0)),
                Instr::MulCtCt(ValRef::Input(1), ValRef::Input(1)),
                Instr::AddCtCt(ValRef::Instr(0), ValRef::Instr(1)),
            ],
            ValRef::Instr(2),
        );
        let (o2, _) = optimize(&raw, OptLevel::O2);
        assert_eq!(o2.relin_count(), 1, "\n{o2}");
        // The single relin consumes the add-chain result and is the output.
        assert_eq!(*o2.instrs.last().unwrap(), Instr::Relin(ValRef::Instr(2)));
        assert_eq!(o2.output, ValRef::Instr(3));
        assert_same_semantics(&raw, &o2, 4);
        assert!(quill::analysis::check_backend_legal(&o2).is_ok());
    }

    /// The diamond counter-case to naive consume-site placement: one
    /// multiply feeding two independently rotated add-chains must pay one
    /// relin at the source, not one per chain — lazy placement is never
    /// allowed to exceed eager.
    #[test]
    fn lazy_relin_cuts_shared_multiplies_at_the_source() {
        let raw = Program::new(
            "diamond",
            2,
            0,
            vec![
                Instr::MulCtCt(ValRef::Input(0), ValRef::Input(1)),
                Instr::AddCtCt(ValRef::Instr(0), ValRef::Input(0)),
                Instr::AddCtCt(ValRef::Instr(0), ValRef::Input(1)),
                Instr::RotCt(ValRef::Instr(1), 1),
                Instr::RotCt(ValRef::Instr(2), 2),
                Instr::AddCtCt(ValRef::Instr(3), ValRef::Instr(4)),
            ],
            ValRef::Instr(5),
        );
        let (o0, _) = optimize(&raw, OptLevel::O0);
        let (o2, _) = optimize(&raw, OptLevel::O2);
        assert_eq!(o0.relin_count(), 1);
        assert_eq!(o2.relin_count(), 1, "\n{o2}");
        assert!(o2.len() <= o0.len());
        // The relin sits at the multiply, before the chains fork.
        assert_eq!(o2.instrs[1], Instr::Relin(ValRef::Instr(0)));
        assert_same_semantics(&raw, &o2, 4);
    }

    /// A multiply whose result is rotated still relinearizes before the
    /// rotation, and one relin is shared by every later consumer.
    #[test]
    fn lazy_relin_is_forced_by_rotation_and_shared() {
        let raw = Program::new(
            "rot-of-mul",
            2,
            0,
            vec![
                Instr::MulCtCt(ValRef::Input(0), ValRef::Input(1)),
                Instr::RotCt(ValRef::Instr(0), 1),
                Instr::RotCt(ValRef::Instr(0), 2),
                Instr::AddCtCt(ValRef::Instr(1), ValRef::Instr(2)),
            ],
            ValRef::Instr(3),
        );
        let (o2, _) = optimize(&raw, OptLevel::O2);
        assert_eq!(o2.relin_count(), 1, "\n{o2}");
        assert_same_semantics(&raw, &o2, 4);
        assert!(quill::analysis::check_backend_legal(&o2).is_ok());
    }

    /// The "duplicate rotation across two pipeline stages" pin: appending
    /// two stages that each rotate the same input leaves two identical
    /// `rot-ct`s; global CSE at `-O2` shares one.
    #[test]
    fn cse_shares_rotations_across_appended_stages() {
        let stage = Program::new(
            "shift-sum",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
            ],
            ValRef::Instr(1),
        );
        // Compose without the builder's CSE: stage(x) and stage(x) summed.
        let mut p = Program::new("two-stages", 1, 0, Vec::new(), ValRef::Input(0));
        let a = p.append(&stage, &[ValRef::Input(0)], &[]);
        let b = p.append(&stage, &[ValRef::Input(0)], &[]);
        let out = p.append(
            &Program::new(
                "add",
                2,
                0,
                vec![Instr::AddCtCt(ValRef::Input(0), ValRef::Input(1))],
                ValRef::Instr(0),
            ),
            &[a, b],
            &[],
        );
        p.output = out;
        assert_eq!(p.rot_count(), 2);
        let (o2, _) = optimize(&p, OptLevel::O2);
        assert_eq!(o2.rot_count(), 1, "\n{o2}");
        assert_same_semantics(&p, &o2, 4);
    }

    /// The "identity rotation removed" pin: `rot(rot(x, 2), -2)` folds to
    /// the unrotated value; partial chains fold to one rotation.
    #[test]
    fn rotation_chains_fold_and_identities_vanish() {
        let raw = Program::new(
            "rot-chain",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 2),
                Instr::RotCt(ValRef::Instr(0), -2),
                Instr::AddCtPt(ValRef::Instr(1), PtOperand::Splat(1)),
                Instr::RotCt(ValRef::Instr(2), 1),
                Instr::RotCt(ValRef::Instr(3), 2),
            ],
            ValRef::Instr(4),
        );
        let (o2, _) = optimize(&raw, OptLevel::O2);
        // rot(2)/rot(-2) cancel entirely; rot(1)/rot(2) fold to rot(3).
        assert_eq!(o2.rot_count(), 1, "\n{o2}");
        assert_eq!(o2.instrs[1], Instr::RotCt(ValRef::Instr(0), 3));
        assert_same_semantics(&raw, &o2, 6);
    }

    /// Re-optimizing optimized output is a fixpoint with zero rewrites, at
    /// every level.
    #[test]
    fn optimization_is_idempotent() {
        let raw = Program::new(
            "mixed",
            2,
            1,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::RotCt(ValRef::Instr(0), 2),
                Instr::MulCtCt(ValRef::Instr(1), ValRef::Input(1)),
                Instr::MulCtPt(ValRef::Instr(2), PtOperand::Input(0)),
                Instr::RotCt(ValRef::Input(0), 1), // duplicate of instr 0
                Instr::AddCtCt(ValRef::Instr(3), ValRef::Instr(4)),
            ],
            ValRef::Instr(5),
        );
        for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
            let (once, _) = optimize(&raw, level);
            let (twice, report) = optimize(&once, level);
            assert_eq!(once, twice, "{level} not idempotent");
            assert_eq!(report.total_rewrites, 0, "{level}: {report}");
        }
    }

    /// Under a legality with no relinearization support, no pipeline at
    /// any level may insert a `relin-ct` — the forbidden op is skipped,
    /// not rewritten in. Programs that never needed relin stay legal; a
    /// multiply whose size-3 result escapes comes out *reported* illegal
    /// instead of silently "fixed" with an op the backend cannot run.
    #[test]
    fn passes_never_insert_ops_the_scheme_forbids() {
        let no_relin = SchemeLegality {
            relin: false,
            rot: true,
            mul_ct_ct: true,
        };
        let with_mul = Program::new(
            "needs-relin",
            2,
            0,
            vec![
                Instr::MulCtCt(ValRef::Input(0), ValRef::Input(1)),
                Instr::AddCtCt(ValRef::Instr(0), ValRef::Input(0)),
            ],
            ValRef::Instr(1),
        );
        for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
            let (out, _) = optimize_with(&with_mul, level, &no_relin);
            assert_eq!(out.relin_count(), 0, "{level} inserted forbidden relin");
            assert_same_semantics(&with_mul, &out, 6);
            // The size-3 escape is reported, not asserted away.
            assert!(analysis::check_backend_legal_with(&out, &no_relin).is_err());
        }
        // A relin-free program stays legal through the gated pipelines.
        let rot_only = Program::new(
            "rot-add",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::RotCt(ValRef::Instr(0), 2),
                Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(1)),
            ],
            ValRef::Instr(2),
        );
        for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
            let (out, _) = optimize_with(&rot_only, level, &no_relin);
            assert!(analysis::check_backend_legal_with(&out, &no_relin).is_ok());
            assert_same_semantics(&rot_only, &out, 6);
        }
        // Full-legality gating is exactly the ungated pipeline.
        let (gated, _) = optimize_with(&with_mul, OptLevel::O2, &SchemeLegality::full());
        let (ungated, _) = optimize(&with_mul, OptLevel::O2);
        assert_eq!(gated, ungated);
    }

    #[test]
    fn opt_level_parses_common_spellings() {
        for (s, want) in [
            ("0", OptLevel::O0),
            ("O1", OptLevel::O1),
            ("-O2", OptLevel::O2),
            ("o2", OptLevel::O2),
        ] {
            assert_eq!(s.parse::<OptLevel>().unwrap(), want);
        }
        assert!("fast".parse::<OptLevel>().is_err());
    }
}
