//! Padding-stability lifting: proving that a kernel synthesized at model
//! size `n` computes the same masked outputs at every ciphertext size
//! `N ≥ 2n`.
//!
//! Porcupine (like the paper) synthesizes and verifies at the kernel's
//! natural model size (e.g. 25 slots for a 5×5 padded image) but deploys on
//! ciphertexts with thousands of slots. Circular rotation wraps differently
//! at the two sizes, so lifting needs an argument:
//!
//! **Theorem (padding stability).** Let `P` be a straight-line Quill kernel
//! whose per-path total rotation offset is bounded by `B < n`, with inputs
//! supported on slots `[0, n)` and zeros elsewhere. If the masked symbolic
//! outputs of `P` agree at sizes `n` and `2n` (inputs zero-extended), they
//! agree at every size `N ≥ 2n`.
//!
//! *Proof sketch.* Each read path from output slot `j` (masked, so `j < n`)
//! accumulates a net offset `o` with `|o| ≤ B < n`, reading slot
//! `(j + o) mod size`. If `0 ≤ j + o < n`, all sizes read the same data
//! slot. Otherwise `j + o ∈ (-n, 0) ∪ [n, 2n)`: at size `2n` the read lands
//! in `[n, 2n)`, a zero slot; at size `N ≥ 2n` it lands in
//! `[N−n, N) ∪ [n, 2n)`, also zero slots. So sizes `2n` and `N` agree on
//! every path; agreement between `n` and `2n` then pins the value at all
//! sizes. ∎
//!
//! The check below is exact (canonical symbolic forms at both sizes), so a
//! kernel that passes it runs unchanged on the BFV backend with any row
//! size `≥ 2n` — which the integration tests confirm end to end.

use quill::interp;
use quill::program::{Instr, Program};
use quill::symbolic::SymPoly;
use std::error::Error;
use std::fmt;

/// Why lifting was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiftError {
    /// The conservative rotation-offset bound reaches `n`; the two-point
    /// check is then inconclusive.
    OffsetBoundTooLarge {
        /// Sum of |rotation| along the worst path.
        bound: i64,
        /// The model size.
        n: usize,
    },
    /// The masked outputs differ between sizes `n` and `2n`: the kernel
    /// depends on wrap-around and must not be lifted.
    NotStable {
        /// First differing masked slot.
        slot: usize,
    },
}

impl fmt::Display for LiftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiftError::OffsetBoundTooLarge { bound, n } => write!(
                f,
                "rotation offset bound {bound} reaches the model size {n}; enlarge the model"
            ),
            LiftError::NotStable { slot } => write!(
                f,
                "output slot {slot} depends on wrap-around at the model size; kernel is not liftable"
            ),
        }
    }
}

impl Error for LiftError {}

/// Worst-case total |rotation| along any input→output path.
pub fn rotation_offset_bound(prog: &Program) -> i64 {
    let mut bound = vec![0i64; prog.instrs.len()];
    for (i, instr) in prog.instrs.iter().enumerate() {
        let operand_bound = instr
            .ct_operands()
            .iter()
            .map(|op| match op {
                quill::program::ValRef::Input(_) => 0,
                quill::program::ValRef::Instr(j) => bound[*j],
            })
            .max()
            .unwrap_or(0);
        bound[i] = operand_bound
            + match instr {
                Instr::RotCt(_, r) => r.abs(),
                _ => 0,
            };
    }
    match prog.output {
        quill::program::ValRef::Input(_) => 0,
        quill::program::ValRef::Instr(j) => bound[j],
    }
}

/// Symbolic outputs at size `size` with inputs supported on `[0, n)` (same
/// variable ids as [`interp::eval_symbolic`] at size `n`) and zeros above.
fn symbolic_at_size(prog: &Program, n: usize, size: usize, t: u64) -> Vec<SymPoly> {
    let make = |base: usize| -> Vec<SymPoly> {
        (0..size)
            .map(|i| {
                if i < n {
                    SymPoly::var((base + i) as u32, t)
                } else {
                    SymPoly::zero(t)
                }
            })
            .collect()
    };
    let ct_inputs: Vec<Vec<SymPoly>> = (0..prog.num_ct_inputs).map(|j| make(j * n)).collect();
    let ct_vars = prog.num_ct_inputs * n;
    let pt_inputs: Vec<Vec<SymPoly>> = (0..prog.num_pt_inputs)
        .map(|j| make(ct_vars + j * n))
        .collect();
    interp::eval(prog, &ct_inputs, &pt_inputs)
}

/// Checks padding stability of `prog` for masked slots at model size `n`.
///
/// # Errors
///
/// Returns [`LiftError`] if the offset bound reaches `n` or the masked
/// outputs differ between sizes `n` and `2n`.
pub fn check_padding_stable(
    prog: &Program,
    n: usize,
    mask: &[bool],
    t: u64,
) -> Result<(), LiftError> {
    assert_eq!(mask.len(), n, "mask must cover the model slots");
    let bound = rotation_offset_bound(prog);
    if bound >= n as i64 {
        return Err(LiftError::OffsetBoundTooLarge { bound, n });
    }
    let at_n = interp::eval_symbolic(prog, n, t);
    let at_2n = symbolic_at_size(prog, n, 2 * n, t);
    for slot in 0..n {
        if mask[slot] && at_n[slot] != at_2n[slot] {
            return Err(LiftError::NotStable { slot });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use quill::program::{Instr, Program, ValRef};

    #[test]
    fn offset_bound_accumulates_along_paths() {
        let p = Program::new(
            "rots",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 3),
                Instr::RotCt(ValRef::Instr(0), -2),
                Instr::AddCtCt(ValRef::Instr(1), ValRef::Input(0)),
            ],
            ValRef::Instr(2),
        );
        assert_eq!(rotation_offset_bound(&p), 5);
    }

    #[test]
    fn stable_kernel_passes() {
        // out[0] = x0 + x1 via rotate-left-1: reads stay in [0, n) for the
        // masked slot, so this is stable.
        let p = Program::new(
            "pairsum",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
            ],
            ValRef::Instr(1),
        );
        let mut mask = vec![false; 4];
        mask[0] = true;
        assert!(check_padding_stable(&p, 4, &mask, 65537).is_ok());
    }

    #[test]
    fn wraparound_dependence_is_rejected() {
        // Same program but masking slot 3: out[3] = x3 + x0 uses the wrap,
        // which differs at larger sizes (x0 would be a zero slot).
        let p = Program::new(
            "pairsum",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
            ],
            ValRef::Instr(1),
        );
        let mut mask = vec![false; 4];
        mask[3] = true;
        assert_eq!(
            check_padding_stable(&p, 4, &mask, 65537),
            Err(LiftError::NotStable { slot: 3 })
        );
    }

    #[test]
    fn oversized_rotation_bound_is_flagged() {
        let p = Program::new(
            "big-rot",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 3),
                Instr::RotCt(ValRef::Instr(0), 3),
            ],
            ValRef::Instr(1),
        );
        let mask = vec![true; 4];
        assert!(matches!(
            check_padding_stable(&p, 4, &mask, 65537),
            Err(LiftError::OffsetBoundTooLarge { bound: 6, n: 4 })
        ));
    }
}
