//! Multi-step synthesis (§6.3): composing independently synthesized kernels
//! into larger pipelines at their natural break points.
//!
//! Program synthesis stops scaling around 10–12 instructions, so Porcupine
//! partitions applications like Sobel (Gx + Gy + magnitude) and the Harris
//! corner detector (gradients + blurs + response) into stages, synthesizes
//! each stage, and stitches the programs back together here. Composition
//! itself is mechanical (`Program::append`); the rewrites that make the
//! stitched pipeline cheap live in the middle-end ([`crate::opt`]):
//! [`PipelineBuilder::finish`] runs the builder's historical local cleanup
//! (syntactic CSE + DCE, so stages over the same input share identical
//! rotations), and [`PipelineBuilder::finish_optimized`] additionally runs
//! the full `-O` pipeline — global CSE, rotation folding, lazy
//! relinearization, DCE — and returns backend-legal IR.
//!
//! Each stage goes through [`crate::cegis::synthesize`] unchanged, so
//! staged pipelines inherit both the phase-1 strategy selection
//! ([`crate::cegis::SearchStrategy`]) and the persistent synthesis cache
//! ([`crate::cache`]) per stage: a warm cache replays every previously
//! synthesized stage without searching.

use crate::cegis::{synthesize, SynthesisError, SynthesisOptions};
use crate::sketch::Sketch;
use crate::spec::KernelSpec;
use quill::program::{Program, ValRef};

/// Builds a pipeline program by appending synthesized stages.
///
/// # Examples
///
/// ```
/// use porcupine::multistep::PipelineBuilder;
/// use quill::program::{Instr, Program, ValRef};
///
/// // A toy "gradient": shift-difference, then square it via a second stage.
/// let diff = Program::new(
///     "diff", 1, 0,
///     vec![
///         Instr::RotCt(ValRef::Input(0), 1),
///         Instr::SubCtCt(ValRef::Instr(0), ValRef::Input(0)),
///     ],
///     ValRef::Instr(1),
/// );
/// let square = Program::new(
///     "square", 1, 0,
///     vec![Instr::MulCtCt(ValRef::Input(0), ValRef::Input(0))],
///     ValRef::Instr(0),
/// );
/// let mut b = PipelineBuilder::new("grad-sq", 1, 0);
/// let d = b.add_stage(&diff, &[ValRef::Input(0)], &[]);
/// let s = b.add_stage(&square, &[d], &[]);
/// let prog = b.finish(s);
/// assert_eq!(prog.len(), 3);
/// assert!(prog.validate().is_ok());
/// ```
#[derive(Debug)]
pub struct PipelineBuilder {
    prog: Program,
}

impl PipelineBuilder {
    /// Starts a pipeline with the given input arities.
    pub fn new(name: impl Into<String>, num_ct_inputs: usize, num_pt_inputs: usize) -> Self {
        PipelineBuilder {
            prog: Program::new(
                name,
                num_ct_inputs,
                num_pt_inputs,
                Vec::new(),
                ValRef::Input(0),
            ),
        }
    }

    /// Appends a stage, wiring its ciphertext inputs to pipeline values and
    /// its plaintext inputs to pipeline plaintext indices. Returns the
    /// stage's output value.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatches (see [`Program::append`]).
    pub fn add_stage(
        &mut self,
        stage: &Program,
        ct_binding: &[ValRef],
        pt_binding: &[usize],
    ) -> ValRef {
        self.prog.append(stage, ct_binding, pt_binding)
    }

    /// Synthesizes a stage from its spec and sketch, then appends it — one
    /// `SynthesisOptions` (timeout, seed, and crucially `parallelism`)
    /// governs every stage of the pipeline, so a multi-step build inherits
    /// the same determinism contract as a single kernel.
    ///
    /// # Errors
    ///
    /// Returns the stage's [`SynthesisError`] unchanged.
    pub fn synthesize_stage(
        &mut self,
        spec: &KernelSpec,
        sketch: &Sketch,
        options: &SynthesisOptions,
        ct_binding: &[ValRef],
        pt_binding: &[usize],
    ) -> Result<ValRef, SynthesisError> {
        let result = synthesize(spec, sketch, options)?;
        Ok(self.add_stage(&result.program, ct_binding, pt_binding))
    }

    /// Finishes the pipeline with the given output, then runs CSE and dead
    /// code elimination so stages share identical rotations. The result
    /// carries no explicit relinearizations — lower it through
    /// [`crate::opt::optimize`] (or use
    /// [`PipelineBuilder::finish_optimized`]) before executing on the BFV
    /// backend.
    pub fn finish(mut self, output: ValRef) -> Program {
        self.prog.output = output;
        let prog = self.prog.cse();
        debug_assert!(prog.validate().is_ok());
        prog
    }

    /// [`PipelineBuilder::finish`] plus the middle-end at `level`: returns
    /// backend-legal IR (relinearizations placed — eagerly at `-O0`,
    /// lazily at `-O2`) and the per-pass rewrite report.
    pub fn finish_optimized(
        self,
        output: ValRef,
        level: crate::opt::OptLevel,
    ) -> (Program, crate::opt::OptReport) {
        crate::opt::optimize(&self.finish(output), level)
    }

    /// [`PipelineBuilder::finish_with_params_for`] on the BFV backend —
    /// the historical single-scheme entry point, kept so existing call
    /// sites read unchanged.
    ///
    /// # Errors
    ///
    /// Returns the [`bfv::params::SelectError`] when no parameter set
    /// satisfies the policy for this pipeline.
    pub fn finish_with_params(
        self,
        output: ValRef,
        level: crate::opt::OptLevel,
        policy: &rlwe_ring::params::ParamPolicy,
        min_slots: usize,
        t: u64,
    ) -> Result<
        (
            Program,
            crate::opt::OptReport,
            rlwe_ring::params::RlweParams,
        ),
        rlwe_ring::params::SelectError,
    > {
        self.finish_with_params_for(
            quill::scheme::SchemeId::Bfv,
            output,
            level,
            policy,
            min_slots,
            t,
        )
    }

    /// [`PipelineBuilder::finish_optimized`] plus scheme parameter
    /// resolution for the lowered pipeline: the middle-end runs gated on
    /// `scheme`'s instruction legality, then `policy` is resolved against
    /// the backend-legal program under that scheme's noise model (so
    /// multi-step noise — shared rotations, lazy relins across stage
    /// seams, BGV's per-multiply bit doubling — is what gets charged),
    /// needing `min_slots` batching slots and plaintext modulus `t`.
    ///
    /// # Errors
    ///
    /// Returns the scheme selector's [`rlwe_ring::params::SelectError`]
    /// when no parameter set satisfies the policy for this pipeline.
    pub fn finish_with_params_for(
        self,
        scheme: quill::scheme::SchemeId,
        output: ValRef,
        level: crate::opt::OptLevel,
        policy: &rlwe_ring::params::ParamPolicy,
        min_slots: usize,
        t: u64,
    ) -> Result<
        (
            Program,
            crate::opt::OptReport,
            rlwe_ring::params::RlweParams,
        ),
        rlwe_ring::params::SelectError,
    > {
        let (prog, report) =
            crate::opt::optimize_with(&self.finish(output), level, &scheme.legality());
        let params = crate::scheme::resolve_params(scheme, policy, &prog, min_slots, t)?;
        Ok((prog, report, params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::{ArithOp, RotationSet, SketchOp};
    use crate::spec::GenericReference;
    use quill::interp;
    use quill::program::Instr;
    use std::num::NonZeroUsize;

    fn shift_sum() -> Program {
        Program::new(
            "shift-sum",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
            ],
            ValRef::Instr(1),
        )
    }

    #[test]
    fn two_stage_pipeline_computes_composition() {
        // stage1 = x + rot(x,1); stage2 = y + rot(y,1) ⇒ out = sum of 4 window.
        let mut b = PipelineBuilder::new("twice", 1, 0);
        let s1 = b.add_stage(&shift_sum(), &[ValRef::Input(0)], &[]);
        let s2 = b.add_stage(&shift_sum(), &[s1], &[]);
        let p = b.finish(s2);
        let out = interp::eval_concrete(&p, &[vec![1, 2, 3, 4]], &[], 65537);
        // out[0] = (x0+x1) + (x1+x2) = 1+2+2+3
        assert_eq!(out[0], 8);
    }

    #[test]
    fn shared_rotations_are_cse_d() {
        // Two stages over the *same* input duplicate rot(x,1); CSE merges.
        let mut b = PipelineBuilder::new("shared", 1, 0);
        let s1 = b.add_stage(&shift_sum(), &[ValRef::Input(0)], &[]);
        let s2 = b.add_stage(&shift_sum(), &[ValRef::Input(0)], &[]);
        // combine the two (identical) stage outputs
        let combine = Program::new(
            "add",
            2,
            0,
            vec![Instr::AddCtCt(ValRef::Input(0), ValRef::Input(1))],
            ValRef::Instr(0),
        );
        let out = b.add_stage(&combine, &[s1, s2], &[]);
        let p = b.finish(out);
        // Without CSE: 2 rots + 2 adds + 1 add = 5. With CSE the duplicate
        // rot AND the duplicate add collapse: 1 rot + 1 add + 1 add = 3.
        assert_eq!(p.len(), 3);
        let out = interp::eval_concrete(&p, &[vec![1, 2, 3, 4]], &[], 65537);
        assert_eq!(out[0], 2 * (1 + 2));
    }

    /// `synthesize_stage` wires the synthesizer into the builder, and the
    /// stage result is independent of the `parallelism` knob.
    #[test]
    fn synthesized_stages_compose_and_ignore_thread_count() {
        struct PairSum;
        impl GenericReference for PairSum {
            fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
                let x = &ct[0];
                let n = x.len();
                (0..n).map(|i| x[i].add(&x[(i + 1) % n])).collect()
            }
        }
        use quill::ring::Ring;
        let mut mask = vec![true; 4];
        mask[3] = false;
        let spec = KernelSpec::new("pairsum", 4, 1, 0, mask, 65537, Box::new(PairSum));
        let sketch = Sketch::new(
            vec![SketchOp::rotated(ArithOp::AddCtCt)],
            RotationSet::Explicit(vec![1]),
            2,
        );
        let build = |jobs: usize| {
            let options = SynthesisOptions {
                parallelism: NonZeroUsize::new(jobs).unwrap(),
                ..SynthesisOptions::default()
            };
            let mut b = PipelineBuilder::new("pairsum-twice", 1, 0);
            let s1 = b
                .synthesize_stage(&spec, &sketch, &options, &[ValRef::Input(0)], &[])
                .expect("stage 1 synthesizes");
            let s2 = b
                .synthesize_stage(&spec, &sketch, &options, &[s1], &[])
                .expect("stage 2 synthesizes");
            b.finish(s2)
        };
        let sequential = build(1);
        assert_eq!(sequential, build(3));
        let out = interp::eval_concrete(&sequential, &[vec![1, 2, 3, 4]], &[], 65537);
        assert_eq!(out[0], 1 + 2 + 2 + 3);
    }

    #[test]
    fn finish_with_params_selects_for_the_whole_pipeline() {
        use bfv::params::ParamPolicy;
        let square = Program::new(
            "square",
            1,
            0,
            vec![Instr::MulCtCt(ValRef::Input(0), ValRef::Input(0))],
            ValRef::Instr(0),
        );
        // One squaring stage vs three chained ones: the pipeline-level
        // selection must charge the composed depth, not the stage depth.
        let build = |stages: usize| {
            let mut b = PipelineBuilder::new("chain", 1, 0);
            let mut cur = ValRef::Input(0);
            for _ in 0..stages {
                cur = b.add_stage(&square, &[cur], &[]);
            }
            let (prog, _, params) = b
                .finish_with_params(
                    cur,
                    crate::opt::OptLevel::O2,
                    &ParamPolicy::auto(),
                    8,
                    65537,
                )
                .expect("selection succeeds");
            assert!(quill::analysis::check_backend_legal(&prog).is_ok());
            params
        };
        let shallow = build(1);
        let deep = build(3);
        let q_bits = |p: &bfv::params::BfvParams| {
            p.moduli
                .iter()
                .map(|&q| 64 - q.leading_zeros())
                .sum::<u32>()
        };
        assert!(q_bits(&deep) > q_bits(&shallow));
    }

    #[test]
    fn pt_bindings_remap() {
        let stage = Program::new(
            "weighted",
            1,
            1,
            vec![Instr::MulCtPt(
                ValRef::Input(0),
                quill::program::PtOperand::Input(0),
            )],
            ValRef::Instr(0),
        );
        let mut b = PipelineBuilder::new("pipeline", 1, 2);
        let s = b.add_stage(&stage, &[ValRef::Input(0)], &[1]); // bind to pt input 1
        let p = b.finish(s);
        let out = interp::eval_concrete(&p, &[vec![3, 4]], &[vec![10, 10], vec![7, 7]], 65537);
        assert_eq!(out, vec![21, 28]);
    }
}
