//! The synthesis search: an enumerative, sound-and-complete exploration of
//! the program space a sketch describes.
//!
//! Where the paper compiles its synthesis query to SMT (Rosette →
//! Boolector), we search the same space directly with a pruned DFS over
//! component assignments evaluated on the CEGIS examples. The pruning rules
//! implement §6's formulation optimizations:
//!
//! * **symmetry breaking** — commutative operands in canonical order;
//!   independent adjacent components in lexicographic order; SSA with the
//!   output defined last;
//! * **dead-code bounding** — with `r` components left, at most `2r` unused
//!   intermediates can still be consumed, so deeper prefixes are cut early;
//! * **observational equivalence** — a component whose value (on every
//!   example) duplicates an already-available value is skipped; CEGIS
//!   counter-examples restore any distinction that mattered;
//! * **rotation restrictions** — the sketch's rotation vocabulary (§6.1);
//! * **goal-directed last level** — only candidates whose value hits the
//!   target on the masked slots are expanded at the final component;
//! * **branch-and-bound** — in the optimization phase, prefixes whose cost
//!   lower bound already exceeds the bound are pruned.
//!
//! Like the SMT query, an exhausted search is a *proof* that no program (of
//! the given component count, satisfying the examples, under the cost
//! bound) exists in the sketch.
//!
//! # Two strategies over one space
//!
//! The same `SearchContext` drives two enumeration strategies, selected
//! through [`crate::cegis::SynthesisOptions::strategy`]:
//!
//! * **top-down DFS** (this module) — complete at a fixed component count;
//!   an `Unsat` is a proof. This is what iterative deepening and the
//!   cost-minimization phase run.
//! * **bottom-up term bank** ([`crate::bottom_up`]) — grows a bank of
//!   sub-terms level by level, deduplicated by their output vector on the
//!   CEGIS examples (observational equivalence) and by cost within a
//!   class, so shared subprograms are derived once instead of re-derived
//!   at every DFS prefix. The bank is capped for breadth, which makes the
//!   strategy incomplete: CEGIS falls back to the DFS when the bank
//!   exhausts without a solution, so `SketchTooRestrictive` remains a real
//!   proof. See the `bottom_up` module docs for the bank layout, the
//!   retention policy, and its determinism contract.
//!
//! # Architecture: `SearchContext` + per-worker state
//!
//! The search is split into two layers:
//!
//! * [`SearchContext`] — everything immutable for the duration of one
//!   query: the sketch, the concatenated example values, the masked target,
//!   plaintext operand values, and the latency table. It is `Sync` and
//!   shared by reference across worker threads.
//! * `WorkerState` — the mutable DFS state (placed components, the
//!   available-value arena, the observational-equivalence map, the running
//!   cost). Each worker owns one and restores it with snapshots on
//!   backtrack, exactly as the sequential search always did.
//!
//! # Subtree partitioning and the determinism contract
//!
//! [`SearchContext::run`] enumerates the candidates for the *first*
//! component slot once; each candidate roots a disjoint subtree of the
//! program space. Workers claim subtrees from a shared atomic counter (a
//! single-queue form of work stealing: an idle worker always takes the next
//! unexplored subtree) and search them with the ordinary sequential DFS.
//! Two pieces of shared state let workers prune each other:
//!
//! * a shared `AtomicU64` cost bound (bits of the cheapest complete program
//!   found so far) — prefixes whose lower bound *strictly exceeds* it are
//!   cut, which can never cut a program tied with the eventual optimum;
//! * a cancellation word — in first-solution mode, the lowest subtree index
//!   that found a program; workers on higher-indexed subtrees stop early
//!   because their result cannot win.
//!
//! Results merge with a canonical tie-break — cost first, then the
//! program's s-expression serialization — so the same query returns the
//! *identical* program at any thread count:
//!
//! * **first-solution mode** (no cost bound): the winner is the first
//!   program, in DFS order, of the lowest-indexed subtree containing one —
//!   precisely what the single-threaded DFS returns.
//! * **cheapest mode** (cost bound set): every subtree is exhausted under
//!   branch-and-bound and the canonical minimum is returned, a
//!   partition-independent value.
//!
//! Only a deadline expiry ([`SearchOutcome::Timeout`]) may yield a
//! thread-count-dependent result; it still carries the best program found
//! so far rather than discarding the partial progress.

use crate::sketch::{ArithOp, Sketch, SketchMode};
use crate::spec::{Example, KernelSpec};
use quill::cost::LatencyModel;
use quill::program::{Instr, Program, PtOperand, ValRef};
use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::time::Instant;

/// One placed component.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Comp {
    /// Arithmetic component: sketch op index plus `(value, rotation)`
    /// operands (rotation 0 = none).
    Arith {
        op_idx: usize,
        lhs: (usize, i64),
        rhs: Option<(usize, i64)>,
    },
    /// Explicit rotation component (ablation mode only).
    Rot { val: usize, amount: i64 },
}

/// Why the search stopped.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchOutcome {
    /// A satisfying program. Without a cost bound this is the first program
    /// in canonical DFS order; with one, the search space was exhausted and
    /// this is the cheapest program of cost ≤ the bound (ties broken by
    /// serialization), so a verified `Found` is optimal within the sketch.
    Found(Program),
    /// The space at this component count is exhausted — a completeness
    /// proof, like `unsat` from the SMT solver.
    Unsat,
    /// The deadline expired mid-search. `best` carries the best program
    /// found before the deadline (if any) so callers can salvage partial
    /// progress; it satisfies the examples but is not an optimality proof,
    /// and under parallelism it may depend on worker timing.
    Timeout {
        /// Best program found before the deadline, if any.
        best: Option<Program>,
    },
}

struct AvailEntry {
    /// Concatenated value across examples (length `n · num_examples`).
    vec: Vec<u64>,
    mdepth: u32,
    uses: u32,
    is_rot_result: bool,
}

/// What the search is asked to produce (derived from the cost bound).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Goal {
    /// Return the first satisfying program in DFS order (CEGIS phase 1).
    First,
    /// Exhaust the space and return the canonical cheapest program under
    /// the bound (CEGIS optimization phase).
    Cheapest,
}

/// The immutable, `Sync` half of the search: everything a worker needs to
/// read but never writes. Shared by reference across the `thread::scope`
/// workers of [`SearchContext::run`], and by the bottom-up term bank in
/// [`crate::bottom_up`].
pub(crate) struct SearchContext<'a> {
    pub(crate) sketch: &'a Sketch,
    pub(crate) examples: &'a [Example],
    pub(crate) n: usize,
    pub(crate) t: u64,
    pub(crate) num_inputs: usize,
    /// Target output, concatenated; compared only at `mask_idx`.
    pub(crate) target: Vec<u64>,
    pub(crate) mask_idx: Vec<usize>,
    /// Plaintext operand value per sketch op (concatenated), if any.
    pub(crate) pt_values: Vec<Option<Vec<u64>>>,
    pub(crate) op_latencies: Vec<f64>,
    pub(crate) min_op_latency: f64,
    pub(crate) rot_latency: f64,
    pub(crate) deadline: Option<Instant>,
    pub(crate) cost_bound: Option<f64>,
    pub(crate) name: String,
}

/// Total [`SearchContext::run`] / bottom-up invocations in this process.
/// The synthesis cache's "a hit skips the search entirely" contract is
/// asserted against this counter (not just timing) in the test suite.
static SEARCH_INVOCATIONS: AtomicU64 = AtomicU64::new(0);

/// How many search queries (DFS or bottom-up) this process has started.
pub fn search_invocations() -> u64 {
    SEARCH_INVOCATIONS.load(Relaxed)
}

pub(crate) fn count_search_invocation() {
    SEARCH_INVOCATIONS.fetch_add(1, Relaxed);
}

/// Deadline/cancellation checks happen every `TIMEOUT_CHECK_MASK + 1`
/// node expansions (a per-worker counter), not on every node: the DFS hot
/// loop never calls `Instant::now()` or touches cross-worker cache lines
/// more than once per ~4096 expansions.
const TIMEOUT_CHECK_MASK: u64 = 0xFFF;

/// Cross-worker state for one parallel query.
struct SharedSearch {
    /// Next unclaimed subtree index (the work queue).
    next: AtomicUsize,
    /// Lowest subtree index that found a program (first-solution mode);
    /// doubles as the cancellation flag for higher-indexed subtrees.
    found_idx: AtomicUsize,
    /// Bits of the cheapest complete-program cost found so far (cheapest
    /// mode). Monotonically non-increasing; `f64::to_bits` preserves order
    /// for the positive finite costs the latency model produces.
    best_bound: AtomicU64,
    /// Set once the deadline fires anywhere; every worker stops.
    timed_out: AtomicBool,
}

impl SharedSearch {
    fn new() -> Self {
        SharedSearch {
            next: AtomicUsize::new(0),
            found_idx: AtomicUsize::new(usize::MAX),
            best_bound: AtomicU64::new(f64::INFINITY.to_bits()),
            timed_out: AtomicBool::new(false),
        }
    }
}

/// Why a worker abandoned its current subtree.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Abort {
    No,
    /// A lower-indexed subtree already found a program; this subtree's
    /// result cannot win the merge, so the work is discarded safely.
    Superseded,
    /// The deadline fired.
    TimedOut,
}

/// The best complete program a worker has seen, under the canonical
/// `(cost bits, serialization)` order that makes the merge deterministic.
struct Best {
    cost_bits: u64,
    ser: String,
    prog: Program,
}

impl Best {
    fn beats(&self, cost_bits: u64, ser: &str) -> bool {
        (self.cost_bits, self.ser.as_str()) <= (cost_bits, ser)
    }
}

/// Everything one worker brings back from the subtrees it claimed.
#[derive(Default)]
struct WorkerYield {
    /// First-solution mode: `(subtree index, program)` per subtree that
    /// found one. The merge keeps the lowest index.
    firsts: Vec<(usize, Program)>,
    /// Cheapest mode: the canonical best across this worker's subtrees.
    best: Option<Best>,
}

impl<'a> SearchContext<'a> {
    pub(crate) fn new(
        spec: &'a KernelSpec,
        sketch: &'a Sketch,
        examples: &'a [Example],
        latency: &'a LatencyModel,
        deadline: Option<Instant>,
        cost_bound: Option<f64>,
    ) -> Self {
        let n = spec.n;
        let t = spec.t;
        let concat = |f: &dyn Fn(&Example) -> &[u64]| -> Vec<u64> {
            examples.iter().flat_map(|e| f(e).iter().copied()).collect()
        };
        let target = concat(&|e| &e.output);
        let mask_idx = (0..examples.len() * n)
            .filter(|i| spec.output_mask[i % n])
            .collect();
        let pt_values = sketch
            .ops
            .iter()
            .map(|op| match &op.op {
                ArithOp::AddCtPt(p) | ArithOp::SubCtPt(p) | ArithOp::MulCtPt(p) => Some(match p {
                    PtOperand::Input(i) => concat(&|e| &e.pt_inputs[*i]),
                    PtOperand::Splat(v) => {
                        vec![v.rem_euclid(t as i64) as u64; examples.len() * n]
                    }
                }),
                _ => None,
            })
            .collect();
        let op_latencies: Vec<f64> = sketch
            .ops
            .iter()
            .map(|op| match &op.op {
                ArithOp::AddCtCt => latency.add_ct_ct,
                ArithOp::SubCtCt => latency.sub_ct_ct,
                // The searcher emits no explicit relin-ct; every multiply
                // is charged its eager relinearization (what -O0 executes,
                // and an upper bound on the -O2 placement), keeping the
                // internal accounting consistent with
                // `quill::cost::eager_cost` in the CEGIS driver.
                ArithOp::MulCtCt => latency.mul_ct_ct + latency.relin_ct,
                ArithOp::AddCtPt(_) => latency.add_ct_pt,
                ArithOp::SubCtPt(_) => latency.sub_ct_pt,
                ArithOp::MulCtPt(_) => latency.mul_ct_pt,
            })
            .collect();
        let min_op_latency = op_latencies.iter().copied().fold(f64::INFINITY, f64::min);
        SearchContext {
            sketch,
            examples,
            n,
            t,
            num_inputs: spec.num_ct_inputs,
            target,
            mask_idx,
            pt_values,
            op_latencies,
            min_op_latency,
            rot_latency: latency.rot_ct,
            deadline,
            cost_bound,
            name: spec.name.clone(),
        }
    }

    /// Searches for a program with exactly `num_components` components,
    /// using up to `jobs` worker threads (capped at the subtree count; one
    /// worker runs inline without spawning).
    pub(crate) fn run(&self, num_components: usize, jobs: NonZeroUsize) -> SearchOutcome {
        assert!(
            num_components >= 1,
            "a program needs at least one component"
        );
        count_search_invocation();
        let goal = if self.cost_bound.is_some() {
            Goal::Cheapest
        } else {
            Goal::First
        };
        let mut root = WorkerState::root(self);
        let subtrees = self.candidates(&root, None, num_components == 1);
        let shared = SharedSearch::new();
        let workers = jobs.get().min(subtrees.len()).max(1);
        let yields: Vec<WorkerYield> = if workers == 1 {
            vec![self.worker(&shared, &subtrees, num_components, goal, &mut root)]
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let shared = &shared;
                        let subtrees = &subtrees;
                        s.spawn(move || {
                            let mut state = WorkerState::root(self);
                            self.worker(shared, subtrees, num_components, goal, &mut state)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("search worker panicked"))
                    .collect()
            })
        };

        let timed_out = shared.timed_out.load(Relaxed);
        let best = match goal {
            Goal::First => yields
                .into_iter()
                .flat_map(|y| y.firsts)
                .min_by_key(|(i, _)| *i)
                .map(|(_, p)| p),
            Goal::Cheapest => yields
                .into_iter()
                .filter_map(|y| y.best)
                .min_by(|a, b| (a.cost_bits, &a.ser).cmp(&(b.cost_bits, &b.ser)))
                .map(|b| b.prog),
        };
        match (timed_out, best) {
            (true, best) => SearchOutcome::Timeout { best },
            (false, Some(p)) => SearchOutcome::Found(p),
            (false, None) => SearchOutcome::Unsat,
        }
    }

    /// One worker: claim subtrees off the shared queue until it drains (or
    /// the deadline fires) and search each with the sequential DFS.
    fn worker(
        &self,
        sh: &SharedSearch,
        subtrees: &[Candidate],
        num_components: usize,
        goal: Goal,
        state: &mut WorkerState,
    ) -> WorkerYield {
        let mut y = WorkerYield::default();
        let mut comps: Vec<Comp> = Vec::with_capacity(num_components);
        loop {
            let i = sh.next.fetch_add(1, Relaxed);
            if i >= subtrees.len() || sh.timed_out.load(Relaxed) {
                break;
            }
            // A lower-indexed subtree already has a program: ours cannot win.
            if goal == Goal::First && sh.found_idx.load(Relaxed) < i {
                continue;
            }
            state.abort = Abort::No;
            let cand = &subtrees[i];
            let snap = state.push(self, cand);
            comps.push(cand.comp.clone());
            let found = if num_components == 1 {
                self.try_complete(sh, state, &comps, goal, &mut y.best)
            } else {
                self.dfs(
                    sh,
                    state,
                    &mut comps,
                    num_components - 1,
                    goal,
                    &mut y.best,
                    i,
                )
            };
            comps.pop();
            state.pop(snap);
            if let Some(p) = found {
                y.firsts.push((i, p));
                sh.found_idx.fetch_min(i, Relaxed);
            }
            if state.abort == Abort::TimedOut {
                break;
            }
        }
        y
    }

    /// Per-node bookkeeping: counts the expansion and, every ~4096 nodes,
    /// checks the wall clock and the cross-worker cancellation state.
    /// Returns `true` when the current subtree must be abandoned.
    fn tick(&self, sh: &SharedSearch, state: &mut WorkerState, goal: Goal, my_idx: usize) -> bool {
        if state.abort != Abort::No {
            return true;
        }
        state.nodes += 1;
        if state.nodes & TIMEOUT_CHECK_MASK == 0 {
            if sh.timed_out.load(Relaxed) {
                state.abort = Abort::TimedOut;
            } else if goal == Goal::First && sh.found_idx.load(Relaxed) < my_idx {
                state.abort = Abort::Superseded;
            } else if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    sh.timed_out.store(true, Relaxed);
                    state.abort = Abort::TimedOut;
                }
            }
        }
        state.abort != Abort::No
    }

    /// Branch-and-bound (cheapest mode): cut a prefix whose cost lower
    /// bound *strictly* exceeds the caller's bound or the best cost found
    /// anywhere so far. Both comparisons are strict — the bound is
    /// *tie-inclusive* — so every program costing exactly the bound (or
    /// tied with the global optimum) stays alive in every subtree. That is
    /// what makes the canonical `(cost, serialization)` merge
    /// partition-independent, and it also makes the cheapest-mode result a
    /// canonical function of the query alone: the CEGIS optimizer passes
    /// the incumbent's cost as the bound and always gets the canonical
    /// minimum of the whole tied-or-better class back, regardless of which
    /// strategy produced the incumbent.
    fn bnb_cut(&self, sh: &SharedSearch, state: &WorkerState, remaining: usize) -> bool {
        let Some(bound) = self.cost_bound else {
            return false;
        };
        let lb = (state.latency_sum + remaining as f64 * self.min_op_latency)
            * (1.0 + state.max_mdepth as f64);
        lb > bound || lb > f64::from_bits(sh.best_bound.load(Relaxed))
    }

    /// Accepts or rejects a fully placed component list. In first-solution
    /// mode a surviving program is returned to short-circuit the DFS; in
    /// cheapest mode it is folded into the worker's canonical best and the
    /// shared bound is tightened.
    fn try_complete(
        &self,
        sh: &SharedSearch,
        state: &WorkerState,
        comps: &[Comp],
        goal: Goal,
        best: &mut Option<Best>,
    ) -> Option<Program> {
        // All components used check: every intermediate except the last
        // must have a use.
        let all_used = state
            .avail
            .iter()
            .skip(self.num_inputs)
            .take(comps.len() - 1)
            .all(|a| a.uses > 0);
        if !all_used {
            return None;
        }
        let final_cost = state.latency_sum * (1.0 + state.max_mdepth as f64);
        match goal {
            Goal::First => Some(self.materialize(comps)),
            Goal::Cheapest => {
                // Tie-inclusive: a program costing exactly the bound is
                // kept and competes on the serialization tie-break.
                if self.cost_bound.is_some_and(|b| final_cost > b) {
                    return None;
                }
                let cost_bits = final_cost.to_bits();
                sh.best_bound.fetch_min(cost_bits, Relaxed);
                if best.as_ref().is_some_and(|b| b.cost_bits < cost_bits) {
                    return None; // cheaper program already in hand; skip the serialization
                }
                let prog = self.materialize(comps);
                let ser = prog.to_string();
                if !best.as_ref().is_some_and(|b| b.beats(cost_bits, &ser)) {
                    *best = Some(Best {
                        cost_bits,
                        ser,
                        prog,
                    });
                }
                None
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        sh: &SharedSearch,
        state: &mut WorkerState,
        comps: &mut Vec<Comp>,
        remaining: usize,
        goal: Goal,
        best: &mut Option<Best>,
        my_idx: usize,
    ) -> Option<Program> {
        if self.tick(sh, state, goal, my_idx) {
            return None;
        }
        // Dead-code bound: every unused intermediate must be consumable by
        // the remaining components (two ct operands each).
        let unused = state
            .avail
            .iter()
            .skip(self.num_inputs)
            .filter(|a| a.uses == 0)
            .count();
        if unused > 2 * remaining {
            return None;
        }
        if self.bnb_cut(sh, state, remaining) {
            return None;
        }

        let is_last = remaining == 1;
        let candidates = self.candidates(state, comps.last(), is_last);
        for cand in candidates {
            if state.abort != Abort::No {
                return None;
            }
            let snap = state.push(self, &cand);
            comps.push(cand.comp.clone());
            let found = if is_last {
                self.try_complete(sh, state, comps, goal, best)
            } else {
                self.dfs(sh, state, comps, remaining - 1, goal, best, my_idx)
            };
            comps.pop();
            state.pop(snap);
            if found.is_some() {
                return found;
            }
        }
        None
    }

    pub(crate) fn rotate_concat(&self, v: &[u64], r: i64) -> Vec<u64> {
        if r == 0 {
            return v.to_vec();
        }
        let n = self.n;
        let shift = r.rem_euclid(n as i64) as usize;
        let mut out = Vec::with_capacity(v.len());
        for chunk in v.chunks_exact(n) {
            out.extend_from_slice(&chunk[shift..]);
            out.extend_from_slice(&chunk[..shift]);
        }
        out
    }

    pub(crate) fn apply_op(
        &self,
        op: &ArithOp,
        op_idx: usize,
        lhs: &[u64],
        rhs: Option<&[u64]>,
    ) -> Vec<u64> {
        let t = self.t as u128;
        match op {
            ArithOp::AddCtCt => zip_mod(lhs, rhs.unwrap(), self.t, |a, b| a + b),
            ArithOp::SubCtCt => zip_mod(lhs, rhs.unwrap(), self.t, |a, b| a + self.t as u128 - b),
            ArithOp::MulCtCt => lhs
                .iter()
                .zip(rhs.unwrap())
                .map(|(&a, &b)| ((a as u128 * b as u128) % t) as u64)
                .collect(),
            ArithOp::AddCtPt(_) => zip_mod(
                lhs,
                self.pt_values[op_idx].as_ref().unwrap(),
                self.t,
                |a, b| a + b,
            ),
            ArithOp::SubCtPt(_) => zip_mod(
                lhs,
                self.pt_values[op_idx].as_ref().unwrap(),
                self.t,
                |a, b| a + self.t as u128 - b,
            ),
            ArithOp::MulCtPt(_) => lhs
                .iter()
                .zip(self.pt_values[op_idx].as_ref().unwrap())
                .map(|(&a, &b)| ((a as u128 * b as u128) % t) as u64)
                .collect(),
        }
    }

    pub(crate) fn matches_target(&self, v: &[u64]) -> bool {
        self.mask_idx.iter().all(|&i| v[i] == self.target[i])
    }

    /// Enumerates the legal components for the next slot.
    fn candidates(
        &self,
        state: &WorkerState,
        prev: Option<&Comp>,
        is_last: bool,
    ) -> Vec<Candidate> {
        let rotated = self.rotated_variants(state);
        if is_last {
            self.candidates_last(state, prev, &rotated)
        } else {
            self.candidates_mid(state, prev, &rotated)
        }
    }

    /// Pre-computes the rotated variants of every available value.
    fn rotated_variants(&self, state: &WorkerState) -> Vec<Vec<(i64, Vec<u64>)>> {
        let rot_choices: Vec<i64> = if self.sketch.mode == SketchMode::ExplicitRotate {
            vec![0]
        } else {
            self.sketch.operand_rotations()
        };
        state
            .avail
            .iter()
            .map(|a| {
                rot_choices
                    .iter()
                    .map(|&r| (r, self.rotate_concat(&a.vec, r)))
                    .collect()
            })
            .collect()
    }

    fn candidates_mid(
        &self,
        state: &WorkerState,
        prev: Option<&Comp>,
        rotated: &[Vec<(i64, Vec<u64>)>],
    ) -> Vec<Candidate> {
        let mut out = Vec::new();
        let explicit = self.sketch.mode == SketchMode::ExplicitRotate;
        for (op_idx, sop) in self.sketch.ops.iter().enumerate() {
            let lhs_rots = if !explicit && sop.lhs_rot {
                rotated[0].len()
            } else {
                1
            };
            let rhs_rots = if !explicit && sop.rhs_rot {
                rotated[0].len()
            } else {
                1
            };
            if sop.op.binary_ct() {
                let symmetric_holes = sop.lhs_rot == sop.rhs_rot;
                for li in 0..state.avail.len() {
                    for lr in 0..lhs_rots {
                        for ri in 0..state.avail.len() {
                            for rr in 0..rhs_rots {
                                if sop.op.commutative() {
                                    // Canonical operand order.
                                    if symmetric_holes && (ri, rr) < (li, lr) {
                                        continue;
                                    }
                                    // Asymmetric holes: only the unrotated
                                    // case is genuinely symmetric.
                                    if !symmetric_holes && rotated[ri][rr].0 == 0 && ri < li {
                                        continue;
                                    }
                                }
                                // sub of identical operands is zero: skip.
                                if matches!(sop.op, ArithOp::SubCtCt) && li == ri && lr == rr {
                                    continue;
                                }
                                let lhs = &rotated[li][lr];
                                let rhs = &rotated[ri][rr];
                                let vec = self.apply_op(&sop.op, op_idx, &lhs.1, Some(&rhs.1));
                                self.consider(
                                    state,
                                    prev,
                                    false,
                                    Comp::Arith {
                                        op_idx,
                                        lhs: (li, lhs.0),
                                        rhs: Some((ri, rhs.0)),
                                    },
                                    vec,
                                    &mut out,
                                );
                            }
                        }
                    }
                }
            } else {
                for (li, variants) in rotated.iter().enumerate() {
                    for lhs in variants.iter().take(lhs_rots) {
                        let vec = self.apply_op(&sop.op, op_idx, &lhs.1, None);
                        self.consider(
                            state,
                            prev,
                            false,
                            Comp::Arith {
                                op_idx,
                                lhs: (li, lhs.0),
                                rhs: None,
                            },
                            vec,
                            &mut out,
                        );
                    }
                }
            }
        }

        // Explicit-rotation components (ablation mode).
        if explicit {
            for (val, a) in state.avail.iter().enumerate() {
                if a.is_rot_result {
                    continue; // no nested rotations, as in the paper
                }
                for &r in &self.sketch.rotation_amounts {
                    let vec = self.rotate_concat(&a.vec, r);
                    self.consider(
                        state,
                        prev,
                        false,
                        Comp::Rot { val, amount: r },
                        vec,
                        &mut out,
                    );
                }
            }
        }
        out
    }

    /// Goal-directed final component (§6-style formulation optimization):
    /// it must produce the target on the masked slots *and* consume every
    /// still-unused intermediate, so enumeration is restricted to the (at
    /// most two) unused values and checked with an early-exit masked
    /// comparison before the full vector is materialized.
    fn candidates_last(
        &self,
        state: &WorkerState,
        prev: Option<&Comp>,
        rotated: &[Vec<(i64, Vec<u64>)>],
    ) -> Vec<Candidate> {
        let mut out = Vec::new();
        let unused: Vec<usize> = state
            .avail
            .iter()
            .enumerate()
            .skip(self.num_inputs)
            .filter(|(_, a)| a.uses == 0)
            .map(|(i, _)| i)
            .collect();
        if unused.len() > 2 {
            return out;
        }
        let explicit = self.sketch.mode == SketchMode::ExplicitRotate;
        let all: Vec<usize> = (0..state.avail.len()).collect();

        for (op_idx, sop) in self.sketch.ops.iter().enumerate() {
            let op = sop.op.clone();
            if sop.op.binary_ct() {
                // (lhs pool, rhs pool) pairs that cover the unused values.
                let pools: Vec<(Vec<usize>, Vec<usize>)> = match unused.len() {
                    2 => vec![
                        (vec![unused[0]], vec![unused[1]]),
                        (vec![unused[1]], vec![unused[0]]),
                    ],
                    1 => vec![
                        (vec![unused[0]], all.clone()),
                        (all.clone(), vec![unused[0]]),
                    ],
                    _ => vec![(all.clone(), all.clone())],
                };
                let symmetric_holes = sop.lhs_rot == sop.rhs_rot;
                for (lhs_pool, rhs_pool) in pools {
                    for &li in &lhs_pool {
                        let lhs_variants: &[(i64, Vec<u64>)] = if !explicit && sop.lhs_rot {
                            &rotated[li]
                        } else {
                            &rotated[li][..1]
                        };
                        for lhs in lhs_variants {
                            for &ri in &rhs_pool {
                                let rhs_variants: &[(i64, Vec<u64>)] = if !explicit && sop.rhs_rot {
                                    &rotated[ri]
                                } else {
                                    &rotated[ri][..1]
                                };
                                for rhs in rhs_variants {
                                    if op.commutative()
                                        && symmetric_holes
                                        && (ri, rhs.0) < (li, lhs.0)
                                    {
                                        continue;
                                    }
                                    if matches!(op, ArithOp::SubCtCt) && li == ri && lhs.0 == rhs.0
                                    {
                                        continue;
                                    }
                                    if !self.masked_match(&op, op_idx, &lhs.1, Some(&rhs.1)) {
                                        continue;
                                    }
                                    let vec = self.apply_op(&op, op_idx, &lhs.1, Some(&rhs.1));
                                    self.consider(
                                        state,
                                        prev,
                                        true,
                                        Comp::Arith {
                                            op_idx,
                                            lhs: (li, lhs.0),
                                            rhs: Some((ri, rhs.0)),
                                        },
                                        vec,
                                        &mut out,
                                    );
                                }
                            }
                        }
                    }
                }
            } else {
                if unused.len() > 1 {
                    continue; // a unary op cannot consume two values
                }
                let pool: Vec<usize> = if unused.len() == 1 {
                    vec![unused[0]]
                } else {
                    all.clone()
                };
                for &li in &pool {
                    let lhs_variants: &[(i64, Vec<u64>)] = if !explicit && sop.lhs_rot {
                        &rotated[li]
                    } else {
                        &rotated[li][..1]
                    };
                    for lhs in lhs_variants {
                        if !self.masked_match(&op, op_idx, &lhs.1, None) {
                            continue;
                        }
                        let vec = self.apply_op(&op, op_idx, &lhs.1, None);
                        self.consider(
                            state,
                            prev,
                            true,
                            Comp::Arith {
                                op_idx,
                                lhs: (li, lhs.0),
                                rhs: None,
                            },
                            vec,
                            &mut out,
                        );
                    }
                }
            }
        }

        if explicit && unused.len() <= 1 {
            let pool: Vec<usize> = if unused.len() == 1 {
                vec![unused[0]]
            } else {
                all
            };
            for &val in &pool {
                if state.avail[val].is_rot_result {
                    continue;
                }
                for &r in &self.sketch.rotation_amounts {
                    let vec = self.rotate_concat(&state.avail[val].vec, r);
                    if !self.matches_target(&vec) {
                        continue;
                    }
                    self.consider(
                        state,
                        prev,
                        true,
                        Comp::Rot { val, amount: r },
                        vec,
                        &mut out,
                    );
                }
            }
        }
        out
    }

    /// Early-exit check that `op(lhs, rhs)` equals the target on every
    /// masked slot.
    pub(crate) fn masked_match(
        &self,
        op: &ArithOp,
        op_idx: usize,
        lhs: &[u64],
        rhs: Option<&[u64]>,
    ) -> bool {
        let t = self.t as u128;
        let rhs: &[u64] = match op {
            ArithOp::AddCtCt | ArithOp::SubCtCt | ArithOp::MulCtCt => rhs.unwrap(),
            _ => self.pt_values[op_idx].as_ref().unwrap(),
        };
        for &i in &self.mask_idx {
            let (a, b) = (lhs[i] as u128, rhs[i] as u128);
            let v = match op {
                ArithOp::AddCtCt | ArithOp::AddCtPt(_) => (a + b) % t,
                ArithOp::SubCtCt | ArithOp::SubCtPt(_) => (a + t - b) % t,
                ArithOp::MulCtCt | ArithOp::MulCtPt(_) => (a * b) % t,
            };
            if v as u64 != self.target[i] {
                return false;
            }
        }
        true
    }

    fn consider(
        &self,
        state: &WorkerState,
        prev: Option<&Comp>,
        is_last: bool,
        comp: Comp,
        vec: Vec<u64>,
        out: &mut Vec<Candidate>,
    ) {
        if is_last {
            if !self.matches_target(&vec) {
                return;
            }
        } else {
            // Observational equivalence: skip values identical to an
            // existing one on every example.
            if state.value_set.contains_key(&vec) {
                return;
            }
        }
        // Symmetry: adjacent independent components must be ordered.
        if let Some(prev) = prev {
            if !comp_uses_last(&comp, state.avail.len() - 1) && comp_key(&comp) < comp_key(prev) {
                return;
            }
        }
        out.push(Candidate { comp, vec });
    }

    /// Lowers a component list to a Quill [`Program`], materializing each
    /// distinct `(value, rotation)` pair as one `rot-ct` instruction.
    pub(crate) fn materialize(&self, comps: &[Comp]) -> Program {
        let mut instrs: Vec<Instr> = Vec::new();
        // avail index → ValRef
        let mut refs: Vec<ValRef> = (0..self.num_inputs).map(ValRef::Input).collect();
        let mut rot_memo: HashMap<(usize, i64), ValRef> = HashMap::new();
        for comp in comps {
            match comp {
                Comp::Arith { op_idx, lhs, rhs } => {
                    let mut resolve =
                        |(val, rot): (usize, i64), instrs: &mut Vec<Instr>| -> ValRef {
                            if rot == 0 {
                                refs[val]
                            } else {
                                *rot_memo.entry((val, rot)).or_insert_with(|| {
                                    instrs.push(Instr::RotCt(refs[val], rot));
                                    ValRef::Instr(instrs.len() - 1)
                                })
                            }
                        };
                    let l = resolve(*lhs, &mut instrs);
                    let r = rhs.map(|rhs| resolve(rhs, &mut instrs));
                    let instr = match &self.sketch.ops[*op_idx].op {
                        ArithOp::AddCtCt => Instr::AddCtCt(l, r.unwrap()),
                        ArithOp::SubCtCt => Instr::SubCtCt(l, r.unwrap()),
                        ArithOp::MulCtCt => Instr::MulCtCt(l, r.unwrap()),
                        ArithOp::AddCtPt(p) => Instr::AddCtPt(l, p.clone()),
                        ArithOp::SubCtPt(p) => Instr::SubCtPt(l, p.clone()),
                        ArithOp::MulCtPt(p) => Instr::MulCtPt(l, p.clone()),
                    };
                    instrs.push(instr);
                    refs.push(ValRef::Instr(instrs.len() - 1));
                }
                Comp::Rot { val, amount } => {
                    instrs.push(Instr::RotCt(refs[*val], *amount));
                    refs.push(ValRef::Instr(instrs.len() - 1));
                }
            }
        }
        let output = *refs.last().expect("at least one component");
        let num_pt = self
            .pt_values
            .iter()
            .zip(&self.sketch.ops)
            .filter_map(|(_, op)| match &op.op {
                ArithOp::AddCtPt(PtOperand::Input(i))
                | ArithOp::SubCtPt(PtOperand::Input(i))
                | ArithOp::MulCtPt(PtOperand::Input(i)) => Some(*i + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let prog = Program::new(self.name.clone(), self.num_inputs, num_pt, instrs, output);
        debug_assert!(prog.validate().is_ok(), "materialized program invalid");
        prog
    }
}

struct Candidate {
    comp: Comp,
    vec: Vec<u64>,
}

/// Encodes a component for the adjacent-independent-component ordering.
fn comp_key(c: &Comp) -> (usize, usize, i64, usize, i64) {
    match c {
        Comp::Arith { op_idx, lhs, rhs } => (
            *op_idx,
            lhs.0,
            lhs.1,
            rhs.map(|r| r.0).unwrap_or(usize::MAX),
            rhs.map(|r| r.1).unwrap_or(0),
        ),
        Comp::Rot { val, amount } => (usize::MAX, *val, *amount, 0, 0),
    }
}

fn comp_uses_last(c: &Comp, last_idx: usize) -> bool {
    match c {
        Comp::Arith { lhs, rhs, .. } => {
            lhs.0 == last_idx || rhs.map(|r| r.0 == last_idx).unwrap_or(false)
        }
        Comp::Rot { val, .. } => *val == last_idx,
    }
}

/// The mutable half of the search: one per worker thread, restored with
/// snapshots on backtrack.
struct WorkerState {
    avail: Vec<AvailEntry>,
    value_set: HashMap<Vec<u64>, u32>,
    /// Distinct (value, rotation) pairs charged a rotation latency.
    rot_used: HashMap<(usize, i64), u32>,
    latency_sum: f64,
    max_mdepth: u32,
    /// Expansions since the worker started (drives the deadline cadence).
    nodes: u64,
    abort: Abort,
}

struct Snapshot {
    latency_sum: f64,
    max_mdepth: u32,
    touched_rots: Vec<(usize, i64)>,
    used_vals: Vec<usize>,
}

impl WorkerState {
    fn root(ctx: &SearchContext<'_>) -> Self {
        let mut avail = Vec::new();
        let mut value_set: HashMap<Vec<u64>, u32> = HashMap::new();
        for j in 0..ctx.num_inputs {
            let vec: Vec<u64> = ctx
                .examples
                .iter()
                .flat_map(|e| e.ct_inputs[j].iter().copied())
                .collect();
            *value_set.entry(vec.clone()).or_insert(0) += 1;
            avail.push(AvailEntry {
                vec,
                mdepth: 0,
                uses: 0,
                is_rot_result: false,
            });
        }
        WorkerState {
            avail,
            value_set,
            rot_used: HashMap::new(),
            latency_sum: 0.0,
            max_mdepth: 0,
            nodes: 0,
            abort: Abort::No,
        }
    }

    fn push(&mut self, ctx: &SearchContext<'_>, cand: &Candidate) -> Snapshot {
        let mut snap = Snapshot {
            latency_sum: self.latency_sum,
            max_mdepth: self.max_mdepth,
            touched_rots: Vec::new(),
            used_vals: Vec::new(),
        };
        let charge_rot = |state: &mut WorkerState, val: usize, rot: i64, snap: &mut Snapshot| {
            if rot == 0 {
                return;
            }
            let e = state.rot_used.entry((val, rot)).or_insert(0);
            if *e == 0 {
                state.latency_sum += ctx.rot_latency;
            }
            *e += 1;
            snap.touched_rots.push((val, rot));
        };
        let (mdepth, is_rot) = match &cand.comp {
            Comp::Arith { op_idx, lhs, rhs } => {
                self.avail[lhs.0].uses += 1;
                snap.used_vals.push(lhs.0);
                charge_rot(self, lhs.0, lhs.1, &mut snap);
                let mut md = self.avail[lhs.0].mdepth;
                if let Some(rhs) = rhs {
                    self.avail[rhs.0].uses += 1;
                    snap.used_vals.push(rhs.0);
                    charge_rot(self, rhs.0, rhs.1, &mut snap);
                    md = md.max(self.avail[rhs.0].mdepth);
                }
                self.latency_sum += ctx.op_latencies[*op_idx];
                let md = match ctx.sketch.ops[*op_idx].op {
                    ArithOp::MulCtCt | ArithOp::MulCtPt(_) => md + 1,
                    _ => md,
                };
                (md, false)
            }
            Comp::Rot { val, amount: _ } => {
                self.avail[*val].uses += 1;
                snap.used_vals.push(*val);
                self.latency_sum += ctx.rot_latency;
                (self.avail[*val].mdepth, true)
            }
        };
        self.max_mdepth = self.max_mdepth.max(mdepth);
        *self.value_set.entry(cand.vec.clone()).or_insert(0) += 1;
        self.avail.push(AvailEntry {
            vec: cand.vec.clone(),
            mdepth,
            uses: 0,
            is_rot_result: is_rot,
        });
        snap
    }

    fn pop(&mut self, snap: Snapshot) {
        let entry = self.avail.pop().expect("state underflow");
        if let Some(c) = self.value_set.get_mut(&entry.vec) {
            *c -= 1;
            if *c == 0 {
                self.value_set.remove(&entry.vec);
            }
        }
        for v in snap.used_vals {
            self.avail[v].uses -= 1;
        }
        for key in snap.touched_rots {
            if let Some(c) = self.rot_used.get_mut(&key) {
                *c -= 1;
                if *c == 0 {
                    self.rot_used.remove(&key);
                }
            }
        }
        self.latency_sum = snap.latency_sum;
        self.max_mdepth = snap.max_mdepth;
    }
}

fn zip_mod(a: &[u64], b: &[u64], t: u64, f: impl Fn(u128, u128) -> u128) -> Vec<u64> {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (f(x as u128, y as u128) % t as u128) as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::{RotationSet, SketchOp};
    use crate::spec::GenericReference;
    use quill::interp;
    use quill::ring::Ring;
    use rand::SeedableRng;

    fn jobs(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    struct SumAll {
        n: usize,
    }

    impl GenericReference for SumAll {
        fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
            let total = ct[0].iter().fold(ct[0][0].from_i64(0), |acc, x| acc.add(x));
            vec![total; self.n]
        }
    }

    fn sum_spec(n: usize) -> KernelSpec {
        let mut mask = vec![false; n];
        mask[0] = true;
        KernelSpec::new("sum", n, 1, 0, mask, 65537, Box::new(SumAll { n }))
    }

    #[test]
    fn finds_tree_reduction_for_sum4() {
        let spec = sum_spec(4);
        let sketch = Sketch::new(
            vec![SketchOp::rotated(ArithOp::AddCtCt)],
            RotationSet::PowersOfTwo { extent: 4 },
            3,
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let examples = vec![spec.sample_example(&mut rng)];
        let model = LatencyModel::uniform();
        let searcher = SearchContext::new(&spec, &sketch, &examples, &model, None, None);
        // L=1 impossible
        assert_eq!(searcher.run(1, jobs(1)), SearchOutcome::Unsat);
        // L=2: rotate-add tree
        match searcher.run(2, jobs(1)) {
            SearchOutcome::Found(p) => {
                assert!(p.validate().is_ok());
                let out = interp::eval_concrete(&p, &examples[0].ct_inputs, &[], 65537);
                assert_eq!(out[0], examples[0].output[0]);
                // 2 adds + 2 rotations
                assert_eq!(p.len(), 4);
            }
            other => panic!("expected solution, got {other:?}"),
        }
    }

    #[test]
    fn cost_bound_prunes_to_unsat() {
        let spec = sum_spec(4);
        let sketch = Sketch::new(
            vec![SketchOp::rotated(ArithOp::AddCtCt)],
            RotationSet::PowersOfTwo { extent: 4 },
            3,
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let examples = vec![spec.sample_example(&mut rng)];
        let model = LatencyModel::uniform();
        // Any solution costs at least 4 (2 adds + 2 rots, uniform): bound 3 → unsat.
        let searcher = SearchContext::new(&spec, &sketch, &examples, &model, None, Some(3.0));
        assert_eq!(searcher.run(2, jobs(1)), SearchOutcome::Unsat);
        assert_eq!(searcher.run(2, jobs(4)), SearchOutcome::Unsat);
    }

    #[test]
    fn explicit_mode_also_finds_solutions_but_searches_more() {
        let spec = sum_spec(2);
        let sketch = Sketch::new(
            vec![SketchOp::rotated(ArithOp::AddCtCt)],
            RotationSet::PowersOfTwo { extent: 2 },
            3,
        )
        .with_explicit_rotations();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let examples = vec![spec.sample_example(&mut rng)];
        let model = LatencyModel::uniform();
        let searcher = SearchContext::new(&spec, &sketch, &examples, &model, None, None);
        // Needs 2 components now: rot + add.
        assert_eq!(searcher.run(1, jobs(1)), SearchOutcome::Unsat);
        match searcher.run(2, jobs(1)) {
            SearchOutcome::Found(p) => {
                let out = interp::eval_concrete(&p, &examples[0].ct_inputs, &[], 65537);
                assert_eq!(out[0], examples[0].output[0]);
            }
            other => panic!("expected solution, got {other:?}"),
        }
    }

    /// The determinism contract at the search layer: any thread count
    /// returns the identical outcome, in both first-solution mode and
    /// cheapest (branch-and-bound) mode.
    #[test]
    fn thread_count_does_not_change_the_result() {
        let spec = sum_spec(8);
        let sketch = Sketch::new(
            vec![
                SketchOp::rotated(ArithOp::AddCtCt),
                SketchOp::rotated(ArithOp::SubCtCt),
            ],
            RotationSet::PowersOfTwo { extent: 8 },
            4,
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let examples = vec![spec.sample_example(&mut rng), spec.sample_example(&mut rng)];
        let model = LatencyModel::profiled_default();

        // First-solution mode.
        let first = SearchContext::new(&spec, &sketch, &examples, &model, None, None);
        let sequential = first.run(3, jobs(1));
        assert!(matches!(sequential, SearchOutcome::Found(_)));
        for j in [2, 4, 7] {
            assert_eq!(first.run(3, jobs(j)), sequential, "first mode, jobs={j}");
        }

        // Cheapest mode: exhaustive, canonical-minimum merge.
        let bound = 1e12;
        let cheapest = SearchContext::new(&spec, &sketch, &examples, &model, None, Some(bound));
        let sequential = cheapest.run(3, jobs(1));
        assert!(matches!(sequential, SearchOutcome::Found(_)));
        for j in [2, 4, 7] {
            assert_eq!(
                cheapest.run(3, jobs(j)),
                sequential,
                "cheapest mode, jobs={j}"
            );
        }
    }
}
