//! Code generation (§5.3): lowering optimized Quill IR onto an HE backend
//! through the scheme layer, plus SEAL-style C++ emission (Figure 3f).
//!
//! Quill instructions map **1:1** onto [`crate::scheme::Scheme`] evaluator
//! calls — codegen performs no rewrites of its own, and the same generic
//! [`Runner`] body executes on every scheme instantiation ([`BfvRunner`],
//! [`BgvRunner`]). Relinearization is an explicit IR instruction
//! ([`quill::program::Instr::Relin`]) placed by the middle-end
//! ([`crate::opt`]): `mul-ct-ct` lowers to a bare `multiply` whose size-3
//! result stays size 3 until the IR says otherwise, `relin-ct` lowers to
//! `relinearize`, and `emit_seal_cpp` emits `relinearize_inplace` only
//! where the IR carries a `relin-ct`. Programs must be legal for the
//! target scheme ([`quill::analysis::check_backend_legal_with`] under
//! `S::ID.legality()` — rotation/multiply operands and the output
//! statically size 2, no ops outside the scheme's instruction set) — run
//! them through [`crate::opt::optimize`] at any `-O` level first; `-O0`
//! reproduces the paper's eager relin-after-every-multiply lowering
//! exactly.
//!
//! Model-size slot semantics carry over to the full ciphertext because every
//! lifted kernel passes the padding-stability check ([`crate::lift`]): data
//! lives in row-0 slots `[0, n)` and all other slots are zero.
//!
//! The execution engine adds two performance layers on top of the 1:1
//! lowering, both semantics-preserving:
//!
//! - **Rotation hoisting**: rotations grouped into a same-source fan by
//!   [`quill::analysis::rotation_fans`] share one digit decomposition
//!   ([`Scheme::hoist`]) and pay only the per-Galois-element accumulate
//!   ([`Scheme::rotate_hoisted`]) each. Backends without a hoisted path
//!   fall back to plain rotation per member.
//! - **DAG-parallel scheduling**: with [`Runner::with_eval_jobs`] (or
//!   `PORCUPINE_EVAL_JOBS`) above 1, instructions run on a ready-queue
//!   scheduler over the dependence DAG with one evaluator (and thus one
//!   scratch pool) per worker thread. Because every scheme op is exact
//!   modular arithmetic and the `_assign` evaluator variants are
//!   bit-identical to their pure counterparts, decryptions are
//!   bit-identical at any thread count.

use crate::scheme::{BfvScheme, BgvScheme, Scheme};
use quill::analysis::rotation_fans;
use quill::program::{Instr, Program, PtOperand, ValRef};
use rand::Rng;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock, RwLock, RwLockReadGuard};

/// Execution statistics from [`Runner::run_with_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Splat constants encoded during this call — cache misses against the
    /// runner's session-level splat cache. A program referencing one
    /// constant `k` times on a fresh runner reports 1; running it again
    /// reports 0.
    pub splat_encodes: usize,
}

/// Executes Quill programs on a scheme backend with the keys they need.
///
/// The runner is encode-once at session level: splat constants are encoded
/// into a cache the first time any program references them and reused for
/// the runner's lifetime, and callers holding plaintexts that outlive one
/// `run` call can pre-encode them with [`Scheme::preencode`] and use
/// [`Runner::run_encoded`] so no encode work lands on the timed path.
pub struct Runner<'a, S: Scheme = BfvScheme> {
    ctx: &'a S::Context,
    encoder: S::Encoder<'a>,
    evaluator: S::Evaluator<'a>,
    relin: Option<S::RelinKey>,
    galois: S::GaloisKeys,
    splats: std::cell::RefCell<BTreeMap<i64, S::EvalPlaintext>>,
    eval_jobs: NonZeroUsize,
}

/// Worker-thread count for [`Runner`] execution, from `PORCUPINE_EVAL_JOBS`
/// (default 1 — sequential, in-place execution on the caller's thread).
///
/// # Panics
///
/// Panics if the variable is set but not a positive integer, so a typo'd
/// CI matrix leg fails loudly instead of silently running sequentially.
pub fn default_eval_jobs() -> NonZeroUsize {
    match std::env::var("PORCUPINE_EVAL_JOBS") {
        Ok(s) => s.trim().parse().unwrap_or_else(|_| {
            panic!("PORCUPINE_EVAL_JOBS must be a positive integer, got {s:?}")
        }),
        Err(_) => NonZeroUsize::MIN,
    }
}

/// The [`Runner`] over the BFV backend.
pub type BfvRunner<'a> = Runner<'a, BfvScheme>;
/// The [`Runner`] over the BGV backend.
pub type BgvRunner<'a> = Runner<'a, BgvScheme>;

impl<S: Scheme> std::fmt::Debug for Runner<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("scheme", &S::ID.name())
            .field("galois_elements", &S::galois_elements(&self.galois))
            .field("has_relin", &self.relin.is_some())
            .finish()
    }
}

impl<'a, S: Scheme> Runner<'a, S> {
    /// Prepares a runner able to execute all of `programs`: generates Galois
    /// keys for every rotation they use and a relinearization key if any of
    /// them multiplies ciphertexts.
    pub fn for_programs<R: Rng + ?Sized>(
        ctx: &'a S::Context,
        keygen: &S::KeyGenerator<'a>,
        programs: &[&Program],
        rng: &mut R,
    ) -> Self {
        let mut steps: Vec<i64> = programs.iter().flat_map(|p| p.rotation_amounts()).collect();
        steps.sort_unstable();
        steps.dedup();
        let galois = S::galois_keys(keygen, &steps, false, rng);
        // A key is needed only for explicit relin-ct instructions; the mul
        // count is kept in the condition so preparing a runner from raw
        // (not-yet-lowered) programs still generates the key their lowered
        // forms will need.
        let needs_relin = programs
            .iter()
            .any(|p| p.relin_count() > 0 || p.ct_ct_mul_count() > 0);
        let relin = needs_relin.then(|| S::relin_key(keygen, rng));
        Runner {
            ctx,
            encoder: S::encoder(ctx),
            evaluator: S::evaluator(ctx),
            relin,
            galois,
            splats: std::cell::RefCell::new(BTreeMap::new()),
            eval_jobs: default_eval_jobs(),
        }
    }

    /// Sets the worker-thread count for execution. `1` (the default, unless
    /// `PORCUPINE_EVAL_JOBS` overrides it) runs sequentially in place on
    /// the caller's thread; above 1, programs run on a DAG-parallel
    /// ready-queue scheduler with one evaluator per worker. Decryptions are
    /// bit-identical at any setting.
    pub fn with_eval_jobs(mut self, jobs: usize) -> Self {
        self.eval_jobs = NonZeroUsize::new(jobs).expect("eval jobs must be >= 1");
        self
    }

    /// The worker-thread count programs execute with.
    pub fn eval_jobs(&self) -> usize {
        self.eval_jobs.get()
    }

    /// The batch encoder (for packing inputs and decoding outputs).
    pub fn encoder(&self) -> &S::Encoder<'a> {
        &self.encoder
    }

    /// The underlying evaluator.
    pub fn evaluator(&self) -> &S::Evaluator<'a> {
        &self.evaluator
    }

    /// Runs a scheme-legal program over encrypted inputs, executing the
    /// IR 1:1 — size-3 intermediates stay size 3 until a `relin-ct` says
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if input arities mismatch the program, a required key is
    /// missing (prepare with [`Runner::for_programs`]), or the program
    /// is not backend-legal for the scheme (lower it with
    /// [`crate::opt::optimize`]).
    pub fn run(
        &self,
        prog: &Program,
        ct_inputs: &[&S::Ciphertext],
        pt_inputs: &[&S::Plaintext],
    ) -> S::Ciphertext {
        self.run_with_stats(prog, ct_inputs, pt_inputs).0
    }

    /// [`Runner::run`] plus [`RunStats`]. Encodes each plaintext input
    /// once (per call) and delegates to [`Runner::run_encoded_with_stats`].
    pub fn run_with_stats(
        &self,
        prog: &Program,
        ct_inputs: &[&S::Ciphertext],
        pt_inputs: &[&S::Plaintext],
    ) -> (S::Ciphertext, RunStats) {
        let pts: Vec<S::EvalPlaintext> = pt_inputs
            .iter()
            .map(|p| S::preencode(&self.evaluator, p))
            .collect();
        let pt_refs: Vec<&S::EvalPlaintext> = pts.iter().collect();
        self.run_encoded_with_stats(prog, ct_inputs, &pt_refs)
    }

    /// [`Runner::run_encoded_with_stats`] without the stats.
    pub fn run_encoded(
        &self,
        prog: &Program,
        ct_inputs: &[&S::Ciphertext],
        pt_inputs: &[&S::EvalPlaintext],
    ) -> S::Ciphertext {
        self.run_encoded_with_stats(prog, ct_inputs, pt_inputs).0
    }

    /// Runs a scheme-legal program over encrypted inputs and pre-encoded
    /// plaintexts. The hot path is in place and encode-once: operands are
    /// borrowed (never cloned per use), splat constants hit the runner's
    /// session-level cache (each distinct value is encoded at most once
    /// per runner — the runtime mirror of `emit_seal_cpp`'s pre-encoded
    /// splats), and a last-use analysis lets each instruction mutate a
    /// dying operand's buffers — or recycle them into the evaluator's
    /// scratch pool — instead of allocating. Same-source rotation fans
    /// execute hoisted (one shared decomposition per fan), and with
    /// [`Runner::with_eval_jobs`] above 1 the whole program runs on the
    /// DAG-parallel scheduler instead.
    pub fn run_encoded_with_stats(
        &self,
        prog: &Program,
        ct_inputs: &[&S::Ciphertext],
        pt_inputs: &[&S::EvalPlaintext],
    ) -> (S::Ciphertext, RunStats) {
        assert_eq!(ct_inputs.len(), prog.num_ct_inputs, "ct input arity");
        assert_eq!(pt_inputs.len(), prog.num_pt_inputs, "pt input arity");
        if let Err(e) = quill::analysis::check_backend_legal_with(prog, &S::ID.legality()) {
            panic!(
                "{}: not backend-legal for {} ({e}); lower with porcupine::opt::optimize first",
                prog.name,
                S::ID
            );
        }
        // Fill splat-cache misses before execution; entries are never
        // evicted, so the shared borrow below stays valid for the whole
        // program.
        let t = S::params(self.ctx).plain_modulus as i64;
        let mut splat_encodes = 0usize;
        {
            let mut cache = self.splats.borrow_mut();
            for instr in &prog.instrs {
                if let Instr::AddCtPt(_, PtOperand::Splat(v))
                | Instr::SubCtPt(_, PtOperand::Splat(v))
                | Instr::MulCtPt(_, PtOperand::Splat(v)) = instr
                {
                    cache.entry(*v).or_insert_with(|| {
                        splat_encodes += 1;
                        let val = v.rem_euclid(t) as u64;
                        S::encode_eval(&self.encoder, &vec![val; S::slot_count(&self.encoder)])
                    });
                }
            }
        }
        let stats = RunStats { splat_encodes };
        // Keep the cell borrow on this frame and hand workers the plain
        // map reference (`Ref` itself is not `Sync`).
        let splats_guard = self.splats.borrow();
        let splats: &BTreeMap<i64, S::EvalPlaintext> = &splats_guard;
        let out = if self.eval_jobs.get() == 1 {
            self.run_sequential(prog, ct_inputs, pt_inputs, splats)
        } else {
            self.run_parallel(prog, ct_inputs, pt_inputs, splats)
        };
        (out, stats)
    }

    /// Single-threaded execution: in-place mutation of dying operands,
    /// pool recycling at last use, and hoisted rotation fans.
    fn run_sequential(
        &self,
        prog: &Program,
        ct_inputs: &[&S::Ciphertext],
        pt_inputs: &[&S::EvalPlaintext],
        splats: &BTreeMap<i64, S::EvalPlaintext>,
    ) -> S::Ciphertext {
        let ev = &self.evaluator;
        let get_pt = |p: &PtOperand| -> &S::EvalPlaintext {
            match p {
                PtOperand::Input(i) => pt_inputs[*i],
                PtOperand::Splat(v) => &splats[v],
            }
        };

        let last = crate::opt::last_uses(prog);
        let mut results: Vec<Option<S::Ciphertext>> =
            (0..prog.instrs.len()).map(|_| None).collect();
        // Borrow an operand without cloning — inputs stay owned by the
        // caller, intermediate results live in `results` until recycled.
        fn operand<'v, C>(r: ValRef, ct_inputs: &[&'v C], results: &'v [Option<C>]) -> &'v C {
            match r {
                ValRef::Input(i) => ct_inputs[i],
                ValRef::Instr(j) => results[j].as_ref().expect("operand still live"),
            }
        }
        // Move a dying intermediate out for in-place mutation. Only fires
        // when `r` is an instruction result whose last use is `j`.
        fn take_dying<C>(
            r: ValRef,
            j: usize,
            last: &[Option<usize>],
            results: &mut [Option<C>],
        ) -> Option<C> {
            match r {
                ValRef::Instr(i) if last[i] == Some(j) => results[i].take(),
                _ => None,
            }
        }
        // Take-or-clone for single-ct-operand instructions.
        fn acquire<C: Clone>(
            r: ValRef,
            j: usize,
            last: &[Option<usize>],
            ct_inputs: &[&C],
            results: &mut [Option<C>],
        ) -> C {
            take_dying(r, j, last, results)
                .unwrap_or_else(|| operand(r, ct_inputs, results).clone())
        }

        // Rotation fans share one hoisted decomposition, built lazily at
        // the first member and recycled after the last. The inner `None`
        // records a backend without a hoisted path, so the fallback is
        // decided once per fan rather than re-attempted per member.
        let fans = rotation_fans(prog);
        let fan_of: HashMap<usize, usize> = fans
            .iter()
            .enumerate()
            .flat_map(|(f, fan)| fan.members.iter().map(move |&j| (j, f)))
            .collect();
        let mut fan_state: Vec<(Option<Option<S::Hoisted>>, usize)> =
            fans.iter().map(|f| (None, f.members.len())).collect();

        for (j, instr) in prog.instrs.iter().enumerate() {
            let out = match instr {
                // Addition commutes bitwise, so either dying operand can
                // become the destination; the `a != b` guard keeps an
                // aliased operand borrowable.
                Instr::AddCtCt(a, b) => {
                    if let Some(mut x) = (a != b)
                        .then(|| take_dying(*a, j, &last, &mut results))
                        .flatten()
                    {
                        S::add_assign(ev, &mut x, operand(*b, ct_inputs, &results));
                        x
                    } else if let Some(mut x) = (a != b)
                        .then(|| take_dying(*b, j, &last, &mut results))
                        .flatten()
                    {
                        S::add_assign(ev, &mut x, operand(*a, ct_inputs, &results));
                        x
                    } else {
                        let mut x = operand(*a, ct_inputs, &results).clone();
                        S::add_assign(ev, &mut x, operand(*b, ct_inputs, &results));
                        x
                    }
                }
                Instr::SubCtCt(a, b) => {
                    if let Some(mut x) = (a != b)
                        .then(|| take_dying(*a, j, &last, &mut results))
                        .flatten()
                    {
                        S::sub_assign(ev, &mut x, operand(*b, ct_inputs, &results));
                        x
                    } else {
                        let mut x = operand(*a, ct_inputs, &results).clone();
                        S::sub_assign(ev, &mut x, operand(*b, ct_inputs, &results));
                        x
                    }
                }
                Instr::MulCtCt(a, b) => S::multiply(
                    ev,
                    operand(*a, ct_inputs, &results),
                    operand(*b, ct_inputs, &results),
                ),
                Instr::Relin(a) => {
                    let rk = self
                        .relin
                        .as_ref()
                        .expect("relin key prepared for relin-ct");
                    let mut x = acquire(*a, j, &last, ct_inputs, &mut results);
                    S::relinearize_assign(ev, &mut x, rk);
                    x
                }
                Instr::AddCtPt(a, p) => {
                    let mut x = acquire(*a, j, &last, ct_inputs, &mut results);
                    S::add_plain_assign(ev, &mut x, get_pt(p));
                    x
                }
                Instr::SubCtPt(a, p) => {
                    let mut x = acquire(*a, j, &last, ct_inputs, &mut results);
                    S::sub_plain_assign(ev, &mut x, get_pt(p));
                    x
                }
                Instr::MulCtPt(a, p) => {
                    let mut x = acquire(*a, j, &last, ct_inputs, &mut results);
                    S::mul_plain_assign(ev, &mut x, get_pt(p));
                    x
                }
                Instr::RotCt(a, r) => {
                    if let Some(&f) = fan_of.get(&j) {
                        let (hoisted, remaining) = &mut fan_state[f];
                        if hoisted.is_none() {
                            *hoisted = Some(S::hoist(ev, operand(*a, ct_inputs, &results)));
                        }
                        // The fan source is only borrowed here (never moved
                        // out), so the post-instruction recycle loop still
                        // frees it at its true last use.
                        let out = match hoisted.as_ref().expect("attempted above") {
                            Some(h) => S::rotate_hoisted(
                                ev,
                                operand(*a, ct_inputs, &results),
                                h,
                                *r,
                                &self.galois,
                            ),
                            None => {
                                let mut x = acquire(*a, j, &last, ct_inputs, &mut results);
                                S::rotate_rows_assign(ev, &mut x, *r, &self.galois);
                                x
                            }
                        };
                        *remaining -= 1;
                        if *remaining == 0 {
                            if let Some(Some(h)) = hoisted.take() {
                                S::recycle_hoisted(ev, h);
                            }
                        }
                        out
                    } else {
                        let mut x = acquire(*a, j, &last, ct_inputs, &mut results);
                        S::rotate_rows_assign(ev, &mut x, *r, &self.galois);
                        x
                    }
                }
            };
            // Any operand dying here that was not moved out above (e.g.
            // both multiply operands) goes back to the scratch pool.
            for op in instr.ct_operands() {
                if let ValRef::Instr(i) = op {
                    if last[i] == Some(j) {
                        if let Some(dead) = results[i].take() {
                            S::recycle(ev, dead);
                        }
                    }
                }
            }
            results[j] = Some(out);
        }
        match prog.output {
            ValRef::Input(i) => ct_inputs[i].clone(),
            ValRef::Instr(j) => results[j].take().expect("output live"),
        }
    }

    /// DAG-parallel execution: a ready-queue scheduler over the dependence
    /// DAG on scoped worker threads. Task IDs `0..m` are the instructions;
    /// `m + f` is the hoist task of rotation fan `f`, on which the fan's
    /// members (and nothing else) wait. Workers clone operands instead of
    /// mutating them in place — bit-identical by the `_assign` ≡ pure
    /// contract — and each owns its own evaluator, so recycled buffers land
    /// in the pool of whichever worker released the last reference.
    fn run_parallel(
        &self,
        prog: &Program,
        ct_inputs: &[&S::Ciphertext],
        pt_inputs: &[&S::EvalPlaintext],
        splats: &BTreeMap<i64, S::EvalPlaintext>,
    ) -> S::Ciphertext {
        let m = prog.instrs.len();
        let fans = rotation_fans(prog);
        let fan_of: HashMap<usize, usize> = fans
            .iter()
            .enumerate()
            .flat_map(|(f, fan)| fan.members.iter().map(move |&j| (j, f)))
            .collect();
        let total = m + fans.len();

        // Forward dependency counts and reverse edges. A fan member waits
        // only on its hoist task: the hoist task already waits on the fan
        // source, so the source is transitively complete.
        let mut pending: Vec<usize> = vec![0; total];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); total];
        for (j, instr) in prog.instrs.iter().enumerate() {
            if let Some(&f) = fan_of.get(&j) {
                pending[j] += 1;
                dependents[m + f].push(j);
            } else {
                for op in instr.ct_operands() {
                    if let ValRef::Instr(i) = op {
                        pending[j] += 1;
                        dependents[i].push(j);
                    }
                }
            }
        }
        for (f, fan) in fans.iter().enumerate() {
            if let ValRef::Instr(i) = fan.source {
                pending[m + f] += 1;
                dependents[i].push(m + f);
            }
        }

        // Remaining reads per intermediate: one per operand occurrence,
        // one for each hoist task reading a fan source, and one — never
        // released — for the program output. The worker that drops the
        // count to zero recycles the buffers into its own pool.
        let uses: Vec<AtomicUsize> = {
            let mut counts = vec![0usize; m];
            for instr in &prog.instrs {
                for op in instr.ct_operands() {
                    if let ValRef::Instr(i) = op {
                        counts[i] += 1;
                    }
                }
            }
            for fan in &fans {
                if let ValRef::Instr(i) = fan.source {
                    counts[i] += 1;
                }
            }
            if let ValRef::Instr(i) = prog.output {
                counts[i] += 1;
            }
            counts.into_iter().map(AtomicUsize::new).collect()
        };

        let results: Vec<RwLock<Option<S::Ciphertext>>> =
            (0..m).map(|_| RwLock::new(None)).collect();
        let hoisted: Vec<OnceLock<Option<S::Hoisted>>> =
            (0..fans.len()).map(|_| OnceLock::new()).collect();

        let ready: VecDeque<usize> = (0..total).filter(|&t| pending[t] == 0).collect();
        let sched = Mutex::new(Sched {
            ready,
            pending,
            completed: 0,
            total,
            panicked: false,
        });
        let cv = Condvar::new();

        // Workers cannot borrow `self` (the splat cache cell is not
        // `Sync`); capture the Sync pieces individually.
        let ctx = self.ctx;
        let galois = &self.galois;
        let relin = self.relin.as_ref();

        std::thread::scope(|scope| {
            for _ in 0..self.eval_jobs.get() {
                scope.spawn(|| {
                    let ev = S::evaluator(ctx);
                    let _guard = AbortGuard {
                        sched: &sched,
                        cv: &cv,
                    };
                    let get_pt = |p: &PtOperand| -> &S::EvalPlaintext {
                        match p {
                            PtOperand::Input(i) => pt_inputs[*i],
                            PtOperand::Splat(v) => &splats[v],
                        }
                    };
                    // Drop one read reference; recycle at zero. Callers
                    // release only after their operand guard is dropped,
                    // so reaching zero means no reader is left.
                    let release = |r: ValRef, ev: &S::Evaluator<'_>| {
                        if let ValRef::Instr(i) = r {
                            if uses[i].fetch_sub(1, Ordering::AcqRel) == 1 {
                                if let Some(dead) = results[i].write().unwrap().take() {
                                    S::recycle(ev, dead);
                                }
                            }
                        }
                    };
                    while let Some(task) = next_task(&sched, &cv) {
                        if let Some(f) = task.checked_sub(m) {
                            // Hoist task: one shared digit decomposition
                            // for every member of the fan.
                            let src = ParOperand::new(fans[f].source, ct_inputs, &results);
                            let h = S::hoist(&ev, src.get());
                            drop(src);
                            let _ = hoisted[f].set(h);
                            release(fans[f].source, &ev);
                            complete(&sched, &cv, task, &dependents);
                            continue;
                        }
                        let instr = &prog.instrs[task];
                        let out = match instr {
                            Instr::AddCtCt(a, b) => {
                                let xa = ParOperand::new(*a, ct_inputs, &results);
                                let xb = ParOperand::new(*b, ct_inputs, &results);
                                let mut x = xa.get().clone();
                                S::add_assign(&ev, &mut x, xb.get());
                                drop((xa, xb));
                                release(*a, &ev);
                                release(*b, &ev);
                                x
                            }
                            Instr::SubCtCt(a, b) => {
                                let xa = ParOperand::new(*a, ct_inputs, &results);
                                let xb = ParOperand::new(*b, ct_inputs, &results);
                                let mut x = xa.get().clone();
                                S::sub_assign(&ev, &mut x, xb.get());
                                drop((xa, xb));
                                release(*a, &ev);
                                release(*b, &ev);
                                x
                            }
                            Instr::MulCtCt(a, b) => {
                                let xa = ParOperand::new(*a, ct_inputs, &results);
                                let xb = ParOperand::new(*b, ct_inputs, &results);
                                let x = S::multiply(&ev, xa.get(), xb.get());
                                drop((xa, xb));
                                release(*a, &ev);
                                release(*b, &ev);
                                x
                            }
                            Instr::Relin(a) => {
                                let rk = relin.expect("relin key prepared for relin-ct");
                                let xa = ParOperand::new(*a, ct_inputs, &results);
                                let mut x = xa.get().clone();
                                S::relinearize_assign(&ev, &mut x, rk);
                                drop(xa);
                                release(*a, &ev);
                                x
                            }
                            Instr::AddCtPt(a, p) => {
                                let xa = ParOperand::new(*a, ct_inputs, &results);
                                let mut x = xa.get().clone();
                                S::add_plain_assign(&ev, &mut x, get_pt(p));
                                drop(xa);
                                release(*a, &ev);
                                x
                            }
                            Instr::SubCtPt(a, p) => {
                                let xa = ParOperand::new(*a, ct_inputs, &results);
                                let mut x = xa.get().clone();
                                S::sub_plain_assign(&ev, &mut x, get_pt(p));
                                drop(xa);
                                release(*a, &ev);
                                x
                            }
                            Instr::MulCtPt(a, p) => {
                                let xa = ParOperand::new(*a, ct_inputs, &results);
                                let mut x = xa.get().clone();
                                S::mul_plain_assign(&ev, &mut x, get_pt(p));
                                drop(xa);
                                release(*a, &ev);
                                x
                            }
                            Instr::RotCt(a, r) => {
                                let xa = ParOperand::new(*a, ct_inputs, &results);
                                let x = if let Some(&f) = fan_of.get(&task) {
                                    match hoisted[f].get().expect("hoist task ordered first") {
                                        Some(h) => S::rotate_hoisted(&ev, xa.get(), h, *r, galois),
                                        None => {
                                            let mut x = xa.get().clone();
                                            S::rotate_rows_assign(&ev, &mut x, *r, galois);
                                            x
                                        }
                                    }
                                } else {
                                    let mut x = xa.get().clone();
                                    S::rotate_rows_assign(&ev, &mut x, *r, galois);
                                    x
                                };
                                drop(xa);
                                release(*a, &ev);
                                x
                            }
                        };
                        *results[task].write().unwrap() = Some(out);
                        complete(&sched, &cv, task, &dependents);
                    }
                });
            }
        });

        match prog.output {
            ValRef::Input(i) => ct_inputs[i].clone(),
            ValRef::Instr(j) => results[j].write().unwrap().take().expect("output live"),
        }
    }
}

/// Ready-queue state shared by the DAG workers.
struct Sched {
    ready: VecDeque<usize>,
    pending: Vec<usize>,
    completed: usize,
    total: usize,
    panicked: bool,
}

// A poisoned scheduler lock means a sibling worker panicked while holding
// it; the state is still sound (counters only), so keep going and let the
// abort flag wind the workers down.
fn sched_lock<'l>(m: &'l Mutex<Sched>) -> std::sync::MutexGuard<'l, Sched> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn next_task(sched: &Mutex<Sched>, cv: &Condvar) -> Option<usize> {
    let mut s = sched_lock(sched);
    loop {
        if s.panicked {
            return None;
        }
        if let Some(t) = s.ready.pop_front() {
            return Some(t);
        }
        if s.completed == s.total {
            return None;
        }
        s = match cv.wait(s) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
    }
}

fn complete(sched: &Mutex<Sched>, cv: &Condvar, t: usize, dependents: &[Vec<usize>]) {
    let mut s = sched_lock(sched);
    s.completed += 1;
    for &d in &dependents[t] {
        s.pending[d] -= 1;
        if s.pending[d] == 0 {
            s.ready.push_back(d);
        }
    }
    drop(s);
    cv.notify_all();
}

/// Unblocks sibling workers when one panics (missing key, poisoned result
/// lock) so the panic propagates out of the thread scope instead of
/// deadlocking the ready queue.
struct AbortGuard<'l> {
    sched: &'l Mutex<Sched>,
    cv: &'l Condvar,
}

impl Drop for AbortGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            sched_lock(self.sched).panicked = true;
            self.cv.notify_all();
        }
    }
}

/// A borrowed ciphertext operand in the parallel path: either a
/// caller-owned input or a read guard over a completed intermediate.
enum ParOperand<'v, C> {
    Input(&'v C),
    Result(RwLockReadGuard<'v, Option<C>>),
}

impl<'v, C> ParOperand<'v, C> {
    fn new(r: ValRef, ct_inputs: &[&'v C], results: &'v [RwLock<Option<C>>]) -> Self {
        match r {
            ValRef::Input(i) => ParOperand::Input(ct_inputs[i]),
            ValRef::Instr(i) => ParOperand::Result(results[i].read().unwrap()),
        }
    }

    fn get(&self) -> &C {
        match self {
            ParOperand::Input(c) => c,
            ParOperand::Result(g) => g.as_ref().expect("operand complete"),
        }
    }
}

/// Emits a SEAL-style C++ function for a kernel (Figure 3f).
///
/// # Examples
///
/// ```
/// use porcupine::codegen::emit_seal_cpp;
/// use quill::program::{Instr, Program, ValRef};
///
/// let p = Program::new(
///     "pairsum", 1, 0,
///     vec![
///         Instr::RotCt(ValRef::Input(0), 1),
///         Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
///     ],
///     ValRef::Instr(1),
/// );
/// let cpp = emit_seal_cpp(&p);
/// assert!(cpp.contains("ev.rotate_rows"));
/// assert!(cpp.contains("void pairsum"));
/// ```
pub fn emit_seal_cpp(prog: &Program) -> String {
    let mut out = String::new();
    let name = prog.name.replace('-', "_");
    let _ = writeln!(
        out,
        "// Generated by Porcupine: {} instructions, logic depth {}, mult depth {}",
        prog.len(),
        prog.logic_depth(),
        prog.mult_depth()
    );
    let _ = writeln!(out, "void {name}(");
    let _ = writeln!(out, "    seal::Evaluator &ev,");
    let _ = writeln!(out, "    seal::BatchEncoder &encoder,");
    let _ = writeln!(out, "    const seal::GaloisKeys &gal_keys,");
    let _ = writeln!(out, "    const seal::RelinKeys &relin_keys,");
    let _ = writeln!(out, "    const std::vector<seal::Ciphertext> &ct_in,");
    let _ = writeln!(out, "    const std::vector<seal::Plaintext> &pt_in,");
    let _ = writeln!(out, "    seal::Ciphertext &result) {{");

    // Pre-encode splat constants. SEAL's BatchEncoder only accepts values
    // in [0, t); the emitter does not know t, so negative constants are
    // encoded by magnitude and compensated at the use site (add ↔ sub;
    // multiply followed by a negation). Magnitudes are emitted verbatim —
    // a splat with |v| >= t would be rejected by SEAL at runtime, but
    // kernel constants are small filter weights, far below any usable t.
    let mut splats: Vec<u64> = prog
        .instrs
        .iter()
        .filter_map(|i| match i {
            Instr::AddCtPt(_, PtOperand::Splat(v))
            | Instr::SubCtPt(_, PtOperand::Splat(v))
            | Instr::MulCtPt(_, PtOperand::Splat(v)) => Some(v.unsigned_abs()),
            _ => None,
        })
        .collect();
    splats.sort_unstable();
    splats.dedup();
    for v in &splats {
        let ident = splat_ident(*v);
        let _ = writeln!(out, "    seal::Plaintext {ident};");
        let _ = writeln!(
            out,
            "    encoder.encode(std::vector<uint64_t>(encoder.slot_count(), {v}), {ident});"
        );
    }

    let val = |r: ValRef| -> String {
        match r {
            ValRef::Input(i) => format!("ct_in[{i}]"),
            ValRef::Instr(j) => format!("c{j}"),
        }
    };
    // (operand expression, whether the encoded constant's sign is flipped)
    let pt = |p: &PtOperand| -> (String, bool) {
        match p {
            PtOperand::Input(i) => (format!("pt_in[{i}]"), false),
            PtOperand::Splat(v) => (splat_ident(v.unsigned_abs()), *v < 0),
        }
    };
    for (j, instr) in prog.instrs.iter().enumerate() {
        // relin-ct lowers to SEAL's in-place relinearization on a copy of
        // the operand; every other instruction writes a fresh destination.
        if let Instr::Relin(a) = instr {
            let _ = writeln!(out, "    seal::Ciphertext c{j} = {};", val(*a));
            let _ = writeln!(out, "    ev.relinearize_inplace(c{j}, relin_keys);");
            continue;
        }
        let _ = writeln!(out, "    seal::Ciphertext c{j};");
        let line = match instr {
            Instr::AddCtCt(a, b) => format!("ev.add({}, {}, c{j});", val(*a), val(*b)),
            Instr::SubCtCt(a, b) => format!("ev.sub({}, {}, c{j});", val(*a), val(*b)),
            Instr::MulCtCt(a, b) => format!("ev.multiply({}, {}, c{j});", val(*a), val(*b)),
            Instr::AddCtPt(a, p) => {
                let (operand, negated) = pt(p);
                let op = if negated { "sub_plain" } else { "add_plain" };
                format!("ev.{op}({}, {operand}, c{j});", val(*a))
            }
            Instr::SubCtPt(a, p) => {
                let (operand, negated) = pt(p);
                let op = if negated { "add_plain" } else { "sub_plain" };
                format!("ev.{op}({}, {operand}, c{j});", val(*a))
            }
            Instr::MulCtPt(a, p) => {
                let (operand, negated) = pt(p);
                let negate = if negated {
                    format!("\n    ev.negate_inplace(c{j});")
                } else {
                    String::new()
                };
                format!("ev.multiply_plain({}, {operand}, c{j});{negate}", val(*a))
            }
            Instr::RotCt(a, r) => format!("ev.rotate_rows({}, {r}, gal_keys, c{j});", val(*a)),
            Instr::Relin(_) => unreachable!("handled above"),
        };
        let _ = writeln!(out, "    {line}");
    }
    let _ = writeln!(out, "    result = {};", val(prog.output));
    let _ = writeln!(out, "}}");
    out
}

fn splat_ident(v: u64) -> String {
    format!("splat_{v}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_support::{assert_backend_matches_interp, seeded_rng, small_ctx};

    fn run_and_compare(prog: &Program, model_n: usize, masked: &[usize]) {
        let ctx = small_ctx();
        let mut rng = seeded_rng(0xC0DE);
        let t = ctx.params().plain_modulus;
        assert_backend_matches_interp(&ctx, prog, model_n, masked, t, &mut rng);
    }

    #[test]
    fn backend_matches_interpreter_on_reduction() {
        // sum of 4 elements into slot 0 (masked), padded model of 8 slots.
        let prog = Program::new(
            "sum4",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 2),
                Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
                Instr::RotCt(ValRef::Instr(1), 1),
                Instr::AddCtCt(ValRef::Instr(1), ValRef::Instr(2)),
            ],
            ValRef::Instr(3),
        );
        // model inputs occupy 8 slots; data in first 4 would not be padded —
        // use mask slot 0 only and rely on random input across all 8 slots
        // matching circular semantics at both sizes? No: restrict to padded
        // data by masking slot 0 and keeping the model self-consistent.
        // Here inputs are random over all 8 model slots, so we must verify
        // padding stability does NOT hold for slots near the wrap; slot 0
        // reads slots 0..=3 only, which is fine.
        run_and_compare(&prog, 8, &[0]);
    }

    #[test]
    fn backend_matches_interpreter_with_multiply_and_pt() {
        let prog = Program::new(
            "mixed",
            2,
            1,
            vec![
                Instr::MulCtCt(ValRef::Input(0), ValRef::Input(1)),
                Instr::MulCtPt(ValRef::Instr(0), PtOperand::Input(0)),
                Instr::AddCtPt(ValRef::Instr(1), PtOperand::Splat(7)),
                Instr::RotCt(ValRef::Instr(2), 1),
                Instr::SubCtCt(ValRef::Instr(3), ValRef::Instr(2)),
            ],
            ValRef::Instr(4),
        );
        // slots 0..6 of an 8-slot model avoid the wrap read of slot 7.
        run_and_compare(&prog, 8, &[0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn backend_handles_negative_rotations() {
        let prog = Program::new(
            "right-shift",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), -2),
                Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
            ],
            ValRef::Instr(1),
        );
        // slot i reads i and i-2: valid for slots 2..8.
        run_and_compare(&prog, 8, &[2, 3, 4, 5, 6, 7]);
    }

    /// The same optimized kernel, executed by the same generic runner body
    /// on both scheme instantiations over one parameter set, decodes to
    /// identical slots — the codegen half of the cross-scheme contract.
    #[test]
    fn bgv_runner_matches_bfv_runner_slot_for_slot() {
        let prog = Program::new(
            "cross",
            2,
            0,
            vec![
                Instr::MulCtCt(ValRef::Input(0), ValRef::Input(1)),
                Instr::Relin(ValRef::Instr(0)),
                Instr::RotCt(ValRef::Instr(1), 1),
                Instr::AddCtCt(ValRef::Instr(1), ValRef::Instr(2)),
                Instr::AddCtPt(ValRef::Instr(3), PtOperand::Splat(-3)),
            ],
            ValRef::Instr(4),
        );

        fn run<S: Scheme>(prog: &Program, seed: u64) -> Vec<u64> {
            let ctx = S::context(rlwe_ring::params::RlweParams::test_small()).unwrap();
            let mut rng = seeded_rng(seed);
            let kg = S::keygen(&ctx, &mut rng);
            let runner: Runner<'_, S> = Runner::for_programs(&ctx, &kg, &[prog], &mut rng);
            let enc = S::encryptor(&ctx, &kg, &mut rng);
            let dec = S::decryptor(&ctx, &kg);
            let n = S::slot_count(runner.encoder());
            let a: Vec<u64> = (0..n as u64).map(|i| i % 31).collect();
            let b: Vec<u64> = (0..n as u64).map(|i| (7 * i + 2) % 29).collect();
            let ca = S::encrypt(&enc, &S::encode(runner.encoder(), &a), &mut rng);
            let cb = S::encrypt(&enc, &S::encode(runner.encoder(), &b), &mut rng);
            let out = runner.run(prog, &[&ca, &cb], &[]);
            assert!(S::noise_budget(&dec, &out) > 0, "{} budget", S::ID);
            S::decode(runner.encoder(), &S::decrypt(&dec, &out))
        }

        let bfv_out = run::<BfvScheme>(&prog, 0x0DDB);
        let bgv_out = run::<BgvScheme>(&prog, 0x0DDB);
        assert_eq!(bfv_out, bgv_out, "cross-scheme slot divergence");
    }

    /// A program referencing one splat constant from several instructions
    /// encodes it exactly once on a fresh runner — and not at all on a
    /// second run, thanks to the session-level cache.
    #[test]
    fn runner_encodes_each_splat_constant_once() {
        use bfv::keys::KeyGenerator;

        let prog = Program::new(
            "splat-reuse",
            1,
            0,
            vec![
                Instr::AddCtPt(ValRef::Input(0), PtOperand::Splat(7)),
                Instr::MulCtPt(ValRef::Instr(0), PtOperand::Splat(7)),
                Instr::SubCtPt(ValRef::Instr(1), PtOperand::Splat(7)),
                Instr::AddCtPt(ValRef::Instr(2), PtOperand::Splat(3)),
            ],
            ValRef::Instr(3),
        );
        let ctx = small_ctx();
        let mut rng = seeded_rng(0x59A7);
        let keygen = KeyGenerator::new(&ctx, &mut rng);
        let runner = BfvRunner::for_programs(&ctx, &keygen, &[&prog], &mut rng);
        let encryptor = bfv::encrypt::Encryptor::new(&ctx, keygen.public_key(&mut rng));
        let ct = encryptor.encrypt(&runner.encoder().encode(&[1, 2, 3, 4]), &mut rng);
        let (_, stats) = runner.run_with_stats(&prog, &[&ct], &[]);
        assert_eq!(
            stats.splat_encodes, 2,
            "two distinct constants, one encode each"
        );
        let (_, stats) = runner.run_with_stats(&prog, &[&ct], &[]);
        assert_eq!(stats.splat_encodes, 0, "second run hits the session cache");
    }

    /// A same-source rotation fan goes down the hoisted path; the
    /// interpreter comparison pins its slot semantics.
    #[test]
    fn backend_matches_interpreter_on_rotation_fan() {
        // box-blur shape: three rotations of the same source, then sums.
        let prog = Program::new(
            "fan3",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::RotCt(ValRef::Input(0), 2),
                Instr::RotCt(ValRef::Input(0), 3),
                Instr::AddCtCt(ValRef::Instr(0), ValRef::Instr(1)),
                Instr::AddCtCt(ValRef::Instr(3), ValRef::Instr(2)),
            ],
            ValRef::Instr(4),
        );
        // slot i reads i..=i+3: valid for slots 0..5 of an 8-slot model.
        run_and_compare(&prog, 8, &[0, 1, 2, 3, 4]);
    }

    /// The DAG-parallel scheduler decrypts bit-identically to sequential
    /// execution — same plaintext polynomial, not merely the same slots —
    /// across thread counts, on a program exercising every instruction
    /// kind plus a hoisted rotation fan.
    #[test]
    fn parallel_runner_is_bit_identical_to_sequential() {
        use bfv::keys::KeyGenerator;

        let prog = Program::new(
            "par-mix",
            2,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::RotCt(ValRef::Input(0), 2),
                Instr::MulCtCt(ValRef::Instr(0), ValRef::Instr(1)),
                Instr::Relin(ValRef::Instr(2)),
                Instr::MulCtPt(ValRef::Instr(3), PtOperand::Splat(5)),
                Instr::SubCtCt(ValRef::Instr(4), ValRef::Input(1)),
                Instr::RotCt(ValRef::Instr(5), -1),
                Instr::AddCtPt(ValRef::Instr(6), PtOperand::Splat(-2)),
                Instr::AddCtCt(ValRef::Instr(7), ValRef::Instr(7)),
            ],
            ValRef::Instr(8),
        );
        let ctx = small_ctx();
        let mut rng = seeded_rng(0xDA61);
        let keygen = KeyGenerator::new(&ctx, &mut rng);
        let encryptor = bfv::encrypt::Encryptor::new(&ctx, keygen.public_key(&mut rng));
        let decryptor = bfv::encrypt::Decryptor::new(&ctx, keygen.secret_key().clone());
        let make = |jobs| {
            BfvRunner::for_programs(&ctx, &keygen, &[&prog], &mut seeded_rng(0))
                .with_eval_jobs(jobs)
        };
        let runner1 = make(1);
        let n = runner1.encoder().slot_count();
        let a: Vec<u64> = (0..n as u64).map(|i| (3 * i + 1) % 17).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (5 * i + 4) % 13).collect();
        let ca = encryptor.encrypt(&runner1.encoder().encode(&a), &mut rng);
        let cb = encryptor.encrypt(&runner1.encoder().encode(&b), &mut rng);
        let baseline = decryptor.decrypt(&runner1.run(&prog, &[&ca, &cb], &[]));
        for jobs in [2usize, 4] {
            let runner = make(jobs);
            assert_eq!(runner.eval_jobs(), jobs);
            // Repeat to let different schedules actually happen.
            for round in 0..3 {
                let out = runner.run(&prog, &[&ca, &cb], &[]);
                assert_eq!(
                    decryptor.decrypt(&out).coeffs(),
                    baseline.coeffs(),
                    "jobs={jobs} round={round} diverged from sequential"
                );
            }
        }
    }

    #[test]
    fn seal_emission_contains_all_ops() {
        let prog = Program::new(
            "demo-kernel",
            1,
            1,
            vec![
                Instr::RotCt(ValRef::Input(0), -5),
                Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
                Instr::MulCtCt(ValRef::Instr(1), ValRef::Instr(1)),
                Instr::Relin(ValRef::Instr(2)),
                Instr::MulCtPt(ValRef::Instr(3), PtOperand::Splat(2)),
                Instr::SubCtPt(ValRef::Instr(4), PtOperand::Input(0)),
            ],
            ValRef::Instr(5),
        );
        let cpp = emit_seal_cpp(&prog);
        assert!(cpp.contains("void demo_kernel"));
        assert!(cpp.contains("ev.rotate_rows(ct_in[0], -5, gal_keys, c0);"));
        // The multiply is bare; the relinearization is its own statement,
        // exactly where the IR placed it.
        assert!(cpp.contains("ev.multiply(c1, c1, c2);"));
        assert!(cpp.contains("seal::Ciphertext c3 = c2;"));
        assert!(cpp.contains("ev.relinearize_inplace(c3, relin_keys);"));
        assert!(cpp.contains("splat_2"));
        assert!(cpp.contains("ev.sub_plain(c4, pt_in[0], c5);"));
        assert!(cpp.contains("result = c5;"));
    }

    /// Without an explicit `relin-ct` the emitter must not invent one —
    /// relinearization placement is the middle-end's decision.
    #[test]
    fn seal_emission_has_no_implicit_relinearization() {
        let prog = Program::new(
            "raw-mul",
            2,
            0,
            vec![Instr::MulCtCt(ValRef::Input(0), ValRef::Input(1))],
            ValRef::Instr(0),
        );
        let cpp = emit_seal_cpp(&prog);
        assert!(cpp.contains("ev.multiply(ct_in[0], ct_in[1], c0);"));
        assert!(!cpp.contains("relinearize_inplace"));
    }

    /// SEAL's `BatchEncoder` rejects values outside `[0, t)`, so negative
    /// splats must be encoded by magnitude with compensating operations.
    #[test]
    fn seal_emission_compensates_negative_splats() {
        let prog = Program::new(
            "neg-splats",
            1,
            0,
            vec![
                Instr::AddCtPt(ValRef::Input(0), PtOperand::Splat(-7)),
                Instr::SubCtPt(ValRef::Instr(0), PtOperand::Splat(-7)),
                Instr::MulCtPt(ValRef::Instr(1), PtOperand::Splat(-3)),
            ],
            ValRef::Instr(2),
        );
        let cpp = emit_seal_cpp(&prog);
        // Only non-negative magnitudes ever reach encoder.encode.
        assert!(cpp.contains("encoder.encode(std::vector<uint64_t>(encoder.slot_count(), 7)"));
        assert!(cpp.contains("encoder.encode(std::vector<uint64_t>(encoder.slot_count(), 3)"));
        assert!(!cpp.contains("-7"));
        assert!(!cpp.contains("-3"));
        // add +(-7) lowers to sub_plain, sub -(-7) to add_plain.
        assert!(cpp.contains("ev.sub_plain(ct_in[0], splat_7, c0);"));
        assert!(cpp.contains("ev.add_plain(c0, splat_7, c1);"));
        // mul by -3 multiplies by the magnitude then negates.
        assert!(cpp.contains("ev.multiply_plain(c1, splat_3, c2);"));
        assert!(cpp.contains("ev.negate_inplace(c2);"));
    }
}
