//! # porcupine — a synthesizing compiler for vectorized homomorphic encryption
//!
//! A full reproduction of *Porcupine* (Cowan et al., PLDI 2021). Porcupine
//! takes a **kernel specification** — a plaintext reference implementation
//! plus a data layout ([`spec`], [`layout`]) — and a **sketch** — a template
//! HE kernel with holes ([`sketch`]) — and synthesizes a verified,
//! cost-optimized vectorized HE kernel for a chosen scheme backend (BFV by
//! default, BGV via `--scheme bgv` / `PORCUPINE_SCHEME=bgv`):
//!
//! * [`cegis`] — the CEGIS engine (Algorithm 1): iterative sketch
//!   deepening, counter-example refinement, cost minimization.
//! * [`search`] — the pruned enumerative solver standing in for the paper's
//!   Rosette/Boolector queries (sound and complete within a sketch), plus
//!   a bottom-up observational-equivalence term bank for queries past the
//!   DFS scaling wall (selected via `SynthesisOptions::strategy`).
//! * [`cache`] — the persistent content-addressed synthesis cache
//!   (`$PORCUPINE_CACHE_DIR`, else `~/.cache/porcupine`): finished queries
//!   are stored on disk and re-verified on read, so a warm process skips
//!   the search entirely.
//! * [`verify`] — exact equivalence checking via canonical polynomial
//!   forms, with Schwartz–Zippel counter-example extraction.
//! * [`lift`] — the padding-stability theorem that lets kernels synthesized
//!   at model size run on full-size ciphertexts.
//! * [`multistep`] — composing synthesized kernels into pipelines (Sobel,
//!   Harris).
//! * [`opt`] — the optimizing middle-end between synthesis and codegen: a
//!   pass manager driving global CSE, rotation folding, lazy
//!   relinearization, and DCE to a fixpoint, behind an `-O0`/`-O1`/`-O2`
//!   knob.
//! * [`scheme`] — the scheme abstraction: a [`scheme::Scheme`] trait
//!   mapping [`quill::scheme::SchemeId`] onto a concrete backend crate
//!   (context, keys, evaluator, parameter selection, noise model), with
//!   BFV and BGV instantiations.
//! * [`codegen`] — lowering optimized IR 1:1 onto any scheme backend
//!   through one generic runner (Galois/relin key collection) and
//!   SEAL-style C++ emission.
//!
//! ## End-to-end example
//!
//! ```
//! use porcupine::cegis::{synthesize, SynthesisOptions};
//! use porcupine::sketch::{ArithOp, RotationSet, Sketch, SketchOp};
//! use porcupine::spec::{GenericReference, KernelSpec};
//! use quill::ring::Ring;
//!
//! // Specification: sum 4 packed elements into slot 0.
//! struct Sum4;
//! impl GenericReference for Sum4 {
//!     fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
//!         let zero = ct[0][0].from_i64(0);
//!         let mut out = vec![zero.clone(); 8];
//!         out[0] = ct[0][..4].iter().fold(zero, |a, x| a.add(x));
//!         out
//!     }
//! }
//! let mut mask = vec![false; 8];
//! mask[0] = true;
//! let spec = KernelSpec::new("sum4", 8, 1, 0, mask, 65537, Box::new(Sum4));
//!
//! // Sketch: rotate-and-add components, tree-reduction rotations.
//! let sketch = Sketch::new(
//!     vec![SketchOp::rotated(ArithOp::AddCtCt)],
//!     RotationSet::PowersOfTwo { extent: 4 },
//!     4,
//! );
//!
//! let result = synthesize(&spec, &sketch, &SynthesisOptions::default())?;
//! assert_eq!(result.components, 2);
//! println!("{}", result.program); // s-expression kernel
//! # Ok::<(), porcupine::cegis::SynthesisError>(())
//! ```

pub mod autosketch;
pub(crate) mod bottom_up;
pub mod cache;
pub mod cegis;
pub mod codegen;
pub mod layout;
pub mod lift;
pub mod multistep;
pub mod opt;
pub mod scheme;
pub mod search;
pub mod sketch;
pub mod spec;
pub mod verify;

pub use autosketch::{auto_sketch, auto_synthesize};
pub use cegis::{
    clear_synthesis_memo, default_parallelism, default_strategy, synthesize, CachePolicy,
    SearchStrategy, SynthesisError, SynthesisOptions, SynthesisResult,
};
pub use opt::{default_opt_level, optimize, optimize_with, OptLevel, OptReport, Pass, PassManager};
pub use scheme::{default_scheme, scheme_from_env, BfvScheme, BgvScheme, Scheme};
pub use search::search_invocations;
pub use sketch::{ArithOp, RotationSet, Sketch, SketchMode, SketchOp};
pub use spec::{Example, GenericReference, KernelSpec, Reference};
