//! Verification of candidate kernels against the specification (§5.1's
//! `verify` query).
//!
//! Both the candidate program and the reference are lifted to canonical
//! multivariate polynomials over `Z_t` per output slot; masked slots must
//! match exactly. Because every program in the sketch space computes
//! polynomials of degree far below `t`, canonical-form equality is a sound
//! **and complete** equivalence check (see [`quill::symbolic`]). When the
//! forms differ, a concrete counter-example is extracted by Schwartz–Zippel
//! sampling of the nonzero difference — it succeeds in one or two draws with
//! overwhelming probability.

use crate::spec::{Example, KernelSpec};
use quill::interp;
use quill::program::Program;
use rand::Rng;
use std::error::Error;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone)]
pub struct VerifyFailure {
    /// The first masked slot whose polynomial differs.
    pub slot: usize,
    /// A concrete input on which candidate and spec disagree (absent only
    /// if sampling failed, which is probabilistically negligible).
    pub counter_example: Option<Example>,
}

impl fmt::Display for VerifyFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "candidate disagrees with the specification at slot {}",
            self.slot
        )
    }
}

impl Error for VerifyFailure {}

/// Maximum Schwartz–Zippel draws before giving up on a concrete witness.
const MAX_SAMPLING_TRIES: usize = 10_000;

/// Verifies `prog` against `spec` for **all** inputs.
///
/// # Errors
///
/// Returns a [`VerifyFailure`] (with a concrete counter-example for the
/// CEGIS loop) if any masked output slot differs.
pub fn verify<R: Rng + ?Sized>(
    prog: &Program,
    spec: &KernelSpec,
    rng: &mut R,
) -> Result<(), VerifyFailure> {
    let prog_sym = interp::eval_symbolic(prog, spec.n, spec.t);
    let spec_sym = spec.eval_symbolic();
    let bad_slot = (0..spec.n).find(|&i| spec.output_mask[i] && prog_sym[i] != spec_sym[i]);
    let slot = match bad_slot {
        None => return Ok(()),
        Some(s) => s,
    };
    // Extract a concrete counter-example.
    for _ in 0..MAX_SAMPLING_TRIES {
        let ex = spec.sample_example(rng);
        let got = interp::eval_concrete(prog, &ex.ct_inputs, &ex.pt_inputs, spec.t);
        let differs = (0..spec.n).any(|i| spec.output_mask[i] && got[i] != ex.output[i]);
        if differs {
            return Err(VerifyFailure {
                slot,
                counter_example: Some(ex),
            });
        }
    }
    Err(VerifyFailure {
        slot,
        counter_example: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GenericReference;
    use quill::program::{Instr, ValRef};
    use quill::ring::Ring;
    use rand::SeedableRng;

    struct Double;

    impl GenericReference for Double {
        fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
            ct[0].iter().map(|x| x.add(x)).collect()
        }
    }

    fn spec() -> KernelSpec {
        KernelSpec::new("double", 4, 1, 0, vec![], 65537, Box::new(Double))
    }

    #[test]
    fn accepts_equivalent_program() {
        // x + x computes 2x.
        let p = Program::new(
            "double",
            1,
            0,
            vec![Instr::AddCtCt(ValRef::Input(0), ValRef::Input(0))],
            ValRef::Instr(0),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(verify(&p, &spec(), &mut rng).is_ok());
    }

    #[test]
    fn accepts_splat_multiplication_as_equivalent() {
        // mul by splat 2 is also 2x — a different program, same polynomials.
        let p = Program::new(
            "double",
            1,
            0,
            vec![Instr::MulCtPt(
                ValRef::Input(0),
                quill::program::PtOperand::Splat(2),
            )],
            ValRef::Instr(0),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(verify(&p, &spec(), &mut rng).is_ok());
    }

    #[test]
    fn rejects_wrong_program_with_counterexample() {
        // x * x is not 2x.
        let p = Program::new(
            "double",
            1,
            0,
            vec![Instr::MulCtCt(ValRef::Input(0), ValRef::Input(0))],
            ValRef::Instr(0),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let err = verify(&p, &spec(), &mut rng).unwrap_err();
        let ex = err.counter_example.expect("sampling finds a witness");
        let got = interp::eval_concrete(&p, &ex.ct_inputs, &ex.pt_inputs, 65537);
        assert_ne!(got, ex.output);
    }

    #[test]
    fn mask_limits_comparison() {
        // Program correct only in slot 0; spec masked to slot 0 accepts it.
        struct FirstDouble;
        impl GenericReference for FirstDouble {
            fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
                let mut out = ct[0].clone();
                out[0] = ct[0][0].add(&ct[0][0]);
                out
            }
        }
        let masked = KernelSpec::new(
            "first-double",
            4,
            1,
            0,
            vec![true, false, false, false],
            65537,
            Box::new(FirstDouble),
        );
        let p = Program::new(
            "double",
            1,
            0,
            vec![Instr::AddCtCt(ValRef::Input(0), ValRef::Input(0))],
            ValRef::Instr(0),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(verify(&p, &masked, &mut rng).is_ok());
    }
}
