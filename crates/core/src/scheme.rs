//! The scheme abstraction: one trait binding the compiler to an HE backend.
//!
//! Everything above this layer — CEGIS, the middle-end, codegen, parameter
//! resolution — is generic over *which* RLWE scheme executes the kernel.
//! [`quill::scheme::SchemeId`] is the lightweight identity the IR layers
//! share (legality rules, cost tables, cache keys); this module supplies
//! the *capability* side: the [`Scheme`] trait maps that identity onto a
//! concrete backend crate's types (context, keys, ciphertexts, evaluator)
//! and operations, so [`crate::codegen::Runner`] lowers Quill IR 1:1 onto
//! any instantiation.
//!
//! Two instantiations ship:
//!
//! * [`BfvScheme`] — the `bfv` crate (Δ = ⌊Q/t⌋ most-significant-digit
//!   encoding, scale-invariant multiply with the BEHZ `t/Q` rescale).
//! * [`BgvScheme`] — the `bgv` crate (least-significant-digit encoding,
//!   plain tensor multiply, noise managed by modulus switching).
//!
//! Both expose the same method surface over the same shared ring arithmetic
//! (`rlwe-ring`), and their parameter sets are the *same type*
//! ([`rlwe_ring::params::RlweParams`]) — which is what makes cross-scheme
//! differential testing (one parameter set, two backends, slot-identical
//! decryptions) possible at all. What differs per scheme and is dispatched
//! here: how parameters are auto-selected ([`Scheme::resolve_params`] — the
//! BGV selector escalates faster because its noise *doubles* per multiply)
//! and the static noise model behind the selection certificate
//! ([`Scheme::analyze_noise`]).
//!
//! The free functions ([`resolve_params`], [`analyze_noise`],
//! [`default_scheme`]) are the value-level mirror for call sites that hold
//! a runtime [`SchemeId`] rather than a type parameter.

use quill::analysis::NoiseReport;
use quill::program::Program;
use quill::scheme::SchemeId;
use rand::Rng;
use rlwe_ring::params::{ParamError, ParamPolicy, RlweParams, SelectError};

/// A homomorphic-encryption backend the compiler can lower onto.
///
/// The trait is deliberately *mechanical*: each method forwards to the
/// backend crate's inherent method of the same name, so an instantiation is
/// a page of one-line delegations and the generic [`crate::codegen::Runner`]
/// body reads exactly like the scheme-specific one it replaced. Methods are
/// associated functions (not `&self`) because a scheme is a type-level
/// tag — [`BfvScheme`] and [`BgvScheme`] are unit structs that are never
/// constructed.
pub trait Scheme: 'static {
    /// The scheme's identity (legality rules, cost table, cache-key tag).
    const ID: SchemeId;

    /// The precomputed per-parameter-set state (ring, NTT tables, …).
    /// `Sync` so the DAG-parallel runner can share one context across
    /// worker threads (each worker builds its own non-`Sync` evaluator
    /// over it).
    type Context: Sync;
    /// A coefficient-form plaintext polynomial.
    type Plaintext;
    /// A plaintext pre-lifted to the evaluation domain (encode-once fast
    /// path for `ct ∘ pt` ops). `Sync`: the runner's splat cache is read
    /// concurrently by workers.
    type EvalPlaintext: Sync;
    /// An RLWE ciphertext (size ≥ 2 parts). `Send + Sync`: instruction
    /// results move between and are read by worker threads.
    type Ciphertext: Clone + Send + Sync;
    /// The relinearization key-switch key (`Sync`: shared by workers).
    type RelinKey: Sync;
    /// The Galois rotation key set (`Sync`: shared by workers).
    type GaloisKeys: Sync;
    /// A prepared hoisted key-switch decomposition (see [`Scheme::hoist`]);
    /// produced by one worker, read by the fan's members on others.
    type Hoisted: Send + Sync;
    /// The batching encoder borrowed from a context.
    type Encoder<'a>;
    /// The evaluator borrowed from a context.
    type Evaluator<'a>;
    /// The key generator borrowed from a context.
    type KeyGenerator<'a>;
    /// The public-key encryptor borrowed from a context.
    type Encryptor<'a>;
    /// The secret-key decryptor borrowed from a context.
    type Decryptor<'a>;

    /// Builds the scheme context for a parameter set.
    ///
    /// # Errors
    ///
    /// Returns the backend's [`ParamError`] for unusable parameters.
    fn context(params: RlweParams) -> Result<Self::Context, ParamError>;
    /// The parameter set behind a context.
    fn params(ctx: &Self::Context) -> &RlweParams;

    /// A batching encoder over the context.
    fn encoder(ctx: &Self::Context) -> Self::Encoder<'_>;
    /// An evaluator over the context.
    fn evaluator(ctx: &Self::Context) -> Self::Evaluator<'_>;
    /// Samples a fresh secret key.
    fn keygen<'a, R: Rng + ?Sized>(ctx: &'a Self::Context, rng: &mut R) -> Self::KeyGenerator<'a>;
    /// An encryptor under a fresh public key from `keygen`.
    fn encryptor<'a, R: Rng + ?Sized>(
        ctx: &'a Self::Context,
        keygen: &Self::KeyGenerator<'a>,
        rng: &mut R,
    ) -> Self::Encryptor<'a>;
    /// A decryptor under `keygen`'s secret key.
    fn decryptor<'a>(
        ctx: &'a Self::Context,
        keygen: &Self::KeyGenerator<'a>,
    ) -> Self::Decryptor<'a>;
    /// The relinearization key.
    fn relin_key<R: Rng + ?Sized>(kg: &Self::KeyGenerator<'_>, rng: &mut R) -> Self::RelinKey;
    /// Galois keys covering the given rotation steps (and the column swap
    /// when `include_columns`).
    fn galois_keys<R: Rng + ?Sized>(
        kg: &Self::KeyGenerator<'_>,
        steps: &[i64],
        include_columns: bool,
        rng: &mut R,
    ) -> Self::GaloisKeys;
    /// The Galois elements a key set covers (diagnostics).
    fn galois_elements(gk: &Self::GaloisKeys) -> Vec<u64>;

    /// Batching slots of the encoder (= the ring degree).
    fn slot_count(enc: &Self::Encoder<'_>) -> usize;
    /// Packs slot values into a plaintext.
    fn encode(enc: &Self::Encoder<'_>, values: &[u64]) -> Self::Plaintext;
    /// Packs slot values directly into the evaluation domain.
    fn encode_eval(enc: &Self::Encoder<'_>, values: &[u64]) -> Self::EvalPlaintext;
    /// Unpacks a plaintext into slot values.
    fn decode(enc: &Self::Encoder<'_>, pt: &Self::Plaintext) -> Vec<u64>;

    /// Public-key encryption.
    fn encrypt<R: Rng + ?Sized>(
        enc: &Self::Encryptor<'_>,
        pt: &Self::Plaintext,
        rng: &mut R,
    ) -> Self::Ciphertext;
    /// Decryption (exact while noise budget remains positive).
    fn decrypt(dec: &Self::Decryptor<'_>, ct: &Self::Ciphertext) -> Self::Plaintext;
    /// The measured invariant noise budget in bits (≤ 0 ⇒ decryption is no
    /// longer guaranteed).
    fn noise_budget(dec: &Self::Decryptor<'_>, ct: &Self::Ciphertext) -> i64;

    /// Lifts a plaintext into the evaluation domain once, for reuse.
    fn preencode(ev: &Self::Evaluator<'_>, pt: &Self::Plaintext) -> Self::EvalPlaintext;
    /// `a += b`, slotwise.
    fn add_assign(ev: &Self::Evaluator<'_>, a: &mut Self::Ciphertext, b: &Self::Ciphertext);
    /// `a -= b`, slotwise.
    fn sub_assign(ev: &Self::Evaluator<'_>, a: &mut Self::Ciphertext, b: &Self::Ciphertext);
    /// `a × b` as a size-3 ciphertext (no relinearization).
    fn multiply(
        ev: &Self::Evaluator<'_>,
        a: &Self::Ciphertext,
        b: &Self::Ciphertext,
    ) -> Self::Ciphertext;
    /// Key-switches a size-3 ciphertext back to size 2.
    fn relinearize_assign(ev: &Self::Evaluator<'_>, ct: &mut Self::Ciphertext, rk: &Self::RelinKey);
    /// `ct += pt`, slotwise.
    fn add_plain_assign(
        ev: &Self::Evaluator<'_>,
        ct: &mut Self::Ciphertext,
        pt: &Self::EvalPlaintext,
    );
    /// `ct -= pt`, slotwise.
    fn sub_plain_assign(
        ev: &Self::Evaluator<'_>,
        ct: &mut Self::Ciphertext,
        pt: &Self::EvalPlaintext,
    );
    /// `ct ×= pt`, slotwise.
    fn mul_plain_assign(
        ev: &Self::Evaluator<'_>,
        ct: &mut Self::Ciphertext,
        pt: &Self::EvalPlaintext,
    );
    /// Rotates the batching rows by `steps`.
    fn rotate_rows_assign(
        ev: &Self::Evaluator<'_>,
        ct: &mut Self::Ciphertext,
        steps: i64,
        gk: &Self::GaloisKeys,
    );
    /// Returns a dead ciphertext's buffers to the evaluator's scratch pool.
    fn recycle(ev: &Self::Evaluator<'_>, ct: Self::Ciphertext);

    /// Prepares a reusable key-switch decomposition of `ct` so that a fan
    /// of rotations on it can share the digit-decomposition NTTs
    /// ("hoisting"), or `None` when the backend does not support it — the
    /// runner then falls back to plain [`Scheme::rotate_rows_assign`] per
    /// member. The default is that fallback.
    fn hoist(_ev: &Self::Evaluator<'_>, _ct: &Self::Ciphertext) -> Option<Self::Hoisted> {
        None
    }
    /// Rotates `ct` by `steps` through a decomposition obtained from
    /// [`Scheme::hoist`] **on the same ciphertext**. Must decrypt
    /// identically to the plain rotation (the raw ciphertext bits may
    /// differ). The default ignores the decomposition and rotates plainly,
    /// matching the default `hoist`.
    fn rotate_hoisted(
        ev: &Self::Evaluator<'_>,
        ct: &Self::Ciphertext,
        _h: &Self::Hoisted,
        steps: i64,
        gk: &Self::GaloisKeys,
    ) -> Self::Ciphertext {
        let mut out = ct.clone();
        Self::rotate_rows_assign(ev, &mut out, steps, gk);
        out
    }
    /// Returns a hoisted decomposition's buffers to the evaluator's
    /// scratch pool (no-op by default).
    fn recycle_hoisted(_ev: &Self::Evaluator<'_>, _h: Self::Hoisted) {}

    /// Resolves a parameter policy against a lowered program under this
    /// scheme's noise model and candidate table.
    ///
    /// # Errors
    ///
    /// Returns the scheme selector's [`SelectError`] when no set satisfies
    /// the policy.
    fn resolve_params(
        policy: &ParamPolicy,
        prog: &Program,
        min_slots: usize,
        t: u64,
    ) -> Result<RlweParams, SelectError>;
    /// Static noise analysis of a lowered program under this scheme's model.
    fn analyze_noise(params: &RlweParams, prog: &Program) -> NoiseReport;
}

/// The `bfv` crate as a [`Scheme`] instantiation.
#[derive(Debug, Clone, Copy)]
pub struct BfvScheme;

impl Scheme for BfvScheme {
    const ID: SchemeId = SchemeId::Bfv;

    type Context = bfv::params::BfvContext;
    type Plaintext = bfv::encoding::Plaintext;
    type EvalPlaintext = bfv::encoding::EvalPlaintext;
    type Ciphertext = bfv::encrypt::Ciphertext;
    type RelinKey = bfv::keys::RelinKey;
    type GaloisKeys = bfv::keys::GaloisKeys;
    type Hoisted = bfv::HoistedDecomposition;
    type Encoder<'a> = bfv::encoding::BatchEncoder<'a>;
    type Evaluator<'a> = bfv::evaluator::Evaluator<'a>;
    type KeyGenerator<'a> = bfv::keys::KeyGenerator<'a>;
    type Encryptor<'a> = bfv::encrypt::Encryptor<'a>;
    type Decryptor<'a> = bfv::encrypt::Decryptor<'a>;

    fn context(params: RlweParams) -> Result<Self::Context, ParamError> {
        bfv::params::BfvContext::new(params)
    }
    fn params(ctx: &Self::Context) -> &RlweParams {
        ctx.params()
    }
    fn encoder(ctx: &Self::Context) -> Self::Encoder<'_> {
        bfv::encoding::BatchEncoder::new(ctx)
    }
    fn evaluator(ctx: &Self::Context) -> Self::Evaluator<'_> {
        bfv::evaluator::Evaluator::new(ctx)
    }
    fn keygen<'a, R: Rng + ?Sized>(ctx: &'a Self::Context, rng: &mut R) -> Self::KeyGenerator<'a> {
        bfv::keys::KeyGenerator::new(ctx, rng)
    }
    fn encryptor<'a, R: Rng + ?Sized>(
        ctx: &'a Self::Context,
        keygen: &Self::KeyGenerator<'a>,
        rng: &mut R,
    ) -> Self::Encryptor<'a> {
        bfv::encrypt::Encryptor::new(ctx, keygen.public_key(rng))
    }
    fn decryptor<'a>(
        ctx: &'a Self::Context,
        keygen: &Self::KeyGenerator<'a>,
    ) -> Self::Decryptor<'a> {
        bfv::encrypt::Decryptor::new(ctx, keygen.secret_key().clone())
    }
    fn relin_key<R: Rng + ?Sized>(kg: &Self::KeyGenerator<'_>, rng: &mut R) -> Self::RelinKey {
        kg.relin_key(rng)
    }
    fn galois_keys<R: Rng + ?Sized>(
        kg: &Self::KeyGenerator<'_>,
        steps: &[i64],
        include_columns: bool,
        rng: &mut R,
    ) -> Self::GaloisKeys {
        kg.galois_keys_for_rotations(steps, include_columns, rng)
    }
    fn galois_elements(gk: &Self::GaloisKeys) -> Vec<u64> {
        gk.elements()
    }

    fn slot_count(enc: &Self::Encoder<'_>) -> usize {
        enc.slot_count()
    }
    fn encode(enc: &Self::Encoder<'_>, values: &[u64]) -> Self::Plaintext {
        enc.encode(values)
    }
    fn encode_eval(enc: &Self::Encoder<'_>, values: &[u64]) -> Self::EvalPlaintext {
        enc.encode_eval(values)
    }
    fn decode(enc: &Self::Encoder<'_>, pt: &Self::Plaintext) -> Vec<u64> {
        enc.decode(pt)
    }

    fn encrypt<R: Rng + ?Sized>(
        enc: &Self::Encryptor<'_>,
        pt: &Self::Plaintext,
        rng: &mut R,
    ) -> Self::Ciphertext {
        enc.encrypt(pt, rng)
    }
    fn decrypt(dec: &Self::Decryptor<'_>, ct: &Self::Ciphertext) -> Self::Plaintext {
        dec.decrypt(ct)
    }
    fn noise_budget(dec: &Self::Decryptor<'_>, ct: &Self::Ciphertext) -> i64 {
        dec.invariant_noise_budget(ct)
    }

    fn preencode(ev: &Self::Evaluator<'_>, pt: &Self::Plaintext) -> Self::EvalPlaintext {
        ev.preencode(pt)
    }
    fn add_assign(ev: &Self::Evaluator<'_>, a: &mut Self::Ciphertext, b: &Self::Ciphertext) {
        ev.add_assign(a, b);
    }
    fn sub_assign(ev: &Self::Evaluator<'_>, a: &mut Self::Ciphertext, b: &Self::Ciphertext) {
        ev.sub_assign(a, b);
    }
    fn multiply(
        ev: &Self::Evaluator<'_>,
        a: &Self::Ciphertext,
        b: &Self::Ciphertext,
    ) -> Self::Ciphertext {
        ev.multiply(a, b)
    }
    fn relinearize_assign(
        ev: &Self::Evaluator<'_>,
        ct: &mut Self::Ciphertext,
        rk: &Self::RelinKey,
    ) {
        ev.relinearize_assign(ct, rk);
    }
    fn add_plain_assign(
        ev: &Self::Evaluator<'_>,
        ct: &mut Self::Ciphertext,
        pt: &Self::EvalPlaintext,
    ) {
        ev.add_plain_assign(ct, pt);
    }
    fn sub_plain_assign(
        ev: &Self::Evaluator<'_>,
        ct: &mut Self::Ciphertext,
        pt: &Self::EvalPlaintext,
    ) {
        ev.sub_plain_assign(ct, pt);
    }
    fn mul_plain_assign(
        ev: &Self::Evaluator<'_>,
        ct: &mut Self::Ciphertext,
        pt: &Self::EvalPlaintext,
    ) {
        ev.mul_plain_assign(ct, pt);
    }
    fn rotate_rows_assign(
        ev: &Self::Evaluator<'_>,
        ct: &mut Self::Ciphertext,
        steps: i64,
        gk: &Self::GaloisKeys,
    ) {
        ev.rotate_rows_assign(ct, steps, gk);
    }
    fn recycle(ev: &Self::Evaluator<'_>, ct: Self::Ciphertext) {
        ev.recycle(ct);
    }

    fn hoist(ev: &Self::Evaluator<'_>, ct: &Self::Ciphertext) -> Option<Self::Hoisted> {
        Some(ev.hoist(ct))
    }
    fn rotate_hoisted(
        ev: &Self::Evaluator<'_>,
        ct: &Self::Ciphertext,
        h: &Self::Hoisted,
        steps: i64,
        gk: &Self::GaloisKeys,
    ) -> Self::Ciphertext {
        ev.rotate_rows_hoisted(ct, h, steps, gk)
    }
    fn recycle_hoisted(ev: &Self::Evaluator<'_>, h: Self::Hoisted) {
        ev.recycle_hoisted(h);
    }

    fn resolve_params(
        policy: &ParamPolicy,
        prog: &Program,
        min_slots: usize,
        t: u64,
    ) -> Result<RlweParams, SelectError> {
        bfv::params::resolve_policy(policy, prog, min_slots, t)
    }
    fn analyze_noise(params: &RlweParams, prog: &Program) -> NoiseReport {
        bfv::NoiseModel::for_params(params).analyze(prog)
    }
}

/// The `bgv` crate as a [`Scheme`] instantiation.
#[derive(Debug, Clone, Copy)]
pub struct BgvScheme;

impl Scheme for BgvScheme {
    const ID: SchemeId = SchemeId::Bgv;

    type Context = bgv::params::BgvContext;
    type Plaintext = bgv::encoding::Plaintext;
    type EvalPlaintext = bgv::encoding::EvalPlaintext;
    type Ciphertext = bgv::encrypt::Ciphertext;
    type RelinKey = bgv::keys::RelinKey;
    type GaloisKeys = bgv::keys::GaloisKeys;
    type Hoisted = bgv::HoistedDecomposition;
    type Encoder<'a> = bgv::encoding::BatchEncoder<'a>;
    type Evaluator<'a> = bgv::evaluator::Evaluator<'a>;
    type KeyGenerator<'a> = bgv::keys::KeyGenerator<'a>;
    type Encryptor<'a> = bgv::encrypt::Encryptor<'a>;
    type Decryptor<'a> = bgv::encrypt::Decryptor<'a>;

    fn context(params: RlweParams) -> Result<Self::Context, ParamError> {
        bgv::params::BgvContext::new(params)
    }
    fn params(ctx: &Self::Context) -> &RlweParams {
        ctx.params()
    }
    fn encoder(ctx: &Self::Context) -> Self::Encoder<'_> {
        bgv::encoding::BatchEncoder::new(ctx)
    }
    fn evaluator(ctx: &Self::Context) -> Self::Evaluator<'_> {
        bgv::evaluator::Evaluator::new(ctx)
    }
    fn keygen<'a, R: Rng + ?Sized>(ctx: &'a Self::Context, rng: &mut R) -> Self::KeyGenerator<'a> {
        bgv::keys::KeyGenerator::new(ctx, rng)
    }
    fn encryptor<'a, R: Rng + ?Sized>(
        ctx: &'a Self::Context,
        keygen: &Self::KeyGenerator<'a>,
        rng: &mut R,
    ) -> Self::Encryptor<'a> {
        bgv::encrypt::Encryptor::new(ctx, keygen.public_key(rng))
    }
    fn decryptor<'a>(
        ctx: &'a Self::Context,
        keygen: &Self::KeyGenerator<'a>,
    ) -> Self::Decryptor<'a> {
        bgv::encrypt::Decryptor::new(ctx, keygen.secret_key().clone())
    }
    fn relin_key<R: Rng + ?Sized>(kg: &Self::KeyGenerator<'_>, rng: &mut R) -> Self::RelinKey {
        kg.relin_key(rng)
    }
    fn galois_keys<R: Rng + ?Sized>(
        kg: &Self::KeyGenerator<'_>,
        steps: &[i64],
        include_columns: bool,
        rng: &mut R,
    ) -> Self::GaloisKeys {
        kg.galois_keys_for_rotations(steps, include_columns, rng)
    }
    fn galois_elements(gk: &Self::GaloisKeys) -> Vec<u64> {
        gk.elements()
    }

    fn slot_count(enc: &Self::Encoder<'_>) -> usize {
        enc.slot_count()
    }
    fn encode(enc: &Self::Encoder<'_>, values: &[u64]) -> Self::Plaintext {
        enc.encode(values)
    }
    fn encode_eval(enc: &Self::Encoder<'_>, values: &[u64]) -> Self::EvalPlaintext {
        enc.encode_eval(values)
    }
    fn decode(enc: &Self::Encoder<'_>, pt: &Self::Plaintext) -> Vec<u64> {
        enc.decode(pt)
    }

    fn encrypt<R: Rng + ?Sized>(
        enc: &Self::Encryptor<'_>,
        pt: &Self::Plaintext,
        rng: &mut R,
    ) -> Self::Ciphertext {
        enc.encrypt(pt, rng)
    }
    fn decrypt(dec: &Self::Decryptor<'_>, ct: &Self::Ciphertext) -> Self::Plaintext {
        dec.decrypt(ct)
    }
    fn noise_budget(dec: &Self::Decryptor<'_>, ct: &Self::Ciphertext) -> i64 {
        dec.invariant_noise_budget(ct)
    }

    fn preencode(ev: &Self::Evaluator<'_>, pt: &Self::Plaintext) -> Self::EvalPlaintext {
        ev.preencode(pt)
    }
    fn add_assign(ev: &Self::Evaluator<'_>, a: &mut Self::Ciphertext, b: &Self::Ciphertext) {
        ev.add_assign(a, b);
    }
    fn sub_assign(ev: &Self::Evaluator<'_>, a: &mut Self::Ciphertext, b: &Self::Ciphertext) {
        ev.sub_assign(a, b);
    }
    fn multiply(
        ev: &Self::Evaluator<'_>,
        a: &Self::Ciphertext,
        b: &Self::Ciphertext,
    ) -> Self::Ciphertext {
        ev.multiply(a, b)
    }
    fn relinearize_assign(
        ev: &Self::Evaluator<'_>,
        ct: &mut Self::Ciphertext,
        rk: &Self::RelinKey,
    ) {
        ev.relinearize_assign(ct, rk);
    }
    fn add_plain_assign(
        ev: &Self::Evaluator<'_>,
        ct: &mut Self::Ciphertext,
        pt: &Self::EvalPlaintext,
    ) {
        ev.add_plain_assign(ct, pt);
    }
    fn sub_plain_assign(
        ev: &Self::Evaluator<'_>,
        ct: &mut Self::Ciphertext,
        pt: &Self::EvalPlaintext,
    ) {
        ev.sub_plain_assign(ct, pt);
    }
    fn mul_plain_assign(
        ev: &Self::Evaluator<'_>,
        ct: &mut Self::Ciphertext,
        pt: &Self::EvalPlaintext,
    ) {
        ev.mul_plain_assign(ct, pt);
    }
    fn rotate_rows_assign(
        ev: &Self::Evaluator<'_>,
        ct: &mut Self::Ciphertext,
        steps: i64,
        gk: &Self::GaloisKeys,
    ) {
        ev.rotate_rows_assign(ct, steps, gk);
    }
    fn recycle(ev: &Self::Evaluator<'_>, ct: Self::Ciphertext) {
        ev.recycle(ct);
    }

    fn hoist(ev: &Self::Evaluator<'_>, ct: &Self::Ciphertext) -> Option<Self::Hoisted> {
        Some(ev.hoist(ct))
    }
    fn rotate_hoisted(
        ev: &Self::Evaluator<'_>,
        ct: &Self::Ciphertext,
        h: &Self::Hoisted,
        steps: i64,
        gk: &Self::GaloisKeys,
    ) -> Self::Ciphertext {
        ev.rotate_rows_hoisted(ct, h, steps, gk)
    }
    fn recycle_hoisted(ev: &Self::Evaluator<'_>, h: Self::Hoisted) {
        ev.recycle_hoisted(h);
    }

    fn resolve_params(
        policy: &ParamPolicy,
        prog: &Program,
        min_slots: usize,
        t: u64,
    ) -> Result<RlweParams, SelectError> {
        bgv::params::resolve_policy(policy, prog, min_slots, t)
    }
    fn analyze_noise(params: &RlweParams, prog: &Program) -> NoiseReport {
        bgv::NoiseModel::for_params(params).analyze(prog)
    }
}

/// Value-level dispatch of [`Scheme::resolve_params`] for call sites that
/// hold a runtime [`SchemeId`] (the CEGIS driver, the CLI).
///
/// # Errors
///
/// Returns the scheme selector's [`SelectError`] when no parameter set
/// satisfies the policy for this program.
pub fn resolve_params(
    scheme: SchemeId,
    policy: &ParamPolicy,
    prog: &Program,
    min_slots: usize,
    t: u64,
) -> Result<RlweParams, SelectError> {
    match scheme {
        SchemeId::Bfv => BfvScheme::resolve_params(policy, prog, min_slots, t),
        SchemeId::Bgv => BgvScheme::resolve_params(policy, prog, min_slots, t),
    }
}

/// Value-level dispatch of [`Scheme::analyze_noise`].
pub fn analyze_noise(scheme: SchemeId, params: &RlweParams, prog: &Program) -> NoiseReport {
    match scheme {
        SchemeId::Bfv => BfvScheme::analyze_noise(params, prog),
        SchemeId::Bgv => BgvScheme::analyze_noise(params, prog),
    }
}

/// The scheme selected by the `PORCUPINE_SCHEME` environment variable
/// (`bfv` or `bgv`), or an error naming the unknown value. Unset/empty
/// means the default ([`SchemeId::Bfv`]).
///
/// # Errors
///
/// Returns a human-readable message for unrecognized values — the CLI
/// surfaces it as a proper error instead of a panic.
pub fn scheme_from_env() -> Result<SchemeId, String> {
    match std::env::var("PORCUPINE_SCHEME") {
        Err(_) => Ok(SchemeId::default()),
        Ok(v) if v.trim().is_empty() => Ok(SchemeId::default()),
        Ok(v) => SchemeId::parse(&v).ok_or_else(|| {
            format!(
                "PORCUPINE_SCHEME must be one of {:?}, got '{v}'",
                SchemeId::ALL.iter().map(|s| s.name()).collect::<Vec<_>>()
            )
        }),
    }
}

/// The default scheme for [`crate::cegis::SynthesisOptions`]:
/// `PORCUPINE_SCHEME` when set, else BFV.
///
/// # Panics
///
/// Panics on an unrecognized `PORCUPINE_SCHEME` — a typo'd CI leg silently
/// running the default backend would go green without exercising the
/// requested scheme at all. The CLI validates the variable first (via
/// [`scheme_from_env`]) and reports a clean error instead.
pub fn default_scheme() -> SchemeId {
    scheme_from_env().unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// One generic encrypt–evaluate–decrypt round trip, instantiated for
    /// both schemes: the trait surface is sufficient to drive a backend
    /// end to end, and both backends agree slot-for-slot on the same
    /// parameter set (the foundation of cross-scheme differential testing).
    fn roundtrip<S: Scheme>() -> Vec<u64> {
        let ctx = S::context(RlweParams::test_small()).expect("test params valid");
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5C4E);
        let kg = S::keygen(&ctx, &mut rng);
        let enc = S::encryptor(&ctx, &kg, &mut rng);
        let dec = S::decryptor(&ctx, &kg);
        let coder = S::encoder(&ctx);
        let ev = S::evaluator(&ctx);
        let rk = S::relin_key(&kg, &mut rng);
        let gk = S::galois_keys(&kg, &[1], false, &mut rng);

        let n = S::slot_count(&coder);
        let a: Vec<u64> = (0..n as u64).map(|i| i % 97).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (3 * i + 1) % 89).collect();
        let mut x = S::encrypt(&enc, &S::encode(&coder, &a), &mut rng);
        let y = S::encrypt(&enc, &S::encode(&coder, &b), &mut rng);
        // (x*y relin) + y, rotated by 1, minus splat(5)
        let mut prod = S::multiply(&ev, &x, &y);
        S::relinearize_assign(&ev, &mut prod, &rk);
        S::add_assign(&ev, &mut prod, &y);
        S::rotate_rows_assign(&ev, &mut prod, 1, &gk);
        let five = S::encode_eval(&coder, &vec![5; n]);
        S::sub_plain_assign(&ev, &mut prod, &five);
        S::recycle(&ev, x.clone());
        S::add_assign(&ev, &mut x, &y);
        assert!(S::noise_budget(&dec, &prod) > 0);
        S::decode(&coder, &S::decrypt(&dec, &prod))
    }

    #[test]
    fn both_schemes_drive_the_same_generic_pipeline_to_the_same_slots() {
        let bfv_out = roundtrip::<BfvScheme>();
        let bgv_out = roundtrip::<BgvScheme>();
        assert_eq!(bfv_out, bgv_out, "cross-scheme slot divergence");
        // Spot-check the model: slot 0 after rot(1) reads index 1 of
        // x*y + y = a[1]*b[1] + b[1] = 1*4 + 4, then minus the splat 5.
        let t = RlweParams::test_small().plain_modulus;
        let expect = (8 + t - 5) % t;
        assert_eq!(bfv_out[0], expect);
    }

    #[test]
    fn value_level_dispatch_matches_the_typed_path() {
        use quill::program::{Instr, Program, ValRef};
        let prog = Program::new(
            "square",
            1,
            0,
            vec![
                Instr::MulCtCt(ValRef::Input(0), ValRef::Input(0)),
                Instr::Relin(ValRef::Instr(0)),
            ],
            ValRef::Instr(1),
        );
        for &id in SchemeId::ALL {
            let params = resolve_params(id, &ParamPolicy::auto(), &prog, 8, 65537)
                .expect("depth-1 square must be selectable under both schemes");
            let report = analyze_noise(id, &params, &prog);
            assert!(
                report.predicted_budget_bits > 0.0,
                "{id}: selector certificate must hold under its own model"
            );
        }
    }

    #[test]
    fn env_scheme_parses_and_reports_unknowns() {
        // Not set in the test environment: default.
        if std::env::var("PORCUPINE_SCHEME").is_err() {
            assert_eq!(scheme_from_env(), Ok(SchemeId::Bfv));
        }
        assert_eq!(SchemeId::parse("bgv"), Some(SchemeId::Bgv));
        assert!(SchemeId::parse("ckks").is_none());
    }
}
