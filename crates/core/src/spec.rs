//! Kernel specifications (§4.3): a plaintext reference implementation plus a
//! data layout, defining exactly what the synthesized HE kernel must compute.
//!
//! Reference implementations are written once, generically over
//! [`quill::ring::Ring`], and the trait machinery below instantiates them
//! concretely (for CEGIS examples) and symbolically (for verification) —
//! the Rust analogue of the paper's Rosette lifting of Racket references.

use quill::ring::{Ring, Zt};
use quill::symbolic::SymPoly;
use rand::Rng;

/// A reference implementation written generically over a ring.
///
/// Implement this (one generic method) and [`Reference`] comes for free via
/// a blanket impl, giving object-safe concrete + symbolic entry points.
pub trait GenericReference {
    /// The plaintext computation: slot vectors in, slot vector out.
    fn compute<R: Ring>(&self, ct_inputs: &[Vec<R>], pt_inputs: &[Vec<R>]) -> Vec<R>;
}

/// Object-safe view of a reference implementation.
pub trait Reference: Send + Sync {
    /// Concrete evaluation over `Z_t`.
    fn eval_zt(&self, ct_inputs: &[Vec<Zt>], pt_inputs: &[Vec<Zt>]) -> Vec<Zt>;
    /// Symbolic evaluation over canonical polynomials.
    fn eval_sym(&self, ct_inputs: &[Vec<SymPoly>], pt_inputs: &[Vec<SymPoly>]) -> Vec<SymPoly>;
}

impl<T: GenericReference + Send + Sync> Reference for T {
    fn eval_zt(&self, ct_inputs: &[Vec<Zt>], pt_inputs: &[Vec<Zt>]) -> Vec<Zt> {
        self.compute(ct_inputs, pt_inputs)
    }

    fn eval_sym(&self, ct_inputs: &[Vec<SymPoly>], pt_inputs: &[Vec<SymPoly>]) -> Vec<SymPoly> {
        self.compute(ct_inputs, pt_inputs)
    }
}

/// A complete kernel specification: reference computation, model slot count,
/// input arities, and the output mask (which slots the data layout defines
/// as meaningful).
pub struct KernelSpec {
    /// Kernel name (reporting and program naming).
    pub name: String,
    /// Model slot count `n` used during synthesis and verification.
    pub n: usize,
    /// Number of ciphertext inputs.
    pub num_ct_inputs: usize,
    /// Number of plaintext inputs.
    pub num_pt_inputs: usize,
    /// `output_mask[i]` — must output slot `i` match the reference?
    pub output_mask: Vec<bool>,
    /// Plaintext modulus.
    pub t: u64,
    /// The reference implementation.
    pub reference: Box<dyn Reference>,
    /// Memoized canonical symbolic form, filled by the first
    /// [`KernelSpec::eval_symbolic`] call. Both the verifier and the
    /// synthesis-cache key derivation consult the canonical form on every
    /// query, so it is computed once per spec; treat the public fields as
    /// immutable once the spec is in use.
    sym: std::sync::OnceLock<Vec<SymPoly>>,
}

impl std::fmt::Debug for KernelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelSpec")
            .field("name", &self.name)
            .field("n", &self.n)
            .field("num_ct_inputs", &self.num_ct_inputs)
            .field("num_pt_inputs", &self.num_pt_inputs)
            .field("t", &self.t)
            .field(
                "masked_slots",
                &self.output_mask.iter().filter(|&&b| b).count(),
            )
            .finish()
    }
}

impl KernelSpec {
    /// Builds a spec; the mask defaults to all-slots if `output_mask` is
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if the mask length differs from `n` (when non-empty).
    pub fn new(
        name: impl Into<String>,
        n: usize,
        num_ct_inputs: usize,
        num_pt_inputs: usize,
        output_mask: Vec<bool>,
        t: u64,
        reference: Box<dyn Reference>,
    ) -> Self {
        let output_mask = if output_mask.is_empty() {
            vec![true; n]
        } else {
            assert_eq!(output_mask.len(), n, "mask length must equal n");
            output_mask
        };
        KernelSpec {
            name: name.into(),
            n,
            num_ct_inputs,
            num_pt_inputs,
            output_mask,
            t,
            reference,
            sym: std::sync::OnceLock::new(),
        }
    }

    /// Samples one random concrete example: inputs plus the reference's
    /// masked output.
    pub fn sample_example<R: Rng + ?Sized>(&self, rng: &mut R) -> Example {
        let sample_vec =
            |rng: &mut R| -> Vec<u64> { (0..self.n).map(|_| rng.gen_range(0..self.t)).collect() };
        let ct_inputs: Vec<Vec<u64>> = (0..self.num_ct_inputs).map(|_| sample_vec(rng)).collect();
        let pt_inputs: Vec<Vec<u64>> = (0..self.num_pt_inputs).map(|_| sample_vec(rng)).collect();
        let output = self.eval_concrete(&ct_inputs, &pt_inputs);
        Example {
            ct_inputs,
            pt_inputs,
            output,
        }
    }

    /// Runs the reference concretely on unsigned slot vectors.
    pub fn eval_concrete(&self, ct_inputs: &[Vec<u64>], pt_inputs: &[Vec<u64>]) -> Vec<u64> {
        let wrap = |vs: &[Vec<u64>]| -> Vec<Vec<Zt>> {
            vs.iter()
                .map(|v| v.iter().map(|&x| Zt::new(x, self.t)).collect())
                .collect()
        };
        self.reference
            .eval_zt(&wrap(ct_inputs), &wrap(pt_inputs))
            .into_iter()
            .map(|z| z.value())
            .collect()
    }

    /// Symbolic reference outputs with the standard variable numbering
    /// (ciphertext input `j` slot `i` → var `j·n + i`; plaintext inputs
    /// follow).
    pub fn eval_symbolic(&self) -> &[SymPoly] {
        self.sym.get_or_init(|| {
            let n = self.n;
            let t = self.t;
            let ct_inputs: Vec<Vec<SymPoly>> = (0..self.num_ct_inputs)
                .map(|j| {
                    (0..n)
                        .map(|i| SymPoly::var((j * n + i) as u32, t))
                        .collect()
                })
                .collect();
            let ct_vars = self.num_ct_inputs * n;
            let pt_inputs: Vec<Vec<SymPoly>> = (0..self.num_pt_inputs)
                .map(|j| {
                    (0..n)
                        .map(|i| SymPoly::var((ct_vars + j * n + i) as u32, t))
                        .collect()
                })
                .collect();
            self.reference.eval_sym(&ct_inputs, &pt_inputs)
        })
    }
}

/// One concrete input–output example used by the CEGIS loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Example {
    /// Ciphertext input slot vectors.
    pub ct_inputs: Vec<Vec<u64>>,
    /// Plaintext input slot vectors.
    pub pt_inputs: Vec<Vec<u64>>,
    /// Expected output slots (only masked slots are compared).
    pub output: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ElementwiseSquare;

    impl GenericReference for ElementwiseSquare {
        fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
            ct[0].iter().map(|x| x.mul(x)).collect()
        }
    }

    fn square_spec() -> KernelSpec {
        KernelSpec::new(
            "square",
            4,
            1,
            0,
            vec![],
            65537,
            Box::new(ElementwiseSquare),
        )
    }

    #[test]
    fn concrete_eval_matches_reference() {
        let spec = square_spec();
        let out = spec.eval_concrete(&[vec![2, 3, 4, 5]], &[]);
        assert_eq!(out, vec![4, 9, 16, 25]);
    }

    #[test]
    fn symbolic_eval_produces_squares() {
        let spec = square_spec();
        let sym = spec.eval_symbolic();
        assert_eq!(sym.len(), 4);
        for (i, p) in sym.iter().enumerate() {
            assert_eq!(p.degree(), 2);
            assert_eq!(p.variables(), vec![i as u32]);
        }
    }

    #[test]
    fn sampled_examples_are_consistent() {
        use rand::SeedableRng;
        let spec = square_spec();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let ex = spec.sample_example(&mut rng);
        assert_eq!(ex.output, spec.eval_concrete(&ex.ct_inputs, &ex.pt_inputs));
    }

    #[test]
    fn default_mask_is_full() {
        let spec = square_spec();
        assert_eq!(spec.output_mask, vec![true; 4]);
    }
}
