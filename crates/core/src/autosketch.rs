//! Automatic sketch generation from a specification.
//!
//! §4.4 observes that "the arithmetic instructions can be extracted from
//! the specification"; this module automates that step. The spec is lifted
//! to canonical polynomials per output slot, and the sketch is derived from
//! their structure:
//!
//! * **rotation set** — the distinct offsets `var_slot − output_slot`
//!   appearing in masked slots (the §6.1 sliding-window restriction,
//!   inferred instead of hand-written);
//! * **components** — `add-ct-ct` always; `sub-ct-ct` when any coefficient
//!   is negative (centered); `mul-ct-ct` when the ciphertext-variable
//!   degree exceeds 1; `mul-ct-pt(p_i)` when plaintext input `i` appears;
//!   `mul-ct-pt(splat w)` for each distinct coefficient magnitude `w > 1`;
//!   `add-ct-pt(splat c)` for each additive constant;
//! * **component budget** — a slack-padded estimate from the term count of
//!   the widest slot.
//!
//! The result is a *fallback quality* sketch: always sufficient to express
//! the reference recomputed literally, usually looser (slower to search)
//! than a hand-tuned one — exactly the trade-off §4.4 describes for the
//! "all holes rotated" fallback.
//!
//! Synthesis against the generated sketch runs through
//! [`crate::cegis::synthesize`], so it inherits the phase-1 strategy
//! selection and the persistent synthesis cache — the derived sketch is
//! part of the cache key, so regenerating the same sketch re-hits the
//! same entry.

use crate::cegis::{synthesize, SynthesisError, SynthesisOptions, SynthesisResult};
use crate::sketch::{ArithOp, RotationSet, Sketch, SketchOp};
use crate::spec::KernelSpec;
use quill::program::PtOperand;

/// Derives a sketch from the spec and synthesizes against it in one step —
/// the fully automatic front door. All the [`SynthesisOptions`] knobs,
/// including `parallelism`, flow straight through to the search.
///
/// # Errors
///
/// See [`SynthesisError`].
pub fn auto_synthesize(
    spec: &KernelSpec,
    options: &SynthesisOptions,
) -> Result<SynthesisResult, SynthesisError> {
    synthesize(spec, &auto_sketch(spec), options)
}

/// Derives a sketch from the specification's symbolic structure.
///
/// # Panics
///
/// Panics if the spec masks no output slot.
///
/// # Examples
///
/// ```
/// use porcupine::autosketch::auto_sketch;
/// use porcupine::cegis::{synthesize, SynthesisOptions};
/// use porcupine::spec::{GenericReference, KernelSpec};
/// use quill::ring::Ring;
///
/// // out[i] = x[i] + x[i+1] — the sketch (adds, rotation {1}) is inferred.
/// struct PairSum;
/// impl GenericReference for PairSum {
///     fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
///         (0..ct[0].len())
///             .map(|i| ct[0][i].add(&ct[0][(i + 1) % ct[0].len()]))
///             .collect()
///     }
/// }
/// let mut mask = vec![true; 4];
/// mask[3] = false; // slot 3 wraps
/// let spec = KernelSpec::new("pairsum", 4, 1, 0, mask, 65537, Box::new(PairSum));
/// let sketch = auto_sketch(&spec);
/// assert!(sketch.rotation_amounts.contains(&1));
/// let r = synthesize(&spec, &sketch, &SynthesisOptions::default())?;
/// assert_eq!(r.program.len(), 2); // rot + add
/// # Ok::<(), porcupine::cegis::SynthesisError>(())
/// ```
pub fn auto_sketch(spec: &KernelSpec) -> Sketch {
    let syms = spec.eval_symbolic();
    let t = spec.t;
    let half_t = t / 2;
    let n = spec.n as i64;
    let ct_vars = (spec.num_ct_inputs * spec.n) as u32;

    let mut offsets: Vec<i64> = Vec::new();
    let mut needs_sub = false;
    let mut needs_ct_mul = false;
    let mut pt_muls: Vec<usize> = Vec::new();
    let mut splat_muls: Vec<i64> = Vec::new();
    let mut splat_adds: Vec<i64> = Vec::new();
    let mut max_terms = 1usize;

    for (slot, poly) in syms.iter().enumerate() {
        if !spec.output_mask[slot] {
            continue;
        }
        max_terms = max_terms.max(poly.num_terms());
        for var in poly.variables() {
            if var < ct_vars {
                let var_slot = (var as i64) % n;
                // Centered relative offset: rotating left by `off` aligns
                // the read with the output slot.
                let mut off = (var_slot - slot as i64).rem_euclid(n);
                if off > n / 2 {
                    off -= n;
                }
                if off != 0 && !offsets.contains(&off) {
                    offsets.push(off);
                }
            } else {
                let pt_input = ((var - ct_vars) as usize) / spec.n;
                if !pt_muls.contains(&pt_input) {
                    pt_muls.push(pt_input);
                }
            }
        }
        // Degree in ciphertext variables only.
        // A conservative proxy: total degree ≥ 2 and at least one ct var
        // appears with exponent ≥ 2 or two ct vars multiply.
        if poly_ct_degree(poly, ct_vars) >= 2 {
            needs_ct_mul = true;
        }
        for (coeff, is_constant_term) in poly_coefficients(poly) {
            let centered = if coeff > half_t {
                needs_sub = true;
                coeff as i64 - t as i64
            } else {
                coeff as i64
            };
            let mag = centered.unsigned_abs() as i64;
            if is_constant_term {
                if !splat_adds.contains(&centered) {
                    splat_adds.push(centered);
                }
            } else if mag > 1 && !splat_muls.contains(&mag) {
                splat_muls.push(mag);
            }
        }
    }
    assert!(max_terms >= 1, "spec masks no output slot");

    let mut ops = vec![SketchOp::rotated(ArithOp::AddCtCt)];
    if needs_sub {
        ops.push(SketchOp::rotated(ArithOp::SubCtCt));
    }
    if needs_ct_mul {
        ops.push(SketchOp::plain(ArithOp::MulCtCt));
    }
    for p in pt_muls {
        ops.push(SketchOp::plain(ArithOp::MulCtPt(PtOperand::Input(p))));
    }
    splat_muls.sort_unstable();
    for w in splat_muls {
        ops.push(SketchOp::plain(ArithOp::MulCtPt(PtOperand::Splat(w))));
    }
    splat_adds.sort_unstable();
    for c in splat_adds {
        ops.push(SketchOp::plain(ArithOp::AddCtPt(PtOperand::Splat(c))));
    }

    offsets.sort_unstable();
    // Component budget: a tree over the widest slot's terms plus slack for
    // the op-kind diversity.
    let max_components =
        (usize::BITS - (max_terms - 1).leading_zeros()) as usize + ops.len().min(3) + 1;

    Sketch::new(ops, RotationSet::Explicit(offsets), max_components.max(2))
}

fn poly_ct_degree(poly: &quill::symbolic::SymPoly, ct_vars: u32) -> u32 {
    // Upper bound: total degree if any ct variable participates in a
    // degree ≥ 2 term. SymPoly exposes variables and total degree; we use
    // the conservative combination.
    if poly.degree() >= 2 && poly.variables().iter().any(|&v| v < ct_vars) {
        poly.degree()
    } else {
        poly.degree().min(1)
    }
}

/// Enumerates `(coefficient, is_constant_term)` pairs of a polynomial via
/// its `Display` form being unavailable — we instead re-evaluate on basis
/// points. Cheap and exact for the sparse low-degree polynomials specs
/// produce: the constant term is `p(0)`, and each linear coefficient is
/// recovered by probing one variable at 1.
fn poly_coefficients(poly: &quill::symbolic::SymPoly) -> Vec<(u64, bool)> {
    let mut out = Vec::new();
    let zero = poly.eval(&|_| 0);
    if zero != 0 {
        out.push((zero, true));
    }
    let t = poly.modulus();
    for var in poly.variables() {
        let v = poly.eval(&|x| if x == var { 1 } else { 0 });
        let coeff = (v + t - zero) % t;
        if coeff != 0 {
            out.push((coeff, false));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cegis::{synthesize, SynthesisOptions};
    use crate::spec::GenericReference;
    use quill::ring::Ring;

    struct WeightedStencil;

    impl GenericReference for WeightedStencil {
        fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
            // out[i] = 2·x[i] − x[i+1]
            let x = &ct[0];
            let n = x.len();
            (0..n)
                .map(|i| x[i].mul(&x[0].from_i64(2)).sub(&x[(i + 1) % n]))
                .collect()
        }
    }

    fn stencil_spec() -> KernelSpec {
        let mut mask = vec![true; 6];
        mask[5] = false;
        KernelSpec::new("wstencil", 6, 1, 0, mask, 65537, Box::new(WeightedStencil))
    }

    #[test]
    fn infers_offsets_subtraction_and_weights() {
        let sketch = auto_sketch(&stencil_spec());
        assert!(sketch.rotation_amounts.contains(&1));
        assert!(sketch.ops.iter().any(|o| matches!(o.op, ArithOp::SubCtCt)));
        assert!(sketch
            .ops
            .iter()
            .any(|o| matches!(o.op, ArithOp::MulCtPt(PtOperand::Splat(2)))));
        // no ct-ct multiply for a linear kernel
        assert!(!sketch.ops.iter().any(|o| matches!(o.op, ArithOp::MulCtCt)));
    }

    #[test]
    fn auto_sketch_synthesizes_the_stencil() {
        let spec = stencil_spec();
        let r = auto_synthesize(&spec, &SynthesisOptions::default())
            .expect("auto sketch is sufficient");
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(5)
        };
        crate::verify::verify(&r.program, &spec, &mut rng).expect("verified");
    }

    #[test]
    fn quadratic_specs_get_ct_multiply() {
        struct Square;
        impl GenericReference for Square {
            fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
                ct[0].iter().map(|x| x.mul(x)).collect()
            }
        }
        let spec = KernelSpec::new("square", 4, 1, 0, vec![], 65537, Box::new(Square));
        let sketch = auto_sketch(&spec);
        assert!(sketch.ops.iter().any(|o| matches!(o.op, ArithOp::MulCtCt)));
        let r = synthesize(&spec, &sketch, &SynthesisOptions::default()).unwrap();
        assert_eq!(r.program.len(), 1);
    }

    #[test]
    fn pt_inputs_get_pt_multiplies() {
        struct Weighted;
        impl GenericReference for Weighted {
            fn compute<R: Ring>(&self, ct: &[Vec<R>], pt: &[Vec<R>]) -> Vec<R> {
                ct[0].iter().zip(&pt[0]).map(|(x, w)| x.mul(w)).collect()
            }
        }
        let spec = KernelSpec::new("weighted", 4, 1, 1, vec![], 65537, Box::new(Weighted));
        let sketch = auto_sketch(&spec);
        assert!(sketch
            .ops
            .iter()
            .any(|o| matches!(o.op, ArithOp::MulCtPt(PtOperand::Input(0)))));
    }
}
