//! Data layouts (§4.3): how multi-dimensional inputs and outputs are packed
//! into ciphertext slot vectors.
//!
//! The paper's image kernels pack a 2-D image row-major with a ring of zero
//! padding ([`PaddedImage`]); reduction kernels pack a vector into the low
//! slots and read the result from slot 0 ([`ReductionLayout`]).

/// A row-major 2-D image with `pad` rings of zero padding on every side.
///
/// # Examples
///
/// ```
/// use porcupine::layout::PaddedImage;
///
/// let img = PaddedImage::new(3, 3, 1); // 3×3 interior, 5×5 packed
/// assert_eq!(img.slots(), 25);
/// assert_eq!(img.stride(), 5);
/// assert_eq!(img.index(0, 0), 6); // first interior pixel
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaddedImage {
    /// Interior rows.
    pub rows: usize,
    /// Interior columns.
    pub cols: usize,
    /// Padding rings.
    pub pad: usize,
}

impl PaddedImage {
    /// Creates a layout.
    ///
    /// # Panics
    ///
    /// Panics if the interior is empty.
    pub fn new(rows: usize, cols: usize, pad: usize) -> Self {
        assert!(rows > 0 && cols > 0, "image must be non-empty");
        PaddedImage { rows, cols, pad }
    }

    /// Total packed slots `(rows + 2·pad) · (cols + 2·pad)`.
    pub fn slots(&self) -> usize {
        (self.rows + 2 * self.pad) * (self.cols + 2 * self.pad)
    }

    /// Row stride of the packed vector.
    pub fn stride(&self) -> usize {
        self.cols + 2 * self.pad
    }

    /// Slot of interior pixel `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of the interior.
    pub fn index(&self, r: usize, c: usize) -> usize {
        assert!(r < self.rows && c < self.cols, "pixel out of interior");
        (r + self.pad) * self.stride() + (c + self.pad)
    }

    /// Packs interior pixel values (row-major, length `rows·cols`) into a
    /// zero-padded slot vector.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn pack(&self, pixels: &[u64]) -> Vec<u64> {
        assert_eq!(pixels.len(), self.rows * self.cols, "pixel count");
        let mut slots = vec![0u64; self.slots()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                slots[self.index(r, c)] = pixels[r * self.cols + c];
            }
        }
        slots
    }

    /// Extracts the interior pixels from a slot vector.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is shorter than the layout.
    pub fn unpack(&self, slots: &[u64]) -> Vec<u64> {
        assert!(slots.len() >= self.slots(), "slot vector too short");
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.push(slots[self.index(r, c)]);
            }
        }
        out
    }

    /// Mask selecting exactly the interior slots.
    pub fn interior_mask(&self) -> Vec<bool> {
        let mut mask = vec![false; self.slots()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                mask[self.index(r, c)] = true;
            }
        }
        mask
    }

    /// Mask selecting interior slots at least `margin` pixels from the
    /// interior border (for kernels whose output shrinks).
    pub fn eroded_mask(&self, margin: usize) -> Vec<bool> {
        let mut mask = vec![false; self.slots()];
        if self.rows <= 2 * margin || self.cols <= 2 * margin {
            return mask;
        }
        for r in margin..self.rows - margin {
            for c in margin..self.cols - margin {
                mask[self.index(r, c)] = true;
            }
        }
        mask
    }
}

/// A packed vector of `len` elements whose kernel reduces into slot 0,
/// padded with zeros to `slots` total (so wrap-around reads stay zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionLayout {
    /// Number of data elements.
    pub len: usize,
    /// Total model slots (≥ 2·len so tree rotations never wrap into data).
    pub slots: usize,
}

impl ReductionLayout {
    /// A layout with the customary 2× zero tail.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: usize) -> Self {
        assert!(len > 0);
        ReductionLayout {
            len,
            slots: 2 * len,
        }
    }

    /// Packs the data elements (zero tail appended).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn pack(&self, data: &[u64]) -> Vec<u64> {
        assert_eq!(data.len(), self.len);
        let mut slots = vec![0u64; self.slots];
        slots[..self.len].copy_from_slice(data);
        slots
    }

    /// Mask selecting only slot 0 (the reduction result).
    pub fn result_mask(&self) -> Vec<bool> {
        let mut mask = vec![false; self.slots];
        mask[0] = true;
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let l = PaddedImage::new(2, 3, 1);
        let pixels: Vec<u64> = (1..=6).collect();
        let slots = l.pack(&pixels);
        assert_eq!(slots.len(), 4 * 5);
        assert_eq!(l.unpack(&slots), pixels);
        // border slots are zero
        assert_eq!(slots[0], 0);
        assert_eq!(slots[4], 0);
        assert_eq!(slots[19], 0);
    }

    #[test]
    fn interior_mask_counts() {
        let l = PaddedImage::new(3, 3, 1);
        let m = l.interior_mask();
        assert_eq!(m.iter().filter(|&&b| b).count(), 9);
        assert!(m[l.index(1, 1)]);
        assert!(!m[0]);
    }

    #[test]
    fn eroded_mask_shrinks() {
        let l = PaddedImage::new(4, 4, 1);
        let m = l.eroded_mask(1);
        assert_eq!(m.iter().filter(|&&b| b).count(), 4);
        let empty = l.eroded_mask(2);
        assert_eq!(empty.iter().filter(|&&b| b).count(), 0);
    }

    #[test]
    fn reduction_layout_masks_slot_zero() {
        let l = ReductionLayout::new(4);
        assert_eq!(l.slots, 8);
        let packed = l.pack(&[5, 6, 7, 8]);
        assert_eq!(packed, vec![5, 6, 7, 8, 0, 0, 0, 0]);
        let mask = l.result_mask();
        assert!(mask[0]);
        assert_eq!(mask.iter().filter(|&&b| b).count(), 1);
    }
}
