//! The synthesis engine (§5, Algorithm 1): counter-example–guided inductive
//! synthesis with iterative sketch deepening and cost minimization.
//!
//! 1. **Initial solution.** For `L = 1, 2, …` search `sketch_L` for a
//!    program agreeing with the examples; verify symbolically; on failure
//!    add the counter-example and retry. The first verified program has the
//!    minimum component count.
//! 2. **Optimization.** Re-issue the query with the constraint
//!    `cost ≤ cost(best)` until the search returns the canonical cheapest
//!    program under the bound (the optimum within the sketch) or the
//!    timeout fires.
//!
//! Two enumeration strategies implement step 1 — the complete top-down DFS
//! of [`crate::search`] and the bottom-up term bank of `crate::bottom_up`
//! — selected by [`SynthesisOptions::strategy`] (default:
//! [`SearchStrategy::BottomUp`] with automatic DFS fallback, since the
//! bank's retention caps make it incomplete). Finished queries are stored
//! in a two-tier content-addressed cache governed by
//! [`SynthesisOptions::cache`]: an in-process memo (a repeated query in
//! one process — staged pipelines re-issue identical stage queries —
//! replays the already-verified result in microseconds) in front of the
//! persistent disk tier ([`crate::cache`]), whose entries are
//! **re-verified on read** before being trusted. Either tier's hit skips
//! the search entirely.

use crate::bottom_up::BottomUpOutcome;
use crate::cache::{self, CacheEntry, CacheKey};
use crate::opt::{self, OptLevel};
use crate::search::{SearchContext, SearchOutcome};
use crate::sketch::Sketch;
use crate::spec::{Example, KernelSpec};
use crate::verify::verify;
use quill::cost::{eager_cost, LatencyModel};
use quill::program::Program;
use quill::scheme::SchemeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlwe_ring::params::{ParamPolicy, RlweParams, SelectError};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The in-process memo tier: full results of finished queries this
/// process already verified, keyed by cache directory plus the same
/// canonical key text as the disk tier (the directory keeps the memo a
/// faithful mirror of one on-disk cache — two [`CachePolicy::At`]
/// directories never share entries, on disk or in memory). Serving from
/// here skips the disk read *and* the re-verification a disk entry
/// requires — entries only get in after this process verified them
/// (either by synthesizing or by re-verifying a disk entry), so a memo
/// hit is a trusted replay.
static MEMO: Mutex<BTreeMap<String, SynthesisResult>> = Mutex::new(BTreeMap::new());

fn memo_key(dir: &std::path::Path, key: &CacheKey) -> String {
    format!("{}\u{0}{}", dir.display(), key.text())
}

fn memo_lookup(dir: &std::path::Path, key: &CacheKey) -> Option<SynthesisResult> {
    MEMO.lock().ok()?.get(&memo_key(dir, key)).cloned()
}

fn memo_store(dir: &std::path::Path, key: &CacheKey, result: &SynthesisResult) {
    if let Ok(mut memo) = MEMO.lock() {
        memo.insert(memo_key(dir, key), result.clone());
    }
}

/// Drops every in-process memoized synthesis result, forcing the next
/// query of each key down to the persistent disk tier (read + re-verify).
/// For tests and benchmarks that target the disk tier specifically; a
/// normal caller never needs this.
pub fn clear_synthesis_memo() {
    if let Ok(mut memo) = MEMO.lock() {
        memo.clear();
    }
}

/// The default worker-thread count for the enumerative search: the
/// `PORCUPINE_JOBS` environment variable when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`], otherwise 1.
pub fn default_parallelism() -> NonZeroUsize {
    std::env::var("PORCUPINE_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<NonZeroUsize>().ok())
        .or_else(|| std::thread::available_parallelism().ok())
        .unwrap_or(NonZeroUsize::MIN)
}

/// Which enumerator answers the phase-1 synthesis queries.
///
/// Both strategies honor the determinism contract — same query, same
/// program, at any thread count — and phase 2 (cost minimization) always
/// runs on the DFS, whose bounded query returns the canonical cheapest
/// program of the space. They differ in scaling: the DFS is complete (its
/// `Unsat` is a proof) but exponential in the component count; the term
/// bank reuses deduplicated sub-terms and reaches past the ~10–12
/// instruction wall, at the price of retention caps that make a fruitless
/// search inconclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Bottom-up observational-equivalence term bank, falling back to the
    /// DFS when the capped bank exhausts without an answer (the default).
    BottomUp,
    /// Top-down iterative-deepening DFS only.
    Dfs,
}

impl fmt::Display for SearchStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchStrategy::BottomUp => write!(f, "bottom-up"),
            SearchStrategy::Dfs => write!(f, "dfs"),
        }
    }
}

/// The default search strategy: `PORCUPINE_STRATEGY` (`bottom-up` or
/// `dfs`) when set to a recognized value, otherwise bottom-up.
pub fn default_strategy() -> SearchStrategy {
    match std::env::var("PORCUPINE_STRATEGY")
        .ok()
        .as_deref()
        .map(str::trim)
    {
        Some("dfs") => SearchStrategy::Dfs,
        _ => SearchStrategy::BottomUp,
    }
}

/// Where (and whether) finished synthesis queries are cached on disk.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Never read or write the cache.
    Disabled,
    /// Use [`cache::default_cache_dir`] (`$PORCUPINE_CACHE_DIR`, else
    /// `$HOME/.cache/porcupine`); silently disabled when neither resolves.
    #[default]
    Enabled,
    /// Use a caller-chosen directory.
    At(PathBuf),
}

impl CachePolicy {
    /// The directory this policy reads and writes, if any.
    pub fn directory(&self) -> Option<PathBuf> {
        match self {
            CachePolicy::Disabled => None,
            CachePolicy::Enabled => cache::default_cache_dir(),
            CachePolicy::At(dir) => Some(dir.clone()),
        }
    }
}

/// Knobs for one synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisOptions {
    /// Total wall-clock budget (Algorithm 1 stops with the best program so
    /// far when it fires; the paper used a 20-minute no-progress timeout).
    pub timeout: Duration,
    /// Run the cost-minimization phase after the initial solution.
    pub optimize: bool,
    /// The latency model behind the cost objective.
    pub latency: LatencyModel,
    /// RNG seed (examples and counter-example sampling are deterministic
    /// given the seed).
    pub seed: u64,
    /// Worker threads for the search. The synthesized program and its cost
    /// are identical at every value (the determinism contract of
    /// [`crate::search`]); parallelism only changes wall-clock time.
    pub parallelism: NonZeroUsize,
    /// Middle-end level for the [`SynthesisResult::optimized`] program
    /// (the raw searched program is untouched). Defaults to
    /// [`opt::default_opt_level`] (`PORCUPINE_OPT` or `-O2`).
    pub opt_level: OptLevel,
    /// The target scheme backend. Gates which lowering passes run (via
    /// the scheme's instruction legality), selects the noise model behind
    /// parameter resolution, and tags the synthesis cache key — the same
    /// query under two schemes never shares an entry. Defaults to
    /// [`crate::scheme::default_scheme`] (`PORCUPINE_SCHEME`, else BFV).
    pub scheme: SchemeId,
    /// How scheme parameters for the synthesized kernel are obtained:
    /// noise-aware automatic selection against the lowered program under
    /// [`SynthesisOptions::scheme`]'s noise model (the default), or a
    /// caller-fixed set. The resolved set lands in
    /// [`SynthesisResult::params`].
    pub params: ParamPolicy,
    /// Phase-1 enumeration strategy. Defaults to [`default_strategy`]
    /// (`PORCUPINE_STRATEGY`, else bottom-up with DFS fallback).
    pub strategy: SearchStrategy,
    /// Persistent synthesis cache policy. Defaults to
    /// [`CachePolicy::Enabled`]. Cached entries are re-verified against
    /// the spec before being trusted, and only fully finished results
    /// (optimality proved, or phase 2 disabled) are written back, so a
    /// timed-out partial answer is never served to a later run.
    pub cache: CachePolicy,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        let scheme = crate::scheme::default_scheme();
        SynthesisOptions {
            timeout: Duration::from_secs(600),
            optimize: true,
            latency: LatencyModel::profiled_for(scheme),
            seed: 0x9E3779B9,
            parallelism: default_parallelism(),
            opt_level: opt::default_opt_level(),
            scheme,
            params: ParamPolicy::default(),
            strategy: default_strategy(),
            cache: CachePolicy::default(),
        }
    }
}

/// The outcome of a successful synthesis run, including the measurements
/// Table 3 reports.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The best verified program found, as searched: no explicit
    /// relinearizations (Table 2's instruction counts).
    pub program: Program,
    /// [`SynthesisResult::program`] run through the middle-end at
    /// [`SynthesisOptions::opt_level`]: backend-legal IR with
    /// relinearizations placed (lazily at `-O2`), ready for
    /// [`crate::codegen`].
    pub optimized: Program,
    /// The scheme parameters resolved from [`SynthesisOptions::params`]
    /// against [`SynthesisResult::optimized`] (what actually executes):
    /// auto-selected by [`SynthesisOptions::scheme`]'s static noise
    /// analysis, or the fixed set.
    /// `Err` means the policy could not certify any set for this program
    /// (too deep for the candidate table, or an unusable fixed set) — the
    /// synthesized program itself is still returned, so callers that pick
    /// parameters some other way lose nothing.
    pub params: Result<RlweParams, SelectError>,
    /// Per-pass rewrite counts of the middle-end run.
    pub opt_report: opt::OptReport,
    /// The first verified program (upper bound used by the optimizer).
    pub initial_program: Program,
    /// Cost of the initial program (with implicit eager relins charged,
    /// [`quill::cost::eager_cost`]).
    pub initial_cost: f64,
    /// Cost of the best program (same objective).
    pub final_cost: f64,
    /// Arithmetic component count of the sketch instance that succeeded.
    pub components: usize,
    /// Input–output examples consumed (initial + counter-examples).
    pub examples_used: usize,
    /// Time to the initial solution.
    pub time_to_initial: Duration,
    /// Total time including optimization.
    pub time_total: Duration,
    /// True if the optimizer exhausted the space (proved optimality within
    /// the sketch) rather than hitting the timeout.
    pub proved_optimal: bool,
    /// The strategy that produced the initial program: the requested one,
    /// or [`SearchStrategy::Dfs`] after a bottom-up bank exhausted and the
    /// complete search took over. On a cache hit: the requested strategy.
    pub strategy_used: SearchStrategy,
    /// True when the program came from the persistent cache (re-verified,
    /// no search ran). `initial_*` then mirror the final program, and the
    /// reported times are the verification time.
    pub cache_hit: bool,
}

/// Synthesis failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// No program in the sketch (up to `max_components`) satisfies the
    /// specification.
    SketchTooRestrictive {
        /// The largest component count tried.
        max_components: usize,
    },
    /// The time budget expired before any verified solution was found.
    Timeout,
    /// Verification failed but no concrete counter-example could be
    /// sampled (probabilistically negligible).
    CounterExampleExtraction,
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::SketchTooRestrictive { max_components } => write!(
                f,
                "no satisfying program exists in the sketch with up to {max_components} components"
            ),
            SynthesisError::Timeout => write!(f, "synthesis timed out before finding a solution"),
            SynthesisError::CounterExampleExtraction => {
                write!(f, "could not extract a concrete counter-example")
            }
        }
    }
}

impl Error for SynthesisError {}

/// Synthesizes a verified, cost-optimized HE kernel for `spec` within
/// `sketch` (the paper's top-level entry point).
///
/// # Errors
///
/// See [`SynthesisError`].
///
/// # Examples
///
/// ```
/// use porcupine::cegis::{synthesize, SynthesisOptions};
/// use porcupine::sketch::{ArithOp, RotationSet, Sketch, SketchOp};
/// use porcupine::spec::{GenericReference, KernelSpec};
/// use quill::ring::Ring;
///
/// // Sum the four slots of a packed vector into slot 0.
/// struct Sum4;
/// impl GenericReference for Sum4 {
///     fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
///         let s = ct[0].iter().fold(ct[0][0].from_i64(0), |a, x| a.add(x));
///         vec![s, ct[0][0].from_i64(0), ct[0][0].from_i64(0), ct[0][0].from_i64(0)]
///     }
/// }
/// let mut mask = vec![false; 4];
/// mask[0] = true;
/// let spec = KernelSpec::new("sum4", 4, 1, 0, mask, 65537, Box::new(Sum4));
/// let sketch = Sketch::new(
///     vec![SketchOp::rotated(ArithOp::AddCtCt)],
///     RotationSet::PowersOfTwo { extent: 4 },
///     3,
/// );
/// let result = synthesize(&spec, &sketch, &SynthesisOptions::default())?;
/// assert_eq!(result.components, 2); // two rotate-and-add steps
/// # Ok::<(), porcupine::cegis::SynthesisError>(())
/// ```
pub fn synthesize(
    spec: &KernelSpec,
    sketch: &Sketch,
    options: &SynthesisOptions,
) -> Result<SynthesisResult, SynthesisError> {
    let start = Instant::now();
    let deadline = start + options.timeout;
    let mut rng = StdRng::seed_from_u64(options.seed);

    // Cache consult: a usable entry skips both search phases. The entry
    // is never trusted as-is — full symbolic verification runs first, so
    // a corrupted or maliciously edited cache degrades to a miss.
    let cache_dir = options.cache.directory();
    let cache_key = cache_dir
        .as_ref()
        .map(|_| cache_key_for(spec, sketch, options));
    if let (Some(dir), Some(key)) = (&cache_dir, &cache_key) {
        // Memo tier first: a result this process already verified replays
        // without touching the disk or re-verifying.
        if let Some(mut hit) = memo_lookup(dir, key) {
            cache::record_hit();
            hit.cache_hit = true;
            hit.time_to_initial = start.elapsed();
            hit.time_total = start.elapsed();
            return Ok(hit);
        }
        if let Some(entry) = cache::lookup(dir, key) {
            if verify(&entry.program, spec, &mut rng).is_ok() {
                cache::record_hit();
                let (optimized, opt_report) = opt::optimize_with(
                    &entry.program,
                    options.opt_level,
                    &options.scheme.legality(),
                );
                let params = crate::scheme::resolve_params(
                    options.scheme,
                    &options.params,
                    &optimized,
                    spec.n,
                    spec.t,
                );
                let time_to_initial = start.elapsed();
                let result = SynthesisResult {
                    initial_program: entry.program.clone(),
                    program: entry.program,
                    optimized,
                    opt_report,
                    params,
                    initial_cost: entry.final_cost,
                    final_cost: entry.final_cost,
                    components: entry.components,
                    examples_used: entry.examples_used,
                    time_to_initial,
                    time_total: start.elapsed(),
                    proved_optimal: entry.proved_optimal,
                    strategy_used: options.strategy,
                    cache_hit: true,
                };
                memo_store(dir, key, &result);
                return Ok(result);
            }
            cache::record_rejected();
        }
        cache::record_miss();
    }

    let mut examples: Vec<Example> = vec![spec.sample_example(&mut rng)];

    // Phase 1: find the initial solution at minimal component count.
    // Bottom-up grows its bank level-by-level to the same effect as the
    // DFS's iterative deepening: both return a program with the fewest
    // components in the sketch.
    let mut initial: Option<(Program, usize)> = None;
    let mut strategy_used = options.strategy;
    if options.strategy == SearchStrategy::BottomUp {
        loop {
            if Instant::now() >= deadline {
                return Err(SynthesisError::Timeout);
            }
            let searcher = SearchContext::new(
                spec,
                sketch,
                &examples,
                &options.latency,
                Some(deadline),
                None,
            );
            match searcher.run_bottom_up(
                sketch.min_components.max(1),
                sketch.max_components,
                options.parallelism,
            ) {
                BottomUpOutcome::Found {
                    program,
                    components,
                } => match verify(&program, spec, &mut rng) {
                    Ok(()) => {
                        initial = Some((program, components));
                        break;
                    }
                    Err(failure) => {
                        let cex = failure
                            .counter_example
                            .ok_or(SynthesisError::CounterExampleExtraction)?;
                        examples.push(cex);
                    }
                },
                BottomUpOutcome::Exhausted => {
                    // The capped bank came up dry; that is *not* an Unsat
                    // proof. Hand the query to the complete DFS below.
                    strategy_used = SearchStrategy::Dfs;
                    break;
                }
                BottomUpOutcome::Timeout => return Err(SynthesisError::Timeout),
            }
        }
    }
    // Top-down iterative deepening: the requested strategy, or the
    // completeness fallback after an exhausted bank (deepening starts at
    // the sketch's floor — see `Sketch::min_components`).
    'deepening: for num_components in sketch.min_components.max(1)..=sketch.max_components {
        if initial.is_some() {
            break 'deepening;
        }
        loop {
            if Instant::now() >= deadline {
                return Err(SynthesisError::Timeout);
            }
            let searcher = SearchContext::new(
                spec,
                sketch,
                &examples,
                &options.latency,
                Some(deadline),
                None,
            );
            match searcher.run(num_components, options.parallelism) {
                SearchOutcome::Unsat => break, // try a larger sketch
                SearchOutcome::Timeout { best } => {
                    // Salvage partial progress: a program found just before
                    // the deadline still counts if it verifies.
                    if let Some(program) = best {
                        if verify(&program, spec, &mut rng).is_ok() {
                            initial = Some((program, num_components));
                            break 'deepening;
                        }
                    }
                    return Err(SynthesisError::Timeout);
                }
                SearchOutcome::Found(program) => match verify(&program, spec, &mut rng) {
                    Ok(()) => {
                        initial = Some((program, num_components));
                        break 'deepening;
                    }
                    Err(failure) => {
                        let cex = failure
                            .counter_example
                            .ok_or(SynthesisError::CounterExampleExtraction)?;
                        examples.push(cex);
                    }
                },
            }
        }
    }
    let (initial_program, components) = initial.ok_or(SynthesisError::SketchTooRestrictive {
        max_components: sketch.max_components,
    })?;
    let time_to_initial = start.elapsed();
    // Costs charge one implicit relinearization per multiply (the -O0
    // lowering's price), matching the search's internal accounting — so
    // the optimization phase's bound and "proved optimal" claim are over
    // one consistent objective.
    let initial_cost = eager_cost(&initial_program, &options.latency);

    // Phase 2: minimize cost within the same sketch instance.
    let mut best = initial_program.clone();
    let mut best_cost = initial_cost;
    let mut proved_optimal = false;
    if options.optimize {
        loop {
            if Instant::now() >= deadline {
                break;
            }
            let searcher = SearchContext::new(
                spec,
                sketch,
                &examples,
                &options.latency,
                Some(deadline),
                Some(best_cost),
            );
            match searcher.run(components, options.parallelism) {
                SearchOutcome::Unsat => {
                    proved_optimal = true;
                    break;
                }
                SearchOutcome::Timeout { best: partial } => {
                    // Keep the best program the interrupted search saw
                    // instead of discarding the optimization progress.
                    if let Some(program) = partial {
                        if verify(&program, spec, &mut rng).is_ok() {
                            let c = eager_cost(&program, &options.latency);
                            if c < best_cost {
                                best_cost = c;
                                best = program;
                            }
                        }
                    }
                    break;
                }
                // With a cost bound the search is exhaustive and
                // tie-inclusive: `Found` is the canonical cheapest
                // example-satisfying program of cost ≤ the bound, so a
                // verified result is optimal within the sketch (every
                // spec-correct program also satisfies the examples), and —
                // because the incumbent itself is in the space — `Unsat`
                // is unreachable here.
                SearchOutcome::Found(program) => match verify(&program, spec, &mut rng) {
                    Ok(()) => {
                        best_cost = eager_cost(&program, &options.latency);
                        best = program;
                        proved_optimal = true;
                        break;
                    }
                    Err(failure) => {
                        let cex = failure
                            .counter_example
                            .ok_or(SynthesisError::CounterExampleExtraction)?;
                        examples.push(cex);
                    }
                },
            }
        }
    }

    // Write back a finished answer. Timed-out partials are deliberately
    // not cached: they are timing-dependent, and the cache must only ever
    // serve the canonical result of a query.
    let finished = proved_optimal || !options.optimize;
    if finished {
        if let (Some(dir), Some(key)) = (&cache_dir, &cache_key) {
            let _ = cache::store(
                dir,
                key,
                &CacheEntry {
                    program: best.clone(),
                    components,
                    examples_used: examples.len(),
                    final_cost: best_cost,
                    proved_optimal,
                },
            );
        }
    }

    let (optimized, opt_report) =
        opt::optimize_with(&best, options.opt_level, &options.scheme.legality());
    // Resolve the parameter policy against the program that will actually
    // execute — the lowered one, so lazy relin placement is what gets
    // charged by the scheme's noise analysis. A resolution failure is
    // recorded, not fatal: the verified program is still the synthesis
    // result.
    let params =
        crate::scheme::resolve_params(options.scheme, &options.params, &optimized, spec.n, spec.t);
    let result = SynthesisResult {
        program: best,
        optimized,
        opt_report,
        params,
        initial_program,
        initial_cost,
        final_cost: best_cost,
        components,
        examples_used: examples.len(),
        time_to_initial,
        time_total: start.elapsed(),
        proved_optimal,
        strategy_used,
        cache_hit: false,
    };
    // Memoize under the same finished-only condition as the disk tier.
    if finished {
        if let (Some(dir), Some(key)) = (&cache_dir, &cache_key) {
            memo_store(dir, key, &result);
        }
    }
    Ok(result)
}

/// Renders the content-addressed cache key for one query (see
/// [`crate::cache`] for the schema).
fn cache_key_for(spec: &KernelSpec, sketch: &Sketch, options: &SynthesisOptions) -> CacheKey {
    let params_desc = match &options.params {
        ParamPolicy::Auto { margin_bits } => {
            format!("auto margin-bits {:016x}", margin_bits.to_bits())
        }
        ParamPolicy::Fixed(p) => format!(
            "fixed n {} t {} q {:?}",
            p.poly_degree, p.plain_modulus, p.moduli
        ),
    };
    CacheKey::new(
        spec,
        sketch,
        &options.latency,
        &[
            ("scheme", options.scheme.name().to_string()),
            ("opt-level", options.opt_level.to_string()),
            ("optimize", options.optimize.to_string()),
            ("strategy", options.strategy.to_string()),
            ("params", params_desc),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::{ArithOp, RotationSet, SketchOp};
    use crate::spec::GenericReference;
    use quill::interp;
    use quill::ring::Ring;

    struct Sum {
        n: usize,
    }

    impl GenericReference for Sum {
        fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
            let s = ct[0].iter().fold(ct[0][0].from_i64(0), |a, x| a.add(x));
            let mut out = vec![ct[0][0].from_i64(0); self.n];
            out[0] = s;
            out
        }
    }

    fn sum_spec(n: usize) -> KernelSpec {
        let mut mask = vec![false; n];
        mask[0] = true;
        KernelSpec::new("sum", n, 1, 0, mask, 65537, Box::new(Sum { n }))
    }

    fn quick_options() -> SynthesisOptions {
        SynthesisOptions {
            timeout: Duration::from_secs(60),
            optimize: true,
            latency: LatencyModel::uniform(),
            seed: 17,
            // Hermetic: unit tests must exercise the real search, not a
            // previous run's cache entry.
            cache: CachePolicy::Disabled,
            ..SynthesisOptions::default()
        }
    }

    #[test]
    fn synthesizes_log_tree_reduction() {
        let spec = sum_spec(8);
        let sketch = Sketch::new(
            vec![SketchOp::rotated(ArithOp::AddCtCt)],
            RotationSet::PowersOfTwo { extent: 8 },
            4,
        );
        let r = synthesize(&spec, &sketch, &quick_options()).unwrap();
        assert_eq!(r.components, 3, "log2(8) adds");
        assert_eq!(r.program.len(), 6, "3 adds + 3 rotations");
        assert!(r.proved_optimal);
        assert!(r.final_cost <= r.initial_cost);
        // cross-check on fresh inputs
        let x: Vec<u64> = (1..=8).collect();
        let out = interp::eval_concrete(&r.program, &[x], &[], 65537);
        assert_eq!(out[0], 36);
    }

    /// A parameter policy the program cannot satisfy must not discard the
    /// verified program: resolution failure is recorded in `params`, and
    /// the synthesis result is otherwise intact.
    #[test]
    fn param_resolution_failure_still_returns_the_program() {
        let spec = sum_spec(8);
        let sketch = Sketch::new(
            vec![SketchOp::rotated(ArithOp::AddCtCt)],
            RotationSet::PowersOfTwo { extent: 8 },
            4,
        );
        // A valid set whose plaintext modulus does not match the spec's.
        let fixed = RlweParams::generate(1024, 12289, 45, 2).expect("valid params");
        let options = SynthesisOptions {
            params: ParamPolicy::Fixed(fixed),
            ..quick_options()
        };
        let r = synthesize(&spec, &sketch, &options).unwrap();
        assert!(r.params.is_err(), "resolution must fail: {:?}", r.params);
        assert_eq!(r.program.len(), 6, "the verified program survives");
    }

    #[test]
    fn reports_sketch_too_restrictive() {
        let spec = sum_spec(8);
        // Only one add allowed: cannot reduce 8 slots.
        let sketch = Sketch::new(
            vec![SketchOp::rotated(ArithOp::AddCtCt)],
            RotationSet::PowersOfTwo { extent: 8 },
            1,
        );
        let err = synthesize(&spec, &sketch, &quick_options()).unwrap_err();
        assert_eq!(
            err,
            SynthesisError::SketchTooRestrictive { max_components: 1 }
        );
    }

    #[test]
    fn counter_examples_reject_lucky_programs() {
        // Over a single example a wrong program can pass; verification must
        // push counter-examples until only correct programs remain. The
        // masked single-output sum is exactly the shape the paper reports
        // needing multiple examples for (§7.4).
        let spec = sum_spec(4);
        let sketch = Sketch::new(
            vec![
                SketchOp::rotated(ArithOp::AddCtCt),
                SketchOp::rotated(ArithOp::SubCtCt),
            ],
            RotationSet::PowersOfTwo { extent: 4 },
            3,
        );
        let r = synthesize(&spec, &sketch, &quick_options()).unwrap();
        let x = vec![11u64, 22, 33, 44];
        let out = interp::eval_concrete(&r.program, &[x], &[], 65537);
        assert_eq!(out[0], 110);
    }
}
