//! The synthesis engine (§5, Algorithm 1): counter-example–guided inductive
//! synthesis with iterative sketch deepening and cost minimization.
//!
//! 1. **Initial solution.** For `L = 1, 2, …` search `sketch_L` for a
//!    program agreeing with the examples; verify symbolically; on failure
//!    add the counter-example and retry. The first verified program has the
//!    minimum component count.
//! 2. **Optimization.** Re-issue the query with the constraint
//!    `cost < cost(best)` until the search proves no cheaper program exists
//!    (yielding the optimum within the sketch) or the timeout fires.

use crate::opt::{self, OptLevel};
use crate::search::{SearchContext, SearchOutcome};
use crate::sketch::Sketch;
use crate::spec::{Example, KernelSpec};
use crate::verify::verify;
use bfv::params::{BfvParams, ParamPolicy, SelectError};
use quill::cost::{eager_cost, LatencyModel};
use quill::program::Program;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::fmt;
use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

/// The default worker-thread count for the enumerative search: the
/// `PORCUPINE_JOBS` environment variable when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`], otherwise 1.
pub fn default_parallelism() -> NonZeroUsize {
    std::env::var("PORCUPINE_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<NonZeroUsize>().ok())
        .or_else(|| std::thread::available_parallelism().ok())
        .unwrap_or(NonZeroUsize::MIN)
}

/// Knobs for one synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisOptions {
    /// Total wall-clock budget (Algorithm 1 stops with the best program so
    /// far when it fires; the paper used a 20-minute no-progress timeout).
    pub timeout: Duration,
    /// Run the cost-minimization phase after the initial solution.
    pub optimize: bool,
    /// The latency model behind the cost objective.
    pub latency: LatencyModel,
    /// RNG seed (examples and counter-example sampling are deterministic
    /// given the seed).
    pub seed: u64,
    /// Worker threads for the search. The synthesized program and its cost
    /// are identical at every value (the determinism contract of
    /// [`crate::search`]); parallelism only changes wall-clock time.
    pub parallelism: NonZeroUsize,
    /// Middle-end level for the [`SynthesisResult::optimized`] program
    /// (the raw searched program is untouched). Defaults to
    /// [`opt::default_opt_level`] (`PORCUPINE_OPT` or `-O2`).
    pub opt_level: OptLevel,
    /// How BFV parameters for the synthesized kernel are obtained:
    /// noise-aware automatic selection against the lowered program (the
    /// default), or a caller-fixed set. The resolved set lands in
    /// [`SynthesisResult::params`].
    pub params: ParamPolicy,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            timeout: Duration::from_secs(600),
            optimize: true,
            latency: LatencyModel::profiled_default(),
            seed: 0x9E3779B9,
            parallelism: default_parallelism(),
            opt_level: opt::default_opt_level(),
            params: ParamPolicy::default(),
        }
    }
}

/// The outcome of a successful synthesis run, including the measurements
/// Table 3 reports.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The best verified program found, as searched: no explicit
    /// relinearizations (Table 2's instruction counts).
    pub program: Program,
    /// [`SynthesisResult::program`] run through the middle-end at
    /// [`SynthesisOptions::opt_level`]: backend-legal IR with
    /// relinearizations placed (lazily at `-O2`), ready for
    /// [`crate::codegen`].
    pub optimized: Program,
    /// The BFV parameters resolved from [`SynthesisOptions::params`]
    /// against [`SynthesisResult::optimized`] (what actually executes):
    /// auto-selected by the static noise analysis, or the fixed set.
    /// `Err` means the policy could not certify any set for this program
    /// (too deep for the candidate table, or an unusable fixed set) — the
    /// synthesized program itself is still returned, so callers that pick
    /// parameters some other way lose nothing.
    pub params: Result<BfvParams, SelectError>,
    /// Per-pass rewrite counts of the middle-end run.
    pub opt_report: opt::OptReport,
    /// The first verified program (upper bound used by the optimizer).
    pub initial_program: Program,
    /// Cost of the initial program (with implicit eager relins charged,
    /// [`quill::cost::eager_cost`]).
    pub initial_cost: f64,
    /// Cost of the best program (same objective).
    pub final_cost: f64,
    /// Arithmetic component count of the sketch instance that succeeded.
    pub components: usize,
    /// Input–output examples consumed (initial + counter-examples).
    pub examples_used: usize,
    /// Time to the initial solution.
    pub time_to_initial: Duration,
    /// Total time including optimization.
    pub time_total: Duration,
    /// True if the optimizer exhausted the space (proved optimality within
    /// the sketch) rather than hitting the timeout.
    pub proved_optimal: bool,
}

/// Synthesis failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// No program in the sketch (up to `max_components`) satisfies the
    /// specification.
    SketchTooRestrictive {
        /// The largest component count tried.
        max_components: usize,
    },
    /// The time budget expired before any verified solution was found.
    Timeout,
    /// Verification failed but no concrete counter-example could be
    /// sampled (probabilistically negligible).
    CounterExampleExtraction,
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::SketchTooRestrictive { max_components } => write!(
                f,
                "no satisfying program exists in the sketch with up to {max_components} components"
            ),
            SynthesisError::Timeout => write!(f, "synthesis timed out before finding a solution"),
            SynthesisError::CounterExampleExtraction => {
                write!(f, "could not extract a concrete counter-example")
            }
        }
    }
}

impl Error for SynthesisError {}

/// Synthesizes a verified, cost-optimized HE kernel for `spec` within
/// `sketch` (the paper's top-level entry point).
///
/// # Errors
///
/// See [`SynthesisError`].
///
/// # Examples
///
/// ```
/// use porcupine::cegis::{synthesize, SynthesisOptions};
/// use porcupine::sketch::{ArithOp, RotationSet, Sketch, SketchOp};
/// use porcupine::spec::{GenericReference, KernelSpec};
/// use quill::ring::Ring;
///
/// // Sum the four slots of a packed vector into slot 0.
/// struct Sum4;
/// impl GenericReference for Sum4 {
///     fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
///         let s = ct[0].iter().fold(ct[0][0].from_i64(0), |a, x| a.add(x));
///         vec![s, ct[0][0].from_i64(0), ct[0][0].from_i64(0), ct[0][0].from_i64(0)]
///     }
/// }
/// let mut mask = vec![false; 4];
/// mask[0] = true;
/// let spec = KernelSpec::new("sum4", 4, 1, 0, mask, 65537, Box::new(Sum4));
/// let sketch = Sketch::new(
///     vec![SketchOp::rotated(ArithOp::AddCtCt)],
///     RotationSet::PowersOfTwo { extent: 4 },
///     3,
/// );
/// let result = synthesize(&spec, &sketch, &SynthesisOptions::default())?;
/// assert_eq!(result.components, 2); // two rotate-and-add steps
/// # Ok::<(), porcupine::cegis::SynthesisError>(())
/// ```
pub fn synthesize(
    spec: &KernelSpec,
    sketch: &Sketch,
    options: &SynthesisOptions,
) -> Result<SynthesisResult, SynthesisError> {
    let start = Instant::now();
    let deadline = start + options.timeout;
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut examples: Vec<Example> = vec![spec.sample_example(&mut rng)];

    // Phase 1: find the initial solution at minimal component count
    // (deepening starts at the sketch's floor — see
    // `Sketch::min_components`).
    let mut initial: Option<(Program, usize)> = None;
    'deepening: for num_components in sketch.min_components.max(1)..=sketch.max_components {
        loop {
            if Instant::now() >= deadline {
                return Err(SynthesisError::Timeout);
            }
            let searcher = SearchContext::new(
                spec,
                sketch,
                &examples,
                &options.latency,
                Some(deadline),
                None,
            );
            match searcher.run(num_components, options.parallelism) {
                SearchOutcome::Unsat => break, // try a larger sketch
                SearchOutcome::Timeout { best } => {
                    // Salvage partial progress: a program found just before
                    // the deadline still counts if it verifies.
                    if let Some(program) = best {
                        if verify(&program, spec, &mut rng).is_ok() {
                            initial = Some((program, num_components));
                            break 'deepening;
                        }
                    }
                    return Err(SynthesisError::Timeout);
                }
                SearchOutcome::Found(program) => match verify(&program, spec, &mut rng) {
                    Ok(()) => {
                        initial = Some((program, num_components));
                        break 'deepening;
                    }
                    Err(failure) => {
                        let cex = failure
                            .counter_example
                            .ok_or(SynthesisError::CounterExampleExtraction)?;
                        examples.push(cex);
                    }
                },
            }
        }
    }
    let (initial_program, components) = initial.ok_or(SynthesisError::SketchTooRestrictive {
        max_components: sketch.max_components,
    })?;
    let time_to_initial = start.elapsed();
    // Costs charge one implicit relinearization per multiply (the -O0
    // lowering's price), matching the search's internal accounting — so
    // the optimization phase's bound and "proved optimal" claim are over
    // one consistent objective.
    let initial_cost = eager_cost(&initial_program, &options.latency);

    // Phase 2: minimize cost within the same sketch instance.
    let mut best = initial_program.clone();
    let mut best_cost = initial_cost;
    let mut proved_optimal = false;
    if options.optimize {
        loop {
            if Instant::now() >= deadline {
                break;
            }
            let searcher = SearchContext::new(
                spec,
                sketch,
                &examples,
                &options.latency,
                Some(deadline),
                Some(best_cost),
            );
            match searcher.run(components, options.parallelism) {
                SearchOutcome::Unsat => {
                    proved_optimal = true;
                    break;
                }
                SearchOutcome::Timeout { best: partial } => {
                    // Keep the best program the interrupted search saw
                    // instead of discarding the optimization progress.
                    if let Some(program) = partial {
                        if verify(&program, spec, &mut rng).is_ok() {
                            let c = eager_cost(&program, &options.latency);
                            if c < best_cost {
                                best_cost = c;
                                best = program;
                            }
                        }
                    }
                    break;
                }
                // With a cost bound the search is exhaustive: `Found` is the
                // cheapest example-satisfying program under the bound, so a
                // verified result is optimal within the sketch (every
                // spec-correct program also satisfies the examples).
                SearchOutcome::Found(program) => match verify(&program, spec, &mut rng) {
                    Ok(()) => {
                        best_cost = eager_cost(&program, &options.latency);
                        best = program;
                        proved_optimal = true;
                        break;
                    }
                    Err(failure) => {
                        let cex = failure
                            .counter_example
                            .ok_or(SynthesisError::CounterExampleExtraction)?;
                        examples.push(cex);
                    }
                },
            }
        }
    }

    let (optimized, opt_report) = opt::optimize(&best, options.opt_level);
    // Resolve the parameter policy against the program that will actually
    // execute — the lowered one, so lazy relin placement is what gets
    // charged by the noise analysis. A resolution failure is recorded, not
    // fatal: the verified program is still the synthesis result.
    let params = options.params.resolve(&optimized, spec.n, spec.t);
    Ok(SynthesisResult {
        program: best,
        optimized,
        opt_report,
        params,
        initial_program,
        initial_cost,
        final_cost: best_cost,
        components,
        examples_used: examples.len(),
        time_to_initial,
        time_total: start.elapsed(),
        proved_optimal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::{ArithOp, RotationSet, SketchOp};
    use crate::spec::GenericReference;
    use quill::interp;
    use quill::ring::Ring;

    struct Sum {
        n: usize,
    }

    impl GenericReference for Sum {
        fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
            let s = ct[0].iter().fold(ct[0][0].from_i64(0), |a, x| a.add(x));
            let mut out = vec![ct[0][0].from_i64(0); self.n];
            out[0] = s;
            out
        }
    }

    fn sum_spec(n: usize) -> KernelSpec {
        let mut mask = vec![false; n];
        mask[0] = true;
        KernelSpec::new("sum", n, 1, 0, mask, 65537, Box::new(Sum { n }))
    }

    fn quick_options() -> SynthesisOptions {
        SynthesisOptions {
            timeout: Duration::from_secs(60),
            optimize: true,
            latency: LatencyModel::uniform(),
            seed: 17,
            ..SynthesisOptions::default()
        }
    }

    #[test]
    fn synthesizes_log_tree_reduction() {
        let spec = sum_spec(8);
        let sketch = Sketch::new(
            vec![SketchOp::rotated(ArithOp::AddCtCt)],
            RotationSet::PowersOfTwo { extent: 8 },
            4,
        );
        let r = synthesize(&spec, &sketch, &quick_options()).unwrap();
        assert_eq!(r.components, 3, "log2(8) adds");
        assert_eq!(r.program.len(), 6, "3 adds + 3 rotations");
        assert!(r.proved_optimal);
        assert!(r.final_cost <= r.initial_cost);
        // cross-check on fresh inputs
        let x: Vec<u64> = (1..=8).collect();
        let out = interp::eval_concrete(&r.program, &[x], &[], 65537);
        assert_eq!(out[0], 36);
    }

    /// A parameter policy the program cannot satisfy must not discard the
    /// verified program: resolution failure is recorded in `params`, and
    /// the synthesis result is otherwise intact.
    #[test]
    fn param_resolution_failure_still_returns_the_program() {
        let spec = sum_spec(8);
        let sketch = Sketch::new(
            vec![SketchOp::rotated(ArithOp::AddCtCt)],
            RotationSet::PowersOfTwo { extent: 8 },
            4,
        );
        // A valid set whose plaintext modulus does not match the spec's.
        let fixed = BfvParams::generate(1024, 12289, 45, 2).expect("valid params");
        let options = SynthesisOptions {
            params: ParamPolicy::Fixed(fixed),
            ..quick_options()
        };
        let r = synthesize(&spec, &sketch, &options).unwrap();
        assert!(r.params.is_err(), "resolution must fail: {:?}", r.params);
        assert_eq!(r.program.len(), 6, "the verified program survives");
    }

    #[test]
    fn reports_sketch_too_restrictive() {
        let spec = sum_spec(8);
        // Only one add allowed: cannot reduce 8 slots.
        let sketch = Sketch::new(
            vec![SketchOp::rotated(ArithOp::AddCtCt)],
            RotationSet::PowersOfTwo { extent: 8 },
            1,
        );
        let err = synthesize(&spec, &sketch, &quick_options()).unwrap_err();
        assert_eq!(
            err,
            SynthesisError::SketchTooRestrictive { max_components: 1 }
        );
    }

    #[test]
    fn counter_examples_reject_lucky_programs() {
        // Over a single example a wrong program can pass; verification must
        // push counter-examples until only correct programs remain. The
        // masked single-output sum is exactly the shape the paper reports
        // needing multiple examples for (§7.4).
        let spec = sum_spec(4);
        let sketch = Sketch::new(
            vec![
                SketchOp::rotated(ArithOp::AddCtCt),
                SketchOp::rotated(ArithOp::SubCtCt),
            ],
            RotationSet::PowersOfTwo { extent: 4 },
            3,
        );
        let r = synthesize(&spec, &sketch, &quick_options()).unwrap();
        let x = vec![11u64, 22, 33, 44];
        let out = interp::eval_concrete(&r.program, &[x], &[], 65537);
        assert_eq!(out[0], 110);
    }
}
