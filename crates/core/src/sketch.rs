//! Sketches (§4.4): HE kernel templates with holes.
//!
//! A sketch lists the *arithmetic components* the kernel may use (a multiset
//! the synthesizer may partially ignore), how each component's ciphertext
//! operands may be rotated, and which rotation amounts are legal. The
//! paper's key design point — **local rotate** — treats rotation as an
//! operand modifier of arithmetic instructions instead of a free-standing
//! component, shrinking the program space without losing solutions; the
//! explicit-rotation mode is kept for the §7.4 ablation.

use quill::program::PtOperand;

/// An arithmetic opcode choice for a sketch component. For `*CtPt` ops the
/// plaintext operand is fixed in the sketch (as in the paper's Gx sketch,
/// `mul-ct-pt (??ct) [2 2 … 2]`).
#[derive(Debug, Clone, PartialEq)]
pub enum ArithOp {
    /// ct + ct.
    AddCtCt,
    /// ct − ct.
    SubCtCt,
    /// ct × ct.
    MulCtCt,
    /// ct + pt (fixed plaintext operand).
    AddCtPt(PtOperand),
    /// ct − pt (fixed plaintext operand).
    SubCtPt(PtOperand),
    /// ct × pt (fixed plaintext operand).
    MulCtPt(PtOperand),
}

impl ArithOp {
    /// Is this op commutative in its ciphertext operands?
    pub fn commutative(&self) -> bool {
        matches!(self, ArithOp::AddCtCt | ArithOp::MulCtCt)
    }

    /// Does the op take two ciphertext operands?
    pub fn binary_ct(&self) -> bool {
        matches!(self, ArithOp::AddCtCt | ArithOp::SubCtCt | ArithOp::MulCtCt)
    }
}

/// One component slot in the sketch: an opcode and, per ciphertext operand,
/// whether the hole is `??ct-r` (rotation allowed) or plain `??ct`.
///
/// Writing tighter holes (e.g. a plain elementwise subtract feeding a
/// rotated reduction) is exactly the §4.4 guidance: "the user must specify
/// whether instruction operands should be ciphertexts or
/// ciphertext-rotations"; the all-rotated fallback always works but costs
/// search time.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchOp {
    /// The opcode.
    pub op: ArithOp,
    /// `true` → the left ciphertext operand is a `??ct-r` hole.
    pub lhs_rot: bool,
    /// `true` → the right ciphertext operand (if any) is a `??ct-r` hole.
    pub rhs_rot: bool,
}

impl SketchOp {
    /// A component with rotation holes on every ciphertext operand.
    pub fn rotated(op: ArithOp) -> Self {
        SketchOp {
            op,
            lhs_rot: true,
            rhs_rot: true,
        }
    }

    /// A component with plain ciphertext holes.
    pub fn plain(op: ArithOp) -> Self {
        SketchOp {
            op,
            lhs_rot: false,
            rhs_rot: false,
        }
    }

    /// A component whose right operand only may be rotated — the
    /// rotate-and-accumulate shape of tree reductions.
    pub fn rhs_rotated(op: ArithOp) -> Self {
        SketchOp {
            op,
            lhs_rot: false,
            rhs_rot: true,
        }
    }
}

/// The allowed rotation amounts for `??r` holes (§6.1's restrictions).
#[derive(Debug, Clone, PartialEq)]
pub enum RotationSet {
    /// An explicit list of (nonzero) amounts.
    Explicit(Vec<i64>),
    /// `±2^k` tree-reduction amounts up to `extent/2` — for kernels that
    /// reduce within the ciphertext (dot product, distances).
    PowersOfTwo {
        /// The reduction width (number of elements being reduced).
        extent: usize,
    },
    /// Sliding-window amounts `{r·W + c}` for `|r|, |c| ≤ radius` — for
    /// stencils over a row-major image with row stride `W`.
    Window {
        /// Row stride of the packed image.
        stride: i64,
        /// Window radius (1 for a 3×3 stencil).
        radius: i64,
    },
    /// Every amount in `1..n` — the unrestricted fallback (ablation).
    All {
        /// Model vector length.
        n: usize,
    },
}

impl RotationSet {
    /// The concrete nonzero amounts, deduplicated and sorted.
    pub fn amounts(&self) -> Vec<i64> {
        let mut v: Vec<i64> = match self {
            RotationSet::Explicit(v) => v.clone(),
            RotationSet::PowersOfTwo { extent } => {
                let mut v = Vec::new();
                let mut p = 1i64;
                while p < *extent as i64 {
                    v.push(p);
                    v.push(-p);
                    p *= 2;
                }
                v
            }
            RotationSet::Window { stride, radius } => {
                let mut v = Vec::new();
                for r in -radius..=*radius {
                    for c in -radius..=*radius {
                        v.push(r * stride + c);
                    }
                }
                v
            }
            RotationSet::All { n } => (1..*n as i64).collect(),
        };
        v.retain(|&r| r != 0);
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// How rotations enter the program space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SketchMode {
    /// Rotations are operands of arithmetic components (the paper's
    /// contribution; default).
    LocalRotate,
    /// Rotations are stand-alone components the solver schedules like any
    /// other instruction (the §7.4 ablation baseline). Nested rotations are
    /// still excluded, as in the paper.
    ExplicitRotate,
}

/// A sketch: the component multiset, rotation vocabulary, and search mode.
///
/// # Examples
///
/// The paper's Gx sketch (§4.4): add, subtract, or multiply-by-2 components
/// with window rotations on a 5-wide image:
///
/// ```
/// use porcupine::sketch::{ArithOp, RotationSet, Sketch, SketchOp};
/// use quill::program::PtOperand;
///
/// let sketch = Sketch::new(
///     vec![
///         SketchOp::rotated(ArithOp::AddCtCt),
///         SketchOp::rotated(ArithOp::SubCtCt),
///         SketchOp::plain(ArithOp::MulCtPt(PtOperand::Splat(2))),
///     ],
///     RotationSet::Window { stride: 5, radius: 1 },
///     8,
/// );
/// assert!(sketch.rotation_amounts.contains(&-6));
/// assert!(sketch.rotation_amounts.contains(&6));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sketch {
    /// The distinct component choices (`choose*` alternatives).
    pub ops: Vec<SketchOp>,
    /// Cached rotation amounts from the rotation set.
    pub rotation_amounts: Vec<i64>,
    /// Search mode.
    pub mode: SketchMode,
    /// Upper bound on component count for iterative deepening.
    pub max_components: usize,
    /// Lower bound on component count: iterative deepening starts here
    /// (default 1). Sketch authors set it when the problem structure
    /// forces a minimum — e.g. a reduction over `n` slots needs at least
    /// `log2(n)` additions — which skips the exhaustive Unsat proofs of
    /// the impossible levels, the dominant cost for scaled-up kernels.
    pub min_components: usize,
}

impl Sketch {
    /// Builds a local-rotate sketch.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty or `max_components == 0`.
    pub fn new(ops: Vec<SketchOp>, rotations: RotationSet, max_components: usize) -> Self {
        assert!(
            !ops.is_empty(),
            "sketch needs at least one component choice"
        );
        assert!(max_components > 0);
        Sketch {
            ops,
            rotation_amounts: rotations.amounts(),
            mode: SketchMode::LocalRotate,
            max_components,
            min_components: 1,
        }
    }

    /// Sets the deepening floor ([`Sketch::min_components`]), clamped to
    /// `max_components`.
    ///
    /// **Soundness caveat**: a floor above the true minimum makes the
    /// synthesizer miss smaller programs; only encode bounds the data
    /// layout forces.
    pub fn with_min_components(mut self, min: usize) -> Self {
        self.min_components = min.clamp(1, self.max_components);
        self
    }

    /// Switches to the explicit-rotation ablation mode.
    pub fn with_explicit_rotations(mut self) -> Self {
        self.mode = SketchMode::ExplicitRotate;
        self
    }

    /// The legal rotation choices for a `??ct-r` hole, including "no
    /// rotation" (0).
    pub fn operand_rotations(&self) -> Vec<i64> {
        let mut v = vec![0];
        v.extend_from_slice(&self.rotation_amounts);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powers_of_two_amounts() {
        let r = RotationSet::PowersOfTwo { extent: 8 };
        assert_eq!(r.amounts(), vec![-4, -2, -1, 1, 2, 4]);
    }

    #[test]
    fn window_amounts_cover_3x3() {
        let r = RotationSet::Window {
            stride: 5,
            radius: 1,
        };
        let a = r.amounts();
        // offsets −6 −5 −4 −1 1 4 5 6 (0 excluded)
        assert_eq!(a, vec![-6, -5, -4, -1, 1, 4, 5, 6]);
    }

    #[test]
    fn explicit_dedups_and_sorts() {
        let r = RotationSet::Explicit(vec![3, -1, 3, 0]);
        assert_eq!(r.amounts(), vec![-1, 3]);
    }

    #[test]
    fn all_amounts() {
        let r = RotationSet::All { n: 4 };
        assert_eq!(r.amounts(), vec![1, 2, 3]);
    }

    #[test]
    fn operand_rotations_include_identity() {
        let s = Sketch::new(
            vec![SketchOp::rotated(ArithOp::AddCtCt)],
            RotationSet::Explicit(vec![1, 2]),
            4,
        );
        assert_eq!(s.operand_rotations(), vec![0, 1, 2]);
        assert_eq!(s.mode, SketchMode::LocalRotate);
        assert_eq!(
            s.clone().with_explicit_rotations().mode,
            SketchMode::ExplicitRotate
        );
    }

    #[test]
    fn op_properties() {
        assert!(ArithOp::AddCtCt.commutative());
        assert!(ArithOp::MulCtCt.commutative());
        assert!(!ArithOp::SubCtCt.commutative());
        assert!(ArithOp::SubCtCt.binary_ct());
        assert!(!ArithOp::MulCtPt(PtOperand::Splat(2)).binary_ct());
    }
}
