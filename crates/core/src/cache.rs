//! Persistent, content-addressed cache of synthesized kernels.
//!
//! Synthesis is deterministic but expensive; a fleet of processes should
//! pay for each kernel **once ever**. This module stores the verified
//! program of a finished synthesis query on disk, keyed by the *content*
//! of the query:
//!
//! # Key schema
//!
//! The key is a human-readable text document (not just a hash) listing
//! everything the synthesized program depends on:
//!
//! * cache format version and cost-model version (bumping either orphans
//!   old entries),
//! * the latency model, as exact `f64` bit patterns,
//! * the spec's canonical form: `n`, `t`, input arities, output mask, and
//!   the symbolic polynomial of every masked output slot (the same
//!   canonical form the verifier uses, so two references that compute the
//!   same function share cache entries — the kernel *name* is
//!   deliberately excluded),
//! * the sketch: mode, component bounds, rotation vocabulary, and each
//!   component hole,
//! * caller configuration lines: optimization level, whether phase-2 cost
//!   minimization ran, search strategy, and the parameter policy.
//!
//! The RNG seed, thread count, and timeout are deliberately **not** part
//! of the key: the search result is a canonical function of the query (see
//! `crate::search` docs), so those knobs cannot change a completed
//! answer — and every entry is re-verified against the spec on read before
//! being trusted anyway.
//!
//! # On-disk format and robustness
//!
//! Entries live under [`default_cache_dir`] (`$PORCUPINE_CACHE_DIR`, else
//! `$HOME/.cache/porcupine`), one file per key, named by a 128-bit FNV
//! hash of the key text. The full key text is stored *inside* the entry
//! and compared on read, so hash collisions degrade to cache misses, never
//! to wrong programs. Writes go to a temp file and are renamed into place.
//! A truncated, corrupted, or version-mismatched entry is ignored (and
//! counted in [`CacheStats::rejected`]) — reads never panic and never
//! return a program that fails strict parsing. The CEGIS driver adds the
//! final safety net: it re-runs full verification on every entry before
//! returning it.
//!
//! This disk tier is the second of two: the CEGIS driver keeps an
//! in-process memo of results it already verified (see
//! [`crate::cegis::clear_synthesis_memo`]), so a repeated query in one
//! process — staged pipelines re-issue identical stage queries — replays
//! in microseconds without re-reading or re-verifying anything. The disk
//! tier is what survives the process and feeds the next one.

use crate::sketch::{ArithOp, Sketch, SketchMode};
use crate::spec::KernelSpec;
use quill::cost::LatencyModel;
use quill::program::{Program, PtOperand};
use quill::sexpr;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Bump to orphan every existing cache entry after an on-disk format
/// change. v2: keys carry a `scheme` config line (the scheme-generic
/// backend layer), so entries written before schemes existed — keyed
/// without one — can never be mistaken for BFV results.
pub const CACHE_FORMAT_VERSION: u32 = 2;

/// Version of the *internal search cost semantics* (how the enumerators
/// price candidates: eager relinearization per multiply, one rotation
/// charge per distinct `(value, rotation)`, latency × (1 + depth)). Part
/// of the key because a different costing can prefer a different program
/// for the same query.
pub const COST_MODEL_VERSION: u32 = 1;

const MAGIC: &str = "porcupine-cache";

/// Process-wide cache effectiveness counters (all monotone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries that parsed, matched their key, and re-verified.
    pub hits: u64,
    /// Lookups that found no usable entry (absent, rejected, or failed
    /// re-verification).
    pub misses: u64,
    /// Entries written back after a successful synthesis.
    pub stores: u64,
    /// Files that existed but were discarded: unreadable, truncated,
    /// corrupted, version- or key-mismatched, or failed re-verification.
    pub rejected: u64,
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static STORES: AtomicU64 = AtomicU64::new(0);
static REJECTED: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide cache counters.
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Relaxed),
        misses: MISSES.load(Relaxed),
        stores: STORES.load(Relaxed),
        rejected: REJECTED.load(Relaxed),
    }
}

pub(crate) fn record_hit() {
    HITS.fetch_add(1, Relaxed);
}

pub(crate) fn record_miss() {
    MISSES.fetch_add(1, Relaxed);
}

pub(crate) fn record_rejected() {
    REJECTED.fetch_add(1, Relaxed);
}

/// The resolved cache directory: `$PORCUPINE_CACHE_DIR` if set, else
/// `$HOME/.cache/porcupine`, else `None` (caching silently disabled).
pub fn default_cache_dir() -> Option<PathBuf> {
    if let Some(dir) = std::env::var_os("PORCUPINE_CACHE_DIR") {
        if !dir.is_empty() {
            return Some(PathBuf::from(dir));
        }
    }
    std::env::var_os("HOME").filter(|h| !h.is_empty()).map(|h| {
        let mut p = PathBuf::from(h);
        p.push(".cache");
        p.push("porcupine");
        p
    })
}

/// A fully rendered cache key: the canonical text document described in
/// the module docs, plus its filename hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    text: String,
}

impl CacheKey {
    /// Renders the key for one synthesis query. `config` carries the
    /// driver-level knobs (opt level, optimize flag, strategy, params
    /// policy) as `(name, value)` lines so this module does not depend on
    /// the CEGIS types.
    pub fn new(
        spec: &KernelSpec,
        sketch: &Sketch,
        latency: &LatencyModel,
        config: &[(&str, String)],
    ) -> Self {
        let mut text = String::new();
        let w = &mut text;
        let _ = writeln!(w, "format {CACHE_FORMAT_VERSION}");
        let _ = writeln!(w, "cost-model {COST_MODEL_VERSION}");
        let _ = writeln!(
            w,
            "latency-bits {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x}",
            latency.add_ct_ct.to_bits(),
            latency.sub_ct_ct.to_bits(),
            latency.mul_ct_ct.to_bits(),
            latency.add_ct_pt.to_bits(),
            latency.sub_ct_pt.to_bits(),
            latency.mul_ct_pt.to_bits(),
            latency.rot_ct.to_bits(),
            latency.relin_ct.to_bits(),
        );
        let _ = writeln!(
            w,
            "spec n {} t {} ct {} pt {}",
            spec.n, spec.t, spec.num_ct_inputs, spec.num_pt_inputs
        );
        let mask: String = spec
            .output_mask
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        let _ = writeln!(w, "mask {mask}");
        // The spec's canonical form: the verifier's symbolic polynomials,
        // one line per masked slot.
        let sym = spec.eval_symbolic();
        for (i, poly) in sym.iter().enumerate() {
            if spec.output_mask[i] {
                let _ = writeln!(w, "out {i} {poly}");
            }
        }
        let mode = match sketch.mode {
            SketchMode::LocalRotate => "local-rotate",
            SketchMode::ExplicitRotate => "explicit-rotate",
        };
        let _ = writeln!(
            w,
            "sketch mode {mode} min {} max {}",
            sketch.min_components, sketch.max_components
        );
        let rots: Vec<String> = sketch
            .rotation_amounts
            .iter()
            .map(|r| r.to_string())
            .collect();
        let _ = writeln!(w, "rotations {}", rots.join(" "));
        for op in &sketch.ops {
            let name = match &op.op {
                ArithOp::AddCtCt => "add-ct-ct".to_string(),
                ArithOp::SubCtCt => "sub-ct-ct".to_string(),
                ArithOp::MulCtCt => "mul-ct-ct".to_string(),
                ArithOp::AddCtPt(p) => format!("add-ct-pt {}", pt_operand(p)),
                ArithOp::SubCtPt(p) => format!("sub-ct-pt {}", pt_operand(p)),
                ArithOp::MulCtPt(p) => format!("mul-ct-pt {}", pt_operand(p)),
            };
            let _ = writeln!(w, "op {name} lhs-rot {} rhs-rot {}", op.lhs_rot, op.rhs_rot);
        }
        for (k, v) in config {
            let _ = writeln!(w, "{k} {v}");
        }
        CacheKey { text }
    }

    /// The canonical key text (also stored inside every entry).
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The entry filename for this key under a cache directory.
    pub fn file_name(&self) -> String {
        format!("{}.synth", fnv128_hex(&self.text))
    }
}

fn pt_operand(p: &PtOperand) -> String {
    match p {
        PtOperand::Input(i) => format!("input {i}"),
        PtOperand::Splat(v) => format!("splat {v}"),
    }
}

/// 128-bit content hash for filenames: two independent 64-bit FNV-1a
/// states (different offset bases, the second mixing a rotated byte).
/// Collisions are harmless — the key text is compared on read — this only
/// has to spread filenames.
fn fnv128_hex(text: &str) -> String {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
    let mut h2: u64 = 0x9e37_79b9_7f4a_7c15;
    for b in text.bytes() {
        h1 ^= u64::from(b);
        h1 = h1.wrapping_mul(PRIME);
        h2 ^= u64::from(b).rotate_left(17) ^ 0xff;
        h2 = h2.wrapping_mul(PRIME);
    }
    format!("{h1:016x}{h2:016x}")
}

/// One parsed cache entry. The program has passed strict s-expression
/// parsing and structural validation, but **not** semantic verification —
/// the caller must re-verify against the spec before trusting it.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The synthesized (pre-middle-end) program.
    pub program: Program,
    /// Component count reported by the original synthesis.
    pub components: usize,
    /// CEGIS examples the original synthesis used.
    pub examples_used: usize,
    /// Final internal cost of the program.
    pub final_cost: f64,
    /// Whether phase 2 exhausted the space (optimality proof).
    pub proved_optimal: bool,
}

/// Looks up `key` under `dir`. Returns `None` — never panics — when the
/// entry is absent, unreadable, truncated, corrupted, from another format
/// version, or stored under a colliding hash with different key text.
/// Counts a rejection (but not a miss — the caller decides after
/// re-verification) for files that exist but cannot be used.
pub fn lookup(dir: &Path, key: &CacheKey) -> Option<CacheEntry> {
    let path = dir.join(key.file_name());
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(_) => return None, // absent (or unreadable): plain miss
    };
    match parse_entry(&bytes, key) {
        Some(entry) => Some(entry),
        None => {
            record_rejected();
            None
        }
    }
}

/// Strict entry parser; any anomaly is `None`.
fn parse_entry(bytes: &[u8], key: &CacheKey) -> Option<CacheEntry> {
    let text = std::str::from_utf8(bytes).ok()?;
    let rest = text.strip_prefix(&format!("{MAGIC} v{CACHE_FORMAT_VERSION}\n"))?;
    let (len_line, rest) = rest.split_once('\n')?;
    let key_len: usize = len_line.strip_prefix("key-bytes ")?.parse().ok()?;
    if rest.len() < key_len {
        return None; // truncated
    }
    let (stored_key, rest) = rest.split_at(key_len);
    if stored_key != key.text() {
        return None; // hash collision or stale semantics
    }
    let rest = rest.strip_prefix('\n')?;
    let (comp_line, rest) = rest.split_once('\n')?;
    let components: usize = comp_line.strip_prefix("components ")?.parse().ok()?;
    let (ex_line, rest) = rest.split_once('\n')?;
    let examples_used: usize = ex_line.strip_prefix("examples-used ")?.parse().ok()?;
    let (cost_line, rest) = rest.split_once('\n')?;
    let cost_bits = u64::from_str_radix(cost_line.strip_prefix("final-cost-bits ")?, 16).ok()?;
    let final_cost = f64::from_bits(cost_bits);
    if !final_cost.is_finite() || final_cost < 0.0 {
        return None;
    }
    let (opt_line, rest) = rest.split_once('\n')?;
    let proved_optimal = match opt_line.strip_prefix("proved-optimal ")? {
        "true" => true,
        "false" => false,
        _ => return None,
    };
    let (len_line, src) = rest.split_once('\n')?;
    let prog_len: usize = len_line.strip_prefix("program-bytes ")?.parse().ok()?;
    if src.len() != prog_len {
        return None; // truncated (or padded) program body
    }
    let program = sexpr::parse_program(src).ok()?;
    program.validate().ok()?;
    Some(CacheEntry {
        program,
        components,
        examples_used,
        final_cost,
        proved_optimal,
    })
}

/// Writes an entry for `key` under `dir` (creating it), via a temp file +
/// rename so concurrent readers never observe a torn write. Best-effort:
/// an I/O error just means the next process synthesizes again.
pub fn store(dir: &Path, key: &CacheKey, entry: &CacheEntry) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut body = String::new();
    let w = &mut body;
    let _ = writeln!(w, "{MAGIC} v{CACHE_FORMAT_VERSION}");
    let _ = writeln!(w, "key-bytes {}", key.text().len());
    w.push_str(key.text());
    let _ = writeln!(w);
    let _ = writeln!(w, "components {}", entry.components);
    let _ = writeln!(w, "examples-used {}", entry.examples_used);
    let _ = writeln!(w, "final-cost-bits {:016x}", entry.final_cost.to_bits());
    let _ = writeln!(w, "proved-optimal {}", entry.proved_optimal);
    let src = sexpr::to_string(&entry.program);
    let _ = writeln!(w, "program-bytes {}", src.len());
    w.push_str(&src);
    let file_name = key.file_name();
    let tmp = dir.join(format!(".{file_name}.tmp-{}", std::process::id()));
    std::fs::write(&tmp, body.as_bytes())?;
    let result = std::fs::rename(&tmp, dir.join(&file_name));
    if result.is_ok() {
        STORES.fetch_add(1, Relaxed);
    } else {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::{RotationSet, SketchOp};
    use crate::spec::GenericReference;
    use quill::ring::Ring;

    struct Double;
    impl GenericReference for Double {
        fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
            ct[0].iter().map(|x| x.add(x)).collect()
        }
    }

    fn spec() -> KernelSpec {
        KernelSpec::new("double", 4, 1, 0, vec![], 65537, Box::new(Double))
    }

    fn sketch() -> Sketch {
        Sketch::new(
            vec![SketchOp::rotated(ArithOp::AddCtCt)],
            RotationSet::PowersOfTwo { extent: 4 },
            3,
        )
    }

    fn key() -> CacheKey {
        CacheKey::new(
            &spec(),
            &sketch(),
            &LatencyModel::uniform(),
            &[("opt-level", "O2".into()), ("strategy", "bottom-up".into())],
        )
    }

    fn entry() -> CacheEntry {
        let src = "(kernel double-x (inputs (ct 1) (pt 0)) (let c1 (add-ct-ct c0 c0)) (return c1))";
        CacheEntry {
            program: sexpr::parse_program(src).unwrap(),
            components: 1,
            examples_used: 2,
            final_cost: 45.4,
            proved_optimal: true,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("porcupine-cache-test-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_an_entry() {
        let dir = temp_dir("roundtrip");
        let k = key();
        assert!(lookup(&dir, &k).is_none(), "empty dir is a miss");
        store(&dir, &k, &entry()).unwrap();
        let got = lookup(&dir, &k).expect("stored entry should load");
        assert_eq!(got.program.to_string(), entry().program.to_string());
        assert_eq!(got.components, 1);
        assert_eq!(got.examples_used, 2);
        assert_eq!(got.final_cost.to_bits(), 45.4f64.to_bits());
        assert!(got.proved_optimal);
    }

    #[test]
    fn key_depends_on_semantics_not_name() {
        struct DoubleRenamed;
        impl GenericReference for DoubleRenamed {
            fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
                ct[0].iter().map(|x| x.add(x)).collect()
            }
        }
        let renamed = KernelSpec::new(
            "other-name",
            4,
            1,
            0,
            vec![],
            65537,
            Box::new(DoubleRenamed),
        );
        let cfg = [("opt-level", "O2".to_string())];
        let lat = LatencyModel::uniform();
        let a = CacheKey::new(&spec(), &sketch(), &lat, &cfg);
        let b = CacheKey::new(&renamed, &sketch(), &lat, &cfg);
        assert_eq!(a, b, "same canonical semantics ⇒ same key");
        let c = CacheKey::new(&spec(), &sketch(), &LatencyModel::profiled_default(), &cfg);
        assert_ne!(a, c, "latency model is part of the key");
        let mut wider = sketch();
        wider.max_components = 4;
        let d = CacheKey::new(&spec(), &wider, &lat, &cfg);
        assert_ne!(a, d, "sketch bounds are part of the key");
    }

    #[test]
    fn truncated_entry_is_rejected() {
        let dir = temp_dir("truncated");
        let k = key();
        store(&dir, &k, &entry()).unwrap();
        let path = dir.join(k.file_name());
        let bytes = std::fs::read(&path).unwrap();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(lookup(&dir, &k).is_none(), "cut at {cut} must be a miss");
        }
    }

    #[test]
    fn corrupted_program_is_rejected() {
        let dir = temp_dir("corrupt");
        let k = key();
        store(&dir, &k, &entry()).unwrap();
        let path = dir.join(k.file_name());
        let text = std::fs::read_to_string(&path).unwrap();
        // Mangle the s-expression body.
        std::fs::write(&path, text.replace("add-ct-ct", "frob-ct-ct")).unwrap();
        assert!(lookup(&dir, &k).is_none());
        // Non-UTF8 garbage.
        std::fs::write(&path, [0xff, 0xfe, 0x00, 0x01]).unwrap();
        assert!(lookup(&dir, &k).is_none());
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let dir = temp_dir("version");
        let k = key();
        store(&dir, &k, &entry()).unwrap();
        let path = dir.join(k.file_name());
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(
            &path,
            text.replace(
                &format!("{MAGIC} v{CACHE_FORMAT_VERSION}"),
                &format!("{MAGIC} v{}", CACHE_FORMAT_VERSION + 1),
            ),
        )
        .unwrap();
        assert!(lookup(&dir, &k).is_none());
    }

    #[test]
    fn colliding_hash_with_different_key_is_rejected() {
        let dir = temp_dir("collision");
        let k = key();
        store(&dir, &k, &entry()).unwrap();
        // Another key whose file we forge at the same path: the stored key
        // text differs, so the entry must be ignored.
        let other = CacheKey::new(
            &spec(),
            &sketch(),
            &LatencyModel::uniform(),
            &[("opt-level", "O0".into())],
        );
        let forged = dir.join(other.file_name());
        std::fs::copy(dir.join(k.file_name()), &forged).unwrap();
        assert!(lookup(&dir, &other).is_none());
    }
}
