//! Property-based tests for the synthesizer: whatever the engine emits must
//! verify, lift, and respect the sketch's vocabulary; the verifier must
//! never accept a program that disagrees with its spec on sampled inputs.

use porcupine::cegis::synthesize;
use porcupine::lift::check_padding_stable;
use porcupine::sketch::{ArithOp, RotationSet, Sketch, SketchOp};
use porcupine::spec::{GenericReference, KernelSpec};
use porcupine::verify::verify;
use proptest::prelude::*;
use quill::interp;
use quill::ring::Ring;
use test_support::{quick_synthesis_options, seeded_rng, with_jobs, T};

/// A weighted two-tap stencil `out[i] = w0·x[i] + w1·x[i+off]` — a family
/// of specs wide enough to exercise the search but always synthesizable.
struct TwoTap {
    off: isize,
    w0: i64,
    w1: i64,
}

impl GenericReference for TwoTap {
    fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
        let x = &ct[0];
        let n = x.len() as isize;
        (0..n)
            .map(|i| {
                let a = x[i as usize].mul(&x[0].from_i64(self.w0));
                let b = x[(i + self.off).rem_euclid(n) as usize].mul(&x[0].from_i64(self.w1));
                a.add(&b)
            })
            .collect()
    }
}

fn two_tap_spec(off: isize, w0: i64, w1: i64, n: usize) -> KernelSpec {
    // mask slots whose read i+off stays in bounds
    let mask = (0..n as isize)
        .map(|i| i + off >= 0 && i + off < n as isize)
        .collect();
    KernelSpec::new(
        "two-tap",
        n,
        1,
        0,
        mask,
        T,
        Box::new(TwoTap { off, w0, w1 }),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Soundness of the whole pipeline: every synthesized program verifies
    /// symbolically, lifts, and agrees with the spec on fresh inputs.
    #[test]
    fn synthesized_two_tap_kernels_are_sound(
        off in 1isize..4,
        w0 in 1i64..4,
        w1 in 1i64..4,
        seed in any::<u64>(),
    ) {
        let n = 8;
        let spec = two_tap_spec(off, w0, w1, n);
        let sketch = Sketch::new(
            vec![
                SketchOp::rotated(ArithOp::AddCtCt),
                SketchOp::rotated(ArithOp::SubCtCt),
                SketchOp::plain(ArithOp::MulCtPt(quill::program::PtOperand::Splat(w0))),
                SketchOp::plain(ArithOp::MulCtPt(quill::program::PtOperand::Splat(w1))),
            ],
            RotationSet::Explicit(vec![off as i64, -(off as i64), 1, 2]),
            4,
        );
        let r = synthesize(&spec, &sketch, &quick_synthesis_options(seed)).expect("two-tap synthesizes");
        let mut rng = seeded_rng(seed ^ 0xABCD);
        verify(&r.program, &spec, &mut rng).expect("synthesized program verifies");
        check_padding_stable(&r.program, n, &spec.output_mask, T).expect("lifts");

        // Fresh concrete cross-check.
        use rand::Rng;
        let input: Vec<u64> = (0..n).map(|_| rng.gen_range(0..T)).collect();
        let got = interp::eval_concrete(&r.program, std::slice::from_ref(&input), &[], T);
        let want = spec.eval_concrete(&[input], &[]);
        for i in 0..n {
            if spec.output_mask[i] {
                prop_assert_eq!(got[i], want[i], "slot {}", i);
            }
        }

        // Vocabulary: rotations used must come from the sketch.
        for rot in r.program.rotation_amounts() {
            prop_assert!(sketch.rotation_amounts.contains(&rot), "rotation {}", rot);
        }
    }

    /// The determinism contract across the whole spec family: parallel
    /// synthesis (jobs = 2, 4) returns programs and costs bit-identical to
    /// the sequential run (jobs = 1) for any seed.
    #[test]
    fn parallel_and_sequential_synthesis_agree(
        off in 1isize..4,
        w0 in 1i64..4,
        w1 in 1i64..4,
        seed in any::<u64>(),
    ) {
        let spec = two_tap_spec(off, w0, w1, 8);
        let sketch = Sketch::new(
            vec![
                SketchOp::rotated(ArithOp::AddCtCt),
                SketchOp::plain(ArithOp::MulCtPt(quill::program::PtOperand::Splat(w0))),
                SketchOp::plain(ArithOp::MulCtPt(quill::program::PtOperand::Splat(w1))),
            ],
            RotationSet::Explicit(vec![off as i64, -(off as i64)]),
            4,
        );
        let seq = synthesize(&spec, &sketch, &with_jobs(quick_synthesis_options(seed), 1))
            .expect("sequential synthesizes");
        for jobs in [2usize, 4] {
            let par = synthesize(&spec, &sketch, &with_jobs(quick_synthesis_options(seed), jobs))
                .expect("parallel synthesizes");
            prop_assert_eq!(&seq.program, &par.program, "program differs at jobs={}", jobs);
            prop_assert_eq!(&seq.initial_program, &par.initial_program, "initial differs at jobs={}", jobs);
            prop_assert_eq!(seq.final_cost.to_bits(), par.final_cost.to_bits());
            prop_assert_eq!(seq.initial_cost.to_bits(), par.initial_cost.to_bits());
            prop_assert_eq!(seq.examples_used, par.examples_used);
            prop_assert_eq!(seq.components, par.components);
            prop_assert_eq!(seq.proved_optimal, par.proved_optimal);
        }
    }

    /// The verifier rejects any single-instruction corruption of a correct
    /// kernel (mutation testing of `verify`).
    #[test]
    fn verifier_rejects_mutants(seed in any::<u64>()) {
        use quill::program::{Instr, Program, ValRef};
        let spec = two_tap_spec(1, 1, 1, 8);
        // correct: x + rot(x, 1)
        let good = Program::new(
            "two-tap",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
            ],
            ValRef::Instr(1),
        );
        let mut rng = seeded_rng(seed);
        prop_assert!(verify(&good, &spec, &mut rng).is_ok());

        let mutants = vec![
            // wrong rotation
            Program::new("m1", 1, 0, vec![
                Instr::RotCt(ValRef::Input(0), 2),
                Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
            ], ValRef::Instr(1)),
            // wrong opcode
            Program::new("m2", 1, 0, vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::SubCtCt(ValRef::Input(0), ValRef::Instr(0)),
            ], ValRef::Instr(1)),
            // wrong output
            Program::new("m3", 1, 0, vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
            ], ValRef::Instr(0)),
        ];
        for m in mutants {
            let failure = verify(&m, &spec, &mut rng);
            prop_assert!(failure.is_err(), "{} accepted", m.name);
            let f = failure.unwrap_err();
            prop_assert!(f.counter_example.is_some(), "{} lacks witness", m.name);
        }
    }
}

/// Determinism: the same seed gives the same synthesized program.
#[test]
fn synthesis_is_deterministic() {
    let spec = two_tap_spec(1, 2, 1, 8);
    let sketch = Sketch::new(
        vec![
            SketchOp::rotated(ArithOp::AddCtCt),
            SketchOp::plain(ArithOp::MulCtPt(quill::program::PtOperand::Splat(2))),
        ],
        RotationSet::Explicit(vec![1, -1]),
        3,
    );
    let a = synthesize(&spec, &sketch, &quick_synthesis_options(99)).unwrap();
    let b = synthesize(&spec, &sketch, &quick_synthesis_options(99)).unwrap();
    assert_eq!(a.program, b.program);
    assert_eq!(a.examples_used, b.examples_used);
    assert_eq!(a.components, b.components);
    // Costs are computed, not measured, so they must be bit-identical.
    assert_eq!(a.initial_cost.to_bits(), b.initial_cost.to_bits());
    assert_eq!(a.final_cost.to_bits(), b.final_cost.to_bits());
    assert_eq!(a.initial_program, b.initial_program);
}
