//! Property-based tests for the middle-end: every pass, and the full `-O`
//! pipelines, must preserve semantics on randomly generated valid programs
//! — exactly (interpreter slots) and on the encrypted backend (decryption
//! bit-identical between the `-O0` and `-O2` lowerings).

use porcupine::codegen::BfvRunner;
use porcupine::opt::{optimize, Cse, Dce, EagerRelin, LazyRelin, OptLevel, Pass, RotFold};
use proptest::prelude::*;
use quill::analysis;
use quill::interp;
use quill::program::Program;
use test_support::{arb_program, seeded_rng, small_ctx, HeSession, T};

const N: usize = 8;

fn eval(prog: &Program, inputs: &[Vec<u64>]) -> Vec<u64> {
    interp::eval_concrete(prog, inputs, &[], T)
}

fn inputs_for(prog: &Program, seed: u64) -> Vec<Vec<u64>> {
    (0..prog.num_ct_inputs)
        .map(|j| {
            (0..N)
                .map(|i| (seed.wrapping_mul(31) + 7 * j as u64 + 13 * i as u64) % T)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Each pass individually preserves interpreter semantics and program
    /// validity.
    #[test]
    fn every_pass_preserves_interpreter_semantics(
        prog in arb_program(2, 10),
        seed in any::<u64>(),
    ) {
        let passes: [&dyn Pass; 5] = [&EagerRelin, &Cse, &RotFold, &LazyRelin, &Dce];
        let inputs = inputs_for(&prog, seed);
        let want = eval(&prog, &inputs);
        for pass in passes {
            let (out, rewrites) = pass.run(&prog);
            prop_assert!(out.validate().is_ok(), "{} invalidated: {:?}", pass.name(), out.validate());
            prop_assert_eq!(
                eval(&out, &inputs), want.clone(),
                "{} changed semantics", pass.name()
            );
            prop_assert_eq!(rewrites == 0, out == prog, "{} rewrite-count contract", pass.name());
        }
    }

    /// The full pipeline at every level preserves interpreter semantics,
    /// produces backend-legal IR, and is idempotent (re-optimizing is a
    /// fixpoint with zero rewrites).
    #[test]
    fn pipelines_preserve_semantics_and_are_idempotent(
        prog in arb_program(2, 10),
        seed in any::<u64>(),
    ) {
        let inputs = inputs_for(&prog, seed);
        let want = eval(&prog, &inputs);
        for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
            let (out, _) = optimize(&prog, level);
            prop_assert!(analysis::check_backend_legal(&out).is_ok(), "{level} illegal");
            prop_assert_eq!(eval(&out, &inputs), want.clone(), "{level} changed semantics");
            let (again, report) = optimize(&out, level);
            prop_assert_eq!(&again, &out, "{} not idempotent", level);
            prop_assert_eq!(report.total_rewrites, 0, "{} fixpoint reports rewrites", level);
        }
    }

    /// `-O2` never executes more work than `-O0`: no more instructions, no
    /// more relinearizations, no more rotations, and no higher modeled
    /// latency.
    #[test]
    fn o2_never_costs_more_than_o0(prog in arb_program(2, 10)) {
        let (o0, _) = optimize(&prog, OptLevel::O0);
        let (o2, _) = optimize(&prog, OptLevel::O2);
        prop_assert!(o2.len() <= o0.len());
        prop_assert!(o2.relin_count() <= o0.relin_count());
        prop_assert!(o2.rot_count() <= o0.rot_count());
        let m = quill::cost::LatencyModel::profiled_default();
        prop_assert!(m.program_latency(&o2) <= m.program_latency(&o0) + 1e-9);
    }
}

proptest! {
    // Encrypted execution is ~10⁵× slower than the interpreter; a handful
    // of random programs per run still covers the pass interactions.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The BFV backend decrypts the `-O0` and `-O2` lowerings of a random
    /// program bit-identically (and both match the interpreter on every
    /// slot), from one shared set of encrypted inputs.
    #[test]
    fn o0_and_o2_decrypt_bit_identically_under_encryption(
        prog in arb_program(2, 6),
        case_seed in any::<u64>(),
    ) {
        // Keep multiplicative depth within the small test parameters'
        // noise budget.
        prop_assume!(prog.mult_depth() <= 3);
        let ctx = small_ctx();
        let mut rng = seeded_rng(case_seed);
        let session = HeSession::new(&ctx, &mut rng);
        let (o0, _) = optimize(&prog, OptLevel::O0);
        let (o2, _) = optimize(&prog, OptLevel::O2);
        let runner = BfvRunner::for_programs(&ctx, &session.keygen, &[&o0, &o2], &mut rng);
        let encoder = runner.encoder();

        let inputs = test_support::sample_model_inputs(prog.num_ct_inputs, N, 64, &mut rng);
        let cts: Vec<bfv::Ciphertext> = inputs
            .iter()
            .map(|v| session.encryptor.encrypt(&encoder.encode(v), &mut rng))
            .collect();
        let ct_refs: Vec<&bfv::Ciphertext> = cts.iter().collect();

        let run = |p: &Program| {
            let out = runner.run(p, &ct_refs, &[]);
            let budget = session.decryptor.invariant_noise_budget(&out);
            assert!(budget > 0, "noise budget exhausted ({budget})");
            encoder.decode(&session.decryptor.decrypt(&out))
        };
        let dec0 = run(&o0);
        let dec2 = run(&o2);
        prop_assert_eq!(&dec0, &dec2, "-O0 and -O2 decryptions differ");

        // Both agree with the interpreter on the model slots (inputs are
        // zero-padded beyond N, and rotations may read padding — compare
        // the backend against the interpreter over the full row instead).
        let row = encoder.row_size();
        let padded: Vec<Vec<u64>> = inputs
            .iter()
            .map(|v| {
                let mut p = v.clone();
                p.resize(row, 0);
                p
            })
            .collect();
        let want = interp::eval_concrete(&prog, &padded, &[], ctx.params().plain_modulus);
        prop_assert_eq!(&dec0[..row], &want[..], "backend diverged from interpreter");
    }
}
