//! Golden-snapshot test for SEAL C++ emission: the generated code for a
//! fixed kernel must match the checked-in snapshot byte-for-byte, so any
//! change to `emit_seal_cpp` is a deliberate, reviewed diff of
//! `tests/golden/mixed_kernel.golden`.

use porcupine::codegen::emit_seal_cpp;
use porcupine::opt::{optimize, OptLevel};
use quill::program::{Instr, Program, PtOperand, ValRef};

/// A small hand-built kernel covering every instruction form the emitter
/// handles: rotation (positive and negative), ct±ct, ct×ct, ct·pt with
/// both splat and input operands. The snapshot captures its `-O0`
/// lowering, so the explicit `relin-ct` emission (a copy plus
/// `relinearize_inplace`) is pinned too.
fn mixed_kernel() -> Program {
    Program::new(
        "mixed-kernel",
        2,
        1,
        vec![
            Instr::RotCt(ValRef::Input(0), 1),
            Instr::RotCt(ValRef::Input(1), -2),
            Instr::AddCtCt(ValRef::Instr(0), ValRef::Instr(1)),
            Instr::MulCtCt(ValRef::Instr(2), ValRef::Input(0)),
            Instr::MulCtPt(ValRef::Instr(3), PtOperand::Splat(3)),
            Instr::AddCtPt(ValRef::Instr(4), PtOperand::Splat(-2)),
            Instr::SubCtPt(ValRef::Instr(5), PtOperand::Input(0)),
            Instr::SubCtCt(ValRef::Instr(6), ValRef::Instr(0)),
        ],
        ValRef::Instr(7),
    )
}

#[test]
fn seal_emission_matches_golden_snapshot() {
    let prog = mixed_kernel();
    prog.validate().expect("golden kernel is well-formed");
    let (lowered, _) = optimize(&prog, OptLevel::O0);
    let actual = emit_seal_cpp(&lowered);
    let expected = include_str!("golden/mixed_kernel.golden");
    if actual != expected {
        // Write the new output next to the target dir so a deliberate
        // update is one `cp` away, then fail with a readable diff hint.
        let out = std::env::temp_dir().join("mixed_kernel.golden.actual");
        std::fs::write(&out, &actual).ok();
        panic!(
            "emit_seal_cpp output diverged from tests/golden/mixed_kernel.golden.\n\
             New output written to {}.\n\
             If the change is intentional, copy it over the golden file.\n\
             --- actual ---\n{actual}",
            out.display()
        );
    }
}
