//! Allocation-regression and in-place-equivalence tests for the
//! evaluator's hot path (ISSUE 6).
//!
//! The evaluator's `_assign` variants plus cached [`bfv::encoding::EvalPlaintext`]s
//! are required to (a) take **zero fresh buffers** from the scratch pool
//! once it is warm — every matrix and row request must be served from the
//! freelists — and (b) stay bit-identical to the pure operations, with the
//! same invariant noise budget. (a) is what keeps measured kernel latency
//! at the cost model's op-sum; (b) is why the runner may use them freely.

use bfv::Ciphertext;
use proptest::prelude::*;
use test_support::{seeded_rng, small_ctx, HeSession};

/// After one warm-up pass, the steady-state hot path must be served
/// entirely from the pool's freelists: the `fresh` counter stays flat
/// while `reused` keeps climbing.
#[test]
fn hot_path_ops_take_no_fresh_buffers_after_warmup() {
    let ctx = small_ctx();
    let mut rng = seeded_rng(0xA110C);
    let session = HeSession::new(&ctx, &mut rng);
    let HeSession {
        keygen,
        encryptor,
        encoder,
        evaluator: ev,
        ..
    } = &session;
    let rk = keygen.relin_key(&mut rng);
    let gk = keygen.galois_keys_for_rotations(&[1], true, &mut rng);
    let t = ctx.params().plain_modulus;
    let data: Vec<u64> = (0..encoder.slot_count() as u64).map(|i| i % t).collect();
    let pt = encoder.encode(&data);
    let ept = ev.preencode(&pt);
    let a = encryptor.encrypt(&pt, &mut rng);
    let b = encryptor.encrypt(&pt, &mut rng);

    let mut acc = a.clone();
    let mut acc_rot = a.clone();
    let pass = |acc: &mut Ciphertext, acc_rot: &mut Ciphertext| {
        ev.add_assign(acc, &b);
        ev.sub_assign(acc, &b);
        ev.add_plain_assign(acc, &ept);
        ev.sub_plain_assign(acc, &ept);
        ev.mul_plain_assign(acc, &ept);
        ev.negate_assign(acc);
        ev.rotate_rows_assign(acc_rot, 1, &gk);
        ev.rotate_columns_assign(acc_rot, &gk);
        ev.recycle(ev.multiply(&a, &b));
        ev.recycle(ev.multiply_relin(&a, &b, &rk));
    };
    // Warm-up: the first pass may allocate its working set.
    pass(&mut acc, &mut acc_rot);
    let warm = ev.pool_stats();
    for _ in 0..5 {
        pass(&mut acc, &mut acc_rot);
    }
    let steady = ev.pool_stats();
    assert_eq!(
        steady.fresh, warm.fresh,
        "steady-state evaluator ops allocated fresh pool buffers \
         (warm: {warm:?}, steady: {steady:?})"
    );
    assert!(
        steady.reused > warm.reused,
        "steady-state ops never touched the pool (warm: {warm:?}, steady: {steady:?})"
    );
}

/// The outer `Ciphertext` part shells are pooled too (ISSUE 7): a
/// multiply → recycle loop reuses the product's part vector and residue
/// matrices, so the steady state performs **zero** fresh shell
/// allocations.
#[test]
fn recycled_ciphertext_shells_are_reused_by_multiply() {
    let ctx = small_ctx();
    let mut rng = seeded_rng(0x5E11);
    let session = HeSession::new(&ctx, &mut rng);
    let HeSession {
        keygen,
        encryptor,
        encoder,
        evaluator: ev,
        ..
    } = &session;
    let rk = keygen.relin_key(&mut rng);
    let pt = encoder.encode(&[4, 5, 6]);
    let a = encryptor.encrypt(&pt, &mut rng);
    let b = encryptor.encrypt(&pt, &mut rng);

    // Warm-up: first multiply builds the working set (including the
    // size-3 part shell) from fresh allocations.
    ev.recycle(ev.multiply(&a, &b));
    ev.recycle(ev.multiply_relin(&a, &b, &rk));
    let warm = ev.pool_stats();
    for _ in 0..8 {
        ev.recycle(ev.multiply(&a, &b));
        ev.recycle(ev.multiply_relin(&a, &b, &rk));
    }
    let steady = ev.pool_stats();
    assert_eq!(
        steady.fresh, warm.fresh,
        "steady-state multiply/recycle allocated fresh shells \
         (warm: {warm:?}, steady: {steady:?})"
    );
    assert!(
        steady.reused > warm.reused,
        "multiply/recycle never touched the pool (warm: {warm:?}, steady: {steady:?})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Every in-place variant and the cached-`EvalPlaintext` path decrypt
    /// bit-identically to the pure functions, with the same invariant
    /// noise budget.
    #[test]
    fn in_place_and_cached_paths_match_pure_ops(seed in any::<u64>()) {
        use rand::Rng;

        let ctx = small_ctx();
        let mut rng = seeded_rng(seed);
        let session = HeSession::new(&ctx, &mut rng);
        let HeSession {
            keygen,
            encryptor,
            decryptor,
            encoder,
            evaluator: ev,
        } = &session;
        let rk = keygen.relin_key(&mut rng);
        let gk = keygen.galois_keys_for_rotations(&[3], true, &mut rng);
        let t = ctx.params().plain_modulus;
        let vals: Vec<u64> = (0..encoder.slot_count()).map(|_| rng.gen_range(0..t)).collect();
        let pt = encoder.encode(&vals);
        // Both encode-once routes must agree with the per-op encode the
        // pure functions perform internally.
        let cached = ev.preencode(&pt);
        let direct = encoder.encode_eval(&vals);
        let a = encryptor.encrypt(&encoder.encode(&vals), &mut rng);
        let b = encryptor.encrypt(&pt, &mut rng);

        type Pure<'s> = Box<dyn Fn(&Ciphertext) -> Ciphertext + 's>;
        type Assign<'s> = Box<dyn Fn(&mut Ciphertext) + 's>;
        let pairs: Vec<(&str, Pure, Assign)> = vec![
            ("add", Box::new(|c: &_| ev.add(c, &b)), Box::new(|c: &mut _| ev.add_assign(c, &b))),
            ("sub", Box::new(|c: &_| ev.sub(c, &b)), Box::new(|c: &mut _| ev.sub_assign(c, &b))),
            ("negate", Box::new(|c: &_| ev.negate(c)), Box::new(|c: &mut _| ev.negate_assign(c))),
            (
                "add_plain",
                Box::new(|c: &_| ev.add_plain(c, &pt)),
                Box::new(|c: &mut _| ev.add_plain_assign(c, &cached)),
            ),
            (
                "sub_plain",
                Box::new(|c: &_| ev.sub_plain(c, &pt)),
                Box::new(|c: &mut _| ev.sub_plain_assign(c, &direct)),
            ),
            (
                "mul_plain",
                Box::new(|c: &_| ev.mul_plain(c, &pt)),
                Box::new(|c: &mut _| ev.mul_plain_assign(c, &cached)),
            ),
            (
                "rotate_rows",
                Box::new(|c: &_| ev.rotate_rows(c, 3, &gk)),
                Box::new(|c: &mut _| ev.rotate_rows_assign(c, 3, &gk)),
            ),
            (
                "rotate_columns",
                Box::new(|c: &_| ev.rotate_columns(c, &gk)),
                Box::new(|c: &mut _| ev.rotate_columns_assign(c, &gk)),
            ),
            (
                "multiply_relin",
                Box::new(|c: &_| ev.multiply_relin(c, &b, &rk)),
                Box::new(|c: &mut _| {
                    let prod = ev.multiply(c, &b);
                    *c = prod;
                    ev.relinearize_assign(c, &rk);
                }),
            ),
        ];
        let mut ct = a.clone();
        for (name, pure, assign) in &pairs {
            let want = pure(&ct);
            let mut got = ct.clone();
            assign(&mut got);
            let (dec_want, dec_got) = (decryptor.decrypt(&want), decryptor.decrypt(&got));
            prop_assert_eq!(
                dec_want.coeffs(),
                dec_got.coeffs(),
                "decryptions diverged after {}", name
            );
            prop_assert_eq!(
                decryptor.invariant_noise_budget(&want),
                decryptor.invariant_noise_budget(&got),
                "noise budget diverged after {}", name
            );
            ct = got;
        }
    }
}
