//! Property-based tests for the number-theoretic core of the BFV
//! substrate: big integers against `u128` ground truth, NTT algebra, CRT
//! bijectivity, and homomorphic slot semantics.

use bfv::bigint::{center, BigInt, BigUint};
use bfv::ntt::{negacyclic_mul_schoolbook, NttTables};
use bfv::rns::RnsContext;
use bfv::zq;
use proptest::prelude::*;

proptest! {
    #[test]
    fn bigint_add_sub_roundtrip(a in any::<u128>(), b in any::<u128>()) {
        let ba = BigUint::from_u128(a);
        let bb = BigUint::from_u128(b);
        let sum = ba.add(&bb);
        prop_assert_eq!(sum.sub(&bb), ba.clone());
        prop_assert_eq!(sum.sub(&ba), bb);
    }

    #[test]
    fn bigint_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let p = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
        prop_assert_eq!(p.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn bigint_div_rem_reconstructs(a in any::<u128>(), b in 1..=u128::MAX) {
        let ba = BigUint::from_u128(a);
        let bb = BigUint::from_u128(b);
        let (q, r) = ba.div_rem(&bb);
        prop_assert_eq!(q.mul(&bb).add(&r), ba);
        prop_assert!(r.cmp_big(&bb) == std::cmp::Ordering::Less);
    }

    #[test]
    fn bigint_div_rem_multi_limb(limbs in prop::collection::vec(any::<u64>(), 3..6),
                                 dlimbs in prop::collection::vec(any::<u64>(), 2..4)) {
        let a = BigUint::from_limbs(limbs);
        let b = BigUint::from_limbs(dlimbs);
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
        prop_assert!(r.cmp_big(&b) == std::cmp::Ordering::Less);
    }

    #[test]
    fn bigint_shifts_are_mul_div_by_powers(a in any::<u128>(), sh in 0u32..100) {
        let ba = BigUint::from_u128(a);
        let shifted = ba.shl_bits(sh);
        prop_assert_eq!(shifted.shr_bits(sh), ba.clone());
        // shl then rem_u64 by 2 == 0 for sh >= 1
        if sh >= 1 && !ba.is_zero() {
            prop_assert_eq!(shifted.rem_u64(2), 0);
        }
    }

    #[test]
    fn signed_arithmetic_matches_i128(a in -(1i128 << 62)..(1i128 << 62),
                                      b in -(1i128 << 62)..(1i128 << 62)) {
        let ba = BigInt { mag: BigUint::from_u128(a.unsigned_abs()), neg: a < 0 };
        let bb = BigInt { mag: BigUint::from_u128(b.unsigned_abs()), neg: b < 0 };
        let sum = ba.add(&bb);
        let expect = a + b;
        prop_assert_eq!(sum.mag.to_u128(), Some(expect.unsigned_abs()));
        if expect != 0 {
            prop_assert_eq!(sum.neg, expect < 0);
        }
    }

    #[test]
    fn center_is_inverse_of_mod(v in any::<u64>()) {
        let q = BigUint::from_u64(1_000_003);
        let x = BigUint::from_u64(v % 1_000_003);
        let c = center(&x, &q);
        prop_assert_eq!(c.rem_euclid_u64(1_000_003), v % 1_000_003);
    }

    #[test]
    fn pow_mod_fermat(a in 2u64..65536) {
        // a^(p-1) = 1 mod p for prime p not dividing a
        prop_assert_eq!(zq::pow_mod(a, 65536, 65537), if a % 65537 == 0 { 0 } else { 1 });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ntt_multiply_matches_schoolbook(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let n = 32;
        let p = zq::ntt_primes(45, 2 * n as u64, 1, &[])[0];
        let t = NttTables::new(p, n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..p)).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..p)).collect();
        prop_assert_eq!(t.multiply(&a, &b), negacyclic_mul_schoolbook(&a, &b, p));
    }

    #[test]
    fn crt_roundtrip_random_residues(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let primes = zq::ntt_primes(45, 64, 4, &[]);
        let ctx = RnsContext::new(primes);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let residues: Vec<u64> = ctx.primes().iter().map(|&p| rng.gen_range(0..p)).collect();
        let x = ctx.reconstruct(&residues);
        prop_assert_eq!(ctx.decompose(&x), residues);
    }
}

// The double-CRT representation is semantically transparent: running the
// same random op sequence with ciphertexts bounced to coefficient form
// after every operation produces bit-identical decryptions to the
// evaluation-form-resident pipeline, and the invariant noise budget never
// depends on the representation either.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn representation_is_transparent_to_every_op(seed in any::<u64>()) {
        use test_support::{seeded_rng, small_ctx, HeSession};

        let ctx = small_ctx();
        let mut rng = seeded_rng(seed);
        let session = HeSession::new(&ctx, &mut rng);
        let HeSession {
            keygen,
            encryptor,
            decryptor,
            encoder,
            evaluator: ev,
        } = &session;
        let rk = keygen.relin_key(&mut rng);
        let gk = keygen.galois_keys_for_rotations(&[2], true, &mut rng);

        use rand::Rng;
        let t = ctx.params().plain_modulus;
        let va: Vec<u64> = (0..encoder.slot_count()).map(|_| rng.gen_range(0..t)).collect();
        let vb: Vec<u64> = (0..encoder.slot_count()).map(|_| rng.gen_range(0..t)).collect();
        let pt = encoder.encode(&vb);
        let other = encryptor.encrypt(&pt, &mut rng);
        // eval-resident pipeline vs coefficient-bounced pipeline
        let mut ct_eval = encryptor.encrypt(&encoder.encode(&va), &mut rng);
        let mut ct_coeff = ct_eval.to_coeff_form(&ctx);

        type Op<'s> = Box<dyn Fn(&bfv::Ciphertext) -> bfv::Ciphertext + 's>;
        let ops: Vec<(&str, Op)> = vec![
            ("add", Box::new(|c: &bfv::Ciphertext| ev.add(c, &other))),
            ("add_plain", Box::new(|c: &bfv::Ciphertext| ev.add_plain(c, &pt))),
            ("rotate", Box::new(|c: &bfv::Ciphertext| ev.rotate_rows(c, 2, &gk))),
            ("mul_plain", Box::new(|c: &bfv::Ciphertext| ev.mul_plain(c, &pt))),
            ("columns", Box::new(|c: &bfv::Ciphertext| ev.rotate_columns(c, &gk))),
            ("negate", Box::new(|c: &bfv::Ciphertext| ev.negate(c))),
            ("sub", Box::new(|c: &bfv::Ciphertext| ev.sub(c, &other))),
            ("mul_relin", Box::new(|c: &bfv::Ciphertext| ev.multiply_relin(c, &other, &rk))),
            ("sub_plain", Box::new(|c: &bfv::Ciphertext| ev.sub_plain(c, &pt))),
        ];
        for (name, op) in &ops {
            ct_eval = op(&ct_eval);
            ct_coeff = op(&ct_coeff).to_coeff_form(&ctx);
            let dec_eval = decryptor.decrypt(&ct_eval);
            let dec_coeff = decryptor.decrypt(&ct_coeff);
            prop_assert_eq!(
                dec_eval.coeffs(),
                dec_coeff.coeffs(),
                "decryptions diverged after {}", name
            );
            prop_assert_eq!(
                decryptor.invariant_noise_budget(&ct_eval),
                decryptor.invariant_noise_budget(&ct_coeff),
                "noise budget representation-dependent after {}", name
            );
            // converting back and forth is the identity on the ring element
            prop_assert_eq!(
                decryptor.invariant_noise_budget(&ct_eval),
                decryptor.invariant_noise_budget(&ct_eval.to_coeff_form(&ctx).to_eval_form(&ctx)),
                "form round-trip changed the ciphertext after {}", name
            );
        }
    }
}

/// Hoisted rotations (one shared digit decomposition, permuted per Galois
/// element) decrypt slot-for-slot identically to sequential rotations,
/// with the same noise budget up to ±1 bit — the permuted digits are a
/// different-but-equally-small decomposition of the rotated polynomial.
#[test]
fn hoisted_rotation_matches_sequential() {
    use rand::Rng;
    use test_support::{seeded_rng, small_ctx, HeSession};

    let ctx = small_ctx();
    let mut rng = seeded_rng(0xB0157);
    let session = HeSession::new(&ctx, &mut rng);
    let HeSession {
        keygen,
        encryptor,
        decryptor,
        encoder,
        evaluator: ev,
    } = &session;
    let gk = keygen.galois_keys_for_rotations(&[1, 2, 3], false, &mut rng);
    let t = ctx.params().plain_modulus;
    let va: Vec<u64> = (0..encoder.slot_count())
        .map(|_| rng.gen_range(0..t))
        .collect();
    let ct = encryptor.encrypt(&encoder.encode(&va), &mut rng);
    let hd = ev.hoist(&ct);
    for steps in [0i64, 1, 2, 3] {
        let hoisted = ev.rotate_rows_hoisted(&ct, &hd, steps, &gk);
        let sequential = ev.rotate_rows(&ct, steps, &gk);
        assert_eq!(
            encoder.decode(&decryptor.decrypt(&hoisted)),
            encoder.decode(&decryptor.decrypt(&sequential)),
            "steps={steps}"
        );
        let nb_h = decryptor.invariant_noise_budget(&hoisted);
        let nb_s = decryptor.invariant_noise_budget(&sequential);
        assert!(
            (nb_h - nb_s).abs() <= 1,
            "noise budget diverged at steps={steps}: hoisted {nb_h}, sequential {nb_s}"
        );
    }
    ev.recycle_hoisted(hd);
}

/// Homomorphic slot semantics: random circuits of adds/mults/rotations over
/// encrypted data agree with plaintext evaluation.
#[test]
fn random_homomorphic_circuits_agree_with_plaintext() {
    use rand::Rng;
    use test_support::{seeded_rng, small_ctx, HeSession};

    let ctx = small_ctx();
    let mut rng = seeded_rng(0x5EED);
    let session = HeSession::new(&ctx, &mut rng);
    let HeSession {
        keygen,
        encryptor,
        decryptor,
        encoder,
        evaluator: ev,
    } = &session;
    let rk = keygen.relin_key(&mut rng);
    let gk = keygen.galois_keys_for_rotations(&[1, 3], false, &mut rng);

    let t = ctx.params().plain_modulus;
    let half = encoder.row_size();
    for trial in 0..4 {
        let va: Vec<u64> = (0..encoder.slot_count())
            .map(|_| rng.gen_range(0..t))
            .collect();
        let vb: Vec<u64> = (0..encoder.slot_count())
            .map(|_| rng.gen_range(0..t))
            .collect();
        let mut ct = encryptor.encrypt(&encoder.encode(&va), &mut rng);
        let cb = encryptor.encrypt(&encoder.encode(&vb), &mut rng);
        let mut model = va.clone();

        for step in 0..5 {
            match (trial + step) % 4 {
                0 => {
                    ct = ev.add(&ct, &cb);
                    for i in 0..model.len() {
                        model[i] = (model[i] + vb[i]) % t;
                    }
                }
                1 => {
                    ct = ev.rotate_rows(&ct, 1, &gk);
                    let mut rotated = vec![0u64; model.len()];
                    for i in 0..half {
                        rotated[i] = model[(i + 1) % half];
                        rotated[half + i] = model[half + (i + 1) % half];
                    }
                    model = rotated;
                }
                2 => {
                    ct = ev.multiply_relin(&ct, &cb, &rk);
                    for i in 0..model.len() {
                        model[i] = ((model[i] as u128 * vb[i] as u128) % t as u128) as u64;
                    }
                }
                _ => {
                    ct = ev.sub(&ct, &cb);
                    for i in 0..model.len() {
                        model[i] = (model[i] + t - vb[i]) % t;
                    }
                }
            }
        }
        assert!(decryptor.invariant_noise_budget(&ct) > 0, "trial {trial}");
        assert_eq!(
            encoder.decode(&decryptor.decrypt(&ct)),
            model,
            "trial {trial}"
        );
    }
}
