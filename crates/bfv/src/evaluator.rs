//! Homomorphic evaluation: the SIMD instruction set Porcupine targets.
//!
//! Mirrors the SEAL evaluator surface the paper compiles to: ciphertext
//! add/sub/negate, plaintext add/sub/multiply, ciphertext multiply with
//! relinearization, and slot rotations via Galois automorphisms.
//!
//! Multiplication is exact: operands are lifted to centered integers,
//! tensored in an auxiliary RNS base `P > 2·N·(Q/2)²` via per-prime NTTs,
//! CRT-reconstructed, rescaled by `t/Q` with exact rounding, and reduced
//! back mod `Q` — the textbook BFV multiply without approximation error.

use crate::bigint::BigInt;
use crate::encoding::{galois_element_for_column_swap, galois_element_for_rotation, Plaintext};
use crate::encrypt::Ciphertext;
use crate::keys::{GaloisKeys, KeySwitchKey, RelinKey};
use crate::params::BfvContext;
use crate::poly::RnsPoly;

/// Stateless evaluator over one context.
///
/// # Examples
///
/// ```
/// use bfv::{params::{BfvContext, BfvParams}, encoding::BatchEncoder,
///           keys::KeyGenerator, encrypt::{Encryptor, Decryptor}, evaluator::Evaluator};
/// use rand::SeedableRng;
///
/// let ctx = BfvContext::new(BfvParams::test_small())?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let kg = KeyGenerator::new(&ctx, &mut rng);
/// let enc = Encryptor::new(&ctx, kg.public_key(&mut rng));
/// let dec = Decryptor::new(&ctx, kg.secret_key().clone());
/// let coder = BatchEncoder::new(&ctx);
/// let ev = Evaluator::new(&ctx);
///
/// let a = enc.encrypt(&coder.encode(&[3, 4]), &mut rng);
/// let b = enc.encrypt(&coder.encode(&[10, 20]), &mut rng);
/// let sum = ev.add(&a, &b);
/// assert_eq!(&coder.decode(&dec.decrypt(&sum))[..2], &[13, 24]);
/// # Ok::<(), bfv::params::ParamError>(())
/// ```
#[derive(Debug)]
pub struct Evaluator<'a> {
    ctx: &'a BfvContext,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator.
    pub fn new(ctx: &'a BfvContext) -> Self {
        Evaluator { ctx }
    }

    /// Slot-wise sum of two ciphertexts.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.zip(a, b, |r, x, y| r.add(x, y))
    }

    /// Slot-wise difference of two ciphertexts.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let ring = self.ctx.ring();
        let len = a.parts.len().max(b.parts.len());
        let zero = ring.zero();
        let parts = (0..len)
            .map(|i| {
                let x = a.parts.get(i).unwrap_or(&zero);
                let y = b.parts.get(i).unwrap_or(&zero);
                ring.sub(x, y)
            })
            .collect();
        Ciphertext { parts }
    }

    /// Slot-wise negation.
    pub fn negate(&self, a: &Ciphertext) -> Ciphertext {
        let ring = self.ctx.ring();
        Ciphertext {
            parts: a.parts.iter().map(|p| ring.neg(p)).collect(),
        }
    }

    fn zip(
        &self,
        a: &Ciphertext,
        b: &Ciphertext,
        f: impl Fn(&crate::poly::RingContext, &RnsPoly, &RnsPoly) -> RnsPoly,
    ) -> Ciphertext {
        let ring = self.ctx.ring();
        let len = a.parts.len().max(b.parts.len());
        let zero = ring.zero();
        let parts = (0..len)
            .map(|i| {
                let x = a.parts.get(i).unwrap_or(&zero);
                let y = b.parts.get(i).unwrap_or(&zero);
                f(ring, x, y)
            })
            .collect();
        Ciphertext { parts }
    }

    /// Adds an encoded plaintext to a ciphertext (`c0 += Δ·m`).
    pub fn add_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let ring = self.ctx.ring();
        let m = ring.from_u64_coeffs(&pt.coeffs);
        let dm = ring.mul_scalar_residues(&m, self.ctx.delta_residues());
        let mut parts = a.parts.clone();
        parts[0] = ring.add(&parts[0], &dm);
        Ciphertext { parts }
    }

    /// Subtracts an encoded plaintext from a ciphertext.
    pub fn sub_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let ring = self.ctx.ring();
        let m = ring.from_u64_coeffs(&pt.coeffs);
        let dm = ring.mul_scalar_residues(&m, self.ctx.delta_residues());
        let mut parts = a.parts.clone();
        parts[0] = ring.sub(&parts[0], &dm);
        Ciphertext { parts }
    }

    /// Multiplies a ciphertext by an encoded plaintext (slot-wise).
    pub fn mul_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let ring = self.ctx.ring();
        let m = ring.from_u64_coeffs(&pt.coeffs);
        Ciphertext {
            parts: a.parts.iter().map(|p| ring.mul(p, &m)).collect(),
        }
    }

    /// Ciphertext–ciphertext multiply, producing a size-3 ciphertext.
    /// Relinearize with [`Evaluator::relinearize`] before further rotations
    /// or multiplies.
    ///
    /// # Panics
    ///
    /// Panics if either input is not size 2.
    pub fn multiply(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        assert_eq!(
            a.size(),
            2,
            "multiply requires size-2 inputs (relinearize first)"
        );
        assert_eq!(
            b.size(),
            2,
            "multiply requires size-2 inputs (relinearize first)"
        );
        let ring = self.ctx.ring();
        let aux = self.ctx.aux_ring();
        let t = self.ctx.params().plain_modulus;
        let q = ring.modulus();

        // Lift to exact centered integers and re-embed in the aux base.
        let lift = |p: &RnsPoly| -> RnsPoly { aux.from_centered(&ring.lift_centered(p)) };
        let (c0, c1) = (lift(&a.parts[0]), lift(&a.parts[1]));
        let (d0, d1) = (lift(&b.parts[0]), lift(&b.parts[1]));

        // Tensor in the aux base (exact: |coeff| ≤ N(Q/2)² + slack < P/2).
        let e0 = aux.mul(&c0, &d0);
        let e1 = aux.add(&aux.mul(&c0, &d1), &aux.mul(&c1, &d0));
        let e2 = aux.mul(&c1, &d1);

        // Rescale round(t/Q · x) exactly and reduce mod Q.
        let rescale = |p: &RnsPoly| -> RnsPoly {
            let lifted = aux.lift_centered(p);
            let rounded: Vec<BigInt> = lifted.iter().map(|x| x.mul_div_round(t, q)).collect();
            ring.from_centered(&rounded)
        };
        Ciphertext {
            parts: vec![rescale(&e0), rescale(&e1), rescale(&e2)],
        }
    }

    /// Key-switches polynomial `d` (under the source key of `ksk`) to the
    /// canonical secret, returning the two accumulated parts.
    fn key_switch(&self, d: &RnsPoly, ksk: &KeySwitchKey) -> (RnsPoly, RnsPoly) {
        let ring = self.ctx.ring();
        let mut acc_b = ring.zero();
        let mut acc_a = ring.zero();
        for (i, (b_i, a_i)) in ksk.parts.iter().enumerate() {
            let d_i = ring.decompose_component(d, i);
            acc_b = ring.add(&acc_b, &ring.mul(&d_i, b_i));
            acc_a = ring.add(&acc_a, &ring.mul(&d_i, a_i));
        }
        (acc_b, acc_a)
    }

    /// Relinearizes a size-3 ciphertext back to size 2.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is not size 3.
    pub fn relinearize(&self, a: &Ciphertext, rk: &RelinKey) -> Ciphertext {
        assert_eq!(a.size(), 3, "relinearize expects a size-3 ciphertext");
        let ring = self.ctx.ring();
        let (ks_b, ks_a) = self.key_switch(&a.parts[2], &rk.0);
        Ciphertext {
            parts: vec![ring.add(&a.parts[0], &ks_b), ring.add(&a.parts[1], &ks_a)],
        }
    }

    /// Multiply then relinearize — the shape Porcupine's codegen emits for
    /// every ct×ct product.
    pub fn multiply_relin(&self, a: &Ciphertext, b: &Ciphertext, rk: &RelinKey) -> Ciphertext {
        self.relinearize(&self.multiply(a, b), rk)
    }

    /// Applies the Galois automorphism `x → x^g` homomorphically.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is not size 2 or no key for `g` is present.
    pub fn apply_galois(&self, a: &Ciphertext, g: u64, gk: &GaloisKeys) -> Ciphertext {
        assert_eq!(
            a.size(),
            2,
            "apply_galois expects size-2 (relinearize first)"
        );
        if g == 1 {
            return a.clone();
        }
        let ring = self.ctx.ring();
        let key = gk
            .keys
            .get(&g)
            .unwrap_or_else(|| panic!("missing Galois key for element {g}"));
        let c0 = ring.automorphism(&a.parts[0], g);
        let c1 = ring.automorphism(&a.parts[1], g);
        let (ks_b, ks_a) = self.key_switch(&c1, key);
        Ciphertext {
            parts: vec![ring.add(&c0, &ks_b), ks_a],
        }
    }

    /// Rotates both batching rows left by `steps` (negative = right) —
    /// SEAL's `rotate_rows`.
    ///
    /// # Panics
    ///
    /// Panics if the required Galois key is missing.
    pub fn rotate_rows(&self, a: &Ciphertext, steps: i64, gk: &GaloisKeys) -> Ciphertext {
        let n = self.ctx.params().poly_degree;
        self.apply_galois(a, galois_element_for_rotation(n, steps), gk)
    }

    /// Swaps the two batching rows — SEAL's `rotate_columns`.
    ///
    /// # Panics
    ///
    /// Panics if the required Galois key is missing.
    pub fn rotate_columns(&self, a: &Ciphertext, gk: &GaloisKeys) -> Ciphertext {
        let n = self.ctx.params().poly_degree;
        self.apply_galois(a, galois_element_for_column_swap(n), gk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::BatchEncoder;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::keys::KeyGenerator;
    use crate::params::BfvParams;
    use rand::SeedableRng;

    struct Fixture {
        ctx: BfvContext,
    }

    struct Session<'a> {
        encoder: BatchEncoder<'a>,
        enc: Encryptor<'a>,
        dec: Decryptor<'a>,
        ev: Evaluator<'a>,
        kg: KeyGenerator<'a>,
        rng: rand::rngs::StdRng,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                ctx: BfvContext::new(BfvParams::test_small()).unwrap(),
            }
        }

        fn session(&self) -> Session<'_> {
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xE7A1);
            let kg = KeyGenerator::new(&self.ctx, &mut rng);
            let enc = Encryptor::new(&self.ctx, kg.public_key(&mut rng));
            let dec = Decryptor::new(&self.ctx, kg.secret_key().clone());
            Session {
                encoder: BatchEncoder::new(&self.ctx),
                enc,
                dec,
                ev: Evaluator::new(&self.ctx),
                kg,
                rng,
            }
        }
    }

    #[test]
    fn homomorphic_add_sub_neg() {
        let f = Fixture::new();
        let mut s = f.session();
        let t = f.ctx.params().plain_modulus;
        let a = s.enc.encrypt(&s.encoder.encode(&[5, 7, 100]), &mut s.rng);
        let b = s.enc.encrypt(&s.encoder.encode(&[3, 9, 65530]), &mut s.rng);
        let sum = s.encoder.decode(&s.dec.decrypt(&s.ev.add(&a, &b)));
        assert_eq!(&sum[..3], &[8, 16, (100 + 65530) % t]);
        let diff = s.encoder.decode(&s.dec.decrypt(&s.ev.sub(&a, &b)));
        assert_eq!(&diff[..3], &[2, (t - 2) % t, (100 + t - 65530) % t]);
        let neg = s.encoder.decode(&s.dec.decrypt(&s.ev.negate(&a)));
        assert_eq!(&neg[..3], &[t - 5, t - 7, t - 100]);
    }

    #[test]
    fn plain_ops() {
        let f = Fixture::new();
        let mut s = f.session();
        let a = s.enc.encrypt(&s.encoder.encode(&[10, 20, 30]), &mut s.rng);
        let p = s.encoder.encode(&[1, 2, 3]);
        let added = s.encoder.decode(&s.dec.decrypt(&s.ev.add_plain(&a, &p)));
        assert_eq!(&added[..3], &[11, 22, 33]);
        let subbed = s.encoder.decode(&s.dec.decrypt(&s.ev.sub_plain(&a, &p)));
        assert_eq!(&subbed[..3], &[9, 18, 27]);
        let mulled = s.encoder.decode(&s.dec.decrypt(&s.ev.mul_plain(&a, &p)));
        assert_eq!(&mulled[..3], &[10, 40, 90]);
    }

    #[test]
    fn ciphertext_multiply_and_relinearize() {
        let f = Fixture::new();
        let mut s = f.session();
        let a = s.enc.encrypt(&s.encoder.encode(&[6, 7, 255]), &mut s.rng);
        let b = s.enc.encrypt(&s.encoder.encode(&[7, 8, 255]), &mut s.rng);
        let prod3 = s.ev.multiply(&a, &b);
        assert_eq!(prod3.size(), 3);
        // size-3 decrypts correctly
        let direct = s.encoder.decode(&s.dec.decrypt(&prod3));
        assert_eq!(&direct[..3], &[42, 56, 65025]);
        // relinearized decrypts correctly
        let rk = s.kg.relin_key(&mut s.rng);
        let prod2 = s.ev.relinearize(&prod3, &rk);
        assert_eq!(prod2.size(), 2);
        let relin = s.encoder.decode(&s.dec.decrypt(&prod2));
        assert_eq!(&relin[..3], &[42, 56, 65025]);
        assert!(s.dec.invariant_noise_budget(&prod2) > 0);
    }

    #[test]
    fn rotations_match_slot_semantics() {
        let f = Fixture::new();
        let mut s = f.session();
        let n = s.encoder.slot_count();
        let half = n / 2;
        let v: Vec<u64> = (0..n as u64).collect();
        let ct = s.enc.encrypt(&s.encoder.encode(&v), &mut s.rng);
        let gk = s.kg.galois_keys_for_rotations(&[1, -2], true, &mut s.rng);

        let left1 = s
            .encoder
            .decode(&s.dec.decrypt(&s.ev.rotate_rows(&ct, 1, &gk)));
        for i in 0..half {
            assert_eq!(left1[i], v[(i + 1) % half]);
            assert_eq!(left1[half + i], v[half + (i + 1) % half]);
        }
        let right2 = s
            .encoder
            .decode(&s.dec.decrypt(&s.ev.rotate_rows(&ct, -2, &gk)));
        for i in 0..half {
            assert_eq!(right2[i], v[(i + half - 2) % half]);
        }
        let swapped = s
            .encoder
            .decode(&s.dec.decrypt(&s.ev.rotate_columns(&ct, &gk)));
        for i in 0..half {
            assert_eq!(swapped[i], v[half + i]);
            assert_eq!(swapped[half + i], v[i]);
        }
    }

    #[test]
    fn rotation_of_zero_steps_is_identity() {
        let f = Fixture::new();
        let mut s = f.session();
        let ct = s.enc.encrypt(&s.encoder.encode(&[9, 8, 7]), &mut s.rng);
        let gk = s.kg.galois_keys(&[], &mut s.rng);
        let same = s.ev.rotate_rows(&ct, 0, &gk);
        assert_eq!(s.encoder.decode(&s.dec.decrypt(&same))[..3], [9, 8, 7]);
    }

    #[test]
    fn multiply_depth_two_survives() {
        let f = Fixture::new();
        let mut s = f.session();
        let rk = s.kg.relin_key(&mut s.rng);
        let a = s.enc.encrypt(&s.encoder.encode(&[3]), &mut s.rng);
        let sq = s.ev.multiply_relin(&a, &a, &rk);
        let quad = s.ev.multiply_relin(&sq, &sq, &rk);
        let out = s.encoder.decode(&s.dec.decrypt(&quad));
        assert_eq!(out[0], 81);
        let budget = s.dec.invariant_noise_budget(&quad);
        assert!(budget > 0, "depth-2 budget exhausted: {budget}");
    }

    #[test]
    fn noise_budget_decreases_monotonically() {
        let f = Fixture::new();
        let mut s = f.session();
        let rk = s.kg.relin_key(&mut s.rng);
        let a = s.enc.encrypt(&s.encoder.encode(&[2]), &mut s.rng);
        let fresh = s.dec.invariant_noise_budget(&a);
        let sq = s.ev.multiply_relin(&a, &a, &rk);
        let after_mul = s.dec.invariant_noise_budget(&sq);
        assert!(
            after_mul < fresh,
            "mul must consume budget ({fresh} -> {after_mul})"
        );
        let sum = s.ev.add(&sq, &sq);
        let after_add = s.dec.invariant_noise_budget(&sum);
        assert!(
            after_add <= after_mul + 1,
            "add grows noise additively only"
        );
    }
}
