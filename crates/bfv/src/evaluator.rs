//! Homomorphic evaluation: the SIMD instruction set Porcupine targets,
//! RNS-native end to end.
//!
//! Mirrors the SEAL evaluator surface the paper compiles to: ciphertext
//! add/sub/negate, plaintext add/sub/multiply, ciphertext multiply with
//! relinearization, and slot rotations via Galois automorphisms.
//!
//! # The double-CRT invariant
//!
//! Ciphertexts and keys stay in **evaluation (double-CRT) form**
//! ([`crate::poly::PolyForm::Eval`]) between operations, so the cheap ops
//! never touch an NTT:
//!
//! * `add`/`sub`/`negate` and the plaintext ops are componentwise on
//!   evaluation residues — a plaintext operand is converted to evaluation
//!   form **once** at [`Evaluator::preencode`] (an [`EvalPlaintext`]
//!   caching both `Δ·m` and raw `m`) and reused by every later op;
//! * the Galois automorphism inside rotations is a cached index
//!   permutation of evaluation slots ([`crate::keys::GaloisKeys`] stores
//!   one per element);
//! * key switching transforms only the RNS *digits* of the switched
//!   polynomial (`k` inverse + `k²` forward NTTs) and then runs pointwise
//!   inner products against the NTT-resident key, Shoup-accelerated.
//!
//! Coefficient form appears in exactly three places: the digit
//! decomposition above, the base conversions inside [`Evaluator::multiply`],
//! and the final lift at decryption.
//!
//! # Multiplication
//!
//! Multiplication is exact and never leaves machine words: operands are
//! dropped to coefficient residues, extended from `Q` into the auxiliary
//! base `B` by exact centered mixed-radix conversion
//! ([`crate::rns::RnsBaseConverter`]), tensored per-prime over the combined
//! base `Q·B` (pointwise in the transform domain), and rescaled by `t/Q`
//! with exact rounding: `round(t·x/Q) = (t·x − [t·x]_Q)/Q` with the
//! centered remainder lifted `Q → B`, the division done via `Q⁻¹ mod b_j`,
//! and the result shrunk `B → Q`. This replaces the former per-coefficient
//! big-integer CRT reconstruction — the textbook BFV multiply with the
//! BEHZ-style all-RNS data flow, except that the mixed-radix conversions
//! are exact, so no approximation error is introduced.

use crate::encoding::{
    galois_element_for_column_swap, galois_element_for_rotation, EvalPlaintext, Plaintext,
};
use crate::encrypt::Ciphertext;
use crate::keys::{GaloisKeys, KeySwitchKey, RelinKey};
use crate::keyswitch::HoistedDecomposition;
use crate::ntt::{pointwise_mul_add_into, pointwise_mul_into};
use crate::params::BfvContext;
use crate::poly::{PolyForm, RingContext, RnsPoly};
use crate::pool::{PoolStats, ScratchPool};
use crate::zq::{mul_mod_shoup, sub_mod};

/// Evaluator over one context, with a private [`ScratchPool`] backing the
/// allocation-free hot path.
///
/// Every operation comes in two flavors: a pure function returning a fresh
/// ciphertext (`add`, `mul_plain`, `rotate_rows`, ...) and an in-place
/// `_assign` variant mutating its first operand (`add_assign`,
/// `mul_plain_assign`, `rotate_rows_assign`, ...). The `_assign` variants
/// plus cached [`EvalPlaintext`]s (see [`Evaluator::preencode`]) are the
/// hot path: after a warm-up call per operation shape they perform **zero**
/// heap allocations — temporaries come from the pool, and dead ciphertexts
/// can be returned to it with [`Evaluator::recycle`]. The pure variants are
/// `clone` + `_assign`, so both flavors are bit-identical.
///
/// The pool uses interior mutability, so an `Evaluator` is not `Sync`;
/// create one per worker thread over a shared context.
///
/// # Examples
///
/// ```
/// use bfv::{params::{BfvContext, BfvParams}, encoding::BatchEncoder,
///           keys::KeyGenerator, encrypt::{Encryptor, Decryptor}, evaluator::Evaluator};
/// use rand::SeedableRng;
///
/// let ctx = BfvContext::new(BfvParams::test_small())?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let kg = KeyGenerator::new(&ctx, &mut rng);
/// let enc = Encryptor::new(&ctx, kg.public_key(&mut rng));
/// let dec = Decryptor::new(&ctx, kg.secret_key().clone());
/// let coder = BatchEncoder::new(&ctx);
/// let ev = Evaluator::new(&ctx);
///
/// let mut a = enc.encrypt(&coder.encode(&[3, 4]), &mut rng);
/// let b = enc.encrypt(&coder.encode(&[10, 20]), &mut rng);
/// ev.add_assign(&mut a, &b);
/// assert_eq!(&coder.decode(&dec.decrypt(&a))[..2], &[13, 24]);
/// # Ok::<(), bfv::params::ParamError>(())
/// ```
#[derive(Debug)]
pub struct Evaluator<'a> {
    ctx: &'a BfvContext,
    pool: ScratchPool,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator with an empty scratch pool.
    pub fn new(ctx: &'a BfvContext) -> Self {
        Evaluator {
            ctx,
            pool: ScratchPool::new(),
        }
    }

    /// Allocation counters of the scratch pool — `fresh` staying constant
    /// across a window of operations proves the window allocated nothing
    /// (the allocation-regression tests pin exactly that).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Returns a dead ciphertext's buffers to the scratch pool so later
    /// operations reuse them instead of allocating. Callers that know a
    /// value's last use (e.g. the IR runner's liveness analysis) feed the
    /// steady state this way.
    pub fn recycle(&self, ct: Ciphertext) {
        let mut parts = ct.parts;
        for part in parts.drain(..) {
            self.pool.put_matrix(part.residues);
        }
        self.pool.put_parts(parts);
    }

    /// A pooled all-zero polynomial in evaluation form.
    fn take_poly_zeroed(&self) -> RnsPoly {
        let ring = self.ctx.ring();
        RnsPoly {
            residues: self
                .pool
                .take_matrix_zeroed(ring.num_primes(), ring.degree()),
            form: PolyForm::Eval,
        }
    }

    fn put_poly(&self, p: RnsPoly) {
        self.pool.put_matrix(p.residues);
    }

    /// Slot-wise sum of two ciphertexts. Mismatched sizes zero-pad the
    /// shorter operand (a missing part is the zero polynomial).
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let mut out = a.clone();
        self.add_assign(&mut out, b);
        out
    }

    /// `a += b` slot-wise, in place and allocation-free in the steady
    /// state (pool buffers pad `a` if `b` is larger).
    pub fn add_assign(&self, a: &mut Ciphertext, b: &Ciphertext) {
        self.zip_assign(a, b, RingContext::add_assign)
    }

    /// Slot-wise difference of two ciphertexts (same zero-padding contract
    /// as [`Evaluator::add`]).
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let mut out = a.clone();
        self.sub_assign(&mut out, b);
        out
    }

    /// `a -= b` slot-wise, in place (same contract as
    /// [`Evaluator::add_assign`]).
    pub fn sub_assign(&self, a: &mut Ciphertext, b: &Ciphertext) {
        self.zip_assign(a, b, RingContext::sub_assign)
    }

    fn zip_assign(
        &self,
        a: &mut Ciphertext,
        b: &Ciphertext,
        f: fn(&RingContext, &mut RnsPoly, &RnsPoly),
    ) {
        let ring = self.ctx.ring();
        // Extra parts of `a` combine with zero and are already correct;
        // extra parts of `b` need explicit zero-padding on `a`.
        while a.parts.len() < b.parts.len() {
            a.parts.push(self.take_poly_zeroed());
        }
        for (x, y) in a.parts.iter_mut().zip(&b.parts) {
            f(ring, x, y);
        }
    }

    /// Slot-wise negation.
    pub fn negate(&self, a: &Ciphertext) -> Ciphertext {
        let mut out = a.clone();
        self.negate_assign(&mut out);
        out
    }

    /// `a = -a` slot-wise, in place, allocation-free.
    pub fn negate_assign(&self, a: &mut Ciphertext) {
        let ring = self.ctx.ring();
        for p in a.parts.iter_mut() {
            ring.neg_assign(p);
        }
    }

    /// Lifts a plaintext into cached evaluation form for reuse across many
    /// operations — encode once, then feed the `_plain_assign` ops. See
    /// [`EvalPlaintext`].
    pub fn preencode(&self, pt: &Plaintext) -> EvalPlaintext {
        EvalPlaintext::new(self.ctx, pt)
    }

    /// Adds an encoded plaintext to a ciphertext (`c0 += Δ·m`). Encodes on
    /// the fly; for plaintexts used more than once, [`Evaluator::preencode`]
    /// + [`Evaluator::add_plain_assign`] skips the repeated transforms.
    pub fn add_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let mut out = a.clone();
        self.add_plain_assign(&mut out, &self.preencode(pt));
        out
    }

    /// `c0 += Δ·m` with a cached plaintext: one componentwise vector add,
    /// no transforms, no allocation.
    pub fn add_plain_assign(&self, a: &mut Ciphertext, pt: &EvalPlaintext) {
        self.ctx.ring().add_assign(&mut a.parts[0], &pt.delta_m);
    }

    /// Subtracts an encoded plaintext from a ciphertext (encodes on the
    /// fly; see [`Evaluator::sub_plain_assign`] for the cached path).
    pub fn sub_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let mut out = a.clone();
        self.sub_plain_assign(&mut out, &self.preencode(pt));
        out
    }

    /// `c0 -= Δ·m` with a cached plaintext (no transforms, no allocation).
    pub fn sub_plain_assign(&self, a: &mut Ciphertext, pt: &EvalPlaintext) {
        self.ctx.ring().sub_assign(&mut a.parts[0], &pt.delta_m);
    }

    /// Multiplies a ciphertext by an encoded plaintext (slot-wise).
    /// Encodes on the fly; see [`Evaluator::mul_plain_assign`] for the
    /// cached path.
    pub fn mul_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let mut out = a.clone();
        self.mul_plain_assign(&mut out, &self.preencode(pt));
        out
    }

    /// `a *= m` slot-wise with a cached plaintext: pointwise products on
    /// every part, no transforms, no allocation.
    pub fn mul_plain_assign(&self, a: &mut Ciphertext, pt: &EvalPlaintext) {
        let ring = self.ctx.ring();
        for p in a.parts.iter_mut() {
            ring.mul_assign(p, &pt.m);
        }
    }

    /// Ciphertext–ciphertext multiply, producing a size-3 ciphertext.
    /// Relinearize with [`Evaluator::relinearize`] before further rotations
    /// or multiplies.
    ///
    /// See the module docs for the RNS data flow; the result is exact
    /// (`round(t/Q · tensor)` with true nearest rounding).
    ///
    /// # Panics
    ///
    /// Panics if either input is not size 2.
    pub fn multiply(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        assert_eq!(
            a.size(),
            2,
            "multiply requires size-2 inputs (relinearize first)"
        );
        assert_eq!(
            b.size(),
            2,
            "multiply requires size-2 inputs (relinearize first)"
        );
        let ring = self.ctx.ring();
        let aux = self.ctx.aux_ring();
        let k = ring.num_primes();
        let l = aux.num_primes();
        let n = ring.degree();
        let pool = &self.pool;

        // Q-side operands: borrowed directly when already
        // evaluation-resident (the steady state); a coefficient-form
        // operand converts into a temporary on the cold path.
        let (mut s0, mut s1, mut s2, mut s3) = (None, None, None, None);
        let c0 = eval_ref(ring, &a.parts[0], &mut s0);
        let c1 = eval_ref(ring, &a.parts[1], &mut s1);
        let d0 = eval_ref(ring, &b.parts[0], &mut s2);
        let d1 = eval_ref(ring, &b.parts[1], &mut s3);

        // B-side extension of each part: centered base conversion of the
        // coefficients, then forward transforms — all in pooled buffers.
        let extend_aux = |p: &RnsPoly| -> Vec<Vec<u64>> {
            let mut coeff = pool.take_matrix(k, n);
            for ((i, row), src) in coeff.iter_mut().enumerate().zip(&p.residues) {
                row.copy_from_slice(src);
                if p.form() == PolyForm::Eval {
                    ring.ntt(i).inverse(row);
                }
            }
            let mut ext = pool.take_matrix(l, n);
            self.ctx
                .q_to_aux()
                .convert_centered_into(&coeff, pool, &mut ext);
            pool.put_matrix(coeff);
            for (j, r) in ext.iter_mut().enumerate() {
                aux.ntt(j).forward(r);
            }
            ext
        };
        let c0_aux = extend_aux(&a.parts[0]);
        let c1_aux = extend_aux(&a.parts[1]);
        let d0_aux = extend_aux(&b.parts[0]);
        let d1_aux = extend_aux(&b.parts[1]);

        // Tensor pointwise over the combined base, into pooled buffers:
        //   e0 = c0·d0, e1 = c0·d1 + c1·d0, e2 = c1·d1.
        let tensor_q = |x: &RnsPoly, y: &RnsPoly| -> Vec<Vec<u64>> {
            let mut out = pool.take_matrix(k, n);
            for (i, &bar) in ring.barretts().iter().enumerate() {
                pointwise_mul_into(&x.residues[i], &y.residues[i], bar, &mut out[i]);
            }
            out
        };
        let tensor_aux = |x: &[Vec<u64>], y: &[Vec<u64>]| -> Vec<Vec<u64>> {
            let mut out = pool.take_matrix(l, n);
            for (j, &bar) in aux.barretts().iter().enumerate() {
                pointwise_mul_into(&x[j], &y[j], bar, &mut out[j]);
            }
            out
        };
        let e0_q = tensor_q(c0, d0);
        let mut e1_q = tensor_q(c0, d1);
        for (i, &bar) in ring.barretts().iter().enumerate() {
            pointwise_mul_add_into(&mut e1_q[i], &c1.residues[i], &d0.residues[i], bar);
        }
        let e2_q = tensor_q(c1, d1);
        let e0_aux = tensor_aux(&c0_aux, &d0_aux);
        let mut e1_aux = tensor_aux(&c0_aux, &d1_aux);
        for (j, &bar) in aux.barretts().iter().enumerate() {
            pointwise_mul_add_into(&mut e1_aux[j], &c1_aux[j], &d0_aux[j], bar);
        }
        let e2_aux = tensor_aux(&c1_aux, &d1_aux);
        for m in [c0_aux, c1_aux, d0_aux, d1_aux] {
            pool.put_matrix(m);
        }

        // The outer part shell comes from the pool too, so a steady-state
        // multiply of recycled operands allocates nothing at all.
        let mut parts = pool.take_parts();
        parts.push(self.rescale(e0_q, e0_aux));
        parts.push(self.rescale(e1_q, e1_aux));
        parts.push(self.rescale(e2_q, e2_aux));
        Ciphertext { parts }
    }

    /// Rescales one tensor part: `y = (t·x − [t·x]_Q) / Q`, all in RNS and
    /// entirely in pooled buffers. Consumes (and recycles) both input
    /// matrices; the returned evaluation-form part owns a pooled matrix.
    fn rescale(&self, mut e_q: Vec<Vec<u64>>, mut e_aux: Vec<Vec<u64>>) -> RnsPoly {
        let ring = self.ctx.ring();
        let aux = self.ctx.aux_ring();
        let pool = &self.pool;
        for (i, r) in e_q.iter_mut().enumerate() {
            ring.ntt(i).inverse(r);
        }
        for (j, r) in e_aux.iter_mut().enumerate() {
            aux.ntt(j).inverse(r);
        }
        // s = t·x mod Q, scaled in place (the raw tensor part is dead),
        // then its centered remainder lifted Q → B.
        for ((r, &q), &(t_q, t_q_shoup)) in
            e_q.iter_mut().zip(ring.primes()).zip(self.ctx.t_mod_q())
        {
            for x in r.iter_mut() {
                *x = mul_mod_shoup(*x, t_q, t_q_shoup, q);
            }
        }
        let mut r_aux = pool.take_matrix(aux.num_primes(), aux.degree());
        self.ctx
            .q_to_aux()
            .convert_centered_into(&e_q, pool, &mut r_aux);
        pool.put_matrix(e_q);
        // y mod b_j = (t·x − r)·Q⁻¹ = x·(t·Q⁻¹) − r·Q⁻¹ mod b_j, two Shoup
        // multiplies per slot (constants precomputed on the context).
        for (j, yr) in e_aux.iter_mut().enumerate() {
            let b = aux.primes()[j];
            let (q_inv, q_inv_shoup) = self.ctx.q_inv_mod_aux()[j];
            let (tq, tq_shoup) = self.ctx.t_q_inv_mod_aux()[j];
            for (yc, &rc) in yr.iter_mut().zip(&r_aux[j]) {
                *yc = sub_mod(
                    mul_mod_shoup(*yc, tq, tq_shoup, b),
                    mul_mod_shoup(rc, q_inv, q_inv_shoup, b),
                    b,
                );
            }
        }
        pool.put_matrix(r_aux);
        // Shrink B → Q and return to evaluation form.
        let mut y_q = pool.take_matrix(ring.num_primes(), ring.degree());
        self.ctx
            .aux_to_q()
            .convert_centered_into(&e_aux, pool, &mut y_q);
        pool.put_matrix(e_aux);
        let mut out = RnsPoly {
            residues: y_q,
            form: PolyForm::Coeff,
        };
        ring.make_eval(&mut out);
        out
    }

    /// Key-switches polynomial `d` (under the source key of `ksk`) to the
    /// canonical secret, accumulating the two parts into caller-provided
    /// evaluation-form accumulators (pre-zeroed by the caller). Only the
    /// RNS digits of `d` are transformed; the key is NTT-resident with
    /// Shoup companions, so the inner products are pointwise Shoup
    /// multiplies. All scratch comes from the pool.
    fn key_switch_into(
        &self,
        d: &RnsPoly,
        ksk: &KeySwitchKey,
        acc_b: &mut RnsPoly,
        acc_a: &mut RnsPoly,
    ) {
        rlwe_ring::keyswitch::key_switch_into(self.ctx.ring(), &self.pool, d, ksk, acc_b, acc_a);
    }

    /// Relinearizes a size-3 ciphertext back to size 2.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is not size 3.
    pub fn relinearize(&self, a: &Ciphertext, rk: &RelinKey) -> Ciphertext {
        let mut out = a.clone();
        self.relinearize_assign(&mut out, rk);
        out
    }

    /// In-place relinearization: drops `c2`, folds its key switch into
    /// `c0`/`c1`, and recycles the dead part — allocation-free in the
    /// steady state.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is not size 3.
    pub fn relinearize_assign(&self, a: &mut Ciphertext, rk: &RelinKey) {
        assert_eq!(a.size(), 3, "relinearize expects a size-3 ciphertext");
        let ring = self.ctx.ring();
        let mut acc_b = self.take_poly_zeroed();
        let mut acc_a = self.take_poly_zeroed();
        let c2 = a.parts.pop().expect("size checked");
        self.key_switch_into(&c2, &rk.0, &mut acc_b, &mut acc_a);
        self.put_poly(c2);
        ring.add_assign(&mut a.parts[0], &acc_b);
        ring.add_assign(&mut a.parts[1], &acc_a);
        self.put_poly(acc_b);
        self.put_poly(acc_a);
    }

    /// Multiply then relinearize — the shape Porcupine's codegen emits for
    /// every ct×ct product.
    pub fn multiply_relin(&self, a: &Ciphertext, b: &Ciphertext, rk: &RelinKey) -> Ciphertext {
        let mut prod = self.multiply(a, b);
        self.relinearize_assign(&mut prod, rk);
        prod
    }

    /// Applies the Galois automorphism `x → x^g` homomorphically. In
    /// evaluation form the automorphism itself is a cached index
    /// permutation; only the key switch afterwards does modular work.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is not size 2 or no key for `g` is present.
    pub fn apply_galois(&self, a: &Ciphertext, g: u64, gk: &GaloisKeys) -> Ciphertext {
        let mut out = a.clone();
        self.apply_galois_assign(&mut out, g, gk);
        out
    }

    /// In-place Galois automorphism: permutes both parts through one
    /// pooled scratch row, key-switches `c1` into pooled accumulators, and
    /// recycles the dead part — allocation-free in the steady state.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is not size 2 or no key for `g` is present.
    pub fn apply_galois_assign(&self, a: &mut Ciphertext, g: u64, gk: &GaloisKeys) {
        assert_eq!(
            a.size(),
            2,
            "apply_galois expects size-2 (relinearize first)"
        );
        if g == 1 {
            return;
        }
        let ring = self.ctx.ring();
        let entry = gk
            .keys
            .get(&g)
            .unwrap_or_else(|| panic!("missing Galois key for element {g}"));
        let mut scratch = self.pool.take_row(ring.degree());
        for part in a.parts.iter_mut() {
            ring.make_eval(part);
            ring.apply_eval_permutation_assign(part, &entry.perm, &mut scratch);
        }
        self.pool.put_row(scratch);
        let mut acc_b = self.take_poly_zeroed();
        let mut acc_a = self.take_poly_zeroed();
        self.key_switch_into(&a.parts[1], &entry.key, &mut acc_b, &mut acc_a);
        ring.add_assign(&mut a.parts[0], &acc_b);
        self.put_poly(acc_b);
        let old_c1 = std::mem::replace(&mut a.parts[1], acc_a);
        self.put_poly(old_c1);
    }

    /// Rotates both batching rows left by `steps` (negative = right) —
    /// SEAL's `rotate_rows`. Any `i64` step is accepted; rotation is cyclic
    /// with period `N/2`.
    ///
    /// # Panics
    ///
    /// Panics if the required Galois key is missing.
    pub fn rotate_rows(&self, a: &Ciphertext, steps: i64, gk: &GaloisKeys) -> Ciphertext {
        let mut out = a.clone();
        self.rotate_rows_assign(&mut out, steps, gk);
        out
    }

    /// In-place [`Evaluator::rotate_rows`].
    ///
    /// # Panics
    ///
    /// Panics if the required Galois key is missing.
    pub fn rotate_rows_assign(&self, a: &mut Ciphertext, steps: i64, gk: &GaloisKeys) {
        let n = self.ctx.params().poly_degree;
        self.apply_galois_assign(a, galois_element_for_rotation(n, steps), gk)
    }

    /// Swaps the two batching rows — SEAL's `rotate_columns`.
    ///
    /// # Panics
    ///
    /// Panics if the required Galois key is missing.
    pub fn rotate_columns(&self, a: &Ciphertext, gk: &GaloisKeys) -> Ciphertext {
        let mut out = a.clone();
        self.rotate_columns_assign(&mut out, gk);
        out
    }

    /// In-place [`Evaluator::rotate_columns`].
    ///
    /// # Panics
    ///
    /// Panics if the required Galois key is missing.
    pub fn rotate_columns_assign(&self, a: &mut Ciphertext, gk: &GaloisKeys) {
        let n = self.ctx.params().poly_degree;
        self.apply_galois_assign(a, galois_element_for_column_swap(n), gk)
    }

    /// The decompose phase of a hoisted rotation: digit-decomposes `c1`
    /// once (`k` inverse + `k²` forward NTTs — the dominant cost of a
    /// rotation's key switch) so that any number of
    /// [`Evaluator::rotate_rows_hoisted`] calls on the same ciphertext can
    /// skip it. Return the decomposition with
    /// [`Evaluator::recycle_hoisted`] when the fan is done.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is not size 2.
    pub fn hoist(&self, a: &Ciphertext) -> HoistedDecomposition {
        assert_eq!(a.size(), 2, "hoist expects size-2 (relinearize first)");
        rlwe_ring::keyswitch::hoist_decompose(self.ctx.ring(), &self.pool, &a.parts[1])
    }

    /// Rotates rows by `steps` through a decomposition prepared by
    /// [`Evaluator::hoist`] on the *same* ciphertext: the stored digit rows
    /// are permuted by `σ_g` (a valid decomposition of `σ_g(c1)`, since the
    /// automorphism preserves the CRT identity and digit norms) and folded
    /// through the Galois key — per rotation only `k²` row permutations and
    /// `2k²` pointwise Shoup multiply-adds, no NTTs. Decrypts identically
    /// to [`Evaluator::rotate_rows`] with the same noise bound; the raw
    /// ciphertext bits differ (the permuted digits are not the canonical
    /// decomposition of the rotated polynomial).
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is not size 2 or the Galois key is missing.
    pub fn rotate_rows_hoisted(
        &self,
        a: &Ciphertext,
        hd: &HoistedDecomposition,
        steps: i64,
        gk: &GaloisKeys,
    ) -> Ciphertext {
        assert_eq!(a.size(), 2, "hoisted rotation expects size-2");
        let ring = self.ctx.ring();
        let n = self.ctx.params().poly_degree;
        let g = galois_element_for_rotation(n, steps);
        if g == 1 {
            return a.clone();
        }
        let entry = gk
            .keys
            .get(&g)
            .unwrap_or_else(|| panic!("missing Galois key for element {g}"));
        // σ_g(c0), straight into a pooled evaluation-form poly.
        let mut c0_store = None;
        let c0 = eval_ref(ring, &a.parts[0], &mut c0_store);
        let mut b = RnsPoly {
            residues: self.pool.take_matrix(ring.num_primes(), ring.degree()),
            form: PolyForm::Eval,
        };
        for (dst_row, src_row) in b.residues.iter_mut().zip(&c0.residues) {
            for (dst, &src) in dst_row.iter_mut().zip(&entry.perm) {
                *dst = src_row[src as usize];
            }
        }
        if let Some(p) = c0_store {
            self.put_poly(p);
        }
        let mut acc_b = self.take_poly_zeroed();
        let mut acc_a = self.take_poly_zeroed();
        rlwe_ring::keyswitch::key_switch_hoisted_into(
            ring,
            &self.pool,
            hd,
            Some(&entry.perm),
            &entry.key,
            &mut acc_b,
            &mut acc_a,
        );
        ring.add_assign(&mut b, &acc_b);
        self.put_poly(acc_b);
        let mut parts = self.pool.take_parts();
        parts.push(b);
        parts.push(acc_a);
        Ciphertext { parts }
    }

    /// Returns a hoisted decomposition's buffers to the scratch pool.
    pub fn recycle_hoisted(&self, hd: HoistedDecomposition) {
        hd.recycle(&self.pool);
    }
}

/// Borrows `p` if already evaluation-resident, otherwise converts into
/// `store` (cold path) and borrows that.
fn eval_ref<'p>(ring: &RingContext, p: &'p RnsPoly, store: &'p mut Option<RnsPoly>) -> &'p RnsPoly {
    if p.form() == PolyForm::Eval {
        p
    } else {
        &*store.insert(ring.to_eval(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::BatchEncoder;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::keys::KeyGenerator;
    use crate::params::BfvParams;
    use rand::SeedableRng;

    struct Fixture {
        ctx: BfvContext,
    }

    struct Session<'a> {
        encoder: BatchEncoder<'a>,
        enc: Encryptor<'a>,
        dec: Decryptor<'a>,
        ev: Evaluator<'a>,
        kg: KeyGenerator<'a>,
        rng: rand::rngs::StdRng,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                ctx: BfvContext::new(BfvParams::test_small()).unwrap(),
            }
        }

        fn session(&self) -> Session<'_> {
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xE7A1);
            let kg = KeyGenerator::new(&self.ctx, &mut rng);
            let enc = Encryptor::new(&self.ctx, kg.public_key(&mut rng));
            let dec = Decryptor::new(&self.ctx, kg.secret_key().clone());
            Session {
                encoder: BatchEncoder::new(&self.ctx),
                enc,
                dec,
                ev: Evaluator::new(&self.ctx),
                kg,
                rng,
            }
        }
    }

    #[test]
    fn homomorphic_add_sub_neg() {
        let f = Fixture::new();
        let mut s = f.session();
        let t = f.ctx.params().plain_modulus;
        let a = s.enc.encrypt(&s.encoder.encode(&[5, 7, 100]), &mut s.rng);
        let b = s.enc.encrypt(&s.encoder.encode(&[3, 9, 65530]), &mut s.rng);
        let sum = s.encoder.decode(&s.dec.decrypt(&s.ev.add(&a, &b)));
        assert_eq!(&sum[..3], &[8, 16, (100 + 65530) % t]);
        let diff = s.encoder.decode(&s.dec.decrypt(&s.ev.sub(&a, &b)));
        assert_eq!(&diff[..3], &[2, (t - 2) % t, (100 + t - 65530) % t]);
        let neg = s.encoder.decode(&s.dec.decrypt(&s.ev.negate(&a)));
        assert_eq!(&neg[..3], &[t - 5, t - 7, t - 100]);
    }

    #[test]
    fn plain_ops() {
        let f = Fixture::new();
        let mut s = f.session();
        let a = s.enc.encrypt(&s.encoder.encode(&[10, 20, 30]), &mut s.rng);
        let p = s.encoder.encode(&[1, 2, 3]);
        let added = s.encoder.decode(&s.dec.decrypt(&s.ev.add_plain(&a, &p)));
        assert_eq!(&added[..3], &[11, 22, 33]);
        let subbed = s.encoder.decode(&s.dec.decrypt(&s.ev.sub_plain(&a, &p)));
        assert_eq!(&subbed[..3], &[9, 18, 27]);
        let mulled = s.encoder.decode(&s.dec.decrypt(&s.ev.mul_plain(&a, &p)));
        assert_eq!(&mulled[..3], &[10, 40, 90]);
    }

    #[test]
    fn ciphertext_multiply_and_relinearize() {
        let f = Fixture::new();
        let mut s = f.session();
        let a = s.enc.encrypt(&s.encoder.encode(&[6, 7, 255]), &mut s.rng);
        let b = s.enc.encrypt(&s.encoder.encode(&[7, 8, 255]), &mut s.rng);
        let prod3 = s.ev.multiply(&a, &b);
        assert_eq!(prod3.size(), 3);
        // size-3 decrypts correctly
        let direct = s.encoder.decode(&s.dec.decrypt(&prod3));
        assert_eq!(&direct[..3], &[42, 56, 65025]);
        // relinearized decrypts correctly
        let rk = s.kg.relin_key(&mut s.rng);
        let prod2 = s.ev.relinearize(&prod3, &rk);
        assert_eq!(prod2.size(), 2);
        let relin = s.encoder.decode(&s.dec.decrypt(&prod2));
        assert_eq!(&relin[..3], &[42, 56, 65025]);
        assert!(s.dec.invariant_noise_budget(&prod2) > 0);
    }

    #[test]
    fn mixed_size_add_sub_zero_pad() {
        // Size-3 ⊕ size-2 treats the missing third part as zero, in both
        // argument orders — the zero-padding contract of `zip`.
        let f = Fixture::new();
        let mut s = f.session();
        let t = f.ctx.params().plain_modulus;
        let a = s.enc.encrypt(&s.encoder.encode(&[6, 7, 8]), &mut s.rng);
        let b = s.enc.encrypt(&s.encoder.encode(&[9, 10, 11]), &mut s.rng);
        let c = s
            .enc
            .encrypt(&s.encoder.encode(&[100, 200, 300]), &mut s.rng);
        let prod3 = s.ev.multiply(&a, &b); // size 3
        assert_eq!(prod3.size(), 3);

        let sum = s.ev.add(&prod3, &c);
        assert_eq!(sum.size(), 3);
        let got = s.encoder.decode(&s.dec.decrypt(&sum));
        assert_eq!(&got[..3], &[154, 270, 388]); // a·b + c

        let diff = s.ev.sub(&prod3, &c);
        assert_eq!(diff.size(), 3);
        let got = s.encoder.decode(&s.dec.decrypt(&diff));
        assert_eq!(
            &got[..3],
            &[(54 + t - 100) % t, (70 + t - 200) % t, (88 + t - 300) % t]
        );

        // size-2 minus size-3: the pad is on the left operand
        let diff = s.ev.sub(&c, &prod3);
        assert_eq!(diff.size(), 3);
        let got = s.encoder.decode(&s.dec.decrypt(&diff));
        assert_eq!(
            &got[..3],
            &[(100 + t - 54) % t, (200 + t - 70) % t, (300 + t - 88) % t]
        );
    }

    #[test]
    fn rotations_match_slot_semantics() {
        let f = Fixture::new();
        let mut s = f.session();
        let n = s.encoder.slot_count();
        let half = n / 2;
        let v: Vec<u64> = (0..n as u64).collect();
        let ct = s.enc.encrypt(&s.encoder.encode(&v), &mut s.rng);
        let gk = s.kg.galois_keys_for_rotations(&[1, -2], true, &mut s.rng);

        let left1 = s
            .encoder
            .decode(&s.dec.decrypt(&s.ev.rotate_rows(&ct, 1, &gk)));
        for i in 0..half {
            assert_eq!(left1[i], v[(i + 1) % half]);
            assert_eq!(left1[half + i], v[half + (i + 1) % half]);
        }
        let right2 = s
            .encoder
            .decode(&s.dec.decrypt(&s.ev.rotate_rows(&ct, -2, &gk)));
        for i in 0..half {
            assert_eq!(right2[i], v[(i + half - 2) % half]);
        }
        let swapped = s
            .encoder
            .decode(&s.dec.decrypt(&s.ev.rotate_columns(&ct, &gk)));
        for i in 0..half {
            assert_eq!(swapped[i], v[half + i]);
            assert_eq!(swapped[half + i], v[i]);
        }
    }

    #[test]
    fn rotation_of_zero_steps_is_identity() {
        let f = Fixture::new();
        let mut s = f.session();
        let ct = s.enc.encrypt(&s.encoder.encode(&[9, 8, 7]), &mut s.rng);
        let gk = s.kg.galois_keys(&[], &mut s.rng);
        let same = s.ev.rotate_rows(&ct, 0, &gk);
        assert_eq!(s.encoder.decode(&s.dec.decrypt(&same))[..3], [9, 8, 7]);
    }

    #[test]
    fn rotation_steps_wrap_modulo_row_size() {
        // rotate_rows(ct, k) == rotate_rows(ct, k mod N/2) for any i64 k,
        // including the former panic cases k = ±N/2 and beyond.
        let f = Fixture::new();
        let mut s = f.session();
        let n = s.encoder.slot_count();
        let half = (n / 2) as i64;
        let v: Vec<u64> = (0..n as u64).map(|i| (i * 3 + 1) % 65537).collect();
        let ct = s.enc.encrypt(&s.encoder.encode(&v), &mut s.rng);
        let gk =
            s.kg.galois_keys_for_rotations(&[0, 3, half - 2], false, &mut s.rng);
        for (big, small) in [
            (half, 0),
            (half + 3, 3),
            (2 * half + 3, 3),
            (-half, 0),
            (3 - half, 3),
            (-2 * half - 2, half - 2),
        ] {
            let a = s.ev.rotate_rows(&ct, big, &gk);
            let b = s.ev.rotate_rows(&ct, small, &gk);
            assert_eq!(
                s.encoder.decode(&s.dec.decrypt(&a)),
                s.encoder.decode(&s.dec.decrypt(&b)),
                "steps {big} vs {small}"
            );
        }
    }

    #[test]
    fn multiply_depth_two_survives() {
        let f = Fixture::new();
        let mut s = f.session();
        let rk = s.kg.relin_key(&mut s.rng);
        let a = s.enc.encrypt(&s.encoder.encode(&[3]), &mut s.rng);
        let sq = s.ev.multiply_relin(&a, &a, &rk);
        let quad = s.ev.multiply_relin(&sq, &sq, &rk);
        let out = s.encoder.decode(&s.dec.decrypt(&quad));
        assert_eq!(out[0], 81);
        let budget = s.dec.invariant_noise_budget(&quad);
        assert!(budget > 0, "depth-2 budget exhausted: {budget}");
    }

    #[test]
    fn noise_budget_decreases_monotonically() {
        let f = Fixture::new();
        let mut s = f.session();
        let rk = s.kg.relin_key(&mut s.rng);
        let a = s.enc.encrypt(&s.encoder.encode(&[2]), &mut s.rng);
        let fresh = s.dec.invariant_noise_budget(&a);
        let sq = s.ev.multiply_relin(&a, &a, &rk);
        let after_mul = s.dec.invariant_noise_budget(&sq);
        assert!(
            after_mul < fresh,
            "mul must consume budget ({fresh} -> {after_mul})"
        );
        let sum = s.ev.add(&sq, &sq);
        let after_add = s.dec.invariant_noise_budget(&sum);
        assert!(
            after_add <= after_mul + 1,
            "add grows noise additively only"
        );
    }
}
