//! Homomorphic evaluation: the SIMD instruction set Porcupine targets,
//! RNS-native end to end.
//!
//! Mirrors the SEAL evaluator surface the paper compiles to: ciphertext
//! add/sub/negate, plaintext add/sub/multiply, ciphertext multiply with
//! relinearization, and slot rotations via Galois automorphisms.
//!
//! # The double-CRT invariant
//!
//! Ciphertexts and keys stay in **evaluation (double-CRT) form**
//! ([`crate::poly::PolyForm::Eval`]) between operations, so the cheap ops
//! never touch an NTT:
//!
//! * `add`/`sub`/`negate` and the plaintext ops are componentwise on
//!   evaluation residues (`add_plain`/`sub_plain`/`mul_plain` pay only the
//!   forward transforms of the freshly encoded plaintext);
//! * the Galois automorphism inside rotations is a cached index
//!   permutation of evaluation slots ([`crate::keys::GaloisKeys`] stores
//!   one per element);
//! * key switching transforms only the RNS *digits* of the switched
//!   polynomial (`k` inverse + `k²` forward NTTs) and then runs pointwise
//!   inner products against the NTT-resident key, Shoup-accelerated.
//!
//! Coefficient form appears in exactly three places: the digit
//! decomposition above, the base conversions inside [`Evaluator::multiply`],
//! and the final lift at decryption.
//!
//! # Multiplication
//!
//! Multiplication is exact and never leaves machine words: operands are
//! dropped to coefficient residues, extended from `Q` into the auxiliary
//! base `B` by exact centered mixed-radix conversion
//! ([`crate::rns::RnsBaseConverter`]), tensored per-prime over the combined
//! base `Q·B` (pointwise in the transform domain), and rescaled by `t/Q`
//! with exact rounding: `round(t·x/Q) = (t·x − [t·x]_Q)/Q` with the
//! centered remainder lifted `Q → B`, the division done via `Q⁻¹ mod b_j`,
//! and the result shrunk `B → Q`. This replaces the former per-coefficient
//! big-integer CRT reconstruction — the textbook BFV multiply with the
//! BEHZ-style all-RNS data flow, except that the mixed-radix conversions
//! are exact, so no approximation error is introduced.

use crate::encoding::{galois_element_for_column_swap, galois_element_for_rotation, Plaintext};
use crate::encrypt::Ciphertext;
use crate::keys::{GaloisKeys, KeySwitchKey, RelinKey};
use crate::ntt::pointwise_mul;
use crate::params::BfvContext;
use crate::poly::{PolyForm, RnsPoly};
use crate::zq::{add_mod, mul_mod_shoup, sub_mod, Barrett};

/// Stateless evaluator over one context.
///
/// # Examples
///
/// ```
/// use bfv::{params::{BfvContext, BfvParams}, encoding::BatchEncoder,
///           keys::KeyGenerator, encrypt::{Encryptor, Decryptor}, evaluator::Evaluator};
/// use rand::SeedableRng;
///
/// let ctx = BfvContext::new(BfvParams::test_small())?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let kg = KeyGenerator::new(&ctx, &mut rng);
/// let enc = Encryptor::new(&ctx, kg.public_key(&mut rng));
/// let dec = Decryptor::new(&ctx, kg.secret_key().clone());
/// let coder = BatchEncoder::new(&ctx);
/// let ev = Evaluator::new(&ctx);
///
/// let a = enc.encrypt(&coder.encode(&[3, 4]), &mut rng);
/// let b = enc.encrypt(&coder.encode(&[10, 20]), &mut rng);
/// let sum = ev.add(&a, &b);
/// assert_eq!(&coder.decode(&dec.decrypt(&sum))[..2], &[13, 24]);
/// # Ok::<(), bfv::params::ParamError>(())
/// ```
#[derive(Debug)]
pub struct Evaluator<'a> {
    ctx: &'a BfvContext,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator.
    pub fn new(ctx: &'a BfvContext) -> Self {
        Evaluator { ctx }
    }

    /// Slot-wise sum of two ciphertexts. Mismatched sizes zero-pad the
    /// shorter operand (a missing part is the zero polynomial).
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.zip(a, b, |r, x, y| r.add(x, y))
    }

    /// Slot-wise difference of two ciphertexts (same zero-padding contract
    /// as [`Evaluator::add`]).
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.zip(a, b, |r, x, y| r.sub(x, y))
    }

    /// Slot-wise negation.
    pub fn negate(&self, a: &Ciphertext) -> Ciphertext {
        let ring = self.ctx.ring();
        Ciphertext {
            parts: a.parts.iter().map(|p| ring.neg(p)).collect(),
        }
    }

    fn zip(
        &self,
        a: &Ciphertext,
        b: &Ciphertext,
        f: impl Fn(&crate::poly::RingContext, &RnsPoly, &RnsPoly) -> RnsPoly,
    ) -> Ciphertext {
        let ring = self.ctx.ring();
        let len = a.parts.len().max(b.parts.len());
        let zero = ring.zero_eval();
        let parts = (0..len)
            .map(|i| {
                let x = a.parts.get(i).unwrap_or(&zero);
                let y = b.parts.get(i).unwrap_or(&zero);
                f(ring, x, y)
            })
            .collect();
        Ciphertext { parts }
    }

    /// Adds an encoded plaintext to a ciphertext (`c0 += Δ·m`).
    pub fn add_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let ring = self.ctx.ring();
        let m = ring.from_u64_coeffs(&pt.coeffs);
        let dm = ring.to_eval(&ring.mul_scalar_residues(&m, self.ctx.delta_residues()));
        let mut parts = a.parts.clone();
        parts[0] = ring.add(&parts[0], &dm);
        Ciphertext { parts }
    }

    /// Subtracts an encoded plaintext from a ciphertext.
    pub fn sub_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let ring = self.ctx.ring();
        let m = ring.from_u64_coeffs(&pt.coeffs);
        let dm = ring.to_eval(&ring.mul_scalar_residues(&m, self.ctx.delta_residues()));
        let mut parts = a.parts.clone();
        parts[0] = ring.sub(&parts[0], &dm);
        Ciphertext { parts }
    }

    /// Multiplies a ciphertext by an encoded plaintext (slot-wise). The
    /// plaintext is transformed once; both ciphertext parts then multiply
    /// pointwise.
    pub fn mul_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let ring = self.ctx.ring();
        let m = ring.to_eval(&ring.from_u64_coeffs(&pt.coeffs));
        Ciphertext {
            parts: a.parts.iter().map(|p| ring.mul(p, &m)).collect(),
        }
    }

    /// Ciphertext–ciphertext multiply, producing a size-3 ciphertext.
    /// Relinearize with [`Evaluator::relinearize`] before further rotations
    /// or multiplies.
    ///
    /// See the module docs for the RNS data flow; the result is exact
    /// (`round(t/Q · tensor)` with true nearest rounding).
    ///
    /// # Panics
    ///
    /// Panics if either input is not size 2.
    pub fn multiply(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        assert_eq!(
            a.size(),
            2,
            "multiply requires size-2 inputs (relinearize first)"
        );
        assert_eq!(
            b.size(),
            2,
            "multiply requires size-2 inputs (relinearize first)"
        );
        let ring = self.ctx.ring();
        let aux = self.ctx.aux_ring();
        let l = aux.num_primes();

        // Extend every operand part into the combined base Q ∪ B, in the
        // transform domain of each prime: over Q the input is already
        // evaluation-resident; over B we base-convert the centered
        // coefficients and transform.
        let extend = |p: &RnsPoly| -> (RnsPoly, Vec<Vec<u64>>) {
            let p_eval = ring.to_eval(p);
            let p_coeff = ring.to_coeff(p);
            let mut ext = self.ctx.q_to_aux().convert_centered(&p_coeff.residues);
            for (j, r) in ext.iter_mut().enumerate() {
                aux.ntt(j).forward(r);
            }
            (p_eval, ext)
        };
        let (c0, c0_aux) = extend(&a.parts[0]);
        let (c1, c1_aux) = extend(&a.parts[1]);
        let (d0, d0_aux) = extend(&b.parts[0]);
        let (d1, d1_aux) = extend(&b.parts[1]);

        // Tensor pointwise over the combined base:
        //   e0 = c0·d0, e1 = c0·d1 + c1·d0, e2 = c1·d1.
        let tensor_aux = |x: &[Vec<u64>], y: &[Vec<u64>]| -> Vec<Vec<u64>> {
            (0..l)
                .map(|j| pointwise_mul(&x[j], &y[j], aux.primes()[j]))
                .collect()
        };
        let add_aux = |mut x: Vec<Vec<u64>>, y: Vec<Vec<u64>>| -> Vec<Vec<u64>> {
            for (j, (xr, yr)) in x.iter_mut().zip(&y).enumerate() {
                let p = aux.primes()[j];
                for (xc, &yc) in xr.iter_mut().zip(yr) {
                    *xc = add_mod(*xc, yc, p);
                }
            }
            x
        };
        let e = [
            (ring.mul(&c0, &d0), tensor_aux(&c0_aux, &d0_aux)),
            (
                ring.add(&ring.mul(&c0, &d1), &ring.mul(&c1, &d0)),
                add_aux(tensor_aux(&c0_aux, &d1_aux), tensor_aux(&c1_aux, &d0_aux)),
            ),
            (ring.mul(&c1, &d1), tensor_aux(&c1_aux, &d1_aux)),
        ];

        // Rescale each tensor part: y = (t·x − [t·x]_Q) / Q, all in RNS.
        let parts = e
            .into_iter()
            .map(|(e_q, mut e_aux)| {
                let e_q = ring.to_coeff(&e_q);
                for (j, r) in e_aux.iter_mut().enumerate() {
                    aux.ntt(j).inverse(r);
                }
                // s = t·x mod Q, then its centered remainder lifted Q → B.
                let s: Vec<Vec<u64>> = e_q
                    .residues
                    .iter()
                    .zip(ring.primes())
                    .zip(self.ctx.t_mod_q())
                    .map(|((r, &q), &(t_q, t_q_shoup))| {
                        r.iter()
                            .map(|&x| mul_mod_shoup(x, t_q, t_q_shoup, q))
                            .collect()
                    })
                    .collect();
                let r_aux = self.ctx.q_to_aux().convert_centered(&s);
                // y mod b_j = (t·x − r)·Q⁻¹ = x·(t·Q⁻¹) − r·Q⁻¹ mod b_j,
                // two Shoup multiplies per slot (constants precomputed on
                // the context).
                let mut y_aux = e_aux;
                for (j, yr) in y_aux.iter_mut().enumerate() {
                    let b = aux.primes()[j];
                    let (q_inv, q_inv_shoup) = self.ctx.q_inv_mod_aux()[j];
                    let (tq, tq_shoup) = self.ctx.t_q_inv_mod_aux()[j];
                    for (yc, &rc) in yr.iter_mut().zip(&r_aux[j]) {
                        *yc = sub_mod(
                            mul_mod_shoup(*yc, tq, tq_shoup, b),
                            mul_mod_shoup(rc, q_inv, q_inv_shoup, b),
                            b,
                        );
                    }
                }
                // Shrink B → Q and return to evaluation form.
                let y_q = self.ctx.aux_to_q().convert_centered(&y_aux);
                let mut out = RnsPoly {
                    residues: y_q,
                    form: PolyForm::Coeff,
                };
                ring.make_eval(&mut out);
                out
            })
            .collect();
        Ciphertext { parts }
    }

    /// Key-switches polynomial `d` (under the source key of `ksk`) to the
    /// canonical secret, returning the two accumulated parts in evaluation
    /// form. Only the RNS digits of `d` are transformed; the key is
    /// NTT-resident with Shoup companions, so the inner products are
    /// pointwise Shoup multiplies.
    fn key_switch(&self, d: &RnsPoly, ksk: &KeySwitchKey) -> (RnsPoly, RnsPoly) {
        let ring = self.ctx.ring();
        let k = ring.num_primes();
        let n = ring.degree();
        let d_coeff = ring.to_coeff(d);
        let mut acc_b = ring.zero_eval();
        let mut acc_a = ring.zero_eval();
        let mut digit = vec![0u64; n];
        let reducers: Vec<Barrett> = ring.primes().iter().map(|&p| Barrett::new(p)).collect();
        for i in 0..k {
            let src = d_coeff.component(i);
            let (b_i, a_i) = &ksk.parts[i];
            let (b_shoup, a_shoup) = &ksk.shoup[i];
            for j in 0..k {
                let p = ring.primes()[j];
                if i == j {
                    digit.copy_from_slice(src);
                } else {
                    let bar = reducers[j];
                    for (dst, &x) in digit.iter_mut().zip(src) {
                        *dst = bar.reduce_u64(x);
                    }
                }
                ring.ntt(j).forward(&mut digit);
                let (bb, aa) = (&b_i.residues[j], &a_i.residues[j]);
                let (bs, asg) = (&b_shoup[j], &a_shoup[j]);
                let accb = &mut acc_b.residues[j];
                let acca = &mut acc_a.residues[j];
                for c in 0..n {
                    accb[c] = add_mod(accb[c], mul_mod_shoup(digit[c], bb[c], bs[c], p), p);
                    acca[c] = add_mod(acca[c], mul_mod_shoup(digit[c], aa[c], asg[c], p), p);
                }
            }
        }
        (acc_b, acc_a)
    }

    /// Relinearizes a size-3 ciphertext back to size 2.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is not size 3.
    pub fn relinearize(&self, a: &Ciphertext, rk: &RelinKey) -> Ciphertext {
        assert_eq!(a.size(), 3, "relinearize expects a size-3 ciphertext");
        let ring = self.ctx.ring();
        let (ks_b, ks_a) = self.key_switch(&a.parts[2], &rk.0);
        Ciphertext {
            parts: vec![ring.add(&a.parts[0], &ks_b), ring.add(&a.parts[1], &ks_a)],
        }
    }

    /// Multiply then relinearize — the shape Porcupine's codegen emits for
    /// every ct×ct product.
    pub fn multiply_relin(&self, a: &Ciphertext, b: &Ciphertext, rk: &RelinKey) -> Ciphertext {
        self.relinearize(&self.multiply(a, b), rk)
    }

    /// Applies the Galois automorphism `x → x^g` homomorphically. In
    /// evaluation form the automorphism itself is a cached index
    /// permutation; only the key switch afterwards does modular work.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is not size 2 or no key for `g` is present.
    pub fn apply_galois(&self, a: &Ciphertext, g: u64, gk: &GaloisKeys) -> Ciphertext {
        assert_eq!(
            a.size(),
            2,
            "apply_galois expects size-2 (relinearize first)"
        );
        if g == 1 {
            return a.clone();
        }
        let ring = self.ctx.ring();
        let entry = gk
            .keys
            .get(&g)
            .unwrap_or_else(|| panic!("missing Galois key for element {g}"));
        let c0 = ring.apply_eval_permutation(&ring.to_eval(&a.parts[0]), &entry.perm);
        let c1 = ring.apply_eval_permutation(&ring.to_eval(&a.parts[1]), &entry.perm);
        let (ks_b, ks_a) = self.key_switch(&c1, &entry.key);
        Ciphertext {
            parts: vec![ring.add(&c0, &ks_b), ks_a],
        }
    }

    /// Rotates both batching rows left by `steps` (negative = right) —
    /// SEAL's `rotate_rows`. Any `i64` step is accepted; rotation is cyclic
    /// with period `N/2`.
    ///
    /// # Panics
    ///
    /// Panics if the required Galois key is missing.
    pub fn rotate_rows(&self, a: &Ciphertext, steps: i64, gk: &GaloisKeys) -> Ciphertext {
        let n = self.ctx.params().poly_degree;
        self.apply_galois(a, galois_element_for_rotation(n, steps), gk)
    }

    /// Swaps the two batching rows — SEAL's `rotate_columns`.
    ///
    /// # Panics
    ///
    /// Panics if the required Galois key is missing.
    pub fn rotate_columns(&self, a: &Ciphertext, gk: &GaloisKeys) -> Ciphertext {
        let n = self.ctx.params().poly_degree;
        self.apply_galois(a, galois_element_for_column_swap(n), gk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::BatchEncoder;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::keys::KeyGenerator;
    use crate::params::BfvParams;
    use rand::SeedableRng;

    struct Fixture {
        ctx: BfvContext,
    }

    struct Session<'a> {
        encoder: BatchEncoder<'a>,
        enc: Encryptor<'a>,
        dec: Decryptor<'a>,
        ev: Evaluator<'a>,
        kg: KeyGenerator<'a>,
        rng: rand::rngs::StdRng,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                ctx: BfvContext::new(BfvParams::test_small()).unwrap(),
            }
        }

        fn session(&self) -> Session<'_> {
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xE7A1);
            let kg = KeyGenerator::new(&self.ctx, &mut rng);
            let enc = Encryptor::new(&self.ctx, kg.public_key(&mut rng));
            let dec = Decryptor::new(&self.ctx, kg.secret_key().clone());
            Session {
                encoder: BatchEncoder::new(&self.ctx),
                enc,
                dec,
                ev: Evaluator::new(&self.ctx),
                kg,
                rng,
            }
        }
    }

    #[test]
    fn homomorphic_add_sub_neg() {
        let f = Fixture::new();
        let mut s = f.session();
        let t = f.ctx.params().plain_modulus;
        let a = s.enc.encrypt(&s.encoder.encode(&[5, 7, 100]), &mut s.rng);
        let b = s.enc.encrypt(&s.encoder.encode(&[3, 9, 65530]), &mut s.rng);
        let sum = s.encoder.decode(&s.dec.decrypt(&s.ev.add(&a, &b)));
        assert_eq!(&sum[..3], &[8, 16, (100 + 65530) % t]);
        let diff = s.encoder.decode(&s.dec.decrypt(&s.ev.sub(&a, &b)));
        assert_eq!(&diff[..3], &[2, (t - 2) % t, (100 + t - 65530) % t]);
        let neg = s.encoder.decode(&s.dec.decrypt(&s.ev.negate(&a)));
        assert_eq!(&neg[..3], &[t - 5, t - 7, t - 100]);
    }

    #[test]
    fn plain_ops() {
        let f = Fixture::new();
        let mut s = f.session();
        let a = s.enc.encrypt(&s.encoder.encode(&[10, 20, 30]), &mut s.rng);
        let p = s.encoder.encode(&[1, 2, 3]);
        let added = s.encoder.decode(&s.dec.decrypt(&s.ev.add_plain(&a, &p)));
        assert_eq!(&added[..3], &[11, 22, 33]);
        let subbed = s.encoder.decode(&s.dec.decrypt(&s.ev.sub_plain(&a, &p)));
        assert_eq!(&subbed[..3], &[9, 18, 27]);
        let mulled = s.encoder.decode(&s.dec.decrypt(&s.ev.mul_plain(&a, &p)));
        assert_eq!(&mulled[..3], &[10, 40, 90]);
    }

    #[test]
    fn ciphertext_multiply_and_relinearize() {
        let f = Fixture::new();
        let mut s = f.session();
        let a = s.enc.encrypt(&s.encoder.encode(&[6, 7, 255]), &mut s.rng);
        let b = s.enc.encrypt(&s.encoder.encode(&[7, 8, 255]), &mut s.rng);
        let prod3 = s.ev.multiply(&a, &b);
        assert_eq!(prod3.size(), 3);
        // size-3 decrypts correctly
        let direct = s.encoder.decode(&s.dec.decrypt(&prod3));
        assert_eq!(&direct[..3], &[42, 56, 65025]);
        // relinearized decrypts correctly
        let rk = s.kg.relin_key(&mut s.rng);
        let prod2 = s.ev.relinearize(&prod3, &rk);
        assert_eq!(prod2.size(), 2);
        let relin = s.encoder.decode(&s.dec.decrypt(&prod2));
        assert_eq!(&relin[..3], &[42, 56, 65025]);
        assert!(s.dec.invariant_noise_budget(&prod2) > 0);
    }

    #[test]
    fn mixed_size_add_sub_zero_pad() {
        // Size-3 ⊕ size-2 treats the missing third part as zero, in both
        // argument orders — the zero-padding contract of `zip`.
        let f = Fixture::new();
        let mut s = f.session();
        let t = f.ctx.params().plain_modulus;
        let a = s.enc.encrypt(&s.encoder.encode(&[6, 7, 8]), &mut s.rng);
        let b = s.enc.encrypt(&s.encoder.encode(&[9, 10, 11]), &mut s.rng);
        let c = s
            .enc
            .encrypt(&s.encoder.encode(&[100, 200, 300]), &mut s.rng);
        let prod3 = s.ev.multiply(&a, &b); // size 3
        assert_eq!(prod3.size(), 3);

        let sum = s.ev.add(&prod3, &c);
        assert_eq!(sum.size(), 3);
        let got = s.encoder.decode(&s.dec.decrypt(&sum));
        assert_eq!(&got[..3], &[154, 270, 388]); // a·b + c

        let diff = s.ev.sub(&prod3, &c);
        assert_eq!(diff.size(), 3);
        let got = s.encoder.decode(&s.dec.decrypt(&diff));
        assert_eq!(
            &got[..3],
            &[(54 + t - 100) % t, (70 + t - 200) % t, (88 + t - 300) % t]
        );

        // size-2 minus size-3: the pad is on the left operand
        let diff = s.ev.sub(&c, &prod3);
        assert_eq!(diff.size(), 3);
        let got = s.encoder.decode(&s.dec.decrypt(&diff));
        assert_eq!(
            &got[..3],
            &[(100 + t - 54) % t, (200 + t - 70) % t, (300 + t - 88) % t]
        );
    }

    #[test]
    fn rotations_match_slot_semantics() {
        let f = Fixture::new();
        let mut s = f.session();
        let n = s.encoder.slot_count();
        let half = n / 2;
        let v: Vec<u64> = (0..n as u64).collect();
        let ct = s.enc.encrypt(&s.encoder.encode(&v), &mut s.rng);
        let gk = s.kg.galois_keys_for_rotations(&[1, -2], true, &mut s.rng);

        let left1 = s
            .encoder
            .decode(&s.dec.decrypt(&s.ev.rotate_rows(&ct, 1, &gk)));
        for i in 0..half {
            assert_eq!(left1[i], v[(i + 1) % half]);
            assert_eq!(left1[half + i], v[half + (i + 1) % half]);
        }
        let right2 = s
            .encoder
            .decode(&s.dec.decrypt(&s.ev.rotate_rows(&ct, -2, &gk)));
        for i in 0..half {
            assert_eq!(right2[i], v[(i + half - 2) % half]);
        }
        let swapped = s
            .encoder
            .decode(&s.dec.decrypt(&s.ev.rotate_columns(&ct, &gk)));
        for i in 0..half {
            assert_eq!(swapped[i], v[half + i]);
            assert_eq!(swapped[half + i], v[i]);
        }
    }

    #[test]
    fn rotation_of_zero_steps_is_identity() {
        let f = Fixture::new();
        let mut s = f.session();
        let ct = s.enc.encrypt(&s.encoder.encode(&[9, 8, 7]), &mut s.rng);
        let gk = s.kg.galois_keys(&[], &mut s.rng);
        let same = s.ev.rotate_rows(&ct, 0, &gk);
        assert_eq!(s.encoder.decode(&s.dec.decrypt(&same))[..3], [9, 8, 7]);
    }

    #[test]
    fn rotation_steps_wrap_modulo_row_size() {
        // rotate_rows(ct, k) == rotate_rows(ct, k mod N/2) for any i64 k,
        // including the former panic cases k = ±N/2 and beyond.
        let f = Fixture::new();
        let mut s = f.session();
        let n = s.encoder.slot_count();
        let half = (n / 2) as i64;
        let v: Vec<u64> = (0..n as u64).map(|i| (i * 3 + 1) % 65537).collect();
        let ct = s.enc.encrypt(&s.encoder.encode(&v), &mut s.rng);
        let gk =
            s.kg.galois_keys_for_rotations(&[0, 3, half - 2], false, &mut s.rng);
        for (big, small) in [
            (half, 0),
            (half + 3, 3),
            (2 * half + 3, 3),
            (-half, 0),
            (3 - half, 3),
            (-2 * half - 2, half - 2),
        ] {
            let a = s.ev.rotate_rows(&ct, big, &gk);
            let b = s.ev.rotate_rows(&ct, small, &gk);
            assert_eq!(
                s.encoder.decode(&s.dec.decrypt(&a)),
                s.encoder.decode(&s.dec.decrypt(&b)),
                "steps {big} vs {small}"
            );
        }
    }

    #[test]
    fn multiply_depth_two_survives() {
        let f = Fixture::new();
        let mut s = f.session();
        let rk = s.kg.relin_key(&mut s.rng);
        let a = s.enc.encrypt(&s.encoder.encode(&[3]), &mut s.rng);
        let sq = s.ev.multiply_relin(&a, &a, &rk);
        let quad = s.ev.multiply_relin(&sq, &sq, &rk);
        let out = s.encoder.decode(&s.dec.decrypt(&quad));
        assert_eq!(out[0], 81);
        let budget = s.dec.invariant_noise_budget(&quad);
        assert!(budget > 0, "depth-2 budget exhausted: {budget}");
    }

    #[test]
    fn noise_budget_decreases_monotonically() {
        let f = Fixture::new();
        let mut s = f.session();
        let rk = s.kg.relin_key(&mut s.rng);
        let a = s.enc.encrypt(&s.encoder.encode(&[2]), &mut s.rng);
        let fresh = s.dec.invariant_noise_budget(&a);
        let sq = s.ev.multiply_relin(&a, &a, &rk);
        let after_mul = s.dec.invariant_noise_budget(&sq);
        assert!(
            after_mul < fresh,
            "mul must consume budget ({fresh} -> {after_mul})"
        );
        let sum = s.ev.add(&sq, &sq);
        let after_add = s.dec.invariant_noise_budget(&sum);
        assert!(
            after_add <= after_mul + 1,
            "add grows noise additively only"
        );
    }
}
