//! BFV parameter sets, the shared evaluation context, and noise-aware
//! automatic parameter selection ([`ParamSelector`]).

use crate::bigint::BigUint;
use crate::noise::{NoiseModel, NoiseReport};
use crate::ntt::NttTables;
use crate::poly::RingContext;
use crate::rns::{RnsBaseConverter, RnsContext};
use crate::zq;
use quill::program::Program;
use std::error::Error;
use std::fmt;

/// Errors from parameter validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// `N` is not a power of two in the supported range.
    BadDegree(usize),
    /// The plaintext modulus is not a batching-compatible prime.
    BadPlainModulus(u64),
    /// A ciphertext modulus prime is invalid for this `N`.
    BadPrime(u64),
    /// The same prime appears twice in the ciphertext chain (CRT needs
    /// pairwise-coprime moduli; a duplicate used to panic inside the RNS
    /// setup).
    DuplicatePrime(u64),
    /// The plaintext modulus is not coprime to the ciphertext modulus (it
    /// appears in the chain), which breaks the `Δ = ⌊Q/t⌋` encoding.
    PlainNotCoprime(u64),
    /// Fewer than two RNS primes (RNS-decomposition key switching needs ≥ 2).
    TooFewPrimes(usize),
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::BadDegree(n) => {
                write!(
                    f,
                    "polynomial degree {n} must be a power of two in [16, 32768]"
                )
            }
            ParamError::BadPlainModulus(t) => write!(
                f,
                "plaintext modulus {t} must be a prime congruent to 1 mod 2N for batching"
            ),
            ParamError::BadPrime(p) => {
                write!(f, "ciphertext modulus prime {p} must be prime and 1 mod 2N")
            }
            ParamError::DuplicatePrime(p) => {
                write!(f, "ciphertext modulus prime {p} appears more than once")
            }
            ParamError::PlainNotCoprime(t) => write!(
                f,
                "plaintext modulus {t} must be coprime to the ciphertext modulus chain"
            ),
            ParamError::TooFewPrimes(k) => {
                write!(f, "need at least 2 RNS primes for key switching, got {k}")
            }
        }
    }
}

impl Error for ParamError {}

/// A BFV parameter set: ring degree, plaintext modulus, and the RNS
/// ciphertext modulus chain.
///
/// # Examples
///
/// ```
/// use bfv::params::BfvParams;
///
/// let params = BfvParams::test_small();
/// assert!(params.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfvParams {
    /// Ring degree `N` (a power of two). Ciphertexts hold `N` slots arranged
    /// as a 2 × N/2 matrix.
    pub poly_degree: usize,
    /// Plaintext modulus `t` (prime, `t ≡ 1 mod 2N`).
    pub plain_modulus: u64,
    /// RNS ciphertext primes `q_i` (each `≡ 1 mod 2N`).
    pub moduli: Vec<u64>,
}

impl BfvParams {
    /// Generates a parameter set with `count` fresh primes of `bits` bits.
    ///
    /// # Errors
    ///
    /// Returns an error if the resulting set fails [`BfvParams::validate`].
    pub fn generate(
        poly_degree: usize,
        plain_modulus: u64,
        bits: u32,
        count: usize,
    ) -> Result<Self, ParamError> {
        if !poly_degree.is_power_of_two() || !(16..=32768).contains(&poly_degree) {
            return Err(ParamError::BadDegree(poly_degree));
        }
        let moduli = zq::ntt_primes(bits, 2 * poly_degree as u64, count, &[plain_modulus]);
        let params = BfvParams {
            poly_degree,
            plain_modulus,
            moduli,
        };
        params.validate()?;
        Ok(params)
    }

    /// Small parameters for unit tests: `N = 1024`, `t = 65537`, 3 × 45-bit
    /// primes. **Toy security** — fast, not safe.
    pub fn test_small() -> Self {
        BfvParams::generate(1024, 65537, 45, 3).expect("static parameters are valid")
    }

    /// Mid-size parameters used by the synthesis-to-backend integration
    /// tests: `N = 4096`, `t = 65537`, 3 × 46-bit primes (`Q ≈ 138` bits).
    /// At `N = 4096` the homomorphic-encryption standard allows ~109 bits for
    /// 128-bit security, so this set trades security margin for speed; use
    /// [`BfvParams::secure_128`] for benchmark-grade settings.
    pub fn fast_4096() -> Self {
        BfvParams::generate(4096, 65537, 46, 3).expect("static parameters are valid")
    }

    /// Benchmark parameters mirroring the paper's SEAL settings: `N = 8192`,
    /// `t = 65537`, 4 × 50-bit primes (`Q = 200` bits ≤ the 218-bit bound for
    /// 128-bit security at `N = 8192` from the HE security standard).
    pub fn secure_128() -> Self {
        BfvParams::generate(8192, 65537, 50, 4).expect("static parameters are valid")
    }

    /// The fixed parameter set the paper evaluates every kernel under
    /// (alias of [`BfvParams::secure_128`]) — the baseline the automatic
    /// selector ([`ParamSelector`]) replaces.
    pub fn paper() -> Self {
        BfvParams::secure_128()
    }

    /// Checks all structural requirements.
    ///
    /// # Errors
    ///
    /// Returns the first violated requirement.
    pub fn validate(&self) -> Result<(), ParamError> {
        let n = self.poly_degree;
        if !n.is_power_of_two() || !(16..=32768).contains(&n) {
            return Err(ParamError::BadDegree(n));
        }
        let two_n = 2 * n as u64;
        let t = self.plain_modulus;
        if !zq::is_prime(t) || !(t - 1).is_multiple_of(two_n) {
            return Err(ParamError::BadPlainModulus(t));
        }
        if self.moduli.len() < 2 {
            return Err(ParamError::TooFewPrimes(self.moduli.len()));
        }
        for (i, &q) in self.moduli.iter().enumerate() {
            if !zq::is_prime(q) || (q - 1) % two_n != 0 {
                return Err(ParamError::BadPrime(q));
            }
            if q == t {
                return Err(ParamError::PlainNotCoprime(t));
            }
            if self.moduli[..i].contains(&q) {
                return Err(ParamError::DuplicatePrime(q));
            }
        }
        Ok(())
    }

    /// Number of SIMD slots (`N`; arranged as two rows of `N/2`).
    pub fn slot_count(&self) -> usize {
        self.poly_degree
    }

    /// Slots per batching row (`N / 2`) — the unit `rotate_rows` acts on.
    pub fn row_size(&self) -> usize {
        self.poly_degree / 2
    }
}

/// Default safety margin for automatic parameter selection: the selected
/// set must leave at least this many bits of predicted noise budget at
/// decryption.
pub const DEFAULT_MARGIN_BITS: f64 = 10.0;

/// How the compiler obtains BFV parameters for a program.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamPolicy {
    /// Select the smallest satisfying set from the candidate table via the
    /// static noise analysis ([`ParamSelector`]).
    Auto {
        /// Required predicted budget (bits) left at decryption.
        margin_bits: f64,
    },
    /// Use a caller-supplied parameter set unconditionally.
    Fixed(BfvParams),
}

impl Default for ParamPolicy {
    fn default() -> Self {
        ParamPolicy::auto()
    }
}

impl ParamPolicy {
    /// Automatic selection with the default margin.
    pub fn auto() -> Self {
        ParamPolicy::Auto {
            margin_bits: DEFAULT_MARGIN_BITS,
        }
    }

    /// Resolves the policy for a lowered program that needs `min_slots`
    /// batching slots per row and plaintext modulus `t`.
    ///
    /// # Errors
    ///
    /// [`SelectError`] if no candidate satisfies an `Auto` policy, or if a
    /// `Fixed` set fails validation / has too few slots.
    pub fn resolve(
        &self,
        prog: &Program,
        min_slots: usize,
        t: u64,
    ) -> Result<BfvParams, SelectError> {
        match self {
            ParamPolicy::Auto { margin_bits } => ParamSelector::new(t)
                .with_margin_bits(*margin_bits)
                .select(prog, min_slots)
                .map(|s| s.params),
            ParamPolicy::Fixed(params) => {
                params
                    .validate()
                    .map_err(|e| SelectError::BadFixedParams(e.to_string()))?;
                if params.row_size() < min_slots || params.plain_modulus != t {
                    return Err(SelectError::BadFixedParams(format!(
                        "fixed set (N = {}, t = {}) cannot hold {min_slots} slots of a \
                         t = {t} program",
                        params.poly_degree, params.plain_modulus
                    )));
                }
                Ok(params.clone())
            }
        }
    }
}

/// Why automatic parameter selection failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectError {
    /// No candidate in the table satisfies the noise bound with the
    /// requested margin (the program is too deep, or needs too many slots).
    NoCandidate {
        /// The requested margin.
        margin_bits: f64,
        /// Slots the program needs per batching row.
        min_slots: usize,
        /// Best predicted remaining budget over all size-compatible
        /// candidates, with the `N` that achieved it.
        best: Option<(usize, f64)>,
    },
    /// The plaintext modulus is incompatible with every candidate degree
    /// (`t` must be prime and `≡ 1 mod 2N`).
    UnsupportedPlainModulus(u64),
    /// A `Fixed` policy carried an unusable parameter set.
    BadFixedParams(String),
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectError::NoCandidate {
                margin_bits,
                min_slots,
                best,
            } => {
                write!(
                    f,
                    "no candidate parameter set leaves {margin_bits} bits of noise budget \
                     with {min_slots} slots"
                )?;
                if let Some((n, remaining)) = best {
                    write!(f, " (best: N = {n} with {remaining:.1} bits remaining)")?;
                }
                Ok(())
            }
            SelectError::UnsupportedPlainModulus(t) => {
                write!(
                    f,
                    "plaintext modulus {t} is incompatible with every candidate degree"
                )
            }
            SelectError::BadFixedParams(why) => write!(f, "fixed parameter set unusable: {why}"),
        }
    }
}

impl Error for SelectError {}

/// One row of the candidate table: `count` fresh primes of `bits` bits at
/// degree `poly_degree`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Candidate {
    poly_degree: usize,
    prime_bits: u32,
    count: usize,
}

/// Noise-aware automatic parameter selection.
///
/// Given a *lowered* program (post `-O`, explicit relinearizations), the
/// selector walks a table of NTT-friendly candidate parameter sets in
/// ascending cost order (degree first, then total modulus size — key
/// switching and NTTs scale with `N·log N·k²`, so smaller `N` wins) and
/// returns the first set whose worst-case predicted noise budget
/// ([`NoiseModel`]) leaves at least the configured safety margin at
/// decryption, and whose batching rows hold the program's slots.
///
/// Because the noise model is a sound upper bound, the selected set is
/// *certified*: the measured budget at decryption is at least the margin.
///
/// **Security caveat**: like the rest of this crate, the table trades
/// lattice-security margin for speed at small degrees (the sub-`N = 8192`
/// rows mirror the repo's test presets). The `N = 8192` row equals
/// [`BfvParams::paper`].
///
/// # Examples
///
/// ```
/// use bfv::params::ParamSelector;
/// use quill::program::{Instr, Program, ValRef};
///
/// // A rotate-and-add kernel needs only a small set...
/// let shallow = Program::new(
///     "pairsum", 1, 0,
///     vec![
///         Instr::RotCt(ValRef::Input(0), 1),
///         Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
///     ],
///     ValRef::Instr(1),
/// );
/// let sel = ParamSelector::new(65537);
/// let small = sel.select(&shallow, 8).unwrap();
/// // ...and deeper programs force a larger modulus chain.
/// let square = Program::new(
///     "square", 1, 0,
///     vec![
///         Instr::MulCtCt(ValRef::Input(0), ValRef::Input(0)),
///         Instr::Relin(ValRef::Instr(0)),
///     ],
///     ValRef::Instr(1),
/// );
/// let larger = sel.select(&square, 8).unwrap();
/// let q_bits = |p: &bfv::params::BfvParams| p.moduli.iter()
///     .map(|&q| 64 - q.leading_zeros()).sum::<u32>();
/// assert!(q_bits(&larger.params) >= q_bits(&small.params));
/// ```
#[derive(Debug, Clone)]
pub struct ParamSelector {
    plain_modulus: u64,
    margin_bits: f64,
}

/// A successful selection: the parameters plus the analysis that
/// certified them.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// The smallest satisfying parameter set.
    pub params: BfvParams,
    /// The noise analysis of the program under `params`.
    pub report: NoiseReport,
    /// How many size-compatible candidates were rejected first.
    pub candidates_tried: usize,
}

impl ParamSelector {
    /// The candidate table, ascending by degree then total modulus bits.
    /// Prime sizes stay ≥ 45 bits: RNS-decomposition key switching adds
    /// noise proportional to the *largest* chain prime over `Q`, so chains
    /// of few large primes beat many small ones.
    const CANDIDATES: &'static [Candidate] = &[
        Candidate {
            poly_degree: 1024,
            prime_bits: 45,
            count: 2,
        },
        Candidate {
            poly_degree: 1024,
            prime_bits: 45,
            count: 3,
        },
        Candidate {
            poly_degree: 2048,
            prime_bits: 46,
            count: 3,
        },
        Candidate {
            poly_degree: 4096,
            prime_bits: 46,
            count: 3,
        },
        Candidate {
            poly_degree: 4096,
            prime_bits: 46,
            count: 4,
        },
        Candidate {
            poly_degree: 8192,
            prime_bits: 50,
            count: 4,
        },
        Candidate {
            poly_degree: 8192,
            prime_bits: 50,
            count: 5,
        },
        Candidate {
            poly_degree: 8192,
            prime_bits: 53,
            count: 6,
        },
        Candidate {
            poly_degree: 16384,
            prime_bits: 55,
            count: 7,
        },
        Candidate {
            poly_degree: 16384,
            prime_bits: 55,
            count: 9,
        },
    ];

    /// A selector for plaintext modulus `t` with the default margin.
    pub fn new(plain_modulus: u64) -> Self {
        ParamSelector {
            plain_modulus,
            margin_bits: DEFAULT_MARGIN_BITS,
        }
    }

    /// Overrides the safety margin.
    pub fn with_margin_bits(mut self, margin_bits: f64) -> Self {
        self.margin_bits = margin_bits;
        self
    }

    /// Selects the smallest satisfying parameter set for a lowered program
    /// that needs `min_slots` slots per batching row.
    ///
    /// # Errors
    ///
    /// See [`SelectError`].
    pub fn select(&self, prog: &Program, min_slots: usize) -> Result<Selection, SelectError> {
        let t = self.plain_modulus;
        let mut best: Option<(usize, f64)> = None;
        let mut tried = 0usize;
        let mut any_compatible = false;
        for cand in Self::CANDIDATES {
            let two_n = 2 * cand.poly_degree as u64;
            if cand.poly_degree / 2 < min_slots
                || !zq::is_prime(t)
                || !(t - 1).is_multiple_of(two_n)
            {
                continue;
            }
            any_compatible = true;
            let params = BfvParams::generate(cand.poly_degree, t, cand.prime_bits, cand.count)
                .expect("table candidates are valid");
            let report = NoiseModel::for_params(&params).analyze(prog);
            if report.predicted_budget_bits >= self.margin_bits {
                return Ok(Selection {
                    params,
                    report,
                    candidates_tried: tried,
                });
            }
            tried += 1;
            if best.is_none_or(|(_, b)| report.predicted_budget_bits > b) {
                best = Some((cand.poly_degree, report.predicted_budget_bits));
            }
        }
        if !any_compatible && best.is_none() {
            // Distinguish "t can never batch" from "table exhausted".
            let t_fits_somewhere = Self::CANDIDATES
                .iter()
                .any(|c| zq::is_prime(t) && (t - 1).is_multiple_of(2 * c.poly_degree as u64));
            if !t_fits_somewhere {
                return Err(SelectError::UnsupportedPlainModulus(t));
            }
        }
        Err(SelectError::NoCandidate {
            margin_bits: self.margin_bits,
            min_slots,
            best,
        })
    }
}

/// Shared precomputation for one parameter set: the ciphertext ring, the
/// auxiliary multiplication base with its exact base converters, the
/// rescale constants, plaintext-side constants, and the batching NTT.
/// Create once, share by reference everywhere.
#[derive(Debug)]
pub struct BfvContext {
    params: BfvParams,
    ring: RingContext,
    /// Auxiliary base `B` extending `Q` for the RNS tensor: the combined
    /// base satisfies `Q·B > 4·N·(Q/2)²` so degree-2 tensor coefficients
    /// are exact, and `B > t·N·Q` so the rescaled product fits `B` alone.
    aux_ring: RingContext,
    /// Exact centered conversion `Q → B` (operand extension, and the
    /// `t·x mod Q` remainder lift inside the rescale).
    q_to_aux: RnsBaseConverter,
    /// Exact centered conversion `B → Q` (shrinking the rescaled product).
    aux_to_q: RnsBaseConverter,
    /// `Q⁻¹ mod b_j` — the exact division by `Q` in the rescale — with its
    /// Shoup companion.
    q_inv_mod_aux: Vec<(u64, u64)>,
    /// `t·Q⁻¹ mod b_j` with its Shoup companion (the fused multiplier of
    /// the rescale's `x·(t·Q⁻¹)` term).
    t_q_inv_mod_aux: Vec<(u64, u64)>,
    /// `t mod q_i` with its Shoup companion (the `t·x mod Q` scaling).
    t_mod_q: Vec<(u64, u64)>,
    /// `t mod b_j`.
    t_mod_aux: Vec<u64>,
    /// NTT over `Z_t` used by the batch encoder.
    plain_ntt: NttTables,
    /// `Δ = floor(Q / t)`.
    delta: BigUint,
    /// `Δ mod q_i`.
    delta_residues: Vec<u64>,
    /// `Q mod t`.
    q_mod_t: u64,
}

impl BfvContext {
    /// Builds a context.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameters are invalid.
    pub fn new(params: BfvParams) -> Result<Self, ParamError> {
        params.validate()?;
        let n = params.poly_degree;
        let ring = RingContext::new(n, params.moduli.clone());

        // The tensor runs over the combined base Q·B, so B itself only
        // needs q_bits + log2(N) + t_bits + slack bits: the binding
        // constraint is holding the rescaled product y = round(t·x/Q)
        // (|y| ≤ t·N·Q/2) in B alone, which dominates the exactness
        // requirement Q·B > 4·N·(Q/2)² = N·Q².
        let q_bits = ring.modulus().bits() as u64;
        let t_bits = u64::from(64 - params.plain_modulus.leading_zeros());
        let aux_bits_needed = q_bits + t_bits + u64::from((n as u64).trailing_zeros()) + 2;
        // 60-bit auxiliary primes minimize the prime count (fewer NTTs on
        // the multiply hot path); Barrett/Shoup arithmetic is exact up to
        // 2^62 moduli.
        let aux_prime_bits = 60u32;
        let aux_count = aux_bits_needed.div_ceil(u64::from(aux_prime_bits) - 1) as usize;
        let mut exclude = params.moduli.clone();
        exclude.push(params.plain_modulus);
        let aux_primes = zq::ntt_primes(aux_prime_bits, 2 * n as u64, aux_count, &exclude);
        let aux_ring = RingContext::new(n, aux_primes.clone());

        let q_to_aux = RnsBaseConverter::new(ring.rns(), &aux_primes);
        let aux_to_q = RnsBaseConverter::new(aux_ring.rns(), &params.moduli);
        let with_shoup = |w: u64, p: u64| (w, zq::shoup_precompute(w, p));
        let q_inv_mod_aux: Vec<(u64, u64)> = aux_primes
            .iter()
            .map(|&b| with_shoup(zq::inv_mod(ring.modulus().rem_u64(b), b), b))
            .collect();
        let t_q_inv_mod_aux = aux_primes
            .iter()
            .zip(&q_inv_mod_aux)
            .map(|(&b, &(q_inv, _))| with_shoup(zq::mul_mod(params.plain_modulus % b, q_inv, b), b))
            .collect();
        let t_mod_q = params
            .moduli
            .iter()
            .map(|&q| with_shoup(params.plain_modulus % q, q))
            .collect();
        let t_mod_aux = aux_primes
            .iter()
            .map(|&b| params.plain_modulus % b)
            .collect();

        let plain_ntt = NttTables::new(params.plain_modulus, n);

        let (delta, _) = ring.modulus().div_rem_u64(params.plain_modulus);
        let delta_residues = params.moduli.iter().map(|&q| delta.rem_u64(q)).collect();
        let q_mod_t = ring.modulus().rem_u64(params.plain_modulus);

        Ok(BfvContext {
            params,
            ring,
            aux_ring,
            q_to_aux,
            aux_to_q,
            q_inv_mod_aux,
            t_q_inv_mod_aux,
            t_mod_q,
            t_mod_aux,
            plain_ntt,
            delta,
            delta_residues,
            q_mod_t,
        })
    }

    /// The parameter set.
    pub fn params(&self) -> &BfvParams {
        &self.params
    }

    /// The ciphertext ring `R_Q`.
    pub fn ring(&self) -> &RingContext {
        &self.ring
    }

    /// The auxiliary ring used for exact tensoring.
    pub fn aux_ring(&self) -> &RingContext {
        &self.aux_ring
    }

    /// The auxiliary CRT context.
    pub fn aux_rns(&self) -> &RnsContext {
        self.aux_ring.rns()
    }

    /// Exact centered base converter `Q → B`.
    pub fn q_to_aux(&self) -> &RnsBaseConverter {
        &self.q_to_aux
    }

    /// Exact centered base converter `B → Q`.
    pub fn aux_to_q(&self) -> &RnsBaseConverter {
        &self.aux_to_q
    }

    /// `(Q⁻¹ mod b_j, shoup)` for each auxiliary prime.
    pub fn q_inv_mod_aux(&self) -> &[(u64, u64)] {
        &self.q_inv_mod_aux
    }

    /// `(t·Q⁻¹ mod b_j, shoup)` for each auxiliary prime.
    pub fn t_q_inv_mod_aux(&self) -> &[(u64, u64)] {
        &self.t_q_inv_mod_aux
    }

    /// `(t mod q_i, shoup)` for each ciphertext prime.
    pub fn t_mod_q(&self) -> &[(u64, u64)] {
        &self.t_mod_q
    }

    /// `t mod b_j` for each auxiliary prime.
    pub fn t_mod_aux(&self) -> &[u64] {
        &self.t_mod_aux
    }

    /// NTT over the plaintext modulus (batching transform).
    pub fn plain_ntt(&self) -> &NttTables {
        &self.plain_ntt
    }

    /// `Δ = floor(Q/t)`.
    pub fn delta(&self) -> &BigUint {
        &self.delta
    }

    /// `Δ mod q_i` for each ciphertext prime.
    pub fn delta_residues(&self) -> &[u64] {
        &self.delta_residues
    }

    /// `Q mod t`.
    pub fn q_mod_t(&self) -> u64 {
        self.q_mod_t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for p in [BfvParams::test_small(), BfvParams::fast_4096()] {
            assert!(p.validate().is_ok());
            assert_eq!(p.plain_modulus, 65537);
        }
    }

    #[test]
    fn secure_preset_modulus_size() {
        let p = BfvParams::secure_128();
        assert!(p.validate().is_ok());
        let total_bits: u32 = p.moduli.iter().map(|&q| 64 - q.leading_zeros()).sum();
        assert!(
            total_bits <= 218,
            "Q must stay under the 128-bit security bound"
        );
    }

    #[test]
    fn rejects_bad_degree() {
        let mut p = BfvParams::test_small();
        p.poly_degree = 1000;
        assert_eq!(p.validate(), Err(ParamError::BadDegree(1000)));
    }

    #[test]
    fn rejects_bad_plain_modulus() {
        let mut p = BfvParams::test_small();
        p.plain_modulus = 65536; // not prime
        assert!(matches!(p.validate(), Err(ParamError::BadPlainModulus(_))));
        p.plain_modulus = 97; // prime but 2N does not divide 96
        assert!(matches!(p.validate(), Err(ParamError::BadPlainModulus(_))));
    }

    #[test]
    fn rejects_single_prime() {
        let mut p = BfvParams::test_small();
        p.moduli.truncate(1);
        assert_eq!(p.validate(), Err(ParamError::TooFewPrimes(1)));
    }

    #[test]
    fn rejects_non_ntt_friendly_prime() {
        let mut p = BfvParams::test_small();
        // Prime, but 2N = 2048 does not divide p − 1.
        p.moduli[1] = 65539;
        assert_eq!(p.validate(), Err(ParamError::BadPrime(65539)));
        // Not prime at all.
        p.moduli[1] = (1 << 45) - 1;
        assert!(matches!(p.validate(), Err(ParamError::BadPrime(_))));
    }

    /// Duplicate chain primes used to sail through validation and panic
    /// deep in the CRT/NTT setup (`inv_mod` of zero); now they are a
    /// first-class error, and context construction reports it instead of
    /// panicking.
    #[test]
    fn rejects_duplicate_primes_without_panicking() {
        let mut p = BfvParams::test_small();
        p.moduli[1] = p.moduli[0];
        let dup = p.moduli[0];
        assert_eq!(p.validate(), Err(ParamError::DuplicatePrime(dup)));
        assert_eq!(
            BfvContext::new(p).err(),
            Some(ParamError::DuplicatePrime(dup))
        );
    }

    /// `t` sharing a prime with the chain is its own error (it used to be
    /// misreported as a bad ciphertext prime).
    #[test]
    fn rejects_plain_modulus_in_chain() {
        let mut p = BfvParams::test_small();
        // 65537 ≡ 1 mod 2048, so it is chain-eligible at N = 1024 — the
        // coprimality check is what must reject it.
        p.moduli[2] = p.plain_modulus;
        assert_eq!(p.validate(), Err(ParamError::PlainNotCoprime(65537)));
    }

    #[test]
    fn paper_params_alias_secure_128() {
        assert_eq!(BfvParams::paper(), BfvParams::secure_128());
    }

    #[test]
    fn selector_scales_params_with_program_depth() {
        use quill::program::{Instr, Program, ValRef};
        let sel = ParamSelector::new(65537);
        let rot_add = Program::new(
            "pairsum",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
            ],
            ValRef::Instr(1),
        );
        let shallow = sel.select(&rot_add, 8).expect("shallow program selects");
        assert!(shallow.report.predicted_budget_bits >= DEFAULT_MARGIN_BITS);

        // A depth-3 squaring chain needs strictly more modulus.
        let mut instrs = Vec::new();
        let mut cur = ValRef::Input(0);
        for _ in 0..3 {
            instrs.push(Instr::MulCtCt(cur, cur));
            instrs.push(Instr::Relin(ValRef::Instr(instrs.len() - 1)));
            cur = ValRef::Instr(instrs.len() - 1);
        }
        let deep = Program::new("pow8", 1, 0, instrs, cur);
        let selected = sel.select(&deep, 8).expect("depth-3 program selects");
        let q_bits =
            |p: &BfvParams| -> u32 { p.moduli.iter().map(|&q| 64 - q.leading_zeros()).sum() };
        assert!(q_bits(&selected.params) > q_bits(&shallow.params));
        assert!(selected.params.validate().is_ok());
    }

    #[test]
    fn selector_honors_min_slots() {
        use quill::program::{Instr, Program, ValRef};
        let prog = Program::new(
            "rot",
            1,
            0,
            vec![Instr::RotCt(ValRef::Input(0), 1)],
            ValRef::Instr(0),
        );
        let sel = ParamSelector::new(65537);
        let s = sel.select(&prog, 4000).expect("needs N ≥ 8192");
        assert!(s.params.row_size() >= 4000);
        assert!(s.params.poly_degree >= 8192);
    }

    #[test]
    fn selector_reports_exhaustion_with_best_attempt() {
        use quill::program::{Instr, Program, ValRef};
        // An absurdly deep chain no table entry can absorb.
        let mut instrs = Vec::new();
        let mut cur = ValRef::Input(0);
        for _ in 0..20 {
            instrs.push(Instr::MulCtCt(cur, cur));
            instrs.push(Instr::Relin(ValRef::Instr(instrs.len() - 1)));
            cur = ValRef::Instr(instrs.len() - 1);
        }
        let deep = Program::new("pow-2-20", 1, 0, instrs, cur);
        match ParamSelector::new(65537).select(&deep, 8) {
            Err(SelectError::NoCandidate {
                best: Some((n, remaining)),
                ..
            }) => {
                assert!(n >= 16384);
                assert!(remaining < DEFAULT_MARGIN_BITS);
            }
            other => panic!("expected NoCandidate with best attempt, got {other:?}"),
        }
    }

    #[test]
    fn policy_resolution() {
        use quill::program::{Instr, Program, ValRef};
        let prog = Program::new(
            "rot",
            1,
            0,
            vec![Instr::RotCt(ValRef::Input(0), 1)],
            ValRef::Instr(0),
        );
        let auto = ParamPolicy::auto().resolve(&prog, 8, 65537).unwrap();
        assert!(auto.validate().is_ok());
        let fixed = ParamPolicy::Fixed(BfvParams::test_small())
            .resolve(&prog, 8, 65537)
            .unwrap();
        assert_eq!(fixed, BfvParams::test_small());
        // A fixed set that cannot hold the slots is rejected.
        let err = ParamPolicy::Fixed(BfvParams::test_small()).resolve(&prog, 4096, 65537);
        assert!(matches!(err, Err(SelectError::BadFixedParams(_))));
    }

    #[test]
    fn context_constants() {
        let ctx = BfvContext::new(BfvParams::test_small()).unwrap();
        let t = ctx.params().plain_modulus;
        // Δ·t + (Q mod t) == Q
        let recomposed = ctx
            .delta()
            .mul_u64(t)
            .add(&crate::bigint::BigUint::from_u64(ctx.q_mod_t()));
        assert_eq!(&recomposed, ctx.ring().modulus());
        // The combined tensor base Q·B must hold degree-2 tensor
        // coefficients exactly (|coeff| ≤ 2N(Q/2)², so Q·B > N·Q² works),
        // and B alone must hold the rescaled product (|y| ≤ t·N·Q/2).
        let q_bits = ctx.ring().modulus().bits();
        let aux_bits = ctx.aux_ring().modulus().bits();
        let log_n = (ctx.params().poly_degree as u64).trailing_zeros();
        let t_bits = 64 - ctx.params().plain_modulus.leading_zeros();
        assert!(q_bits + aux_bits > 2 * q_bits + log_n);
        assert!(aux_bits > q_bits + t_bits + log_n);
    }

    #[test]
    fn aux_primes_disjoint_from_ciphertext_primes() {
        let ctx = BfvContext::new(BfvParams::test_small()).unwrap();
        for p in ctx.aux_ring().primes() {
            assert!(!ctx.params().moduli.contains(p));
            assert_ne!(*p, ctx.params().plain_modulus);
        }
    }
}
