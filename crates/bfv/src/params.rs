//! BFV parameter sets and the shared evaluation context.

use crate::bigint::BigUint;
use crate::ntt::NttTables;
use crate::poly::RingContext;
use crate::rns::{RnsBaseConverter, RnsContext};
use crate::zq;
use std::error::Error;
use std::fmt;

/// Errors from parameter validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// `N` is not a power of two in the supported range.
    BadDegree(usize),
    /// The plaintext modulus is not a batching-compatible prime.
    BadPlainModulus(u64),
    /// A ciphertext modulus prime is invalid for this `N`.
    BadPrime(u64),
    /// Fewer than two RNS primes (RNS-decomposition key switching needs ≥ 2).
    TooFewPrimes(usize),
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::BadDegree(n) => {
                write!(
                    f,
                    "polynomial degree {n} must be a power of two in [16, 32768]"
                )
            }
            ParamError::BadPlainModulus(t) => write!(
                f,
                "plaintext modulus {t} must be a prime congruent to 1 mod 2N for batching"
            ),
            ParamError::BadPrime(p) => {
                write!(f, "ciphertext modulus prime {p} must be prime and 1 mod 2N")
            }
            ParamError::TooFewPrimes(k) => {
                write!(f, "need at least 2 RNS primes for key switching, got {k}")
            }
        }
    }
}

impl Error for ParamError {}

/// A BFV parameter set: ring degree, plaintext modulus, and the RNS
/// ciphertext modulus chain.
///
/// # Examples
///
/// ```
/// use bfv::params::BfvParams;
///
/// let params = BfvParams::test_small();
/// assert!(params.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfvParams {
    /// Ring degree `N` (a power of two). Ciphertexts hold `N` slots arranged
    /// as a 2 × N/2 matrix.
    pub poly_degree: usize,
    /// Plaintext modulus `t` (prime, `t ≡ 1 mod 2N`).
    pub plain_modulus: u64,
    /// RNS ciphertext primes `q_i` (each `≡ 1 mod 2N`).
    pub moduli: Vec<u64>,
}

impl BfvParams {
    /// Generates a parameter set with `count` fresh primes of `bits` bits.
    ///
    /// # Errors
    ///
    /// Returns an error if the resulting set fails [`BfvParams::validate`].
    pub fn generate(
        poly_degree: usize,
        plain_modulus: u64,
        bits: u32,
        count: usize,
    ) -> Result<Self, ParamError> {
        if !poly_degree.is_power_of_two() || !(16..=32768).contains(&poly_degree) {
            return Err(ParamError::BadDegree(poly_degree));
        }
        let moduli = zq::ntt_primes(bits, 2 * poly_degree as u64, count, &[plain_modulus]);
        let params = BfvParams {
            poly_degree,
            plain_modulus,
            moduli,
        };
        params.validate()?;
        Ok(params)
    }

    /// Small parameters for unit tests: `N = 1024`, `t = 65537`, 3 × 45-bit
    /// primes. **Toy security** — fast, not safe.
    pub fn test_small() -> Self {
        BfvParams::generate(1024, 65537, 45, 3).expect("static parameters are valid")
    }

    /// Mid-size parameters used by the synthesis-to-backend integration
    /// tests: `N = 4096`, `t = 65537`, 3 × 46-bit primes (`Q ≈ 138` bits).
    /// At `N = 4096` the homomorphic-encryption standard allows ~109 bits for
    /// 128-bit security, so this set trades security margin for speed; use
    /// [`BfvParams::secure_128`] for benchmark-grade settings.
    pub fn fast_4096() -> Self {
        BfvParams::generate(4096, 65537, 46, 3).expect("static parameters are valid")
    }

    /// Benchmark parameters mirroring the paper's SEAL settings: `N = 8192`,
    /// `t = 65537`, 4 × 50-bit primes (`Q = 200` bits ≤ the 218-bit bound for
    /// 128-bit security at `N = 8192` from the HE security standard).
    pub fn secure_128() -> Self {
        BfvParams::generate(8192, 65537, 50, 4).expect("static parameters are valid")
    }

    /// Checks all structural requirements.
    ///
    /// # Errors
    ///
    /// Returns the first violated requirement.
    pub fn validate(&self) -> Result<(), ParamError> {
        let n = self.poly_degree;
        if !n.is_power_of_two() || !(16..=32768).contains(&n) {
            return Err(ParamError::BadDegree(n));
        }
        let two_n = 2 * n as u64;
        let t = self.plain_modulus;
        if !zq::is_prime(t) || !(t - 1).is_multiple_of(two_n) {
            return Err(ParamError::BadPlainModulus(t));
        }
        if self.moduli.len() < 2 {
            return Err(ParamError::TooFewPrimes(self.moduli.len()));
        }
        for &q in &self.moduli {
            if !zq::is_prime(q) || (q - 1) % two_n != 0 || q == t {
                return Err(ParamError::BadPrime(q));
            }
        }
        Ok(())
    }

    /// Number of SIMD slots (`N`; arranged as two rows of `N/2`).
    pub fn slot_count(&self) -> usize {
        self.poly_degree
    }

    /// Slots per batching row (`N / 2`) — the unit `rotate_rows` acts on.
    pub fn row_size(&self) -> usize {
        self.poly_degree / 2
    }
}

/// Shared precomputation for one parameter set: the ciphertext ring, the
/// auxiliary multiplication base with its exact base converters, the
/// rescale constants, plaintext-side constants, and the batching NTT.
/// Create once, share by reference everywhere.
#[derive(Debug)]
pub struct BfvContext {
    params: BfvParams,
    ring: RingContext,
    /// Auxiliary base `B` extending `Q` for the RNS tensor: the combined
    /// base satisfies `Q·B > 4·N·(Q/2)²` so degree-2 tensor coefficients
    /// are exact, and `B > t·N·Q` so the rescaled product fits `B` alone.
    aux_ring: RingContext,
    /// Exact centered conversion `Q → B` (operand extension, and the
    /// `t·x mod Q` remainder lift inside the rescale).
    q_to_aux: RnsBaseConverter,
    /// Exact centered conversion `B → Q` (shrinking the rescaled product).
    aux_to_q: RnsBaseConverter,
    /// `Q⁻¹ mod b_j` — the exact division by `Q` in the rescale — with its
    /// Shoup companion.
    q_inv_mod_aux: Vec<(u64, u64)>,
    /// `t·Q⁻¹ mod b_j` with its Shoup companion (the fused multiplier of
    /// the rescale's `x·(t·Q⁻¹)` term).
    t_q_inv_mod_aux: Vec<(u64, u64)>,
    /// `t mod q_i` with its Shoup companion (the `t·x mod Q` scaling).
    t_mod_q: Vec<(u64, u64)>,
    /// `t mod b_j`.
    t_mod_aux: Vec<u64>,
    /// NTT over `Z_t` used by the batch encoder.
    plain_ntt: NttTables,
    /// `Δ = floor(Q / t)`.
    delta: BigUint,
    /// `Δ mod q_i`.
    delta_residues: Vec<u64>,
    /// `Q mod t`.
    q_mod_t: u64,
}

impl BfvContext {
    /// Builds a context.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameters are invalid.
    pub fn new(params: BfvParams) -> Result<Self, ParamError> {
        params.validate()?;
        let n = params.poly_degree;
        let ring = RingContext::new(n, params.moduli.clone());

        // The tensor runs over the combined base Q·B, so B itself only
        // needs q_bits + log2(N) + t_bits + slack bits: the binding
        // constraint is holding the rescaled product y = round(t·x/Q)
        // (|y| ≤ t·N·Q/2) in B alone, which dominates the exactness
        // requirement Q·B > 4·N·(Q/2)² = N·Q².
        let q_bits = ring.modulus().bits() as u64;
        let t_bits = u64::from(64 - params.plain_modulus.leading_zeros());
        let aux_bits_needed = q_bits + t_bits + u64::from((n as u64).trailing_zeros()) + 2;
        // 60-bit auxiliary primes minimize the prime count (fewer NTTs on
        // the multiply hot path); Barrett/Shoup arithmetic is exact up to
        // 2^62 moduli.
        let aux_prime_bits = 60u32;
        let aux_count = aux_bits_needed.div_ceil(u64::from(aux_prime_bits) - 1) as usize;
        let mut exclude = params.moduli.clone();
        exclude.push(params.plain_modulus);
        let aux_primes = zq::ntt_primes(aux_prime_bits, 2 * n as u64, aux_count, &exclude);
        let aux_ring = RingContext::new(n, aux_primes.clone());

        let q_to_aux = RnsBaseConverter::new(ring.rns(), &aux_primes);
        let aux_to_q = RnsBaseConverter::new(aux_ring.rns(), &params.moduli);
        let with_shoup = |w: u64, p: u64| (w, zq::shoup_precompute(w, p));
        let q_inv_mod_aux: Vec<(u64, u64)> = aux_primes
            .iter()
            .map(|&b| with_shoup(zq::inv_mod(ring.modulus().rem_u64(b), b), b))
            .collect();
        let t_q_inv_mod_aux = aux_primes
            .iter()
            .zip(&q_inv_mod_aux)
            .map(|(&b, &(q_inv, _))| with_shoup(zq::mul_mod(params.plain_modulus % b, q_inv, b), b))
            .collect();
        let t_mod_q = params
            .moduli
            .iter()
            .map(|&q| with_shoup(params.plain_modulus % q, q))
            .collect();
        let t_mod_aux = aux_primes
            .iter()
            .map(|&b| params.plain_modulus % b)
            .collect();

        let plain_ntt = NttTables::new(params.plain_modulus, n);

        let (delta, _) = ring.modulus().div_rem_u64(params.plain_modulus);
        let delta_residues = params.moduli.iter().map(|&q| delta.rem_u64(q)).collect();
        let q_mod_t = ring.modulus().rem_u64(params.plain_modulus);

        Ok(BfvContext {
            params,
            ring,
            aux_ring,
            q_to_aux,
            aux_to_q,
            q_inv_mod_aux,
            t_q_inv_mod_aux,
            t_mod_q,
            t_mod_aux,
            plain_ntt,
            delta,
            delta_residues,
            q_mod_t,
        })
    }

    /// The parameter set.
    pub fn params(&self) -> &BfvParams {
        &self.params
    }

    /// The ciphertext ring `R_Q`.
    pub fn ring(&self) -> &RingContext {
        &self.ring
    }

    /// The auxiliary ring used for exact tensoring.
    pub fn aux_ring(&self) -> &RingContext {
        &self.aux_ring
    }

    /// The auxiliary CRT context.
    pub fn aux_rns(&self) -> &RnsContext {
        self.aux_ring.rns()
    }

    /// Exact centered base converter `Q → B`.
    pub fn q_to_aux(&self) -> &RnsBaseConverter {
        &self.q_to_aux
    }

    /// Exact centered base converter `B → Q`.
    pub fn aux_to_q(&self) -> &RnsBaseConverter {
        &self.aux_to_q
    }

    /// `(Q⁻¹ mod b_j, shoup)` for each auxiliary prime.
    pub fn q_inv_mod_aux(&self) -> &[(u64, u64)] {
        &self.q_inv_mod_aux
    }

    /// `(t·Q⁻¹ mod b_j, shoup)` for each auxiliary prime.
    pub fn t_q_inv_mod_aux(&self) -> &[(u64, u64)] {
        &self.t_q_inv_mod_aux
    }

    /// `(t mod q_i, shoup)` for each ciphertext prime.
    pub fn t_mod_q(&self) -> &[(u64, u64)] {
        &self.t_mod_q
    }

    /// `t mod b_j` for each auxiliary prime.
    pub fn t_mod_aux(&self) -> &[u64] {
        &self.t_mod_aux
    }

    /// NTT over the plaintext modulus (batching transform).
    pub fn plain_ntt(&self) -> &NttTables {
        &self.plain_ntt
    }

    /// `Δ = floor(Q/t)`.
    pub fn delta(&self) -> &BigUint {
        &self.delta
    }

    /// `Δ mod q_i` for each ciphertext prime.
    pub fn delta_residues(&self) -> &[u64] {
        &self.delta_residues
    }

    /// `Q mod t`.
    pub fn q_mod_t(&self) -> u64 {
        self.q_mod_t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for p in [BfvParams::test_small(), BfvParams::fast_4096()] {
            assert!(p.validate().is_ok());
            assert_eq!(p.plain_modulus, 65537);
        }
    }

    #[test]
    fn secure_preset_modulus_size() {
        let p = BfvParams::secure_128();
        assert!(p.validate().is_ok());
        let total_bits: u32 = p.moduli.iter().map(|&q| 64 - q.leading_zeros()).sum();
        assert!(
            total_bits <= 218,
            "Q must stay under the 128-bit security bound"
        );
    }

    #[test]
    fn rejects_bad_degree() {
        let mut p = BfvParams::test_small();
        p.poly_degree = 1000;
        assert_eq!(p.validate(), Err(ParamError::BadDegree(1000)));
    }

    #[test]
    fn rejects_bad_plain_modulus() {
        let mut p = BfvParams::test_small();
        p.plain_modulus = 65536; // not prime
        assert!(matches!(p.validate(), Err(ParamError::BadPlainModulus(_))));
        p.plain_modulus = 97; // prime but 2N does not divide 96
        assert!(matches!(p.validate(), Err(ParamError::BadPlainModulus(_))));
    }

    #[test]
    fn rejects_single_prime() {
        let mut p = BfvParams::test_small();
        p.moduli.truncate(1);
        assert_eq!(p.validate(), Err(ParamError::TooFewPrimes(1)));
    }

    #[test]
    fn context_constants() {
        let ctx = BfvContext::new(BfvParams::test_small()).unwrap();
        let t = ctx.params().plain_modulus;
        // Δ·t + (Q mod t) == Q
        let recomposed = ctx
            .delta()
            .mul_u64(t)
            .add(&crate::bigint::BigUint::from_u64(ctx.q_mod_t()));
        assert_eq!(&recomposed, ctx.ring().modulus());
        // The combined tensor base Q·B must hold degree-2 tensor
        // coefficients exactly (|coeff| ≤ 2N(Q/2)², so Q·B > N·Q² works),
        // and B alone must hold the rescaled product (|y| ≤ t·N·Q/2).
        let q_bits = ctx.ring().modulus().bits();
        let aux_bits = ctx.aux_ring().modulus().bits();
        let log_n = (ctx.params().poly_degree as u64).trailing_zeros();
        let t_bits = 64 - ctx.params().plain_modulus.leading_zeros();
        assert!(q_bits + aux_bits > 2 * q_bits + log_n);
        assert!(aux_bits > q_bits + t_bits + log_n);
    }

    #[test]
    fn aux_primes_disjoint_from_ciphertext_primes() {
        let ctx = BfvContext::new(BfvParams::test_small()).unwrap();
        for p in ctx.aux_ring().primes() {
            assert!(!ctx.params().moduli.contains(p));
            assert_ne!(*p, ctx.params().plain_modulus);
        }
    }
}
