//! BFV parameter sets, the shared evaluation context, and noise-aware
//! automatic parameter selection ([`ParamSelector`]).
//!
//! The parameter *struct* and its structural validation are scheme-neutral
//! and live in [`rlwe_ring::params`] ([`BfvParams`] is an alias of
//! [`rlwe_ring::params::RlweParams`]); this module adds what is BFV-specific:
//! the [`BfvContext`] precomputation (`Δ = ⌊Q/t⌋` encoding constants and the
//! auxiliary multiplication base) and the [`ParamSelector`] candidate table
//! driven by the BFV [`NoiseModel`].

use crate::bigint::BigUint;
use crate::noise::{NoiseModel, NoiseReport};
use crate::ntt::NttTables;
use crate::poly::RingContext;
use crate::rns::{RnsBaseConverter, RnsContext};
use crate::zq;
use quill::program::Program;

pub use rlwe_ring::params::{ParamError, ParamPolicy, SelectError, DEFAULT_MARGIN_BITS};

/// A BFV parameter set. Alias of the scheme-neutral
/// [`rlwe_ring::params::RlweParams`] — a set selected for BFV can be handed
/// to the BGV backend unchanged (and vice versa), which is what the
/// cross-scheme differential tests rely on.
pub type BfvParams = rlwe_ring::params::RlweParams;

/// Resolves a [`ParamPolicy`] for a lowered program under the **BFV** noise
/// model: a `Fixed` set is validated structurally and for capacity; an
/// `Auto` policy runs the [`ParamSelector`] over its candidate table.
///
/// # Errors
///
/// See [`SelectError`].
pub fn resolve_policy(
    policy: &ParamPolicy,
    prog: &Program,
    min_slots: usize,
    t: u64,
) -> Result<BfvParams, SelectError> {
    policy.resolve_with(min_slots, t, |margin_bits| {
        ParamSelector::new(t)
            .with_margin_bits(margin_bits)
            .select(prog, min_slots)
            .map(|s| s.params)
    })
}

/// One row of the candidate table: `count` fresh primes of `bits` bits at
/// degree `poly_degree`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Candidate {
    poly_degree: usize,
    prime_bits: u32,
    count: usize,
}

/// Noise-aware automatic parameter selection.
///
/// Given a *lowered* program (post `-O`, explicit relinearizations), the
/// selector walks a table of NTT-friendly candidate parameter sets in
/// ascending cost order (degree first, then total modulus size — key
/// switching and NTTs scale with `N·log N·k²`, so smaller `N` wins) and
/// returns the first set whose worst-case predicted noise budget
/// ([`NoiseModel`]) leaves at least the configured safety margin at
/// decryption, and whose batching rows hold the program's slots.
///
/// Because the noise model is a sound upper bound, the selected set is
/// *certified*: the measured budget at decryption is at least the margin.
///
/// **Security caveat**: like the rest of this crate, the table trades
/// lattice-security margin for speed at small degrees (the sub-`N = 8192`
/// rows mirror the repo's test presets). The `N = 8192` row equals
/// [`BfvParams::paper`].
///
/// # Examples
///
/// ```
/// use bfv::params::ParamSelector;
/// use quill::program::{Instr, Program, ValRef};
///
/// // A rotate-and-add kernel needs only a small set...
/// let shallow = Program::new(
///     "pairsum", 1, 0,
///     vec![
///         Instr::RotCt(ValRef::Input(0), 1),
///         Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
///     ],
///     ValRef::Instr(1),
/// );
/// let sel = ParamSelector::new(65537);
/// let small = sel.select(&shallow, 8).unwrap();
/// // ...and deeper programs force a larger modulus chain.
/// let square = Program::new(
///     "square", 1, 0,
///     vec![
///         Instr::MulCtCt(ValRef::Input(0), ValRef::Input(0)),
///         Instr::Relin(ValRef::Instr(0)),
///     ],
///     ValRef::Instr(1),
/// );
/// let larger = sel.select(&square, 8).unwrap();
/// let q_bits = |p: &bfv::params::BfvParams| p.moduli.iter()
///     .map(|&q| 64 - q.leading_zeros()).sum::<u32>();
/// assert!(q_bits(&larger.params) >= q_bits(&small.params));
/// ```
#[derive(Debug, Clone)]
pub struct ParamSelector {
    plain_modulus: u64,
    margin_bits: f64,
}

/// A successful selection: the parameters plus the analysis that
/// certified them.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// The smallest satisfying parameter set.
    pub params: BfvParams,
    /// The noise analysis of the program under `params`.
    pub report: NoiseReport,
    /// How many size-compatible candidates were rejected first.
    pub candidates_tried: usize,
}

impl ParamSelector {
    /// The candidate table, ascending by degree then total modulus bits.
    /// Prime sizes stay ≥ 45 bits: RNS-decomposition key switching adds
    /// noise proportional to the *largest* chain prime over `Q`, so chains
    /// of few large primes beat many small ones.
    const CANDIDATES: &'static [Candidate] = &[
        Candidate {
            poly_degree: 1024,
            prime_bits: 45,
            count: 2,
        },
        Candidate {
            poly_degree: 1024,
            prime_bits: 45,
            count: 3,
        },
        Candidate {
            poly_degree: 2048,
            prime_bits: 46,
            count: 3,
        },
        Candidate {
            poly_degree: 4096,
            prime_bits: 46,
            count: 3,
        },
        Candidate {
            poly_degree: 4096,
            prime_bits: 46,
            count: 4,
        },
        Candidate {
            poly_degree: 8192,
            prime_bits: 50,
            count: 4,
        },
        Candidate {
            poly_degree: 8192,
            prime_bits: 50,
            count: 5,
        },
        Candidate {
            poly_degree: 8192,
            prime_bits: 53,
            count: 6,
        },
        Candidate {
            poly_degree: 16384,
            prime_bits: 55,
            count: 7,
        },
        Candidate {
            poly_degree: 16384,
            prime_bits: 55,
            count: 9,
        },
    ];

    /// A selector for plaintext modulus `t` with the default margin.
    pub fn new(plain_modulus: u64) -> Self {
        ParamSelector {
            plain_modulus,
            margin_bits: DEFAULT_MARGIN_BITS,
        }
    }

    /// Overrides the safety margin.
    pub fn with_margin_bits(mut self, margin_bits: f64) -> Self {
        self.margin_bits = margin_bits;
        self
    }

    /// Selects the smallest satisfying parameter set for a lowered program
    /// that needs `min_slots` slots per batching row.
    ///
    /// # Errors
    ///
    /// See [`SelectError`].
    pub fn select(&self, prog: &Program, min_slots: usize) -> Result<Selection, SelectError> {
        let t = self.plain_modulus;
        let mut best: Option<(usize, f64)> = None;
        let mut tried = 0usize;
        let mut any_compatible = false;
        for cand in Self::CANDIDATES {
            let two_n = 2 * cand.poly_degree as u64;
            if cand.poly_degree / 2 < min_slots
                || !zq::is_prime(t)
                || !(t - 1).is_multiple_of(two_n)
            {
                continue;
            }
            any_compatible = true;
            let params = BfvParams::generate(cand.poly_degree, t, cand.prime_bits, cand.count)
                .expect("table candidates are valid");
            let report = NoiseModel::for_params(&params).analyze(prog);
            if report.predicted_budget_bits >= self.margin_bits {
                return Ok(Selection {
                    params,
                    report,
                    candidates_tried: tried,
                });
            }
            tried += 1;
            if best.is_none_or(|(_, b)| report.predicted_budget_bits > b) {
                best = Some((cand.poly_degree, report.predicted_budget_bits));
            }
        }
        if !any_compatible && best.is_none() {
            // Distinguish "t can never batch" from "table exhausted".
            let t_fits_somewhere = Self::CANDIDATES
                .iter()
                .any(|c| zq::is_prime(t) && (t - 1).is_multiple_of(2 * c.poly_degree as u64));
            if !t_fits_somewhere {
                return Err(SelectError::UnsupportedPlainModulus(t));
            }
        }
        Err(SelectError::NoCandidate {
            margin_bits: self.margin_bits,
            min_slots,
            best,
        })
    }
}

/// Shared precomputation for one parameter set: the ciphertext ring, the
/// auxiliary multiplication base with its exact base converters, the
/// rescale constants, plaintext-side constants, and the batching NTT.
/// Create once, share by reference everywhere.
#[derive(Debug)]
pub struct BfvContext {
    params: BfvParams,
    ring: RingContext,
    /// Auxiliary base `B` extending `Q` for the RNS tensor: the combined
    /// base satisfies `Q·B > 4·N·(Q/2)²` so degree-2 tensor coefficients
    /// are exact, and `B > t·N·Q` so the rescaled product fits `B` alone.
    aux_ring: RingContext,
    /// Exact centered conversion `Q → B` (operand extension, and the
    /// `t·x mod Q` remainder lift inside the rescale).
    q_to_aux: RnsBaseConverter,
    /// Exact centered conversion `B → Q` (shrinking the rescaled product).
    aux_to_q: RnsBaseConverter,
    /// `Q⁻¹ mod b_j` — the exact division by `Q` in the rescale — with its
    /// Shoup companion.
    q_inv_mod_aux: Vec<(u64, u64)>,
    /// `t·Q⁻¹ mod b_j` with its Shoup companion (the fused multiplier of
    /// the rescale's `x·(t·Q⁻¹)` term).
    t_q_inv_mod_aux: Vec<(u64, u64)>,
    /// `t mod q_i` with its Shoup companion (the `t·x mod Q` scaling).
    t_mod_q: Vec<(u64, u64)>,
    /// `t mod b_j`.
    t_mod_aux: Vec<u64>,
    /// NTT over `Z_t` used by the batch encoder.
    plain_ntt: NttTables,
    /// `Δ = floor(Q / t)`.
    delta: BigUint,
    /// `Δ mod q_i`.
    delta_residues: Vec<u64>,
    /// `Q mod t`.
    q_mod_t: u64,
}

impl BfvContext {
    /// Builds a context.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameters are invalid.
    pub fn new(params: BfvParams) -> Result<Self, ParamError> {
        params.validate()?;
        let n = params.poly_degree;
        let ring = RingContext::new(n, params.moduli.clone());

        // The tensor runs over the combined base Q·B, so B itself only
        // needs q_bits + log2(N) + t_bits + slack bits: the binding
        // constraint is holding the rescaled product y = round(t·x/Q)
        // (|y| ≤ t·N·Q/2) in B alone, which dominates the exactness
        // requirement Q·B > 4·N·(Q/2)² = N·Q².
        let q_bits = ring.modulus().bits() as u64;
        let t_bits = u64::from(64 - params.plain_modulus.leading_zeros());
        let aux_bits_needed = q_bits + t_bits + u64::from((n as u64).trailing_zeros()) + 2;
        // 60-bit auxiliary primes minimize the prime count (fewer NTTs on
        // the multiply hot path); Barrett/Shoup arithmetic is exact up to
        // 2^62 moduli.
        let aux_prime_bits = 60u32;
        let aux_count = aux_bits_needed.div_ceil(u64::from(aux_prime_bits) - 1) as usize;
        let mut exclude = params.moduli.clone();
        exclude.push(params.plain_modulus);
        let aux_primes = zq::ntt_primes(aux_prime_bits, 2 * n as u64, aux_count, &exclude);
        let aux_ring = RingContext::new(n, aux_primes.clone());

        let q_to_aux = RnsBaseConverter::new(ring.rns(), &aux_primes);
        let aux_to_q = RnsBaseConverter::new(aux_ring.rns(), &params.moduli);
        let with_shoup = |w: u64, p: u64| (w, zq::shoup_precompute(w, p));
        let q_inv_mod_aux: Vec<(u64, u64)> = aux_primes
            .iter()
            .map(|&b| with_shoup(zq::inv_mod(ring.modulus().rem_u64(b), b), b))
            .collect();
        let t_q_inv_mod_aux = aux_primes
            .iter()
            .zip(&q_inv_mod_aux)
            .map(|(&b, &(q_inv, _))| with_shoup(zq::mul_mod(params.plain_modulus % b, q_inv, b), b))
            .collect();
        let t_mod_q = params
            .moduli
            .iter()
            .map(|&q| with_shoup(params.plain_modulus % q, q))
            .collect();
        let t_mod_aux = aux_primes
            .iter()
            .map(|&b| params.plain_modulus % b)
            .collect();

        let plain_ntt = NttTables::new(params.plain_modulus, n);

        let (delta, _) = ring.modulus().div_rem_u64(params.plain_modulus);
        let delta_residues = params.moduli.iter().map(|&q| delta.rem_u64(q)).collect();
        let q_mod_t = ring.modulus().rem_u64(params.plain_modulus);

        Ok(BfvContext {
            params,
            ring,
            aux_ring,
            q_to_aux,
            aux_to_q,
            q_inv_mod_aux,
            t_q_inv_mod_aux,
            t_mod_q,
            t_mod_aux,
            plain_ntt,
            delta,
            delta_residues,
            q_mod_t,
        })
    }

    /// The parameter set.
    pub fn params(&self) -> &BfvParams {
        &self.params
    }

    /// The ciphertext ring `R_Q`.
    pub fn ring(&self) -> &RingContext {
        &self.ring
    }

    /// The auxiliary ring used for exact tensoring.
    pub fn aux_ring(&self) -> &RingContext {
        &self.aux_ring
    }

    /// The auxiliary CRT context.
    pub fn aux_rns(&self) -> &RnsContext {
        self.aux_ring.rns()
    }

    /// Exact centered base converter `Q → B`.
    pub fn q_to_aux(&self) -> &RnsBaseConverter {
        &self.q_to_aux
    }

    /// Exact centered base converter `B → Q`.
    pub fn aux_to_q(&self) -> &RnsBaseConverter {
        &self.aux_to_q
    }

    /// `(Q⁻¹ mod b_j, shoup)` for each auxiliary prime.
    pub fn q_inv_mod_aux(&self) -> &[(u64, u64)] {
        &self.q_inv_mod_aux
    }

    /// `(t·Q⁻¹ mod b_j, shoup)` for each auxiliary prime.
    pub fn t_q_inv_mod_aux(&self) -> &[(u64, u64)] {
        &self.t_q_inv_mod_aux
    }

    /// `(t mod q_i, shoup)` for each ciphertext prime.
    pub fn t_mod_q(&self) -> &[(u64, u64)] {
        &self.t_mod_q
    }

    /// `t mod b_j` for each auxiliary prime.
    pub fn t_mod_aux(&self) -> &[u64] {
        &self.t_mod_aux
    }

    /// NTT over the plaintext modulus (batching transform).
    pub fn plain_ntt(&self) -> &NttTables {
        &self.plain_ntt
    }

    /// `Δ = floor(Q/t)`.
    pub fn delta(&self) -> &BigUint {
        &self.delta
    }

    /// `Δ mod q_i` for each ciphertext prime.
    pub fn delta_residues(&self) -> &[u64] {
        &self.delta_residues
    }

    /// `Q mod t`.
    pub fn q_mod_t(&self) -> u64 {
        self.q_mod_t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Duplicate chain primes used to sail through validation and panic
    /// deep in the CRT/NTT setup (`inv_mod` of zero); context construction
    /// must report them instead of panicking.
    #[test]
    fn context_rejects_duplicate_primes_without_panicking() {
        let mut p = BfvParams::test_small();
        p.moduli[1] = p.moduli[0];
        let dup = p.moduli[0];
        assert_eq!(
            BfvContext::new(p).err(),
            Some(ParamError::DuplicatePrime(dup))
        );
    }

    #[test]
    fn selector_scales_params_with_program_depth() {
        use quill::program::{Instr, Program, ValRef};
        let sel = ParamSelector::new(65537);
        let rot_add = Program::new(
            "pairsum",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
            ],
            ValRef::Instr(1),
        );
        let shallow = sel.select(&rot_add, 8).expect("shallow program selects");
        assert!(shallow.report.predicted_budget_bits >= DEFAULT_MARGIN_BITS);

        // A depth-3 squaring chain needs strictly more modulus.
        let mut instrs = Vec::new();
        let mut cur = ValRef::Input(0);
        for _ in 0..3 {
            instrs.push(Instr::MulCtCt(cur, cur));
            instrs.push(Instr::Relin(ValRef::Instr(instrs.len() - 1)));
            cur = ValRef::Instr(instrs.len() - 1);
        }
        let deep = Program::new("pow8", 1, 0, instrs, cur);
        let selected = sel.select(&deep, 8).expect("depth-3 program selects");
        let q_bits =
            |p: &BfvParams| -> u32 { p.moduli.iter().map(|&q| 64 - q.leading_zeros()).sum() };
        assert!(q_bits(&selected.params) > q_bits(&shallow.params));
        assert!(selected.params.validate().is_ok());
    }

    #[test]
    fn selector_honors_min_slots() {
        use quill::program::{Instr, Program, ValRef};
        let prog = Program::new(
            "rot",
            1,
            0,
            vec![Instr::RotCt(ValRef::Input(0), 1)],
            ValRef::Instr(0),
        );
        let sel = ParamSelector::new(65537);
        let s = sel.select(&prog, 4000).expect("needs N ≥ 8192");
        assert!(s.params.row_size() >= 4000);
        assert!(s.params.poly_degree >= 8192);
    }

    #[test]
    fn selector_reports_exhaustion_with_best_attempt() {
        use quill::program::{Instr, Program, ValRef};
        // An absurdly deep chain no table entry can absorb.
        let mut instrs = Vec::new();
        let mut cur = ValRef::Input(0);
        for _ in 0..20 {
            instrs.push(Instr::MulCtCt(cur, cur));
            instrs.push(Instr::Relin(ValRef::Instr(instrs.len() - 1)));
            cur = ValRef::Instr(instrs.len() - 1);
        }
        let deep = Program::new("pow-2-20", 1, 0, instrs, cur);
        match ParamSelector::new(65537).select(&deep, 8) {
            Err(SelectError::NoCandidate {
                best: Some((n, remaining)),
                ..
            }) => {
                assert!(n >= 16384);
                assert!(remaining < DEFAULT_MARGIN_BITS);
            }
            other => panic!("expected NoCandidate with best attempt, got {other:?}"),
        }
    }

    #[test]
    fn policy_resolution() {
        use quill::program::{Instr, Program, ValRef};
        let prog = Program::new(
            "rot",
            1,
            0,
            vec![Instr::RotCt(ValRef::Input(0), 1)],
            ValRef::Instr(0),
        );
        let auto = resolve_policy(&ParamPolicy::auto(), &prog, 8, 65537).unwrap();
        assert!(auto.validate().is_ok());
        let fixed = resolve_policy(
            &ParamPolicy::Fixed(BfvParams::test_small()),
            &prog,
            8,
            65537,
        )
        .unwrap();
        assert_eq!(fixed, BfvParams::test_small());
        // A fixed set that cannot hold the slots is rejected.
        let err = resolve_policy(
            &ParamPolicy::Fixed(BfvParams::test_small()),
            &prog,
            4096,
            65537,
        );
        assert!(matches!(err, Err(SelectError::BadFixedParams(_))));
    }

    #[test]
    fn context_constants() {
        let ctx = BfvContext::new(BfvParams::test_small()).unwrap();
        let t = ctx.params().plain_modulus;
        // Δ·t + (Q mod t) == Q
        let recomposed = ctx
            .delta()
            .mul_u64(t)
            .add(&crate::bigint::BigUint::from_u64(ctx.q_mod_t()));
        assert_eq!(&recomposed, ctx.ring().modulus());
        // The combined tensor base Q·B must hold degree-2 tensor
        // coefficients exactly (|coeff| ≤ 2N(Q/2)², so Q·B > N·Q² works),
        // and B alone must hold the rescaled product (|y| ≤ t·N·Q/2).
        let q_bits = ctx.ring().modulus().bits();
        let aux_bits = ctx.aux_ring().modulus().bits();
        let log_n = (ctx.params().poly_degree as u64).trailing_zeros();
        let t_bits = 64 - ctx.params().plain_modulus.leading_zeros();
        assert!(q_bits + aux_bits > 2 * q_bits + log_n);
        assert!(aux_bits > q_bits + t_bits + log_n);
    }

    #[test]
    fn aux_primes_disjoint_from_ciphertext_primes() {
        let ctx = BfvContext::new(BfvParams::test_small()).unwrap();
        for p in ctx.aux_ring().primes() {
            assert!(!ctx.params().moduli.contains(p));
            assert_ne!(*p, ctx.params().plain_modulus);
        }
    }
}
