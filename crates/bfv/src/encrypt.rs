//! Ciphertexts, encryption, decryption, and the invariant-noise budget.

use crate::bigint::{center, BigInt};
use crate::encoding::Plaintext;
use crate::keys::{PublicKey, SecretKey};
use crate::params::BfvContext;
use crate::poly::RnsPoly;
use rand::Rng;

/// A BFV ciphertext: a vector of ring elements (size 2 fresh, size 3 after
/// an unrelinearized multiply) decrypting via `Σ_j c_j · s^j`.
///
/// Parts are kept in evaluation (double-CRT) form on the hot path; the
/// form converters below exist for storage/serialization-style uses and
/// for testing that the representation is semantically transparent.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    pub(crate) parts: Vec<RnsPoly>,
}

impl Ciphertext {
    /// Number of polynomial parts (2 or 3 in this implementation).
    pub fn size(&self) -> usize {
        self.parts.len()
    }

    /// This ciphertext with every part in coefficient form.
    pub fn to_coeff_form(&self, ctx: &BfvContext) -> Ciphertext {
        Ciphertext {
            parts: self.parts.iter().map(|p| ctx.ring().to_coeff(p)).collect(),
        }
    }

    /// This ciphertext with every part in evaluation (double-CRT) form.
    pub fn to_eval_form(&self, ctx: &BfvContext) -> Ciphertext {
        Ciphertext {
            parts: self.parts.iter().map(|p| ctx.ring().to_eval(p)).collect(),
        }
    }
}

/// Public-key encryptor.
#[derive(Debug)]
pub struct Encryptor<'a> {
    ctx: &'a BfvContext,
    pk: PublicKey,
}

impl<'a> Encryptor<'a> {
    /// Creates an encryptor from a public key.
    pub fn new(ctx: &'a BfvContext, pk: PublicKey) -> Self {
        Encryptor { ctx, pk }
    }

    /// Encrypts a plaintext: `(b·u + e_1 + Δ·m, a·u + e_2)`, produced in
    /// evaluation form (the public key is already NTT-resident, so the two
    /// products are pointwise).
    pub fn encrypt<R: Rng + ?Sized>(&self, pt: &Plaintext, rng: &mut R) -> Ciphertext {
        let ring = self.ctx.ring();
        let m = ring.from_u64_coeffs(&pt.coeffs);
        let dm = ring.to_eval(&ring.mul_scalar_residues(&m, self.ctx.delta_residues()));
        let u = ring.to_eval(&ring.sample_ternary(rng));
        let e1 = ring.to_eval(&ring.sample_error(rng));
        let e2 = ring.to_eval(&ring.sample_error(rng));
        let c0 = ring.add(&ring.add(&ring.mul(&self.pk.b, &u), &e1), &dm);
        let c1 = ring.add(&ring.mul(&self.pk.a, &u), &e2);
        Ciphertext {
            parts: vec![c0, c1],
        }
    }
}

/// Secret-key decryptor and noise meter.
#[derive(Debug)]
pub struct Decryptor<'a> {
    ctx: &'a BfvContext,
    sk: SecretKey,
}

impl<'a> Decryptor<'a> {
    /// Creates a decryptor from the secret key.
    pub fn new(ctx: &'a BfvContext, sk: SecretKey) -> Self {
        Decryptor { ctx, sk }
    }

    /// The raw phase `Σ_j c_j s^j mod Q`, lifted to centered integers.
    fn phase(&self, ct: &Ciphertext) -> Vec<BigInt> {
        let ring = self.ctx.ring();
        let mut acc = ct.parts[0].clone();
        let mut s_pow = self.sk.s.clone();
        for part in &ct.parts[1..] {
            acc = ring.add(&acc, &ring.mul(part, &s_pow));
            s_pow = ring.mul(&s_pow, &self.sk.s);
        }
        ring.lift_centered(&acc)
    }

    /// Decrypts: `m_c = round(t · w_c / Q) mod t` per coefficient.
    pub fn decrypt(&self, ct: &Ciphertext) -> Plaintext {
        let t = self.ctx.params().plain_modulus;
        let q = self.ctx.ring().modulus();
        let coeffs = self
            .phase(ct)
            .iter()
            .map(|w| w.mul_div_round(t, q).rem_euclid_u64(t))
            .collect();
        Plaintext { coeffs }
    }

    /// Invariant noise budget in bits, like SEAL's: `log2(Q / (2·‖t·w mod Q‖))`.
    ///
    /// A non-positive budget means decryption is no longer reliable.
    pub fn invariant_noise_budget(&self, ct: &Ciphertext) -> i64 {
        let t = self.ctx.params().plain_modulus;
        let q = self.ctx.ring().modulus();
        let q_bits = q.bits() as i64;
        let mut max_bits: i64 = 0;
        for w in self.phase(ct) {
            let x = BigInt {
                mag: w.mag.mul_u64(t),
                neg: w.neg,
            };
            let r = x.rem_euclid_big(q);
            let centered = center(&r, q);
            max_bits = max_bits.max(centered.mag.bits() as i64);
        }
        q_bits - max_bits - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::BatchEncoder;
    use crate::keys::KeyGenerator;
    use crate::params::BfvParams;
    use rand::SeedableRng;

    fn setup() -> (BfvContext, rand::rngs::StdRng) {
        (
            BfvContext::new(BfvParams::test_small()).unwrap(),
            rand::rngs::StdRng::seed_from_u64(0xBF),
        )
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (ctx, mut rng) = setup();
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let enc = Encryptor::new(&ctx, kg.public_key(&mut rng));
        let dec = Decryptor::new(&ctx, kg.secret_key().clone());
        let encoder = BatchEncoder::new(&ctx);

        let t = ctx.params().plain_modulus;
        let v: Vec<u64> = (0..encoder.slot_count() as u64)
            .map(|i| (i * 31 + 5) % t)
            .collect();
        let ct = enc.encrypt(&encoder.encode(&v), &mut rng);
        assert_eq!(encoder.decode(&dec.decrypt(&ct)), v);
    }

    #[test]
    fn fresh_budget_is_large() {
        let (ctx, mut rng) = setup();
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let enc = Encryptor::new(&ctx, kg.public_key(&mut rng));
        let dec = Decryptor::new(&ctx, kg.secret_key().clone());
        let encoder = BatchEncoder::new(&ctx);
        let ct = enc.encrypt(&encoder.encode(&[1, 2, 3]), &mut rng);
        let budget = dec.invariant_noise_budget(&ct);
        assert!(budget > 60, "fresh budget {budget} too small");
    }

    #[test]
    fn different_randomness_different_ciphertexts() {
        let (ctx, mut rng) = setup();
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let enc = Encryptor::new(&ctx, kg.public_key(&mut rng));
        let encoder = BatchEncoder::new(&ctx);
        let pt = encoder.encode(&[42]);
        let c1 = enc.encrypt(&pt, &mut rng);
        let c2 = enc.encrypt(&pt, &mut rng);
        assert_ne!(c1.parts[0], c2.parts[0]);
    }

    #[test]
    fn decrypts_random_full_slots() {
        let (ctx, mut rng) = setup();
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let enc = Encryptor::new(&ctx, kg.public_key(&mut rng));
        let dec = Decryptor::new(&ctx, kg.secret_key().clone());
        let encoder = BatchEncoder::new(&ctx);
        let t = ctx.params().plain_modulus;
        for trial in 0..3 {
            let v: Vec<u64> = (0..encoder.slot_count())
                .map(|_| rng.gen_range(0..t))
                .collect();
            let ct = enc.encrypt(&encoder.encode(&v), &mut rng);
            assert_eq!(encoder.decode(&dec.decrypt(&ct)), v, "trial {trial}");
        }
    }
}
