//! # bfv — a from-scratch BFV homomorphic encryption substrate
//!
//! This crate is the execution backend for the Porcupine reproduction: a
//! complete, exact implementation of the Brakerski/Fan–Vercauteren (BFV)
//! scheme standing in for Microsoft SEAL v3.5, which the paper compiles to.
//!
//! It provides everything the paper's instruction set needs:
//!
//! * **SIMD batching** over `N` slots arranged as a 2 × (N/2) matrix
//!   ([`encoding::BatchEncoder`]), with `rotate_rows` / `rotate_columns`
//!   slot semantics identical to SEAL's.
//! * **Ciphertext ops**: add/sub/negate, plaintext add/sub/multiply,
//!   ciphertext multiply with exact `t/Q` rescaling, RNS-decomposition
//!   relinearization and Galois key switching ([`evaluator::Evaluator`]).
//! * **Noise metering**: SEAL-style invariant noise budget
//!   ([`encrypt::Decryptor::invariant_noise_budget`]), a static worst-case
//!   noise-growth model ([`noise::NoiseModel`]), and noise-aware automatic
//!   parameter selection ([`params::ParamSelector`]).
//!
//! # The double-CRT representation
//!
//! Like production RNS stacks (SEAL, Sunscreen), ciphertexts and keys are
//! **NTT-resident**: every [`poly::RnsPoly`] carries a [`poly::PolyForm`]
//! tag, and the evaluator keeps everything in evaluation form. Under that
//! invariant
//!
//! * add/sub/negate and plaintext ops are componentwise (a plaintext is
//!   converted to evaluation form once — [`encoding::EvalPlaintext`] — and
//!   reused across every op that references it),
//! * polynomial products are pointwise,
//! * rotations permute evaluation slots through a cached index map, and
//! * ciphertext multiply runs entirely in 64-bit RNS arithmetic: exact
//!   centered mixed-radix base conversion into an auxiliary base, a
//!   per-prime tensor, and an exact `t/Q` rescale (see
//!   [`evaluator::Evaluator::multiply`]) — no big-integer CRT on the hot
//!   path.
//!
//! Coefficient form appears only inside key-switch digit decomposition,
//! the multiply's base conversions, and the final lift at decryption; the
//! representation is semantically invisible (property-tested: both
//! pipelines decrypt bit-identically).
//!
//! The number theory underneath — big integers, 64-bit prime fields,
//! negacyclic NTTs with branchless Shoup/Barrett arithmetic, and CRT/RNS
//! contexts with exact base converters — lives in the shared
//! [`rlwe_ring`] crate (re-exported here as [`bigint`], [`zq`], [`ntt`],
//! [`rns`], [`poly`], [`pool`]) and is also what the sibling `bgv` crate
//! builds on.
//!
//! **Security caveat**: this is a research-grade implementation for
//! reproducing a compiler paper. The samplers use a non-hardened RNG and a
//! centered-binomial error distribution; do not use it to protect real data.
//!
//! ## Quick example
//!
//! ```
//! use bfv::params::{BfvContext, BfvParams};
//! use bfv::encoding::BatchEncoder;
//! use bfv::keys::KeyGenerator;
//! use bfv::encrypt::{Encryptor, Decryptor};
//! use bfv::evaluator::Evaluator;
//! use rand::SeedableRng;
//!
//! let ctx = BfvContext::new(BfvParams::test_small())?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let keygen = KeyGenerator::new(&ctx, &mut rng);
//! let encryptor = Encryptor::new(&ctx, keygen.public_key(&mut rng));
//! let decryptor = Decryptor::new(&ctx, keygen.secret_key().clone());
//! let encoder = BatchEncoder::new(&ctx);
//! let evaluator = Evaluator::new(&ctx);
//!
//! // Encrypted dot-product step: elementwise multiply, then rotate+add.
//! let x = encryptor.encrypt(&encoder.encode(&[1, 2, 3, 4]), &mut rng);
//! let w = encoder.encode(&[5, 6, 7, 8]);
//! let prod = evaluator.mul_plain(&x, &w);
//! let gk = keygen.galois_keys_for_rotations(&[1, 2], false, &mut rng);
//! let s1 = evaluator.add(&prod, &evaluator.rotate_rows(&prod, 2, &gk));
//! let s2 = evaluator.add(&s1, &evaluator.rotate_rows(&s1, 1, &gk));
//! let out = encoder.decode(&decryptor.decrypt(&s2));
//! assert_eq!(out[0], 5 + 12 + 21 + 32);
//! # Ok::<(), bfv::params::ParamError>(())
//! ```

pub mod encoding;
pub mod encrypt;
pub mod evaluator;
pub mod keys;
pub mod noise;
pub mod params;

// The ring-arithmetic layer moved to the shared `rlwe-ring` crate when BGV
// arrived; re-export the modules so `bfv::poly::...`-style paths keep
// working.
pub use rlwe_ring::{bigint, keyswitch, ntt, poly, pool, rns, zq};

pub use encoding::{BatchEncoder, Plaintext};
pub use encrypt::{Ciphertext, Decryptor, Encryptor};
pub use evaluator::Evaluator;
pub use keys::{GaloisKeys, KeyGenerator, PublicKey, RelinKey, SecretKey};
pub use keyswitch::HoistedDecomposition;
pub use noise::{NoiseModel, NoiseReport};
pub use params::{
    BfvContext, BfvParams, ParamError, ParamPolicy, ParamSelector, SelectError, Selection,
};
