//! RNS polynomials in `Z_Q[x]/(x^N + 1)` and their ring context.
//!
//! An [`RnsPoly`] stores one residue vector per RNS prime. Additions and
//! NTT-based multiplications stay componentwise; exact lifting to centered
//! big integers (for the BFV multiply rescale and for decryption) goes
//! through [`RingContext::lift_centered`].

use crate::bigint::{center, BigInt, BigUint};
use crate::ntt::NttTables;
use crate::rns::RnsContext;
use crate::zq::{add_mod, mul_mod, sub_mod};
use rand::Rng;

/// Shared precomputation for a ring `Z_Q[x]/(x^N + 1)` with RNS modulus
/// `Q = ∏ q_i`: per-prime NTT tables plus CRT data.
#[derive(Debug)]
pub struct RingContext {
    n: usize,
    rns: RnsContext,
    ntt: Vec<NttTables>,
}

impl RingContext {
    /// Builds a context for degree `n` and the given primes (each must be
    /// ≡ 1 mod 2n).
    ///
    /// # Panics
    ///
    /// Panics if any prime is not NTT-friendly for degree `n`.
    pub fn new(n: usize, primes: Vec<u64>) -> Self {
        let ntt = primes.iter().map(|&p| NttTables::new(p, n)).collect();
        RingContext {
            n,
            rns: RnsContext::new(primes),
            ntt,
        }
    }

    /// Ring degree `N`.
    pub fn degree(&self) -> usize {
        self.n
    }

    /// The RNS primes.
    pub fn primes(&self) -> &[u64] {
        self.rns.primes()
    }

    /// Number of RNS components.
    pub fn num_primes(&self) -> usize {
        self.rns.len()
    }

    /// The CRT context.
    pub fn rns(&self) -> &RnsContext {
        &self.rns
    }

    /// The full coefficient modulus `Q`.
    pub fn modulus(&self) -> &BigUint {
        self.rns.modulus()
    }

    /// NTT tables for RNS component `i`.
    pub fn ntt(&self, i: usize) -> &NttTables {
        &self.ntt[i]
    }

    /// The all-zero polynomial.
    pub fn zero(&self) -> RnsPoly {
        RnsPoly {
            residues: vec![vec![0u64; self.n]; self.rns.len()],
        }
    }

    /// Builds a polynomial from small unsigned coefficients (reduced modulo
    /// each prime).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != N`.
    pub fn from_u64_coeffs(&self, coeffs: &[u64]) -> RnsPoly {
        assert_eq!(coeffs.len(), self.n);
        let residues = self
            .rns
            .primes()
            .iter()
            .map(|&p| coeffs.iter().map(|&c| c % p).collect())
            .collect();
        RnsPoly { residues }
    }

    /// Builds a polynomial from signed coefficients (centered lift).
    pub fn from_i64_coeffs(&self, coeffs: &[i64]) -> RnsPoly {
        assert_eq!(coeffs.len(), self.n);
        let residues = self
            .rns
            .primes()
            .iter()
            .map(|&p| {
                coeffs
                    .iter()
                    .map(|&c| {
                        let r = c % p as i64;
                        if r < 0 {
                            (r + p as i64) as u64
                        } else {
                            r as u64
                        }
                    })
                    .collect()
            })
            .collect();
        RnsPoly { residues }
    }

    /// Builds a polynomial from exact centered big-integer coefficients.
    pub fn from_centered(&self, coeffs: &[BigInt]) -> RnsPoly {
        assert_eq!(coeffs.len(), self.n);
        let residues = self
            .rns
            .primes()
            .iter()
            .map(|&p| coeffs.iter().map(|c| c.rem_euclid_u64(p)).collect())
            .collect();
        RnsPoly { residues }
    }

    /// Lifts every coefficient to its exact centered representative in
    /// `(-Q/2, Q/2]`.
    pub fn lift_centered(&self, poly: &RnsPoly) -> Vec<BigInt> {
        let q = self.rns.modulus();
        (0..self.n)
            .map(|c| {
                let residues: Vec<u64> = (0..self.rns.len()).map(|i| poly.residues[i][c]).collect();
                center(&self.rns.reconstruct(&residues), q)
            })
            .collect()
    }

    /// Uniformly random polynomial in `R_Q` (uniform per RNS component is
    /// uniform mod `Q` by CRT).
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> RnsPoly {
        let residues = self
            .rns
            .primes()
            .iter()
            .map(|&p| (0..self.n).map(|_| rng.gen_range(0..p)).collect())
            .collect();
        RnsPoly { residues }
    }

    /// Random ternary polynomial with coefficients in `{-1, 0, 1}`.
    pub fn sample_ternary<R: Rng + ?Sized>(&self, rng: &mut R) -> RnsPoly {
        let coeffs: Vec<i64> = (0..self.n).map(|_| rng.gen_range(-1..=1)).collect();
        self.from_i64_coeffs(&coeffs)
    }

    /// Random error polynomial from a centered binomial distribution with
    /// parameter η = 10 (σ ≈ 2.24); stands in for SEAL's σ = 3.2 discrete
    /// Gaussian, which only shifts noise-budget constants.
    pub fn sample_error<R: Rng + ?Sized>(&self, rng: &mut R) -> RnsPoly {
        let coeffs: Vec<i64> = (0..self.n)
            .map(|_| {
                let a = (rng.gen::<u16>() & 0x3ff).count_ones() as i64;
                let b = (rng.gen::<u16>() & 0x3ff).count_ones() as i64;
                a - b
            })
            .collect();
        self.from_i64_coeffs(&coeffs)
    }

    /// Componentwise sum.
    pub fn add(&self, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        self.zip(a, b, add_mod)
    }

    /// Componentwise difference.
    pub fn sub(&self, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        self.zip(a, b, sub_mod)
    }

    /// Negation.
    pub fn neg(&self, a: &RnsPoly) -> RnsPoly {
        let residues = self
            .rns
            .primes()
            .iter()
            .zip(&a.residues)
            .map(|(&p, r)| r.iter().map(|&x| if x == 0 { 0 } else { p - x }).collect())
            .collect();
        RnsPoly { residues }
    }

    fn zip(&self, a: &RnsPoly, b: &RnsPoly, f: fn(u64, u64, u64) -> u64) -> RnsPoly {
        let residues = self
            .rns
            .primes()
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                a.residues[i]
                    .iter()
                    .zip(&b.residues[i])
                    .map(|(&x, &y)| f(x, y, p))
                    .collect()
            })
            .collect();
        RnsPoly { residues }
    }

    /// Negacyclic product via per-prime NTT.
    pub fn mul(&self, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        let residues = (0..self.rns.len())
            .map(|i| self.ntt[i].multiply(&a.residues[i], &b.residues[i]))
            .collect();
        RnsPoly { residues }
    }

    /// Multiplies every coefficient by the integer whose per-prime residues
    /// are `scalar_residues` (e.g. `Δ mod q_i`).
    pub fn mul_scalar_residues(&self, a: &RnsPoly, scalar_residues: &[u64]) -> RnsPoly {
        assert_eq!(scalar_residues.len(), self.rns.len());
        let residues = self
            .rns
            .primes()
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                a.residues[i]
                    .iter()
                    .map(|&x| mul_mod(x, scalar_residues[i], p))
                    .collect()
            })
            .collect();
        RnsPoly { residues }
    }

    /// Applies the Galois automorphism `x → x^g` (g odd, `1 ≤ g < 2N`).
    ///
    /// # Panics
    ///
    /// Panics if `g` is even or out of range.
    pub fn automorphism(&self, a: &RnsPoly, g: u64) -> RnsPoly {
        let n = self.n as u64;
        assert!(g % 2 == 1 && g < 2 * n, "invalid Galois element {g}");
        let mut out = self.zero();
        for (i, &p) in self.rns.primes().iter().enumerate() {
            for c in 0..self.n {
                let target = (c as u64 * g) % (2 * n);
                let v = a.residues[i][c];
                if target < n {
                    out.residues[i][target as usize] =
                        add_mod(out.residues[i][target as usize], v, p);
                } else {
                    out.residues[i][(target - n) as usize] =
                        sub_mod(out.residues[i][(target - n) as usize], v, p);
                }
            }
        }
        out
    }

    /// Extracts RNS component `i` as a polynomial with small coefficients
    /// (`< q_i`) reduced modulo **every** prime — the RNS-decomposition step
    /// of key switching.
    pub fn decompose_component(&self, a: &RnsPoly, i: usize) -> RnsPoly {
        let src = &a.residues[i];
        let residues = self
            .rns
            .primes()
            .iter()
            .map(|&p| src.iter().map(|&x| x % p).collect())
            .collect();
        RnsPoly { residues }
    }
}

/// A polynomial in `Z_Q[x]/(x^N + 1)`, stored as one residue vector per RNS
/// prime (coefficient order, little-endian in the exponent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsPoly {
    /// `residues[prime_index][coeff_index]`.
    pub(crate) residues: Vec<Vec<u64>>,
}

impl RnsPoly {
    /// Residues for RNS component `i`.
    pub fn component(&self, i: usize) -> &[u64] {
        &self.residues[i]
    }

    /// True if every residue is zero.
    pub fn is_zero(&self) -> bool {
        self.residues.iter().all(|r| r.iter().all(|&x| x == 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx(n: usize, k: usize) -> RingContext {
        let primes = crate::zq::ntt_primes(45, 2 * n as u64, k, &[]);
        RingContext::new(n, primes)
    }

    #[test]
    fn add_sub_roundtrip() {
        let ctx = ctx(64, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = ctx.sample_uniform(&mut rng);
        let b = ctx.sample_uniform(&mut rng);
        let s = ctx.add(&a, &b);
        assert_eq!(ctx.sub(&s, &b), a);
        assert_eq!(ctx.sub(&s, &a), b);
        assert_eq!(ctx.add(&a, &ctx.neg(&a)), ctx.zero());
    }

    #[test]
    fn mul_commutes_and_distributes() {
        let ctx = ctx(32, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = ctx.sample_uniform(&mut rng);
        let b = ctx.sample_uniform(&mut rng);
        let c = ctx.sample_uniform(&mut rng);
        assert_eq!(ctx.mul(&a, &b), ctx.mul(&b, &a));
        let lhs = ctx.mul(&a, &ctx.add(&b, &c));
        let rhs = ctx.add(&ctx.mul(&a, &b), &ctx.mul(&a, &c));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn centered_lift_roundtrip() {
        let ctx = ctx(16, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = ctx.sample_uniform(&mut rng);
        let lifted = ctx.lift_centered(&a);
        assert_eq!(ctx.from_centered(&lifted), a);
        // centered magnitudes are at most Q/2
        let half = ctx.modulus().shr_bits(1);
        for c in &lifted {
            assert!(c.mag.cmp_big(&half) != std::cmp::Ordering::Greater);
        }
    }

    #[test]
    fn signed_coeffs_center_correctly() {
        let ctx = ctx(4, 2);
        let p = ctx.from_i64_coeffs(&[-1, 2, -3, 0]);
        let lifted = ctx.lift_centered(&p);
        assert_eq!(lifted[0], BigInt::from_i64(-1));
        assert_eq!(lifted[1], BigInt::from_i64(2));
        assert_eq!(lifted[2], BigInt::from_i64(-3));
        assert_eq!(lifted[3], BigInt::from_i64(0));
    }

    #[test]
    fn automorphism_identity_and_composition() {
        let ctx = ctx(16, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let a = ctx.sample_uniform(&mut rng);
        assert_eq!(ctx.automorphism(&a, 1), a);
        // sigma_g1 . sigma_g2 = sigma_{g1 g2 mod 2N}
        let g1 = 3u64;
        let g2 = 5u64;
        let lhs = ctx.automorphism(&ctx.automorphism(&a, g1), g2);
        let rhs = ctx.automorphism(&a, (g1 * g2) % 32);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn automorphism_matches_poly_eval() {
        // sigma_g(x^k) = x^{gk mod 2N} with sign wrap; check on a monomial.
        let ctx = ctx(8, 2);
        let mut coeffs = vec![0u64; 8];
        coeffs[3] = 1; // x^3
        let a = ctx.from_u64_coeffs(&coeffs);
        let b = ctx.automorphism(&a, 5); // x^15 = x^15-8 * (x^8=-1) => -x^7
        let lifted = ctx.lift_centered(&b);
        assert_eq!(lifted[7], BigInt::from_i64(-1));
        for coeff in lifted.iter().take(7) {
            assert!(coeff.is_zero());
        }
    }

    #[test]
    fn decompose_component_small_coeffs() {
        let ctx = ctx(8, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a = ctx.sample_uniform(&mut rng);
        for i in 0..3 {
            let d = ctx.decompose_component(&a, i);
            // Its own component is unchanged.
            assert_eq!(d.component(i), a.component(i));
        }
    }

    #[test]
    fn error_and_ternary_are_small() {
        let ctx = ctx(256, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for poly in [ctx.sample_ternary(&mut rng), ctx.sample_error(&mut rng)] {
            for c in ctx.lift_centered(&poly) {
                assert!(c.mag.to_u64().unwrap() <= 10);
            }
        }
    }
}
