//! Residue number system (RNS) contexts: CRT decomposition and exact Garner
//! reconstruction over a set of coprime 64-bit primes.
//!
//! BFV ciphertext coefficients live modulo `Q = q_0 · q_1 · ... · q_{k-1}`.
//! Cheap operations stay componentwise; the multiply/decrypt paths
//! reconstruct exact integers with [`RnsContext::reconstruct`].

use crate::bigint::BigUint;
use crate::zq::{inv_mod, mul_mod, sub_mod};

/// Precomputed CRT data for a fixed list of distinct primes.
///
/// # Examples
///
/// ```
/// use bfv::rns::RnsContext;
/// use bfv::bigint::BigUint;
///
/// let ctx = RnsContext::new(vec![97, 101, 103]);
/// let x = BigUint::from_u64(123_456);
/// let residues = ctx.decompose(&x);
/// assert_eq!(ctx.reconstruct(&residues), x);
/// ```
#[derive(Debug, Clone)]
pub struct RnsContext {
    primes: Vec<u64>,
    modulus: BigUint,
    /// `pp[j][i] = (p_0 * ... * p_{j-1}) mod p_i` for `j <= i` (Garner).
    partial_mod: Vec<Vec<u64>>,
    /// `garner_inv[i] = ((p_0 * ... * p_{i-1}) mod p_i)^{-1} mod p_i`.
    garner_inv: Vec<u64>,
}

impl RnsContext {
    /// Builds a context for `primes` (must be distinct primes).
    ///
    /// # Panics
    ///
    /// Panics if `primes` is empty or contains duplicates.
    pub fn new(primes: Vec<u64>) -> Self {
        assert!(!primes.is_empty(), "need at least one prime");
        for (i, &p) in primes.iter().enumerate() {
            assert!(p > 1);
            assert!(!primes[..i].contains(&p), "duplicate prime {p}");
        }
        let k = primes.len();
        let mut modulus = BigUint::one();
        for &p in &primes {
            modulus = modulus.mul_u64(p);
        }
        // partial_mod[j][i]: product of first j primes mod p_i.
        let mut partial_mod = vec![vec![0u64; k]; k];
        for i in 0..k {
            let mut acc = 1u64 % primes[i];
            for j in 0..k {
                partial_mod[j][i] = acc;
                acc = mul_mod(acc, primes[j] % primes[i], primes[i]);
            }
        }
        let garner_inv = (0..k)
            .map(|i| inv_mod(partial_mod[i][i], primes[i]))
            .collect();
        RnsContext {
            primes,
            modulus,
            partial_mod,
            garner_inv,
        }
    }

    /// The prime list.
    pub fn primes(&self) -> &[u64] {
        &self.primes
    }

    /// Number of primes.
    pub fn len(&self) -> usize {
        self.primes.len()
    }

    /// True if the context has no primes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.primes.is_empty()
    }

    /// The full modulus `Q`.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Reduces `x` modulo each prime.
    pub fn decompose(&self, x: &BigUint) -> Vec<u64> {
        self.primes.iter().map(|&p| x.rem_u64(p)).collect()
    }

    /// Exact CRT reconstruction into `[0, Q)` via Garner's mixed-radix
    /// algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `residues.len()` differs from the prime count.
    pub fn reconstruct(&self, residues: &[u64]) -> BigUint {
        assert_eq!(residues.len(), self.primes.len());
        let k = self.primes.len();
        // Mixed-radix digits d_i.
        let mut digits = vec![0u64; k];
        for i in 0..k {
            let p = self.primes[i];
            let mut acc = 0u64;
            for (j, &digit) in digits.iter().enumerate().take(i) {
                acc = crate::zq::add_mod(acc, mul_mod(digit % p, self.partial_mod[j][i], p), p);
            }
            let diff = sub_mod(residues[i] % p, acc, p);
            digits[i] = mul_mod(diff, self.garner_inv[i], p);
        }
        // Horner evaluation: x = d_0 + p_0 (d_1 + p_1 (d_2 + ...)).
        let mut x = BigUint::from_u64(digits[k - 1]);
        for i in (0..k - 1).rev() {
            x = x.mul_u64(self.primes[i]);
            x.add_assign_u64(digits[i]);
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_small_primes() {
        let ctx = RnsContext::new(vec![3, 5, 7]);
        for v in 0..105u64 {
            let x = BigUint::from_u64(v);
            assert_eq!(ctx.reconstruct(&ctx.decompose(&x)), x, "v = {v}");
        }
    }

    #[test]
    fn roundtrip_large_primes() {
        let primes = crate::zq::ntt_primes(50, 1 << 13, 5, &[]);
        let ctx = RnsContext::new(primes);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..50 {
            // random value < Q via random residues
            let residues: Vec<u64> = ctx.primes().iter().map(|&p| rng.gen_range(0..p)).collect();
            let x = ctx.reconstruct(&residues);
            assert!(x.cmp_big(ctx.modulus()) == std::cmp::Ordering::Less);
            assert_eq!(ctx.decompose(&x), residues);
        }
    }

    #[test]
    fn modulus_is_product() {
        let ctx = RnsContext::new(vec![97, 101]);
        assert_eq!(ctx.modulus().to_u64(), Some(97 * 101));
    }

    #[test]
    fn single_prime_context() {
        let ctx = RnsContext::new(vec![65537]);
        let x = BigUint::from_u64(1234);
        assert_eq!(ctx.reconstruct(&ctx.decompose(&x)), x);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicates() {
        RnsContext::new(vec![97, 97]);
    }
}
