//! Key material: secret/public keys, relinearization keys, and Galois keys,
//! all using RNS-decomposition key switching.
//!
//! A key-switch key from `s'` to `s` has one part per RNS prime:
//! `ksk_i = (b_i, a_i)` with `b_i = -(a_i·s + e_i) + γ_i·s'`, where `γ_i` is
//! the CRT unit (`1 mod q_i`, `0 mod q_j`). Key switching a polynomial `d`
//! under `s'` then computes `Σ_i lift([d]_{q_i}) ⊙ ksk_i`, whose parts sum to
//! `≈ d·s'` under `s` with only small added noise (each digit is `< q_i`).
//!
//! All key polynomials are stored in **evaluation (double-CRT) form**, so
//! the inner products of key switching are pointwise; every key residue
//! additionally carries a Shoup precomputation (keys are the fixed
//! multiplicand of the digit product, the textbook Shoup setting), and
//! Galois keys cache the evaluation-domain index permutation of their
//! automorphism so rotations never recompute it.

use crate::params::BfvContext;
use crate::poly::RnsPoly;
use crate::zq::{add_mod, shoup_precompute};
use rand::Rng;
use std::collections::HashMap;

/// The secret key: a ternary polynomial `s` (stored in evaluation form).
#[derive(Debug, Clone)]
pub struct SecretKey {
    pub(crate) s: RnsPoly,
}

/// The public key: an RLWE sample `(b, a)` with `b = -(a·s + e)`, in
/// evaluation form.
#[derive(Debug, Clone)]
pub struct PublicKey {
    pub(crate) b: RnsPoly,
    pub(crate) a: RnsPoly,
}

/// Shoup companion table of one evaluation-form key polynomial, indexed
/// `[prime][coeff]`.
pub(crate) type ShoupTable = Vec<Vec<u64>>;

/// A key-switch key from some `s'` back to `s` (one part per RNS prime),
/// with Shoup companions for the digit inner products.
#[derive(Debug, Clone)]
pub struct KeySwitchKey {
    /// `(b_i, a_i)` in evaluation form.
    pub(crate) parts: Vec<(RnsPoly, RnsPoly)>,
    /// Shoup precomputations of `parts`: `shoup[i] = (b_shoup, a_shoup)`.
    pub(crate) shoup: Vec<(ShoupTable, ShoupTable)>,
}

/// Relinearization key: key-switch key for `s' = s²`.
#[derive(Debug, Clone)]
pub struct RelinKey(pub(crate) KeySwitchKey);

/// One Galois element's material: the key-switch key for `s' = σ_g(s)`
/// together with the cached evaluation-domain permutation of `σ_g` — kept
/// in one entry so key and permutation cannot drift apart.
#[derive(Debug, Clone)]
pub(crate) struct GaloisKeyEntry {
    pub(crate) key: KeySwitchKey,
    pub(crate) perm: Vec<u32>,
}

/// Galois keys: one [`GaloisKeyEntry`] per Galois element.
#[derive(Debug, Clone, Default)]
pub struct GaloisKeys {
    pub(crate) keys: HashMap<u64, GaloisKeyEntry>,
}

impl GaloisKeys {
    /// The Galois elements covered by this key set.
    pub fn elements(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.keys.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Whether a key for Galois element `g` is present.
    pub fn contains(&self, g: u64) -> bool {
        self.keys.contains_key(&g)
    }
}

/// Generates all key material for one secret.
///
/// # Examples
///
/// ```
/// use bfv::params::{BfvContext, BfvParams};
/// use bfv::keys::KeyGenerator;
/// use rand::SeedableRng;
///
/// let ctx = BfvContext::new(BfvParams::test_small())?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let keygen = KeyGenerator::new(&ctx, &mut rng);
/// let pk = keygen.public_key(&mut rng);
/// let rk = keygen.relin_key(&mut rng);
/// # let _ = (pk, rk);
/// # Ok::<(), bfv::params::ParamError>(())
/// ```
#[derive(Debug)]
pub struct KeyGenerator<'a> {
    ctx: &'a BfvContext,
    sk: SecretKey,
}

impl<'a> KeyGenerator<'a> {
    /// Samples a fresh ternary secret.
    pub fn new<R: Rng + ?Sized>(ctx: &'a BfvContext, rng: &mut R) -> Self {
        let ring = ctx.ring();
        let s = ring.to_eval(&ring.sample_ternary(rng));
        KeyGenerator {
            ctx,
            sk: SecretKey { s },
        }
    }

    /// The secret key.
    pub fn secret_key(&self) -> &SecretKey {
        &self.sk
    }

    /// Generates a public key.
    pub fn public_key<R: Rng + ?Sized>(&self, rng: &mut R) -> PublicKey {
        let ring = self.ctx.ring();
        let a = ring.sample_uniform(rng);
        let e = ring.to_eval(&ring.sample_error(rng));
        let b = ring.neg(&ring.add(&ring.mul(&a, &self.sk.s), &e));
        PublicKey { b, a }
    }

    /// Builds a key-switch key whose source key is `target` (e.g. `s²` or
    /// `σ_g(s)`, in evaluation form).
    fn key_switch_key<R: Rng + ?Sized>(&self, target: &RnsPoly, rng: &mut R) -> KeySwitchKey {
        let ring = self.ctx.ring();
        let k = ring.num_primes();
        let mut parts = Vec::with_capacity(k);
        for i in 0..k {
            let a_i = ring.sample_uniform(rng);
            let e_i = ring.to_eval(&ring.sample_error(rng));
            let mut b_i = ring.neg(&ring.add(&ring.mul(&a_i, &self.sk.s), &e_i));
            // Add γ_i · target: in RNS, γ_i is the unit vector at component
            // i, so only component i of `target` contributes — and because
            // reduction commutes with the NTT, the same componentwise add
            // is valid in evaluation form.
            let p = ring.primes()[i];
            for c in 0..ring.degree() {
                b_i.residues[i][c] = add_mod(b_i.residues[i][c], target.residues[i][c], p);
            }
            parts.push((b_i, a_i));
        }
        let shoup = parts
            .iter()
            .map(|(b_i, a_i)| (shoup_tables(ring, b_i), shoup_tables(ring, a_i)))
            .collect();
        KeySwitchKey { parts, shoup }
    }

    /// Generates the relinearization key (`s' = s²`).
    pub fn relin_key<R: Rng + ?Sized>(&self, rng: &mut R) -> RelinKey {
        let ring = self.ctx.ring();
        let s2 = ring.mul(&self.sk.s, &self.sk.s);
        RelinKey(self.key_switch_key(&s2, rng))
    }

    /// Generates Galois keys for the given Galois elements, caching each
    /// element's evaluation-domain permutation alongside its key.
    ///
    /// # Panics
    ///
    /// Panics if an element is even or out of range (see
    /// [`crate::poly::RingContext::automorphism`]).
    pub fn galois_keys<R: Rng + ?Sized>(&self, elements: &[u64], rng: &mut R) -> GaloisKeys {
        let ring = self.ctx.ring();
        let mut keys = HashMap::new();
        for &g in elements {
            if g == 1 || keys.contains_key(&g) {
                continue;
            }
            let s_g = ring.automorphism(&self.sk.s, g);
            keys.insert(
                g,
                GaloisKeyEntry {
                    key: self.key_switch_key(&s_g, rng),
                    perm: ring.galois_eval_permutation(g),
                },
            );
        }
        GaloisKeys { keys }
    }

    /// Generates Galois keys sufficient for `rotate_rows` by each of
    /// `steps` and, if `include_column_swap`, for `rotate_columns`.
    pub fn galois_keys_for_rotations<R: Rng + ?Sized>(
        &self,
        steps: &[i64],
        include_column_swap: bool,
        rng: &mut R,
    ) -> GaloisKeys {
        let n = self.ctx.params().poly_degree;
        let mut elements: Vec<u64> = steps
            .iter()
            .map(|&s| crate::encoding::galois_element_for_rotation(n, s))
            .collect();
        if include_column_swap {
            elements.push(crate::encoding::galois_element_for_column_swap(n));
        }
        self.galois_keys(&elements, rng)
    }
}

/// Shoup precomputations for every residue of an evaluation-form key
/// polynomial.
fn shoup_tables(ring: &crate::poly::RingContext, poly: &RnsPoly) -> Vec<Vec<u64>> {
    ring.primes()
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            poly.residues[i]
                .iter()
                .map(|&w| shoup_precompute(w, p))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BfvParams;
    use rand::SeedableRng;

    #[test]
    fn keygen_produces_distinct_parts() {
        let ctx = BfvContext::new(BfvParams::test_small()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let rk = kg.relin_key(&mut rng);
        assert_eq!(rk.0.parts.len(), ctx.ring().num_primes());
        assert_eq!(rk.0.shoup.len(), ctx.ring().num_primes());
        assert_ne!(rk.0.parts[0].1, rk.0.parts[1].1);
    }

    #[test]
    fn galois_keys_skip_identity_and_dedup() {
        let ctx = BfvContext::new(BfvParams::test_small()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let gk = kg.galois_keys(&[1, 3, 3, 9], &mut rng);
        assert_eq!(gk.elements(), vec![3, 9]);
        assert!(gk.contains(3));
        assert!(!gk.contains(1));
        // every key comes with its cached eval-domain permutation
        for g in gk.elements() {
            assert_eq!(gk.keys[&g].perm.len(), ctx.params().poly_degree);
        }
    }

    #[test]
    fn rotation_key_helper_collects_elements() {
        let ctx = BfvContext::new(BfvParams::test_small()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let gk = kg.galois_keys_for_rotations(&[1, -1, 4], true, &mut rng);
        assert_eq!(gk.elements().len(), 4);
    }
}
