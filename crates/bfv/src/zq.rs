//! Arithmetic in 64-bit prime fields: modular ops, deterministic
//! Miller–Rabin primality, NTT-friendly prime search, and roots of unity.
//!
//! Every RNS component of a BFV ciphertext lives in `Z_p` for a prime
//! `p ≡ 1 (mod 2N)` so the negacyclic NTT exists. This module finds those
//! primes and the 2N-th roots of unity the NTT tables need.

/// `(a + b) mod m` for `a, b < m`.
#[inline]
pub fn add_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(a < m && b < m);
    let (s, ov) = a.overflowing_add(b);
    if ov || s >= m {
        s.wrapping_sub(m)
    } else {
        s
    }
}

/// `(a - b) mod m` for `a, b < m`.
#[inline]
pub fn sub_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(a < m && b < m);
    if a >= b {
        a - b
    } else {
        a.wrapping_sub(b).wrapping_add(m)
    }
}

/// `(a * b) mod m` via 128-bit widening.
#[inline]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `a^e mod m` by square-and-multiply.
pub fn pow_mod(mut a: u64, mut e: u64, m: u64) -> u64 {
    a %= m;
    let mut acc = 1u64 % m;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul_mod(acc, a, m);
        }
        a = mul_mod(a, a, m);
        e >>= 1;
    }
    acc
}

/// Modular inverse of `a` modulo prime `p` (Fermat).
///
/// # Panics
///
/// Panics if `a ≡ 0 (mod p)`.
pub fn inv_mod(a: u64, p: u64) -> u64 {
    assert!(!a.is_multiple_of(p), "zero has no inverse");
    pow_mod(a, p - 2, p)
}

/// Shoup precomputation: `floor(w * 2^64 / p)` for fast `mul_mod_shoup`.
#[inline]
pub fn shoup_precompute(w: u64, p: u64) -> u64 {
    (((w as u128) << 64) / p as u128) as u64
}

/// `(a * w) mod p` using a Shoup-precomputed `w_shoup`; ~2× faster than
/// `mul_mod` for fixed multiplicands (NTT twiddles).
#[inline]
pub fn mul_mod_shoup(a: u64, w: u64, w_shoup: u64, p: u64) -> u64 {
    let q = ((a as u128 * w_shoup as u128) >> 64) as u64;
    let r = a.wrapping_mul(w).wrapping_sub(q.wrapping_mul(p));
    if r >= p {
        r - p
    } else {
        r
    }
}

/// Deterministic Miller–Rabin for `u64` (fixed witness set, correct for all
/// 64-bit inputs).
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n.is_multiple_of(p) {
            return n == p;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d & 1 == 0 {
        d >>= 1;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Returns `count` distinct primes `p ≡ 1 (mod modulus)` just below
/// `2^bits`, descending, skipping any in `exclude`.
///
/// # Panics
///
/// Panics if `bits > 62`, `modulus` is not a power of two, or not enough
/// primes exist in range (never happens for the sizes used here).
pub fn ntt_primes(bits: u32, modulus: u64, count: usize, exclude: &[u64]) -> Vec<u64> {
    assert!((20..=62).contains(&bits), "prime size out of range");
    assert!(modulus.is_power_of_two());
    let mut out = Vec::with_capacity(count);
    // Largest candidate ≡ 1 mod `modulus` below 2^bits.
    let mut cand = ((1u64 << bits) - 1) / modulus * modulus + 1;
    while out.len() < count {
        assert!(cand > (1u64 << (bits - 1)), "ran out of candidate primes");
        if is_prime(cand) && !exclude.contains(&cand) && !out.contains(&cand) {
            out.push(cand);
        }
        cand -= modulus;
    }
    out
}

/// Finds a generator of the multiplicative group of `Z_p` (p prime).
pub fn primitive_root(p: u64) -> u64 {
    let phi = p - 1;
    let factors = factorize(phi);
    'g: for g in 2..p {
        for &f in &factors {
            if pow_mod(g, phi / f, p) == 1 {
                continue 'g;
            }
        }
        return g;
    }
    unreachable!("no primitive root found for prime {p}")
}

/// Returns a primitive `order`-th root of unity modulo prime `p`.
///
/// # Panics
///
/// Panics if `order` does not divide `p - 1`.
pub fn root_of_unity(order: u64, p: u64) -> u64 {
    assert!(
        (p - 1).is_multiple_of(order),
        "order {order} must divide p-1 ({p})"
    );
    let g = primitive_root(p);
    let root = pow_mod(g, (p - 1) / order, p);
    debug_assert_eq!(pow_mod(root, order, p), 1);
    debug_assert_ne!(pow_mod(root, order / 2, p), 1);
    root
}

/// Trial-division factorization (distinct prime factors only). The inputs
/// here are `p - 1` values that are smooth by construction, so this is fast.
fn factorize(mut n: u64) -> Vec<u64> {
    let mut factors = Vec::new();
    let mut d = 2u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            factors.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_mod_ops() {
        let p = 65537;
        assert_eq!(add_mod(65536, 1, p), 0);
        assert_eq!(sub_mod(0, 1, p), 65536);
        assert_eq!(mul_mod(65536, 65536, p), 1); // (-1)^2 = 1
        assert_eq!(pow_mod(3, 65536, p), 1); // Fermat
        assert_eq!(mul_mod(inv_mod(12345, p), 12345, p), 1);
    }

    #[test]
    fn overflow_safe_add() {
        let p = (1u64 << 62) - 57; // not prime necessarily; add_mod only needs m
        let a = p - 1;
        assert_eq!(add_mod(a, a, p), p - 2);
    }

    #[test]
    fn shoup_matches_plain() {
        let p = ntt_primes(50, 1 << 13, 1, &[])[0];
        let w = 0x1234_5678 % p;
        let ws = shoup_precompute(w, p);
        for a in [0u64, 1, 2, p - 1, p / 2, 0xdeadbeef % p] {
            assert_eq!(mul_mod_shoup(a, w, ws, p), mul_mod(a, w, p));
        }
    }

    #[test]
    fn primality_known_values() {
        assert!(is_prime(2));
        assert!(is_prime(65537));
        assert!(is_prime((1 << 61) - 1)); // Mersenne prime M61
        assert!(!is_prime(1));
        assert!(!is_prime(65536));
        assert!(!is_prime(3215031751)); // strong pseudoprime to bases 2,3,5,7
    }

    #[test]
    fn ntt_prime_search() {
        let n = 8192u64;
        let ps = ntt_primes(50, 2 * n, 4, &[]);
        assert_eq!(ps.len(), 4);
        for &p in &ps {
            assert!(is_prime(p));
            assert_eq!(p % (2 * n), 1);
            assert!(p < (1 << 50));
        }
        // excluded primes are skipped
        let more = ntt_primes(50, 2 * n, 2, &ps);
        assert!(more.iter().all(|p| !ps.contains(p)));
    }

    #[test]
    fn roots_of_unity() {
        let p = 65537u64;
        let root = root_of_unity(16384, p); // 2N for N = 8192
        assert_eq!(pow_mod(root, 16384, p), 1);
        assert_ne!(pow_mod(root, 8192, p), 1);
        // psi^N = -1 for negacyclic
        assert_eq!(pow_mod(root, 8192, p), p - 1);
    }

    #[test]
    fn primitive_root_of_fermat_prime() {
        // 3 is the canonical primitive root of 65537.
        assert_eq!(primitive_root(65537), 3);
    }
}
