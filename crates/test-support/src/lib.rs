//! # test-support — shared fixtures for the workspace test suites
//!
//! The per-crate `properties.rs` suites, the root integration tests, and the
//! codegen unit tests all need the same scaffolding: a seeded deterministic
//! RNG, a small BFV context that keeps key generation fast, a full
//! encrypt/evaluate/decrypt session, and "run this Quill program on the BFV
//! backend and compare slots against the interpreter" plumbing. This crate
//! centralizes those so each suite states only what it actually tests.
//!
//! Everything here is deterministic: the same seed always produces the same
//! inputs, keys, and ciphertexts.

use bfv::encoding::{BatchEncoder, Plaintext};
use bfv::encrypt::{Ciphertext, Decryptor, Encryptor};
use bfv::evaluator::Evaluator;
use bfv::keys::KeyGenerator;
use bfv::params::{BfvContext, BfvParams};
use porcupine::cegis::{default_parallelism, SynthesisOptions};
use porcupine::codegen::BfvRunner;
use porcupine::spec::KernelSpec;
use quill::cost::LatencyModel;
use quill::interp;
use quill::program::Program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// The plaintext modulus every suite models with (SEAL's 65537 default).
pub const T: u64 = 65537;

/// A deterministic RNG for a test, named so intent is visible at call sites.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A small BFV context (the `test_small` preset) that keeps key generation
/// and homomorphic evaluation fast enough for unit tests.
pub fn small_ctx() -> BfvContext {
    BfvContext::new(BfvParams::test_small()).expect("test_small parameters are valid")
}

/// Synthesis options for property tests: uniform latency model and a budget
/// far below tier-1's patience. Honors `PORCUPINE_JOBS` (the CI matrix sets
/// it to exercise the parallel-determinism contract on every push).
pub fn quick_synthesis_options(seed: u64) -> SynthesisOptions {
    SynthesisOptions {
        timeout: Duration::from_secs(30),
        optimize: true,
        latency: LatencyModel::uniform(),
        seed,
        parallelism: default_parallelism(),
    }
}

/// Synthesis options for the end-to-end kernel tests: the paper's profiled
/// latency model with a generous (but bounded) budget. Honors
/// `PORCUPINE_JOBS` like [`quick_synthesis_options`].
pub fn fast_synthesis_options() -> SynthesisOptions {
    SynthesisOptions {
        timeout: Duration::from_secs(300),
        optimize: true,
        latency: LatencyModel::profiled_default(),
        seed: 1,
        parallelism: default_parallelism(),
    }
}

/// The same options with an explicit worker-thread count — the knob the
/// determinism suites turn to compare jobs = 1 / 2 / 4 runs bit for bit.
pub fn with_jobs(mut options: SynthesisOptions, jobs: usize) -> SynthesisOptions {
    options.parallelism = std::num::NonZeroUsize::new(jobs).expect("jobs must be nonzero");
    options
}

/// One full homomorphic session: keys, encoder, encryptor, decryptor, and
/// evaluator over a borrowed context.
pub struct HeSession<'a> {
    pub keygen: KeyGenerator<'a>,
    pub encryptor: Encryptor<'a>,
    pub decryptor: Decryptor<'a>,
    pub encoder: BatchEncoder<'a>,
    pub evaluator: Evaluator<'a>,
}

impl<'a> HeSession<'a> {
    pub fn new(ctx: &'a BfvContext, rng: &mut StdRng) -> Self {
        let keygen = KeyGenerator::new(ctx, rng);
        let encryptor = Encryptor::new(ctx, keygen.public_key(rng));
        let decryptor = Decryptor::new(ctx, keygen.secret_key().clone());
        HeSession {
            encryptor,
            decryptor,
            encoder: BatchEncoder::new(ctx),
            evaluator: Evaluator::new(ctx),
            keygen,
        }
    }
}

/// Samples `count` model vectors of `n` slots with entries in `[0, bound)`.
pub fn sample_model_inputs(count: usize, n: usize, bound: u64, rng: &mut StdRng) -> Vec<Vec<u64>> {
    (0..count)
        .map(|_| (0..n).map(|_| rng.gen_range(0..bound)).collect())
        .collect()
}

/// Asserts `got` equals `want` on every masked slot.
pub fn assert_masked_slots_eq(got: &[u64], want: &[u64], mask: &[bool], label: &str) {
    for (i, &on) in mask.iter().enumerate() {
        if on {
            assert_eq!(got[i], want[i], "{label}: slot {i}");
        }
    }
}

/// Runs `prog` on random `[0, input_bound)` inputs through both the Quill
/// interpreter and the encrypted BFV backend, asserting the given output
/// `slots` agree and that the ciphertext retains noise budget.
pub fn assert_backend_matches_interp(
    ctx: &BfvContext,
    prog: &Program,
    model_n: usize,
    slots: &[usize],
    input_bound: u64,
    rng: &mut StdRng,
) {
    let session = HeSession::new(ctx, rng);
    let runner = BfvRunner::for_programs(ctx, &session.keygen, &[prog], rng);
    let t = ctx.params().plain_modulus;

    let ct_model = sample_model_inputs(prog.num_ct_inputs, model_n, input_bound, rng);
    let pt_model = sample_model_inputs(prog.num_pt_inputs, model_n, input_bound, rng);
    let expected = interp::eval_concrete(prog, &ct_model, &pt_model, t);

    let encoder = runner.encoder();
    let cts: Vec<Ciphertext> = ct_model
        .iter()
        .map(|v| session.encryptor.encrypt(&encoder.encode(v), rng))
        .collect();
    let pts: Vec<Plaintext> = pt_model.iter().map(|v| encoder.encode(v)).collect();
    let ct_refs: Vec<&Ciphertext> = cts.iter().collect();
    let pt_refs: Vec<&Plaintext> = pts.iter().collect();
    let out = runner.run(prog, &ct_refs, &pt_refs);

    let budget = session.decryptor.invariant_noise_budget(&out);
    assert!(
        budget > 0,
        "{}: noise budget exhausted ({budget})",
        prog.name
    );
    let decoded = encoder.decode(&session.decryptor.decrypt(&out));
    let mut mask = vec![false; expected.len()];
    for &slot in slots {
        mask[slot] = true;
    }
    assert_masked_slots_eq(&decoded, &expected, &mask, &prog.name);
}

/// Like [`assert_backend_matches_interp`] but takes the slots to compare
/// from a spec's output mask (the integration-test shape).
pub fn assert_backend_matches_spec_mask(
    ctx: &BfvContext,
    prog: &Program,
    spec: &KernelSpec,
    input_bound: u64,
    rng: &mut StdRng,
) {
    let slots: Vec<usize> = spec
        .output_mask
        .iter()
        .enumerate()
        .filter_map(|(i, &on)| on.then_some(i))
        .collect();
    assert_backend_matches_interp(ctx, prog, spec.n, &slots, input_bound, rng);
}

#[cfg(test)]
mod tests {
    use super::*;
    use quill::program::{Instr, ValRef};

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(9);
        let mut b = seeded_rng(9);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn session_roundtrips_a_plaintext() {
        let ctx = small_ctx();
        let mut rng = seeded_rng(17);
        let s = HeSession::new(&ctx, &mut rng);
        let v: Vec<u64> = (0..s.encoder.slot_count() as u64).collect();
        let ct = s.encryptor.encrypt(&s.encoder.encode(&v), &mut rng);
        assert_eq!(s.encoder.decode(&s.decryptor.decrypt(&ct)), v);
    }

    #[test]
    fn backend_helper_accepts_a_correct_program() {
        let ctx = small_ctx();
        let mut rng = seeded_rng(23);
        let prog = Program::new(
            "pairsum",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
            ],
            ValRef::Instr(1),
        );
        // slot i reads i and i+1; stay clear of the row wrap.
        assert_backend_matches_interp(&ctx, &prog, 8, &[0, 1, 2], 64, &mut rng);
    }

    #[test]
    #[should_panic(expected = "slot 0")]
    fn masked_slot_comparison_reports_mismatches() {
        assert_masked_slots_eq(&[1, 2], &[3, 2], &[true, true], "demo");
    }
}
