//! # test-support — shared fixtures for the workspace test suites
//!
//! The per-crate `properties.rs` suites, the root integration tests, and the
//! codegen unit tests all need the same scaffolding: a seeded deterministic
//! RNG, a small BFV context that keeps key generation fast, a full
//! encrypt/evaluate/decrypt session, and "run this Quill program on the BFV
//! backend and compare slots against the interpreter" plumbing. This crate
//! centralizes those so each suite states only what it actually tests.
//!
//! Everything here is deterministic: the same seed always produces the same
//! inputs, keys, and ciphertexts.

use bfv::encoding::{BatchEncoder, Plaintext};
use bfv::encrypt::{Ciphertext, Decryptor, Encryptor};
use bfv::evaluator::Evaluator;
use bfv::keys::KeyGenerator;
use bfv::params::{BfvContext, BfvParams, ParamPolicy};
use porcupine::cegis::{CachePolicy, SynthesisOptions};
use porcupine::codegen::BfvRunner;
use porcupine::opt::{self, OptLevel};
use porcupine::spec::KernelSpec;
use proptest::prelude::*;
use quill::cost::LatencyModel;
use quill::interp;
use quill::program::{Instr, Program, PtOperand, ValRef};
use quill::scheme::SchemeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// The plaintext modulus every suite models with (SEAL's 65537 default).
pub const T: u64 = 65537;

/// A deterministic RNG for a test, named so intent is visible at call sites.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A small BFV context (the `test_small` preset) that keeps key generation
/// and homomorphic evaluation fast enough for unit tests.
pub fn small_ctx() -> BfvContext {
    BfvContext::new(BfvParams::test_small()).expect("test_small parameters are valid")
}

/// The middle-end level the suites lower programs with before backend
/// execution: `PORCUPINE_OPT` (the CI matrix runs the root suites at `0`
/// and `2`) or the library default.
pub fn test_opt_level() -> OptLevel {
    opt::default_opt_level()
}

/// The parameter policy selected by the `PORCUPINE_PARAMS` environment
/// variable: `auto` → noise-aware automatic selection, `paper` → the
/// paper's fixed `N = 8192` set, unset → `None` (suites fall back to
/// their fast fixed presets).
///
/// # Panics
///
/// Panics on any other value. A typo'd CI leg silently falling back to
/// the fast preset would go green without exercising the selector at all.
pub fn param_policy_from_env() -> Option<ParamPolicy> {
    match std::env::var("PORCUPINE_PARAMS").ok()?.trim() {
        "auto" => Some(ParamPolicy::auto()),
        "paper" => Some(ParamPolicy::Fixed(BfvParams::paper())),
        other => panic!("PORCUPINE_PARAMS must be 'auto' or 'paper', got '{other}'"),
    }
}

/// The scheme backend selected by the `PORCUPINE_SCHEME` environment
/// variable (`bfv` or `bgv` — the CI matrix runs a dedicated `bgv` leg),
/// defaulting to BFV when unset.
///
/// # Panics
///
/// Panics on any other value, the same contract as
/// [`param_policy_from_env`]: a typo'd CI leg silently falling back to the
/// BFV backend would go green without exercising the requested scheme.
pub fn scheme_from_env() -> SchemeId {
    porcupine::scheme::default_scheme()
}

/// The parameter set a noise/backend suite should evaluate `prog` under:
/// honors `PORCUPINE_PARAMS` (the dedicated CI leg sets `auto`, exercising
/// the selector end to end on every generated program), defaulting to the
/// fast `test_small` preset. Auto selection that exhausts the candidate
/// table (a random program deeper than any real kernel) falls back to the
/// paper set — the suites assert inequalities that hold under *any*
/// parameters, so the fallback keeps them meaningful.
pub fn noise_test_params(prog: &Program, min_slots: usize) -> BfvParams {
    match param_policy_from_env() {
        Some(policy) => bfv::params::resolve_policy(&policy, prog, min_slots, T)
            .unwrap_or_else(|_| BfvParams::paper()),
        None => BfvParams::test_small(),
    }
}

/// Synthesis options for property tests: uniform latency model and a budget
/// far below tier-1's patience. Honors `PORCUPINE_JOBS` (the CI matrix sets
/// it to exercise the parallel-determinism contract on every push),
/// `PORCUPINE_OPT` (ditto, for the middle-end), and `PORCUPINE_STRATEGY`
/// (the CI determinism legs run the suites under both enumerators). The
/// persistent cache is **disabled**: a test must exercise the search it
/// claims to test, never a previous run's on-disk answer — suites that
/// test the cache itself opt in with an explicit temp directory.
pub fn quick_synthesis_options(seed: u64) -> SynthesisOptions {
    SynthesisOptions {
        timeout: Duration::from_secs(30),
        optimize: true,
        latency: LatencyModel::uniform(),
        seed,
        cache: CachePolicy::Disabled,
        ..SynthesisOptions::default()
    }
}

/// Synthesis options for the end-to-end kernel tests: the paper's profiled
/// latency model with a generous (but bounded) budget. Honors
/// `PORCUPINE_JOBS`, `PORCUPINE_OPT`, and `PORCUPINE_STRATEGY` like
/// [`quick_synthesis_options`], and disables the persistent cache for the
/// same hermeticity reason.
pub fn fast_synthesis_options() -> SynthesisOptions {
    SynthesisOptions {
        timeout: Duration::from_secs(300),
        optimize: true,
        latency: LatencyModel::profiled_default(),
        seed: 1,
        cache: CachePolicy::Disabled,
        ..SynthesisOptions::default()
    }
}

/// The same options with an explicit worker-thread count — the knob the
/// determinism suites turn to compare jobs = 1 / 2 / 4 runs bit for bit.
pub fn with_jobs(mut options: SynthesisOptions, jobs: usize) -> SynthesisOptions {
    options.parallelism = std::num::NonZeroUsize::new(jobs).expect("jobs must be nonzero");
    options
}

/// The same options with an explicit phase-1 enumeration strategy — the
/// knob the cross-strategy agreement suites turn.
pub fn with_strategy(
    mut options: SynthesisOptions,
    strategy: porcupine::cegis::SearchStrategy,
) -> SynthesisOptions {
    options.strategy = strategy;
    options
}

/// One full homomorphic session: keys, encoder, encryptor, decryptor, and
/// evaluator over a borrowed context.
pub struct HeSession<'a> {
    pub keygen: KeyGenerator<'a>,
    pub encryptor: Encryptor<'a>,
    pub decryptor: Decryptor<'a>,
    pub encoder: BatchEncoder<'a>,
    pub evaluator: Evaluator<'a>,
}

impl<'a> HeSession<'a> {
    pub fn new(ctx: &'a BfvContext, rng: &mut StdRng) -> Self {
        let keygen = KeyGenerator::new(ctx, rng);
        let encryptor = Encryptor::new(ctx, keygen.public_key(rng));
        let decryptor = Decryptor::new(ctx, keygen.secret_key().clone());
        HeSession {
            encryptor,
            decryptor,
            encoder: BatchEncoder::new(ctx),
            evaluator: Evaluator::new(ctx),
            keygen,
        }
    }
}

/// Proptest strategy: a random *valid* straight-line program over
/// `num_ct_inputs` ciphertext inputs, covering the full instruction set
/// including explicit `relin-ct` (emitted only over statically size-3
/// values, so every generated program passes `Program::validate`). Shared
/// by the quill IR property suite and the middle-end pass suites.
pub fn arb_program(num_ct_inputs: usize, max_len: usize) -> impl Strategy<Value = Program> {
    assert!(num_ct_inputs >= 1 && max_len >= 2);
    prop::collection::vec((0u8..8, any::<u16>(), any::<u16>(), -5i64..=5), 1..max_len).prop_map(
        move |steps| {
            let mut instrs: Vec<Instr> = Vec::new();
            // Ciphertext size of each value (inputs then instruction results),
            // tracked so relin-ct only lands on size-3 values.
            let mut sizes: Vec<u8> = vec![2; num_ct_inputs];
            for (op, a, b, r) in steps {
                let avail = num_ct_inputs + instrs.len();
                let pick = |x: u16| -> ValRef {
                    let i = x as usize % avail;
                    if i < num_ct_inputs {
                        ValRef::Input(i)
                    } else {
                        ValRef::Instr(i - num_ct_inputs)
                    }
                };
                let idx = |v: ValRef| match v {
                    ValRef::Input(i) => i,
                    ValRef::Instr(j) => num_ct_inputs + j,
                };
                let (lhs, rhs) = (pick(a), pick(b));
                let instr = match op {
                    0 => Instr::AddCtCt(lhs, rhs),
                    1 => Instr::SubCtCt(lhs, rhs),
                    2 => Instr::MulCtCt(lhs, rhs),
                    3 => Instr::AddCtPt(lhs, PtOperand::Splat(r)),
                    4 => Instr::SubCtPt(lhs, PtOperand::Splat(r)),
                    5 => Instr::MulCtPt(lhs, PtOperand::Splat(r)),
                    6 => Instr::RotCt(lhs, if r == 0 { 1 } else { r }),
                    _ if sizes[idx(lhs)] == 3 => Instr::Relin(lhs),
                    _ => Instr::RotCt(lhs, if r == 0 { 1 } else { r }),
                };
                sizes.push(match &instr {
                    Instr::MulCtCt(..) => 3,
                    Instr::Relin(_) => 2,
                    Instr::AddCtCt(x, y) | Instr::SubCtCt(x, y) => {
                        sizes[idx(*x)].max(sizes[idx(*y)])
                    }
                    other => sizes[idx(other.ct_operands()[0])],
                });
                instrs.push(instr);
            }
            let output = ValRef::Instr(instrs.len() - 1);
            let prog = Program::new("random", num_ct_inputs, 0, instrs, output);
            debug_assert!(prog.validate().is_ok(), "{:?}", prog.validate());
            prog
        },
    )
}

/// Samples `count` model vectors of `n` slots with entries in `[0, bound)`.
pub fn sample_model_inputs(count: usize, n: usize, bound: u64, rng: &mut StdRng) -> Vec<Vec<u64>> {
    (0..count)
        .map(|_| (0..n).map(|_| rng.gen_range(0..bound)).collect())
        .collect()
}

/// Asserts `got` equals `want` on every masked slot.
pub fn assert_masked_slots_eq(got: &[u64], want: &[u64], mask: &[bool], label: &str) {
    for (i, &on) in mask.iter().enumerate() {
        if on {
            assert_eq!(got[i], want[i], "{label}: slot {i}");
        }
    }
}

/// Runs `prog` on random `[0, input_bound)` inputs through both the Quill
/// interpreter and the encrypted BFV backend, asserting the given output
/// `slots` agree and that the ciphertext retains noise budget.
///
/// The interpreter evaluates `prog` as given; the backend executes it
/// lowered through the middle-end at [`test_opt_level`] (the backend runs
/// only legal IR, and lowering must not change any decrypted slot — so
/// every call doubles as a middle-end soundness check at the CI matrix's
/// `-O` level).
pub fn assert_backend_matches_interp(
    ctx: &BfvContext,
    prog: &Program,
    model_n: usize,
    slots: &[usize],
    input_bound: u64,
    rng: &mut StdRng,
) {
    let session = HeSession::new(ctx, rng);
    let (lowered, _) = opt::optimize(prog, test_opt_level());
    let runner = BfvRunner::for_programs(ctx, &session.keygen, &[&lowered], rng);
    let t = ctx.params().plain_modulus;

    let ct_model = sample_model_inputs(prog.num_ct_inputs, model_n, input_bound, rng);
    let pt_model = sample_model_inputs(prog.num_pt_inputs, model_n, input_bound, rng);
    let expected = interp::eval_concrete(prog, &ct_model, &pt_model, t);

    let encoder = runner.encoder();
    let cts: Vec<Ciphertext> = ct_model
        .iter()
        .map(|v| session.encryptor.encrypt(&encoder.encode(v), rng))
        .collect();
    let pts: Vec<Plaintext> = pt_model.iter().map(|v| encoder.encode(v)).collect();
    let ct_refs: Vec<&Ciphertext> = cts.iter().collect();
    let pt_refs: Vec<&Plaintext> = pts.iter().collect();
    let out = runner.run(&lowered, &ct_refs, &pt_refs);

    let budget = session.decryptor.invariant_noise_budget(&out);
    assert!(
        budget > 0,
        "{}: noise budget exhausted ({budget})",
        prog.name
    );
    let decoded = encoder.decode(&session.decryptor.decrypt(&out));
    let mut mask = vec![false; expected.len()];
    for &slot in slots {
        mask[slot] = true;
    }
    assert_masked_slots_eq(&decoded, &expected, &mask, &prog.name);
}

/// Differential testing across the whole pipeline: one program, one set of
/// inputs, executed by the Quill interpreter and by encrypted backends
/// under multiple parameter sets — all asserted slot-identical.
///
/// Two harnesses share the machinery: [`assert_differential`] (BFV under
/// paper + auto parameters, with the selection-margin certificate) and
/// [`assert_cross_scheme`] (every [`SchemeId`] backend against the
/// interpreter and against each other, each under its own auto-selected
/// parameters plus — noise model permitting — the paper set).
pub mod differential {
    use super::*;
    use bfv::noise::NoiseModel;
    use bfv::params::DEFAULT_MARGIN_BITS;
    use porcupine::codegen::Runner;
    use porcupine::scheme::{BfvScheme, BgvScheme, Scheme};

    /// What the auto leg measured, for reporting/extra assertions.
    #[derive(Debug, Clone)]
    pub struct DifferentialReport {
        /// The auto-selected parameter set.
        pub auto_params: BfvParams,
        /// Predicted remaining budget (bits) under the auto set.
        pub predicted_budget_bits: f64,
        /// Measured remaining budget (bits) under the auto set.
        pub measured_budget_auto: i64,
        /// Measured remaining budget (bits) under the paper set.
        pub measured_budget_paper: i64,
    }

    /// Encrypt-run-decrypt of a lowered program under one parameter set on
    /// scheme `S`, returning the decoded slots and the measured remaining
    /// budget. The whole leg goes through the [`Scheme`] trait — the same
    /// surface the generic [`Runner`] lowers onto — so a divergence here is
    /// a backend bug, never a harness one.
    fn run_scheme<S: Scheme>(
        params: BfvParams,
        lowered: &Program,
        ct_model: &[Vec<u64>],
        pt_model: &[Vec<u64>],
        seed: u64,
    ) -> (Vec<u64>, i64) {
        let ctx = S::context(params).expect("differential params are valid");
        let mut rng = seeded_rng(seed);
        let keygen = S::keygen(&ctx, &mut rng);
        let encryptor = S::encryptor(&ctx, &keygen, &mut rng);
        let decryptor = S::decryptor(&ctx, &keygen);
        let runner = Runner::<'_, S>::for_programs(&ctx, &keygen, &[lowered], &mut rng);
        let encoder = runner.encoder();
        let cts: Vec<S::Ciphertext> = ct_model
            .iter()
            .map(|v| S::encrypt(&encryptor, &S::encode(encoder, v), &mut rng))
            .collect();
        let pts: Vec<S::Plaintext> = pt_model.iter().map(|v| S::encode(encoder, v)).collect();
        let ct_refs: Vec<&S::Ciphertext> = cts.iter().collect();
        let pt_refs: Vec<&S::Plaintext> = pts.iter().collect();
        let out = runner.run(lowered, &ct_refs, &pt_refs);
        (
            S::decode(encoder, &S::decrypt(&decryptor, &out)),
            S::noise_budget(&decryptor, &out),
        )
    }

    /// [`run_scheme`] dispatched on a runtime [`SchemeId`].
    pub fn run_under_scheme(
        scheme: SchemeId,
        params: BfvParams,
        lowered: &Program,
        ct_model: &[Vec<u64>],
        pt_model: &[Vec<u64>],
        seed: u64,
    ) -> (Vec<u64>, i64) {
        match scheme {
            SchemeId::Bfv => run_scheme::<BfvScheme>(params, lowered, ct_model, pt_model, seed),
            SchemeId::Bgv => run_scheme::<BgvScheme>(params, lowered, ct_model, pt_model, seed),
        }
    }

    /// The BFV leg the original two-parameter harness runs.
    fn run_under(
        params: BfvParams,
        lowered: &Program,
        ct_model: &[Vec<u64>],
        pt_model: &[Vec<u64>],
        seed: u64,
    ) -> (Vec<u64>, i64) {
        run_scheme::<BfvScheme>(params, lowered, ct_model, pt_model, seed)
    }

    /// Runs `prog` (lowered at [`test_opt_level`]) on random
    /// `[0, input_bound)` inputs through the interpreter and through the
    /// BFV backend under **both** the paper parameters and auto-selected
    /// parameters, asserting:
    ///
    /// * all three agree on every slot in `slots`;
    /// * both backend legs retain positive measured budget;
    /// * the auto leg's measured budget is at least the selection margin
    ///   (the selector's certificate holds in practice).
    pub fn assert_differential(
        prog: &Program,
        model_n: usize,
        slots: &[usize],
        input_bound: u64,
        seed: u64,
    ) -> DifferentialReport {
        let (lowered, _) = opt::optimize(prog, test_opt_level());
        let mut rng = seeded_rng(seed);
        let ct_model = sample_model_inputs(prog.num_ct_inputs, model_n, input_bound, &mut rng);
        let pt_model = sample_model_inputs(prog.num_pt_inputs, model_n, input_bound, &mut rng);
        let expected = interp::eval_concrete(prog, &ct_model, &pt_model, T);

        let auto_params =
            bfv::params::resolve_policy(&bfv::params::ParamPolicy::auto(), &lowered, model_n, T)
                .unwrap_or_else(|e| panic!("{}: auto selection failed: {e}", prog.name));
        let predicted = NoiseModel::for_params(&auto_params)
            .analyze(&lowered)
            .predicted_budget_bits;

        let mut mask = vec![false; model_n];
        for &slot in slots {
            mask[slot] = true;
        }
        let mut budgets = Vec::new();
        for (label, params) in [("paper", BfvParams::paper()), ("auto", auto_params.clone())] {
            let (decoded, budget) = run_under(params, &lowered, &ct_model, &pt_model, seed ^ 0xD1F);
            assert!(
                budget > 0,
                "{} [{label}]: noise budget exhausted ({budget})",
                prog.name
            );
            assert_masked_slots_eq(
                &decoded,
                &expected,
                &mask,
                &format!("{} [{label}]", prog.name),
            );
            budgets.push(budget);
        }
        let report = DifferentialReport {
            auto_params,
            predicted_budget_bits: predicted,
            measured_budget_paper: budgets[0],
            measured_budget_auto: budgets[1],
        };
        assert!(
            report.measured_budget_auto as f64 >= DEFAULT_MARGIN_BITS,
            "{}: auto-selected params left {} bits measured, margin is {DEFAULT_MARGIN_BITS}",
            prog.name,
            report.measured_budget_auto
        );
        assert!(
            report.measured_budget_auto as f64 >= report.predicted_budget_bits,
            "{}: measured {} below predicted {:.1} — noise model unsound",
            prog.name,
            report.measured_budget_auto,
            report.predicted_budget_bits
        );
        report
    }

    /// [`assert_differential`] with the comparison slots taken from a
    /// spec's output mask.
    pub fn assert_differential_spec(
        prog: &Program,
        spec: &KernelSpec,
        input_bound: u64,
        seed: u64,
    ) -> DifferentialReport {
        let slots: Vec<usize> = spec
            .output_mask
            .iter()
            .enumerate()
            .filter_map(|(i, &on)| on.then_some(i))
            .collect();
        assert_differential(prog, spec.n, &slots, input_bound, seed)
    }

    /// One encrypted execution leg of the cross-scheme harness.
    #[derive(Debug, Clone)]
    pub struct CrossSchemeLeg {
        /// Which backend ran the leg.
        pub scheme: SchemeId,
        /// `"auto"` or `"paper"`.
        pub label: &'static str,
        /// The parameter set the leg ran under.
        pub params: BfvParams,
        /// Measured remaining noise budget (bits) at the output.
        pub measured_budget: i64,
    }

    /// Runs `prog` on the same random inputs through the interpreter and
    /// through **every** [`SchemeId`] backend, asserting all executions
    /// agree on every slot in `slots` with positive measured budget.
    ///
    /// Each scheme is lowered under its own legality rules and runs under
    /// its own auto-selected parameters (its selector's certificate must
    /// hold), plus the paper's fixed `N = 8192` set whenever the scheme's
    /// own noise model predicts positive remaining budget there. A skipped
    /// paper leg is reported on stderr — never silently dropped — and at
    /// least the auto leg always runs, so every scheme is exercised.
    pub fn assert_cross_scheme(
        prog: &Program,
        model_n: usize,
        slots: &[usize],
        input_bound: u64,
        seed: u64,
    ) -> Vec<CrossSchemeLeg> {
        let mut rng = seeded_rng(seed);
        let ct_model = sample_model_inputs(prog.num_ct_inputs, model_n, input_bound, &mut rng);
        let pt_model = sample_model_inputs(prog.num_pt_inputs, model_n, input_bound, &mut rng);
        let expected = interp::eval_concrete(prog, &ct_model, &pt_model, T);
        let mut mask = vec![false; model_n];
        for &slot in slots {
            mask[slot] = true;
        }

        let mut legs = Vec::new();
        for &scheme in SchemeId::ALL {
            let (lowered, _) = opt::optimize_with(prog, test_opt_level(), &scheme.legality());
            let auto_params = porcupine::scheme::resolve_params(
                scheme,
                &ParamPolicy::auto(),
                &lowered,
                model_n,
                T,
            )
            .unwrap_or_else(|e| panic!("{} [{scheme}]: auto selection failed: {e}", prog.name));

            let mut planned: Vec<(&'static str, BfvParams)> = vec![("auto", auto_params)];
            let paper = BfvParams::paper();
            let paper_predicted =
                porcupine::scheme::analyze_noise(scheme, &paper, &lowered).predicted_budget_bits;
            if paper_predicted > 0.0 {
                planned.push(("paper", paper));
            } else {
                eprintln!(
                    "{} [{scheme}/paper]: skipped — noise model predicts {:.1} bits of \
                     budget under the paper parameters",
                    prog.name, paper_predicted
                );
            }

            for (label, params) in planned {
                let (decoded, budget) = run_under_scheme(
                    scheme,
                    params.clone(),
                    &lowered,
                    &ct_model,
                    &pt_model,
                    seed ^ 0xC255,
                );
                assert!(
                    budget > 0,
                    "{} [{scheme}/{label}]: noise budget exhausted ({budget})",
                    prog.name
                );
                assert_masked_slots_eq(
                    &decoded,
                    &expected,
                    &mask,
                    &format!("{} [{scheme}/{label}]", prog.name),
                );
                legs.push(CrossSchemeLeg {
                    scheme,
                    label,
                    params,
                    measured_budget: budget,
                });
            }
        }
        legs
    }

    /// [`assert_cross_scheme`] with the comparison slots taken from a
    /// spec's output mask.
    pub fn assert_cross_scheme_spec(
        prog: &Program,
        spec: &KernelSpec,
        input_bound: u64,
        seed: u64,
    ) -> Vec<CrossSchemeLeg> {
        let slots: Vec<usize> = spec
            .output_mask
            .iter()
            .enumerate()
            .filter_map(|(i, &on)| on.then_some(i))
            .collect();
        assert_cross_scheme(prog, spec.n, &slots, input_bound, seed)
    }
}

/// Like [`assert_backend_matches_interp`] but takes the slots to compare
/// from a spec's output mask (the integration-test shape).
pub fn assert_backend_matches_spec_mask(
    ctx: &BfvContext,
    prog: &Program,
    spec: &KernelSpec,
    input_bound: u64,
    rng: &mut StdRng,
) {
    let slots: Vec<usize> = spec
        .output_mask
        .iter()
        .enumerate()
        .filter_map(|(i, &on)| on.then_some(i))
        .collect();
    assert_backend_matches_interp(ctx, prog, spec.n, &slots, input_bound, rng);
}

#[cfg(test)]
mod tests {
    use super::*;
    use quill::program::{Instr, ValRef};

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(9);
        let mut b = seeded_rng(9);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn session_roundtrips_a_plaintext() {
        let ctx = small_ctx();
        let mut rng = seeded_rng(17);
        let s = HeSession::new(&ctx, &mut rng);
        let v: Vec<u64> = (0..s.encoder.slot_count() as u64).collect();
        let ct = s.encryptor.encrypt(&s.encoder.encode(&v), &mut rng);
        assert_eq!(s.encoder.decode(&s.decryptor.decrypt(&ct)), v);
    }

    #[test]
    fn backend_helper_accepts_a_correct_program() {
        let ctx = small_ctx();
        let mut rng = seeded_rng(23);
        let prog = Program::new(
            "pairsum",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
            ],
            ValRef::Instr(1),
        );
        // slot i reads i and i+1; stay clear of the row wrap.
        assert_backend_matches_interp(&ctx, &prog, 8, &[0, 1, 2], 64, &mut rng);
    }

    #[test]
    #[should_panic(expected = "slot 0")]
    fn masked_slot_comparison_reports_mismatches() {
        assert_masked_slots_eq(&[1, 2], &[3, 2], &[true, true], "demo");
    }
}
