//! Sparse multivariate polynomials over `Z_t` — the symbolic values used to
//! verify synthesized kernels.
//!
//! A straight-line Quill program computes, in every slot, a polynomial over
//! the input slots with degree `2^mdepth ≪ t`. Two such programs agree on
//! **all** inputs iff their canonical polynomial forms agree slot-by-slot
//! (polynomials of per-variable degree `< t` over the field `Z_t` are
//! determined by their values). Comparing canonical forms therefore replaces
//! the paper's SMT `verify` query with an exact, deterministic decision
//! procedure; counter-examples come from Schwartz–Zippel sampling of the
//! nonzero difference in [`crate::interp`]'s caller (the synthesizer).

use crate::ring::Ring;
use std::collections::BTreeMap;
use std::fmt;

/// A monomial: sorted `(variable, exponent)` pairs, exponents ≥ 1.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Monomial(Vec<(u32, u32)>);

impl Monomial {
    /// The constant monomial `1`.
    pub fn unit() -> Self {
        Monomial(Vec::new())
    }

    /// The monomial `x_var`.
    pub fn var(var: u32) -> Self {
        Monomial(vec![(var, 1)])
    }

    /// Product of two monomials (merge exponents).
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut out = Vec::with_capacity(self.0.len() + other.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].0.cmp(&other.0[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.0[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((self.0[i].0, self.0[i].1 + other.0[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.0[i..]);
        out.extend_from_slice(&other.0[j..]);
        Monomial(out)
    }

    /// Total degree.
    pub fn degree(&self) -> u32 {
        self.0.iter().map(|&(_, e)| e).sum()
    }

    /// The variables and exponents.
    pub fn factors(&self) -> &[(u32, u32)] {
        &self.0
    }
}

/// A sparse multivariate polynomial over `Z_t` in canonical form
/// (map monomial → nonzero coefficient).
///
/// # Examples
///
/// ```
/// use quill::symbolic::SymPoly;
/// use quill::ring::Ring;
///
/// let x = SymPoly::var(0, 65537);
/// let y = SymPoly::var(1, 65537);
/// // (x + y)^2 == x^2 + 2xy + y^2
/// let lhs = x.add(&y).mul(&x.add(&y));
/// let rhs = x.mul(&x).add(&x.mul(&y).mul(&x.from_i64(2))).add(&y.mul(&y));
/// assert_eq!(lhs, rhs);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SymPoly {
    modulus: u64,
    terms: BTreeMap<Monomial, u64>,
}

impl SymPoly {
    /// The zero polynomial mod `t`.
    pub fn zero(modulus: u64) -> Self {
        SymPoly {
            modulus,
            terms: BTreeMap::new(),
        }
    }

    /// A constant polynomial.
    pub fn constant(value: i64, modulus: u64) -> Self {
        let mut p = SymPoly::zero(modulus);
        let v = value.rem_euclid(modulus as i64) as u64;
        if v != 0 {
            p.terms.insert(Monomial::unit(), v);
        }
        p
    }

    /// The variable `x_var`.
    pub fn var(var: u32, modulus: u64) -> Self {
        let mut p = SymPoly::zero(modulus);
        p.terms.insert(Monomial::var(var), 1);
        p
    }

    /// The modulus `t`.
    pub fn modulus(&self) -> u64 {
        self.modulus
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Total degree (0 for constants and zero).
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// Evaluates at an assignment `var → value` (missing vars read 0).
    pub fn eval(&self, assignment: &dyn Fn(u32) -> u64) -> u64 {
        let t = self.modulus;
        let mut acc = 0u64;
        for (m, &c) in &self.terms {
            let mut term = c;
            for &(v, e) in m.factors() {
                let base = assignment(v) % t;
                let mut pw = 1u64;
                for _ in 0..e {
                    pw = ((pw as u128 * base as u128) % t as u128) as u64;
                }
                term = ((term as u128 * pw as u128) % t as u128) as u64;
            }
            acc = (acc + term) % t;
        }
        acc
    }

    /// All variables mentioned.
    pub fn variables(&self) -> Vec<u32> {
        let mut vars: Vec<u32> = self
            .terms
            .keys()
            .flat_map(|m| m.factors().iter().map(|&(v, _)| v))
            .collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    fn insert_term(&mut self, m: Monomial, c: u64) {
        if c == 0 {
            return;
        }
        let t = self.modulus;
        let entry = self.terms.entry(m);
        match entry {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(c);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let v = (*e.get() + c) % t;
                if v == 0 {
                    e.remove();
                } else {
                    *e.get_mut() = v;
                }
            }
        }
    }
}

impl Ring for SymPoly {
    fn add(&self, other: &Self) -> Self {
        debug_assert_eq!(self.modulus, other.modulus);
        let mut out = self.clone();
        for (m, &c) in &other.terms {
            out.insert_term(m.clone(), c);
        }
        out
    }

    fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    fn mul(&self, other: &Self) -> Self {
        debug_assert_eq!(self.modulus, other.modulus);
        let t = self.modulus;
        let mut out = SymPoly::zero(t);
        for (ma, &ca) in &self.terms {
            for (mb, &cb) in &other.terms {
                let c = ((ca as u128 * cb as u128) % t as u128) as u64;
                out.insert_term(ma.mul(mb), c);
            }
        }
        out
    }

    fn neg(&self) -> Self {
        let t = self.modulus;
        SymPoly {
            modulus: t,
            terms: self
                .terms
                .iter()
                .map(|(m, &c)| (m.clone(), t - c))
                .collect(),
        }
    }

    fn from_i64(&self, v: i64) -> Self {
        SymPoly::constant(v, self.modulus)
    }

    fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }
}

impl fmt::Display for SymPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (m, c) in &self.terms {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            if m.factors().is_empty() {
                write!(f, "{c}")?;
            } else {
                if *c != 1 {
                    write!(f, "{c}·")?;
                }
                for (i, &(v, e)) in m.factors().iter().enumerate() {
                    if i > 0 {
                        write!(f, "·")?;
                    }
                    if e == 1 {
                        write!(f, "x{v}")?;
                    } else {
                        write!(f, "x{v}^{e}")?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: u64 = 65537;

    #[test]
    fn canonical_form_cancels() {
        let x = SymPoly::var(0, T);
        assert!(x.sub(&x).is_zero());
        let p = x.add(&x.from_i64(1));
        let q = p.mul(&p).sub(&p.mul(&p));
        assert!(q.is_zero());
    }

    #[test]
    fn algebraic_identity_factoring() {
        // a·x² + b·x == (a·x + b)·x — the polynomial-regression optimization
        // Porcupine discovers (§7.2).
        let a = SymPoly::var(0, T);
        let b = SymPoly::var(1, T);
        let x = SymPoly::var(2, T);
        let lhs = a.mul(&x).mul(&x).add(&b.mul(&x));
        let rhs = a.mul(&x).add(&b).mul(&x);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn eval_agrees_with_structure() {
        let x = SymPoly::var(0, T);
        let y = SymPoly::var(1, T);
        let p = x.mul(&y).add(&x.from_i64(7)).sub(&y);
        let assign = |v: u32| -> u64 {
            match v {
                0 => 10,
                1 => 3,
                _ => 0,
            }
        };
        assert_eq!(p.eval(&assign), (10 * 3 + 7 + T - 3) % T);
    }

    #[test]
    fn degree_and_variables() {
        let x = SymPoly::var(3, T);
        let y = SymPoly::var(1, T);
        let p = x.mul(&x).mul(&y).add(&y);
        assert_eq!(p.degree(), 3);
        assert_eq!(p.variables(), vec![1, 3]);
        assert_eq!(p.num_terms(), 2);
    }

    #[test]
    fn display_is_readable() {
        let x = SymPoly::var(0, T);
        let p = x.mul(&x).add(&x.from_i64(2).mul(&x)).add(&x.from_i64(5));
        assert_eq!(format!("{p}"), "5 + 2·x0 + x0^2");
    }

    #[test]
    fn monomial_merge() {
        let m1 = Monomial::var(0).mul(&Monomial::var(2));
        let m2 = Monomial::var(0).mul(&Monomial::var(1));
        let prod = m1.mul(&m2);
        assert_eq!(prod.factors(), &[(0, 2), (1, 1), (2, 1)]);
        assert_eq!(prod.degree(), 4);
    }
}
