//! S-expression surface syntax for Quill programs, in the spirit of the
//! paper's Racket-embedded DSL.
//!
//! ```text
//! (kernel gx (inputs (ct 1) (pt 0))
//!   (let c1 (rot-ct c0 -5))
//!   (let c2 (add-ct-ct c1 c0))
//!   (let c3 (mul-ct-pt c2 (splat 2)))
//!   (return c3))
//! ```
//!
//! Ciphertext inputs are `c0 … c{k-1}`; instruction `i` binds `c{k+i}`;
//! plaintext inputs are `p0 …`; splat constants are `(splat v)`. The printer
//! and parser round-trip every valid program.

use crate::program::{Instr, Program, PtOperand, ValRef};
use std::error::Error;
use std::fmt;

/// Parse errors with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Sexp {
    Atom(String, usize),
    List(Vec<Sexp>, usize),
}

impl Sexp {
    fn offset(&self) -> usize {
        match self {
            Sexp::Atom(_, o) | Sexp::List(_, o) => *o,
        }
    }
}

fn tokenize(src: &str) -> Result<Vec<(String, usize)>, ParseError> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '(' | ')' => {
                tokens.push((c.to_string(), i));
                i += 1;
            }
            ';' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            c if c.is_whitespace() => i += 1,
            _ => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_whitespace() || c == '(' || c == ')' || c == ';' {
                        break;
                    }
                    i += 1;
                }
                tokens.push((src[start..i].to_string(), start));
            }
        }
    }
    Ok(tokens)
}

fn parse_sexp(tokens: &[(String, usize)], pos: &mut usize) -> Result<Sexp, ParseError> {
    let (tok, off) = tokens.get(*pos).ok_or(ParseError {
        offset: tokens.last().map(|t| t.1).unwrap_or(0),
        message: "unexpected end of input".into(),
    })?;
    *pos += 1;
    match tok.as_str() {
        "(" => {
            let mut items = Vec::new();
            loop {
                match tokens.get(*pos) {
                    Some((t, _)) if t == ")" => {
                        *pos += 1;
                        return Ok(Sexp::List(items, *off));
                    }
                    Some(_) => items.push(parse_sexp(tokens, pos)?),
                    None => {
                        return Err(ParseError {
                            offset: *off,
                            message: "unclosed list".into(),
                        })
                    }
                }
            }
        }
        ")" => Err(ParseError {
            offset: *off,
            message: "unexpected ')'".into(),
        }),
        _ => Ok(Sexp::Atom(tok.clone(), *off)),
    }
}

fn err(offset: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        offset,
        message: message.into(),
    }
}

fn expect_atom(s: &Sexp) -> Result<(&str, usize), ParseError> {
    match s {
        Sexp::Atom(a, o) => Ok((a, *o)),
        Sexp::List(_, o) => Err(err(*o, "expected an atom")),
    }
}

fn parse_val_ref(name: &str, offset: usize, num_ct: usize) -> Result<ValRef, ParseError> {
    let idx: usize = name
        .strip_prefix('c')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(offset, format!("expected ciphertext name, got '{name}'")))?;
    if idx < num_ct {
        Ok(ValRef::Input(idx))
    } else {
        Ok(ValRef::Instr(idx - num_ct))
    }
}

fn parse_pt_operand(s: &Sexp) -> Result<PtOperand, ParseError> {
    match s {
        Sexp::Atom(a, o) => {
            let idx: usize = a
                .strip_prefix('p')
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(*o, format!("expected plaintext name, got '{a}'")))?;
            Ok(PtOperand::Input(idx))
        }
        Sexp::List(items, o) => {
            if items.len() == 2 {
                if let (Ok(("splat", _)), Sexp::Atom(v, vo)) = (expect_atom(&items[0]), &items[1]) {
                    let value: i64 = v
                        .parse()
                        .map_err(|_| err(*vo, format!("bad splat value '{v}'")))?;
                    return Ok(PtOperand::Splat(value));
                }
            }
            Err(err(*o, "expected p<i> or (splat v)"))
        }
    }
}

/// Parses a `(kernel …)` form into a validated [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntactic or structural
/// problem.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(src)?;
    let mut pos = 0;
    let top = parse_sexp(&tokens, &mut pos)?;
    if pos != tokens.len() {
        return Err(err(tokens[pos].1, "trailing input after kernel form"));
    }
    let items = match top {
        Sexp::List(items, _) => items,
        Sexp::Atom(_, o) => return Err(err(o, "expected (kernel …)")),
    };
    if items.len() < 3 {
        return Err(err(0, "kernel form needs a name, inputs, and a return"));
    }
    let (kw, kw_off) = expect_atom(&items[0])?;
    if kw != "kernel" {
        return Err(err(kw_off, format!("expected 'kernel', got '{kw}'")));
    }
    let (name, _) = expect_atom(&items[1])?;

    // (inputs (ct k) (pt m))
    let (num_ct, num_pt) = match &items[2] {
        Sexp::List(input_items, o) => {
            let mut ct = None;
            let mut pt = None;
            let (kw, kwo) = expect_atom(&input_items[0])?;
            if kw != "inputs" {
                return Err(err(kwo, "expected (inputs …)"));
            }
            for spec in &input_items[1..] {
                if let Sexp::List(pair, po) = spec {
                    if pair.len() == 2 {
                        let (kind, _) = expect_atom(&pair[0])?;
                        let (count, co) = expect_atom(&pair[1])?;
                        let v: usize = count
                            .parse()
                            .map_err(|_| err(co, format!("bad count '{count}'")))?;
                        match kind {
                            "ct" => ct = Some(v),
                            "pt" => pt = Some(v),
                            _ => return Err(err(*po, "expected (ct k) or (pt m)")),
                        }
                        continue;
                    }
                }
                return Err(err(spec.offset(), "expected (ct k) or (pt m)"));
            }
            (
                ct.ok_or_else(|| err(*o, "missing (ct k)"))?,
                pt.unwrap_or(0),
            )
        }
        other => return Err(err(other.offset(), "expected (inputs …)")),
    };

    let mut instrs: Vec<Instr> = Vec::new();
    let mut output: Option<ValRef> = None;
    for form in &items[3..] {
        let list = match form {
            Sexp::List(l, _) => l,
            Sexp::Atom(_, o) => return Err(err(*o, "expected (let …) or (return …)")),
        };
        let (head, ho) = expect_atom(&list[0])?;
        match head {
            "let" => {
                if list.len() != 3 {
                    return Err(err(ho, "(let c<i> (op …)) takes two arguments"));
                }
                let (bind_name, bo) = expect_atom(&list[1])?;
                let expected = format!("c{}", num_ct + instrs.len());
                if bind_name != expected {
                    return Err(err(
                        bo,
                        format!("expected binding '{expected}', got '{bind_name}'"),
                    ));
                }
                let op_list = match &list[2] {
                    Sexp::List(l, _) if !l.is_empty() => l,
                    other => return Err(err(other.offset(), "expected (op operands…)")),
                };
                let (op, oo) = expect_atom(&op_list[0])?;
                let ct_at = |i: usize| -> Result<ValRef, ParseError> {
                    let (a, o) = expect_atom(&op_list[i])?;
                    parse_val_ref(a, o, num_ct)
                };
                let instr = match op {
                    "add-ct-ct" | "sub-ct-ct" | "mul-ct-ct" => {
                        if op_list.len() != 3 {
                            return Err(err(oo, format!("{op} takes two operands")));
                        }
                        let a = ct_at(1)?;
                        let b = ct_at(2)?;
                        match op {
                            "add-ct-ct" => Instr::AddCtCt(a, b),
                            "sub-ct-ct" => Instr::SubCtCt(a, b),
                            _ => Instr::MulCtCt(a, b),
                        }
                    }
                    "add-ct-pt" | "sub-ct-pt" | "mul-ct-pt" => {
                        if op_list.len() != 3 {
                            return Err(err(oo, format!("{op} takes two operands")));
                        }
                        let a = ct_at(1)?;
                        let p = parse_pt_operand(&op_list[2])?;
                        match op {
                            "add-ct-pt" => Instr::AddCtPt(a, p),
                            "sub-ct-pt" => Instr::SubCtPt(a, p),
                            _ => Instr::MulCtPt(a, p),
                        }
                    }
                    "rot-ct" => {
                        if op_list.len() != 3 {
                            return Err(err(oo, "rot-ct takes a ciphertext and an amount"));
                        }
                        let a = ct_at(1)?;
                        let (amt, ao) = expect_atom(&op_list[2])?;
                        let r: i64 = amt
                            .parse()
                            .map_err(|_| err(ao, format!("bad rotation '{amt}'")))?;
                        Instr::RotCt(a, r)
                    }
                    "relin-ct" => {
                        if op_list.len() != 2 {
                            return Err(err(oo, "relin-ct takes one ciphertext"));
                        }
                        Instr::Relin(ct_at(1)?)
                    }
                    _ => return Err(err(oo, format!("unknown opcode '{op}'"))),
                };
                instrs.push(instr);
            }
            "return" => {
                if list.len() != 2 {
                    return Err(err(ho, "(return c<i>) takes one argument"));
                }
                let (a, o) = expect_atom(&list[1])?;
                output = Some(parse_val_ref(a, o, num_ct)?);
            }
            _ => return Err(err(ho, format!("expected 'let' or 'return', got '{head}'"))),
        }
    }
    let output = output.ok_or_else(|| err(0, "kernel has no (return …)"))?;
    let prog = Program::new(name, num_ct, num_pt, instrs, output);
    prog.validate()
        .map_err(|e| err(0, format!("invalid program: {e}")))?;
    Ok(prog)
}

fn val_name(r: ValRef, num_ct: usize) -> String {
    match r {
        ValRef::Input(i) => format!("c{i}"),
        ValRef::Instr(j) => format!("c{}", num_ct + j),
    }
}

fn pt_name(p: &PtOperand) -> String {
    match p {
        PtOperand::Input(i) => format!("p{i}"),
        PtOperand::Splat(v) => format!("(splat {v})"),
    }
}

/// Writes a program in the surface syntax (used by `Display` on
/// [`Program`]).
pub fn write_program(f: &mut fmt::Formatter<'_>, prog: &Program) -> fmt::Result {
    writeln!(
        f,
        "(kernel {} (inputs (ct {}) (pt {}))",
        prog.name, prog.num_ct_inputs, prog.num_pt_inputs
    )?;
    let k = prog.num_ct_inputs;
    for (i, instr) in prog.instrs.iter().enumerate() {
        let bind = format!("c{}", k + i);
        let body = match instr {
            Instr::AddCtCt(a, b) => format!("add-ct-ct {} {}", val_name(*a, k), val_name(*b, k)),
            Instr::SubCtCt(a, b) => format!("sub-ct-ct {} {}", val_name(*a, k), val_name(*b, k)),
            Instr::MulCtCt(a, b) => format!("mul-ct-ct {} {}", val_name(*a, k), val_name(*b, k)),
            Instr::AddCtPt(a, p) => format!("add-ct-pt {} {}", val_name(*a, k), pt_name(p)),
            Instr::SubCtPt(a, p) => format!("sub-ct-pt {} {}", val_name(*a, k), pt_name(p)),
            Instr::MulCtPt(a, p) => format!("mul-ct-pt {} {}", val_name(*a, k), pt_name(p)),
            Instr::RotCt(a, r) => format!("rot-ct {} {}", val_name(*a, k), r),
            Instr::Relin(a) => format!("relin-ct {}", val_name(*a, k)),
        };
        writeln!(f, "  (let {bind} ({body}))")?;
    }
    writeln!(f, "  (return {}))", val_name(prog.output, k))
}

/// Renders a program to a `String` in the surface syntax.
pub fn to_string(prog: &Program) -> String {
    format!("{prog}")
}

#[cfg(test)]
mod tests {
    use super::*;

    const GX: &str = "\
; Figure 6a, synthesized Gx
(kernel gx (inputs (ct 1) (pt 0))
  (let c1 (rot-ct c0 -5))
  (let c2 (add-ct-ct c0 c1))
  (let c3 (rot-ct c2 5))
  (let c4 (add-ct-ct c2 c3))
  (let c5 (rot-ct c4 -1))
  (let c6 (rot-ct c4 1))
  (let c7 (sub-ct-ct c6 c5))
  (return c7))";

    #[test]
    fn parses_figure_6a() {
        let p = parse_program(GX).unwrap();
        assert_eq!(p.name, "gx");
        assert_eq!(p.len(), 7);
        assert_eq!(p.logic_depth(), 6); // Table 2: synthesized Gx depth 6
        assert_eq!(p.rotation_amounts(), vec![-5, -1, 1, 5]);
    }

    #[test]
    fn roundtrips() {
        let p = parse_program(GX).unwrap();
        let printed = to_string(&p);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(p, reparsed);
    }

    #[test]
    fn roundtrips_pt_operands() {
        let src = "(kernel k (inputs (ct 1) (pt 2))
          (let c1 (mul-ct-pt c0 p1))
          (let c2 (add-ct-pt c1 (splat -3)))
          (return c2))";
        let p = parse_program(src).unwrap();
        let reparsed = parse_program(&to_string(&p)).unwrap();
        assert_eq!(p, reparsed);
    }

    #[test]
    fn reports_unknown_opcode() {
        let src = "(kernel k (inputs (ct 1) (pt 0)) (let c1 (frobnicate c0 c0)) (return c1))";
        let e = parse_program(src).unwrap_err();
        assert!(e.message.contains("frobnicate"), "{e}");
    }

    #[test]
    fn reports_wrong_binding_name() {
        let src = "(kernel k (inputs (ct 1) (pt 0)) (let c5 (rot-ct c0 1)) (return c5))";
        let e = parse_program(src).unwrap_err();
        assert!(e.message.contains("expected binding 'c1'"), "{e}");
    }

    #[test]
    fn reports_structural_errors() {
        // use-before-def caught by validation
        let src = "(kernel k (inputs (ct 1) (pt 0)) (let c1 (rot-ct c2 1)) (return c1))";
        let e = parse_program(src).unwrap_err();
        assert!(e.message.contains("invalid program"), "{e}");
    }

    #[test]
    fn reports_unclosed_list() {
        let e = parse_program("(kernel k (inputs (ct 1) (pt 0)").unwrap_err();
        assert!(e.message.contains("unclosed"), "{e}");
    }

    #[test]
    fn comments_are_ignored() {
        let src = "; header\n(kernel k (inputs (ct 1) (pt 0)) ; inline\n (return c0))";
        let p = parse_program(src).unwrap();
        assert_eq!(p.len(), 0);
        assert_eq!(p.output, ValRef::Input(0));
    }
}
