//! Straight-line SSA Quill programs: the paper's HE kernel representation.
//!
//! A [`Program`] is a list of instructions over ciphertext values (inputs or
//! earlier results) and plaintext operands (inputs or splat constants). Each
//! instruction defines one new ciphertext; the program's single output is a
//! ciphertext reference, matching the kernels in the paper (Figures 3e, 5, 6).

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A ciphertext value: a program input or the result of instruction `i`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum ValRef {
    /// The `i`-th ciphertext input.
    Input(usize),
    /// The result of the `i`-th instruction.
    Instr(usize),
}

/// A plaintext operand.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PtOperand {
    /// The `i`-th plaintext input vector.
    Input(usize),
    /// A constant vector with the same signed value in every slot.
    Splat(i64),
}

/// One Quill instruction (Table 1 of the paper, plus explicit
/// relinearization). Rotation amounts are slot counts; positive rotates
/// **left** (`out[i] = in[(i + x) mod n]`).
///
/// `Relin` is a no-op on slot values (the interpreter and symbolic lifter
/// treat it as the identity) but a real BFV operation: it key-switches a
/// size-3 ciphertext (the output of `MulCtCt`) back to size 2, which
/// rotations and further multiplies require. The middle-end
/// (`porcupine::opt`) decides where relinearizations go; the backend
/// executes exactly what the IR says.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// Slot-wise ciphertext + ciphertext.
    AddCtCt(ValRef, ValRef),
    /// Slot-wise ciphertext − ciphertext.
    SubCtCt(ValRef, ValRef),
    /// Slot-wise ciphertext × ciphertext (incurs a multiplicative level and
    /// produces a size-3 ciphertext on the backend).
    MulCtCt(ValRef, ValRef),
    /// Slot-wise ciphertext + plaintext.
    AddCtPt(ValRef, PtOperand),
    /// Slot-wise ciphertext − plaintext.
    SubCtPt(ValRef, PtOperand),
    /// Slot-wise ciphertext × plaintext (one multiplicative level).
    MulCtPt(ValRef, PtOperand),
    /// Rotate slots left by the given amount (negative = right).
    RotCt(ValRef, i64),
    /// Relinearize a size-3 ciphertext back to size 2 (identity on slots).
    Relin(ValRef),
}

impl Instr {
    /// The ciphertext operands of this instruction.
    pub fn ct_operands(&self) -> Vec<ValRef> {
        match self {
            Instr::AddCtCt(a, b) | Instr::SubCtCt(a, b) | Instr::MulCtCt(a, b) => vec![*a, *b],
            Instr::AddCtPt(a, _)
            | Instr::SubCtPt(a, _)
            | Instr::MulCtPt(a, _)
            | Instr::RotCt(a, _)
            | Instr::Relin(a) => vec![*a],
        }
    }

    /// The same instruction with every ciphertext operand rewritten by `f`
    /// (the shared plumbing of DCE, CSE, `append`, and the optimizer
    /// passes).
    pub fn map_ct_operands(&self, mut f: impl FnMut(ValRef) -> ValRef) -> Instr {
        match self.clone() {
            Instr::AddCtCt(a, b) => Instr::AddCtCt(f(a), f(b)),
            Instr::SubCtCt(a, b) => Instr::SubCtCt(f(a), f(b)),
            Instr::MulCtCt(a, b) => Instr::MulCtCt(f(a), f(b)),
            Instr::AddCtPt(a, p) => Instr::AddCtPt(f(a), p),
            Instr::SubCtPt(a, p) => Instr::SubCtPt(f(a), p),
            Instr::MulCtPt(a, p) => Instr::MulCtPt(f(a), p),
            Instr::RotCt(a, r) => Instr::RotCt(f(a), r),
            Instr::Relin(a) => Instr::Relin(f(a)),
        }
    }

    /// The paper's mnemonic for this opcode.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instr::AddCtCt(..) => "add-ct-ct",
            Instr::SubCtCt(..) => "sub-ct-ct",
            Instr::MulCtCt(..) => "mul-ct-ct",
            Instr::AddCtPt(..) => "add-ct-pt",
            Instr::SubCtPt(..) => "sub-ct-pt",
            Instr::MulCtPt(..) => "mul-ct-pt",
            Instr::RotCt(..) => "rot-ct",
            Instr::Relin(..) => "relin-ct",
        }
    }
}

/// Errors from [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A ciphertext reference points to an input that does not exist.
    BadInput(usize),
    /// A plaintext reference points to an input that does not exist.
    BadPtInput(usize),
    /// Instruction `user` references instruction `used` which is not earlier.
    UseBeforeDef { user: usize, used: usize },
    /// The output reference is invalid.
    BadOutput,
    /// A rotation amount of zero (must be elided, not emitted).
    ZeroRotation(usize),
    /// A relinearization of a value that is statically size 2 (only the
    /// result of an un-relinearized `mul-ct-ct` chain is size 3).
    RelinOfSize2(usize),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::BadInput(i) => write!(f, "ciphertext input {i} out of range"),
            ProgramError::BadPtInput(i) => write!(f, "plaintext input {i} out of range"),
            ProgramError::UseBeforeDef { user, used } => {
                write!(f, "instruction {user} uses result {used} before definition")
            }
            ProgramError::BadOutput => write!(f, "output reference is invalid"),
            ProgramError::ZeroRotation(i) => {
                write!(f, "instruction {i} is a rotation by zero slots")
            }
            ProgramError::RelinOfSize2(i) => {
                write!(f, "instruction {i} relinearizes a size-2 ciphertext")
            }
        }
    }
}

impl Error for ProgramError {}

/// A straight-line SSA HE kernel.
///
/// # Examples
///
/// Figure 5(a)'s synthesized box blur:
///
/// ```
/// use quill::program::{Instr, Program, ValRef};
///
/// let prog = Program::new(
///     "box-blur",
///     1, // one ciphertext input
///     0,
///     vec![
///         Instr::RotCt(ValRef::Input(0), 1),
///         Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
///         Instr::RotCt(ValRef::Instr(1), 5),
///         Instr::AddCtCt(ValRef::Instr(1), ValRef::Instr(2)),
///     ],
///     ValRef::Instr(3),
/// );
/// assert!(prog.validate().is_ok());
/// assert_eq!(prog.len(), 4);
/// assert_eq!(prog.logic_depth(), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    /// Kernel name (for reporting).
    pub name: String,
    /// Number of ciphertext inputs.
    pub num_ct_inputs: usize,
    /// Number of plaintext inputs.
    pub num_pt_inputs: usize,
    /// The instruction list; instruction `i` defines value `Instr(i)`.
    pub instrs: Vec<Instr>,
    /// The output ciphertext.
    pub output: ValRef,
}

impl Program {
    /// Constructs a program (validate separately with [`Program::validate`]).
    pub fn new(
        name: impl Into<String>,
        num_ct_inputs: usize,
        num_pt_inputs: usize,
        instrs: Vec<Instr>,
        output: ValRef,
    ) -> Self {
        Program {
            name: name.into(),
            num_ct_inputs,
            num_pt_inputs,
            instrs,
            output,
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Checks SSA well-formedness.
    ///
    /// # Errors
    ///
    /// Returns the first structural violation found.
    pub fn validate(&self) -> Result<(), ProgramError> {
        let check_ref = |r: ValRef, at: usize| -> Result<(), ProgramError> {
            match r {
                ValRef::Input(i) if i >= self.num_ct_inputs => Err(ProgramError::BadInput(i)),
                ValRef::Instr(j) if j >= at => {
                    Err(ProgramError::UseBeforeDef { user: at, used: j })
                }
                _ => Ok(()),
            }
        };
        let sizes = crate::analysis::ct_sizes(self);
        for (i, instr) in self.instrs.iter().enumerate() {
            for op in instr.ct_operands() {
                check_ref(op, i)?;
            }
            match instr {
                Instr::AddCtPt(_, PtOperand::Input(p))
                | Instr::SubCtPt(_, PtOperand::Input(p))
                | Instr::MulCtPt(_, PtOperand::Input(p))
                    if *p >= self.num_pt_inputs =>
                {
                    return Err(ProgramError::BadPtInput(*p));
                }
                Instr::RotCt(_, 0) => return Err(ProgramError::ZeroRotation(i)),
                Instr::Relin(a) if crate::analysis::size_of(&sizes, *a) != 3 => {
                    return Err(ProgramError::RelinOfSize2(i));
                }
                _ => {}
            }
        }
        match self.output {
            ValRef::Input(i) if i >= self.num_ct_inputs => Err(ProgramError::BadOutput),
            ValRef::Instr(j) if j >= self.instrs.len() => Err(ProgramError::BadOutput),
            _ => Ok(()),
        }
    }

    /// Logic depth: the longest instruction chain from any input to the
    /// output, counting every instruction (including rotations) as one
    /// level — the "Depth" column of Table 2.
    pub fn logic_depth(&self) -> usize {
        let mut depth = vec![0usize; self.instrs.len()];
        for (i, instr) in self.instrs.iter().enumerate() {
            let d = instr
                .ct_operands()
                .iter()
                .map(|op| match op {
                    ValRef::Input(_) => 0,
                    ValRef::Instr(j) => depth[*j],
                })
                .max()
                .unwrap_or(0);
            depth[i] = d + 1;
        }
        match self.output {
            ValRef::Input(_) => 0,
            ValRef::Instr(j) => depth[j],
        }
    }

    /// Multiplicative depth per Table 1: fresh inputs are 0; ct×ct takes
    /// `max + 1`; ct×pt takes `+1`; everything else takes the operand max.
    pub fn mult_depth(&self) -> u32 {
        let mut noise = vec![0u32; self.instrs.len()];
        let get = |r: &ValRef, noise: &[u32]| match r {
            ValRef::Input(_) => 0,
            ValRef::Instr(j) => noise[*j],
        };
        for (i, instr) in self.instrs.iter().enumerate() {
            noise[i] = match instr {
                Instr::AddCtCt(a, b) | Instr::SubCtCt(a, b) => get(a, &noise).max(get(b, &noise)),
                Instr::MulCtCt(a, b) => get(a, &noise).max(get(b, &noise)) + 1,
                Instr::AddCtPt(a, _)
                | Instr::SubCtPt(a, _)
                | Instr::RotCt(a, _)
                | Instr::Relin(a) => get(a, &noise),
                Instr::MulCtPt(a, _) => get(a, &noise) + 1,
            };
        }
        match self.output {
            ValRef::Input(_) => 0,
            ValRef::Instr(j) => noise[j],
        }
    }

    /// Instruction count per opcode mnemonic, plus the total.
    pub fn opcode_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for instr in &self.instrs {
            let m = instr.mnemonic();
            match counts.iter_mut().find(|(k, _)| *k == m) {
                Some((_, c)) => *c += 1,
                None => counts.push((m, 1)),
            }
        }
        counts
    }

    /// The distinct rotation amounts used (for Galois key generation).
    pub fn rotation_amounts(&self) -> Vec<i64> {
        let mut rots: Vec<i64> = self
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::RotCt(_, r) => Some(*r),
                _ => None,
            })
            .collect();
        rots.sort_unstable();
        rots.dedup();
        rots
    }

    /// Number of ciphertext–ciphertext multiplications (each produces a
    /// size-3 ciphertext that must be relinearized before a rotation, a
    /// further multiply, or the program output).
    pub fn ct_ct_mul_count(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i, Instr::MulCtCt(..)))
            .count()
    }

    /// Number of explicit relinearizations.
    pub fn relin_count(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i, Instr::Relin(..)))
            .count()
    }

    /// Number of rotations.
    pub fn rot_count(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i, Instr::RotCt(..)))
            .count()
    }

    /// Removes instructions whose results cannot reach the output,
    /// remapping references. Returns the cleaned program.
    pub fn eliminate_dead_code(&self) -> Program {
        let mut live = vec![false; self.instrs.len()];
        let mut stack = Vec::new();
        if let ValRef::Instr(j) = self.output {
            stack.push(j);
        }
        while let Some(j) = stack.pop() {
            if live[j] {
                continue;
            }
            live[j] = true;
            for op in self.instrs[j].ct_operands() {
                if let ValRef::Instr(k) = op {
                    stack.push(k);
                }
            }
        }
        let mut remap = vec![usize::MAX; self.instrs.len()];
        let mut instrs = Vec::new();
        for (i, instr) in self.instrs.iter().enumerate() {
            if !live[i] {
                continue;
            }
            remap[i] = instrs.len();
            instrs.push(instr.map_ct_operands(|r| match r {
                ValRef::Instr(j) => ValRef::Instr(remap[j]),
                other => other,
            }));
        }
        let output = match self.output {
            ValRef::Instr(j) => ValRef::Instr(remap[j]),
            other => other,
        };
        Program {
            name: self.name.clone(),
            num_ct_inputs: self.num_ct_inputs,
            num_pt_inputs: self.num_pt_inputs,
            instrs,
            output,
        }
    }

    /// Appends `other` to `self`, binding `other`'s ciphertext inputs to
    /// values of `self` and its plaintext inputs to `self`'s plaintext input
    /// space via `pt_binding` (indices into `self`'s plaintext inputs).
    /// Returns the reference to `other`'s output in the combined program.
    ///
    /// This is the primitive multi-step synthesis composes kernels with
    /// (§6.3: Sobel from Gx/Gy, Harris from gradients and box blur).
    ///
    /// # Panics
    ///
    /// Panics if a binding list has the wrong length or refers to a
    /// nonexistent value.
    pub fn append(
        &mut self,
        other: &Program,
        ct_binding: &[ValRef],
        pt_binding: &[usize],
    ) -> ValRef {
        assert_eq!(ct_binding.len(), other.num_ct_inputs, "ct binding arity");
        assert_eq!(pt_binding.len(), other.num_pt_inputs, "pt binding arity");
        for r in ct_binding {
            match r {
                ValRef::Input(i) => assert!(*i < self.num_ct_inputs),
                ValRef::Instr(j) => assert!(*j < self.instrs.len()),
            }
        }
        for p in pt_binding {
            assert!(*p < self.num_pt_inputs, "pt binding out of range");
        }
        let base = self.instrs.len();
        let fix = |r: ValRef| match r {
            ValRef::Input(i) => ct_binding[i],
            ValRef::Instr(j) => ValRef::Instr(base + j),
        };
        let fix_pt = |p: PtOperand| match p {
            PtOperand::Input(i) => PtOperand::Input(pt_binding[i]),
            s => s,
        };
        for instr in &other.instrs {
            let instr = match instr.map_ct_operands(fix) {
                Instr::AddCtPt(a, p) => Instr::AddCtPt(a, fix_pt(p)),
                Instr::SubCtPt(a, p) => Instr::SubCtPt(a, fix_pt(p)),
                Instr::MulCtPt(a, p) => Instr::MulCtPt(a, fix_pt(p)),
                other => other,
            };
            self.instrs.push(instr);
        }
        fix(other.output)
    }

    /// Common-subexpression elimination over syntactically identical
    /// instructions (used after composing kernels that share rotations).
    pub fn cse(&self) -> Program {
        let mut canon: Vec<ValRef> = Vec::with_capacity(self.instrs.len());
        let mut seen: Vec<(Instr, ValRef)> = Vec::new();
        let mut instrs: Vec<Instr> = Vec::new();
        for instr in &self.instrs {
            let rewritten = instr.map_ct_operands(|r| match r {
                ValRef::Instr(j) => canon[j],
                other => other,
            });
            if let Some((_, r)) = seen.iter().find(|(i, _)| *i == rewritten) {
                canon.push(*r);
            } else {
                let r = ValRef::Instr(instrs.len());
                instrs.push(rewritten.clone());
                seen.push((rewritten, r));
                canon.push(r);
            }
        }
        let output = match self.output {
            ValRef::Instr(j) => canon[j],
            other => other,
        };
        Program {
            name: self.name.clone(),
            num_ct_inputs: self.num_ct_inputs,
            num_pt_inputs: self.num_pt_inputs,
            instrs,
            output,
        }
        .eliminate_dead_code()
    }

    /// The set of live instruction indices (reachable from the output).
    pub fn live_set(&self) -> HashSet<usize> {
        let mut live = HashSet::new();
        let mut stack = Vec::new();
        if let ValRef::Instr(j) = self.output {
            stack.push(j);
        }
        while let Some(j) = stack.pop() {
            if !live.insert(j) {
                continue;
            }
            for op in self.instrs[j].ct_operands() {
                if let ValRef::Instr(k) = op {
                    stack.push(k);
                }
            }
        }
        live
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::sexpr::write_program(f, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn box_blur() -> Program {
        Program::new(
            "box-blur",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
                Instr::RotCt(ValRef::Instr(1), 5),
                Instr::AddCtCt(ValRef::Instr(1), ValRef::Instr(2)),
            ],
            ValRef::Instr(3),
        )
    }

    #[test]
    fn validates_good_program() {
        assert!(box_blur().validate().is_ok());
    }

    #[test]
    fn rejects_use_before_def() {
        let p = Program::new(
            "bad",
            1,
            0,
            vec![
                Instr::AddCtCt(ValRef::Instr(1), ValRef::Input(0)),
                Instr::RotCt(ValRef::Input(0), 1),
            ],
            ValRef::Instr(0),
        );
        assert_eq!(
            p.validate(),
            Err(ProgramError::UseBeforeDef { user: 0, used: 1 })
        );
    }

    #[test]
    fn rejects_zero_rotation_and_bad_refs() {
        let p = Program::new(
            "bad",
            1,
            0,
            vec![Instr::RotCt(ValRef::Input(0), 0)],
            ValRef::Instr(0),
        );
        assert_eq!(p.validate(), Err(ProgramError::ZeroRotation(0)));
        let p = Program::new(
            "bad",
            1,
            0,
            vec![Instr::RotCt(ValRef::Input(2), 1)],
            ValRef::Instr(0),
        );
        assert_eq!(p.validate(), Err(ProgramError::BadInput(2)));
        let p = Program::new(
            "bad",
            1,
            0,
            vec![Instr::MulCtPt(ValRef::Input(0), PtOperand::Input(0))],
            ValRef::Instr(0),
        );
        assert_eq!(p.validate(), Err(ProgramError::BadPtInput(0)));
    }

    #[test]
    fn depth_metrics_match_figure_5() {
        // Synthesized box blur: 4 instructions, logic depth 4, mult depth 0.
        let p = box_blur();
        assert_eq!(p.len(), 4);
        assert_eq!(p.logic_depth(), 4);
        assert_eq!(p.mult_depth(), 0);

        // Baseline box blur (Figure 5b): 6 instructions, depth 3.
        let baseline = Program::new(
            "box-blur-baseline",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::RotCt(ValRef::Input(0), 5),
                Instr::RotCt(ValRef::Input(0), 6),
                Instr::AddCtCt(ValRef::Instr(0), ValRef::Input(0)),
                Instr::AddCtCt(ValRef::Instr(1), ValRef::Instr(2)),
                Instr::AddCtCt(ValRef::Instr(3), ValRef::Instr(4)),
            ],
            ValRef::Instr(5),
        );
        assert_eq!(baseline.len(), 6);
        assert_eq!(baseline.logic_depth(), 3);
    }

    #[test]
    fn mult_depth_rules() {
        // mul-ct-ct chains add one level per multiply; ct-pt too.
        let p = Program::new(
            "depth",
            2,
            0,
            vec![
                Instr::MulCtCt(ValRef::Input(0), ValRef::Input(1)),
                Instr::MulCtPt(ValRef::Instr(0), PtOperand::Splat(3)),
                Instr::AddCtCt(ValRef::Instr(1), ValRef::Input(0)),
            ],
            ValRef::Instr(2),
        );
        assert_eq!(p.mult_depth(), 2);
    }

    #[test]
    fn dead_code_elimination() {
        let p = Program::new(
            "dead",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1), // dead
                Instr::AddCtCt(ValRef::Input(0), ValRef::Input(0)),
                Instr::RotCt(ValRef::Instr(1), 2),
            ],
            ValRef::Instr(2),
        );
        let clean = p.eliminate_dead_code();
        assert_eq!(clean.len(), 2);
        assert!(clean.validate().is_ok());
        assert_eq!(clean.output, ValRef::Instr(1));
    }

    #[test]
    fn append_composes_programs() {
        let mut main = box_blur();
        let square = Program::new(
            "square",
            1,
            0,
            vec![Instr::MulCtCt(ValRef::Input(0), ValRef::Input(0))],
            ValRef::Instr(0),
        );
        let out = main.append(&square, &[main.output], &[]);
        main.output = out;
        assert!(main.validate().is_ok());
        assert_eq!(main.len(), 5);
        assert_eq!(main.mult_depth(), 1);
    }

    #[test]
    fn cse_merges_identical_rotations() {
        let p = Program::new(
            "cse",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::RotCt(ValRef::Input(0), 1), // duplicate
                Instr::AddCtCt(ValRef::Instr(0), ValRef::Instr(1)),
            ],
            ValRef::Instr(2),
        );
        let c = p.cse();
        assert_eq!(c.len(), 2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn opcode_counts_and_rotations() {
        let p = box_blur();
        let counts = p.opcode_counts();
        assert!(counts.contains(&("rot-ct", 2)));
        assert!(counts.contains(&("add-ct-ct", 2)));
        assert_eq!(p.rotation_amounts(), vec![1, 5]);
        assert_eq!(p.ct_ct_mul_count(), 0);
    }
}
