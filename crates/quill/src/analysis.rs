//! Static analyses over Quill programs: ciphertext sizes, multiplicative
//! levels, and a generic worst-case noise estimator.
//!
//! BFV ciphertexts carry a *size* — the number of polynomial parts. Fresh
//! encryptions are size 2; a ciphertext–ciphertext multiply produces size 3;
//! [`crate::program::Instr::Relin`] key-switches back to 2. Additions,
//! subtractions, and plaintext operations preserve (the maximum of) their
//! operands' sizes, while rotations and further multiplies *require* size-2
//! inputs on the backend. The middle-end uses [`ct_sizes`] to place
//! relinearizations and [`check_backend_legal`] to certify that a lowered
//! program can execute 1:1 on the BFV evaluator.
//!
//! Sizes here saturate at 3: a multiply is modelled as producing size 3
//! regardless of operand sizes, because the backend refuses size-3 multiply
//! operands anyway and [`check_backend_legal`] reports exactly that.

use crate::program::{Instr, Program, ValRef};
use crate::scheme::SchemeLegality;
use std::error::Error;
use std::fmt;

/// The per-instruction size transfer rule, given the operand sizes:
/// multiply produces 3, relin produces 2, everything else propagates the
/// maximum of its operands. The single source of truth shared by
/// [`ct_sizes`] and the middle-end's relin-placement pass.
pub fn instr_result_size(instr: &Instr, size_of_operand: impl Fn(ValRef) -> u8) -> u8 {
    match instr {
        Instr::MulCtCt(..) => 3,
        Instr::Relin(_) => 2,
        Instr::AddCtCt(a, b) | Instr::SubCtCt(a, b) => size_of_operand(*a).max(size_of_operand(*b)),
        Instr::AddCtPt(a, _) | Instr::SubCtPt(a, _) | Instr::MulCtPt(a, _) | Instr::RotCt(a, _) => {
            size_of_operand(*a)
        }
    }
}

/// Ciphertext size of each instruction result (inputs are size 2).
///
/// Tolerates structurally invalid programs (out-of-range or forward
/// references read as size 2) so [`Program::validate`] can call it before
/// the structural checks complete.
pub fn ct_sizes(prog: &Program) -> Vec<u8> {
    let mut sizes = vec![2u8; prog.instrs.len()];
    for i in 0..prog.instrs.len() {
        sizes[i] = instr_result_size(&prog.instrs[i], |r| match r {
            ValRef::Input(_) => 2,
            ValRef::Instr(j) if j < i => sizes[j],
            ValRef::Instr(_) => 2,
        });
    }
    sizes
}

/// Size of an arbitrary value given the per-instruction sizes from
/// [`ct_sizes`].
pub fn size_of(sizes: &[u8], r: ValRef) -> u8 {
    match r {
        ValRef::Input(_) => 2,
        ValRef::Instr(j) => sizes.get(j).copied().unwrap_or(2),
    }
}

/// Multiplicative level of each instruction result (fresh inputs are 0;
/// every multiply adds one) — the per-value refinement of
/// [`Program::mult_depth`].
pub fn ct_levels(prog: &Program) -> Vec<u32> {
    let mut levels = vec![0u32; prog.instrs.len()];
    for (i, instr) in prog.instrs.iter().enumerate() {
        let at = |r: &ValRef, levels: &[u32]| match r {
            ValRef::Input(_) => 0,
            ValRef::Instr(j) => levels[*j],
        };
        levels[i] = match instr {
            Instr::MulCtCt(a, b) => at(a, &levels).max(at(b, &levels)) + 1,
            Instr::MulCtPt(a, _) => at(a, &levels) + 1,
            Instr::AddCtCt(a, b) | Instr::SubCtCt(a, b) => at(a, &levels).max(at(b, &levels)),
            Instr::AddCtPt(a, _) | Instr::SubCtPt(a, _) | Instr::RotCt(a, _) | Instr::Relin(a) => {
                at(a, &levels)
            }
        };
    }
    levels
}

/// Per-operation noise transfer rules for the worst-case noise estimator
/// ([`noise_levels`]).
///
/// An implementation defines its own scale for the `f64` noise values; the
/// walker only threads them through the dataflow graph. The concrete BFV
/// model (`bfv::noise::NoiseModel`) uses the base-2 logarithm of the
/// *relative invariant noise* `‖t·w mod Q‖ / Q`, so smaller (more negative)
/// means quieter and values above `-1` mean decryption failure.
///
/// The rules mirror the instruction set: `Relin` and `RotCt` both
/// key-switch (additive noise), additions combine operand noise, and the
/// multiplies scale it. `sub` defaults to the corresponding `add` rule
/// because noise analysis cannot distinguish a sum from a difference.
pub trait NoiseSemantics {
    /// Noise of a fresh encryption (every program input).
    fn fresh(&self) -> f64;
    /// `add-ct-ct` of operands with noise `a` and `b`.
    fn add_ct_ct(&self, a: f64, b: f64) -> f64;
    /// `sub-ct-ct` (defaults to the `add-ct-ct` rule).
    fn sub_ct_ct(&self, a: f64, b: f64) -> f64 {
        self.add_ct_ct(a, b)
    }
    /// `mul-ct-ct` of operands with noise `a` and `b`.
    fn mul_ct_ct(&self, a: f64, b: f64) -> f64;
    /// `add-ct-pt`.
    fn add_ct_pt(&self, a: f64) -> f64;
    /// `sub-ct-pt` (defaults to the `add-ct-pt` rule).
    fn sub_ct_pt(&self, a: f64) -> f64 {
        self.add_ct_pt(a)
    }
    /// `mul-ct-pt`.
    fn mul_ct_pt(&self, a: f64) -> f64;
    /// `rot-ct` (a Galois automorphism plus a key switch).
    fn rot_ct(&self, a: f64) -> f64;
    /// `relin-ct` (one key switch).
    fn relin_ct(&self, a: f64) -> f64;
}

/// Worst-case noise of each instruction result under `sem`, walking the
/// program in SSA order (inputs are fresh encryptions).
///
/// Run this on the *lowered* program (post `-O`), not the raw searched one:
/// relinearizations are explicit IR here, so lazy placement at `-O2` is
/// charged exactly where it executes.
pub fn noise_levels(prog: &Program, sem: &impl NoiseSemantics) -> Vec<f64> {
    let mut noise = vec![0.0f64; prog.instrs.len()];
    for (i, instr) in prog.instrs.iter().enumerate() {
        let at = |r: &ValRef, noise: &[f64]| match r {
            ValRef::Input(_) => sem.fresh(),
            ValRef::Instr(j) => noise[*j],
        };
        noise[i] = match instr {
            Instr::AddCtCt(a, b) => sem.add_ct_ct(at(a, &noise), at(b, &noise)),
            Instr::SubCtCt(a, b) => sem.sub_ct_ct(at(a, &noise), at(b, &noise)),
            Instr::MulCtCt(a, b) => sem.mul_ct_ct(at(a, &noise), at(b, &noise)),
            Instr::AddCtPt(a, _) => sem.add_ct_pt(at(a, &noise)),
            Instr::SubCtPt(a, _) => sem.sub_ct_pt(at(a, &noise)),
            Instr::MulCtPt(a, _) => sem.mul_ct_pt(at(a, &noise)),
            Instr::RotCt(a, _) => sem.rot_ct(at(a, &noise)),
            Instr::Relin(a) => sem.relin_ct(at(a, &noise)),
        };
    }
    noise
}

/// Worst-case noise of the program output under `sem` (the value
/// [`noise_levels`] assigns to the output reference).
pub fn output_noise(prog: &Program, sem: &impl NoiseSemantics) -> f64 {
    match prog.output {
        ValRef::Input(_) => sem.fresh(),
        ValRef::Instr(j) => noise_levels(prog, sem)[j],
    }
}

/// Why a program cannot execute 1:1 on an HE scheme backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LegalityError {
    /// Instruction `instr` rotates a size-3 ciphertext.
    RotOfSize3 {
        /// Offending instruction index.
        instr: usize,
    },
    /// Instruction `instr` multiplies a size-3 ciphertext operand.
    MulOfSize3 {
        /// Offending instruction index.
        instr: usize,
    },
    /// The program output is a size-3 ciphertext (must be relinearized
    /// before escaping).
    OutputSize3,
    /// Instruction `instr` is an op the target scheme's backend does not
    /// implement at all (see [`SchemeLegality`]).
    UnsupportedOp {
        /// Offending instruction index.
        instr: usize,
        /// The instruction kind, e.g. `"relin-ct"`.
        op: &'static str,
    },
}

impl fmt::Display for LegalityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegalityError::RotOfSize3 { instr } => {
                write!(f, "instruction {instr} rotates a size-3 ciphertext")
            }
            LegalityError::MulOfSize3 { instr } => {
                write!(f, "instruction {instr} multiplies a size-3 ciphertext")
            }
            LegalityError::OutputSize3 => {
                write!(f, "program output is a size-3 ciphertext")
            }
            LegalityError::UnsupportedOp { instr, op } => {
                write!(
                    f,
                    "instruction {instr} ({op}) is not supported by the target scheme"
                )
            }
        }
    }
}

impl Error for LegalityError {}

/// Checks the IR invariants a scheme backend executes under: every
/// instruction is an op the backend implements ([`SchemeLegality`]), rotation
/// and multiply operands are size 2, and the output is size 2. Programs
/// straight out of the synthesizer generally violate the size discipline
/// (they carry no `Relin` at all); the `porcupine::opt` lowering pipeline
/// establishes it at every `-O` level.
///
/// # Errors
///
/// Returns the first violation in instruction order (unsupported ops are
/// reported before size violations at the same instruction).
pub fn check_backend_legal_with(
    prog: &Program,
    legality: &SchemeLegality,
) -> Result<(), LegalityError> {
    let sizes = ct_sizes(prog);
    for (i, instr) in prog.instrs.iter().enumerate() {
        if !legality.supports(instr) {
            return Err(LegalityError::UnsupportedOp {
                instr: i,
                op: SchemeLegality::op_name(instr),
            });
        }
        match instr {
            Instr::RotCt(a, _) if size_of(&sizes, *a) == 3 => {
                return Err(LegalityError::RotOfSize3 { instr: i });
            }
            Instr::MulCtCt(a, b) if size_of(&sizes, *a) == 3 || size_of(&sizes, *b) == 3 => {
                return Err(LegalityError::MulOfSize3 { instr: i });
            }
            _ => {}
        }
    }
    if size_of(&sizes, prog.output) == 3 {
        return Err(LegalityError::OutputSize3);
    }
    Ok(())
}

/// [`check_backend_legal_with`] under the full instruction set — the shared
/// size discipline every shipped scheme (BFV, BGV) imposes.
///
/// # Errors
///
/// Returns the first violation in instruction order.
pub fn check_backend_legal(prog: &Program) -> Result<(), LegalityError> {
    check_backend_legal_with(prog, &SchemeLegality::full())
}

/// The result of analyzing one program under a scheme's noise model:
/// what the model predicts about the output's noise and the remaining
/// decryption budget. Produced by each scheme crate's `NoiseModel::analyze`
/// (both express noise as `log2` of relative noise, so the report shape is
/// scheme-neutral), consumed by the parameter selectors and the CLI's
/// noise diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseReport {
    /// Worst-case `log2` relative noise of the output.
    pub output_noise_bits: f64,
    /// Predicted remaining budget at decryption (bits; may be negative).
    pub predicted_budget_bits: f64,
    /// Predicted budget of a fresh encryption under the same parameters.
    pub fresh_budget_bits: f64,
    /// Worst-case budget the program consumes (`fresh - predicted`).
    pub consumed_bits: f64,
}

/// A group of two or more `rot-ct` instructions reading the same source
/// value — a *rotation fan*. All members can share one hoisted key-switch
/// decomposition of the source (pay the NTTs once, then one cheap
/// accumulate per member); the cost model prices fans with
/// `rot_hoist_setup` + per-member `rot_hoisted`, and the runner executes
/// them through the scheme's `hoist`/`rotate_hoisted` surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotationFan {
    /// The shared rotation source.
    pub source: ValRef,
    /// Instruction indices of the fan's `rot-ct` members, in program order
    /// (always ≥ 2 entries).
    pub members: Vec<usize>,
}

/// Groups a program's `rot-ct` instructions by source value and returns
/// every group with at least two members, ordered by first member. A
/// rotation whose source feeds no other rotation is not a fan — hoisting
/// it would only add the setup cost.
pub fn rotation_fans(prog: &Program) -> Vec<RotationFan> {
    let mut fans: Vec<RotationFan> = Vec::new();
    for (j, instr) in prog.instrs.iter().enumerate() {
        if let Instr::RotCt(src, _) = instr {
            match fans.iter_mut().find(|f| f.source == *src) {
                Some(f) => f.members.push(j),
                None => fans.push(RotationFan {
                    source: *src,
                    members: vec![j],
                }),
            }
        }
    }
    fans.retain(|f| f.members.len() >= 2);
    fans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Instr, Program, ValRef};

    /// mul → add(size-3, input) → relin → rot: sizes 3, 3, 2, 2.
    fn relin_chain() -> Program {
        Program::new(
            "chain",
            2,
            0,
            vec![
                Instr::MulCtCt(ValRef::Input(0), ValRef::Input(1)),
                Instr::AddCtCt(ValRef::Instr(0), ValRef::Input(0)),
                Instr::Relin(ValRef::Instr(1)),
                Instr::RotCt(ValRef::Instr(2), 1),
            ],
            ValRef::Instr(3),
        )
    }

    #[test]
    fn sizes_propagate_through_adds_and_relin() {
        let p = relin_chain();
        assert_eq!(ct_sizes(&p), vec![3, 3, 2, 2]);
        assert!(p.validate().is_ok());
        assert!(check_backend_legal(&p).is_ok());
    }

    #[test]
    fn levels_refine_mult_depth() {
        let p = relin_chain();
        assert_eq!(ct_levels(&p), vec![1, 1, 1, 1]);
        assert_eq!(p.mult_depth(), 1);
    }

    #[test]
    fn rotation_of_unrelinearized_multiply_is_illegal() {
        let p = Program::new(
            "bad",
            2,
            0,
            vec![
                Instr::MulCtCt(ValRef::Input(0), ValRef::Input(1)),
                Instr::RotCt(ValRef::Instr(0), 1),
            ],
            ValRef::Instr(1),
        );
        assert_eq!(
            check_backend_legal(&p),
            Err(LegalityError::RotOfSize3 { instr: 1 })
        );
    }

    #[test]
    fn size_3_output_and_mul_operands_are_illegal() {
        let mul = Program::new(
            "mul",
            2,
            0,
            vec![Instr::MulCtCt(ValRef::Input(0), ValRef::Input(1))],
            ValRef::Instr(0),
        );
        assert_eq!(check_backend_legal(&mul), Err(LegalityError::OutputSize3));
        let mul_of_mul = Program::new(
            "mm",
            2,
            0,
            vec![
                Instr::MulCtCt(ValRef::Input(0), ValRef::Input(1)),
                Instr::MulCtCt(ValRef::Instr(0), ValRef::Input(1)),
                Instr::Relin(ValRef::Instr(1)),
            ],
            ValRef::Instr(2),
        );
        assert_eq!(
            check_backend_legal(&mul_of_mul),
            Err(LegalityError::MulOfSize3 { instr: 1 })
        );
    }

    /// A counting semantics: fresh = 0, every multiply adds one, key
    /// switches add nothing — the walker must reduce to `ct_levels`.
    struct MultCount;
    impl NoiseSemantics for MultCount {
        fn fresh(&self) -> f64 {
            0.0
        }
        fn add_ct_ct(&self, a: f64, b: f64) -> f64 {
            a.max(b)
        }
        fn mul_ct_ct(&self, a: f64, b: f64) -> f64 {
            a.max(b) + 1.0
        }
        fn add_ct_pt(&self, a: f64) -> f64 {
            a
        }
        fn mul_ct_pt(&self, a: f64) -> f64 {
            a + 1.0
        }
        fn rot_ct(&self, a: f64) -> f64 {
            a
        }
        fn relin_ct(&self, a: f64) -> f64 {
            a
        }
    }

    #[test]
    fn noise_walker_agrees_with_ct_levels_under_counting_semantics() {
        let p = relin_chain();
        let by_walker: Vec<u32> = noise_levels(&p, &MultCount)
            .iter()
            .map(|&x| x as u32)
            .collect();
        assert_eq!(by_walker, ct_levels(&p));
        assert_eq!(output_noise(&p, &MultCount) as u32, p.mult_depth());
    }

    #[test]
    fn noise_walker_charges_explicit_relins_only() {
        struct KsCount;
        impl NoiseSemantics for KsCount {
            fn fresh(&self) -> f64 {
                0.0
            }
            fn add_ct_ct(&self, a: f64, b: f64) -> f64 {
                a.max(b)
            }
            fn mul_ct_ct(&self, a: f64, b: f64) -> f64 {
                a.max(b)
            }
            fn add_ct_pt(&self, a: f64) -> f64 {
                a
            }
            fn mul_ct_pt(&self, a: f64) -> f64 {
                a
            }
            fn rot_ct(&self, a: f64) -> f64 {
                a + 1.0
            }
            fn relin_ct(&self, a: f64) -> f64 {
                a + 1.0
            }
        }
        // relin_chain has one relin and one rotation on the output path.
        assert_eq!(output_noise(&relin_chain(), &KsCount), 2.0);
    }

    /// A backend that lacks an op reports `UnsupportedOp` for programs that
    /// use it and accepts programs that avoid it.
    #[test]
    fn partial_scheme_legality_reports_unsupported_ops() {
        let no_relin = SchemeLegality {
            relin: false,
            ..SchemeLegality::full()
        };
        assert_eq!(
            check_backend_legal_with(&relin_chain(), &no_relin),
            Err(LegalityError::UnsupportedOp {
                instr: 2,
                op: "relin-ct"
            })
        );
        let rot_only = Program::new(
            "rot",
            1,
            0,
            vec![Instr::RotCt(ValRef::Input(0), 1)],
            ValRef::Instr(0),
        );
        assert!(check_backend_legal_with(&rot_only, &no_relin).is_ok());
        // The full rule set is what `check_backend_legal` delegates to.
        assert!(check_backend_legal_with(&relin_chain(), &SchemeLegality::full()).is_ok());
    }

    #[test]
    fn relin_of_size_2_fails_validation() {
        let p = Program::new(
            "bad-relin",
            1,
            0,
            vec![Instr::Relin(ValRef::Input(0))],
            ValRef::Instr(0),
        );
        assert_eq!(
            p.validate(),
            Err(crate::program::ProgramError::RelinOfSize2(0))
        );
    }

    /// Fan detection: three rotations of input 0 plus a lone rotation of an
    /// intermediate form exactly one fan (the lone rotation is not worth a
    /// setup), grouped by source, members in program order.
    #[test]
    fn rotation_fans_group_same_source_rotations() {
        let p = Program::new(
            "fanned",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
                Instr::RotCt(ValRef::Input(0), 5),
                Instr::AddCtCt(ValRef::Instr(1), ValRef::Instr(2)),
                Instr::RotCt(ValRef::Instr(3), 2),
                Instr::RotCt(ValRef::Input(0), 6),
            ],
            ValRef::Instr(4),
        );
        p.validate().expect("valid");
        let fans = rotation_fans(&p);
        assert_eq!(
            fans,
            vec![RotationFan {
                source: ValRef::Input(0),
                members: vec![0, 2, 5],
            }]
        );
        // No rotations at all → no fans.
        let flat = Program::new(
            "flat",
            2,
            0,
            vec![Instr::AddCtCt(ValRef::Input(0), ValRef::Input(1))],
            ValRef::Instr(0),
        );
        assert!(rotation_fans(&flat).is_empty());
    }
}
